// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md section 4 for the experiment index). Each benchmark runs
// the corresponding experiment driver at paper scale, prints the
// paper-style rows/series once, and reports the headline numbers as
// benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Expensive shared experiments are
// memoized across benchmarks within one process.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

var benchCtx = experiments.DefaultContext()

var printOnce sync.Map

func printEach(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

func BenchmarkFig7StimulusOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSimExperiment(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("fig7", res.RenderFig7())
		b.ReportMetric(res.Opt.Objective.F, "objective")
		b.ReportMetric(float64(len(res.Opt.Trace)-1), "generations")
	}
}

func benchScatter(b *testing.B, specIdx int, figKey string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSimExperiment(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach(figKey, res.RenderScatterFig(specIdx)+"\n"+res.Summary())
		sp := res.Report.Specs[specIdx]
		b.ReportMetric(sp.RMSErr, "rms_dB")
		b.ReportMetric(sp.StdErr, "stderr_dB")
		b.ReportMetric(sp.Correlation, "corr")
	}
}

func BenchmarkFig8GainPrediction(b *testing.B) { benchScatter(b, 0, "fig8") }
func BenchmarkFig9IIP3Prediction(b *testing.B) { benchScatter(b, 2, "fig9") }
func BenchmarkFig10NFPrediction(b *testing.B)  { benchScatter(b, 1, "fig10") }

func benchHardware(b *testing.B, specIdx int, figKey string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHardwareExperiment(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach(figKey, res.RenderFig(specIdx)+"\n"+res.Summary())
		sp := res.Report.Specs[specIdx]
		b.ReportMetric(sp.RMSErr, "rms_dB")
		b.ReportMetric(sp.Correlation, "corr")
	}
}

func BenchmarkFig12HardwareGain(b *testing.B) { benchHardware(b, 0, "fig12") }
func BenchmarkFig13HardwareIIP3(b *testing.B) { benchHardware(b, 2, "fig13") }

func BenchmarkTimeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTimeComparison()
		if err != nil {
			b.Fatal(err)
		}
		printEach("time", res.Render())
		b.ReportMetric(res.NoHandler.Speedup, "speedup")
		b.ReportMetric(res.NoHandler.SignatureS*1e3, "sig_ms")
	}
}

func BenchmarkPhaseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPhaseStudy(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("phase", res.Render())
		worst := 0.0
		for _, p := range res.Points {
			if p.OffsetSigChange > worst {
				worst = p.OffsetSigChange
			}
		}
		b.ReportMetric(worst, "worst_sig_change")
	}
}

func BenchmarkAblationStimulus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStimulusAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("astim", res.Render())
		b.ReportMetric(res.Rows[0].RMS[2], "optimized_iip3_rms_dB")
		b.ReportMetric(res.Rows[2].RMS[2], "tone_iip3_rms_dB")
	}
}

func BenchmarkAblationTrainingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTrainingSizeAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("atrain", res.Render())
		b.ReportMetric(res.Rows[0].RMS[0], "small_gain_rms_dB")
		b.ReportMetric(res.Rows[len(res.Rows)-1].RMS[0], "large_gain_rms_dB")
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNoiseAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("anoise", res.Render())
		b.ReportMetric(res.Rows[len(res.Rows)-1].RMS[0], "noisy_gain_rms_dB")
	}
}

func BenchmarkAblationRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRegressionAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("areg", res.Render())
	}
}

func BenchmarkAblationADC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunADCAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("aadc", res.Render())
		b.ReportMetric(res.Rows[0].RMS[0], "coarse_gain_rms_dB")
		b.ReportMetric(res.Rows[len(res.Rows)-1].RMS[0], "ideal_gain_rms_dB")
	}
}

func BenchmarkDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiagnosisExperiment(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("diag", res.Render())
		b.ReportMetric(float64(res.Correct)/float64(res.Trials), "exact_accuracy")
		b.ReportMetric(float64(res.Correct+res.CorrectGroup)/float64(res.Trials), "group_accuracy")
	}
}

func BenchmarkAblationTester(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTesterVariationAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("atester", res.Render())
		b.ReportMetric(res.DriftedRMS[0], "drifted_gain_rms_dB")
		b.ReportMetric(res.RecalRMS[0], "recal_gain_rms_dB")
	}
}

func BenchmarkS11Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunS11Experiment(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("s11", res.Render())
		b.ReportMetric(res.RMSDB, "rms_dB")
		b.ReportMetric(res.Corr, "corr")
	}
}

func BenchmarkAblationEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunEnvelopeAblation(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		printEach("aenv", res.Render())
		b.ReportMetric(res.Speedup, "speedup")
		b.ReportMetric(res.SignatureRelErr, "rel_err")
	}
}
