// Package repro reproduces "A Signature Test Framework for Rapid
// Production Testing of RF Circuits" (Voorakaranam, Cherubal, Chatterjee —
// DATE 2002) as a pure-Go library: an analog circuit simulator substrate,
// behavioral RF load-board models, the sensitivity/SVD test-optimization
// theory, a genetic stimulus optimizer, nonlinear regression calibration,
// and a benchmark harness regenerating every figure and table of the
// paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The public surface lives under internal/ packages (core is the paper's
// contribution); cmd/ holds the executables and examples/ runnable
// demonstrations.
package repro
