// Serial-vs-concurrent lot orchestration benchmark (`make bench`). One
// seeded production lot is screened by the serial floor engine and by the
// lotrun orchestrator at increasing site counts; the per-device wall time
// and speedup land in BENCH_lotrun.json. The bins are asserted identical
// across all runs — the speedup must come from scheduling alone.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/lotrun"
)

const (
	benchLotDevices = 64
	benchLotSeed    = 101
	benchLotFaultP  = 0.10
)

type lotBench struct {
	engine *floor.Engine
	lot    []*core.Device
	faults *floor.FaultModel
}

var (
	lotBenchOnce sync.Once
	lotBenchFix  *lotBench
	lotBenchErr  error
)

func getLotBench(b *testing.B) *lotBench {
	b.Helper()
	lotBenchOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, 60, 0.9)
		if err != nil {
			lotBenchErr = err
			return
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train,
			func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			lotBenchErr = err
			return
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			lotBenchErr = err
			return
		}
		sigs := make([][]float64, len(td))
		for i := range td {
			sigs[i] = td[i].Signature
		}
		gate, err := floor.FitGate(sigs, floor.GateOptions{})
		if err != nil {
			lotBenchErr = err
			return
		}
		pass := func(s lna.Specs) bool {
			return s.GainDB >= 10.0 && s.NFDB <= 4.2 && s.IIP3DBm >= -9.5
		}
		lot, err := core.GeneratePopulation(rng, model, benchLotDevices, 0.9)
		if err != nil {
			lotBenchErr = err
			return
		}
		lotBenchFix = &lotBench{
			engine: &floor.Engine{
				Cfg: cfg, Cal: cal, Stim: stim, Gate: gate,
				PredPass: pass, TruePass: pass, Policy: floor.DefaultPolicy(),
			},
			lot:    lot,
			faults: floor.DefaultFaultModel(benchLotFaultP),
		}
	})
	if lotBenchErr != nil {
		b.Fatalf("lot benchmark fixture: %v", lotBenchErr)
	}
	return lotBenchFix
}

func lotBins(rep *floor.LotReport) []floor.Bin {
	bins := make([]floor.Bin, len(rep.Results))
	for i, r := range rep.Results {
		bins[i] = r.Bin
	}
	return bins
}

// BenchmarkLot screens the same seeded lot serially and across concurrent
// tester sites, then writes the per-device times to BENCH_lotrun.json.
func BenchmarkLot(b *testing.B) {
	f := getLotBench(b)
	out := map[string]any{
		"devices": benchLotDevices,
		"faultp":  benchLotFaultP,
		"seed":    benchLotSeed,
	}
	var refBins []floor.Bin

	b.Run("serial", func(b *testing.B) {
		var rep *floor.LotReport
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = f.engine.RunLot(benchLotSeed, f.lot, f.faults)
			if err != nil {
				b.Fatal(err)
			}
		}
		refBins = lotBins(rep)
		perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
		b.ReportMetric(perDev, "ns/device")
		out["serial_ns_per_device"] = perDev
	})

	for _, sites := range []int{2, 4, 8} {
		sites := sites
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			o := &lotrun.Orchestrator{Engine: f.engine, Opt: lotrun.Options{
				Sites:   sites,
				Breaker: lotrun.BreakerConfig{TripConsecutive: 1 << 20},
			}}
			var rep *lotrun.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = o.Run(context.Background(), benchLotSeed, f.lot, f.faults)
				if err != nil {
					b.Fatal(err)
				}
			}
			bins := lotBins(rep.Lot)
			for i := range bins {
				if refBins != nil && bins[i] != refBins[i] {
					b.Fatalf("device %d binned %v concurrently vs %v serially", i, bins[i], refBins[i])
				}
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
			b.ReportMetric(perDev, "ns/device")
			if s, ok := out["serial_ns_per_device"].(float64); ok && perDev > 0 {
				b.ReportMetric(s/perDev, "speedup")
				out[fmt.Sprintf("sites%d_speedup", sites)] = s / perDev
			}
			out[fmt.Sprintf("sites%d_ns_per_device", sites)] = perDev
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_lotrun.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
