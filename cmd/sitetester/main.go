// Command sitetester is one remote tester site of the distributed test
// floor. It rebuilds the full engineering rig (stimulus, calibration,
// gate, floor engine and production lot) from the same flags the
// coordinator uses, then serves device assignments over TCP: the wire
// carries only device indices, and determinism does the rest — the site
// screens device i exactly as the coordinator (or any other site) would.
//
// Two-terminal walkthrough:
//
//	sitetester -dut rf2401 -produce 120 -listen :7101   # terminal 1
//	sigtest -dut rf2401 -produce 120 -faults \
//	        -remote :7101                               # terminal 2
//
// Any flag that changes the rig (-dut, -seed, -train, -produce, -quick,
// -faultp) must match across all processes; the Hello handshake carries
// the engine fingerprint and lot identity, so a mismatched site is
// refused instead of silently binning differently.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/netfloor"
	"repro/internal/rig"
)

func main() {
	dut := flag.String("dut", "lna", "device family: lna (circuit-level) or rf2401 (behavioral)")
	seed := flag.Int64("seed", 1, "random seed (must match the coordinator)")
	train := flag.Int("train", 0, "training devices (default 100 lna / 28 rf2401)")
	produce := flag.Int("produce", 50, "production lot size (must match the coordinator)")
	quick := flag.Bool("quick", false, "smaller GA budget")
	faultP := flag.Float64("faultp", 0.10, "total per-insertion fault probability")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the engineering phase")
	listen := flag.String("listen", ":7101", "address to serve assignments on")
	name := flag.String("name", "", "site name in coordinator reports (default the listen address)")
	heartbeat := flag.Duration("heartbeat", time.Second, "liveness beacon period")
	idle := flag.Duration("idle", 0, "drop a silent coordinator connection after this long (default 10x heartbeat)")
	batch := flag.Int("batch", 1, "max devices per batched assignment advertised to coordinators (1 = one device per Assign; bins are bit-identical at every batch size)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the service run to this file (pprof format)")
	flag.Parse()

	if *faultP < 0 || *faultP > 1 {
		usageFail("-faultp %g is not a probability; need a value in [0, 1]", *faultP)
	}
	if *workers < 1 {
		usageFail("-workers %d is not a pool size; need an integer >= 1", *workers)
	}
	if *produce < 1 {
		usageFail("-produce %d is not a lot size; need an integer >= 1", *produce)
	}
	if *heartbeat <= 0 {
		usageFail("-heartbeat %v is not a period; need a positive duration", *heartbeat)
	}
	if *batch < 1 {
		usageFail("-batch %d is not a batch size; need an integer >= 1", *batch)
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fail("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
			fmt.Printf("sitetester: cpu profile written to %s\n", *cpuprofile)
		}()
	}

	fmt.Printf("sitetester: building rig (dut=%s seed=%d produce=%d)...\n", *dut, *seed, *produce)
	r, err := rig.Build(rig.Params{
		DUT: *dut, Seed: *seed, Train: *train, Produce: *produce,
		Quick: *quick, FaultP: *faultP, Workers: *workers,
	}, nil)
	if err != nil {
		fail("%v", err)
	}

	site := &netfloor.Site{
		Name:              *name,
		Engine:            r.Engine,
		Lot:               r.Lot,
		Faults:            r.Faults,
		LotSeed:           r.Params.Seed,
		HeartbeatInterval: *heartbeat,
		IdleTimeout:       *idle,
		MaxBatch:          *batch,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("sitetester: serving lot (seed=%d, %d devices, engine fingerprint %x) on %s\n",
		r.Params.Seed, len(r.Lot), r.Engine.Fingerprint(), ln.Addr())

	// Graceful drain: the first SIGINT/SIGTERM stops accepting new
	// connections and announces a drain to connected coordinators, but
	// lets every in-flight device finish screening and its Result flush —
	// the coordinator reassigns nothing and the lot's bins are untouched.
	// A second signal abandons the drain and exits immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Printf("sitetester: %v: draining (in-flight devices will finish; signal again to force exit)\n", sig)
		site.Drain()
		ln.Close()
		sig = <-sigs
		fmt.Printf("sitetester: %v: forcing exit\n", sig)
		cancel()
	}()

	if err := site.Serve(ctx, ln); err != nil {
		fail("%v", err)
	}
	st := site.Stats()
	if st.HeartbeatFails+st.DrainAckFails+st.ErrorSendFails+st.DrainNotifyFails > 0 {
		fmt.Printf("sitetester: send failures during service: heartbeat=%d drain-ack=%d error=%d drain-notify=%d\n",
			st.HeartbeatFails, st.DrainAckFails, st.ErrorSendFails, st.DrainNotifyFails)
	}
	fmt.Println("sitetester: shut down")
}

func usageFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sitetester: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sitetester: "+format+"\n", args...)
	os.Exit(1)
}
