// Command sigtest runs the production signature-test flow end to end:
// stimulus optimization, calibration on a training lot, validation, and a
// simulated production run with pass/fail binning against data-sheet
// limits.
//
// Usage:
//
//	sigtest -dut lna                 # circuit-level LNA, paper scale
//	sigtest -dut rf2401 -produce 200 # behavioral front end, 200-device lot
//	sigtest -stimulus out.json       # also save the optimized stimulus
//	sigtest -faults -faultp 0.1      # fault-tolerant floor: inject faults,
//	                                 # gate captures, retest, fall back
//	sigtest -faults -sites 4         # concurrent multi-site orchestrator
//	sigtest -faults -journal lot.journal           # crash-safe journal
//	sigtest -faults -journal lot.journal -resume   # continue a killed lot
//	sigtest -faults -remote :7101,:7102            # distributed floor:
//	                                 # screen on networked sitetester
//	                                 # processes (same flags on each site)
//	sigtest -server :7200 -lot waferA -lotseed 99 -produce 120
//	                                 # thin client: submit a lot to a
//	                                 # running lotserverd and await bins
//	sigtest -server :7200 -rollout status          # calibration lifecycle
//	sigtest -server :7200 -rollout shadow -version 1
//	sigtest -server :7200 -rollout promote
//	sigtest -server :7200 -rollout demote -reason "bins shifted"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"runtime/pprof"

	"repro/internal/lotrun"
	"repro/internal/lotserver"
	"repro/internal/netfloor"
	"repro/internal/rig"
)

func main() {
	dut := flag.String("dut", "lna", "device family: lna (circuit-level) or rf2401 (behavioral)")
	seed := flag.Int64("seed", 1, "random seed")
	train := flag.Int("train", 0, "training devices (default 100 lna / 28 rf2401)")
	produce := flag.Int("produce", 50, "production devices to test")
	stimOut := flag.String("stimulus", "", "write the optimized stimulus breakpoints as JSON")
	quick := flag.Bool("quick", false, "smaller GA budget")
	withFaults := flag.Bool("faults", false, "run production on the fault-tolerant floor engine")
	faultP := flag.Float64("faultp", 0.10, "total per-insertion fault probability (with -faults)")
	sites := flag.Int("sites", 1, "concurrent tester sites for the production lot (with -faults)")
	journal := flag.String("journal", "", "crash-safe lot journal path (with -faults)")
	resume := flag.Bool("resume", false, "resume an interrupted lot from -journal instead of starting fresh")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the off-line phase (GA fitness, training acquisition, cross-validation); results are identical for any value")
	remote := flag.String("remote", "", "comma-separated sitetester addresses: screen the lot on the distributed floor (with -faults); each site must run with the same -dut/-seed/-train/-produce/-quick/-faultp")
	server := flag.String("server", "", "lotserverd address: submit the lot as a thin client — no rig is built here; the server and its sites own the engine")
	lotID := flag.String("lot", "", "lot ID for -server submission (journaled under this name; resubmitting resumes it)")
	lotSeed := flag.Int64("lotseed", 0, "lot seed for -server submission (default -seed)")
	rollout := flag.String("rollout", "", "calibration-rollout control op for -server: status, shadow, promote or demote")
	version := flag.Int("version", 0, "staged calibration version for -rollout shadow")
	reason := flag.String("reason", "", "demotion note for -rollout demote")
	batch := flag.Int("batch", 1, "devices per batched screening kernel call (with -faults); bins are bit-identical at every batch size; with -remote, each site caps it by its own -batch")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (pprof format)")
	flag.Parse()

	if *faultP < 0 || *faultP > 1 {
		usageFail("-faultp %g is not a probability; need a value in [0, 1]", *faultP)
	}
	if *sites < 1 {
		usageFail("-sites %d is not a tester count; need an integer >= 1", *sites)
	}
	if *resume && *journal == "" {
		usageFail("-resume needs -journal: there is no journal to resume from")
	}
	if *workers < 1 {
		usageFail("-workers %d is not a pool size; need an integer >= 1", *workers)
	}
	if *produce < 1 {
		usageFail("-produce %d is not a lot size; need an integer >= 1", *produce)
	}
	if (*sites > 1 || *journal != "" || *resume || *remote != "") && !*withFaults {
		usageFail("-sites/-journal/-resume/-remote orchestrate the fault-tolerant floor; add -faults")
	}
	if *batch < 1 {
		usageFail("-batch %d is not a batch size; need an integer >= 1", *batch)
	}
	if *batch > 1 && !*withFaults {
		usageFail("-batch drives the floor engine's batched kernel; add -faults")
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fail("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
			fmt.Printf("      cpu profile written to %s\n", *cpuprofile)
		}()
	}
	if *remote != "" && *sites > 1 {
		usageFail("-remote and -sites are different floors: remote screening has one site per address")
	}
	var remotes []string
	for _, a := range strings.Split(*remote, ",") {
		if a = strings.TrimSpace(a); a != "" {
			remotes = append(remotes, a)
		}
	}
	if *remote != "" && len(remotes) == 0 {
		usageFail("-remote %q names no addresses", *remote)
	}
	if *rollout != "" && *server == "" {
		usageFail("-rollout talks to a running lotserverd; add -server")
	}
	if *server != "" {
		if *withFaults || *remote != "" {
			usageFail("-server is a thin client; the server owns the floor (drop -faults/-remote)")
		}
		if *rollout != "" {
			runRolloutControl(*server, *rollout, *version, *reason)
			return
		}
		if *lotID == "" {
			usageFail("-server needs -lot: the lot ID names the journal and the resume key")
		}
		ls := *lotSeed
		if ls == 0 {
			ls = *seed
		}
		runServerClient(*server, *lotID, ls, *produce)
		return
	}

	r, err := rig.Build(rig.Params{
		DUT: *dut, Seed: *seed, Train: *train, Produce: *produce,
		Quick: *quick, FaultP: *faultP, Workers: *workers,
	}, logf)
	if err != nil {
		fail("%v", err)
	}
	if *stimOut != "" {
		data, err := json.MarshalIndent(map[string]any{
			"duration_s": r.Stim.Duration,
			"levels_v":   r.Stim.Levels,
		}, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*stimOut, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("      stimulus written to %s\n", *stimOut)
	}
	fmt.Print(r.Validation)

	fmt.Printf("[4/4] production run: %d devices against limits...\n", *produce)
	if *withFaults {
		runFaultyFloor(r, *sites, *batch, *journal, *resume, remotes)
		return
	}
	var pass, escape, overkill int
	for _, d := range r.Lot {
		sig, err := r.Cfg.Acquire(d.Behavioral, r.Stim, r.Rng)
		if err != nil {
			fail("%v", err)
		}
		pred := r.Cal.Predict(sig)
		predPass := r.Limits.Pass(pred)
		truePass := r.Limits.Pass(d.Specs)
		if predPass {
			pass++
		}
		if predPass && !truePass {
			escape++
		}
		if !predPass && truePass {
			overkill++
		}
	}
	fmt.Printf("      yield (signature test): %d/%d (%.1f%%)\n", pass, *produce, 100*float64(pass)/float64(*produce))
	fmt.Printf("      test escapes: %d, overkill: %d\n", escape, overkill)
	printLimits(r.Limits)
}

// runFaultyFloor screens the production lot on the fault-tolerant floor:
// seeded fault injection into the acquisition path, signature sanity
// gating, bounded retests with backoff, and fallback to the conventional
// spec test for devices that never capture cleanly. With -sites > 1 or a
// -journal the lot runs under the supervised concurrent orchestrator;
// with -remote it runs on the distributed floor across networked
// sitetester processes. Bins are identical on every floor — and at every
// -batch size, which only changes how many devices share one kernel call.
func runFaultyFloor(r *rig.Rig, sites, batch int, journal string, resume bool, remotes []string) {
	fmt.Printf("      fault-tolerant floor: %.0f%% per-insertion fault probability, gate with %d components\n",
		100*r.Params.FaultP, r.Gate.Components())

	switch {
	case len(remotes) > 0:
		c := &netfloor.Coordinator{Engine: r.Engine, Opt: netfloor.Options{
			Remotes:     remotes,
			JournalPath: journal,
			NetSeed:     r.Params.Seed,
			Batch:       batch,
			Logf:        logf,
		}}
		run := c.Run
		if resume {
			run = c.Resume
		}
		nrep, err := run(context.Background(), r.Params.Seed, r.Lot, r.Faults)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(nrep.Lot)
		fmt.Print(nrep)
	case sites > 1 || journal != "" || batch > 1:
		o := &lotrun.Orchestrator{Engine: r.Engine, Opt: lotrun.Options{
			Sites: sites, JournalPath: journal, Batch: batch,
		}}
		run := o.Run
		if resume {
			run = o.Resume
		}
		orep, err := run(context.Background(), r.Params.Seed, r.Lot, r.Faults)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(orep.Lot)
		fmt.Print(orep)
	default:
		rep, err := r.Engine.RunLot(r.Params.Seed, r.Lot, r.Faults)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(rep)
	}
	printLimits(r.Limits)
}

// runServerClient submits one lot to a running lotserverd and waits for
// its bins. SIGINT/SIGTERM cancels the submission (the server checkpoints
// the lot's journal; resubmitting the same -lot resumes it).
func runServerClient(addr, id string, lotSeed int64, devices int) {
	cli, err := lotserver.Dial(addr, lotserver.ClientOptions{})
	if err != nil {
		fail("%v", err)
	}
	defer cli.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("sigtest: submitting lot %q (seed=%d, %d devices) to %s\n", id, lotSeed, devices, addr)
	sum, err := cli.Run(ctx, lotserver.LotSpec{ID: id, Seed: lotSeed, Devices: devices})
	if err != nil && !errors.Is(err, lotrun.ErrJournalDegraded) {
		var rej *lotserver.RejectionError
		if errors.As(err, &rej) && rej.Code == lotserver.CodeSaturated {
			fail("server saturated (backpressure): retry later — nothing was admitted")
		}
		if ctx.Err() != nil {
			fail("cancelled: the server checkpoints lot %q; resubmit to resume", id)
		}
		fail("%v", err)
	}
	if err != nil {
		// Degraded journal-less completion: the bins below are complete
		// and correct, but the server could not keep this lot's journal —
		// a crash mid-lot would have re-screened it from scratch, and
		// resubmitting this lot ID will not resume.
		fmt.Printf("      WARNING: %v\n", err)
	}
	fmt.Printf("      lot %q done: %d devices, %d pass / %d fail (%d via fallback)\n",
		id, sum.Devices, sum.Pass, sum.Fail, sum.Fallback)
	fmt.Printf("      escapes: %d, overkill: %d", sum.Escapes, sum.Overkill)
	if sum.Replayed > 0 {
		fmt.Printf(", replayed from journal: %d", sum.Replayed)
	}
	if sum.Trips > 0 {
		fmt.Printf(", breaker trips: %d", sum.Trips)
	}
	if sum.Alarms > 0 {
		fmt.Printf(", drift alarms: %d", sum.Alarms)
	}
	fmt.Println()
}

// runRolloutControl issues one calibration-lifecycle op against a running
// lotserverd and renders the post-op rollout snapshot.
func runRolloutControl(addr, op string, version int, reason string) {
	switch op {
	case "status", "shadow", "promote", "demote":
	default:
		usageFail("-rollout %q: known ops are status, shadow, promote, demote", op)
	}
	if op == "shadow" && version <= 0 {
		usageFail("-rollout shadow needs -version: the staged calibration to roll out")
	}
	cli, err := lotserver.Dial(addr, lotserver.ClientOptions{})
	if err != nil {
		fail("%v", err)
	}
	defer cli.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rs, err := cli.Rollout(ctx, op, version, reason)
	if err != nil {
		fail("%v", err)
	}
	if !rs.Enabled {
		fail("server has no model registry (-registry on lotserverd)")
	}
	fmt.Printf("sigtest: rollout %s ok\n", op)
	fmt.Printf("      active: v%d (0 = base model), staged versions: %v\n", rs.Active, rs.Versions)
	if rs.Stage != "" {
		fmt.Printf("      candidate: v%d in %s", rs.Candidate, rs.Stage)
		if rs.Stage == "canary" {
			fmt.Printf(" (%.0f%% of new lots)", rs.CanaryFraction*100)
		}
		fmt.Println()
	}
	if rs.Shadow != nil {
		fmt.Printf("      shadow evidence: %d scored, %d disagree (rate %.4f), residual EWMA %.3f/%.3f/%.3f\n",
			rs.Shadow.Scored, rs.Shadow.Disagree, rs.Shadow.DisagreeRate,
			rs.Shadow.ResidualEWMA[0], rs.Shadow.ResidualEWMA[1], rs.Shadow.ResidualEWMA[2])
	}
	if len(rs.Demoted) > 0 {
		fmt.Printf("      demoted (cannot be re-rolled): %v\n", rs.Demoted)
	}
	if rs.Recalibrations > 0 || rs.Rollbacks > 0 {
		fmt.Printf("      drift recalibrations: %d, rollbacks: %d\n", rs.Recalibrations, rs.Rollbacks)
	}
}

func printLimits(l rig.SpecLimits) {
	fmt.Printf("      limits: gain >= %.1f dB, NF <= %.1f dB, IIP3 >= %.1f dBm\n",
		l.MinGainDB, l.MaxNFDB, l.MinIIP3DBm)
}

func logf(format string, args ...any) {
	fmt.Printf(format+"\n", args...)
}

func usageFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sigtest: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sigtest: "+format+"\n", args...)
	os.Exit(1)
}
