// Command sigtest runs the production signature-test flow end to end:
// stimulus optimization, calibration on a training lot, validation, and a
// simulated production run with pass/fail binning against data-sheet
// limits.
//
// Usage:
//
//	sigtest -dut lna                 # circuit-level LNA, paper scale
//	sigtest -dut rf2401 -produce 200 # behavioral front end, 200-device lot
//	sigtest -stimulus out.json       # also save the optimized stimulus
//	sigtest -faults -faultp 0.1      # fault-tolerant floor: inject faults,
//	                                 # gate captures, retest, fall back
//	sigtest -faults -sites 4         # concurrent multi-site orchestrator
//	sigtest -faults -journal lot.journal           # crash-safe journal
//	sigtest -faults -journal lot.journal -resume   # continue a killed lot
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/lotrun"
	"repro/internal/wave"
)

// SpecLimits is the pass/fail window applied at production time.
type SpecLimits struct {
	MinGainDB  float64
	MaxNFDB    float64
	MinIIP3DBm float64
}

func limitsFor(dut string) SpecLimits {
	if dut == "rf2401" {
		return SpecLimits{MinGainDB: 10.0, MaxNFDB: 4.2, MinIIP3DBm: -9.5}
	}
	return SpecLimits{MinGainDB: 14.5, MaxNFDB: 2.7, MinIIP3DBm: 0.0}
}

func (l SpecLimits) pass(s lna.Specs) bool {
	return s.GainDB >= l.MinGainDB && s.NFDB <= l.MaxNFDB && s.IIP3DBm >= l.MinIIP3DBm
}

func main() {
	dut := flag.String("dut", "lna", "device family: lna (circuit-level) or rf2401 (behavioral)")
	seed := flag.Int64("seed", 1, "random seed")
	train := flag.Int("train", 0, "training devices (default 100 lna / 28 rf2401)")
	produce := flag.Int("produce", 50, "production devices to test")
	stimOut := flag.String("stimulus", "", "write the optimized stimulus breakpoints as JSON")
	quick := flag.Bool("quick", false, "smaller GA budget")
	withFaults := flag.Bool("faults", false, "run production on the fault-tolerant floor engine")
	faultP := flag.Float64("faultp", 0.10, "total per-insertion fault probability (with -faults)")
	sites := flag.Int("sites", 1, "concurrent tester sites for the production lot (with -faults)")
	journal := flag.String("journal", "", "crash-safe lot journal path (with -faults)")
	resume := flag.Bool("resume", false, "resume an interrupted lot from -journal instead of starting fresh")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the off-line phase (GA fitness, training acquisition, cross-validation); results are identical for any value")
	flag.Parse()

	if *faultP < 0 || *faultP > 1 {
		usageFail("-faultp %g is not a probability; need a value in [0, 1]", *faultP)
	}
	if *sites < 1 {
		usageFail("-sites %d is not a tester count; need an integer >= 1", *sites)
	}
	if *resume && *journal == "" {
		usageFail("-resume needs -journal: there is no journal to resume from")
	}
	if *workers < 1 {
		usageFail("-workers %d is not a pool size; need an integer >= 1", *workers)
	}
	if (*sites > 1 || *journal != "" || *resume) && !*withFaults {
		usageFail("-sites/-journal/-resume orchestrate the fault-tolerant floor; add -faults")
	}

	rng := rand.New(rand.NewSource(*seed))
	var model core.DeviceModel
	var cfg *core.TestConfig
	var spread float64
	switch *dut {
	case "lna":
		model = core.NewLNAModel()
		cfg = core.DefaultSimConfig()
		spread = 0.20
		if *train == 0 {
			*train = 100
		}
	case "rf2401":
		model = core.RF2401Model{}
		cfg = core.DefaultHardwareConfig()
		spread = 0.9
		if *train == 0 {
			*train = 28
		}
	default:
		fail("unknown -dut %q", *dut)
	}

	opt := core.OptimizerOptions{PopSize: 20, Generations: 5, Workers: *workers}
	if *quick {
		opt = core.OptimizerOptions{PopSize: 8, Generations: 2, Workers: *workers}
	}
	fmt.Printf("[1/4] optimizing stimulus (GA %dx%d, Eq. 10 objective, %d workers)...\n", opt.PopSize, opt.Generations, *workers)
	res, err := core.OptimizeStimulus(rng, model, cfg, opt)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("      objective trace: %v\n", res.Trace)
	if *stimOut != "" {
		data, err := json.MarshalIndent(map[string]any{
			"duration_s": res.Stimulus.Duration,
			"levels_v":   res.Stimulus.Levels,
		}, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*stimOut, data, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("      stimulus written to %s\n", *stimOut)
	}

	fmt.Printf("[2/4] calibrating on %d training devices...\n", *train)
	trainPop, err := core.GeneratePopulation(rng, model, *train, spread)
	if err != nil {
		fail("%v", err)
	}
	td, err := core.AcquireTrainingSetSeeded(rng.Int63(), cfg, res.Stimulus, trainPop, func(d *core.Device) lna.Specs { return d.Specs }, *workers)
	if err != nil {
		fail("%v", err)
	}
	cal, err := core.Calibrate(rng, res.Stimulus, td, core.CalibrationOptions{Workers: *workers})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("      regression per spec: %v\n", cal.Trainers)

	fmt.Println("[3/4] validating on a held-out lot...")
	valPop, err := core.GeneratePopulation(rng, model, 25, spread)
	if err != nil {
		fail("%v", err)
	}
	rep, err := core.Validate(rng, cfg, cal, res.Stimulus, valPop)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(rep)

	fmt.Printf("[4/4] production run: %d devices against limits...\n", *produce)
	limits := limitsFor(*dut)
	prod, err := core.GeneratePopulation(rng, model, *produce, spread)
	if err != nil {
		fail("%v", err)
	}
	if *withFaults {
		runFaultyFloor(floorRun{
			lotSeed: *seed, cfg: cfg, cal: cal, stim: res.Stimulus, td: td,
			prod: prod, limits: limits, faultP: *faultP,
			sites: *sites, journal: *journal, resume: *resume,
		})
		return
	}
	var pass, escape, overkill int
	for _, d := range prod {
		sig, err := cfg.Acquire(d.Behavioral, res.Stimulus, rng)
		if err != nil {
			fail("%v", err)
		}
		pred := cal.Predict(sig)
		predPass := limits.pass(pred)
		truePass := limits.pass(d.Specs)
		if predPass {
			pass++
		}
		if predPass && !truePass {
			escape++
		}
		if !predPass && truePass {
			overkill++
		}
	}
	fmt.Printf("      yield (signature test): %d/%d (%.1f%%)\n", pass, *produce, 100*float64(pass)/float64(*produce))
	fmt.Printf("      test escapes: %d, overkill: %d\n", escape, overkill)
	fmt.Printf("      limits: gain >= %.1f dB, NF <= %.1f dB, IIP3 >= %.1f dBm\n",
		limits.MinGainDB, limits.MaxNFDB, limits.MinIIP3DBm)
}

// floorRun bundles the fault-tolerant production run's inputs.
type floorRun struct {
	lotSeed int64
	cfg     *core.TestConfig
	cal     *core.Calibration
	stim    *wave.PWL
	td      []core.TrainingDevice
	prod    []*core.Device
	limits  SpecLimits
	faultP  float64
	sites   int
	journal string
	resume  bool
}

// runFaultyFloor screens the production lot on the fault-tolerant floor:
// seeded fault injection into the acquisition path, signature sanity
// gating, bounded retests with backoff, and fallback to the conventional
// spec test for devices that never capture cleanly. With -sites > 1 or a
// -journal the lot runs under the supervised concurrent orchestrator
// (multi-site workers, crash-safe journal, circuit breakers, drift
// watchdog); bins are identical either way.
func runFaultyFloor(r floorRun) {
	sigs := make([][]float64, len(r.td))
	for i := range r.td {
		sigs[i] = r.td[i].Signature
	}
	gate, err := floor.FitGate(sigs, floor.GateOptions{})
	if err != nil {
		fail("%v", err)
	}
	engine := &floor.Engine{
		Cfg:      r.cfg,
		Cal:      r.cal,
		Stim:     r.stim,
		Gate:     gate,
		PredPass: r.limits.pass,
		TruePass: r.limits.pass,
		Policy:   floor.DefaultPolicy(),
	}
	fmt.Printf("      fault-tolerant floor: %.0f%% per-insertion fault probability, gate with %d components\n",
		100*r.faultP, gate.Components())
	faults := floor.DefaultFaultModel(r.faultP)

	if r.sites > 1 || r.journal != "" {
		o := &lotrun.Orchestrator{Engine: engine, Opt: lotrun.Options{
			Sites: r.sites, JournalPath: r.journal,
		}}
		run := o.Run
		if r.resume {
			run = o.Resume
		}
		orep, err := run(context.Background(), r.lotSeed, r.prod, faults)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(orep.Lot)
		fmt.Print(orep)
	} else {
		rep, err := engine.RunLot(r.lotSeed, r.prod, faults)
		if err != nil {
			fail("%v", err)
		}
		fmt.Print(rep)
	}
	fmt.Printf("      limits: gain >= %.1f dB, NF <= %.1f dB, IIP3 >= %.1f dBm\n",
		r.limits.MinGainDB, r.limits.MaxNFDB, r.limits.MinIIP3DBm)
}

func usageFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sigtest: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sigtest: "+format+"\n", args...)
	os.Exit(1)
}
