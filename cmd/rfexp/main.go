// Command rfexp regenerates the paper's experiments by id and prints the
// paper-shaped tables and ASCII scatter plots.
//
// Usage:
//
//	rfexp -exp fig8            # one experiment
//	rfexp -exp all -quick      # everything, reduced sizes
//
// Experiment ids: fig7 fig8 fig9 fig10 fig12 fig13 time phase
// a-stim a-train a-noise a-reg a-env a-adc a-tester diag s11 all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig7..fig13, time, phase, a-stim, a-train, a-noise, a-reg, a-env, a-adc, diag, all)")
	seed := flag.Int64("seed", 2002, "random seed")
	quick := flag.Bool("quick", false, "reduced population sizes / GA budget")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the off-line phase (GA fitness, training acquisition, cross-validation); results are identical for any value")
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "rfexp: -workers %d is not a pool size; need an integer >= 1\n", *workers)
		os.Exit(2)
	}
	ctx := experiments.Context{Seed: *seed, Quick: *quick, Workers: *workers}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"fig7", "fig8", "fig9", "fig10", "fig12", "fig13", "time", "phase",
			"a-stim", "a-train", "a-noise", "a-reg", "a-env", "a-adc", "a-tester", "diag", "s11"}
	}
	for _, id := range ids {
		if err := run(ctx, strings.TrimSpace(id)); err != nil {
			fmt.Fprintf(os.Stderr, "rfexp: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func run(ctx experiments.Context, id string) error {
	switch id {
	case "fig7":
		res, err := experiments.RunSimExperiment(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.RenderFig7())
	case "fig8", "fig9", "fig10":
		res, err := experiments.RunSimExperiment(ctx)
		if err != nil {
			return err
		}
		idx := map[string]int{"fig8": 0, "fig9": 2, "fig10": 1}[id]
		fmt.Println(res.RenderScatterFig(idx))
		fmt.Println(res.Summary())
	case "fig12", "fig13":
		res, err := experiments.RunHardwareExperiment(ctx)
		if err != nil {
			return err
		}
		idx := map[string]int{"fig12": 0, "fig13": 2}[id]
		fmt.Println(res.RenderFig(idx))
		fmt.Println(res.Summary())
	case "time":
		res, err := experiments.RunTimeComparison()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "phase":
		res, err := experiments.RunPhaseStudy(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-stim":
		res, err := experiments.RunStimulusAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-train":
		res, err := experiments.RunTrainingSizeAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-noise":
		res, err := experiments.RunNoiseAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-reg":
		res, err := experiments.RunRegressionAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-env":
		res, err := experiments.RunEnvelopeAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-adc":
		res, err := experiments.RunADCAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "diag":
		res, err := experiments.RunDiagnosisExperiment(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "s11":
		res, err := experiments.RunS11Experiment(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "a-tester":
		res, err := experiments.RunTesterVariationAblation(ctx)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
