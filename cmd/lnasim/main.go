// Command lnasim is the circuit-simulator front end for the built-in
// 900 MHz LNA (the paper's Fig. 6 device): it prints the DC operating
// point, an AC gain sweep across the signature band, the noise breakdown
// and the three data-sheet specifications.
//
// Usage:
//
//	lnasim                      # nominal device
//	lnasim -set Rb=+20 -set Bf=-10   # perturb parameters by percent
//	lnasim -sweep               # AC sweep table 850..950 MHz
package main

import (
	"flag"
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"strconv"
	"strings"

	"repro/internal/lna"
)

type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var sets setFlags
	flag.Var(&sets, "set", "perturb a parameter by percent, e.g. -set Rb=+20 (repeatable)")
	sweep := flag.Bool("sweep", false, "print an AC gain sweep across 850..950 MHz")
	flag.Parse()

	rel := make([]float64, lna.NumParams)
	names := lna.ParamNames()
	for _, s := range sets {
		parts := strings.SplitN(s, "=", 2)
		if len(parts) != 2 {
			fail("bad -set %q, want name=percent", s)
		}
		pct, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			fail("bad percentage in %q: %v", s, err)
		}
		idx := -1
		for i, n := range names {
			if strings.EqualFold(n, parts[0]) {
				idx = i
			}
		}
		if idx < 0 {
			fail("unknown parameter %q (have %v)", parts[0], names)
		}
		rel[idx] = pct / 100
	}

	params, err := lna.Nominal().Perturb(rel)
	if err != nil {
		fail("%v", err)
	}
	dev, err := lna.Build(params)
	if err != nil {
		fail("%v", err)
	}
	fmt.Println("900 MHz LNA (paper Fig. 6 substitute)")
	fmt.Println("parameters:")
	vec := params.Vector()
	for i, n := range names {
		mark := ""
		if rel[i] != 0 {
			mark = fmt.Sprintf("  (%+.0f%%)", rel[i]*100)
		}
		fmt.Printf("  %-5s = %.4g%s\n", n, vec[i], mark)
	}
	fmt.Printf("\nDC operating point:\n  Ic = %.3f mA\n", dev.CollectorCurrent()*1e3)

	specs, err := dev.Specs()
	if err != nil {
		fail("%v", err)
	}
	s11, err := dev.InputReturnLossDB(900e6)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("\nspecifications @ 900 MHz:\n  gain = %.2f dB\n  NF   = %.2f dB\n  IIP3 = %.2f dBm\n  S11  = %.1f dB\n",
		specs.GainDB, specs.NFDB, specs.IIP3DBm, s11)

	if *sweep {
		fmt.Printf("\nAC sweep (transducer gain):\n")
		for f := 850e6; f <= 950e6+1; f += 10e6 {
			g, err := dev.GainAt(f)
			if err != nil {
				fail("%v", err)
			}
			db := 20 * math.Log10(2*cmplx.Abs(g))
			fmt.Printf("  %6.0f MHz  %7.2f dB  %s\n", f/1e6, db, strings.Repeat("#", int(math.Max(0, db))))
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lnasim: "+format+"\n", args...)
	os.Exit(1)
}
