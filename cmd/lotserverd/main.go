// Command lotserverd is the long-lived multi-lot screening service. It
// builds the engineering rig once, then serves lot submissions from many
// concurrent clients (cmd/sigtest -server) over TCP, screening on local
// workers and/or remote sitetester processes. Every lot gets its own
// fsync'd journal, watchdog and circuit breakers; admission is bounded
// (backpressure instead of collapse); a mega-lot cannot starve a small
// one; and SIGINT/SIGTERM runs a staged drain — stop admitting, finish
// in-flight devices, checkpoint every journal, answer every client.
//
// Three-terminal walkthrough:
//
//	lotserverd -dut rf2401 -produce 120 -listen :7200 \
//	           -journal /tmp/lots -sites :7101          # terminal 1
//	sitetester -dut rf2401 -produce 120 -listen :7101   # terminal 2
//	sigtest -dut rf2401 -produce 120 \
//	        -server :7200 -lot waferA -lotseed 99       # terminal 3
//
// With -registry DIR the server keeps a durable store of versioned
// calibration artifacts and runs the staged rollout lifecycle: drift
// alarms refit the regression and stage a candidate; `sigtest -server
// -rollout shadow/promote/demote` walks it through shadow screening and
// a canary fraction of new lots to ACTIVE, with automatic rollback on
// divergence. Lots are pinned to one version for life (journaled), so a
// restart resumes every lot under the calibration it started with.
//
// Rig flags (-dut, -seed, -train, -produce, -quick, -faultp) must match
// across all processes; the site handshake pins the engine fingerprint
// and the client protocol carries only (lot ID, lot seed, device count).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/lotserver"
	"repro/internal/modelreg"
	"repro/internal/rig"
)

func main() {
	dut := flag.String("dut", "lna", "device family: lna (circuit-level) or rf2401 (behavioral)")
	seed := flag.Int64("seed", 1, "random seed (must match the sites)")
	train := flag.Int("train", 0, "training devices (default 100 lna / 28 rf2401)")
	produce := flag.Int("produce", 50, "device pool size; lots screen a prefix of it (must match the sites)")
	quick := flag.Bool("quick", false, "smaller GA budget")
	faultP := flag.Float64("faultp", 0.10, "total per-insertion fault probability")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the engineering phase")
	listen := flag.String("listen", ":7200", "address to serve lot submissions on")
	statusAddr := flag.String("statusz", "", "address to serve the /statusz JSON snapshot on (empty = off)")
	journal := flag.String("journal", "", "journal directory: one fsync'd <lot>.journal per lot (empty = no crash safety)")
	journalRetries := flag.Int("journal-retries", 3, "commit attempts per journal record before the lot degrades to journal-less mode")
	journalBackoff := flag.Duration("journal-retry-backoff", time.Millisecond, "sleep before the first journal commit retry, doubling per attempt")
	registry := flag.String("registry", "", "model-registry directory: versioned calibration artifacts, shadow screening and staged rollout (empty = base model only)")
	canary := flag.Float64("canary", 0.25, "fraction of new lots pinned to the candidate during a canary rollout (with -registry)")
	sites := flag.String("sites", "", "comma-separated remote sitetester addresses")
	local := flag.Int("local", 0, "local screening workers (default 1 when no -sites)")
	maxActive := flag.Int("max-active", 0, "max concurrently screening lots (default 4)")
	maxQueued := flag.Int("max-queued", 0, "max admitted-but-waiting lots before shedding (default 8)")
	heartbeat := flag.Duration("heartbeat", time.Second, "liveness beacon period")
	drainWait := flag.Duration("drain", 2*time.Minute, "graceful shutdown budget before forcing exit")
	batch := flag.Int("batch", 1, "devices per batched kernel call for local workers and batch-capable sites (bins are bit-identical at every batch size)")
	flag.Parse()

	if *faultP < 0 || *faultP > 1 {
		usageFail("-faultp %g is not a probability; need a value in [0, 1]", *faultP)
	}
	if *workers < 1 {
		usageFail("-workers %d is not a pool size; need an integer >= 1", *workers)
	}
	if *produce < 1 {
		usageFail("-produce %d is not a pool size; need an integer >= 1", *produce)
	}
	if *heartbeat <= 0 {
		usageFail("-heartbeat %v is not a period; need a positive duration", *heartbeat)
	}
	if *canary <= 0 || *canary > 1 {
		usageFail("-canary %g is not a traffic fraction; need a value in (0, 1]", *canary)
	}
	if *batch < 1 {
		usageFail("-batch %d is not a batch size; need an integer >= 1", *batch)
	}
	if *journalRetries < 1 {
		usageFail("-journal-retries %d is not an attempt count; need an integer >= 1", *journalRetries)
	}
	if *journalBackoff <= 0 {
		usageFail("-journal-retry-backoff %v is not a backoff; need a positive duration", *journalBackoff)
	}

	fmt.Printf("lotserverd: building rig (dut=%s seed=%d produce=%d)...\n", *dut, *seed, *produce)
	r, err := rig.Build(rig.Params{
		DUT: *dut, Seed: *seed, Train: *train, Produce: *produce,
		Quick: *quick, FaultP: *faultP, Workers: *workers,
	}, nil)
	if err != nil {
		fail("%v", err)
	}

	var siteAddrs []string
	if *sites != "" {
		for _, a := range strings.Split(*sites, ",") {
			if a = strings.TrimSpace(a); a != "" {
				siteAddrs = append(siteAddrs, a)
			}
		}
	}

	opt := lotserver.Options{
		Engine: r.Engine, Pool: r.Lot, Faults: r.Faults,
		JournalDir:        *journal,
		JournalRetry:      lotrun.RetryPolicy{Attempts: *journalRetries, Backoff: *journalBackoff},
		Sites:             siteAddrs,
		LocalWorkers:      *local,
		MaxActiveLots:     *maxActive,
		MaxQueuedLots:     *maxQueued,
		HeartbeatInterval: *heartbeat,
		NetSeed:           *seed,
		CanaryFraction:    *canary,
		Batch:             *batch,
		OnDrift: func(lotID string, a lotrun.DriftAlarm) {
			fmt.Printf("lotserverd: DRIFT lot=%s device=%d detector=%s (ewma %.2f, cusum %.2f)\n",
				lotID, a.Device, a.Detector, a.EWMA, a.CUSUM)
		},
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *registry != "" {
		reg, err := modelreg.Open(*registry)
		if err != nil {
			fail("%v", err)
		}
		opt.Registry = reg
		// Drift response: refit the regression on the rig's training set
		// with a fresh optimizer stream and stage the result as a rollout
		// candidate — screening never stops for a retrain.
		opt.Recalibrate = func(lotID string, a lotrun.DriftAlarm) (*core.Calibration, *floor.Gate, error) {
			rng := rand.New(rand.NewSource(*seed + int64(a.Device) + 1))
			cal, err := core.Calibrate(rng, r.Stim, r.Train, core.CalibrationOptions{Workers: *workers})
			if err != nil {
				return nil, nil, err
			}
			return cal, r.Gate, nil
		}
		info := reg.LoadInfo()
		fmt.Printf("lotserverd: model registry %s: %d artifacts, active v%d",
			*registry, info.Artifacts, reg.Active())
		if info.Corrupt > 0 {
			fmt.Printf(" (%d corrupt records skipped)", info.Corrupt)
		}
		fmt.Println()
	}
	s, err := lotserver.New(opt)
	if err != nil {
		fail("%v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("lotserverd: serving lots (pool %d devices, engine fingerprint %x, %d sites, %d local workers) on %s\n",
		len(r.Lot), r.Engine.Fingerprint(), len(siteAddrs), *local, ln.Addr())

	if *statusAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/statusz", s.StatusHandler())
		hs := &http.Server{Addr: *statusAddr, Handler: mux}
		go func() {
			if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "lotserverd: statusz: %v\n", err)
			}
		}()
		defer hs.Close()
		fmt.Printf("lotserverd: /statusz on %s\n", *statusAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeClients(ln) }()

	// Staged drain on the first signal: stop admitting (new submissions
	// answer ErrDraining), finish in-flight devices, checkpoint every
	// journal, answer every waiting client, then exit 0. A second signal —
	// or blowing the -drain budget — kills the server; the fsync'd
	// journals still resume every accepted lot on restart.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		s.Kill()
		if err != nil {
			fail("%v", err)
		}
		return
	case sig := <-sigs:
		fmt.Printf("lotserverd: %v: draining (signal again to force exit)\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	go func() {
		<-sigs
		fmt.Println("lotserverd: forcing exit")
		cancel()
	}()
	if err := s.Shutdown(ctx); err != nil {
		s.Kill()
		fail("drain incomplete: %v (journals preserve all progress)", err)
	}
	fmt.Println("lotserverd: drained and shut down")
}

func usageFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lotserverd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lotserverd: "+format+"\n", args...)
	os.Exit(1)
}
