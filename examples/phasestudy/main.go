// Phase study: why the load board needs offset LOs and a magnitude
// signature (paper Section 2.1, Eqs. 1-5).
//
// With the same carrier driving both mixers, a path-phase mismatch phi
// scales the demodulated signature by cos(phi) — at quadrature
// ("a quarter wavelength is about 0.75 cm" at 10 GHz) the signature
// vanishes entirely. Offsetting the second LO by 100 kHz and taking the
// FFT magnitude removes the dependence.
//
//	go run ./examples/phasestudy
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	res, err := experiments.RunPhaseStudy(experiments.DefaultContext())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println("\nDesign rule surfaced by this reproduction: strict Eq. 5 invariance")
	fmt.Println("additionally requires the baseband stimulus bandwidth to stay below")
	fmt.Println("the LO offset, so the two spectral images never overlap.")
}
