// Production-line simulation: the economic argument of the paper's
// introduction, played out on a simulated test floor — including the parts
// the paper leaves out: real insertions are not all clean, real testers
// run many sites in parallel, and real lots get interrupted.
//
// A lot of circuit-level 900 MHz LNAs is screened two ways:
//
//  1. conventional specification testing (per-spec setup + measure on a
//     high-end RF ATE), and
//  2. signature testing on the low-cost tester (one capture, regression
//     read-out), run under the supervised concurrent orchestrator: four
//     tester sites share the lot queue, a seeded fault model injects
//     contactor/digitizer/LO/stimulus faults into the acquisition path, a
//     sanity gate screens each capture before prediction, gated-out
//     devices are retested with backoff, devices that never capture
//     cleanly fall back to the conventional spec test, per-site circuit
//     breakers quarantine misbehaving sites, and a drift watchdog charts
//     the accepted-capture distances.
//
// The orchestrated run is journaled and deliberately killed mid-lot
// (a simulated power cut), then resumed from the journal: the resumed
// lot's bins are bit-identical to an uninterrupted serial run, because
// every device's randomness derives from (lot seed, device index) alone.
//
// Finally the same lot is screened on the distributed floor: the
// coordinator drives in-process netfloor sites over net.Pipe connections
// whose transport drops, duplicates and partitions messages — and the
// bins still come out identical, because delivery is at-least-once and
// commit is exactly-once.
//
//	go run ./examples/production [-n 60] [-faultp 0.10] [-sites 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/lotrun"
	"repro/internal/netfloor"
)

type limits struct {
	minGain, maxNF, minIIP3 float64
}

func (l limits) pass(s lna.Specs) bool {
	return s.GainDB >= l.minGain && s.NFDB <= l.maxNF && s.IIP3DBm >= l.minIIP3
}

func main() {
	n := flag.Int("n", 60, "production lot size")
	faultP := flag.Float64("faultp", 0.10, "total per-insertion fault probability")
	sites := flag.Int("sites", 4, "concurrent tester sites")
	flag.Parse()

	if *n < 1 {
		usageFail("-n %d is not a lot size; need an integer >= 1", *n)
	}
	if *faultP < 0 || *faultP > 1 {
		usageFail("-faultp %g is not a probability; need a value in [0, 1]", *faultP)
	}
	if *sites < 1 {
		usageFail("-sites %d is not a tester count; need an integer >= 1", *sites)
	}

	rng := rand.New(rand.NewSource(7))
	model := core.NewLNAModel()
	cfg := core.DefaultSimConfig()
	lim := limits{minGain: 14.6, maxNF: 2.65, minIIP3: 0.0}

	// One-time engineering: stimulus optimization + calibration (this is
	// the paper's "one-time effort preceding actual production test").
	fmt.Println("== engineering phase ==")
	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: 12, Generations: 3})
	if err != nil {
		log.Fatal(err)
	}
	train, err := core.GeneratePopulation(rng, model, 60, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	td, err := core.AcquireTrainingSet(rng, cfg, opt.Stimulus, train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stimulus optimized (objective %.3g), calibration %v\n\n", opt.Objective.F, cal.Trainers)

	// Validate the calibration to learn the prediction error, then derive
	// guard-banded limits targeting a 0.1% per-spec escape probability.
	valPop, err := core.GeneratePopulation(rng, model, 25, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	valRep, err := core.Validate(rng, cfg, cal, opt.Stimulus, valPop)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := core.GuardBand(valRep, []core.SpecLimit{
		{Name: "Gain", Value: lim.minGain, Upper: false},
		{Name: "NF", Value: lim.maxNF, Upper: true},
		{Name: "IIP3", Value: lim.minIIP3, Upper: false},
	}, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard bands (z=%.2f): gain >= %.2f, NF <= %.2f, IIP3 >= %.2f\n",
		gb.Z, gb.Limits[0].Value, gb.Limits[1].Value, gb.Limits[2].Value)

	// The sanity gate is fit on the same signatures the regression was
	// trained on: anything it flags is outside the validated region.
	sigs := make([][]float64, len(td))
	for i := range td {
		sigs[i] = td[i].Signature
	}
	gate, err := floor.FitGate(sigs, floor.GateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sanity gate: %d-component reduced space, suspect/invalid distance %.2f/%.2f\n\n",
		gate.Components(), gate.SuspectD, gate.InvalidD)

	// Production phase. The same seeded lot and per-device fault streams
	// are screened twice: once trusting every capture blindly (serial),
	// once gated under the concurrent orchestrator.
	fmt.Printf("== production phase: %d devices, %.0f%% per-insertion fault probability, %d sites ==\n",
		*n, 100**faultP, *sites)
	lot, err := core.GeneratePopulation(rng, model, *n, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	faults := floor.DefaultFaultModel(*faultP)
	const lotSeed = 1001
	engine := &floor.Engine{
		Cfg:      cfg,
		Cal:      cal,
		Stim:     opt.Stimulus,
		PredPass: gb.Pass,
		TruePass: lim.pass,
		Policy:   floor.DefaultPolicy(),
	}
	ungated, err := engine.RunLot(lotSeed, lot, faults)
	if err != nil {
		log.Fatal(err)
	}
	engine.Gate = gate
	serial, err := engine.RunLot(lotSeed, lot, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- ungated (every capture trusted), serial --")
	fmt.Print(ungated)
	fmt.Println("-- gated + retest + fallback, serial reference --")
	fmt.Print(serial)
	fmt.Println()

	// Kill-and-resume: run the same gated lot under the orchestrator with
	// a crash-safe journal, cut the power mid-lot, then resume. The
	// journal replays every committed device; the rest are re-screened
	// from their (lot seed, index) streams.
	fmt.Println("== orchestrated run with a simulated power cut ==")
	journalPath := filepath.Join(os.TempDir(), fmt.Sprintf("production-%d.journal", os.Getpid()))
	defer os.Remove(journalPath)

	ctx, cut := context.WithCancel(context.Background())
	var started atomic.Int64
	killAt := int64(*n) / 2
	o := &lotrun.Orchestrator{Engine: engine, Opt: lotrun.Options{
		Sites:       *sites,
		JournalPath: journalPath,
		Hook: func(site, device int) {
			if started.Add(1) == killAt {
				cut() // the "power cut": every site stops taking devices
			}
		},
	}}
	if _, err := o.Run(ctx, lotSeed, lot, faults); err != nil {
		fmt.Printf("power cut: %v\n", err)
	} else {
		fmt.Println("(lot too small to interrupt; completed before the cut)")
	}

	o.Opt.Hook = nil
	resumed, err := o.Resume(context.Background(), lotSeed, lot, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed: %d devices replayed from the journal, %d corrupt lines skipped\n",
		resumed.Replayed, resumed.Replay.Corrupt)
	fmt.Print(resumed)

	identical := true
	for i := range serial.Results {
		if serial.Results[i].Bin != resumed.Lot.Results[i].Bin {
			identical = false
		}
	}
	fmt.Printf("resumed %d-site bins == uninterrupted serial bins: %v\n\n", *sites, identical)

	// Distributed floor: the same lot screened across networked tester
	// sites — here in-process over net.Pipe, with the transport injecting
	// drops, duplicates and a mid-lot partition. Exactly-once commit and
	// the per-device determinism keep the bins identical anyway.
	fmt.Printf("== distributed floor: %d remote sites over a faulty transport ==\n", *sites)
	netCtx, netStop := context.WithCancel(context.Background())
	defer netStop()
	var farmWG sync.WaitGroup
	farm := make(map[string]*netfloor.Site, *sites)
	remotes := make([]string, *sites)
	for s := range remotes {
		addr := fmt.Sprintf("pipe-%d", s)
		remotes[s] = addr
		farm[addr] = &netfloor.Site{
			Name: addr, Engine: engine, Lot: lot, Faults: faults,
			LotSeed: lotSeed, HeartbeatInterval: 20 * time.Millisecond,
		}
	}
	var farmMu sync.Mutex
	pipeDialer := func(ctx context.Context, addr string) (net.Conn, error) {
		farmMu.Lock()
		site := farm[addr]
		farmMu.Unlock()
		cli, srv := net.Pipe()
		farmWG.Add(1)
		go func() {
			defer farmWG.Done()
			site.ServeConn(netCtx, srv)
		}()
		return cli, nil
	}
	prof := netfloor.FaultProfile{DropP: 0.02, DupP: 0.05, PartitionAfter: 40}
	coord := &netfloor.Coordinator{Engine: engine, Opt: netfloor.Options{
		Remotes:           remotes,
		Dialer:            netfloor.FaultyDialer(pipeDialer, lotSeed, prof),
		RequestTimeout:    5 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		IdleTimeout:       200 * time.Millisecond,
		RetryBase:         10 * time.Millisecond,
		NetSeed:           lotSeed,
	}}
	netRep, err := coord.Run(context.Background(), lotSeed, lot, faults)
	netStop()
	farmWG.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(netRep)
	netIdentical := true
	for i := range serial.Results {
		if serial.Results[i].Bin != netRep.Lot.Results[i].Bin {
			netIdentical = false
		}
	}
	fmt.Printf("distributed bins == uninterrupted serial bins: %v\n\n", netIdentical)

	// Floor economics, charged for the retest/fallback load the gated flow
	// actually incurred plus the orchestrator's journal-sync overhead.
	fmt.Println("== test floor economics (under fault load) ==")
	sigTester, err := ate.NewSignatureTester(cfg.Board.CaptureN, cfg.Board.DigitizerFs)
	if err != nil {
		log.Fatal(err)
	}
	cmp := resumed.Lot.Time
	fmt.Printf("insertion time     : %.0f ms conventional vs %.1f ms signature (%.1fx)\n",
		cmp.ConventionalS*1e3, cmp.SignatureS*1e3, cmp.Speedup)
	fmt.Printf("throughput         : %.0f vs %.0f devices/hour\n",
		cmp.ThroughputConventional, cmp.ThroughputSignature)
	conv := ate.Economics{CapitalUSD: ate.HighEndRFATE.CapitalUSD, DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	low := ate.Economics{CapitalUSD: sigTester.CapitalUSD(), DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	factor, err := ate.CostReductionFactor(conv, low, cmp.ConventionalS, cmp.SignatureS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost per device    : %.0fx cheaper with the signature tester\n", factor)
}

func usageFail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "production: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
