// Production-line simulation: the economic argument of the paper's
// introduction, played out on a simulated test floor.
//
// A lot of circuit-level 900 MHz LNAs is screened two ways:
//
//  1. conventional specification testing (per-spec setup + measure on a
//     high-end RF ATE), and
//  2. signature testing on the low-cost tester (one capture, regression
//     read-out),
//
// and the example reports yield, test escapes/overkill of the signature
// flow against the conventional verdicts, throughput, and all-in cost per
// device.
//
//	go run ./examples/production [-n 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/lna"
)

type limits struct {
	minGain, maxNF, minIIP3 float64
}

func (l limits) pass(s lna.Specs) bool {
	return s.GainDB >= l.minGain && s.NFDB <= l.maxNF && s.IIP3DBm >= l.minIIP3
}

func main() {
	n := flag.Int("n", 60, "production lot size")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	model := core.NewLNAModel()
	cfg := core.DefaultSimConfig()
	lim := limits{minGain: 14.6, maxNF: 2.65, minIIP3: 0.0}

	// One-time engineering: stimulus optimization + calibration (this is
	// the paper's "one-time effort preceding actual production test").
	fmt.Println("== engineering phase ==")
	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: 12, Generations: 3})
	if err != nil {
		log.Fatal(err)
	}
	train, err := core.GeneratePopulation(rng, model, 60, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	td, err := core.AcquireTrainingSet(rng, cfg, opt.Stimulus, train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stimulus optimized (objective %.3g), calibration %v\n\n", opt.Objective.F, cal.Trainers)

	// Validate the calibration to learn the prediction error, then derive
	// guard-banded limits targeting a 0.1% per-spec escape probability.
	valPop, err := core.GeneratePopulation(rng, model, 25, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	valRep, err := core.Validate(rng, cfg, cal, opt.Stimulus, valPop)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := core.GuardBand(valRep, []core.SpecLimit{
		{Name: "Gain", Value: lim.minGain, Upper: false},
		{Name: "NF", Value: lim.maxNF, Upper: true},
		{Name: "IIP3", Value: lim.minIIP3, Upper: false},
	}, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard bands (z=%.2f): gain >= %.2f, NF <= %.2f, IIP3 >= %.2f\n\n",
		gb.Z, gb.Limits[0].Value, gb.Limits[1].Value, gb.Limits[2].Value)

	// Production phase: bin against raw limits and guard-banded limits.
	fmt.Printf("== production phase: %d devices ==\n", *n)
	lot, err := core.GeneratePopulation(rng, model, *n, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	var passSig, passGB, passConv, escapes, escapesGB, overkill, overkillGB int
	for _, d := range lot {
		sig, err := cfg.Acquire(d.Behavioral, opt.Stimulus, rng)
		if err != nil {
			log.Fatal(err)
		}
		pred := cal.Predict(sig)
		sigPass := lim.pass(pred)
		gbPass := gb.Pass(pred)
		convPass := lim.pass(d.Specs) // conventional test measures the truth
		if sigPass {
			passSig++
		}
		if gbPass {
			passGB++
		}
		if convPass {
			passConv++
		}
		if sigPass && !convPass {
			escapes++
		}
		if gbPass && !convPass {
			escapesGB++
		}
		if !sigPass && convPass {
			overkill++
		}
		if !gbPass && convPass {
			overkillGB++
		}
	}
	pct := func(k int) float64 { return 100 * float64(k) / float64(*n) }
	fmt.Printf("conventional yield          : %d/%d (%.1f%%)\n", passConv, *n, pct(passConv))
	fmt.Printf("signature yield (raw)       : %d/%d  escapes %d, overkill %d\n", passSig, *n, escapes, overkill)
	fmt.Printf("signature yield (guarded)   : %d/%d  escapes %d, overkill %d\n", passGB, *n, escapesGB, overkillGB)
	fmt.Printf("(guard-banding buys near-zero escapes at the price of overkill on the worst-predicted spec)\n\n")

	// Floor economics.
	fmt.Println("== test floor economics ==")
	sigTester, err := ate.NewSignatureTester(cfg.Board.CaptureN, cfg.Board.DigitizerFs)
	if err != nil {
		log.Fatal(err)
	}
	cmp := ate.CompareTestTime(ate.ConventionalSuite(), sigTester, 0.2)
	fmt.Printf("insertion time     : %.0f ms conventional vs %.1f ms signature (%.1fx)\n",
		cmp.ConventionalS*1e3, cmp.SignatureS*1e3, cmp.Speedup)
	fmt.Printf("throughput         : %.0f vs %.0f devices/hour\n",
		cmp.ThroughputConventional, cmp.ThroughputSignature)
	conv := ate.Economics{CapitalUSD: ate.HighEndRFATE.CapitalUSD, DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	low := ate.Economics{CapitalUSD: sigTester.CapitalUSD(), DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	factor, err := ate.CostReductionFactor(conv, low, cmp.ConventionalS, cmp.SignatureS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost per device    : %.0fx cheaper with the signature tester\n", factor)
}
