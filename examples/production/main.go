// Production-line simulation: the economic argument of the paper's
// introduction, played out on a simulated test floor — including the part
// the paper leaves out, which is that real insertions are not all clean.
//
// A lot of circuit-level 900 MHz LNAs is screened two ways:
//
//  1. conventional specification testing (per-spec setup + measure on a
//     high-end RF ATE), and
//  2. signature testing on the low-cost tester (one capture, regression
//     read-out), run on the fault-tolerant floor engine: a seeded fault
//     model injects contactor/digitizer/LO/stimulus faults into the
//     acquisition path, a sanity gate screens each capture before
//     prediction, gated-out devices are retested with backoff, and
//     devices that never produce a clean capture fall back to the
//     conventional spec test instead of being mis-binned.
//
// The example reports the gated and ungated lot outcomes side by side
// (yield, escapes/overkill, retests, fallbacks) and the throughput/cost
// figures charged for the retest load. A single bad acquisition no longer
// kills the lot: errors are counted per device and the device is retested
// or routed to fallback.
//
//	go run ./examples/production [-n 60] [-faultp 0.10]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
)

type limits struct {
	minGain, maxNF, minIIP3 float64
}

func (l limits) pass(s lna.Specs) bool {
	return s.GainDB >= l.minGain && s.NFDB <= l.maxNF && s.IIP3DBm >= l.minIIP3
}

func main() {
	n := flag.Int("n", 60, "production lot size")
	faultP := flag.Float64("faultp", 0.10, "total per-insertion fault probability")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	model := core.NewLNAModel()
	cfg := core.DefaultSimConfig()
	lim := limits{minGain: 14.6, maxNF: 2.65, minIIP3: 0.0}

	// One-time engineering: stimulus optimization + calibration (this is
	// the paper's "one-time effort preceding actual production test").
	fmt.Println("== engineering phase ==")
	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: 12, Generations: 3})
	if err != nil {
		log.Fatal(err)
	}
	train, err := core.GeneratePopulation(rng, model, 60, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	td, err := core.AcquireTrainingSet(rng, cfg, opt.Stimulus, train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stimulus optimized (objective %.3g), calibration %v\n\n", opt.Objective.F, cal.Trainers)

	// Validate the calibration to learn the prediction error, then derive
	// guard-banded limits targeting a 0.1% per-spec escape probability.
	valPop, err := core.GeneratePopulation(rng, model, 25, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	valRep, err := core.Validate(rng, cfg, cal, opt.Stimulus, valPop)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := core.GuardBand(valRep, []core.SpecLimit{
		{Name: "Gain", Value: lim.minGain, Upper: false},
		{Name: "NF", Value: lim.maxNF, Upper: true},
		{Name: "IIP3", Value: lim.minIIP3, Upper: false},
	}, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guard bands (z=%.2f): gain >= %.2f, NF <= %.2f, IIP3 >= %.2f\n",
		gb.Z, gb.Limits[0].Value, gb.Limits[1].Value, gb.Limits[2].Value)

	// The sanity gate is fit on the same signatures the regression was
	// trained on: anything it flags is outside the validated region.
	sigs := make([][]float64, len(td))
	for i := range td {
		sigs[i] = td[i].Signature
	}
	gate, err := floor.FitGate(sigs, floor.GateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sanity gate: %d-component reduced space, suspect/invalid distance %.2f/%.2f\n\n",
		gate.Components(), gate.SuspectD, gate.InvalidD)

	// Production phase on the fault-tolerant floor. The same seeded lot and
	// fault sequence is screened twice: once trusting every capture
	// blindly, once with the gate + bounded retests + spec-test fallback.
	fmt.Printf("== production phase: %d devices, %.0f%% per-insertion fault probability ==\n",
		*n, 100**faultP)
	lot, err := core.GeneratePopulation(rng, model, *n, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	faults := floor.DefaultFaultModel(*faultP)
	engine := &floor.Engine{
		Cfg:      cfg,
		Cal:      cal,
		Stim:     opt.Stimulus,
		PredPass: gb.Pass,
		TruePass: lim.pass,
		Policy:   floor.DefaultPolicy(),
	}
	ungated, err := engine.RunLot(rand.New(rand.NewSource(1001)), lot, faults)
	if err != nil {
		log.Fatal(err)
	}
	engine.Gate = gate
	gated, err := engine.RunLot(rand.New(rand.NewSource(1001)), lot, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- ungated (every capture trusted) --")
	fmt.Print(ungated)
	fmt.Println("-- gated + retest + fallback --")
	fmt.Print(gated)
	fmt.Println()

	// Floor economics, charged for the retest/fallback load the gated flow
	// actually incurred.
	fmt.Println("== test floor economics (under fault load) ==")
	sigTester, err := ate.NewSignatureTester(cfg.Board.CaptureN, cfg.Board.DigitizerFs)
	if err != nil {
		log.Fatal(err)
	}
	cmp := gated.Time
	fmt.Printf("insertion time     : %.0f ms conventional vs %.1f ms signature (%.1fx)\n",
		cmp.ConventionalS*1e3, cmp.SignatureS*1e3, cmp.Speedup)
	fmt.Printf("throughput         : %.0f vs %.0f devices/hour\n",
		cmp.ThroughputConventional, cmp.ThroughputSignature)
	conv := ate.Economics{CapitalUSD: ate.HighEndRFATE.CapitalUSD, DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	low := ate.Economics{CapitalUSD: sigTester.CapitalUSD(), DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	factor, err := ate.CostReductionFactor(conv, low, cmp.ConventionalS, cmp.SignatureS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost per device    : %.0fx cheaper with the signature tester\n", factor)
}
