// Front-end chain example: signature test of an RF receiver front end
// (LNA followed by a mixer buffer stage), the paper's stated target
// device class ("RF front-ends and front-end chips, such as LNAs, power
// amplifiers, attenuators and mixers").
//
// It builds a two-stage behavioral chain, checks the classic cascade
// budget formulas (Friis noise figure, reciprocal IP3 combination) against
// the per-stage specs, and then shows that the signature test calibrated
// at the CHAIN level predicts chain gain and IIP3 without access to the
// internal stages.
//
//	go run ./examples/frontend
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/rf"
)

// chainModel is a DeviceModel over a two-stage front end: stage variations
// are drawn from a 6-dimensional latent space (3 per stage).
type chainModel struct{}

func (chainModel) NumParams() int { return 6 }

func build(rel []float64) *rf.Chain {
	lnaStage := rf.NewAmplifier(rf.PolyFromSpecs(14+1.2*rel[0], -2+1.5*rel[1]))
	lnaStage.NFDB = 2.4 - 0.4*rel[2]
	buf := rf.NewAmplifier(rf.PolyFromSpecs(6+0.8*rel[3], 6+1.2*rel[4]))
	buf.NFDB = 8 - 0.8*rel[5]
	return &rf.Chain{Stages: []*rf.Amplifier{lnaStage, buf}}
}

func (chainModel) Specs(rel []float64) (lna.Specs, error) {
	g, nf, ip3 := build(rel).CascadeSpecs()
	return lna.Specs{GainDB: g, NFDB: nf, IIP3DBm: ip3}, nil
}

func (chainModel) Behavioral(rel []float64) (rf.EnvelopeDevice, error) {
	return build(rel), nil
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Cascade budget sanity check on the nominal chain.
	nominal := build(make([]float64, 6))
	g, nf, ip3 := nominal.CascadeSpecs()
	fmt.Println("== nominal front-end chain (LNA + buffer) ==")
	fmt.Printf("stage 1: %s\n", nominal.Stages[0])
	fmt.Printf("stage 2: %s\n", nominal.Stages[1])
	fmt.Printf("cascade: gain %.2f dB, NF %.2f dB (Friis), IIP3 %.2f dBm\n\n", g, nf, ip3)

	// Signature test at chain level.
	model := chainModel{}
	cfg := core.DefaultSimConfig()
	cfg.StimAmplitude = 0.03 // the chain compresses earlier than a bare LNA

	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: 10, Generations: 3})
	if err != nil {
		log.Fatal(err)
	}
	train, err := core.GeneratePopulation(rng, model, 50, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	td, err := core.AcquireTrainingSet(rng, cfg, opt.Stimulus, train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	val, err := core.GeneratePopulation(rng, model, 20, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Validate(rng, cfg, cal, opt.Stimulus, val)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== chain-level signature test validation ==")
	fmt.Print(rep)
}
