// Quickstart: the signature test flow in ~60 lines.
//
// A behavioral 900 MHz front end is tested through the load board of the
// paper's Fig. 3: a short optimized baseband stimulus is upconverted,
// passed through the device, downconverted with an offset LO, digitized,
// and its FFT magnitude is mapped to gain / NF / IIP3 by a regression
// calibrated on a small training lot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lna"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	model := core.RF2401Model{}         // behavioral DUT family
	cfg := core.DefaultHardwareConfig() // 100 kHz LO offset, 1 MHz digitizer

	// 1. Optimize the PWL stimulus (Eq. 10 objective, genetic algorithm).
	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: 8, Generations: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized stimulus: %d breakpoints over %.2f ms, objective %.4g\n",
		len(opt.Stimulus.Levels), opt.Stimulus.Duration*1e3, opt.Objective.F)

	// 2. Calibrate on a training lot with known specs.
	train, err := core.GeneratePopulation(rng, model, 30, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	td, err := core.AcquireTrainingSet(rng, cfg, opt.Stimulus, train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		log.Fatal(err)
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated: %v\n\n", cal.Trainers)

	// 3. Production: one capture predicts every spec.
	fmt.Printf("%-8s %22s %22s\n", "device", "true (gain/NF/IIP3)", "predicted")
	prod, err := core.GeneratePopulation(rng, model, 5, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range prod {
		sig, err := cfg.Acquire(d.Behavioral, opt.Stimulus, rng)
		if err != nil {
			log.Fatal(err)
		}
		p := cal.Predict(sig)
		fmt.Printf("#%-7d %6.2f %6.2f %7.2f %6.2f %6.2f %7.2f\n", i,
			d.Specs.GainDB, d.Specs.NFDB, d.Specs.IIP3DBm,
			p.GainDB, p.NFDB, p.IIP3DBm)
	}
}
