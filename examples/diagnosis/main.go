// Fault diagnosis: the follow-on capability built on the signature test
// (the authors' reference [9] line of work).
//
// The same signature used to predict gain/NF/IIP3 also localizes WHICH
// process parameter drifted: the signature deviation from nominal is
// matched against each parameter's sensitivity direction (Eq. 7
// linearization). The example drifts one LNA parameter at a time and
// prints the named culprit, its ambiguity group, and the estimated drift.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lna"
)

func main() {
	rng := rand.New(rand.NewSource(17))
	model := core.NewLNAModel()
	cfg := core.DefaultSimConfig()

	// A modest GA budget is enough for a demonstration stimulus.
	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: 8, Generations: 2})
	if err != nil {
		log.Fatal(err)
	}

	set, err := core.NewBehavioralSet(model)
	if err != nil {
		log.Fatal(err)
	}
	as, err := cfg.SignatureSensitivity(set, opt.Stimulus)
	if err != nil {
		log.Fatal(err)
	}
	nominal, err := cfg.Acquire(set.Nominal, opt.Stimulus, nil)
	if err != nil {
		log.Fatal(err)
	}
	names := lna.ParamNames()
	diag, err := core.NewSensitivityDiagnosis(as, nominal, names)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("single-parameter drift diagnosis (true drift +15%):")
	fmt.Printf("%-8s %-10s %-10s %s\n", "drifted", "diagnosed", "est drift", "ambiguity group")
	for p, name := range names {
		rel := make([]float64, len(names))
		rel[p] = 0.15
		dut, err := model.Behavioral(rel)
		if err != nil {
			log.Fatal(err)
		}
		sig, err := cfg.Acquire(dut, opt.Stimulus, rng)
		if err != nil {
			log.Fatal(err)
		}
		culprit, drift := diag.Culprit(sig)
		group := ""
		for q, other := range names {
			if q != p && diag.Ambiguous(p, q, 0.95) {
				if group != "" {
					group += ","
				}
				group += other
			}
		}
		mark := " "
		if culprit == name {
			mark = "*"
		}
		fmt.Printf("%-8s %-10s %+9.1f%% %s %s\n", name, culprit, drift*100, mark, group)
	}
	fmt.Println("\n'*' exact identification; parameters sharing a signature direction")
	fmt.Println("(listed as the ambiguity group) cannot be separated by a single fault.")
}
