#!/bin/sh
# CI entry point: formatting check, vet, build, and the full test suite
# under the race detector. Mirrors `make ci` for environments without make.
set -eux

cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
# Explicit timeout: the race detector slows internal/experiments ~10x past
# go test's default 10-minute per-package budget. -shuffle=on randomizes
# test order so inter-test state dependencies cannot hide.
go test -race -shuffle=on -timeout 45m ./...
# Distributed-floor soak: repeat the netfloor suite under the race detector
# so its timing-sensitive failover/partition paths see more than one
# scheduling.
go test -race -short -count=2 -timeout 30m ./internal/netfloor/
# Multi-lot service soak: repeat the lotserver suite under the race
# detector — admission races, concurrent drain, crash-restart-resume and
# fair scheduling see more than one goroutine interleaving.
go test -race -count=2 -timeout 30m ./internal/lotserver/
# Versioned-calibration lifecycle soak: the model registry, shadow scoring,
# canary pinning, automatic rollback and journal version pinning repeated
# under the race detector.
go test -race -count=2 -timeout 30m ./internal/modelreg/
go test -race -count=2 -timeout 30m -run 'Rollout|Shadow|Canary|Drift|Model' ./internal/lotserver/ ./internal/lotrun/
# Storage-chaos soak: seeded disk faults (EIO, torn writes, ENOSPC,
# corrupt renames, latency) composed with network faults and transient
# worker panics over a multi-lot server run, under the race detector.
# Asserts committed bins bit-identical to the fault-free serial reference,
# every lot terminating with a full report or a typed error, and a dead
# journal degrading the lot (ErrJournalDegraded in report, /statusz and
# client) instead of aborting it. Fixed seeds; a failing schedule replays
# exactly with:
#   go test -race -run ChaosSoak ./internal/lotserver/ -args -chaosseed=<seed>
go test -race -count=2 -timeout 30m \
	-run 'ChaosSoak|JournalDegraded|DrainDegraded|ClientDegraded' ./internal/lotserver/
go test -race -count=2 -timeout 30m \
	-run 'CorruptArtifactTailSweep|ActivePrevFallback|FaultFSCorruptRename' ./internal/modelreg/
go test -race -count=2 -timeout 30m ./internal/diskfault/
go test -race -count=2 -timeout 30m -run 'Journal' ./internal/lotrun/
# Batched-kernel bit-identity: the ScreenBatch determinism contract at
# every layer — interleaved SoA kernel, batched acquirer, in-process
# orchestrator, distributed floor, multi-lot server — under the race
# detector. PropertyRandom covers the randomized interleaved-vs-serial
# and mulOccInto-vs-Mul property suites.
go test -race -count=1 -timeout 30m \
	-run 'BitIdentity|ByteIdentical|CleanDRegression|BatchedServerBitIdentical|PropertyRandom|RunDevices' \
	./internal/rf/ ./internal/core/ ./internal/dsp/ \
	./internal/floor/ ./internal/lotrun/ ./internal/netfloor/ ./internal/lotserver/
# Bench smoke: one iteration of the pipeline and batched-kernel
# benchmarks, which also assert parallel/batched results bit-identical to
# serial.
go test -run '^$' -bench 'Calibrate|GA|ScreenBatch' -benchtime 1x .
# Bench-regression gate: re-run the batched-kernel sweep with enough
# iterations for a stable reading, then fail the build if ns/device at
# the guarded batch sizes exceeds the checked-in baseline by >20%.
go test -run '^$' -bench '^BenchmarkScreenBatch$' -benchtime 3x .
go run ./scripts/benchguard
