// Command benchguard is the CI bench-regression gate for the batched
// screening kernel. It reads the freshly generated BENCH_batch.json and
// the checked-in scripts/bench_baseline.json and fails (exit 1) when the
// measured ns/device at the guarded batch size exceeds the baseline by
// more than the allowed margin.
//
// The margin (default 20%) absorbs shared-runner noise — the fixture's
// spread on an otherwise idle machine is ~±7% — while still catching the
// class of regression that motivated the guard: an accidental fallback
// from the interleaved kernel to the serial tail is a >50% slowdown and
// trips the gate immediately.
//
// Usage:
//
//	go run ./scripts/benchguard [-bench BENCH_batch.json] [-baseline scripts/bench_baseline.json] [-margin 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// guardedKeys are the metrics the gate enforces. Only keys present in the
// baseline file are checked, so the baseline controls the guard's scope.
var guardedKeys = []string{
	"k16_ns_per_device",
	"k64_ns_per_device",
}

func load(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func num(m map[string]any, key string) (float64, bool) {
	v, ok := m[key].(float64)
	return v, ok
}

func main() {
	benchPath := flag.String("bench", "BENCH_batch.json", "measured benchmark table")
	basePath := flag.String("baseline", "scripts/bench_baseline.json", "checked-in baseline table")
	margin := flag.Float64("margin", 0.20, "allowed fractional regression over baseline")
	flag.Parse()

	bench, err := load(*benchPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v (run the ScreenBatch benchmark first)\n", err)
		os.Exit(1)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}

	failed := false
	checked := 0
	for _, key := range guardedKeys {
		want, ok := num(base, key)
		if !ok {
			continue // baseline does not guard this key
		}
		got, ok := num(bench, key)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s missing from %s\n", key, *benchPath)
			failed = true
			continue
		}
		checked++
		limit := want * (1 + *margin)
		if got > limit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s = %.0f ns/device exceeds baseline %.0f by more than %.0f%% (limit %.0f)\n",
				key, got, want, *margin*100, limit)
			failed = true
		} else {
			fmt.Printf("benchguard: ok   %s = %.0f ns/device (baseline %.0f, limit %.0f)\n",
				key, got, want, limit)
		}
	}
	if checked == 0 && !failed {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL no guarded keys found in %s\n", *basePath)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
