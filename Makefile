# Repo-wide build/test entry points. `make ci` is what the CI script runs:
# formatting check, vet, build, and the full test suite under the race
# detector (the floor engine's fault injector, the lotrun orchestrator's
# worker pool and the retest loop must stay race-clean).

GO ?= go

.PHONY: all fmt fmtcheck vet build test race bench ci

all: build

fmt:
	gofmt -w .

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows internal/experiments ~10x past go test's default
# 10-minute per-package timeout, hence the explicit budget.
race:
	$(GO) test -race -timeout 45m ./...

# Serial-vs-parallel benchmarks: lot orchestration (BENCH_lotrun.json) and
# the off-line calibration pipeline (BENCH_pipeline.json). Both assert the
# parallel results bit-identical to the serial ones before reporting.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkLot|BenchmarkCalibrate|BenchmarkGA)$$' -benchtime 2x .
	@echo "--- BENCH_lotrun.json"; cat BENCH_lotrun.json
	@echo "--- BENCH_pipeline.json"; cat BENCH_pipeline.json

ci: fmtcheck vet build race
