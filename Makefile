# Repo-wide build/test entry points. `make ci` is what the CI script runs:
# vet, build, and the full test suite under the race detector (the floor
# engine's fault injector and retest loop must stay race-clean).

GO ?= go

.PHONY: all vet build test race ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows internal/experiments ~10x past go test's default
# 10-minute per-package timeout, hence the explicit budget.
race:
	$(GO) test -race -timeout 45m ./...

ci: vet build race
