# Repo-wide build/test entry points. `make ci` is what the CI script runs:
# formatting check, vet, build, and the full test suite under the race
# detector (the floor engine's fault injector, the lotrun orchestrator's
# worker pool and the retest loop must stay race-clean).

GO ?= go

.PHONY: all fmt fmtcheck vet build test race netsoak lotsoak rolloutsoak chaossoak bench benchguard profile ci

all: build

fmt:
	gofmt -w .

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector slows internal/experiments ~10x past go test's default
# 10-minute per-package timeout, hence the explicit budget. -shuffle=on
# randomizes test order so inter-test state dependencies cannot hide.
race:
	$(GO) test -race -shuffle=on -timeout 45m ./...

# Distributed-floor soak: the netfloor suite repeated under the race
# detector, so its timing-sensitive failover/partition paths see more than
# one scheduling.
netsoak:
	$(GO) test -race -short -count=2 -timeout 30m ./internal/netfloor/

# Multi-lot service soak: the lotserver suite repeated under the race
# detector — admission races, concurrent drain, crash-restart-resume and
# fair scheduling see more than one goroutine interleaving.
lotsoak:
	$(GO) test -race -count=2 -timeout 30m ./internal/lotserver/

# Versioned-calibration lifecycle soak: the model registry, shadow
# scoring, canary pinning, automatic rollback and journal version pinning
# repeated under the race detector — the rollout state machine and the
# shadow worker race against live commits and kill-restart.
rolloutsoak:
	$(GO) test -race -count=2 -timeout 30m ./internal/modelreg/
	$(GO) test -race -count=2 -timeout 30m -run 'Rollout|Shadow|Canary|Drift|Model' ./internal/lotserver/ ./internal/lotrun/

# Storage-chaos soak: seeded disk faults (EIO, torn writes, ENOSPC,
# corrupt renames, latency) composed with network faults and transient
# worker panics over a multi-lot server run, under the race detector.
# Asserts committed bins bit-identical to the fault-free serial reference
# and every lot terminating with a full report or a typed error. Every
# schedule is a pure function of its seed; replay one failing schedule
# with:
#   go test -race -run ChaosSoak ./internal/lotserver/ -args -chaosseed=<seed>
chaossoak:
	$(GO) test -race -count=2 -timeout 30m \
		-run 'ChaosSoak|JournalDegraded|DrainDegraded|ClientDegraded' ./internal/lotserver/
	$(GO) test -race -count=2 -timeout 30m \
		-run 'CorruptArtifactTailSweep|ActivePrevFallback|FaultFSCorruptRename' ./internal/modelreg/
	$(GO) test -race -count=2 -timeout 30m ./internal/diskfault/
	$(GO) test -race -count=2 -timeout 30m -run 'Journal' ./internal/lotrun/

# Serial-vs-parallel benchmarks: lot orchestration (BENCH_lotrun.json),
# the off-line calibration pipeline (BENCH_pipeline.json), the
# distributed floor over in-process pipes (BENCH_netfloor.json), the
# multi-lot screening service (BENCH_server.json: throughput plus
# p50/p95/p99 device latency) and the batched screening kernel
# (BENCH_batch.json: devices/sec at K=1/4/16/64). All assert the
# parallel/distributed/batched results bit-identical to the serial ones
# before reporting.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkLot|BenchmarkNetLot|BenchmarkCalibrate|BenchmarkGA|BenchmarkServe|BenchmarkShadowScreen|BenchmarkScreenBatch)$$' -benchtime 2x .
	@echo "--- BENCH_lotrun.json"; cat BENCH_lotrun.json
	@echo "--- BENCH_pipeline.json"; cat BENCH_pipeline.json
	@echo "--- BENCH_netfloor.json"; cat BENCH_netfloor.json
	@echo "--- BENCH_server.json"; cat BENCH_server.json
	@echo "--- BENCH_batch.json"; cat BENCH_batch.json

# Bench-regression gate: a stable ScreenBatch sweep followed by the
# guard, which fails if ns/device at the guarded batch sizes exceeds
# scripts/bench_baseline.json by >20% (an accidental fallback from the
# interleaved kernel to the serial tail is a >50% slowdown and trips it
# immediately).
benchguard:
	$(GO) test -run '^$$' -bench '^BenchmarkScreenBatch$$' -benchtime 3x .
	$(GO) run ./scripts/benchguard

# CPU profile of the batched production floor: build sigtest, screen a
# 200-device behavioral lot at -batch 16 — one tile of the
# device-interleaved SoA kernel, so the interleaved hot loops (runTile,
# macPlanes, macPairRealLO, firDecimateTile) show up by name — and print
# the hottest frames. floor.pprof is left behind for `go tool pprof`
# drill-down; swap -batch 16 for -batch 1 to profile the serial path.
profile:
	$(GO) build -o bin/sigtest ./cmd/sigtest
	./bin/sigtest -dut rf2401 -quick -produce 200 -faults -batch 16 -cpuprofile floor.pprof
	$(GO) tool pprof -top -nodecount 15 bin/sigtest floor.pprof

ci: fmtcheck vet build race netsoak lotsoak rolloutsoak chaossoak
