// Batched screening kernel benchmark (`make bench`). The same seeded lot
// is screened through floor.Engine.ScreenBatch at increasing batch sizes;
// per-device wall time, devices/sec and the speedup over K=1 land in
// BENCH_batch.json. Bins are asserted identical to the serial
// ScreenDevice loop at every K — the speedup must come entirely from
// batching the envelope tail, the FFT and the prediction math, never from
// changing results.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/floor"
)

// benchBatchKs is the batch-size sweep: around the knee (the interleaved
// kernel tiles groups at 16 devices), plus 32/64 to show large batches no
// longer regress past the tile size.
var benchBatchKs = []int{4, 8, 16, 32, 64}

// pr8Baseline records the ns/device this fixture measured at PR 8 (the
// AoS batched kernel, before device interleaving) so the interleaved-vs-PR-8
// trajectory is visible in one file.
var pr8Baseline = map[string]float64{
	"k1_ns_per_device":  3522661,
	"k4_ns_per_device":  225168,
	"k16_ns_per_device": 227499,
	"k64_ns_per_device": 267374,
}

// BenchmarkScreenBatch sweeps the kernel batch size over one lot and
// writes the throughput table to BENCH_batch.json. The k=1 sub-benchmark
// is the serial ScreenDevice loop — exactly what every orchestrator
// (lotrun, netfloor, lotserver) executes at batch size 1 — so the
// reported speedups are the real floor-throughput gain of raising the
// batch size. The JSON is only written when the whole sweep ran, so a
// filtered `-bench` invocation can never clobber the file with a partial
// table.
func BenchmarkScreenBatch(b *testing.B) {
	f := getLotBench(b)
	ctx := context.Background()

	serial := make([]floor.DeviceResult, len(f.lot))
	for i, d := range f.lot {
		serial[i] = f.engine.ScreenDevice(ctx, i, d, core.DeviceSeed(benchLotSeed, i), nil)
	}

	out := map[string]any{
		"devices":      benchLotDevices,
		"seed":         benchLotSeed,
		"pr8_baseline": pr8Baseline,
	}
	ran := 0
	var k1PerDev float64
	b.Run("k=1", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			for i, d := range f.lot {
				res := f.engine.ScreenDevice(ctx, i, d, core.DeviceSeed(benchLotSeed, i), nil)
				if res.Bin != serial[i].Bin {
					b.Fatalf("device %d binned %v vs %v on the reference pass", i, res.Bin, serial[i].Bin)
				}
			}
		}
		k1PerDev = float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
		b.ReportMetric(k1PerDev, "ns/device")
		b.ReportMetric(1e9/k1PerDev, "devices/sec")
		out["k1_ns_per_device"] = k1PerDev
		out["k1_devices_per_sec"] = 1e9 / k1PerDev
		ran++
	})
	for _, k := range benchBatchKs {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var batches [][]floor.BatchDevice
			for start := 0; start < len(f.lot); start += k {
				end := start + k
				if end > len(f.lot) {
					end = len(f.lot)
				}
				batch := make([]floor.BatchDevice, 0, end-start)
				for i := start; i < end; i++ {
					batch = append(batch, floor.BatchDevice{
						Index: i, Device: f.lot[i], Seed: core.DeviceSeed(benchLotSeed, i),
					})
				}
				batches = append(batches, batch)
			}
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				for _, batch := range batches {
					for _, res := range f.engine.ScreenBatch(ctx, batch, nil) {
						if res.Bin != serial[res.Index].Bin {
							b.Fatalf("device %d binned %v at k=%d vs %v serially",
								res.Index, res.Bin, k, serial[res.Index].Bin)
						}
					}
				}
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
			b.ReportMetric(perDev, "ns/device")
			b.ReportMetric(1e9/perDev, "devices/sec")
			out[fmt.Sprintf("k%d_ns_per_device", k)] = perDev
			out[fmt.Sprintf("k%d_devices_per_sec", k)] = 1e9 / perDev
			if k1PerDev > 0 {
				b.ReportMetric(k1PerDev/perDev, "speedup_vs_k1")
				out[fmt.Sprintf("k%d_speedup_vs_k1", k)] = k1PerDev / perDev
			}
			if base, ok := pr8Baseline[fmt.Sprintf("k%d_ns_per_device", k)]; ok {
				b.ReportMetric(base/perDev, "speedup_vs_pr8")
				out[fmt.Sprintf("k%d_speedup_vs_pr8", k)] = base / perDev
			}
			ran++
		})
	}

	if ran < 1+len(benchBatchKs) {
		return // filtered run: keep the checked-in full table intact
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_batch.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
