// Batched screening kernel benchmark (`make bench`). The same seeded lot
// is screened through floor.Engine.ScreenBatch at increasing batch sizes;
// per-device wall time, devices/sec and the speedup over K=1 land in
// BENCH_batch.json. Bins are asserted identical to the serial
// ScreenDevice loop at every K — the speedup must come entirely from
// batching the FFT and prediction math, never from changing results.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/floor"
)

// BenchmarkScreenBatch sweeps the kernel batch size over one lot and
// writes the throughput table to BENCH_batch.json. The k=1 sub-benchmark
// is the serial ScreenDevice loop — exactly what every orchestrator
// (lotrun, netfloor, lotserver) executes at batch size 1 — so the
// reported speedups are the real floor-throughput gain of raising the
// batch size.
func BenchmarkScreenBatch(b *testing.B) {
	f := getLotBench(b)
	ctx := context.Background()

	serial := make([]floor.DeviceResult, len(f.lot))
	for i, d := range f.lot {
		serial[i] = f.engine.ScreenDevice(ctx, i, d, core.DeviceSeed(benchLotSeed, i), nil)
	}

	out := map[string]any{
		"devices": benchLotDevices,
		"seed":    benchLotSeed,
	}
	var k1PerDev float64
	b.Run("k=1", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			for i, d := range f.lot {
				res := f.engine.ScreenDevice(ctx, i, d, core.DeviceSeed(benchLotSeed, i), nil)
				if res.Bin != serial[i].Bin {
					b.Fatalf("device %d binned %v vs %v on the reference pass", i, res.Bin, serial[i].Bin)
				}
			}
		}
		k1PerDev = float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
		b.ReportMetric(k1PerDev, "ns/device")
		b.ReportMetric(1e9/k1PerDev, "devices/sec")
		out["k1_ns_per_device"] = k1PerDev
		out["k1_devices_per_sec"] = 1e9 / k1PerDev
	})
	for _, k := range []int{4, 16, 64} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var batches [][]floor.BatchDevice
			for start := 0; start < len(f.lot); start += k {
				end := start + k
				if end > len(f.lot) {
					end = len(f.lot)
				}
				batch := make([]floor.BatchDevice, 0, end-start)
				for i := start; i < end; i++ {
					batch = append(batch, floor.BatchDevice{
						Index: i, Device: f.lot[i], Seed: core.DeviceSeed(benchLotSeed, i),
					})
				}
				batches = append(batches, batch)
			}
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				for _, batch := range batches {
					for _, res := range f.engine.ScreenBatch(ctx, batch, nil) {
						if res.Bin != serial[res.Index].Bin {
							b.Fatalf("device %d binned %v at k=%d vs %v serially",
								res.Index, res.Bin, k, serial[res.Index].Bin)
						}
					}
				}
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
			b.ReportMetric(perDev, "ns/device")
			b.ReportMetric(1e9/perDev, "devices/sec")
			out[fmt.Sprintf("k%d_ns_per_device", k)] = perDev
			out[fmt.Sprintf("k%d_devices_per_sec", k)] = 1e9 / perDev
			if k1PerDev > 0 {
				b.ReportMetric(k1PerDev/perDev, "speedup_vs_k1")
				out[fmt.Sprintf("k%d_speedup_vs_k1", k)] = k1PerDev / perDev
			}
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_batch.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
