// Distributed-floor benchmark (`make bench`). The same seeded lot is
// screened serially and by the netfloor coordinator over in-process
// net.Pipe "sites" at increasing site counts and fault loads; per-device
// wall time and the wire-level retry counts land in BENCH_netfloor.json.
// Bins are asserted identical to the serial reference on every
// configuration — throughput must come from scheduling, never from
// skipping or double-committing devices.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/netfloor"
	"repro/internal/parallel"
)

// benchFarm serves fresh netfloor.Sites over net.Pipe, one per address,
// optionally injecting transport faults on the coordinator side.
type benchFarm struct {
	fix   *lotBench
	prof  netfloor.FaultProfile
	ctx   context.Context
	wg    sync.WaitGroup
	mu    sync.Mutex
	sites map[string]*netfloor.Site
	conns int
}

func (bf *benchFarm) dial(ctx context.Context, addr string) (net.Conn, error) {
	bf.mu.Lock()
	s, ok := bf.sites[addr]
	if !ok {
		s = &netfloor.Site{
			Name:              addr,
			Engine:            bf.fix.engine,
			Lot:               bf.fix.lot,
			Faults:            bf.fix.faults,
			LotSeed:           benchLotSeed,
			HeartbeatInterval: 10 * time.Millisecond,
		}
		bf.sites[addr] = s
	}
	k := bf.conns
	bf.conns++
	bf.mu.Unlock()

	cli, srv := net.Pipe()
	bf.wg.Add(1)
	go func() {
		defer bf.wg.Done()
		s.ServeConn(bf.ctx, srv)
	}()
	if bf.prof.Zero() {
		return cli, nil
	}
	return netfloor.NewFaultConn(cli, parallel.SubSeed(777, k), bf.prof), nil
}

// BenchmarkNetLot screens the lot on the distributed floor at 1/2/4 sites,
// clean and under a drop+duplicate fault load, and writes the results to
// BENCH_netfloor.json.
func BenchmarkNetLot(b *testing.B) {
	f := getLotBench(b)
	ref, err := f.engine.RunLot(benchLotSeed, f.lot, f.faults)
	if err != nil {
		b.Fatal(err)
	}
	refBins := lotBins(ref)
	out := map[string]any{
		"devices": benchLotDevices,
		"faultp":  benchLotFaultP,
		"seed":    benchLotSeed,
	}

	configs := []struct {
		name  string
		sites int
		prof  netfloor.FaultProfile
	}{
		{"sites=1", 1, netfloor.FaultProfile{}},
		{"sites=2", 2, netfloor.FaultProfile{}},
		{"sites=4", 4, netfloor.FaultProfile{}},
		{"sites=4/faulty", 4, netfloor.FaultProfile{DropP: 0.03, DupP: 0.05}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var rep *netfloor.Report
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				bf := &benchFarm{fix: f, prof: cfg.prof, ctx: ctx, sites: map[string]*netfloor.Site{}}
				remotes := make([]string, cfg.sites)
				for s := range remotes {
					remotes[s] = fmt.Sprintf("pipe-%d", s)
				}
				c := &netfloor.Coordinator{Engine: f.engine, Opt: netfloor.Options{
					Remotes:           remotes,
					Dialer:            bf.dial,
					RequestTimeout:    5 * time.Second,
					HeartbeatInterval: 10 * time.Millisecond,
					IdleTimeout:       200 * time.Millisecond,
					RetryBase:         5 * time.Millisecond,
					RetryMax:          50 * time.Millisecond,
					NetSeed:           benchLotSeed,
				}}
				var err error
				rep, err = c.Run(ctx, benchLotSeed, f.lot, f.faults)
				cancel()
				bf.wg.Wait()
				if err != nil {
					b.Fatal(err)
				}
			}
			bins := lotBins(rep.Lot)
			for i := range bins {
				if bins[i] != refBins[i] {
					b.Fatalf("device %d binned %v on %s vs %v serially", i, bins[i], cfg.name, refBins[i])
				}
			}
			perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchLotDevices)
			b.ReportMetric(perDev, "ns/device")
			b.ReportMetric(float64(rep.Net.Retries), "retries")
			key := cfg.name
			out[key] = map[string]any{
				"ns_per_device": perDev,
				"assigns":       rep.Net.Assigns,
				"retries":       rep.Net.Retries,
				"reconnects":    rep.Net.Reconnects,
				"dup_results":   rep.Net.DupResults,
				"local_devices": rep.Net.LocalDevices,
			}
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_netfloor.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
