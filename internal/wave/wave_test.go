package wave

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPWLEndpointsAndInterpolation(t *testing.T) {
	p, err := NewPWL([]float64{0, 1, -1}, 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0) != 0 || p.At(2e-6) != -1 {
		t.Fatal("endpoint values wrong")
	}
	// Midpoint of first segment.
	if got := p.At(0.5e-6); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(0.5us) = %g, want 0.5", got)
	}
	// Clamping outside the duration.
	if p.At(-1) != 0 || p.At(5e-6) != -1 {
		t.Fatal("out-of-range clamp wrong")
	}
}

func TestPWLValidation(t *testing.T) {
	if _, err := NewPWL([]float64{1}, 1e-6); err == nil {
		t.Fatal("single breakpoint must error")
	}
	if _, err := NewPWL([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestPWLSampleCount(t *testing.T) {
	p, _ := NewPWL([]float64{0, 1}, 1e-6)
	s := p.Sample(100e6, 100)
	if len(s) != 100 {
		t.Fatalf("sample count %d", len(s))
	}
	// Monotone ramp.
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1]-1e-12 {
			t.Fatalf("ramp not monotone at %d", i)
		}
	}
}

func TestPWLClampAndClone(t *testing.T) {
	p, _ := NewPWL([]float64{-3, 0.5, 3}, 1e-6)
	q := p.Clone()
	p.Clamp(1)
	if p.Levels[0] != -1 || p.Levels[2] != 1 || p.Levels[1] != 0.5 {
		t.Fatalf("Clamp = %v", p.Levels)
	}
	if q.Levels[0] != -3 {
		t.Fatal("Clone should be independent of Clamp")
	}
	if p.MaxAbs() != 1 {
		t.Fatalf("MaxAbs = %g", p.MaxAbs())
	}
}

func TestRandomPWLBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p := RandomPWL(rng, 16, 0.8, 5e-6)
		if len(p.Levels) != 16 || p.Duration != 5e-6 {
			t.Fatal("shape wrong")
		}
		if p.MaxAbs() > 0.8 {
			t.Fatalf("amplitude bound violated: %g", p.MaxAbs())
		}
	}
}

func TestMultitoneSuperposition(t *testing.T) {
	m := &Multitone{Tones: []Tone{{Freq: 1e6, Amp: 1}, {Freq: 2e6, Amp: 0.5}}}
	fs := 100e6
	got := m.Sample(fs, 64)
	for i := range got {
		ts := float64(i) / fs
		want := math.Sin(2*math.Pi*1e6*ts) + 0.5*math.Sin(2*math.Pi*2e6*ts)
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want)
		}
	}
}

func TestSinePhase(t *testing.T) {
	s := Sine(0, 2, math.Pi/2, 1, 4)
	for _, v := range s {
		if math.Abs(v-2) > 1e-12 {
			t.Fatalf("DC-from-phase wrong: %v", s)
		}
	}
}

func TestGaussianNoiseStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 100000
	x := GaussianNoise(rng, 0.001, n)
	var mean, ms float64
	for _, v := range x {
		mean += v
		ms += v * v
	}
	mean /= float64(n)
	ms /= float64(n)
	if math.Abs(mean) > 1e-4 {
		t.Fatalf("noise mean %g", mean)
	}
	if math.Abs(math.Sqrt(ms)-0.001) > 5e-5 {
		t.Fatalf("noise sigma %g, want 0.001", math.Sqrt(ms))
	}
}

func TestAddNoiseZeroSigmaIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := []float64{1, 2, 3}
	y := AddNoise(rng, x, 0)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("zero-sigma noise changed the signal")
		}
	}
}

func TestChirpFrequencyProgression(t *testing.T) {
	fs := 100e6
	n := 10000
	x := Chirp(1e6, 10e6, 1, fs, n)
	// Count zero crossings in first and last quarter; the last quarter must
	// have more (higher instantaneous frequency).
	count := func(seg []float64) int {
		c := 0
		for i := 1; i < len(seg); i++ {
			if (seg[i-1] < 0) != (seg[i] < 0) {
				c++
			}
		}
		return c
	}
	early := count(x[:n/4])
	late := count(x[3*n/4:])
	if late <= early {
		t.Fatalf("chirp not sweeping up: early=%d late=%d", early, late)
	}
}

// Property: PWL evaluation lies within the min/max of its breakpoints.
func TestPropertyPWLBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		lv := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range lv {
			lv[i] = r.NormFloat64()
			if lv[i] < lo {
				lo = lv[i]
			}
			if lv[i] > hi {
				hi = lv[i]
			}
		}
		p, err := NewPWL(lv, 1e-6)
		if err != nil {
			return false
		}
		for k := 0; k < 50; k++ {
			v := p.At(r.Float64() * 1e-6)
			if v < lo-1e-12 || v > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
