// Package wave provides the test-stimulus waveform models. The paper's
// optimized stimulus is a piecewise-linear (PWL) baseband waveform whose
// breakpoint amplitudes are the genome of the genetic optimization
// (Section 3.1); this package also supplies the carriers, multitone and
// noise sources used by the conventional tests and by ablation studies.
package wave

import (
	"fmt"
	"math"
	"math/rand"
)

// PWL is a piecewise-linear waveform: Levels[i] is the value at time
// i*Duration/(len(Levels)-1), with linear interpolation between breakpoints.
// This matches the paper's "breakpoints of the PWL stimulus are encoded as
// a genetic string".
type PWL struct {
	Levels   []float64 // breakpoint values, len >= 2
	Duration float64   // seconds
}

// NewPWL validates and builds a PWL waveform.
func NewPWL(levels []float64, duration float64) (*PWL, error) {
	if len(levels) < 2 {
		return nil, fmt.Errorf("wave: PWL needs >= 2 breakpoints, got %d", len(levels))
	}
	if duration <= 0 {
		return nil, fmt.Errorf("wave: PWL duration must be positive, got %g", duration)
	}
	out := make([]float64, len(levels))
	copy(out, levels)
	return &PWL{Levels: out, Duration: duration}, nil
}

// At evaluates the waveform at time t (clamped to [0, Duration]).
func (p *PWL) At(t float64) float64 {
	if t <= 0 {
		return p.Levels[0]
	}
	if t >= p.Duration {
		return p.Levels[len(p.Levels)-1]
	}
	nseg := len(p.Levels) - 1
	pos := t / p.Duration * float64(nseg)
	i := int(pos)
	if i >= nseg {
		i = nseg - 1
	}
	frac := pos - float64(i)
	return p.Levels[i]*(1-frac) + p.Levels[i+1]*frac
}

// Sample returns n samples at sample rate fs starting at t=0.
func (p *PWL) Sample(fs float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.At(float64(i) / fs)
	}
	return out
}

// MaxAbs returns the waveform's peak magnitude.
func (p *PWL) MaxAbs() float64 {
	mx := 0.0
	for _, v := range p.Levels {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Clamp limits every breakpoint into [-limit, limit], in place, and returns
// the receiver. Used to enforce AWG full-scale range on GA offspring.
func (p *PWL) Clamp(limit float64) *PWL {
	for i, v := range p.Levels {
		if v > limit {
			p.Levels[i] = limit
		} else if v < -limit {
			p.Levels[i] = -limit
		}
	}
	return p
}

// Clone deep-copies the waveform.
func (p *PWL) Clone() *PWL {
	lv := make([]float64, len(p.Levels))
	copy(lv, p.Levels)
	return &PWL{Levels: lv, Duration: p.Duration}
}

// RandomPWL draws breakpoints uniformly from [-amp, amp]; the GA's initial
// population.
func RandomPWL(rng *rand.Rand, nbreak int, amp, duration float64) *PWL {
	lv := make([]float64, nbreak)
	for i := range lv {
		lv[i] = amp * (2*rng.Float64() - 1)
	}
	p, err := NewPWL(lv, duration)
	if err != nil {
		panic(err) // nbreak/duration validated by callers
	}
	return p
}

// Tone is a single sinusoid.
type Tone struct {
	Freq  float64 // Hz
	Amp   float64 // volts peak
	Phase float64 // radians
}

// Multitone is a sum of sinusoids, e.g. the two-tone stimulus used by the
// conventional IIP3 test (900 MHz and 920 MHz in the paper's simulation).
type Multitone struct {
	Tones []Tone
}

// At evaluates the multitone at time t.
func (m *Multitone) At(t float64) float64 {
	s := 0.0
	for _, tn := range m.Tones {
		s += tn.Amp * math.Sin(2*math.Pi*tn.Freq*t+tn.Phase)
	}
	return s
}

// Sample returns n samples at sample rate fs.
func (m *Multitone) Sample(fs float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.At(float64(i) / fs)
	}
	return out
}

// Sine returns n samples of a sinusoid.
func Sine(freq, amp, phase, fs float64, n int) []float64 {
	out := make([]float64, n)
	w := 2 * math.Pi * freq / fs
	for i := range out {
		out[i] = amp * math.Sin(w*float64(i)+phase)
	}
	return out
}

// GaussianNoise returns n samples of white Gaussian noise with the given
// standard deviation (volts). Used for digitizer noise and for the 1 mV
// signature noise in the paper's simulation experiment.
func GaussianNoise(rng *rand.Rand, sigma float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = sigma * rng.NormFloat64()
	}
	return out
}

// AddNoise returns x + white Gaussian noise of the given sigma.
func AddNoise(rng *rand.Rand, x []float64, sigma float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v + sigma*rng.NormFloat64()
	}
	return out
}

// Chirp returns a linear frequency sweep from f0 to f1 Hz over n samples;
// one of the naive comparison stimuli in the stimulus ablation.
func Chirp(f0, f1, amp, fs float64, n int) []float64 {
	out := make([]float64, n)
	dur := float64(n) / fs
	k := (f1 - f0) / dur
	for i := range out {
		t := float64(i) / fs
		out[i] = amp * math.Sin(2*math.Pi*(f0*t+0.5*k*t*t))
	}
	return out
}
