package modelreg

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diskfault"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/wave"
)

// fixture is the shared engineering phase — the same recipe as the
// lotrun/netfloor/lotserver test fixtures, so fingerprints and bins are
// comparable across packages.
type fixture struct {
	cfg   *core.TestConfig
	cal   *core.Calibration
	stim  *wave.PWL
	gate  *floor.Gate
	model core.DeviceModel
	train []core.TrainingDevice
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, 60, 0.9)
		if err != nil {
			fixErr = err
			return
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train,
			func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			fixErr = err
			return
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			fixErr = err
			return
		}
		sigs := make([][]float64, len(td))
		for i := range td {
			sigs[i] = td[i].Signature
		}
		gate, err := floor.FitGate(sigs, floor.GateOptions{})
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{cfg: cfg, cal: cal, stim: stim, gate: gate, model: model, train: td}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func rf2401Pass(s lna.Specs) bool {
	return s.GainDB >= 10.0 && s.NFDB <= 4.2 && s.IIP3DBm >= -9.5
}

func (f *fixture) engine() *floor.Engine {
	return &floor.Engine{
		Cfg:      f.cfg,
		Cal:      f.cal,
		Stim:     f.stim,
		Gate:     f.gate,
		PredPass: rf2401Pass,
		TruePass: rf2401Pass,
		Policy:   floor.DefaultPolicy(),
	}
}

// badCalibration retrains the spec maps against shifted targets: its
// predictions are wrong by tens of dB, so shadow scoring against the
// incumbent must diverge immediately.
func badCalibration(t *testing.T, f *fixture) *core.Calibration {
	t.Helper()
	mangled := make([]core.TrainingDevice, len(f.train))
	for i, td := range f.train {
		td.Specs.GainDB -= 40
		td.Specs.IIP3DBm -= 40
		mangled[i] = td
	}
	cal, err := core.Calibrate(rand.New(rand.NewSource(5)), f.stim, mangled, core.CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestArtifactRoundTrip: an artifact decoded from its wire/disk bytes
// must rebuild an engine with the same fingerprint and bit-identical
// predictions.
func TestArtifactRoundTrip(t *testing.T) {
	f := getFixture(t)
	base := f.engine()
	art, err := NewArtifact(base, f.cal, f.gate, "round-trip")
	if err != nil {
		t.Fatal(err)
	}
	if art.Fingerprint != base.Fingerprint() {
		t.Fatalf("artifact fingerprint %016x, base engine %016x", art.Fingerprint, base.Fingerprint())
	}
	data, err := EncodeArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := back.Engine(base)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Fingerprint() != base.Fingerprint() {
		t.Fatalf("rebuilt engine fingerprint %016x, want %016x", eng.Fingerprint(), base.Fingerprint())
	}
	for i, td := range f.train {
		want := f.cal.Predict(td.Signature)
		got := back.Cal.Predict(td.Signature)
		if want != got {
			t.Fatalf("training device %d: decoded calibration predicts %+v, want %+v", i, got, want)
		}
		v1, d1 := f.gate.Classify(td.Signature)
		v2, d2 := back.Gate.Classify(td.Signature)
		if v1 != v2 || d1 != d2 {
			t.Fatalf("training device %d: decoded gate classifies differently", i)
		}
	}
}

// TestArtifactEngineRefusesForeignBase: building an artifact's engine on
// a base calibrated with a different policy must fail the fingerprint
// check instead of silently screening with changed semantics.
func TestArtifactEngineRefusesForeignBase(t *testing.T) {
	f := getFixture(t)
	base := f.engine()
	art, err := NewArtifact(base, f.cal, f.gate, "")
	if err != nil {
		t.Fatal(err)
	}
	foreign := f.engine()
	foreign.Policy.MaxRetests = 7
	if _, err := art.Engine(foreign); err == nil {
		t.Fatal("artifact engine built on a foreign base, want fingerprint refusal")
	}
}

// TestRegistryLifecycle: stage, activate, demote, and reload from disk —
// the durable state machine behind rollouts.
func TestRegistryLifecycle(t *testing.T) {
	f := getFixture(t)
	base := f.engine()
	dir := t.TempDir()

	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := NewArtifact(base, f.cal, f.gate, "first")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := reg.Stage(a1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewArtifact(base, f.cal, f.gate, "second")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Stage(a2)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d,%d want 1,2", v1, v2)
	}
	if err := reg.SetActive(v1); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetActive(99); err == nil {
		t.Fatal("SetActive(99) succeeded for an unstaged version")
	}
	ev := &DivergenceStats{Version: v2, Scored: 64, Disagree: 9, DisagreeRate: 9.0 / 64}
	if err := reg.Demote(v2, "bin disagreement out of bounds", ev); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetActive(v2); err == nil {
		t.Fatal("SetActive succeeded for a demoted version")
	}
	if err := reg.SetRollout(&RolloutState{Candidate: v1, Stage: StageCanary, Fraction: 0.5}); err != nil {
		t.Fatal(err)
	}

	// Reload: artifacts, pointer, demotion evidence, rollout position.
	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Active(); got != v1 {
		t.Fatalf("reloaded active %d want %d", got, v1)
	}
	if got := reg2.Versions(); len(got) != 2 {
		t.Fatalf("reloaded versions %v want 2 entries", got)
	}
	d, ok := reg2.Demoted(v2)
	if !ok || d.Evidence == nil || d.Evidence.Disagree != 9 {
		t.Fatalf("reloaded demotion %+v lost its evidence", d)
	}
	ro := reg2.Rollout()
	if ro == nil || ro.Candidate != v1 || ro.Stage != StageCanary || ro.Fraction != 0.5 {
		t.Fatalf("reloaded rollout %+v", ro)
	}
	if err := reg2.SetRollout(nil); err != nil {
		t.Fatal(err)
	}
	reg3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg3.Rollout() != nil {
		t.Fatal("cleared rollout survived reload")
	}

	// The reloaded artifact still rebuilds a bit-identical engine.
	art, ok := reg2.Get(v1)
	if !ok {
		t.Fatal("reloaded registry lost v1")
	}
	eng, err := art.Engine(base)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Fingerprint() != base.Fingerprint() {
		t.Fatal("reloaded artifact engine fingerprint changed")
	}
}

// TestRegistryTolientCorruption: a scribbled artifact record is skipped
// on load (counted, not trusted), and a corrupt ACTIVE pointer degrades
// to "no incumbent" instead of bricking the registry.
func TestRegistryToleratesCorruption(t *testing.T) {
	f := getFixture(t)
	base := f.engine()
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a, err := NewArtifact(base, f.cal, f.gate, "x")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Stage(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.SetActive(1); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of v2's record.
	p2 := filepath.Join(dir, "v000002.art")
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg2.Get(2); ok {
		t.Fatal("corrupt artifact v2 was loaded")
	}
	if info := reg2.LoadInfo(); info.Corrupt != 1 || info.Artifacts != 1 {
		t.Fatalf("load info %+v want 1 corrupt, 1 artifact", info)
	}
	if reg2.Active() != 1 {
		t.Fatalf("active %d want 1", reg2.Active())
	}
	// A staged version after the corrupt one must not collide with it.
	a, err := NewArtifact(base, f.cal, f.gate, "post-corruption")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := reg2.Stage(a); err != nil || v != 3 {
		t.Fatalf("stage after corruption: v=%d err=%v, want v=3", v, err)
	}

	// Scribble the ACTIVE pointer itself.
	if err := os.WriteFile(filepath.Join(dir, "ACTIVE"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg3.Active() != 0 {
		t.Fatalf("corrupt ACTIVE resolved to %d, want 0", reg3.Active())
	}
}

// TestRegistryInMemory: dir == "" keeps the full API without touching
// disk — the mode single-binary flows use.
func TestRegistryInMemory(t *testing.T) {
	f := getFixture(t)
	reg, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArtifact(f.engine(), f.cal, f.gate, "")
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.Stage(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetActive(v); err != nil {
		t.Fatal(err)
	}
	if err := reg.Demote(v, "test", nil); err != nil {
		t.Fatal(err)
	}
	if reg.Active() != 0 {
		t.Fatal("demoting the active version must clear the pointer")
	}
}

// TestShadowScorer: a candidate identical to the incumbent stays healthy;
// a mis-trained candidate trips the divergence bounds.
func TestShadowScorer(t *testing.T) {
	f := getFixture(t)
	base := f.engine()
	rng := rand.New(rand.NewSource(23))
	pool, err := core.GeneratePopulation(rng, f.model, 48, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	const lotSeed = 777
	rep, err := base.RunLot(lotSeed, pool, nil)
	if err != nil {
		t.Fatal(err)
	}

	bounds := Bounds{MinSamples: 16}
	same := NewShadowScorer(1, base.WithModel(f.cal, f.gate), bounds)
	bad := NewShadowScorer(2, base.WithModel(badCalibration(t, f), f.gate), bounds)
	ctx := context.Background()
	for i, res := range rep.Results {
		same.Observe(ctx, lotSeed, pool[i], nil, res)
		bad.Observe(ctx, lotSeed, pool[i], nil, res)
	}
	if !same.Healthy() {
		t.Fatalf("identical candidate unhealthy: %+v", same.Stats())
	}
	if ex, _ := same.Exceeded(); ex {
		t.Fatal("identical candidate exceeded bounds")
	}
	st := same.Stats()
	if st.Disagree != 0 || st.ResidualEWMA[0] != 0 {
		t.Fatalf("identical candidate diverged: %+v", st)
	}
	if ex, reason := bad.Exceeded(); !ex {
		t.Fatalf("mis-trained candidate not flagged: %+v", bad.Stats())
	} else if reason == "" {
		t.Fatal("exceeded without a reason")
	}
	if bad.Healthy() {
		t.Fatal("mis-trained candidate reported healthy")
	}
}

// TestRegistryCorruptArtifactTailSweep: the last staged artifact record
// damaged at every byte offset — truncated there, and with that byte
// flipped — must always load as skip-and-count: Open never fails, never
// trusts the damaged artifact, and never reuses its burned version
// number. This is the registry mirror of the lot journal's torn-tail
// test: CRC framing turns every partial or scribbled record into a
// detected corruption, at every possible damage point.
func TestRegistryCorruptArtifactTailSweep(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArtifact(f.engine(), f.cal, f.gate, "sweep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Stage(a); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "v000001.art")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(mutated []byte, desc string) {
		t.Helper()
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("%s: open failed outright: %v", desc, err)
		}
		if info := r.LoadInfo(); info.Artifacts != 0 || info.Corrupt != 1 {
			t.Fatalf("%s: load info %+v, want 0 artifacts / 1 corrupt", desc, info)
		}
		if _, ok := r.Get(1); ok {
			t.Fatalf("%s: damaged artifact was trusted", desc)
		}
	}

	// Truncation at every offset: every crash point mid-write. Dropping
	// only the trailing newline leaves the envelope complete — that one
	// "truncation" is a valid record, so the sweep stops one byte short.
	for cut := 0; cut < len(good)-1; cut++ {
		check(good[:cut], fmt.Sprintf("truncate@%d", cut))
	}
	// One flipped byte at every offset: every scribble point.
	for pos := 0; pos < len(good); pos++ {
		mutated := append([]byte(nil), good...)
		mutated[pos] ^= 0x40
		check(mutated, fmt.Sprintf("flip@%d", pos))
	}

	// The burned version number survives any of the above: a post-damage
	// Stage must take v2, never silently overwrite v1's file.
	if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArtifact(f.engine(), f.cal, f.gate, "post-damage")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := r.Stage(b); err != nil || v != 2 {
		t.Fatalf("stage after damage: v=%d err=%v, want v=2", v, err)
	}
}

// TestRegistryActivePrevFallback: a corrupt ACTIVE pointer (torn rename,
// scribble) recovers the last-good incumbent from ACTIVE.prev instead of
// silently reverting to the base model.
func TestRegistryActivePrevFallback(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a, err := NewArtifact(f.engine(), f.cal, f.gate, "prev")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Stage(a); err != nil {
			t.Fatal(err)
		}
	}
	// Two swaps: ACTIVE = 2, ACTIVE.prev preserves the v1 incumbency.
	if err := reg.SetActive(1); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetActive(2); err != nil {
		t.Fatal(err)
	}

	// Scribble ACTIVE: the reopen must fall back to v1, not to base.
	if err := os.WriteFile(filepath.Join(dir, "ACTIVE"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Active() != 1 {
		t.Fatalf("corrupt ACTIVE resolved to %d, want fallback to 1", reg2.Active())
	}
	if info := reg2.LoadInfo(); info.Fallbacks != 1 || info.Corrupt != 1 {
		t.Fatalf("load info %+v, want 1 fallback / 1 corrupt", info)
	}

	// Both pointer records corrupt: only then does the registry drop to
	// the base model.
	if err := os.WriteFile(filepath.Join(dir, "ACTIVE.prev"), []byte("also garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg3.Active() != 0 {
		t.Fatalf("doubly corrupt pointers resolved to %d, want 0", reg3.Active())
	}
	if info := reg3.LoadInfo(); info.Fallbacks != 0 {
		t.Fatalf("load info %+v, want no fallback when prev is corrupt too", info)
	}
}

// TestRegistryFaultFSCorruptRename: an injected corrupt-on-rename on the
// ACTIVE swap — the write path reports success, the destination record is
// scribbled — is healed at the next Open via the ACTIVE.prev chain. The
// fault schedule is a pure function of (seed, op index), like every
// diskfault schedule.
func TestRegistryFaultFSCorruptRename(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()

	// Clean setup on the real filesystem: two staged versions, v1 active.
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		a, err := NewArtifact(f.engine(), f.cal, f.gate, "faultfs")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Stage(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.SetActive(1); err != nil {
		t.Fatal(err)
	}

	// Reopen through a FaultFS whose schedule corrupts exactly the rename
	// that lands the new ACTIVE pointer. Op accounting for this sequence:
	// OpenFS rolls MkdirAll, ReadDir, two artifact ReadFiles, the ACTIVE
	// ReadFile and the ROLLOUT ReadFile (ops 0-5); SetActive(2) then
	// writes ACTIVE.prev (OpenFile/Write/Sync/Rename/SyncDir, ops 6-10)
	// and ACTIVE (ops 11-15) — its Rename is op 14.
	ffs := diskfault.NewFaultFS(diskfault.OS, 1, diskfault.Profile{
		CorruptRenameP: 1, FirstFaultOp: 14,
	})
	freg, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if freg.Active() != 1 {
		t.Fatalf("faulty reopen active %d, want 1", freg.Active())
	}
	// The swap itself reports success — the corruption is silent, which is
	// exactly why the prev chain has to exist.
	if err := freg.SetActive(2); err != nil {
		t.Fatalf("SetActive under corrupt rename errored: %v", err)
	}
	if st := ffs.Stats(); st.CorruptRenames != 1 {
		t.Fatalf("fault stats %+v, want exactly 1 corrupt rename (op accounting drifted?)", st)
	}

	// The next clean Open detects the scribbled ACTIVE by CRC and recovers
	// the v1 incumbency from ACTIVE.prev.
	reg2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reg2.Active() != 1 {
		t.Fatalf("post-fault active %d, want fallback to 1", reg2.Active())
	}
	if info := reg2.LoadInfo(); info.Fallbacks != 1 {
		t.Fatalf("load info %+v, want 1 fallback", info)
	}
}
