package modelreg

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/diskfault"
)

// On-disk layout of a registry directory:
//
//	v000001.art      one CRC-framed JSON record per staged artifact
//	v000001.demoted  demotion record (reason + divergence evidence)
//	ACTIVE           CRC-framed {"active":N} — the incumbent pointer
//	ROLLOUT          CRC-framed rollout state while one is in progress
//
// Every record is a single line `{"crc":C,"rec":R}` (IEEE CRC32 of the
// raw Rec bytes — the lot journal's envelope), written to a temp file,
// fsync'd, and renamed into place, then the directory fsync'd: a crash
// leaves either the old record or the new one, never a torn hybrid, and
// the ACTIVE swap in particular is atomic. Open scans tolerantly — a
// corrupt artifact is skipped (and counted), never trusted.

// RolloutState is the persisted position of an in-progress rollout, so a
// killed server resumes staging/canarying the same candidate.
type RolloutState struct {
	// Candidate is the version under evaluation.
	Candidate int `json:"candidate"`
	// Stage is StageShadow or StageCanary.
	Stage string `json:"stage"`
	// Fraction is the canary traffic fraction in [0,1] (canary stage).
	Fraction float64 `json:"fraction,omitempty"`
}

// Rollout stages.
const (
	StageShadow = "shadow"
	StageCanary = "canary"
)

// Demotion records a failed version: why it was pulled and the divergence
// evidence at the moment of rollback.
type Demotion struct {
	Version  int              `json:"version"`
	Reason   string           `json:"reason"`
	Unix     int64            `json:"unix,omitempty"`
	Evidence *DivergenceStats `json:"evidence,omitempty"`
}

// LoadStats reports what Open found on disk.
type LoadStats struct {
	Artifacts int // valid artifacts loaded
	Corrupt   int // artifact/pointer records skipped as unreadable
	// Fallbacks counts pointer records recovered from their last-good
	// predecessor (a corrupt or half-written ACTIVE restored from
	// ACTIVE.prev) instead of being dropped.
	Fallbacks int
}

// Registry is the versioned artifact store. With a directory it is
// durable (fsync'd records, atomic pointer swaps, loadable on restart);
// with dir == "" it is purely in-memory — same API, no persistence —
// which keeps single-binary flows working without a registry path.
// All methods are safe for concurrent use.
type Registry struct {
	dir  string
	fsys diskfault.FS

	mu       sync.Mutex
	arts     map[int]*Artifact
	demoted  map[int]*Demotion
	next     int
	active   int
	rollout  *RolloutState
	loadInfo LoadStats
}

// Open loads (or initializes) a registry rooted at dir; dir == "" builds
// an in-memory registry.
func Open(dir string) (*Registry, error) {
	return OpenFS(dir, diskfault.OS)
}

// OpenFS is Open on an explicit filesystem seam — fault-injection tests
// substitute a seeded diskfault.FaultFS.
func OpenFS(dir string, fsys diskfault.FS) (*Registry, error) {
	if fsys == nil {
		fsys = diskfault.OS
	}
	r := &Registry{dir: dir, fsys: fsys, arts: make(map[int]*Artifact), demoted: make(map[int]*Demotion), next: 1}
	if dir == "" {
		return r, nil
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelreg: create registry dir: %w", err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("modelreg: read registry dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		var v int
		switch {
		case len(name) > 4 && name[len(name)-4:] == ".art":
			if _, err := fmt.Sscanf(name, "v%06d.art", &v); err != nil || v <= 0 {
				continue
			}
			// A version number is burned the moment its file exists —
			// even unreadable — so a corrupt record can never be silently
			// overwritten by a later Stage reusing its number.
			if v >= r.next {
				r.next = v + 1
			}
			var a Artifact
			if err := r.readRecord(filepath.Join(dir, name), &a); err != nil || a.Cal == nil || a.Gate == nil {
				r.loadInfo.Corrupt++
				continue
			}
			a.Version = v
			r.arts[v] = &a
			r.loadInfo.Artifacts++
		case len(name) > 8 && name[len(name)-8:] == ".demoted":
			if _, err := fmt.Sscanf(name, "v%06d.demoted", &v); err != nil || v <= 0 {
				continue
			}
			var d Demotion
			if err := r.readRecord(filepath.Join(dir, name), &d); err != nil {
				r.loadInfo.Corrupt++
				continue
			}
			d.Version = v
			r.demoted[v] = &d
		}
	}
	// The pointer records are critical state with a fallback chain: a
	// corrupt or half-written ACTIVE (a rename that landed torn) falls
	// back to the last-good pointer preserved in ACTIVE.prev by the
	// previous swap, so the incumbent survives a scribbled swap instead
	// of silently reverting to the base model. The rollout record stays
	// advisory: a corrupt one degrades to "no rollout in progress".
	validPointer := func(v int) bool {
		if v == 0 {
			return true
		}
		_, ok := r.arts[v]
		return ok && r.demoted[v] == nil
	}
	fallbackPrev := func() {
		var prev struct {
			Active int `json:"active"`
		}
		if err := r.readRecord(filepath.Join(dir, "ACTIVE.prev"), &prev); err == nil && validPointer(prev.Active) {
			r.active = prev.Active
			r.loadInfo.Fallbacks++
		}
	}
	var act struct {
		Active int `json:"active"`
	}
	switch err := r.readRecord(filepath.Join(dir, "ACTIVE"), &act); {
	case err == nil:
		if validPointer(act.Active) {
			r.active = act.Active
		} else {
			r.loadInfo.Corrupt++
			fallbackPrev()
		}
	case os.IsNotExist(err):
	default:
		r.loadInfo.Corrupt++
		fallbackPrev()
	}
	var ro RolloutState
	switch err := r.readRecord(filepath.Join(dir, "ROLLOUT"), &ro); {
	case err == nil:
		if _, ok := r.arts[ro.Candidate]; ok && (ro.Stage == StageShadow || ro.Stage == StageCanary) {
			r.rollout = &ro
		} else {
			r.loadInfo.Corrupt++
		}
	case os.IsNotExist(err):
	default:
		r.loadInfo.Corrupt++
	}
	return r, nil
}

// Dir returns the backing directory ("" for in-memory).
func (r *Registry) Dir() string { return r.dir }

// LoadInfo reports what Open found.
func (r *Registry) LoadInfo() LoadStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.loadInfo
}

// Stage assigns the next version to a candidate artifact and persists it.
// The artifact is durable before Stage returns; it is not yet active.
func (r *Registry) Stage(a *Artifact) (int, error) {
	if a == nil || a.Cal == nil || a.Gate == nil {
		return 0, fmt.Errorf("modelreg: stage: artifact has no model")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.next
	cp := *a
	cp.Version = v
	if cp.CreatedUnix == 0 {
		cp.CreatedUnix = time.Now().Unix()
	}
	if r.dir != "" {
		if err := r.writeRecord(fmt.Sprintf("v%06d.art", v), &cp); err != nil {
			return 0, err
		}
	}
	r.arts[v] = &cp
	r.next = v + 1
	a.Version = v
	return v, nil
}

// Get returns the artifact for a version.
func (r *Registry) Get(v int) (*Artifact, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.arts[v]
	return a, ok
}

// Active returns the incumbent version (0 = the process's base model).
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active
}

// SetActive atomically swaps the incumbent pointer to v. v must be a
// staged, non-demoted version (or 0 to fall back to the base model).
func (r *Registry) SetActive(v int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v != 0 {
		if _, ok := r.arts[v]; !ok {
			return fmt.Errorf("modelreg: set active: version %d not staged", v)
		}
		if d := r.demoted[v]; d != nil {
			return fmt.Errorf("modelreg: set active: version %d was demoted (%s)", v, d.Reason)
		}
	}
	if r.dir != "" {
		// Preserve the incumbent pointer first: if the swap below lands
		// corrupt (torn rename, crash mid-replace), the next Open falls
		// back to this last-good record instead of the base model.
		if err := r.writeRecord("ACTIVE.prev", struct {
			Active int `json:"active"`
		}{r.active}); err != nil {
			return err
		}
		if err := r.writeRecord("ACTIVE", struct {
			Active int `json:"active"`
		}{v}); err != nil {
			return err
		}
	}
	r.active = v
	return nil
}

// Demote records a failed version with its evidence. The artifact stays
// in the registry — lots already pinned to it must keep resolving it —
// but it can never become active again.
func (r *Registry) Demote(v int, reason string, ev *DivergenceStats) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.arts[v]; !ok {
		return fmt.Errorf("modelreg: demote: version %d not staged", v)
	}
	d := &Demotion{Version: v, Reason: reason, Unix: time.Now().Unix(), Evidence: ev}
	if r.dir != "" {
		if err := r.writeRecord(fmt.Sprintf("v%06d.demoted", v), d); err != nil {
			return err
		}
	}
	r.demoted[v] = d
	if r.active == v {
		r.active = 0
	}
	return nil
}

// Demoted reports whether v was demoted, and why.
func (r *Registry) Demoted(v int) (*Demotion, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.demoted[v]
	return d, ok
}

// Demotions lists every recorded demotion, oldest version first.
func (r *Registry) Demotions() []Demotion {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Demotion, 0, len(r.demoted))
	for _, d := range r.demoted {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// Versions lists staged versions in ascending order.
func (r *Registry) Versions() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.arts))
	for v := range r.arts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// SetRollout persists the in-progress rollout position (nil clears it).
func (r *Registry) SetRollout(st *RolloutState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st != nil {
		if _, ok := r.arts[st.Candidate]; !ok {
			return fmt.Errorf("modelreg: rollout: candidate %d not staged", st.Candidate)
		}
		cp := *st
		if r.dir != "" {
			if err := r.writeRecord("ROLLOUT", &cp); err != nil {
				return err
			}
		}
		r.rollout = &cp
		return nil
	}
	if r.dir != "" {
		if err := r.fsys.Remove(filepath.Join(r.dir, "ROLLOUT")); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("modelreg: clear rollout: %w", err)
		}
		r.fsys.SyncDir(r.dir)
	}
	r.rollout = nil
	return nil
}

// Rollout returns the persisted rollout position (nil when idle).
func (r *Registry) Rollout() *RolloutState {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rollout == nil {
		return nil
	}
	cp := *r.rollout
	return &cp
}

// writeRecord durably replaces dir/name with one CRC-framed record:
// marshal, envelope, write to a temp file, fsync, rename, fsync dir —
// every step through the diskfault seam.
func (r *Registry) writeRecord(name string, rec any) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("modelreg: marshal %s: %w", name, err)
	}
	crc := crc32.ChecksumIEEE(raw)
	line, err := json.Marshal(struct {
		Crc uint32          `json:"crc"`
		Rec json.RawMessage `json:"rec"`
	}{crc, raw})
	if err != nil {
		return fmt.Errorf("modelreg: envelope %s: %w", name, err)
	}
	tmp := filepath.Join(r.dir, "."+name+".tmp")
	f, err := r.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("modelreg: create %s: %w", name, err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		r.fsys.Remove(tmp)
		return fmt.Errorf("modelreg: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		r.fsys.Remove(tmp)
		return fmt.Errorf("modelreg: fsync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		r.fsys.Remove(tmp)
		return fmt.Errorf("modelreg: close %s: %w", name, err)
	}
	if err := r.fsys.Rename(tmp, filepath.Join(r.dir, name)); err != nil {
		r.fsys.Remove(tmp)
		return fmt.Errorf("modelreg: swap %s: %w", name, err)
	}
	// Best-effort on real filesystems; an injected dir-sync fault is not
	// fatal either — the rename itself already happened.
	r.fsys.SyncDir(r.dir)
	return nil
}

// readRecord loads one CRC-framed record; any framing or checksum
// violation is an error (the caller decides whether to tolerate it).
func (r *Registry) readRecord(path string, rec any) error {
	data, err := r.fsys.ReadFile(path)
	if err != nil {
		return err
	}
	var env struct {
		Crc *uint32         `json:"crc"`
		Rec json.RawMessage `json:"rec"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("modelreg: %s: bad envelope: %w", filepath.Base(path), err)
	}
	if env.Crc == nil || env.Rec == nil || crc32.ChecksumIEEE(env.Rec) != *env.Crc {
		return fmt.Errorf("modelreg: %s: checksum mismatch", filepath.Base(path))
	}
	if err := json.Unmarshal(env.Rec, rec); err != nil {
		return fmt.Errorf("modelreg: %s: bad record: %w", filepath.Base(path), err)
	}
	return nil
}
