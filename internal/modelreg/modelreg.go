// Package modelreg is the versioned calibration-model registry and the
// rollout machinery around it: the piece that lets a production floor
// change its signature→spec regression while lots are in flight.
//
// The paper's flow calibrates once and screens forever; a floor that runs
// continuously has to recalibrate live — the drift watchdog demands it —
// and a new calibration is a new screening function, so swapping it
// mid-lot would break the contract that bins are a pure function of
// (lot seed, device index). The registry resolves the tension by making
// the model version part of the pure function: artifacts (calibration +
// gate + engine fingerprint) are persisted as fsync'd CRC-framed records
// keyed by a monotonically assigned version; every lot is pinned to
// exactly one version for its whole life; and an atomically-swapped
// ACTIVE pointer decides what new lots get. Bins become a pure function
// of (lot seed, device index, model version).
//
// Promotion is evidence-driven, never blind: a staged candidate is first
// shadow-scored against the incumbent on live production devices (the
// incumbent's bins stay authoritative), accumulating divergence
// statistics — bin disagreement rate and per-spec prediction-residual
// EWMAs — and only a candidate whose divergence stays within bounds may
// be promoted, first to a canary fraction of traffic, then to ACTIVE.
// A candidate that misbehaves (divergence out of bounds, or a drift
// alarm on a canary lot) is demoted automatically, and the demotion is
// recorded with its evidence so the failed version cannot be re-promoted
// by accident.
package modelreg

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/floor"
)

// Artifact is one versioned calibration: everything needed to rebuild a
// screening engine with identical semantics on any process — the
// regression models, the sanity gate, and the fingerprint the rebuilt
// engine must hash to.
type Artifact struct {
	// Version is assigned by the registry on Stage; 0 means "the base
	// calibration the process booted with" and never appears in the
	// registry itself.
	Version int `json:"version"`
	// Fingerprint is floor.Engine.Fingerprint of an engine built from
	// this artifact on its base engine — the identity remote sites and
	// journal resume verify against.
	Fingerprint uint64 `json:"fingerprint"`
	// Note records provenance: who staged it and why (e.g. the drift
	// alarm that demanded recalibration).
	Note        string            `json:"note,omitempty"`
	CreatedUnix int64             `json:"created_unix,omitempty"`
	Cal         *core.Calibration `json:"cal"`
	Gate        *floor.Gate       `json:"gate"`
}

// NewArtifact wraps a freshly trained calibration and gate, stamping the
// fingerprint of the engine they produce on base.
func NewArtifact(base *floor.Engine, cal *core.Calibration, gate *floor.Gate, note string) (*Artifact, error) {
	if base == nil || cal == nil || gate == nil {
		return nil, fmt.Errorf("modelreg: artifact needs a base engine, calibration and gate")
	}
	for i, m := range cal.Models {
		if m == nil {
			return nil, fmt.Errorf("modelreg: calibration is missing spec model %d", i)
		}
	}
	eng := base.WithModel(cal, gate)
	if err := eng.Validate(); err != nil {
		return nil, fmt.Errorf("modelreg: artifact engine invalid: %w", err)
	}
	return &Artifact{Fingerprint: eng.Fingerprint(), Note: note, Cal: cal, Gate: gate}, nil
}

// Engine builds the runnable screening engine for this artifact on base
// and verifies it hashes to the artifact's fingerprint — a mismatch means
// the base was calibrated differently (wrong board geometry or policy)
// and the artifact's semantics cannot be reproduced here.
func (a *Artifact) Engine(base *floor.Engine) (*floor.Engine, error) {
	if a.Cal == nil || a.Gate == nil {
		return nil, fmt.Errorf("modelreg: artifact v%d has no model", a.Version)
	}
	eng := base.WithModel(a.Cal, a.Gate)
	if err := eng.Validate(); err != nil {
		return nil, fmt.Errorf("modelreg: artifact v%d engine invalid: %w", a.Version, err)
	}
	if fp := eng.Fingerprint(); a.Fingerprint != 0 && fp != a.Fingerprint {
		return nil, fmt.Errorf("modelreg: artifact v%d fingerprint %016x, built engine hashes to %016x",
			a.Version, a.Fingerprint, fp)
	}
	return eng, nil
}

// EncodeArtifact serializes an artifact for the wire (the netfloor model
// fetch) or a registry record. Plain JSON: framing integrity is the
// caller's concern (wire frames and registry records both carry CRCs).
func EncodeArtifact(a *Artifact) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("modelreg: encode nil artifact")
	}
	return json.Marshal(a)
}

// DecodeArtifact rebuilds an artifact from EncodeArtifact bytes.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("modelreg: decode artifact: %w", err)
	}
	if a.Cal == nil || a.Gate == nil {
		return nil, fmt.Errorf("modelreg: decoded artifact v%d has no model", a.Version)
	}
	return &a, nil
}
