package modelreg

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/floor"
)

// Bounds are the promotion gates on shadow divergence. Zero values take
// the defaults.
type Bounds struct {
	// MinSamples is how many shadow-scored devices are needed before any
	// verdict — pass or fail — is trusted (default 32).
	MinSamples int
	// MaxDisagreeRate is the tolerated bin disagreement fraction
	// (default 0.02).
	MaxDisagreeRate float64
	// MaxResidualEWMA bounds each per-spec |candidate − incumbent|
	// prediction residual EWMA, in spec units (default 1.0).
	MaxResidualEWMA float64
	// Lambda is the residual EWMA weight (default 0.2).
	Lambda float64
}

func (b *Bounds) defaults() {
	if b.MinSamples <= 0 {
		b.MinSamples = 32
	}
	if b.MaxDisagreeRate <= 0 {
		b.MaxDisagreeRate = 0.02
	}
	if b.MaxResidualEWMA <= 0 {
		b.MaxResidualEWMA = 1.0
	}
	if b.Lambda <= 0 || b.Lambda > 1 {
		b.Lambda = 0.2
	}
}

// DivergenceStats is the accumulated candidate-vs-incumbent evidence.
type DivergenceStats struct {
	Version      int        `json:"version"`
	Scored       int        `json:"scored"`
	Disagree     int        `json:"disagree"`
	DisagreeRate float64    `json:"disagree_rate"`
	ResidualEWMA [3]float64 `json:"residual_ewma"` // gain, NF, IIP3
	// Dropped counts devices the shadow queue shed under load: shadow
	// scoring is advisory and must never backpressure the hot path.
	Dropped int `json:"dropped,omitempty"`
}

// ShadowScorer re-screens committed devices with a candidate engine and
// accumulates divergence against the incumbent's authoritative results.
// It never influences the incumbent's bins — it only watches. Safe for
// concurrent use.
type ShadowScorer struct {
	version int
	eng     *floor.Engine
	bounds  Bounds

	mu      sync.Mutex
	stats   DivergenceStats
	tripped string // first out-of-bounds reason, sticky
}

// NewShadowScorer builds a scorer for candidate version v running eng.
func NewShadowScorer(v int, eng *floor.Engine, b Bounds) *ShadowScorer {
	b.defaults()
	return &ShadowScorer{version: v, eng: eng, bounds: b, stats: DivergenceStats{Version: v}}
}

// Version returns the candidate version being scored.
func (s *ShadowScorer) Version() int { return s.version }

// Observe screens one committed device with the candidate engine — same
// device seed, so the candidate result is exactly what a lot pinned to
// the candidate would have produced — and folds the divergence. inc is
// the incumbent's authoritative result for the same (lot seed, index).
func (s *ShadowScorer) Observe(ctx context.Context, lotSeed int64, dev *core.Device, faults *floor.FaultModel, inc floor.DeviceResult) {
	seed := core.DeviceSeed(lotSeed, inc.Index)
	cand := s.eng.ScreenDevice(ctx, inc.Index, dev, seed, faults)

	s.mu.Lock()
	defer s.mu.Unlock()
	st := &s.stats
	st.Scored++
	if cand.Bin != inc.Bin {
		st.Disagree++
	}
	st.DisagreeRate = float64(st.Disagree) / float64(st.Scored)
	lam := s.bounds.Lambda
	res := [3]float64{
		abs(cand.Pred.GainDB - inc.Pred.GainDB),
		abs(cand.Pred.NFDB - inc.Pred.NFDB),
		abs(cand.Pred.IIP3DBm - inc.Pred.IIP3DBm),
	}
	for i := range st.ResidualEWMA {
		st.ResidualEWMA[i] = (1-lam)*st.ResidualEWMA[i] + lam*res[i]
	}
	if s.tripped == "" && st.Scored >= s.bounds.MinSamples {
		if st.DisagreeRate > s.bounds.MaxDisagreeRate {
			s.tripped = fmt.Sprintf("bin disagreement rate %.4f > %.4f after %d devices",
				st.DisagreeRate, s.bounds.MaxDisagreeRate, st.Scored)
		} else {
			for i, e := range st.ResidualEWMA {
				if e > s.bounds.MaxResidualEWMA {
					s.tripped = fmt.Sprintf("spec %d residual EWMA %.4f > %.4f after %d devices",
						i, e, s.bounds.MaxResidualEWMA, st.Scored)
					break
				}
			}
		}
	}
}

// Drop counts a device the shadow queue shed under load.
func (s *ShadowScorer) Drop() {
	s.mu.Lock()
	s.stats.Dropped++
	s.mu.Unlock()
}

// Stats snapshots the accumulated divergence.
func (s *ShadowScorer) Stats() DivergenceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Exceeded reports whether divergence has gone out of bounds (sticky),
// with the first offending reason.
func (s *ShadowScorer) Exceeded() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tripped != "", s.tripped
}

// Healthy reports whether enough devices have been scored and every
// divergence bound held — the precondition for promotion.
func (s *ShadowScorer) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Scored >= s.bounds.MinSamples && s.tripped == ""
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
