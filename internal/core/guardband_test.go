package core

import (
	"math"
	"testing"

	"repro/internal/lna"
)

func validationReportWithSigmas(sig [3]float64) *ValidationReport {
	rep := &ValidationReport{}
	names := lna.SpecNames()
	for i := range rep.Specs {
		rep.Specs[i].Name = names[i]
		rep.Specs[i].StdErr = sig[i]
	}
	return rep
}

func TestGuardBandErrorPaths(t *testing.T) {
	rep := validationReportWithSigmas([3]float64{0.1, 0.1, 0.1})
	limits := []SpecLimit{
		{Name: "Gain", Value: 14.5, Upper: false},
		{Name: "NF", Value: 2.7, Upper: true},
		{Name: "IIP3", Value: 0.0, Upper: false},
	}
	for _, p := range []float64{0, -0.1, 0.5, 0.7} {
		if _, err := GuardBand(rep, limits, p); err == nil {
			t.Errorf("escape probability %g must be rejected", p)
		}
	}
	// The limit count must match the validated spec count — not a
	// hardcoded 3.
	if _, err := GuardBand(rep, limits[:2], 0.001); err == nil {
		t.Error("limit count mismatch must be rejected")
	}
	if _, err := GuardBand(rep, append(limits, SpecLimit{Name: "P1dB"}), 0.001); err == nil {
		t.Error("extra limit must be rejected")
	}
}

func TestGuardBandTightensTowardSafety(t *testing.T) {
	rep := validationReportWithSigmas([3]float64{0.2, 0.05, 0.5})
	limits := []SpecLimit{
		{Name: "Gain", Value: 14.5, Upper: false},
		{Name: "NF", Value: 2.7, Upper: true},
		{Name: "IIP3", Value: 0.0, Upper: false},
	}
	gb, err := GuardBand(rep, limits, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// z(0.999) ~= 3.090.
	if math.Abs(gb.Z-3.090) > 5e-3 {
		t.Fatalf("z = %g, want ~3.090", gb.Z)
	}
	// Lower-bounded specs move up, upper-bounded specs move down.
	if gb.Limits[0].Value <= limits[0].Value {
		t.Error("lower-bound gain limit must tighten upward")
	}
	if gb.Limits[1].Value >= limits[1].Value {
		t.Error("upper-bound NF limit must tighten downward")
	}
	for i := range gb.Sigmas {
		if gb.Sigmas[i] != rep.Specs[i].StdErr {
			t.Errorf("sigma %d not taken from the validation report", i)
		}
	}
	// A device exactly on the raw limits fails the guarded ones.
	edge := lna.Specs{GainDB: 14.5, NFDB: 2.7, IIP3DBm: 0.0}
	if gb.Pass(edge) {
		t.Error("edge device must fail guard-banded limits")
	}
	comfortable := lna.Specs{GainDB: 16, NFDB: 2.0, IIP3DBm: 3}
	if !gb.Pass(comfortable) {
		t.Error("comfortable device must pass guard-banded limits")
	}
}

func TestNormalQuantileTailsAndRoundTrip(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.999, 3.090},  // central branch upper tail reference
		{0.001, -3.090}, // tail branch below plow
		{0.01, -2.326},  // below plow
		{0.99, 2.326},   // above 1-plow
		{0.975, 1.960},
		{0.025, -1.960},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.z) > 2e-3 {
			t.Errorf("normalQuantile(%g) = %g, want %g", c.p, got, c.z)
		}
	}
	// Symmetry round-trip across the tail branches.
	for _, p := range []float64{1e-6, 1e-4, 0.02, 0.3, 0.7, 0.98, 0.9999} {
		if got, want := normalQuantile(p), -normalQuantile(1-p); math.Abs(got-want) > 1e-9 {
			t.Errorf("normalQuantile(%g) = %g breaks symmetry with %g", p, got, -want)
		}
	}
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		if got := normalQuantile(p); !math.IsNaN(got) {
			t.Errorf("normalQuantile(%g) = %g, want NaN", p, got)
		}
	}
}
