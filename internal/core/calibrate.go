package core

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/lna"
	"repro/internal/parallel"
	"repro/internal/regress"
	"repro/internal/wave"
)

// Calibration is the paper's "FASTest RF Runtime System" (Fig. 5): per-spec
// normalized regression maps from the measured signature to the data-sheet
// specifications, extracted from a training set of devices that were
// characterized on a conventional RF ATE.
type Calibration struct {
	Stimulus *wave.PWL
	Models   [3]regress.Model // gain, NF, IIP3
	Trainers [3]string        // chosen trainer names
	CVRMS    [3]float64       // cross-validation RMS per spec
}

// CalibrationOptions selects the regression families offered to model
// selection (default: linear, poly-PCA, MARS — mirroring the nonlinear
// regression of refs [4], [9]).
type CalibrationOptions struct {
	Trainers []regress.Trainer
	Folds    int
	// Workers fans the cross-validation out over (trainer, fold) pairs;
	// <= 1 evaluates serially. Results are bit-identical either way.
	Workers int
}

func (o *CalibrationOptions) defaults() {
	if len(o.Trainers) == 0 {
		o.Trainers = []regress.Trainer{
			regress.Ridge{Lambda: 1e-8},
			regress.PolyPCA{Components: 8},
			regress.MARS{MaxTerms: 13, Knots: 5},
		}
	}
	if o.Folds <= 0 {
		o.Folds = 5
	}
}

// TrainingDevice pairs a measured signature with ATE-measured specs.
type TrainingDevice struct {
	Signature []float64
	Specs     lna.Specs
}

// Calibrate fits the per-spec maps on the training set. rng seeds the
// cross-validation fold assignments: one base seed is drawn and every
// (spec, trainer) pair derives its own sub-stream from it, so CV scores
// are independent of evaluation order and of opt.Workers.
func Calibrate(rng *rand.Rand, stim *wave.PWL, training []TrainingDevice, opt CalibrationOptions) (*Calibration, error) {
	if len(training) < 6 {
		return nil, fmt.Errorf("core: need at least 6 training devices, got %d", len(training))
	}
	opt.defaults()
	m := len(training[0].Signature)
	X := linalg.NewMatrix(len(training), m)
	for i, td := range training {
		if len(td.Signature) != m {
			return nil, fmt.Errorf("core: training device %d signature length %d, want %d", i, len(td.Signature), m)
		}
		X.SetRow(i, td.Signature)
	}
	cal := &Calibration{Stimulus: stim}
	base := rng.Int63()
	for s := 0; s < 3; s++ {
		y := make([]float64, len(training))
		for i, td := range training {
			y[i] = td.Specs.Vector()[s]
		}
		folds := opt.Folds
		if folds > len(training) {
			folds = len(training)
		}
		model, tr, rms, err := regress.SelectBestSeeded(opt.Trainers, X, y, folds, parallel.SubSeed(base, s), opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: calibrating %s: %w", lna.SpecNames()[s], err)
		}
		cal.Models[s] = model
		cal.Trainers[s] = tr.Name()
		cal.CVRMS[s] = rms
	}
	return cal, nil
}

// Predict maps one measured signature to the three specifications — the
// entire production-test computation.
func (c *Calibration) Predict(signature []float64) lna.Specs {
	return lna.Specs{
		GainDB:  c.Models[0].Predict(signature),
		NFDB:    c.Models[1].Predict(signature),
		IIP3DBm: c.Models[2].Predict(signature),
	}
}
