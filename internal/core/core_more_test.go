package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/lna"
)

func TestBehavioralSetShape(t *testing.T) {
	model := RF2401Model{}
	set, err := NewBehavioralSet(model)
	if err != nil {
		t.Fatal(err)
	}
	if set.K != model.NumParams() {
		t.Fatalf("K = %d", set.K)
	}
	if set.Nominal == nil || len(set.Plus) != set.K || len(set.Minus) != set.K {
		t.Fatal("incomplete behavioral set")
	}
}

func TestSignatureSensitivityShapeAndSign(t *testing.T) {
	model := RF2401Model{}
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	rng := rand.New(rand.NewSource(11))
	stim := cfg.RandomStimulus(rng)
	set, err := NewBehavioralSet(model)
	if err != nil {
		t.Fatal(err)
	}
	as, err := cfg.SignatureSensitivity(set, stim)
	if err != nil {
		t.Fatal(err)
	}
	if as.Rows != cfg.FeatureBins || as.Cols != model.NumParams() {
		t.Fatalf("As shape %dx%d", as.Rows, as.Cols)
	}
	// z0 raises gain, so its sensitivity column should be net positive on
	// the energetic bins.
	col := as.Col(0)
	sum := 0.0
	for _, v := range col {
		sum += v
	}
	if sum <= 0 {
		t.Fatalf("gain-driving parameter should raise signature energy (sum %g)", sum)
	}
}

func TestSensitivityDiagnosisValidation(t *testing.T) {
	as := linalg.NewMatrix(4, 2)
	if _, err := NewSensitivityDiagnosis(as, make([]float64, 3), []string{"a", "b"}); err == nil {
		t.Fatal("signature length mismatch must error")
	}
	if _, err := NewSensitivityDiagnosis(as, make([]float64, 4), []string{"a"}); err == nil {
		t.Fatal("name count mismatch must error")
	}
}

func TestSensitivityDiagnosisSyntheticExact(t *testing.T) {
	// Orthogonal sensitivity columns: diagnosis must be exact.
	as := linalg.FromRows([][]float64{
		{1, 0},
		{0, 2},
		{0, 0},
	})
	nominal := []float64{5, 5, 5}
	d, err := NewSensitivityDiagnosis(as, nominal, []string{"p", "q"})
	if err != nil {
		t.Fatal(err)
	}
	// Shift q by 0.3: signature = nominal + 0.3*col(q).
	sig := []float64{5, 5 + 0.6, 5}
	name, drift := d.Culprit(sig)
	if name != "q" {
		t.Fatalf("culprit %s", name)
	}
	if math.Abs(drift-0.3) > 1e-12 {
		t.Fatalf("drift %g, want 0.3", drift)
	}
	if d.Ambiguous(0, 1, 0.9) {
		t.Fatal("orthogonal columns must not be ambiguous")
	}
	if d.IndexOf("q") != 1 || d.IndexOf("zz") != -1 {
		t.Fatal("IndexOf")
	}
	// Zero deviation: scores all zero, no panic.
	if s := d.Scores(nominal); s[0] != 0 || s[1] != 0 {
		t.Fatalf("zero-deviation scores %v", s)
	}
}

// Property: matched-filter estimates are exact for deviations along a
// single sensitivity column, for any column scaling.
func TestPropertySensitivityDiagnosisProjection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k := 4+rng.Intn(6), 2+rng.Intn(3)
		as := linalg.NewMatrix(m, k)
		for i := range as.Data {
			as.Data[i] = rng.NormFloat64()
		}
		nominal := make([]float64, m)
		d, err := NewSensitivityDiagnosis(as, nominal, make([]string, k))
		if err != nil {
			return false
		}
		p := rng.Intn(k)
		drift := rng.NormFloat64()
		sig := make([]float64, m)
		for i := 0; i < m; i++ {
			sig[i] = drift * as.At(i, p)
		}
		est := d.Estimate(sig)
		return math.Abs(est[p]-drift) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateEmptyDevices(t *testing.T) {
	// Validation over an empty set must not panic and yields zero metrics.
	cfg := DefaultSimConfig()
	rng := rand.New(rand.NewSource(1))
	stim := cfg.RandomStimulus(rng)
	cal := &Calibration{Stimulus: stim}
	// Models are nil; with no devices Predict is never called.
	rep, err := Validate(rng, cfg, cal, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Specs[0].Points) != 0 {
		t.Fatal("expected empty report")
	}
}

func TestStimulusDurationCoversCaptureAndSettle(t *testing.T) {
	cfg := DefaultSimConfig()
	want := float64(cfg.Board.CaptureN+32+8) / cfg.Board.DigitizerFs
	if got := cfg.StimulusDuration(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("duration %g, want %g", got, want)
	}
	cfg.Board.SettleN = 64
	want = float64(cfg.Board.CaptureN+64+8) / cfg.Board.DigitizerFs
	if got := cfg.StimulusDuration(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("duration with custom settle %g, want %g", got, want)
	}
}

func TestLNAModelCaching(t *testing.T) {
	m := NewLNAModel()
	rel := make([]float64, lna.NumParams)
	s1, err := m.Specs(rel)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Specs(rel)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("cached device must give identical specs")
	}
	if len(m.cache) != 1 {
		t.Fatalf("cache size %d, want 1", len(m.cache))
	}
}

func TestGeneratePopulationErrors(t *testing.T) {
	// The LNA model rejects implausible bias; a huge spread will
	// eventually produce an unbuildable device and must surface the error.
	rng := rand.New(rand.NewSource(2))
	model := NewLNAModel()
	if _, err := GeneratePopulation(rng, model, 50, 0.99); err == nil {
		t.Skip("all extreme devices built; acceptable")
	}
}

func TestDefaultHardwareConfigValid(t *testing.T) {
	cfg := DefaultHardwareConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Board.LOOffsetHz != 100e3 || cfg.Board.DigitizerFs != 1e6 {
		t.Fatalf("hardware config %+v", cfg.Board)
	}
	// The paper's bandwidth rule: LPF corner below digitizer Nyquist.
	if cfg.Board.LPFCutoffHz >= cfg.Board.DigitizerFs/2 {
		t.Fatal("LPF above Nyquist")
	}
}

func TestDiagnosisObservable(t *testing.T) {
	d := &Diagnosis{Sigma: []float64{0.01, 0.2}, k: 2}
	// Prior std of U(+/-0.2) is ~0.115; sigma 0.01 is observable at
	// frac 0.6, sigma 0.2 is not.
	if !d.Observable(0, 0.2, 0.6) {
		t.Fatal("tight estimate should be observable")
	}
	if d.Observable(1, 0.2, 0.6) {
		t.Fatal("loose estimate should not be observable")
	}
}

func TestOptimizeResultString(t *testing.T) {
	r := &OptimizeResult{Objective: &ObjectiveReport{F: 1.5}, Trace: []float64{2, 1.5}}
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
}
