package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lna"
	"repro/internal/rf"
)

func batchFixtureConfig() *TestConfig {
	cfg := DefaultSimConfig()
	cfg.Board.CaptureN = 48
	cfg.Board.SettleN = 8
	cfg.FeatureBins = 16
	return cfg
}

// TestBatchAcquirerSignatureBitIdentity runs a small population through the
// batched acquisition (shared upconversion, batched FFT) and the serial
// AcquireWithFaults with identical per-device noise streams, and requires
// Float64bits-identical signatures, with and without insertion faults.
func TestBatchAcquirerSignatureBitIdentity(t *testing.T) {
	cfg := batchFixtureConfig()
	rng := rand.New(rand.NewSource(31))
	stim := cfg.RandomStimulus(rng)
	pop, err := GeneratePopulation(rng, RF2401Model{}, 9, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	windowS := cfg.StimulusDuration()
	faults := []*rf.InsertionFaults{
		nil, nil,
		{ContactGain: func(t float64) float64 {
			if math.Sin(2*math.Pi*2/windowS*t) > 0 {
				return 0.5
			}
			return 1
		}},
		nil,
		{LOAmpScale: 0.9, LOPhaseRad: 0.2},
		nil, nil,
		{StimTransform: func(s rf.StimFunc) rf.StimFunc {
			return func(t float64) float64 { return s(t) * 0.97 }
		}},
		nil,
	}

	ba, err := NewBatchAcquirer(cfg, stim)
	if err != nil {
		t.Fatal(err)
	}
	records := make([][]float64, len(pop))
	for i, d := range pop {
		rec, err := ba.CaptureTime(d.Behavioral, rand.New(rand.NewSource(DeviceSeed(7, i))), faults[i])
		if err != nil {
			t.Fatalf("device %d: CaptureTime: %v", i, err)
		}
		records[i] = rec
	}
	got := ba.Signatures(records)

	for i, d := range pop {
		want, err := cfg.AcquireWithFaults(d.Behavioral, stim, rand.New(rand.NewSource(DeviceSeed(7, i))), faults[i])
		if err != nil {
			t.Fatalf("device %d: serial acquire: %v", i, err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("device %d: signature length %d vs %d", i, len(got[i]), len(want))
		}
		for b := range want {
			if math.Float64bits(got[i][b]) != math.Float64bits(want[b]) {
				t.Fatalf("device %d bin %d: batch %v vs serial %v", i, b, got[i][b], want[b])
			}
		}
	}
}

// TestCalibrationPredictBatchBitIdentity calibrates on acquired signatures
// and checks the scratch and batched predict paths against Predict bit for
// bit for every spec.
func TestCalibrationPredictBatchBitIdentity(t *testing.T) {
	cfg := batchFixtureConfig()
	rng := rand.New(rand.NewSource(32))
	stim := cfg.RandomStimulus(rng)
	pop, err := GeneratePopulation(rng, RF2401Model{}, 14, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	training := make([]TrainingDevice, len(pop))
	for i, d := range pop {
		sig, err := cfg.Acquire(d.Behavioral, stim, rng)
		if err != nil {
			t.Fatal(err)
		}
		training[i] = TrainingDevice{Signature: sig, Specs: d.Specs}
	}
	cal, err := Calibrate(rng, stim, training, CalibrationOptions{Folds: 3})
	if err != nil {
		t.Fatal(err)
	}

	sigs := make([][]float64, len(training))
	for i := range training {
		sigs[i] = training[i].Signature
	}
	var s PredictScratch
	X := s.StackSignatures(sigs)
	got := make([]lna.Specs, len(sigs))
	cal.PredictBatch(X, got, &s)
	for i, sig := range sigs {
		want := cal.Predict(sig)
		scr := cal.PredictScratch(sig, &s)
		for _, pair := range [][2]float64{
			{got[i].GainDB, want.GainDB}, {got[i].NFDB, want.NFDB}, {got[i].IIP3DBm, want.IIP3DBm},
			{scr.GainDB, want.GainDB}, {scr.NFDB, want.NFDB}, {scr.IIP3DBm, want.IIP3DBm},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("device %d: predict mismatch %v vs %v", i, pair[0], pair[1])
			}
		}
	}
}

// TestCaptureTimeBatchBitIdentity drives the device-interleaved capture path
// against per-device CaptureTime calls with identical seeds: records must
// match bit for bit across clean and faulted devices, a panicking fault hook
// must land in its own slot without touching neighbors, and repeated calls
// must be stable across the pooled scratch.
func TestCaptureTimeBatchBitIdentity(t *testing.T) {
	cfg := batchFixtureConfig()
	rng := rand.New(rand.NewSource(77))
	stim := cfg.RandomStimulus(rng)
	pop, err := GeneratePopulation(rng, RF2401Model{}, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	windowS := cfg.StimulusDuration()
	faults := []*rf.InsertionFaults{
		nil, nil,
		{ContactGain: func(t float64) float64 {
			if math.Sin(2*math.Pi*2/windowS*t) > 0 {
				return 0.5
			}
			return 1
		}},
		{CaptureTransform: func(x []float64) []float64 { return x[:len(x)-1] }}, // CaptureN contract panic
		{LOAmpScale: 0.9, LOPhaseRad: 0.2},
		nil,
		{StimTransform: func(s rf.StimFunc) rf.StimFunc {
			return func(t float64) float64 { return s(t) * 0.97 }
		}},
		nil,
	}

	ba, err := NewBatchAcquirer(cfg, stim)
	if err != nil {
		t.Fatal(err)
	}
	duts := make([]rf.EnvelopeDevice, len(pop))
	for i, d := range pop {
		duts[i] = d.Behavioral
	}
	for round := 0; round < 3; round++ {
		rngs := make([]*rand.Rand, len(pop))
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(DeviceSeed(11, i)))
		}
		out := make([]BatchCapture, len(pop))
		ba.CaptureTimeBatch(duts, rngs, faults, out)
		for i := range pop {
			if i == 3 {
				if out[i].Panic == nil {
					t.Fatalf("round %d device 3: expected CaptureN contract panic", round)
				}
				continue
			}
			if out[i].Panic != nil {
				t.Fatalf("round %d device %d: unexpected panic: %v", round, i, out[i].Panic)
			}
			if out[i].Err != nil {
				t.Fatalf("round %d device %d: %v", round, i, out[i].Err)
			}
			want, err := ba.CaptureTime(duts[i], rand.New(rand.NewSource(DeviceSeed(11, i))), faults[i])
			if err != nil {
				t.Fatalf("round %d device %d: serial: %v", round, i, err)
			}
			if len(out[i].Rec) != len(want) {
				t.Fatalf("round %d device %d: length %d vs %d", round, i, len(out[i].Rec), len(want))
			}
			for s := range want {
				if math.Float64bits(out[i].Rec[s]) != math.Float64bits(want[s]) {
					t.Fatalf("round %d device %d sample %d: %v vs %v", round, i, s, out[i].Rec[s], want[s])
				}
			}
		}
	}
}
