// Package core is the paper's primary contribution: the signature test
// framework. It ties together the load-board signal path (internal/rf),
// the stimulus model (internal/wave), the sensitivity-based test
// optimization of Section 3.1 (Eqs. 6-10, via internal/linalg and
// internal/ga), and the calibration/runtime system of Section 3.2
// ("FASTest", via internal/regress):
//
//	optimize stimulus -> acquire signatures -> calibrate on training
//	devices -> predict every spec of a production device from one capture.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/rf"
	"repro/internal/wave"
)

// TestConfig describes one signature test setup.
type TestConfig struct {
	Board *rf.Loadboard
	// Stimulus encoding: breakpoints of the PWL waveform spanning the
	// capture window, bounded to +/- StimAmplitude volts.
	StimBreakpoints int
	StimAmplitude   float64
	// NoiseSigmaV is the Gaussian noise added to each captured sample (the
	// paper adds 1 mV to the simulated signatures).
	NoiseSigmaV float64
	// DigitizerBits models the low-cost tester's ADC resolution: captured
	// samples are quantized to this many bits over +/-DigitizerFullScaleV.
	// 0 disables quantization (ideal digitizer).
	DigitizerBits int
	// DigitizerFullScaleV is the ADC full-scale range (default 2 V when
	// quantization is enabled).
	DigitizerFullScaleV float64
	// Window tapers the capture before the FFT.
	Window dsp.Window
	// FeatureBins is the signature length m: the one-sided FFT magnitude
	// spectrum is band-averaged down to this many features.
	FeatureBins int
}

// DefaultSimConfig reproduces the paper's simulation experiment: 900 MHz
// 10 dBm carrier, 100 kHz LO offset, 10 MHz LPF, 20 MHz digitizing, 5 us
// capture (100 samples), 1 mV signature noise, 32-breakpoint PWL stimulus.
func DefaultSimConfig() *TestConfig {
	return &TestConfig{
		Board:           rf.DefaultLoadboard(),
		StimBreakpoints: 32,
		StimAmplitude:   0.20,
		NoiseSigmaV:     1e-3,
		Window:          dsp.Blackman,
		FeatureBins:     64,
	}
}

// DefaultHardwareConfig reproduces the paper's measurement experiment: the
// same carrier with a 100 kHz offset between the mixer LO frequencies, a
// 1 MHz digitizing rate and a 5 ms capture.
func DefaultHardwareConfig() *TestConfig {
	board := rf.DefaultLoadboard()
	board.LOOffsetHz = 100e3
	board.DigitizerFs = 1e6
	board.LPFCutoffHz = 450e3
	board.CaptureN = 2000 // 2 ms simulated per insertion (of the 5 ms budget)
	return &TestConfig{
		Board:           board,
		StimBreakpoints: 32,
		// The RF2401-class front end intercepts at about -8 dBm (0.13 V):
		// drive it gently enough to stay out of deep overdrive.
		StimAmplitude: 0.05,
		NoiseSigmaV:   1e-3,
		Window:        dsp.Blackman,
		FeatureBins:   64,
	}
}

// Validate checks the configuration.
func (c *TestConfig) Validate() error {
	if c.Board == nil {
		return fmt.Errorf("core: nil loadboard")
	}
	if c.StimBreakpoints < 2 {
		return fmt.Errorf("core: need >= 2 stimulus breakpoints, got %d", c.StimBreakpoints)
	}
	if c.StimAmplitude <= 0 {
		return fmt.Errorf("core: stimulus amplitude must be positive")
	}
	if c.FeatureBins < 2 {
		return fmt.Errorf("core: need >= 2 feature bins, got %d", c.FeatureBins)
	}
	return nil
}

// StimulusDuration is the time the PWL stimulus spans: the capture window
// plus the settle lead-in.
func (c *TestConfig) StimulusDuration() float64 {
	settle := 32
	if c.Board.SettleN > 0 {
		settle = c.Board.SettleN
	}
	return float64(c.Board.CaptureN+settle+8) / c.Board.DigitizerFs
}

// NewStimulus wraps breakpoint levels into the configured PWL encoding.
func (c *TestConfig) NewStimulus(levels []float64) (*wave.PWL, error) {
	if len(levels) != c.StimBreakpoints {
		return nil, fmt.Errorf("core: %d breakpoints, config wants %d", len(levels), c.StimBreakpoints)
	}
	p, err := wave.NewPWL(levels, c.StimulusDuration())
	if err != nil {
		return nil, err
	}
	return p.Clamp(c.StimAmplitude), nil
}

// RandomStimulus draws a random bounded PWL stimulus (GA seeding, naive
// baselines in the stimulus ablation).
func (c *TestConfig) RandomStimulus(rng *rand.Rand) *wave.PWL {
	return wave.RandomPWL(rng, c.StimBreakpoints, c.StimAmplitude, c.StimulusDuration())
}

// Acquire runs the signature measurement for one DUT: load-board envelope
// simulation, additive digitizer noise, window, FFT magnitude,
// band-averaging to FeatureBins features. rng supplies the measurement
// noise; pass nil for a noise-free acquisition (used inside sensitivity
// extraction, where noise enters analytically through Eq. 10 instead).
func (c *TestConfig) Acquire(dut rf.EnvelopeDevice, stim *wave.PWL, rng *rand.Rand) ([]float64, error) {
	return c.AcquireWithFaults(dut, stim, rng, nil)
}

// AcquireWithFaults is Acquire with per-insertion faults injected into the
// load-board signal path (see rf.InsertionFaults). The measurement noise,
// quantization and feature extraction are identical to the clean path, so
// a faulted capture is exactly what the production tester would hand the
// regression. A nil flt is a clean insertion.
func (c *TestConfig) AcquireWithFaults(dut rf.EnvelopeDevice, stim *wave.PWL, rng *rand.Rand, flt *rf.InsertionFaults) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	y, err := c.Board.RunEnvelopeFaulted(dut, stim.At, flt)
	if err != nil {
		return nil, err
	}
	if rng != nil && c.NoiseSigmaV > 0 {
		y = wave.AddNoise(rng, y, c.NoiseSigmaV)
	}
	if c.DigitizerBits > 0 {
		y = quantize(y, c.DigitizerBits, c.digitizerFullScale())
	}
	windowed := c.Window.Apply(y)
	padded := dsp.ZeroPad(windowed, dsp.NextPow2(len(windowed)))
	spec := dsp.MagnitudeSpectrum(padded)
	return compressSpectrum(spec, c.FeatureBins), nil
}

func (c *TestConfig) digitizerFullScale() float64 {
	if c.DigitizerFullScaleV > 0 {
		return c.DigitizerFullScaleV
	}
	return 2.0
}

// quantize rounds samples to an n-bit ADC over +/-fullScale, clipping at
// the rails — the finite resolution of the low-cost tester's digitizer.
func quantize(x []float64, bits int, fullScale float64) []float64 {
	levels := float64(int64(1) << uint(bits))
	lsb := 2 * fullScale / levels
	out := make([]float64, len(x))
	for i, v := range x {
		if v > fullScale {
			v = fullScale
		} else if v < -fullScale {
			v = -fullScale
		}
		q := float64(int64(v/lsb+signOf(v)*0.5)) * lsb
		out[i] = q
	}
	return out
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// compressSpectrum band-averages a one-sided magnitude spectrum into nOut
// uniform bands.
func compressSpectrum(spec []float64, nOut int) []float64 {
	if nOut >= len(spec) {
		out := make([]float64, len(spec))
		copy(out, spec)
		return out
	}
	out := make([]float64, nOut)
	for b := 0; b < nOut; b++ {
		lo := b * len(spec) / nOut
		hi := (b + 1) * len(spec) / nOut
		if hi <= lo {
			hi = lo + 1
		}
		s := 0.0
		for i := lo; i < hi && i < len(spec); i++ {
			s += spec[i]
		}
		out[b] = s / float64(hi-lo)
	}
	return out
}
