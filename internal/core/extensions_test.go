package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lna"
)

func TestQuantizeBasics(t *testing.T) {
	x := []float64{0, 0.5, -0.5, 3.0, -3.0}
	q := quantize(x, 8, 1.0)
	// Clipping at the rails.
	if q[3] > 1.0+1e-12 || q[4] < -1.0-1e-12 {
		t.Fatalf("clipping failed: %v", q)
	}
	// Quantization error bounded by one LSB.
	lsb := 2.0 / 256
	for i := 0; i < 3; i++ {
		if math.Abs(q[i]-x[i]) > lsb {
			t.Fatalf("quantization error at %d: %g", i, q[i]-x[i])
		}
	}
	// More bits -> strictly finer.
	fine := quantize([]float64{0.1234567}, 14, 1.0)
	coarse := quantize([]float64{0.1234567}, 4, 1.0)
	if math.Abs(fine[0]-0.1234567) > math.Abs(coarse[0]-0.1234567) {
		t.Fatal("more bits should quantize finer")
	}
}

func TestAcquireWithQuantization(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	rng := rand.New(rand.NewSource(1))
	stim := cfg.RandomStimulus(rng)
	model := RF2401Model{}
	dut, err := model.Behavioral(make([]float64, model.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := cfg.Acquire(dut, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DigitizerBits = 12
	q12, err := cfg.Acquire(dut, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DigitizerBits = 4
	q4, err := cfg.Acquire(dut, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	err12, err4 := 0.0, 0.0
	for i := range ideal {
		err12 += math.Abs(q12[i] - ideal[i])
		err4 += math.Abs(q4[i] - ideal[i])
	}
	if err12 == 0 {
		t.Fatal("12-bit quantization should perturb the signature slightly")
	}
	if err4 <= err12 {
		t.Fatalf("coarser ADC must distort more: 4-bit %g vs 12-bit %g", err4, err12)
	}
}

func TestDiagnosisRecoversDominantParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := RF2401Model{}
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	stim := cfg.RandomStimulus(rng)
	train, err := GeneratePopulation(rng, model, 60, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := AcquireTrainingSet(rng, cfg, stim, train, func(d *Device) lna.Specs { return d.Specs })
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"z0", "z1", "z2", "z3", "z4"}
	diag, err := CalibrateDiagnosis(rng, td, train, names, CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A device with only z0 strongly shifted: diagnosis should name z0.
	rel := []float64{0.8, 0, 0, 0, 0}
	dut, err := model.Behavioral(rel)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cfg.Acquire(dut, stim, rng)
	if err != nil {
		t.Fatal(err)
	}
	name, value := diag.Culprit(sig)
	if name != "z0" {
		t.Fatalf("culprit %s (%.2f), want z0", name, value)
	}
	// The point estimate is coarse near the edge of the training spread;
	// what matters is a clearly positive, dominant deviation.
	if value < 0.3 || value > 1.8 {
		t.Fatalf("estimated deviation %.2f, want strongly positive (~0.8)", value)
	}
	// Estimate returns all parameters.
	if got := diag.Estimate(sig); len(got) != 5 {
		t.Fatalf("estimate length %d", len(got))
	}
}

func TestDiagnosisValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := CalibrateDiagnosis(rng, make([]TrainingDevice, 3), make([]*Device, 4), nil, CalibrationOptions{}); err == nil {
		t.Fatal("length mismatch must error")
	}
	devs := make([]*Device, 3)
	for i := range devs {
		devs[i] = &Device{Rel: []float64{0}}
	}
	if _, err := CalibrateDiagnosis(rng, make([]TrainingDevice, 3), devs, []string{"p"}, CalibrationOptions{}); err == nil {
		t.Fatal("too-small training set must error")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 1.0,
		0.9772: 2.0,
		0.999:  3.0902,
		0.001:  -3.0902,
	}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 0.01 {
			t.Fatalf("quantile(%g) = %g, want %g", p, got, want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Fatal("out-of-range quantile should be NaN")
	}
}

func TestGuardBandTightensLimits(t *testing.T) {
	rep := &ValidationReport{}
	rep.Specs[0] = SpecReport{Name: "Gain(dB)", StdErr: 0.1}
	rep.Specs[1] = SpecReport{Name: "NF(dB)", StdErr: 0.15}
	rep.Specs[2] = SpecReport{Name: "IIP3(dBm)", StdErr: 0.2}
	limits := []SpecLimit{
		{Name: "Gain", Value: 14.0, Upper: false},
		{Name: "NF", Value: 2.7, Upper: true},
		{Name: "IIP3", Value: 0.0, Upper: false},
	}
	gb, err := GuardBand(rep, limits, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// z(0.999) ~ 3.09: lower limits move up, upper limits move down.
	if gb.Limits[0].Value <= 14.0 || gb.Limits[2].Value <= 0.0 {
		t.Fatalf("lower limits not tightened: %+v", gb.Limits)
	}
	if gb.Limits[1].Value >= 2.7 {
		t.Fatalf("upper limit not tightened: %+v", gb.Limits)
	}
	if math.Abs(gb.Limits[0].Value-(14.0+gb.Z*0.1)) > 1e-9 {
		t.Fatalf("guard band arithmetic: %+v z=%g", gb.Limits[0], gb.Z)
	}
	// Pass/fail behavior.
	good := lna.Specs{GainDB: 15.5, NFDB: 2.0, IIP3DBm: 2.0}
	marginal := lna.Specs{GainDB: 14.05, NFDB: 2.0, IIP3DBm: 2.0} // inside raw, inside guard? 14.05 < 14+0.309
	if !gb.Pass(good) {
		t.Fatal("clearly-good device must pass")
	}
	if gb.Pass(marginal) {
		t.Fatal("marginal device inside the guard band must be rejected")
	}
	// Validation.
	if _, err := GuardBand(rep, limits, 0.9); err == nil {
		t.Fatal("bad escape probability must error")
	}
	if _, err := GuardBand(rep, limits[:2], 0.01); err == nil {
		t.Fatal("wrong limit count must error")
	}
}
