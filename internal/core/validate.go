package core

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/lna"
	"repro/internal/parallel"
	"repro/internal/stat"
	"repro/internal/wave"
)

// ScatterPoint is one device on a paper-style correlation plot: the
// directly measured/simulated spec (x axis) against the signature-test
// prediction (y axis).
type ScatterPoint struct {
	Actual, Predicted float64
}

// SpecReport summarizes prediction quality for one specification —
// the numbers annotated on the paper's Figs. 8-10, 12-13.
type SpecReport struct {
	Name        string
	Points      []ScatterPoint
	RMSErr      float64
	StdErr      float64
	MaxErr      float64
	Correlation float64
}

// ValidationReport covers all three specs.
type ValidationReport struct {
	Specs [3]SpecReport
}

// Validate predicts every validation device from its signature and
// compares against the true specs. rng supplies fresh measurement noise
// per acquisition (each validation device is a new insertion).
func Validate(rng *rand.Rand, cfg *TestConfig, cal *Calibration, stim *wave.PWL, devices []*Device) (*ValidationReport, error) {
	rep := &ValidationReport{}
	names := lna.SpecNames()
	actual := make([][]float64, 3)
	pred := make([][]float64, 3)
	for _, d := range devices {
		sig, err := cfg.Acquire(d.Behavioral, stim, rng)
		if err != nil {
			return nil, fmt.Errorf("core: validation acquisition: %w", err)
		}
		p := cal.Predict(sig)
		av, pv := d.Specs.Vector(), p.Vector()
		for s := 0; s < 3; s++ {
			actual[s] = append(actual[s], av[s])
			pred[s] = append(pred[s], pv[s])
			rep.Specs[s].Points = append(rep.Specs[s].Points, ScatterPoint{Actual: av[s], Predicted: pv[s]})
		}
	}
	for s := 0; s < 3; s++ {
		rep.Specs[s].Name = names[s]
		rep.Specs[s].RMSErr = stat.RMSError(pred[s], actual[s])
		rep.Specs[s].StdErr = stat.StdError(pred[s], actual[s])
		rep.Specs[s].MaxErr = stat.MaxAbsError(pred[s], actual[s])
		rep.Specs[s].Correlation = stat.Correlation(pred[s], actual[s])
	}
	return rep, nil
}

// String renders the report as the paper-style summary table.
func (r *ValidationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %8s\n", "Spec", "RMS err", "std(err)", "max err", "corr")
	for _, s := range r.Specs {
		fmt.Fprintf(&b, "%-10s %10.4f %10.4f %10.4f %8.4f\n", s.Name, s.RMSErr, s.StdErr, s.MaxErr, s.Correlation)
	}
	return b.String()
}

// AcquireTrainingSet measures signatures (with fresh noise per device) for
// a population and pairs them with the given specs source. specsOf lets
// the caller choose between true simulated specs (simulation experiment)
// and noisy ATE characterization (hardware experiment). The devices draw
// noise sequentially from one shared rng; use AcquireTrainingSetSeeded
// for the order-independent, parallelizable acquisition.
func AcquireTrainingSet(rng *rand.Rand, cfg *TestConfig, stim *wave.PWL, devices []*Device, specsOf func(*Device) lna.Specs) ([]TrainingDevice, error) {
	out := make([]TrainingDevice, 0, len(devices))
	for _, d := range devices {
		sig, err := cfg.Acquire(d.Behavioral, stim, rng)
		if err != nil {
			return nil, fmt.Errorf("core: training acquisition: %w", err)
		}
		out = append(out, TrainingDevice{Signature: sig, Specs: specsOf(d)})
	}
	return out, nil
}

// AcquireTrainingSetSeeded measures the training set on a worker pool:
// device i's circuit sim -> RF envelope -> FFT signature runs as an
// independent task whose measurement noise comes from an RNG seeded with
// DeviceSeed(lotSeed, i). Signatures depend only on (lotSeed, device), so
// serial (workers=1) and N-way-parallel acquisitions are bit-identical.
// workers <= 0 uses one worker per CPU.
func AcquireTrainingSetSeeded(lotSeed int64, cfg *TestConfig, stim *wave.PWL, devices []*Device, specsOf func(*Device) lna.Specs, workers int) ([]TrainingDevice, error) {
	return AcquireTrainingSetAt(lotSeed, 0, cfg, stim, devices, specsOf, workers)
}

// AcquireTrainingSetAt is AcquireTrainingSetSeeded for a window of a
// larger lot: device j of devices is seeded as lot index start+j. A lot
// acquired in chunks — e.g. resuming an interrupted acquisition — is
// therefore bit-identical to one acquired in a single pass.
func AcquireTrainingSetAt(lotSeed int64, start int, cfg *TestConfig, stim *wave.PWL, devices []*Device, specsOf func(*Device) lna.Specs, workers int) ([]TrainingDevice, error) {
	out := make([]TrainingDevice, len(devices))
	err := parallel.ForEach(workers, len(devices), func(i int) error {
		rng := rand.New(rand.NewSource(DeviceSeed(lotSeed, start+i)))
		sig, err := cfg.Acquire(devices[i].Behavioral, stim, rng)
		if err != nil {
			return fmt.Errorf("core: training acquisition %d: %w", start+i, err)
		}
		out[i] = TrainingDevice{Signature: sig, Specs: specsOf(devices[i])}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
