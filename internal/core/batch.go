package core

import (
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/linalg"
	"repro/internal/lna"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/wave"
)

// BatchAcquirer is the batched form of TestConfig.AcquireWithFaults: the
// time-domain half of an acquisition (envelope run, noise, quantization,
// window, zero-pad) is produced per device through an rf.BatchRunner, and
// the FFT half runs once over the whole batch through the cached-plan
// batched spectrum kernel. Signatures are bit-identical to the serial
// acquisition: the time-domain stages reuse the exact serial code, and the
// magnitudes of the batched FFT match MagnitudeSpectrum bin for bin.
//
// A BatchAcquirer owns per-device scratch and is not safe for concurrent
// use: give each worker its own.
type BatchAcquirer struct {
	cfg    *TestConfig
	runner *rf.BatchRunner
	padN   int
	runs   []rf.DeviceRun // persistent slots: capture buffers pool across calls
}

// NewBatchAcquirer validates cfg and prepares the shared per-stimulus state
// for stim.
func NewBatchAcquirer(cfg *TestConfig, stim *wave.PWL) (*BatchAcquirer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	runner, err := rf.NewBatchRunner(cfg.Board)
	if err != nil {
		return nil, err
	}
	runner.Prepare(stim.At)
	return &BatchAcquirer{cfg: cfg, runner: runner, padN: dsp.NextPow2(cfg.Board.CaptureN)}, nil
}

// CaptureTime runs one device up to (and including) the windowed,
// zero-padded time record the FFT consumes. The stage order and the rng
// consumption match AcquireWithFaults exactly, so per-device noise streams
// are preserved. Panics from fault hooks propagate like the serial path.
func (ba *BatchAcquirer) CaptureTime(dut rf.EnvelopeDevice, rng *rand.Rand, flt *rf.InsertionFaults) ([]float64, error) {
	y, err := ba.runner.RunDevice(dut, flt)
	if err != nil {
		return nil, err
	}
	if rng != nil && ba.cfg.NoiseSigmaV > 0 {
		y = wave.AddNoise(rng, y, ba.cfg.NoiseSigmaV)
	}
	if ba.cfg.DigitizerBits > 0 {
		y = quantize(y, ba.cfg.DigitizerBits, ba.cfg.digitizerFullScale())
	}
	windowed := ba.cfg.Window.Apply(y)
	return dsp.ZeroPad(windowed, ba.padN), nil
}

// BatchCapture is one device's outcome of CaptureTimeBatch. Exactly one of
// Rec, Err, Panic is meaningful: check Panic first (the caller re-raises it
// under its own per-device supervision so panic routing matches the serial
// path), then Err, then use Rec. Rec never aliases the acquirer's scratch.
type BatchCapture struct {
	Rec   []float64
	Err   error
	Panic any
}

// CaptureTimeBatch is CaptureTime over a whole batch: the envelope tails run
// device-interleaved through the runner's SoA kernel (grouped by occupancy
// signature, serial-tail fallback per device), then noise, quantization,
// window and zero-pad run per device in slot order. Each device's rng
// consumption and stage order match its own serial CaptureTime call exactly
// — streams are per-device, so batching reorders nothing within one. duts,
// rngs, flts and out must have equal length. The call is total: every
// per-device failure (error or recovered panic) lands in its own slot and
// never poisons a neighbor.
func (ba *BatchAcquirer) CaptureTimeBatch(duts []rf.EnvelopeDevice, rngs []*rand.Rand, flts []*rf.InsertionFaults, out []BatchCapture) {
	k := len(duts)
	if cap(ba.runs) < k {
		runs := make([]rf.DeviceRun, k)
		copy(runs, ba.runs)
		ba.runs = runs
	}
	ba.runs = ba.runs[:k]
	for i := range ba.runs {
		ba.runs[i].DUT = duts[i]
		ba.runs[i].Flt = flts[i]
	}
	ba.runner.RunDevices(ba.runs)
	for i := range ba.runs {
		out[i] = BatchCapture{}
		if ba.runs[i].Panic != nil {
			out[i].Panic = ba.runs[i].Panic
			continue
		}
		if ba.runs[i].Err != nil {
			out[i].Err = ba.runs[i].Err
			continue
		}
		ba.finishCapture(i, rngs[i], &out[i])
	}
}

// finishCapture runs the post-envelope stages (noise, quantize, window,
// pad) for one slot under per-device panic recovery. Every stage returns a
// fresh slice, so Rec is independent of the pooled capture scratch.
func (ba *BatchAcquirer) finishCapture(i int, rng *rand.Rand, out *BatchCapture) {
	defer func() {
		if r := recover(); r != nil {
			out.Panic = r
		}
	}()
	y := ba.runs[i].Capture
	if rng != nil && ba.cfg.NoiseSigmaV > 0 {
		y = wave.AddNoise(rng, y, ba.cfg.NoiseSigmaV)
	}
	if ba.cfg.DigitizerBits > 0 {
		y = quantize(y, ba.cfg.DigitizerBits, ba.cfg.digitizerFullScale())
	}
	windowed := ba.cfg.Window.Apply(y)
	out.Rec = dsp.ZeroPad(windowed, ba.padN)
}

// Signatures turns a batch of CaptureTime records into feature signatures:
// one plan lookup and one contiguous scratch region drive every FFT, then
// each magnitude spectrum is band-averaged exactly like the serial path.
// Records must all come from the same configuration (equal lengths).
func (ba *BatchAcquirer) Signatures(records [][]float64) [][]float64 {
	specs := dsp.MagnitudeSpectrumBatch(records)
	out := make([][]float64, len(specs))
	for i, sp := range specs {
		out[i] = compressSpectrum(sp, ba.cfg.FeatureBins)
	}
	return out
}

// PredictScratch holds the reusable buffers of the scratch and batched
// calibration predict paths. A zero value is ready to use; not safe for
// concurrent use.
type PredictScratch struct {
	row   regress.Scratch
	batch regress.BatchScratch
	col   []float64
	x     *linalg.Matrix
}

// PredictScratch is Calibration.Predict without per-call allocations: each
// spec model that implements the scratch fast path predicts through reused
// buffers, bit-identical to Predict. Models without the fast path (none of
// the built-in families) fall back to Predict.
func (c *Calibration) PredictScratch(signature []float64, s *PredictScratch) lna.Specs {
	var out lna.Specs
	v := [3]*float64{&out.GainDB, &out.NFDB, &out.IIP3DBm}
	for i, m := range c.Models {
		if sp, ok := m.(regress.ScratchPredictor); ok {
			*v[i] = sp.PredictScratch(signature, &s.row)
		} else {
			*v[i] = m.Predict(signature)
		}
	}
	return out
}

// PredictBatch maps K stacked signatures to K spec predictions, pushing the
// whole batch through each model stage as matrix-matrix products. out must
// have X.Rows entries; out[i] is bit-identical to Predict of row i.
func (c *Calibration) PredictBatch(X *linalg.Matrix, out []lna.Specs, s *PredictScratch) {
	n := X.Rows
	if cap(s.col) < n {
		s.col = make([]float64, n)
	}
	col := s.col[:n]
	for si, m := range c.Models {
		if bp, ok := m.(regress.BatchPredictor); ok {
			bp.PredictBatch(X, col, &s.batch)
		} else {
			for i := 0; i < n; i++ {
				col[i] = m.Predict(X.Data[i*X.Cols : (i+1)*X.Cols])
			}
		}
		for i := 0; i < n; i++ {
			switch si {
			case 0:
				out[i].GainDB = col[i]
			case 1:
				out[i].NFDB = col[i]
			default:
				out[i].IIP3DBm = col[i]
			}
		}
	}
}

// StackSignatures packs equal-length signatures into the K x m matrix
// PredictBatch consumes, reusing the scratch matrix across batches.
func (s *PredictScratch) StackSignatures(sigs [][]float64) *linalg.Matrix {
	n := 0
	m := 0
	for _, sig := range sigs {
		n++
		m = len(sig)
	}
	if s.x == nil || cap(s.x.Data) < n*m {
		s.x = linalg.NewMatrix(n, m)
	}
	s.x.Rows, s.x.Cols = n, m
	s.x.Data = s.x.Data[:n*m]
	for i, sig := range sigs {
		copy(s.x.Data[i*m:(i+1)*m], sig)
	}
	return s.x
}
