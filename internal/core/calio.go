package core

// Calibration serialization for the model registry: the stimulus, the
// three per-spec regression models (via regress's type-tagged envelopes),
// and the selection metadata round-trip through JSON so a calibration
// version can be persisted and rebuilt with bit-identical predictions.

import (
	"encoding/json"
	"fmt"

	"repro/internal/regress"
	"repro/internal/wave"
)

type calibrationState struct {
	Stimulus *wave.PWL          `json:"stimulus"`
	Models   [3]json.RawMessage `json:"models"`
	Trainers [3]string          `json:"trainers"`
	CVRMS    [3]float64         `json:"cvrms"`
}

// MarshalJSON serializes the calibration for a registry artifact.
func (c *Calibration) MarshalJSON() ([]byte, error) {
	var st calibrationState
	st.Stimulus, st.Trainers, st.CVRMS = c.Stimulus, c.Trainers, c.CVRMS
	for i, m := range c.Models {
		if m == nil {
			return nil, fmt.Errorf("core: calibration model %d is nil", i)
		}
		enc, err := regress.EncodeModel(m)
		if err != nil {
			return nil, fmt.Errorf("core: encode calibration model %d: %w", i, err)
		}
		st.Models[i] = enc
	}
	return json.Marshal(&st)
}

// UnmarshalJSON rebuilds a calibration from its artifact form.
func (c *Calibration) UnmarshalJSON(data []byte) error {
	var st calibrationState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: decode calibration: %w", err)
	}
	if st.Stimulus == nil || len(st.Stimulus.Levels) < 2 {
		return fmt.Errorf("core: decoded calibration has no stimulus")
	}
	out := Calibration{Stimulus: st.Stimulus, Trainers: st.Trainers, CVRMS: st.CVRMS}
	for i, raw := range st.Models {
		if len(raw) == 0 {
			return fmt.Errorf("core: decoded calibration missing model %d", i)
		}
		m, err := regress.DecodeModel(raw)
		if err != nil {
			return fmt.Errorf("core: decode calibration model %d: %w", i, err)
		}
		out.Models[i] = m
	}
	*c = out
	return nil
}
