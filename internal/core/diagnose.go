package core

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/regress"
)

// Diagnosis is the follow-on capability the authors published next
// (Cherubal & Chatterjee, "Parametric fault diagnosis for analog systems
// using functional mapping", DATE 1999 — reference [9]): instead of (only)
// predicting the data-sheet specs, regress the signature back onto the
// process parameters themselves, so a failing lot can be traced to the
// parameter that drifted.
type Diagnosis struct {
	models []regress.Model // one per process parameter (relative units)
	names  []string
	k      int
	// Sigma[p] is the cross-validated RMS error of parameter p's estimate:
	// its diagnostic uncertainty. Parameters whose signature footprint is
	// weak have Sigma comparable to the process spread itself.
	Sigma []float64
}

// CalibrateDiagnosis fits per-parameter regression maps from signatures to
// the relative process perturbations of the training devices.
func CalibrateDiagnosis(rng *rand.Rand, training []TrainingDevice, devices []*Device, names []string, opt CalibrationOptions) (*Diagnosis, error) {
	if len(training) != len(devices) {
		return nil, fmt.Errorf("core: %d training signatures vs %d devices", len(training), len(devices))
	}
	if len(training) < 6 {
		return nil, fmt.Errorf("core: need at least 6 training devices, got %d", len(training))
	}
	k := len(devices[0].Rel)
	if k == 0 {
		return nil, fmt.Errorf("core: devices carry no process coordinates")
	}
	if len(names) != k {
		return nil, fmt.Errorf("core: %d parameter names for %d parameters", len(names), k)
	}
	opt.defaults()
	m := len(training[0].Signature)
	X := linalg.NewMatrix(len(training), m)
	for i, td := range training {
		X.SetRow(i, td.Signature)
	}
	d := &Diagnosis{k: k, names: append([]string(nil), names...)}
	base := rng.Int63()
	for p := 0; p < k; p++ {
		y := make([]float64, len(devices))
		for i, dev := range devices {
			y[i] = dev.Rel[p]
		}
		folds := opt.Folds
		if folds > len(training) {
			folds = len(training)
		}
		model, _, rms, err := regress.SelectBestSeeded(opt.Trainers, X, y, folds, parallel.SubSeed(base, p), opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: diagnosing %s: %w", names[p], err)
		}
		d.models = append(d.models, model)
		d.Sigma = append(d.Sigma, rms)
	}
	return d, nil
}

// Observable reports whether parameter p leaves a usable footprint in the
// signature: its estimate must be meaningfully better than guessing, i.e.
// its CV uncertainty below frac of the training spread (std of a uniform
// +/-spread variable is spread/sqrt(3)).
func (d *Diagnosis) Observable(p int, spread, frac float64) bool {
	prior := spread / 1.7320508075688772
	return d.Sigma[p] < frac*prior
}

// Estimate predicts the relative process perturbation vector from one
// signature.
func (d *Diagnosis) Estimate(signature []float64) []float64 {
	out := make([]float64, d.k)
	for p := 0; p < d.k; p++ {
		out[p] = d.models[p].Predict(signature)
	}
	return out
}

// Culprit returns the parameter with the largest estimated deviation in
// units of its own diagnostic uncertainty (a z-score ranking, so weakly
// observable parameters cannot win on noise) plus the estimated relative
// deviation — the headline of a diagnosis report.
func (d *Diagnosis) Culprit(signature []float64) (string, float64) {
	est := d.Estimate(signature)
	best := 0
	bestZ := -1.0
	for p := 0; p < d.k; p++ {
		sigma := d.Sigma[p]
		if sigma <= 0 {
			sigma = 1e-12
		}
		if z := abs(est[p]) / sigma; z > bestZ {
			bestZ, best = z, p
		}
	}
	return d.names[best], est[best]
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SensitivityDiagnosis performs single-fault dictionary diagnosis on the
// linearized signature map of Eq. 7: the measured signature deviation
// delta_s is matched against each column a_j of the signature sensitivity
// matrix by cosine similarity. For a single drifted parameter,
// delta_s ~ a_p * delta_x_p, so the best-aligned column names the culprit
// and the projection onto it estimates the drift. (A joint pseudoinverse
// solve is NOT used: As is rank-deficient — several parameters share a
// low-dimensional observable subspace — and inverting it amplifies
// linearization error catastrophically; matched filtering is the robust
// classic for the single-fault case.)
type SensitivityDiagnosis struct {
	cols    [][]float64 // sensitivity columns
	norms   []float64
	nominal []float64
	names   []string
}

// NewSensitivityDiagnosis builds the matcher from the signature
// sensitivity matrix As (m x k), the nominal (noise-free) signature, and
// parameter names.
func NewSensitivityDiagnosis(as *linalg.Matrix, nominalSig []float64, names []string) (*SensitivityDiagnosis, error) {
	if as.Rows != len(nominalSig) {
		return nil, fmt.Errorf("core: As has %d signature rows, nominal signature has %d", as.Rows, len(nominalSig))
	}
	if as.Cols != len(names) {
		return nil, fmt.Errorf("core: As has %d parameters, %d names given", as.Cols, len(names))
	}
	d := &SensitivityDiagnosis{
		nominal: append([]float64(nil), nominalSig...),
		names:   append([]string(nil), names...),
	}
	for j := 0; j < as.Cols; j++ {
		col := as.Col(j)
		d.cols = append(d.cols, col)
		d.norms = append(d.norms, linalg.Norm2(col))
	}
	return d, nil
}

func (d *SensitivityDiagnosis) deviation(signature []float64) []float64 {
	ds := make([]float64, len(signature))
	for i := range ds {
		ds[i] = signature[i] - d.nominal[i]
	}
	return ds
}

// Scores returns the |cosine similarity| between the signature deviation
// and each parameter's sensitivity direction.
func (d *SensitivityDiagnosis) Scores(signature []float64) []float64 {
	ds := d.deviation(signature)
	dn := linalg.Norm2(ds)
	out := make([]float64, len(d.cols))
	if dn == 0 {
		return out
	}
	for j, col := range d.cols {
		if d.norms[j] == 0 {
			continue
		}
		out[j] = abs(linalg.Dot(ds, col)) / (dn * d.norms[j])
	}
	return out
}

// Estimate returns the per-parameter matched projection delta_x_j =
// <delta_s, a_j>/<a_j, a_j> — the drift each parameter would need on its
// own to explain the signature.
func (d *SensitivityDiagnosis) Estimate(signature []float64) []float64 {
	ds := d.deviation(signature)
	out := make([]float64, len(d.cols))
	for j, col := range d.cols {
		if d.norms[j] == 0 {
			continue
		}
		out[j] = linalg.Dot(ds, col) / (d.norms[j] * d.norms[j])
	}
	return out
}

// Culprit names the best-matching parameter and its estimated drift.
func (d *SensitivityDiagnosis) Culprit(signature []float64) (string, float64) {
	scores := d.Scores(signature)
	best := 0
	for j := 1; j < len(scores); j++ {
		if scores[j] > scores[best] {
			best = j
		}
	}
	return d.names[best], d.Estimate(signature)[best]
}

// Ambiguous reports whether parameters p and q have nearly parallel
// sensitivity directions (|cosine| above threshold) and therefore cannot be
// distinguished by single-fault matching.
func (d *SensitivityDiagnosis) Ambiguous(p, q int, threshold float64) bool {
	if d.norms[p] == 0 || d.norms[q] == 0 {
		return false
	}
	c := abs(linalg.Dot(d.cols[p], d.cols[q])) / (d.norms[p] * d.norms[q])
	return c >= threshold
}

// IndexOf returns the index of a parameter name (-1 if absent).
func (d *SensitivityDiagnosis) IndexOf(name string) int {
	for i, n := range d.names {
		if n == name {
			return i
		}
	}
	return -1
}
