package core

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ObjectiveReport breaks down the paper's test-quality objective (Eqs.
// 8-10) for one stimulus.
type ObjectiveReport struct {
	// SigmaP[i] is the least-squares residual ||a_p,i^T - a_i^T As|| —
	// the part of spec i's process sensitivity that the signature cannot
	// express (Eq. 8).
	SigmaP []float64
	// NoiseGain[i] is ||a_i||, the factor by which signature measurement
	// noise enters prediction of spec i (Eq. 10's second term).
	NoiseGain []float64
	// Sigma[i] is the combined error sigma_i = sqrt(sigma_p,i^2 +
	// sigma_m^2 ||a_i||^2).
	Sigma []float64
	// F is the scalar objective sum(sigma_i^2)/n minimized by the GA.
	F float64
	// A holds the min-norm linear read-out rows a_i^T (n x m), the Eq. 9
	// solution a_i^T = a_p,i^T * As^+.
	A *linalg.Matrix
}

// EvaluateObjective computes the Eq. 10 objective given the two
// sensitivity matrices and the per-feature signature noise sigmaM.
func EvaluateObjective(ap, as *linalg.Matrix, sigmaM float64) (*ObjectiveReport, error) {
	if ap.Cols != as.Cols {
		return nil, fmt.Errorf("core: Ap has %d parameters, As has %d", ap.Cols, as.Cols)
	}
	n := ap.Rows
	m := as.Rows
	// Pseudoinverse of As (m x k): As^+ is k x m.
	pinv := linalg.ComputeSVD(as).PseudoInverse(0)

	rep := &ObjectiveReport{
		SigmaP:    make([]float64, n),
		NoiseGain: make([]float64, n),
		Sigma:     make([]float64, n),
		A:         linalg.NewMatrix(n, m),
	}
	for i := 0; i < n; i++ {
		api := ap.Row(i) // 1 x k
		// a_i^T = a_p,i^T As^+  (1 x m).
		ai := make([]float64, m)
		for c := 0; c < m; c++ {
			s := 0.0
			for j := 0; j < ap.Cols; j++ {
				s += api[j] * pinv.At(j, c)
			}
			ai[c] = s
		}
		rep.A.SetRow(i, ai)
		// Residual a_p,i^T - a_i^T As (1 x k).
		var res2 float64
		for j := 0; j < ap.Cols; j++ {
			s := api[j]
			for c := 0; c < m; c++ {
				s -= ai[c] * as.At(c, j)
			}
			res2 += s * s
		}
		ng := linalg.Norm2(ai)
		rep.SigmaP[i] = sqrt(res2)
		rep.NoiseGain[i] = ng
		sigma2 := res2 + sigmaM*sigmaM*ng*ng
		rep.Sigma[i] = sqrt(sigma2)
		rep.F += sigma2
	}
	rep.F /= float64(n)
	return rep, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
