package core

import (
	"fmt"
	"math/rand"

	"repro/internal/lna"
	"repro/internal/rf"
)

// DeviceModel abstracts a device family over its process space: given a
// relative parameter perturbation it yields the true specifications (the
// paper's SpectreRF runs / bench characterization) and the behavioral
// signature-path model.
type DeviceModel interface {
	// NumParams is the process-space dimension k.
	NumParams() int
	// Specs returns the device performances at perturbation rel.
	Specs(rel []float64) (lna.Specs, error)
	// Behavioral returns the signature-path DUT model at perturbation rel.
	Behavioral(rel []float64) (rf.EnvelopeDevice, error)
}

// LNAModel adapts the circuit-level 900 MHz LNA (the simulation
// experiment's DUT). Devices are memoized per perturbation so sensitivity
// extraction and population generation reuse circuit solutions.
type LNAModel struct {
	Nominal lna.Params
	cache   map[string]*lna.Device
}

// NewLNAModel builds the adapter around the nominal design.
func NewLNAModel() *LNAModel {
	return &LNAModel{Nominal: lna.Nominal(), cache: map[string]*lna.Device{}}
}

// NumParams implements DeviceModel.
func (m *LNAModel) NumParams() int { return lna.NumParams }

func (m *LNAModel) device(rel []float64) (*lna.Device, error) {
	key := fmt.Sprintf("%.9g", rel)
	if d, ok := m.cache[key]; ok {
		return d, nil
	}
	p, err := m.Nominal.Perturb(rel)
	if err != nil {
		return nil, err
	}
	d, err := lna.Build(p)
	if err != nil {
		return nil, err
	}
	m.cache[key] = d
	return d, nil
}

// Specs implements DeviceModel via the circuit simulator.
func (m *LNAModel) Specs(rel []float64) (lna.Specs, error) {
	d, err := m.device(rel)
	if err != nil {
		return lna.Specs{}, err
	}
	return d.Specs()
}

// Behavioral implements DeviceModel via behavioral extraction.
func (m *LNAModel) Behavioral(rel []float64) (rf.EnvelopeDevice, error) {
	d, err := m.device(rel)
	if err != nil {
		return nil, err
	}
	return d.Behavioral()
}

// RF2401Model adapts the behavioral hardware population (the measurement
// experiment's DUT; no netlist access, latent process space).
type RF2401Model struct{}

// NumParams implements DeviceModel.
func (RF2401Model) NumParams() int { return lna.RF2401LatentDim }

// Specs implements DeviceModel.
func (RF2401Model) Specs(rel []float64) (lna.Specs, error) {
	d, err := lna.NewRF2401(rel)
	if err != nil {
		return lna.Specs{}, err
	}
	return d.Specs(), nil
}

// Behavioral implements DeviceModel.
func (RF2401Model) Behavioral(rel []float64) (rf.EnvelopeDevice, error) {
	d, err := lna.NewRF2401(rel)
	if err != nil {
		return nil, err
	}
	return d.Behavioral(), nil
}

// Device is one population member: its process point, true specs and
// signature-path model.
type Device struct {
	Rel        []float64
	Specs      lna.Specs
	Behavioral rf.EnvelopeDevice
}

// GeneratePopulation draws n devices with uniform +/-spread process
// perturbations (the paper's training and validation sets).
func GeneratePopulation(rng *rand.Rand, model DeviceModel, n int, spread float64) ([]*Device, error) {
	out := make([]*Device, 0, n)
	for len(out) < n {
		rel := make([]float64, model.NumParams())
		for j := range rel {
			rel[j] = spread * (2*rng.Float64() - 1)
		}
		specs, err := model.Specs(rel)
		if err != nil {
			return nil, fmt.Errorf("core: population device %d: %w", len(out), err)
		}
		beh, err := model.Behavioral(rel)
		if err != nil {
			return nil, fmt.Errorf("core: population device %d: %w", len(out), err)
		}
		out = append(out, &Device{Rel: rel, Specs: specs, Behavioral: beh})
	}
	return out, nil
}
