package core

import "repro/internal/parallel"

// DeviceSeed derives the RNG seed for one device of a seeded lot from the
// lot seed and the device index. Every consumer of lot randomness — the
// serial floor engine, the concurrent lot orchestrator, a resumed lot,
// the parallel training-set acquisition — derives each device's stream
// through this function, so the noise and fault draws a device sees
// depend only on (lot seed, index), never on draw order, worker
// scheduling or which devices ran before it. That is what makes serial
// and N-site-concurrent screenings of the same lot byte-identical, and a
// crash-resumed lot identical to an uninterrupted one.
//
// The mix is parallel.SubSeed — SplitMix64 (Steele et al., "Fast
// splittable pseudorandom number generators"), sign bit cleared so
// journal headers stay readable — shared with every other seeded fan-out
// in the repo (GA slots, CV trainers).
func DeviceSeed(lotSeed int64, index int) int64 {
	return parallel.SubSeed(lotSeed, index)
}
