package core

// DeviceSeed derives the RNG seed for one device of a seeded lot from the
// lot seed and the device index. Every consumer of lot randomness — the
// serial floor engine, the concurrent lot orchestrator, a resumed lot —
// derives each device's stream through this function, so the noise and
// fault draws a device sees depend only on (lot seed, index), never on
// draw order, worker scheduling or which devices ran before it. That is
// what makes serial and N-site-concurrent screenings of the same lot
// byte-identical, and a crash-resumed lot identical to an uninterrupted
// one.
//
// The mix is SplitMix64 (Steele et al., "Fast splittable pseudorandom
// number generators"): a bijective avalanche over the combined key, so
// adjacent indices yield statistically unrelated seeds.
func DeviceSeed(lotSeed int64, index int) int64 {
	z := uint64(lotSeed) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Clear the sign bit: rand.NewSource seeds are int64 and a stable
	// non-negative value keeps journal headers readable.
	return int64(z &^ (1 << 63))
}
