package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ga"
	"repro/internal/linalg"
	"repro/internal/wave"
)

// OptimizeResult is the outcome of the Section 3.1 stimulus optimization.
type OptimizeResult struct {
	Stimulus  *wave.PWL
	Objective *ObjectiveReport // evaluated at the winning stimulus
	Trace     []float64        // best objective per GA generation
	Ap        *linalg.Matrix
}

// OptimizerOptions tunes the GA run; zero values take the paper-like
// defaults (the paper ran "five iterations of a genetic algorithm").
type OptimizerOptions struct {
	PopSize     int
	Generations int
	// Workers evaluates the GA population concurrently (each candidate
	// stimulus costs a full signature-sensitivity extraction, the
	// dominant off-line expense); <= 1 runs serially. The evolved
	// stimulus is bit-identical for every worker count.
	Workers int
}

// OptimizeStimulus runs the paper's test-generation loop: for each PWL
// candidate (breakpoints = genome), build the signature sensitivity matrix
// As, and score the stimulus by the Eq. 10 objective combining the
// least-squares mapping residual with the noise gain. The spec sensitivity
// matrix Ap and the behavioral device set are computed once.
func OptimizeStimulus(rng *rand.Rand, model DeviceModel, cfg *TestConfig, opt OptimizerOptions) (*OptimizeResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ap, err := SpecSensitivity(model)
	if err != nil {
		return nil, err
	}
	set, err := NewBehavioralSet(model)
	if err != nil {
		return nil, err
	}

	// Normalize the per-spec rows of Ap so gain (dB), NF (dB) and IIP3
	// (dBm) contribute comparably to the scalar objective regardless of
	// their raw sensitivity magnitudes.
	apn := ap.Clone()
	rowScale := make([]float64, ap.Rows)
	for i := 0; i < ap.Rows; i++ {
		s := linalg.Norm2(ap.Row(i))
		if s == 0 {
			s = 1
		}
		rowScale[i] = s
		for j := 0; j < ap.Cols; j++ {
			apn.Set(i, j, ap.At(i, j)/s)
		}
	}

	fitness := func(genome []float64) float64 {
		stim, err := cfg.NewStimulus(genome)
		if err != nil {
			return math.Inf(1)
		}
		as, err := cfg.SignatureSensitivity(set, stim)
		if err != nil {
			return math.Inf(1)
		}
		rep, err := EvaluateObjective(apn, as, cfg.NoiseSigmaV)
		if err != nil {
			return math.Inf(1)
		}
		return rep.F
	}

	gaOpt := ga.Options{
		PopSize:     opt.PopSize,
		Generations: opt.Generations,
		Lo:          -cfg.StimAmplitude,
		Hi:          cfg.StimAmplitude,
		Workers:     opt.Workers,
	}
	if gaOpt.Generations == 0 {
		gaOpt.Generations = 5 // the paper's iteration count
	}
	// Seed generation zero with deterministic full-scale shapes that
	// already exercise the DUT: slow and fast sines (multitone-like) and a
	// bipolar ramp (sweeps the compression curve). Elitism keeps the best
	// of them alive, so even a tiny GA budget starts from a sensible
	// stimulus instead of pure noise.
	nb := cfg.StimBreakpoints
	sine := func(cycles float64) []float64 {
		s := make([]float64, nb)
		for i := range s {
			s[i] = cfg.StimAmplitude * math.Sin(2*math.Pi*cycles*float64(i)/float64(nb))
		}
		return s
	}
	ramp := make([]float64, nb)
	for i := range ramp {
		ramp[i] = cfg.StimAmplitude * (2*float64(i)/float64(nb-1) - 1)
	}
	res, err := ga.Minimize(rng, nb, fitness, gaOpt, sine(3), sine(7), ramp)
	if err != nil {
		return nil, err
	}
	stim, err := cfg.NewStimulus(res.Best)
	if err != nil {
		return nil, err
	}
	as, err := cfg.SignatureSensitivity(set, stim)
	if err != nil {
		return nil, err
	}
	rep, err := EvaluateObjective(apn, as, cfg.NoiseSigmaV)
	if err != nil {
		return nil, err
	}
	// Report sigma in physical units per spec.
	for i := range rep.Sigma {
		rep.Sigma[i] *= rowScale[i]
		rep.SigmaP[i] *= rowScale[i]
	}
	return &OptimizeResult{Stimulus: stim, Objective: rep, Trace: res.Trace, Ap: ap}, nil
}

// String renders the optimization summary.
func (r *OptimizeResult) String() string {
	return fmt.Sprintf("OptimizeResult{F=%.4g, generations=%d}", r.Objective.F, len(r.Trace)-1)
}
