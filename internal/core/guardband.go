package core

import (
	"fmt"
	"math"

	"repro/internal/lna"
)

// SpecLimit is one data-sheet limit: a lower bound (gain, IIP3) or an
// upper bound (NF).
type SpecLimit struct {
	Name  string
	Value float64
	Upper bool // true: spec must be <= Value; false: spec must be >= Value
}

// GuardBandedLimits tightens production test limits so that, given the
// validated prediction error of each spec, the probability of shipping a
// truly failing device (test escape) stays below the target. This is the
// standard alternate-test deployment step: the prediction error sigma from
// validation becomes a guard band of z*sigma inside each limit.
type GuardBandedLimits struct {
	Limits []SpecLimit // tightened limits, same order as input
	Z      float64     // the applied sigma multiplier
	Sigmas []float64   // per-spec prediction error used
}

// GuardBand computes tightened limits from a validation report. escapeProb
// is the per-spec target probability that a device just outside the true
// limit passes the signature test (e.g. 0.001). Prediction errors are
// assumed Gaussian with the validated std(err).
func GuardBand(rep *ValidationReport, limits []SpecLimit, escapeProb float64) (*GuardBandedLimits, error) {
	if escapeProb <= 0 || escapeProb >= 0.5 {
		return nil, fmt.Errorf("core: escape probability %g outside (0, 0.5)", escapeProb)
	}
	if len(limits) != len(rep.Specs) {
		return nil, fmt.Errorf("core: %d limits for %d validated specs", len(limits), len(rep.Specs))
	}
	z := normalQuantile(1 - escapeProb)
	out := &GuardBandedLimits{Z: z}
	for i, lim := range limits {
		sigma := rep.Specs[i].StdErr
		g := lim
		if lim.Upper {
			g.Value = lim.Value - z*sigma
		} else {
			g.Value = lim.Value + z*sigma
		}
		out.Limits = append(out.Limits, g)
		out.Sigmas = append(out.Sigmas, sigma)
	}
	return out, nil
}

// Pass applies the guard-banded limits to predicted specs.
func (g *GuardBandedLimits) Pass(s lna.Specs) bool {
	v := s.Vector()
	for i, lim := range g.Limits {
		if lim.Upper {
			if v[i] > lim.Value {
				return false
			}
		} else if v[i] < lim.Value {
			return false
		}
	}
	return true
}

// normalQuantile computes the standard normal quantile via the
// Beasley-Springer-Moro rational approximation (|error| < 3e-9 over the
// useful range).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
