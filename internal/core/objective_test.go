package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestObjectivePerfectMappingZeroResidual(t *testing.T) {
	// If Ap = C * As for some C, the mapping is exact: sigma_p = 0.
	as := linalg.FromRows([][]float64{
		{1, 0, 2},
		{0, 1, 1},
		{1, 1, 0},
		{2, 0, 1},
	}) // m=4 signatures, k=3 params
	c := linalg.FromRows([][]float64{
		{1, 2, 0, 0},
		{0, 0, 3, 0},
		{1, 0, 0, 1},
	}) // n=3 specs from signature space
	ap := c.Mul(as)
	rep, err := EvaluateObjective(ap, as, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range rep.SigmaP {
		if s > 1e-9 {
			t.Fatalf("spec %d residual %g, want 0", i, s)
		}
	}
	if rep.F > 1e-18 {
		t.Fatalf("objective %g, want ~0", rep.F)
	}
}

func TestObjectiveUnmappableSpec(t *testing.T) {
	// A spec sensitive to a parameter the signature cannot see at all must
	// keep its full sensitivity as residual.
	as := linalg.FromRows([][]float64{
		{1, 0},
		{2, 0},
	}) // signature only sees parameter 0
	ap := linalg.FromRows([][]float64{
		{0, 3}, // spec depends only on parameter 1
	})
	rep, err := EvaluateObjective(ap, as, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SigmaP[0]-3) > 1e-9 {
		t.Fatalf("residual %g, want 3", rep.SigmaP[0])
	}
}

func TestObjectiveNoisePenalty(t *testing.T) {
	// Scaling the signature down by 100x forces a 100x larger read-out
	// vector, which the noise term must penalize quadratically.
	as := linalg.FromRows([][]float64{{1, 0}, {0, 1}})
	ap := linalg.FromRows([][]float64{{1, 1}})
	repBig, err := EvaluateObjective(ap, as, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	repSmall, err := EvaluateObjective(ap, as.Scale(0.01), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if repSmall.F < 5000*repBig.F {
		t.Fatalf("noise penalty missing: F small-signature %g vs %g", repSmall.F, repBig.F)
	}
	// sigma combines both terms.
	if repBig.Sigma[0] <= repBig.SigmaP[0] {
		t.Fatal("sigma must include the noise term")
	}
}

func TestObjectiveDimensionMismatch(t *testing.T) {
	as := linalg.NewMatrix(3, 2)
	ap := linalg.NewMatrix(1, 4)
	if _, err := EvaluateObjective(ap, as, 0); err == nil {
		t.Fatal("parameter-count mismatch must error")
	}
}

// Property: the Eq. 9 min-norm solution is optimal — no random alternative
// read-out row can achieve a smaller residual.
func TestPropertyMinNormOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k := 3+rng.Intn(5), 2+rng.Intn(3)
		as := linalg.NewMatrix(m, k)
		for i := range as.Data {
			as.Data[i] = rng.NormFloat64()
		}
		ap := linalg.NewMatrix(1, k)
		for i := range ap.Data {
			ap.Data[i] = rng.NormFloat64()
		}
		rep, err := EvaluateObjective(ap, as, 0)
		if err != nil {
			return false
		}
		best := rep.SigmaP[0]
		for trial := 0; trial < 30; trial++ {
			ai := make([]float64, m)
			for j := range ai {
				ai[j] = rep.A.At(0, j) + 0.1*rng.NormFloat64()
			}
			// Residual of the perturbed read-out.
			var res2 float64
			for j := 0; j < k; j++ {
				s := ap.At(0, j)
				for c := 0; c < m; c++ {
					s -= ai[c] * as.At(c, j)
				}
				res2 += s * s
			}
			if math.Sqrt(res2) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressSpectrum(t *testing.T) {
	spec := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	out := compressSpectrum(spec, 4)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("compressSpectrum = %v", out)
		}
	}
	// nOut >= len returns a copy.
	same := compressSpectrum(spec, 100)
	if len(same) != len(spec) {
		t.Fatal("oversized compression should copy")
	}
	same[0] = 99
	if spec[0] == 99 {
		t.Fatal("must not alias input")
	}
}
