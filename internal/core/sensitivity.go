package core

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/rf"
	"repro/internal/wave"
)

// Sensitivities holds the paper's two linearizations around the nominal
// process point (Eqs. 6-7): Ap (n x k) maps process perturbations to spec
// perturbations, As (m x k) maps them to signature perturbations.
type Sensitivities struct {
	Ap *linalg.Matrix
	As *linalg.Matrix
}

// finite-difference step in relative parameter units.
const fdStep = 0.02

// SpecSensitivity computes Ap by central differences of the model's specs.
// It is stimulus-independent, so callers compute it once and reuse it for
// every stimulus candidate.
func SpecSensitivity(model DeviceModel) (*linalg.Matrix, error) {
	k := model.NumParams()
	ap := linalg.NewMatrix(3, k)
	for j := 0; j < k; j++ {
		rel := make([]float64, k)
		rel[j] = fdStep
		sp, err := model.Specs(rel)
		if err != nil {
			return nil, fmt.Errorf("core: spec sensitivity +%d: %w", j, err)
		}
		rel[j] = -fdStep
		sm, err := model.Specs(rel)
		if err != nil {
			return nil, fmt.Errorf("core: spec sensitivity -%d: %w", j, err)
		}
		vp, vm := sp.Vector(), sm.Vector()
		for i := 0; i < 3; i++ {
			ap.Set(i, j, (vp[i]-vm[i])/(2*fdStep))
		}
	}
	return ap, nil
}

// BehavioralSet caches the behavioral models needed for signature
// sensitivities: nominal plus central-difference points per parameter.
// They are stimulus-independent, so one set serves the whole GA run.
type BehavioralSet struct {
	K       int
	Nominal rf.EnvelopeDevice
	Plus    []rf.EnvelopeDevice
	Minus   []rf.EnvelopeDevice
}

// NewBehavioralSet extracts the 2k+1 behavioral models.
func NewBehavioralSet(model DeviceModel) (*BehavioralSet, error) {
	k := model.NumParams()
	set := &BehavioralSet{K: k, Plus: make([]rf.EnvelopeDevice, k), Minus: make([]rf.EnvelopeDevice, k)}
	var err error
	set.Nominal, err = model.Behavioral(make([]float64, k))
	if err != nil {
		return nil, fmt.Errorf("core: nominal behavioral: %w", err)
	}
	for j := 0; j < k; j++ {
		rel := make([]float64, k)
		rel[j] = fdStep
		if set.Plus[j], err = model.Behavioral(rel); err != nil {
			return nil, fmt.Errorf("core: behavioral +%d: %w", j, err)
		}
		rel[j] = -fdStep
		if set.Minus[j], err = model.Behavioral(rel); err != nil {
			return nil, fmt.Errorf("core: behavioral -%d: %w", j, err)
		}
	}
	return set, nil
}

// SignatureSensitivity computes As for one stimulus by central differences
// of noise-free signature acquisitions over the cached behavioral set.
func (c *TestConfig) SignatureSensitivity(set *BehavioralSet, stim *wave.PWL) (*linalg.Matrix, error) {
	var as *linalg.Matrix
	for j := 0; j < set.K; j++ {
		sp, err := c.Acquire(set.Plus[j], stim, nil)
		if err != nil {
			return nil, fmt.Errorf("core: signature sensitivity +%d: %w", j, err)
		}
		sm, err := c.Acquire(set.Minus[j], stim, nil)
		if err != nil {
			return nil, fmt.Errorf("core: signature sensitivity -%d: %w", j, err)
		}
		if as == nil {
			as = linalg.NewMatrix(len(sp), set.K)
		}
		for i := range sp {
			as.Set(i, j, (sp[i]-sm[i])/(2*fdStep))
		}
	}
	return as, nil
}
