package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lna"
)

func TestConfigValidation(t *testing.T) {
	cfg := DefaultSimConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *cfg
	bad.Board = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil board must fail validation")
	}
	bad = *cfg
	bad.StimBreakpoints = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 breakpoint must fail")
	}
	bad = *cfg
	bad.FeatureBins = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 feature bin must fail")
	}
}

func TestStimulusEncoding(t *testing.T) {
	cfg := DefaultSimConfig()
	levels := make([]float64, cfg.StimBreakpoints)
	levels[0] = 10 // out of range, must clamp
	p, err := cfg.NewStimulus(levels)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxAbs() > cfg.StimAmplitude {
		t.Fatalf("stimulus not clamped: %g", p.MaxAbs())
	}
	if _, err := cfg.NewStimulus(levels[:4]); err == nil {
		t.Fatal("wrong breakpoint count must error")
	}
	// The stimulus must span the capture plus settle window.
	if p.Duration < float64(cfg.Board.CaptureN)/cfg.Board.DigitizerFs {
		t.Fatal("stimulus shorter than the capture window")
	}
}

func TestAcquireSignatureProperties(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05 // RF2401-class DUT: gentle drive
	rng := rand.New(rand.NewSource(1))
	stim := cfg.RandomStimulus(rng)
	model := RF2401Model{}
	dut, err := model.Behavioral(make([]float64, model.NumParams()))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := cfg.Acquire(dut, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != cfg.FeatureBins {
		t.Fatalf("signature length %d, want %d", len(sig), cfg.FeatureBins)
	}
	for i, v := range sig {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("signature bin %d invalid: %g", i, v)
		}
	}
	// Noise-free acquisition is deterministic.
	sig2, err := cfg.Acquire(dut, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sig {
		if sig[i] != sig2[i] {
			t.Fatal("noise-free acquisition must be deterministic")
		}
	}
	// Noisy acquisitions differ.
	n1, _ := cfg.Acquire(dut, stim, rng)
	n2, _ := cfg.Acquire(dut, stim, rng)
	same := true
	for i := range n1 {
		if n1[i] != n2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("noisy acquisitions should differ")
	}
}

func TestSignatureReflectsGain(t *testing.T) {
	// A higher-gain device must produce a larger signature: the core
	// premise that performance changes move the signature.
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	rng := rand.New(rand.NewSource(2))
	stim := cfg.RandomStimulus(rng)
	lo, err := lna.NewRF2401([]float64{-1, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := lna.NewRF2401([]float64{1, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := cfg.Acquire(lo.Behavioral(), stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cfg.Acquire(hi.Behavioral(), stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	var el, eh float64
	for i := range sl {
		el += sl[i] * sl[i]
		eh += sh[i] * sh[i]
	}
	if eh <= el {
		t.Fatalf("signature energy should grow with gain: %g vs %g", eh, el)
	}
}

func TestSpecSensitivityLNA(t *testing.T) {
	model := NewLNAModel()
	ap, err := SpecSensitivity(model)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Rows != 3 || ap.Cols != lna.NumParams {
		t.Fatalf("Ap shape %dx%d", ap.Rows, ap.Cols)
	}
	// NF must be sensitive to Rb (row 1), and the sign must be positive.
	rbIdx := -1
	for i, n := range lna.ParamNames() {
		if n == "Rb" {
			rbIdx = i
		}
	}
	if ap.At(1, rbIdx) <= 0 {
		t.Fatalf("dNF/dRb = %g, want positive", ap.At(1, rbIdx))
	}
	// Every spec must be sensitive to something.
	for i := 0; i < 3; i++ {
		max := 0.0
		for j := 0; j < ap.Cols; j++ {
			if a := math.Abs(ap.At(i, j)); a > max {
				max = a
			}
		}
		if max < 1e-3 {
			t.Fatalf("spec %d has no process sensitivity", i)
		}
	}
}

func TestGeneratePopulationReproducible(t *testing.T) {
	model := RF2401Model{}
	p1, err := GeneratePopulation(rand.New(rand.NewSource(5)), model, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GeneratePopulation(rand.New(rand.NewSource(5)), model, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].Specs != p2[i].Specs {
			t.Fatal("same seed must reproduce the population")
		}
	}
	// Spread parameter respected.
	for _, d := range p1 {
		for _, r := range d.Rel {
			if math.Abs(r) > 0.9 {
				t.Fatalf("perturbation %g outside spread", r)
			}
		}
	}
}

func TestCalibrateAndPredictRoundTrip(t *testing.T) {
	// Small but complete calibration flow on the cheap RF2401 model.
	rng := rand.New(rand.NewSource(3))
	model := RF2401Model{}
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	stim := cfg.RandomStimulus(rng)
	train, err := GeneratePopulation(rng, model, 30, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := AcquireTrainingSet(rng, cfg, stim, train, func(d *Device) lna.Specs { return d.Specs })
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(rng, stim, td, CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	val, err := GeneratePopulation(rng, model, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(rng, cfg, cal, stim, val)
	if err != nil {
		t.Fatal(err)
	}
	// Even an unoptimized stimulus predicts gain well on this behavioral
	// family; the assertions are deliberately loose.
	if rep.Specs[0].RMSErr > 0.4 {
		t.Fatalf("gain RMS %.3f dB too poor", rep.Specs[0].RMSErr)
	}
	if rep.Specs[0].Correlation < 0.9 {
		t.Fatalf("gain correlation %.3f too low", rep.Specs[0].Correlation)
	}
	if len(rep.Specs[2].Points) != 10 {
		t.Fatalf("scatter points %d", len(rep.Specs[2].Points))
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestCalibrateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Calibrate(rng, nil, nil, CalibrationOptions{}); err == nil {
		t.Fatal("too-small training set must error")
	}
	tds := make([]TrainingDevice, 8)
	for i := range tds {
		tds[i] = TrainingDevice{Signature: make([]float64, 4+i)} // ragged
	}
	if _, err := Calibrate(rng, nil, tds, CalibrationOptions{}); err == nil {
		t.Fatal("ragged signatures must error")
	}
}

func TestOptimizeStimulusImprovesObjective(t *testing.T) {
	// On the cheap behavioral model, the GA must strictly reduce the
	// objective versus generation zero.
	rng := rand.New(rand.NewSource(6))
	model := RF2401Model{}
	cfg := DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	res, err := OptimizeStimulus(rng, model, cfg, OptimizerOptions{PopSize: 10, Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 4 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	if res.Trace[len(res.Trace)-1] > res.Trace[0] {
		t.Fatal("objective must not get worse")
	}
	if res.Stimulus.MaxAbs() > cfg.StimAmplitude+1e-12 {
		t.Fatal("stimulus exceeds amplitude bound")
	}
	if res.Objective == nil || res.Ap == nil {
		t.Fatal("missing result fields")
	}
}
