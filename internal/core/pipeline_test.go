package core

import (
	"math/rand"
	"testing"

	"repro/internal/lna"
)

func specsOfDevice(d *Device) lna.Specs { return d.Specs }

// The tentpole contract: the parallel training-set acquisition is
// bit-identical to the serial one at every worker count.
func TestAcquireTrainingSetSeededWorkerBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := DefaultSimConfig()
	stim := cfg.RandomStimulus(rng)
	pop, err := GeneratePopulation(rng, RF2401Model{}, 12, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := AcquireTrainingSetSeeded(55, cfg, stim, pop, specsOfDevice, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := AcquireTrainingSetSeeded(55, cfg, stim, pop, specsOfDevice, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for j := range ref[i].Signature {
				if got[i].Signature[j] != ref[i].Signature[j] {
					t.Fatalf("workers=%d: device %d bin %d differs", w, i, j)
				}
			}
		}
	}
}

// A lot acquired in chunks (resume after an interruption) must equal a
// single-pass acquisition bit for bit.
func TestAcquireTrainingSetResumeBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cfg := DefaultSimConfig()
	stim := cfg.RandomStimulus(rng)
	pop, err := GeneratePopulation(rng, RF2401Model{}, 10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := AcquireTrainingSetSeeded(77, cfg, stim, pop, specsOfDevice, 2)
	if err != nil {
		t.Fatal(err)
	}
	head, err := AcquireTrainingSetAt(77, 0, cfg, stim, pop[:4], specsOfDevice, 1)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := AcquireTrainingSetAt(77, 4, cfg, stim, pop[4:], specsOfDevice, 4)
	if err != nil {
		t.Fatal(err)
	}
	resumed := append(head, tail...)
	for i := range whole {
		for j := range whole[i].Signature {
			if resumed[i].Signature[j] != whole[i].Signature[j] {
				t.Fatalf("resumed device %d bin %d differs from single pass", i, j)
			}
		}
	}
}

// Calibration (CV fold assignment, trainer selection, fitted models) must
// not depend on the CV worker count.
func TestCalibrateWorkerBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	cfg := DefaultSimConfig()
	stim := cfg.RandomStimulus(rng)
	pop, err := GeneratePopulation(rng, RF2401Model{}, 24, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	td, err := AcquireTrainingSetSeeded(99, cfg, stim, pop, specsOfDevice, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Calibration {
		cal, err := Calibrate(rand.New(rand.NewSource(5)), stim, td, CalibrationOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return cal
	}
	ref := run(1)
	probe := td[3].Signature
	for _, w := range []int{4, 8} {
		got := run(w)
		for s := 0; s < 3; s++ {
			if got.CVRMS[s] != ref.CVRMS[s] {
				t.Fatalf("workers=%d: CV RMS for spec %d differs: %v vs %v", w, s, got.CVRMS[s], ref.CVRMS[s])
			}
			if got.Trainers[s] != ref.Trainers[s] {
				t.Fatalf("workers=%d: trainer for spec %d differs: %s vs %s", w, s, got.Trainers[s], ref.Trainers[s])
			}
			if got.Models[s].Predict(probe) != ref.Models[s].Predict(probe) {
				t.Fatalf("workers=%d: model %d predicts differently", w, s)
			}
		}
	}
}

// OptimizeStimulus must evolve a bit-identical stimulus for every worker
// count (the GA's draws are all per-slot streams; fitness is pure).
func TestOptimizeStimulusWorkerBitIdentity(t *testing.T) {
	run := func(workers int) *OptimizeResult {
		rng := rand.New(rand.NewSource(44))
		res, err := OptimizeStimulus(rng, RF2401Model{}, DefaultSimConfig(),
			OptimizerOptions{PopSize: 6, Generations: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{4} {
		got := run(w)
		for i := range ref.Stimulus.Levels {
			if got.Stimulus.Levels[i] != ref.Stimulus.Levels[i] {
				t.Fatalf("workers=%d: stimulus breakpoint %d differs", w, i)
			}
		}
		for i := range ref.Trace {
			if got.Trace[i] != ref.Trace[i] {
				t.Fatalf("workers=%d: GA trace[%d] differs: %g vs %g", w, i, got.Trace[i], ref.Trace[i])
			}
		}
	}
}

func TestDeviceSeedStableMix(t *testing.T) {
	// The crash-resume journal depends on DeviceSeed's exact values; pin
	// the SplitMix64 mix so a refactor cannot silently re-seed old
	// journals. The reference values are the pre-refactor outputs.
	z := uint64(0) + uint64(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	want := int64(z &^ (1 << 63))
	if got := DeviceSeed(0, 0); got != want {
		t.Fatalf("DeviceSeed(0,0) = %d, want %d", got, want)
	}
	if DeviceSeed(3, 5) < 0 || DeviceSeed(3, 5) == DeviceSeed(3, 6) {
		t.Fatal("device seeds must be non-negative and index-sensitive")
	}
}
