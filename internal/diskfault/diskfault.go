// Package diskfault is the filesystem seam under the lot journal and the
// model registry, plus a seeded deterministic fault injector over it.
//
// Production code talks to the FS interface (OS in real deployments);
// tests wrap OS in a FaultFS whose fault schedule is a pure function of
// (seed, operation index) — the same keying contract as netfloor's
// fault-injecting net.Conn, so a failing chaos run is replayed exactly by
// re-running its seed. Injected faults cover the failure modes a
// production floor actually sees from storage: EIO on write or fsync,
// short (torn) writes, ENOSPC, a rename that lands corrupted, and
// latency.
package diskfault

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/parallel"
)

// File is the subset of *os.File the journal and registry need. Every
// method that can touch the platter is interceptable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file size (torn-tail cleanup on resume).
	Truncate(size int64) error
	// Name returns the file's path as opened.
	Name() string
}

// FS is the filesystem seam: exactly the operations the durable lot state
// (journal, registry) performs, so a fault injector can intercept each.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open is os.Open (read-only).
	Open(name string) (File, error)
	// Rename is os.Rename — the registry's atomic pointer swap.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Stat is os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so a create or rename inside it is
	// durable. Best-effort on filesystems that refuse directory fsync —
	// implementations return nil there — but an injected fault does
	// surface as an error so consumers exercise their failure paths.
	SyncDir(dir string) error
}

// osFS is the passthrough production implementation.
type osFS struct{}

// OS is the real filesystem: every FS call maps 1:1 onto the os package.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)        { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error              { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// SyncDir is best-effort on the real filesystem: some filesystems (and
// some CI sandboxes) refuse directory fsync, and that must not be treated
// as data loss.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	d.Sync()
	d.Close()
	return nil
}

// Profile sets per-operation fault probabilities. All zero (or Zero())
// means passthrough.
type Profile struct {
	// WriteErrP is the probability a write fails with EIO before any
	// bytes reach the file.
	WriteErrP float64
	// ShortWriteP is the probability a write is torn: only a prefix of
	// the buffer lands, and the write reports EIO. This is the crash
	// shape the journal's CRC envelope exists to catch.
	ShortWriteP float64
	// ENOSPCP is the probability a write fails with ENOSPC.
	ENOSPCP float64
	// SyncErrP is the probability an fsync (file or directory) fails
	// with EIO.
	SyncErrP float64
	// CorruptRenameP is the probability a rename completes but the
	// destination content is scribbled (one byte flipped) — the
	// non-atomic-rename failure the registry's CRC framing must catch.
	CorruptRenameP float64
	// DelayP / DelayMax inject latency (uniform in (0, DelayMax]) on any
	// intercepted operation.
	DelayP   float64
	DelayMax time.Duration
	// FirstFaultOp spares the first N operations: setup (mkdir, header
	// write, registry scan) proceeds cleanly, faults start at op index
	// FirstFaultOp. Zero faults from the first op.
	FirstFaultOp int64
}

// Zero reports whether the profile injects nothing.
func (p Profile) Zero() bool {
	return p.WriteErrP == 0 && p.ShortWriteP == 0 && p.ENOSPCP == 0 &&
		p.SyncErrP == 0 && p.CorruptRenameP == 0 && p.DelayP == 0
}

// Stats counts injected faults by kind.
type Stats struct {
	Ops            int64 // intercepted fault-eligible operations
	WriteErrs      int64
	ShortWrites    int64
	ENOSPCs        int64
	SyncErrs       int64
	CorruptRenames int64
	Delays         int64
}

// Any reports whether at least one fault was injected.
func (s Stats) Any() bool {
	return s.WriteErrs+s.ShortWrites+s.ENOSPCs+s.SyncErrs+s.CorruptRenames+s.Delays > 0
}

// FaultFS wraps an inner FS with a deterministic fault schedule. The
// decision for operation n is drawn from a rand stream seeded
// parallel.SubSeed(seed, n), so the schedule is a pure function of the
// seed and the operation order — independent of wall clock, file names,
// or which goroutine performs the op.
type FaultFS struct {
	inner FS
	seed  int64
	prof  Profile

	op atomic.Int64 // next operation index

	mu    sync.Mutex
	stats Stats
}

// NewFaultFS builds a fault-injecting filesystem over inner.
func NewFaultFS(inner FS, seed int64, prof Profile) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, seed: seed, prof: prof}
}

// Stats returns a snapshot of injected-fault counts.
func (f *FaultFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Ops = f.op.Load()
	return s
}

// fault kinds rolled per operation.
type faultKind int

const (
	faultNone faultKind = iota
	faultWriteErr
	faultShortWrite
	faultENOSPC
	faultSyncErr
	faultCorruptRename
)

// roll decides the fate of the next operation. kinds restricts which
// error faults apply to this operation class (a read never gets EIO-on-
// write); delay applies to every class. shortFrac is the torn-write
// prefix fraction in [0,1) when kind == faultShortWrite.
func (f *FaultFS) roll(kinds ...faultKind) (kind faultKind, shortFrac float64, delay time.Duration) {
	n := f.op.Add(1) - 1
	if f.prof.Zero() {
		return faultNone, 0, 0
	}
	rng := rand.New(rand.NewSource(parallel.SubSeed(f.seed, int(n))))
	if f.prof.DelayP > 0 && rng.Float64() < f.prof.DelayP && f.prof.DelayMax > 0 {
		delay = time.Duration(rng.Int63n(int64(f.prof.DelayMax))) + 1
	}
	if n < f.prof.FirstFaultOp {
		f.count(faultNone, delay)
		return faultNone, 0, delay
	}
	for _, k := range kinds {
		var p float64
		switch k {
		case faultWriteErr:
			p = f.prof.WriteErrP
		case faultShortWrite:
			p = f.prof.ShortWriteP
		case faultENOSPC:
			p = f.prof.ENOSPCP
		case faultSyncErr:
			p = f.prof.SyncErrP
		case faultCorruptRename:
			p = f.prof.CorruptRenameP
		}
		if p > 0 && rng.Float64() < p {
			f.count(k, delay)
			return k, rng.Float64(), delay
		}
	}
	f.count(faultNone, delay)
	return faultNone, 0, delay
}

func (f *FaultFS) count(k faultKind, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if delay > 0 {
		f.stats.Delays++
	}
	switch k {
	case faultWriteErr:
		f.stats.WriteErrs++
	case faultShortWrite:
		f.stats.ShortWrites++
	case faultENOSPC:
		f.stats.ENOSPCs++
	case faultSyncErr:
		f.stats.SyncErrs++
	case faultCorruptRename:
		f.stats.CorruptRenames++
	}
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	_, _, d := f.roll()
	sleep(d)
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: inner, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	_, _, d := f.roll()
	sleep(d)
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: inner, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	k, frac, d := f.roll(faultCorruptRename)
	sleep(d)
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	if k == faultCorruptRename {
		// The rename "succeeded" but the destination record is torn:
		// flip one byte at a schedule-determined offset. CRC framing on
		// the readers must catch this.
		if data, err := f.inner.ReadFile(newpath); err == nil && len(data) > 0 {
			pos := int(frac * float64(len(data)))
			if pos >= len(data) {
				pos = len(data) - 1
			}
			data[pos] ^= 0x5a
			if w, err := f.inner.OpenFile(newpath, os.O_WRONLY|os.O_TRUNC, 0o644); err == nil {
				w.Write(data)
				w.Close()
			}
		}
	}
	return nil
}

func (f *FaultFS) Remove(name string) error {
	_, _, d := f.roll()
	sleep(d)
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	_, _, d := f.roll()
	sleep(d)
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	_, _, d := f.roll()
	sleep(d)
	return f.inner.Stat(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	_, _, d := f.roll()
	sleep(d)
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	_, _, d := f.roll()
	sleep(d)
	return f.inner.ReadDir(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	k, _, d := f.roll(faultSyncErr)
	sleep(d)
	if k == faultSyncErr {
		return fmt.Errorf("diskfault: injected dir fsync error on %s: %w", dir, syscall.EIO)
	}
	return f.inner.SyncDir(dir)
}

// faultFile intercepts the write path of one open file.
type faultFile struct {
	inner File
	fs    *FaultFS
}

func (ff *faultFile) Read(p []byte) (int, error) {
	_, _, d := ff.fs.roll()
	sleep(d)
	return ff.inner.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	k, frac, d := ff.fs.roll(faultWriteErr, faultShortWrite, faultENOSPC)
	sleep(d)
	switch k {
	case faultWriteErr:
		return 0, fmt.Errorf("diskfault: injected write error on %s: %w", ff.inner.Name(), syscall.EIO)
	case faultENOSPC:
		return 0, fmt.Errorf("diskfault: injected write error on %s: %w", ff.inner.Name(), syscall.ENOSPC)
	case faultShortWrite:
		// A torn write: a strict prefix lands on disk, then the device
		// errors. The next process to replay this file must detect the
		// partial record.
		n := int(frac * float64(len(p)))
		if n >= len(p) {
			n = len(p) - 1
		}
		if n < 0 {
			n = 0
		}
		wrote, err := ff.inner.Write(p[:n])
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("diskfault: injected short write on %s (%d of %d bytes): %w",
			ff.inner.Name(), wrote, len(p), syscall.EIO)
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	k, _, d := ff.fs.roll(faultSyncErr)
	sleep(d)
	if k == faultSyncErr {
		return fmt.Errorf("diskfault: injected fsync error on %s: %w", ff.inner.Name(), syscall.EIO)
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error                       { return ff.inner.Close() }
func (ff *faultFile) Seek(o int64, w int) (int64, error) { return ff.inner.Seek(o, w) }
func (ff *faultFile) Truncate(size int64) error          { return ff.inner.Truncate(size) }
func (ff *faultFile) Name() string                       { return ff.inner.Name() }
