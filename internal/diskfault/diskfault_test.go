package diskfault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestOSPassthrough exercises the real-filesystem implementation end to
// end: open, write, sync, read back, rename, stat, remove, dir sync.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := OS.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	dst := filepath.Join(dir, "b.txt")
	if err := OS.Rename(path, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fi, err := OS.Stat(dst); err != nil || fi.Size() != 5 {
		t.Fatalf("Stat after rename: %v", err)
	}
	if _, err := OS.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("old path still exists: %v", err)
	}
	if err := OS.Remove(dst); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

// TestZeroProfilePassthrough: a zero profile injects nothing, ever.
func TestZeroProfilePassthrough(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 1, Profile{})
	path := filepath.Join(dir, "a.txt")
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := f.Write([]byte("record\n")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	f.Close()
	if s := ffs.Stats(); s.Any() {
		t.Fatalf("zero profile injected faults: %+v", s)
	}
}

// TestWriteFaults: with probability-1 profiles each write-path fault
// fires with its advertised errno and observable effect.
func TestWriteFaults(t *testing.T) {
	cases := []struct {
		name  string
		prof  Profile
		errno error
	}{
		{"eio", Profile{WriteErrP: 1}, syscall.EIO},
		{"enospc", Profile{ENOSPCP: 1}, syscall.ENOSPC},
		{"short", Profile{ShortWriteP: 1}, syscall.EIO},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OS, 7, tc.prof)
			f, err := ffs.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatalf("OpenFile: %v", err)
			}
			defer f.Close()
			payload := []byte("0123456789abcdef0123456789abcdef\n")
			n, err := f.Write(payload)
			if err == nil {
				t.Fatalf("write succeeded under %s profile", tc.name)
			}
			if !errors.Is(err, tc.errno) {
				t.Fatalf("err = %v, want errors.Is %v", err, tc.errno)
			}
			if n >= len(payload) {
				t.Fatalf("full payload written (%d bytes) despite fault", n)
			}
			if tc.name == "short" {
				// The torn prefix must actually land.
				data, _ := os.ReadFile(filepath.Join(dir, "j"))
				if len(data) != n {
					t.Fatalf("on-disk %d bytes, write reported %d", len(data), n)
				}
				if !bytes.Equal(data, payload[:n]) {
					t.Fatalf("torn prefix differs from payload prefix")
				}
			} else if n != 0 {
				t.Fatalf("bytes written under %s: %d", tc.name, n)
			}
		})
	}
}

// TestSyncFault: fsync fails with EIO on files and directories.
func TestSyncFault(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 3, Profile{SyncErrP: 1})
	f, err := ffs.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("file Sync err = %v, want EIO", err)
	}
	if err := ffs.SyncDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("SyncDir err = %v, want EIO", err)
	}
	s := ffs.Stats()
	if s.SyncErrs != 2 {
		t.Fatalf("SyncErrs = %d, want 2", s.SyncErrs)
	}
}

// TestCorruptRename: the rename lands but the destination differs from
// the source by exactly one byte.
func TestCorruptRename(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "tmp")
	orig := []byte(`{"crc":123,"rec":{"active":2}}` + "\n")
	if err := os.WriteFile(src, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS, 9, Profile{CorruptRenameP: 1})
	dst := filepath.Join(dir, "ACTIVE")
	if err := ffs.Rename(src, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("read dst: %v", err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length changed: %d -> %d", len(orig), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if s := ffs.Stats(); s.CorruptRenames != 1 {
		t.Fatalf("CorruptRenames = %d, want 1", s.CorruptRenames)
	}
}

// TestDelayInjection: delays are injected and counted.
func TestDelayInjection(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 5, Profile{DelayP: 1, DelayMax: time.Millisecond})
	start := time.Now()
	for i := 0; i < 5; i++ {
		ffs.Stat(dir)
	}
	if time.Since(start) <= 0 {
		t.Fatalf("no time elapsed")
	}
	if s := ffs.Stats(); s.Delays != 5 {
		t.Fatalf("Delays = %d, want 5", s.Delays)
	}
}

// TestFirstFaultOpSpared: ops before FirstFaultOp never error, ops after
// do.
func TestFirstFaultOpSpared(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, 11, Profile{WriteErrP: 1, FirstFaultOp: 3})
	f, err := ffs.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY, 0o644) // op 0
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ { // ops 1, 2
		if _, err := f.Write([]byte("ok\n")); err != nil {
			t.Fatalf("spared write %d failed: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("boom\n")); err == nil { // op 3
		t.Fatalf("write past FirstFaultOp succeeded")
	}
}

// TestDeterministicSchedule: two FaultFS with the same seed over the same
// op sequence make identical fault decisions; a different seed diverges
// somewhere.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) (string, Stats) {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, seed, Profile{WriteErrP: 0.3, SyncErrP: 0.3, ShortWriteP: 0.2})
		f, err := ffs.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatalf("OpenFile: %v", err)
		}
		defer f.Close()
		var trace []byte
		for i := 0; i < 64; i++ {
			if _, err := f.Write([]byte("r\n")); err != nil {
				trace = append(trace, 'W')
			} else if err := f.Sync(); err != nil {
				trace = append(trace, 'S')
			} else {
				trace = append(trace, '.')
			}
		}
		return string(trace), ffs.Stats()
	}
	t1, s1 := run(42)
	t2, s2 := run(42)
	if t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged:\n%s %+v\n%s %+v", t1, s1, t2, s2)
	}
	t3, _ := run(43)
	if t1 == t3 {
		t.Fatalf("different seeds produced identical 64-op schedules")
	}
	if !s1.Any() {
		t.Fatalf("no faults injected at these probabilities: %+v", s1)
	}
}
