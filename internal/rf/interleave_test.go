package rf

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dsp"
)

// runDevicesAgainstReference screens one assignment of (DUT, fault) pairs
// through RunDevices and demands every slot match the reference
// RunEnvelopeFaulted capture sample for sample.
func runDevicesAgainstReference(t *testing.T, lb *Loadboard, br *BatchRunner, stim StimFunc,
	assign []struct {
		name string
		dut  EnvelopeDevice
		flt  *InsertionFaults
	}) {
	t.Helper()
	devs := make([]DeviceRun, len(assign))
	for i, a := range assign {
		devs[i] = DeviceRun{DUT: a.dut, Flt: a.flt}
	}
	br.RunDevices(devs)
	for i, a := range assign {
		if devs[i].Panic != nil {
			t.Fatalf("slot %d (%s): unexpected panic: %v", i, a.name, devs[i].Panic)
		}
		if devs[i].Err != nil {
			t.Fatalf("slot %d (%s): unexpected error: %v", i, a.name, devs[i].Err)
		}
		ref, err := lb.RunEnvelopeFaulted(a.dut, stim, a.flt)
		if err != nil {
			t.Fatalf("slot %d (%s): reference: %v", i, a.name, err)
		}
		sameCapture(t, fmt.Sprintf("slot %d (%s)", i, a.name), ref, devs[i].Capture)
	}
}

// TestRunDevicesBitIdentity drives mixed batches — every board, every DUT
// kind, every fault kind, group sizes from singleton to past the tile
// boundary — through the interleaved kernel and checks each capture against
// the serial reference.
func TestRunDevicesBitIdentity(t *testing.T) {
	for bname, lb := range batchTestBoards() {
		stim := batchStim(0.18)
		br, err := NewBatchRunner(lb)
		if err != nil {
			t.Fatalf("%s: NewBatchRunner: %v", bname, err)
		}
		br.Prepare(stim)
		windowS := float64(lb.CaptureN) / lb.DigitizerFs
		duts := batchTestDUTs()
		faults := batchTestFaults(windowS)

		var assign []struct {
			name string
			dut  EnvelopeDevice
			flt  *InsertionFaults
		}
		// A uniform run of clean amp-quad devices crosses the tile boundary;
		// the rest mixes every DUT and fault so clean groups, serial tails
		// and reference fallbacks interleave in one call.
		for i := 0; i < 19; i++ {
			assign = append(assign, struct {
				name string
				dut  EnvelopeDevice
				flt  *InsertionFaults
			}{fmt.Sprintf("amp-quad/clean#%d", i), duts["amp-quad"], nil})
		}
		for dname, dut := range duts {
			for fname, flt := range faults {
				assign = append(assign, struct {
					name string
					dut  EnvelopeDevice
					flt  *InsertionFaults
				}{dname + "/" + fname, dut, flt})
			}
		}
		runDevicesAgainstReference(t, lb, br, stim, assign)
	}
}

// TestRunDevicesTileSweep pins the tile split: every tile width (including 1,
// which disables interleaving entirely) must reproduce the reference bits.
func TestRunDevicesTileSweep(t *testing.T) {
	lb := batchTestBoards()["phased"]
	stim := batchStim(0.18)
	duts := batchTestDUTs()
	for _, tile := range []int{1, 2, 3, 5, 16, 64} {
		br, err := NewBatchRunner(lb)
		if err != nil {
			t.Fatal(err)
		}
		br.InterleaveTile = tile
		br.Prepare(stim)
		assign := make([]struct {
			name string
			dut  EnvelopeDevice
			flt  *InsertionFaults
		}, 11)
		for i := range assign {
			assign[i].name = fmt.Sprintf("tile%d/dev%d", tile, i)
			assign[i].dut = duts["amp-quad"]
		}
		runDevicesAgainstReference(t, lb, br, stim, assign)
	}
}

// TestRunDevicesPanicIsolation puts a CaptureN-contract violation in the
// middle of a clean group: that slot records the panic, its groupmates'
// captures still match the reference.
func TestRunDevicesPanicIsolation(t *testing.T) {
	lb := batchTestBoards()["default"]
	stim := batchStim(0.18)
	br, err := NewBatchRunner(lb)
	if err != nil {
		t.Fatal(err)
	}
	br.Prepare(stim)
	dut := NewAmplifier(Poly{C: []float64{5.6, 0.8, -120}})
	bad := &InsertionFaults{CaptureTransform: func(x []float64) []float64 { return x[:len(x)-3] }}
	devs := make([]DeviceRun, 5)
	for i := range devs {
		devs[i].DUT = dut
	}
	devs[2].Flt = bad
	br.RunDevices(devs)
	if devs[2].Panic == nil {
		t.Fatal("expected CaptureN contract panic on slot 2")
	}
	if msg, ok := devs[2].Panic.(string); !ok || !strings.Contains(msg, "CaptureN contract") {
		t.Fatalf("unexpected panic payload: %v", devs[2].Panic)
	}
	ref, err := lb.RunEnvelopeFaulted(dut, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3, 4} {
		if devs[i].Panic != nil || devs[i].Err != nil {
			t.Fatalf("slot %d poisoned: panic=%v err=%v", i, devs[i].Panic, devs[i].Err)
		}
		sameCapture(t, fmt.Sprintf("slot %d beside panic", i), ref, devs[i].Capture)
	}
}

// TestRunDevicesRequiresPrepare checks every slot reports the unprepared
// error.
func TestRunDevicesRequiresPrepare(t *testing.T) {
	br, err := NewBatchRunner(DefaultLoadboard())
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]DeviceRun, 3)
	for i := range devs {
		devs[i].DUT = NewAmplifier(PolyFromSpecs(15, -8))
	}
	br.RunDevices(devs)
	for i := range devs {
		if devs[i].Err == nil {
			t.Fatalf("slot %d: expected error before Prepare", i)
		}
	}
}

// randomPoly draws a random DUT polynomial: always a linear term, sometimes
// quadratic/cubic, occasionally purely linear.
func randomPoly(rng *rand.Rand) Poly {
	c := []float64{1 + 4*rng.Float64()}
	for len(c) < 3 && rng.Float64() < 0.7 {
		c = append(c, (rng.Float64()-0.5)*2*math.Pow(10, float64(len(c))))
	}
	return Poly{C: c}
}

// TestRunDevicesPropertyRandom is the randomized end-to-end property test:
// random boards (zone counts, capture/settle lengths, phases, mixers),
// random DUT populations, random fault assignments and random batch sizes,
// checked against the serial reference with == on captures and Float64bits
// on the post-|FFT| signature the screen consumes.
func TestRunDevicesPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 12; trial++ {
		lb := DefaultLoadboard()
		lb.CaptureN = 24 + rng.Intn(3)*8
		lb.SettleN = 4 + rng.Intn(8)
		lb.MaxZone = 1 + rng.Intn(3)
		lb.PathPhase = rng.Float64()
		if rng.Intn(2) == 0 {
			lb.DownMixer = IdealMixer()
		}
		stim := batchStim(0.1 + 0.2*rng.Float64())
		br, err := NewBatchRunner(lb)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rng.Intn(3) == 0 {
			br.InterleaveTile = 2 + rng.Intn(6)
		}
		br.Prepare(stim)
		windowS := float64(lb.CaptureN) / lb.DigitizerFs

		faults := []*InsertionFaults{nil, nil, nil} // bias toward clean groups
		for fname, flt := range batchTestFaults(windowS) {
			_ = fname
			faults = append(faults, flt)
		}
		var duts []EnvelopeDevice
		for i := 0; i < 4; i++ {
			a := NewAmplifier(randomPoly(rng))
			if rng.Intn(2) == 0 {
				a.CarrierSlope = complex(rng.Float64()*4e-9, rng.Float64()*1e-9)
			}
			duts = append(duts, a)
		}
		duts = append(duts, &Chain{Stages: []*Amplifier{
			NewAmplifier(randomPoly(rng)), NewAmplifier(randomPoly(rng)),
		}})
		duts = append(duts, genericDUT{a: NewAmplifier(randomPoly(rng))})

		k := 2 + rng.Intn(20)
		devs := make([]DeviceRun, k)
		picks := make([]int, k)
		fpicks := make([]int, k)
		for i := range devs {
			picks[i] = rng.Intn(len(duts))
			fpicks[i] = rng.Intn(len(faults))
			devs[i].DUT = duts[picks[i]]
			devs[i].Flt = faults[fpicks[i]]
		}
		br.RunDevices(devs)
		pad := dsp.NextPow2(lb.CaptureN)
		for i := range devs {
			name := fmt.Sprintf("trial %d slot %d (dut %d fault %d)", trial, i, picks[i], fpicks[i])
			if devs[i].Panic != nil {
				t.Fatalf("%s: panic: %v", name, devs[i].Panic)
			}
			if devs[i].Err != nil {
				t.Fatalf("%s: error: %v", name, devs[i].Err)
			}
			ref, err := lb.RunEnvelopeFaulted(devs[i].DUT, stim, devs[i].Flt)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}
			sameCapture(t, name, ref, devs[i].Capture)
			refSig := dsp.MagnitudeSpectrum(dsp.ZeroPad(ref, pad))
			gotSig := dsp.MagnitudeSpectrum(dsp.ZeroPad(devs[i].Capture, pad))
			for bi := range refSig {
				if math.Float64bits(refSig[bi]) != math.Float64bits(gotSig[bi]) {
					t.Fatalf("%s: signature bin %d differs: %x vs %x",
						name, bi, math.Float64bits(gotSig[bi]), math.Float64bits(refSig[bi]))
				}
			}
		}
	}
}

// TestMulOccIntoPropertyRandom pits the occupancy-pruned product against the
// reference Mul over random zone counts, occupancy patterns and lengths.
// Zeroed zones are structurally inert, so every output sample must agree
// under == (signed zeros equal) and every magnitude under Float64bits.
func TestMulOccIntoPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	randSig := func(n, mz int) *EnvSignal {
		s := NewEnvSignal(40e6, 2.4e9, n, mz)
		for k := range s.Z {
			if rng.Float64() < 0.35 {
				continue // structurally zero zone
			}
			for i := range s.Z[k] {
				s.Z[k][i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		return s
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		amz := rng.Intn(5)
		bmz := rng.Intn(5)
		outMax := rng.Intn(7)
		a, b := randSig(n, amz), randSig(n, bmz)
		ref := Mul(a, b, outMax)
		out := (&envBuf{}).prep(a.Fs, n, outMax)
		computeMax := rng.Intn(outMax + 2) // may exceed alloc: must clamp
		mulOccInto(out, wrapSignal(a), wrapSignal(b), computeMax)
		for m := 0; m <= outMax; m++ {
			for i := 0; i < n; i++ {
				var got complex128
				if m < len(out.occ) && out.occ[m] {
					got = out.z[m][i]
				}
				want := ref.Z[m][i]
				if m > computeMax {
					want = 0 // zones past computeMax are deliberately not computed
				}
				if got != want {
					t.Fatalf("trial %d zone %d sample %d: %v vs %v (computeMax %d, occ %v)",
						trial, m, i, got, want, computeMax, out.occ)
				}
				if cmplx.Abs(got) != cmplx.Abs(want) &&
					math.Float64bits(cmplx.Abs(got)) != math.Float64bits(cmplx.Abs(want)) {
					t.Fatalf("trial %d zone %d sample %d: magnitude bits differ", trial, m, i)
				}
			}
		}
	}
}

// TestRunDevicesAllocSteadyState pins the interleaved kernel's steady state
// to zero allocations per batch: planes, plans, groups and captures are all
// pooled once warm.
func TestRunDevicesAllocSteadyState(t *testing.T) {
	lb := batchTestBoards()["default"]
	stim := batchStim(0.18)
	br, err := NewBatchRunner(lb)
	if err != nil {
		t.Fatal(err)
	}
	br.Prepare(stim)
	dut := NewAmplifier(Poly{C: []float64{5.6, 0.8, -120}})
	devs := make([]DeviceRun, 8)
	for i := range devs {
		devs[i].DUT = dut
	}
	br.RunDevices(devs) // warm pools and plan cache
	avg := testing.AllocsPerRun(50, func() {
		br.RunDevices(devs)
	})
	if avg != 0 {
		t.Fatalf("interleaved kernel allocates %v per batch in steady state, want 0", avg)
	}
}
