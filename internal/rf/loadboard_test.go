package rf

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

// testStim is a smooth two-component baseband waveform inside the LPF band.
// Peak ~0.14 V: after upconversion with a 1 V carrier this drives a
// 3 dBm-IIP3 DUT near its 1 dB compression point (A1dB ~ 0.15 V) without
// pushing it into deep, unphysical overdrive.
func testStim(t float64) float64 {
	return 0.08*math.Sin(2*math.Pi*1e6*t) + 0.06*math.Sin(2*math.Pi*2.5e6*t+0.7)
}

func TestMixerIdealProductEnvelope(t *testing.T) {
	// Ideal mixer x * lo with x a baseband tone and lo the carrier: output
	// zone 1 envelope must equal x's baseband value times carrier envelope.
	fs, fref := 80e6, 900e6
	n := 160
	bb := make([]float64, n)
	for i := range bb {
		bb[i] = 0.5 * math.Sin(2*math.Pi*1e6*float64(i)/fs)
	}
	x := EnvFromBaseband(bb, fs, fref, 3)
	lo := EnvTone(fs, fref, n, 3, 1, 1, 0, 0)
	y := IdealMixer().ProcessEnvelope(x, lo, 3)
	for i := 0; i < n; i++ {
		// x(t)*cos(wt): zone-1 envelope = x(t) (real).
		want := bb[i]
		if math.Abs(real(y.Z[1][i])-want) > 1e-9 || math.Abs(imag(y.Z[1][i])) > 1e-9 {
			t.Fatalf("sample %d: zone1 %v, want %g", i, y.Z[1][i], want)
		}
	}
}

func TestMixerPassbandMatchesDirectComputation(t *testing.T) {
	m := DefaultMixer()
	rf := []float64{0.1, -0.2, 0.3}
	lo := []float64{1, -1, 0.5}
	out := m.ProcessPassband(rf, lo)
	for i := range rf {
		r, l := rf[i], lo[i]
		want := m.RFFeedthrough*r + m.LOFeedthrough*l
		for p := 1; p <= 3; p++ {
			for q := 1; q <= 3; q++ {
				want += m.K[p-1][q-1] * math.Pow(r, float64(p)) * math.Pow(l, float64(q))
			}
		}
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("sample %d: %g vs %g", i, out[i], want)
		}
	}
}

func TestLoadboardGainDeviceRoundTrip(t *testing.T) {
	// Ideal mixers, linear DUT of gain A, same LO, phase 0: the captured
	// baseband should be (A/2)*CarrierAmp^2*stim within filter accuracy
	// (Eq. 2-4 of the paper with phi = 0: x_s = A x_t cos(phi) with the
	// 1/2 from each multiplication absorbed into the LO amplitudes).
	lb := DefaultLoadboard()
	lb.UpMixer = IdealMixer()
	lb.DownMixer = IdealMixer()
	lb.LOOffsetHz = 0
	lb.CaptureN = 200
	amp := NewAmplifier(Poly{C: []float64{4}})
	got, err := lb.RunEnvelope(amp, testStim)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: up = x*cos(wt) -> zone1 env = x; DUT: 4x; down mixes with
	// cos(wt): zone0 value = 4x/2 = 2x. Captured sample i corresponds to
	// time (settle + i)/fs.
	fs := lb.DigitizerFs
	for i := range got {
		want := 2 * testStim(float64(i+32)/fs)
		if math.Abs(got[i]-want) > 0.02 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want)
		}
	}
}

func TestLoadboardPhaseCancellationEq4(t *testing.T) {
	// Same-LO configuration: signature amplitude scales with cos(phi) and
	// collapses at phi = pi/2 (the paper's Eq. 4 problem).
	lb := DefaultLoadboard()
	lb.UpMixer = IdealMixer()
	lb.DownMixer = IdealMixer()
	lb.LOOffsetHz = 0
	amp := NewAmplifier(Poly{C: []float64{4}})

	power := func(phase float64) float64 {
		lb.PathPhase = phase
		y, err := lb.RunEnvelope(amp, testStim)
		if err != nil {
			t.Fatal(err)
		}
		return dsp.SignalPower(y)
	}
	p0 := power(0)
	p90 := power(math.Pi / 2)
	p60 := power(math.Pi / 3)
	if p90 > 1e-6*p0 {
		t.Fatalf("quadrature phase should cancel the signature: p0=%g p90=%g", p0, p90)
	}
	// cos^2(60 deg) = 1/4.
	if math.Abs(p60/p0-0.25) > 0.02 {
		t.Fatalf("cos^2 law violated: p60/p0 = %g", p60/p0)
	}
}

// relChange is the relative L2 difference between two equal-length vectors.
func relChange(a, b []float64) float64 {
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += a[i] * a[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

func TestLoadboardOffsetLOMagnitudeInvariantToPhase(t *testing.T) {
	// With the LO offset, ideal multipliers and an FFT-magnitude signature,
	// phase variations must not change the signature (paper Eq. 5 /
	// Fig. 3). Real mixers add a small residual through their 2*phi cross
	// products — checked separately below.
	lb := DefaultLoadboard()
	lb.UpMixer = IdealMixer()
	lb.DownMixer = IdealMixer()
	lb.CaptureN = 400
	amp := NewAmplifier(PolyFromSpecs(16, 3))

	sig := func(phase float64) []float64 {
		lb.PathPhase = phase
		y, err := lb.RunEnvelope(amp, testStim)
		if err != nil {
			t.Fatal(err)
		}
		return dsp.MagnitudeSpectrum(dsp.Blackman.Apply(y))
	}
	if rel := relChange(sig(0), sig(1.2)); rel > 0.02 {
		t.Fatalf("FFT-magnitude signature changed by %.2f%% under phase shift", rel*100)
	}
	// Sanity: the raw time-domain capture DOES change with phase.
	lb.PathPhase = 0
	y0, _ := lb.RunEnvelope(amp, testStim)
	lb.PathPhase = 1.2
	y1, _ := lb.RunEnvelope(amp, testStim)
	if relChange(y0, y1) < 0.1 {
		t.Fatal("time-domain capture should depend on phase; only the magnitude signature is invariant")
	}
}

func TestLoadboardRealMixersSmallPhaseResidual(t *testing.T) {
	// With harmonic-generating mixers the magnitude signature retains a
	// small phase dependence (interference between phi and 2*phi cross
	// products), but it must remain far smaller than the raw waveform's
	// phase dependence — this is exactly why the paper normalizes through a
	// regression calibration rather than assuming perfect invariance.
	lb := DefaultLoadboard()
	lb.CaptureN = 400
	amp := NewAmplifier(PolyFromSpecs(16, 3))
	run := func(phase float64) ([]float64, []float64) {
		lb.PathPhase = phase
		y, err := lb.RunEnvelope(amp, testStim)
		if err != nil {
			t.Fatal(err)
		}
		return y, dsp.MagnitudeSpectrum(dsp.Blackman.Apply(y))
	}
	y0, s0 := run(0)
	y1, s1 := run(1.2)
	rawRel := relChange(y0, y1)
	sigRel := relChange(s0, s1)
	if sigRel > rawRel/5 {
		t.Fatalf("signature phase residual %.3f not much smaller than raw %.3f", sigRel, rawRel)
	}
	if sigRel > 0.1 {
		t.Fatalf("signature phase residual too large: %.3f", sigRel)
	}
}

func TestLoadboardEnvelopeMatchesPassbandIdealMixers(t *testing.T) {
	// Cross-validation of the two simulation engines where both are exact:
	// ideal multipliers and a cubic DUT keep every spectral product within
	// the tracked zones and below the passband Nyquist.
	lb := DefaultLoadboard()
	lb.UpMixer = IdealMixer()
	lb.DownMixer = IdealMixer()
	lb.CaptureN = 150
	lb.PathPhase = 0.4
	amp := NewAmplifier(PolyFromSpecs(16, 3))
	// Passband engine is memoryless/flat: align the envelope engine.
	amp.ZoneGain = map[int]float64{0: 1, 1: 1, 2: 1, 3: 1}

	env, err := lb.RunEnvelope(amp, testStim)
	if err != nil {
		t.Fatal(err)
	}
	pass, err := lb.RunPassband(amp, testStim)
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != len(pass) {
		t.Fatalf("length mismatch %d vs %d", len(env), len(pass))
	}
	// Compare FFT magnitudes: the two engines differ by a sub-sample group
	// delay (boxcar decimation stages), which the magnitude signature — the
	// quantity the framework actually uses — is immune to.
	se := dsp.MagnitudeSpectrum(dsp.Blackman.Apply(env))
	sp := dsp.MagnitudeSpectrum(dsp.Blackman.Apply(pass))
	if rel := relChange(se, sp); rel > 0.03 {
		t.Fatalf("envelope vs passband signature relative error %.3f, want < 0.03", rel)
	}
}

func TestLoadboardEnvelopeMatchesPassbandRealMixers(t *testing.T) {
	// With harmonic-generating mixers the engines approximate the same
	// infinite-bandwidth system differently (zone truncation vs sample-rate
	// aliasing); agreement is looser but must stay within a few percent.
	lb := DefaultLoadboard()
	lb.CaptureN = 120
	lb.PathPhase = 0.4
	lb.PassbandFs = 16 * lb.CarrierHz
	amp := NewAmplifier(PolyFromSpecs(16, 3))
	amp.ZoneGain = map[int]float64{0: 1, 1: 1, 2: 1, 3: 1}

	env, err := lb.RunEnvelope(amp, testStim)
	if err != nil {
		t.Fatal(err)
	}
	pass, err := lb.RunPassband(amp, testStim)
	if err != nil {
		t.Fatal(err)
	}
	se := dsp.MagnitudeSpectrum(dsp.Blackman.Apply(env))
	sp := dsp.MagnitudeSpectrum(dsp.Blackman.Apply(pass))
	if rel := relChange(se, sp); rel > 0.08 {
		t.Fatalf("envelope vs passband signature relative error %.3f, want < 0.08", rel)
	}
}

func TestLoadboardValidation(t *testing.T) {
	lb := DefaultLoadboard()
	lb.LPFCutoffHz = 50e6 // above digitizer Nyquist
	if _, err := lb.RunEnvelope(NewAmplifier(Poly{C: []float64{1}}), testStim); err == nil {
		t.Fatal("expected validation error")
	}
	lb = DefaultLoadboard()
	lb.UpMixer = nil
	if _, err := lb.RunEnvelope(NewAmplifier(Poly{C: []float64{1}}), testStim); err == nil {
		t.Fatal("expected mixer validation error")
	}
}

func TestLoadboardNonlinearDUTGeneratesIMProducts(t *testing.T) {
	// Two-tone baseband stimulus through a compressive DUT must show IM3
	// products in the captured spectrum at 2*f1-f2 and 2*f2-f1.
	lb := DefaultLoadboard()
	lb.LOOffsetHz = 0
	lb.UpMixer = IdealMixer()
	lb.DownMixer = IdealMixer()
	lb.CaptureN = 400
	amp := NewAmplifier(PolyFromSpecs(16, -8)) // quite nonlinear
	f1, f2 := 2.0e6, 2.5e6
	stim := func(t float64) float64 {
		return 0.04*math.Sin(2*math.Pi*f1*t) + 0.04*math.Sin(2*math.Pi*f2*t)
	}
	y, err := lb.RunEnvelope(amp, stim)
	if err != nil {
		t.Fatal(err)
	}
	fund := dsp.ToneAmplitude(y, f1, lb.DigitizerFs)
	im3 := dsp.ToneAmplitude(y, 2*f1-f2, lb.DigitizerFs)
	if fund < 0.01 {
		t.Fatalf("fundamental missing: %g", fund)
	}
	if im3 < 1e-5*fund {
		t.Fatalf("IM3 product missing: fund=%g im3=%g", fund, im3)
	}
	if im3 > fund {
		t.Fatal("IM3 should remain below the fundamental")
	}
}
