package rf

import (
	"math"
	"math/cmplx"
	"testing"
)

// reconstruct evaluates the represented passband signal at time index i
// given an exact time base (for algebra validation at coarse carrier
// ratios, where the envelope rate resolves the carrier).
func reconstruct(s *EnvSignal, i int) float64 {
	t := float64(i) / s.Fs
	v := real(s.Z[0][i]) / 2
	for k := 1; k <= s.MaxZone; k++ {
		v += real(s.Z[k][i] * cmplx.Exp(complex(0, 2*math.Pi*float64(k)*s.Fref*t)))
	}
	return v
}

func TestEnvToneReconstruction(t *testing.T) {
	// A zone-1 tone with offset and phase must reconstruct as
	// amp*cos(2*pi*(fref+off)*t + phase).
	fs, fref := 64.0, 4.0
	n := 64
	s := EnvTone(fs, fref, n, 3, 1, 0.8, 0.5, 0.3)
	for i := 0; i < n; i++ {
		tt := float64(i) / fs
		want := 0.8 * math.Cos(2*math.Pi*(fref+0.5)*tt+0.3)
		if got := reconstruct(s, i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("sample %d: %g vs %g", i, got, want)
		}
	}
}

func TestEnvZone0Convention(t *testing.T) {
	s := EnvTone(64, 4, 16, 2, 0, 1.5, 0, 0)
	bb, resid := s.BasebandReal()
	if resid > 1e-12 {
		t.Fatalf("imaginary residue %g", resid)
	}
	for _, v := range bb {
		if math.Abs(v-1.5) > 1e-12 {
			t.Fatalf("zone-0 DC value %g, want 1.5", v)
		}
	}
}

func TestEnvMulSquareOfCosine(t *testing.T) {
	// cos^2(wt) = 1/2 + cos(2wt)/2.
	fs, fref := 64.0, 4.0
	n := 32
	s := EnvTone(fs, fref, n, 2, 1, 1, 0, 0)
	sq := Mul(s, s, 2)
	for i := 0; i < n; i++ {
		if math.Abs(real(sq.Z[0][i])-1) > 1e-12 { // value = Z0/2 = 0.5
			t.Fatalf("DC zone value %v", sq.Z[0][i])
		}
		if cmplx.Abs(sq.Z[2][i]-complex(0.5, 0)) > 1e-12 {
			t.Fatalf("2nd harmonic envelope %v, want 0.5", sq.Z[2][i])
		}
		if cmplx.Abs(sq.Z[1][i]) > 1e-12 {
			t.Fatalf("fundamental should vanish in cos^2")
		}
	}
}

func TestEnvMulMatchesTimeDomain(t *testing.T) {
	// Product of two offset tones, validated against pointwise products of
	// the reconstructed signals.
	fs, fref := 128.0, 8.0
	n := 128
	a := EnvTone(fs, fref, n, 3, 1, 0.7, 0.9, 0.2)
	b := EnvTone(fs, fref, n, 3, 1, 1.1, -0.4, 1.0)
	p := Mul(a, b, 3)
	for i := 0; i < n; i++ {
		want := reconstruct(a, i) * reconstruct(b, i)
		if got := reconstruct(p, i); math.Abs(got-want) > 1e-9 {
			t.Fatalf("sample %d: product %g vs %g", i, got, want)
		}
	}
}

func TestEnvApplyPolyMatchesTimeDomain(t *testing.T) {
	fs, fref := 128.0, 8.0
	n := 64
	x := EnvTone(fs, fref, n, 3, 1, 0.5, 1.3, 0.4)
	poly := Poly{C: []float64{2, 0.3, -0.8}}
	y := x.ApplyPoly(poly, 3)
	for i := 0; i < n; i++ {
		xv := reconstruct(x, i)
		want := poly.Eval(xv)
		got := reconstruct(y, i)
		// Zone truncation loses nothing for a cubic of a zone-1 input with
		// MaxZone 3.
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("sample %d: poly %g vs %g", i, got, want)
		}
	}
}

func TestEnvAddScaledAndScaleZone(t *testing.T) {
	fs, fref := 64.0, 4.0
	a := EnvTone(fs, fref, 8, 2, 1, 1, 0, 0)
	b := EnvTone(fs, fref, 8, 2, 1, 2, 0, 0)
	a.AddScaled(b, 0.5)
	for i := 0; i < 8; i++ {
		if cmplx.Abs(a.Z[1][i]-complex(2, 0)) > 1e-12 {
			t.Fatalf("AddScaled result %v", a.Z[1][i])
		}
	}
	a.ScaleZone(1, complex(0, 1))
	if cmplx.Abs(a.Z[1][0]-complex(0, 2)) > 1e-12 {
		t.Fatalf("ScaleZone result %v", a.Z[1][0])
	}
}

func TestEnvIncompatiblePanics(t *testing.T) {
	a := NewEnvSignal(10, 1, 4, 1)
	b := NewEnvSignal(20, 1, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible signals")
		}
	}()
	Mul(a, b, 1)
}

func TestPolyEvalAndSpecs(t *testing.T) {
	p := Poly{C: []float64{10, 0, -1}}
	if got := p.Eval(2); got != 20-8 {
		t.Fatalf("Eval = %g", got)
	}
	if p.Gain() != 10 {
		t.Fatal("Gain wrong")
	}
	// AIP3 = sqrt(4/3*10) -> check round trip with PolyFromSpecs.
	ip3 := p.IIP3DBm()
	q := PolyFromSpecs(20, ip3)
	if math.Abs(q.C[0]-10) > 1e-9 {
		t.Fatalf("gain round trip %g", q.C[0])
	}
	if math.Abs(q.C[2]-p.C[2])/math.Abs(p.C[2]) > 1e-9 {
		t.Fatalf("c3 round trip %g vs %g", q.C[2], p.C[2])
	}
	// P1dB sits ~9.6 dB below IIP3.
	if math.Abs(p.P1dBDBm()-(ip3-9.6)) > 1e-12 {
		t.Fatal("P1dB relation broken")
	}
	lin := Poly{C: []float64{5}}
	if !math.IsInf(lin.IIP3DBm(), 1) {
		t.Fatal("linear poly should have infinite IIP3")
	}
}

func TestChainCascadeSpecs(t *testing.T) {
	// Two identical 10 dB / NF 3 dB stages: Friis NF = 10log10(2 + 1/10).
	st := func() *Amplifier {
		a := NewAmplifier(PolyFromSpecs(10, 10))
		a.NFDB = 3
		return a
	}
	c := &Chain{Stages: []*Amplifier{st(), st()}}
	g, nf, ip3 := c.CascadeSpecs()
	if math.Abs(g-20) > 1e-9 {
		t.Fatalf("cascade gain %g", g)
	}
	f := math.Pow(10, 0.3) // NF 3 dB as a factor
	wantNF := 10 * math.Log10(f+(f-1)/10.0)
	if math.Abs(nf-wantNF) > 1e-9 {
		t.Fatalf("cascade NF %g, want %g", nf, wantNF)
	}
	// Cascade IIP3 must be worse (lower) than a single stage's 10 dBm.
	if ip3 >= 10 {
		t.Fatalf("cascade IIP3 %g, want < 10", ip3)
	}
}
