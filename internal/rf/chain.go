package rf

import "math"

// Chain cascades behavioral stages (e.g. LNA followed by an on-chip mixer
// buffer in the front-end example). It implements both simulation
// interfaces when every stage does.
type Chain struct {
	Stages []*Amplifier
}

// ProcessEnvelope runs the signal through every stage.
func (c *Chain) ProcessEnvelope(in *EnvSignal, maxZone int) *EnvSignal {
	s := in
	for _, st := range c.Stages {
		s = st.ProcessEnvelope(s, maxZone)
	}
	return s
}

// ProcessPassband runs the samples through every stage.
func (c *Chain) ProcessPassband(x []float64) []float64 {
	for _, st := range c.Stages {
		x = st.ProcessPassband(x)
	}
	return x
}

// CascadeSpecs returns the chain's overall gain (dB), noise figure (dB,
// Friis) and input IIP3 (dBm, reciprocal power combination) from the
// per-stage specs — the standard RF budget formulas, used by the front-end
// example to compare chain-level predictions against the per-stage specs.
func (c *Chain) CascadeSpecs() (gainDB, nfDB, iip3DBm float64) {
	gainLin := 1.0
	fTotal := 0.0
	invIP3 := 0.0
	first := true
	for _, st := range c.Stages {
		g := st.Poly.Gain() * st.Poly.Gain() // power gain
		f := math.Pow(10, st.NFDB/10)
		if first {
			fTotal = f
			first = false
		} else {
			fTotal += (f - 1) / gainLin
		}
		// Input-referred IP3 of the cascade (powers in mW):
		// 1/ip3 = sum 1/(ip3_k / gain_before_k).
		ip3k := math.Pow(10, st.Poly.IIP3DBm()/10)
		if !math.IsInf(ip3k, 1) {
			invIP3 += gainLin / ip3k
		}
		gainLin *= g
	}
	gainDB = 10 * math.Log10(gainLin)
	nfDB = 10 * math.Log10(fTotal)
	if invIP3 > 0 {
		iip3DBm = 10 * math.Log10(1/invIP3)
	} else {
		iip3DBm = math.Inf(1)
	}
	return
}
