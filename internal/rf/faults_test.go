package rf

import (
	"math"
	"testing"
)

func faultTestBoard() (*Loadboard, *Amplifier) {
	lb := DefaultLoadboard()
	lb.CaptureN = 64
	return lb, NewAmplifier(PolyFromSpecs(15, 3))
}

func captureRMS(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

func TestRunEnvelopeFaultedNilMatchesClean(t *testing.T) {
	lb, dut := faultTestBoard()
	clean, err := lb.RunEnvelope(dut, testStim)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := lb.RunEnvelopeFaulted(dut, testStim, nil)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != faulted[i] || clean[i] != zero[i] {
			t.Fatalf("sample %d: nil/zero fault sets must be bit-identical to the clean path", i)
		}
	}
}

func TestContactGainActsOnPath(t *testing.T) {
	lb, dut := faultTestBoard()
	clean, err := lb.RunEnvelope(dut, testStim)
	if err != nil {
		t.Fatal(err)
	}
	// Open contact: nothing reaches the digitizer.
	open, err := lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{
		ContactGain: func(float64) float64 { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rms := captureRMS(open); rms > 1e-12*captureRMS(clean) {
		t.Fatalf("open contactor capture RMS %g, want ~0", rms)
	}
	// A constant 6 dB series loss scales the linear capture by ~0.5.
	half, err := lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{
		ContactGain: func(float64) float64 { return 0.5 },
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := captureRMS(half) / captureRMS(clean)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("6 dB series loss scaled capture by %g, want ~0.5", ratio)
	}
}

func TestLOFaultsChangeCapture(t *testing.T) {
	lb, dut := faultTestBoard()
	clean, err := lb.RunEnvelope(dut, testStim)
	if err != nil {
		t.Fatal(err)
	}
	// LO amplitude scale: downmix product scales linearly with LO drive on
	// an ideal-ish path, so the capture RMS must move with it.
	drift, err := lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{LOAmpScale: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if r := captureRMS(drift) / captureRMS(clean); r > 0.95 || r < 0.3 {
		t.Fatalf("LO amplitude drift ratio %g, want noticeably below 1", r)
	}
	// Phase drift with zero LO offset shifts the downconverted phase.
	lb2, _ := faultTestBoard()
	lb2.LOOffsetHz = 0
	base, err := lb2.RunEnvelope(dut, testStim)
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := lb2.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{LOPhaseRad: math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range base {
		d := base[i] - shifted[i]
		diff += d * d
	}
	if math.Sqrt(diff/float64(len(base))) < 0.1*captureRMS(base) {
		t.Fatal("quadrature LO phase drift barely moved the capture")
	}
}

func TestStimAndCaptureTransformsApplied(t *testing.T) {
	lb, dut := faultTestBoard()
	clean, err := lb.RunEnvelope(dut, testStim)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling the stimulus through the hook at least changes the capture
	// (the DUT is nonlinear, so exact 2x is not expected).
	boosted, err := lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{
		StimTransform: func(s StimFunc) StimFunc {
			return func(t float64) float64 { return 2 * s(t) }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := captureRMS(boosted) / captureRMS(clean); r < 1.2 {
		t.Fatalf("boosted stimulus ratio %g, hook not reaching the DAC", r)
	}
	// The capture transform sees exactly the digitized vector.
	marked, err := lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{
		CaptureTransform: func(x []float64) []float64 {
			if len(x) != lb.CaptureN {
				t.Fatalf("capture transform got %d samples, want %d", len(x), lb.CaptureN)
			}
			out := append([]float64(nil), x...)
			for i := range out {
				out[i] = 42
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range marked {
		if v != 42 {
			t.Fatalf("sample %d: capture transform output not returned (%g)", i, v)
		}
	}
}

// TestCaptureTransformLengthContract: a fault hook that changes the
// capture length must panic loudly (the supervisor layers recover it into
// a fallback-binned device) instead of silently corrupting the feature
// extraction downstream.
func TestCaptureTransformLengthContract(t *testing.T) {
	lb, dut := faultTestBoard()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("length-changing capture transform must panic")
		}
	}()
	_, _ = lb.RunEnvelopeFaulted(dut, testStim, &InsertionFaults{
		CaptureTransform: func(x []float64) []float64 { return x[:len(x)/2] },
	})
}
