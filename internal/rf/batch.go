package rf

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// This file implements the batched acquisition kernel. Profiling the
// production screen shows ~90% of a device's wall time inside the envelope
// simulation, almost all of it in Mul/zoneAt — and most of THAT work is
// either identical for every device on the load board (stimulus evaluation,
// upconversion, LO synthesis and powers) or structurally zero (zone-algebra
// products where one factor's zone never received a term). BatchRunner
// exploits both:
//
//   - Prepare computes everything device-independent once per stimulus using
//     the reference implementations (EnvFromBaseband, EnvTone, the up-mixer's
//     ProcessEnvelope, powers), so the shared state carries the reference
//     bits by construction.
//   - RunDevice replays only the device-dependent tail — DUT nonlinearity,
//     contact/LO/capture faults, downconversion — through occupancy-tracked
//     kernels that skip structurally-zero zones and compute only the zones
//     the digitizer can see (BasebandReal reads zone 0 of the downmix, so
//     DUT-output powers are evaluated just far enough to feed it).
//
// Bit-identity contract: for every contributing (nonzero) term the kernels
// perform the same floating-point operations in the same order as the
// reference chain, so captured samples agree bit for bit except possibly in
// the sign of zeros (a skipped structurally-zero accumulation can flip
// -0.0 to +0.0). Every signature consumer takes magnitudes before comparing
// or regressing, so signatures, gate verdicts and predictions are
// Float64bits-identical to the serial path. Tests compare captures with ==
// (which treats -0 and +0 as equal) and signatures with Float64bits.
type BatchRunner struct {
	lb     *Loadboard
	fir    *dsp.FIR
	fs     float64
	os     int
	settle int
	n      int
	mz     int

	// InterleaveTile is the device-group width of one SoA pass of the
	// interleaved kernel (RunDevices): 0 means the cache-sized default,
	// 1 disables interleaving (every device takes the serial tail).
	InterleaveTile int

	// Shared per-stimulus state (Prepare).
	stim      StimFunc
	rfInSig   *EnvSignal
	rfIn      *envBuf
	inPowSigs []*EnvSignal // rfIn^1, rfIn^2, ... grown lazily
	inPows    []*envBuf
	d1        []complex128 // carrier-zone derivative of rfIn, grown lazily
	loClean   *loSet

	// Per-device scratch, reused across RunDevice calls.
	ampBuf   *envBuf
	chainBuf *envBuf
	nlBuf    *envBuf
	y2Buf    *envBuf
	y3Buf    *envBuf
	powBufs  []*envBuf // per-device DUT-input powers (chain stages past the first)
	powFor   *envBuf
	powMax   int
	prod     []complex128
	down0    []complex128
	base     []float64

	// Interleaved-kernel scratch (interleave.go).
	il ilState
}

// envBuf is an occupancy-tracked multi-zone envelope buffer. alloc mirrors
// the MaxZone the reference signal would have (it governs the index ranges
// of zone products); occ[k] reports whether zone k may hold nonzero samples.
// Zones with occ[k] == false are structurally zero in the reference run and
// are never read.
type envBuf struct {
	fs    float64
	n     int
	alloc int
	z     [][]complex128
	occ   []bool
}

func (b *envBuf) prep(fs float64, n, alloc int) *envBuf {
	b.fs, b.n, b.alloc = fs, n, alloc
	if cap(b.z) < alloc+1 {
		nz := make([][]complex128, alloc+1)
		copy(nz, b.z)
		b.z = nz
	}
	b.z = b.z[:alloc+1]
	if cap(b.occ) < alloc+1 {
		b.occ = make([]bool, alloc+1)
	}
	b.occ = b.occ[:alloc+1]
	for k := range b.occ {
		b.occ[k] = false
	}
	return b
}

// zone returns zone k ready for accumulation: zeroed on first touch per
// device, preserved across touches so linear writes and nonlinear adds
// compose the way the reference AddScaled sequence does.
func (b *envBuf) zone(k int) []complex128 {
	if b.z[k] == nil || len(b.z[k]) != b.n {
		b.z[k] = make([]complex128, b.n)
		b.occ[k] = true
		return b.z[k]
	}
	if !b.occ[k] {
		zk := b.z[k]
		for i := range zk {
			zk[i] = 0
		}
		b.occ[k] = true
	}
	return b.z[k]
}

// wrapSignal views an EnvSignal as an envBuf, scanning each zone once for
// occupancy (a zone of exact zeros — including -0 — is structurally inert:
// the reference would only ever accumulate signed zeros from it).
func wrapSignal(s *EnvSignal) *envBuf {
	b := &envBuf{fs: s.Fs, n: s.N, alloc: s.MaxZone, z: s.Z, occ: make([]bool, s.MaxZone+1)}
	for k, zk := range s.Z {
		for _, v := range zk {
			if v != 0 {
				b.occ[k] = true
				break
			}
		}
	}
	return b
}

func (b *envBuf) maxOcc() int {
	for k := b.alloc; k >= 0; k-- {
		if b.occ[k] {
			return k
		}
	}
	return -1
}

// loSet is one downconversion LO with its zone-algebra powers, as the
// reference down-mixer would compute them.
type loSet struct {
	sig    *EnvSignal
	pows   []*envBuf
	maxOcc [3]int
}

// NewBatchRunner validates the board and designs the shared channel filter.
// The runner owns per-device scratch, so it is not safe for concurrent use:
// give each worker its own runner. The Loadboard must not be mutated while
// the runner is in use.
func NewBatchRunner(lb *Loadboard) (*BatchRunner, error) {
	if err := lb.validate(); err != nil {
		return nil, err
	}
	fir, err := lb.finalFilter()
	if err != nil {
		return nil, err
	}
	fs := lb.envFs()
	os := int(math.Round(fs / lb.DigitizerFs))
	settle := lb.settleN()
	n := (lb.CaptureN+settle)*os + fir.GroupDelaySamples() + os
	mz := lb.maxZone()
	return &BatchRunner{
		lb: lb, fir: fir, fs: fs, os: os, settle: settle, n: n, mz: mz,
		ampBuf: &envBuf{}, chainBuf: &envBuf{}, nlBuf: &envBuf{},
		y2Buf: &envBuf{}, y3Buf: &envBuf{},
		prod: make([]complex128, n), down0: make([]complex128, n),
		base: make([]float64, n),
	}, nil
}

// Prepare computes the device-independent front half of the acquisition for
// one stimulus: baseband evaluation, upconversion, the clean downconversion
// LO and its powers. Call it once per stimulus before RunDevice; the
// stimulus function must be pure (every production stimulus is).
func (br *BatchRunner) Prepare(stim StimFunc) {
	br.stim = stim
	bb := make([]float64, br.n)
	for i := range bb {
		bb[i] = stim(float64(i) / br.fs)
	}
	x := EnvFromBaseband(bb, br.fs, br.lb.CarrierHz, br.mz)
	lo1 := EnvTone(br.fs, br.lb.CarrierHz, br.n, br.mz, 1, br.lb.CarrierAmp, 0, 0)
	br.rfInSig = br.lb.UpMixer.ProcessEnvelope(x, lo1, br.mz)
	br.rfIn = wrapSignal(br.rfInSig)
	br.inPowSigs = nil
	br.inPows = nil
	br.d1 = nil
	br.loClean = br.buildLoSet(br.lb.CarrierAmp, br.lb.PathPhase, br.mz)
	// The interleaved kernel's plans are compiled against the clean LO set
	// above; a new stimulus invalidates them.
	br.il.plans = nil
}

func (br *BatchRunner) buildLoSet(amp, phase float64, yAlloc int) *loSet {
	sig := EnvTone(br.fs, br.lb.CarrierHz, br.n, br.mz, 1, amp, br.lb.LOOffsetHz, phase)
	ps := powers(sig, 3, br.mz+yAlloc*3)
	ls := &loSet{sig: sig}
	for qi, p := range ps {
		buf := wrapSignal(p)
		ls.pows = append(ls.pows, buf)
		ls.maxOcc[qi] = buf.maxOcc()
	}
	return ls
}

// loCap is the zone cap the reference powers() would use for the LO powers
// given the DUT output's MaxZone.
func (br *BatchRunner) loCap(yAlloc int) int {
	return min(br.mz+yAlloc*3, 3*br.mz)
}

func (br *BatchRunner) loFor(flt *InsertionFaults, yAlloc int) *loSet {
	amp := flt.loAmp(br.lb.CarrierAmp)
	phase := flt.loPhase(br.lb.PathPhase)
	if amp == br.lb.CarrierAmp && phase == br.lb.PathPhase && br.loCap(yAlloc) == br.loCap(br.mz) {
		return br.loClean
	}
	return br.buildLoSet(amp, phase, yAlloc)
}

func (br *BatchRunner) sharedInPow(order int) *envBuf {
	if len(br.inPowSigs) == 0 {
		br.inPowSigs = append(br.inPowSigs, br.rfInSig)
		br.inPows = append(br.inPows, br.rfIn)
	}
	for len(br.inPowSigs) < order {
		next := Mul(br.inPowSigs[len(br.inPowSigs)-1], br.rfInSig, br.mz)
		br.inPowSigs = append(br.inPowSigs, next)
		br.inPows = append(br.inPows, wrapSignal(next))
	}
	return br.inPows[order-1]
}

func (br *BatchRunner) sharedD1() []complex128 {
	if br.d1 == nil {
		br.d1 = br.rfInSig.DifferentiateZone(1)
	}
	return br.d1
}

// inPow returns in^order for the per-device power chain used by chain
// stages whose input is itself device-dependent.
func (br *BatchRunner) inPow(in *envBuf, order int) *envBuf {
	if order == 1 {
		return in
	}
	if br.powFor != in {
		br.powFor = in
		br.powMax = 1
	}
	for br.powMax < order {
		idx := br.powMax - 1 // power (powMax+1) lives at powBufs[powMax-1]
		for len(br.powBufs) <= idx {
			br.powBufs = append(br.powBufs, &envBuf{})
		}
		prev := in
		if br.powMax > 1 {
			prev = br.powBufs[br.powMax-2]
		}
		out := br.powBufs[idx].prep(br.fs, br.n, br.mz)
		mulOccInto(out, prev, in, br.mz)
		br.powMax++
	}
	return br.powBufs[order-2]
}

// mulOccInto computes zones 0..computeMax of the reference Mul(a, b,
// out.alloc), skipping (i, j) pairs where either factor zone is
// structurally zero. Term order — i ascending, j = m-i bounds-checked
// against b's allocated MaxZone, accumulation (0.5*a_i)*b_j — matches Mul
// exactly, so occupied output zones carry the reference bits.
func mulOccInto(out *envBuf, a, b *envBuf, computeMax int) {
	if computeMax > out.alloc {
		computeMax = out.alloc
	}
	for m := 0; m <= computeMax; m++ {
		var zm []complex128
		for i := -a.alloc; i <= a.alloc; i++ {
			j := m - i
			if j < -b.alloc || j > b.alloc {
				continue
			}
			ai, bj := i, j
			if ai < 0 {
				ai = -ai
			}
			if bj < 0 {
				bj = -bj
			}
			if !a.occ[ai] || !b.occ[bj] {
				continue
			}
			if zm == nil {
				zm = out.zone(m)
			}
			za, zb := a.z[ai], b.z[bj]
			switch {
			case i >= 0 && j >= 0:
				for t := range zm {
					zm[t] += 0.5 * za[t] * zb[t]
				}
			case i < 0 && j >= 0:
				for t := range zm {
					zm[t] += 0.5 * cmplx.Conj(za[t]) * zb[t]
				}
			case j < 0 && i >= 0:
				for t := range zm {
					zm[t] += 0.5 * za[t] * cmplx.Conj(zb[t])
				}
			default:
				for t := range zm {
					zm[t] += 0.5 * cmplx.Conj(za[t]) * cmplx.Conj(zb[t])
				}
			}
		}
	}
}

// runAmp replays Amplifier.ProcessEnvelope into out. sharedIn marks in as
// the batch-shared upconverted signal, unlocking the precomputed powers and
// carrier derivative.
func (br *BatchRunner) runAmp(a *Amplifier, in *envBuf, out *envBuf, sharedIn bool) {
	out.prep(br.fs, br.n, br.mz)
	c1 := a.Poly.Gain()
	kmax := br.mz
	if in.alloc < kmax {
		kmax = in.alloc
	}
	for k := 0; k <= kmax; k++ {
		if !in.occ[k] {
			continue
		}
		scale := complex(c1*a.zoneScale(k), 0)
		zm := out.zone(k)
		src := in.z[k]
		for t := range zm {
			zm[t] = scale * src[t]
		}
	}
	if a.CarrierSlope != 0 && in.alloc >= 1 && br.mz >= 1 && in.occ[1] {
		var d []complex128
		if sharedIn {
			d = br.sharedD1()
		} else {
			d = diffZone(in.z[1], in.fs)
		}
		f := complex(c1*a.zoneScale(1), 0) * a.CarrierSlope / complex(0, 1)
		zm := out.zone(1)
		for t := range zm {
			zm[t] += f * d[t]
		}
	}
	if len(a.Poly.C) > 1 {
		maxK := 0
		for k := 1; k < len(a.Poly.C); k++ {
			if a.Poly.C[k] != 0 {
				maxK = k
			}
		}
		if maxK > 0 {
			nl := br.nlBuf.prep(br.fs, br.n, br.mz)
			for k := 1; k <= maxK; k++ {
				var pow *envBuf
				if sharedIn {
					pow = br.sharedInPow(k + 1)
				} else {
					pow = br.inPow(in, k+1)
				}
				if a.Poly.C[k] == 0 {
					continue
				}
				cc := complex(a.Poly.C[k], 0)
				zmax := br.mz
				if pow.alloc < zmax {
					zmax = pow.alloc
				}
				for z := 0; z <= zmax; z++ {
					if !pow.occ[z] {
						continue
					}
					zm := nl.zone(z)
					src := pow.z[z]
					for t := range zm {
						zm[t] += cc * src[t]
					}
				}
			}
			one := complex(1.0, 0)
			for z := 0; z <= br.mz; z++ {
				if !nl.occ[z] {
					continue
				}
				zm := out.zone(z)
				src := nl.z[z]
				for t := range zm {
					zm[t] += one * src[t]
				}
			}
		}
	}
}

// diffZone replicates EnvSignal.DifferentiateZone on one zone slice.
func diffZone(src []complex128, fs float64) []complex128 {
	n := len(src)
	out := make([]complex128, n)
	dt := 1 / fs
	for t := 0; t < n; t++ {
		var d complex128
		switch {
		case t == 0:
			d = (src[1] - src[0]) / complex(dt, 0)
		case t == n-1:
			d = (src[t] - src[t-1]) / complex(dt, 0)
		default:
			d = (src[t+1] - src[t-1]) / complex(2*dt, 0)
		}
		out[t] = d / complex(2*math.Pi, 0)
	}
	return out
}

// scaleTime replays EnvSignal.ScaleTime over the occupied zones, calling g
// once per sample in time order like the reference.
func scaleTime(y *envBuf, g func(t float64) float64) {
	var zones [][]complex128
	for k := 0; k <= y.alloc; k++ {
		if y.occ[k] {
			zones = append(zones, y.z[k])
		}
	}
	for t := 0; t < y.n; t++ {
		c := complex(g(float64(t)/y.fs), 0)
		for _, zk := range zones {
			zk[t] *= c
		}
	}
}

// RunDevice completes one device's capture against the prepared stimulus.
// Insertion faults are honored at the same points of the chain as
// RunEnvelopeFaulted; a stimulus-transform fault falls back to the full
// reference path (the shared upconversion no longer applies). Panics from
// fault hooks (e.g. the CaptureN contract) propagate exactly as on the
// serial path so the floor supervisor can recover them per device.
func (br *BatchRunner) RunDevice(dut EnvelopeDevice, flt *InsertionFaults) ([]float64, error) {
	if br.stim == nil {
		return nil, fmt.Errorf("rf: BatchRunner.RunDevice before Prepare")
	}
	if flt != nil && flt.StimTransform != nil {
		return br.lb.RunEnvelopeFaulted(dut, br.stim, flt)
	}
	// The per-device power chain caches by input buffer pointer; those
	// buffers are recycled between devices, so the cache must not survive.
	br.powFor = nil

	y, ySig := br.front(dut, nil)
	if flt != nil && flt.ContactGain != nil {
		scaleTime(y, flt.ContactGain)
	}
	return br.tail(y, ySig, flt), nil
}

// front replays the DUT half of the chain. For Amplifier/Chain devices the
// final envelope lands in dst when given (the interleaved kernel's per-slot
// buffer) and in the shared scratch otherwise; the intermediate buffers and
// therefore the FP sequence are identical either way. Generic DUTs go
// through their own ProcessEnvelope and return the wrapped signal for the
// mixer compatibility check.
func (br *BatchRunner) front(dut EnvelopeDevice, dst *envBuf) (*envBuf, *EnvSignal) {
	switch d := dut.(type) {
	case *Amplifier:
		out := dst
		if out == nil {
			out = br.ampBuf
		}
		br.runAmp(d, br.rfIn, out, true)
		return out, nil
	case *Chain:
		if len(d.Stages) == 0 {
			ySig := d.ProcessEnvelope(br.rfInSig.Clone(), br.mz)
			return wrapSignal(ySig), ySig
		}
		in := br.rfIn
		for si, st := range d.Stages {
			out := br.ampBuf
			if in == br.ampBuf {
				out = br.chainBuf
			}
			if si == len(d.Stages)-1 && dst != nil {
				out = dst
			}
			br.runAmp(st, in, out, si == 0)
			in = out
		}
		return in, nil
	default:
		ySig := dut.ProcessEnvelope(br.rfInSig.Clone(), br.mz)
		return wrapSignal(ySig), ySig
	}
}

// tail completes one device's capture from its post-contact envelope: LO
// resolution, downmix, filter, decimate, capture-transform fault. This is
// the per-device (serial) tail; the interleaved kernel replaces it for
// occupancy groups of two or more devices.
func (br *BatchRunner) tail(y *envBuf, ySig *EnvSignal, flt *InsertionFaults) []float64 {
	lo := br.loFor(flt, y.alloc)
	if ySig != nil {
		if err := ySig.compatible(lo.sig); err != nil {
			panic(fmt.Errorf("rf: mixer inputs: %w", err))
		}
	}
	br.downmixZone0(y, lo)

	for t := range br.base {
		br.base[t] = real(br.down0[t]) / 2
	}
	filtered := br.fir.FilterCompensated(br.base)
	capture := strideDecimate(filtered, br.os, br.settle*br.os, br.lb.CaptureN)
	return br.applyCaptureTransform(capture, flt)
}

// applyCaptureTransform applies the capture-transform fault hook under the
// CaptureN length contract.
func (br *BatchRunner) applyCaptureTransform(capture []float64, flt *InsertionFaults) []float64 {
	if flt != nil && flt.CaptureTransform != nil {
		capture = flt.CaptureTransform(capture)
		if len(capture) != br.lb.CaptureN {
			panic(fmt.Sprintf("rf: capture transform changed length %d -> %d (CaptureN contract)",
				br.lb.CaptureN, len(capture)))
		}
	}
	return capture
}

// downmixZone0 accumulates zone 0 of the reference down-mixer output into
// br.down0. Only the zones that can reach zone 0 through an occupied LO
// partner are evaluated: the DUT-output square is taken just far enough to
// seed the cube, the cube just far enough to pair with the occupied LO
// zones, and each (rf^p, lo^q) product contributes zone 0 alone.
func (br *BatchRunner) downmixZone0(y *envBuf, lo *loSet) {
	m := br.lb.DownMixer
	capY := min(br.mz+lo.sig.MaxZone*3, 3*y.alloc)

	need2, need3 := -1, -1
	for q := 0; q < 3; q++ {
		if m.K[2][q] != 0 && lo.maxOcc[q] > need3 {
			need3 = lo.maxOcc[q]
		}
		if m.K[1][q] != 0 && lo.maxOcc[q] > need2 {
			need2 = lo.maxOcc[q]
		}
	}
	if need3 > capY {
		need3 = capY
	}
	if need3 >= 0 {
		if v := need3 + y.alloc; v > need2 {
			need2 = v
		}
	}
	if need2 > capY {
		need2 = capY
	}

	var y2, y3 *envBuf
	if need2 >= 0 {
		y2 = br.y2Buf.prep(br.fs, br.n, capY)
		mulOccInto(y2, y, y, need2)
	}
	if need3 >= 0 {
		y3 = br.y3Buf.prep(br.fs, br.n, capY)
		mulOccInto(y3, y2, y, need3)
	}

	down0 := br.down0
	for t := range down0 {
		down0[t] = 0
	}
	yPows := [3]*envBuf{y, y2, y3}
	for p := 1; p <= 3; p++ {
		for q := 1; q <= 3; q++ {
			k := m.K[p-1][q-1]
			if k == 0 {
				continue
			}
			yp, lq := yPows[p-1], lo.pows[q-1]
			if yp == nil {
				continue // no occupied LO partner existed when sizing the powers
			}
			prod := br.prod
			touched := false
			for i := -yp.alloc; i <= yp.alloc; i++ {
				j := -i
				if j < -lq.alloc || j > lq.alloc {
					continue
				}
				ai, bj := i, j
				if ai < 0 {
					ai = -ai
				}
				if bj < 0 {
					bj = -bj
				}
				if !yp.occ[ai] || !lq.occ[bj] {
					continue
				}
				if !touched {
					for t := range prod {
						prod[t] = 0
					}
					touched = true
				}
				za, zb := yp.z[ai], lq.z[bj]
				switch {
				case i >= 0 && j >= 0:
					for t := range prod {
						prod[t] += 0.5 * za[t] * zb[t]
					}
				case i < 0 && j >= 0:
					for t := range prod {
						prod[t] += 0.5 * cmplx.Conj(za[t]) * zb[t]
					}
				case j < 0 && i >= 0:
					for t := range prod {
						prod[t] += 0.5 * za[t] * cmplx.Conj(zb[t])
					}
				default:
					for t := range prod {
						prod[t] += 0.5 * cmplx.Conj(za[t]) * cmplx.Conj(zb[t])
					}
				}
			}
			if touched {
				cc := complex(k, 0)
				for t := range down0 {
					down0[t] += cc * prod[t]
				}
			}
		}
	}
	if m.RFFeedthrough != 0 && y.occ[0] {
		cc := complex(m.RFFeedthrough, 0)
		src := y.z[0]
		for t := range down0 {
			down0[t] += cc * src[t]
		}
	}
	if m.LOFeedthrough != 0 && lo.pows[0].occ[0] {
		cc := complex(m.LOFeedthrough, 0)
		src := lo.pows[0].z[0]
		for t := range down0 {
			down0[t] += cc * src[t]
		}
	}
}
