package rf

import "fmt"

// This file implements the device-interleaved (structure-of-arrays) form of
// the batched envelope tail. RunDevice replays one device's nonlinearity /
// downmix tail through per-device []complex128 zone buffers; profiling shows
// the batched screen then spends over half of every device's wall time
// re-walking the same zone-pair structure — occupancy checks, (i, j) index
// arithmetic, conjugate-case dispatch — that every other clean device in the
// batch walks identically. RunDevices amortizes that structure across the
// batch:
//
//   - Devices are grouped by occupancy signature (planKey): the set of
//     structurally nonzero zones of the DUT output, which together with the
//     shared clean LO fully determines every zone-pair term of the downmix.
//     Each group compiles one groupPlan — the exact term list downmixZone0
//     would discover per device — and replays it over the whole group.
//   - Within a group, the K devices' zones are packed into deinterleaved
//     re/im float64 planes laid out [zone][sample*K + device]. Every plan
//     term then becomes one contiguous multiply-accumulate pass with the
//     device index innermost, so the per-term bookkeeping is paid once per
//     tile instead of once per device.
//   - Only the real part of the downmix zone 0 feeds the digitizer
//     (base[t] = real(down0[t])/2), and the real accumulators of the final
//     pair-product stage never read the imaginary accumulators, so the pair
//     stage computes real planes only — exactly half the reference flops
//     with an identical real dataflow.
//   - The channel FIR + decimation only ever reads CaptureN of the filtered
//     samples (one per os-stride past the settle region); the tile filter
//     evaluates exactly those taps-by-CaptureN dot products and skips the
//     ~85% of filter outputs the decimator would discard. The tap order and
//     the j >= 0 boundary handling match dsp.FIR.Filter term for term.
//
// Bit-identity: interleaving reorders nothing within a device — every
// surviving term is applied to a device's accumulator in exactly the serial
// order, with the same (0.5*a)*b association — so captures agree with the
// serial path bit for bit under the same signed-zero tolerance batch.go
// documents (the SoA kernels compute 0.5*re and 0.5*im directly where the
// serial complex multiply computes 0.5*re - 0*im, which differs only in the
// sign of exact zeros for finite data; every consumer takes magnitudes or
// compares with ==). Groups of size one, devices with LO faults or custom
// occupancy beyond 63 zones, and any tile that panics mid-flight fall back
// to the serial tail per device.
//
// RunDevices is not safe for concurrent use (it shares the runner's
// scratch); give each worker its own runner, exactly like RunDevice.

// DeviceRun is one slot of a RunDevices call. The runner writes the capture
// into Capture (reusing its backing array when the capacity allows), or
// records a per-device error / recovered panic. Exactly one of Capture, Err,
// Panic is meaningful per run: check Panic, then Err, then use Capture.
type DeviceRun struct {
	DUT     EnvelopeDevice
	Flt     *InsertionFaults
	Capture []float64
	Err     error
	Panic   any
}

// Tail-dispatch modes for one device after its front half ran.
const (
	tailDone    = iota // capture, error or panic already recorded
	tailSerial         // per-device serial tail (faulted LO, exotic occupancy)
	tailGrouped        // shares a groupPlan with its occupancy group
)

// planKey is the occupancy signature of a DUT output: allocated MaxZone plus
// a bitmask of structurally nonzero zones. Together with the shared clean LO
// it determines every term of the downmix, so devices with equal keys can
// share one compiled plan.
type planKey struct {
	alloc int
	occ   uint64
}

// zoneTerm is one surviving (i, j) zone-pair product: multiply zone az of
// the left factor (conjugated when conjA) by zone bz of the right factor
// (conjugated when conjB) and accumulate (0.5*a)*b.
type zoneTerm struct {
	az, bz       int
	conjA, conjB bool
}

// groupPlan is the compiled downmix structure for one occupancy signature:
// exactly the terms downmixZone0 + mulOccInto would execute per device, in
// the same order.
type groupPlan struct {
	yZones       []int // occupied DUT-output zones, ascending (the pack list)
	capY         int
	need2, need3 int
	y2terms      [][]zoneTerm // y^2 terms per output zone, 0..need2
	y3terms      [][]zoneTerm // y^3 terms per output zone, 0..need3
	y2occ, y3occ []bool
	pair         [3][3][]zoneTerm // zone-0 terms of each (y^p, lo^q) product
	rfFeed       bool
	loFeed       bool
}

// planeSet owns the pooled deinterleaved planes of one envelope power:
// re/im float64 slices per zone, length n*K, laid out [sample*K + device].
type planeSet struct {
	re, im [][]float64
}

// zone returns the (re, im) planes for zone z sized to size samples,
// growing the pool on first use and reusing it afterwards. Planes are not
// zeroed here: pack overwrites every element, accumulation stages zero
// explicitly before their first term.
func (p *planeSet) zone(z, size int) ([]float64, []float64) {
	for len(p.re) <= z {
		p.re = append(p.re, nil)
		p.im = append(p.im, nil)
	}
	if cap(p.re[z]) < size {
		p.re[z] = make([]float64, size)
		p.im[z] = make([]float64, size)
	}
	return p.re[z][:size], p.im[z][:size]
}

// devTail is one device's state between its front half and its tail.
type devTail struct {
	mode int
	key  planKey
	y    *envBuf
	ySig *EnvSignal
}

// ilGroup is one occupancy group: the devices (by slot index) sharing a plan.
type ilGroup struct {
	key  planKey
	devs []int
}

// ilState is the interleaved kernel's pooled scratch, owned by a runner.
type ilState struct {
	st     []devTail
	devY   []*envBuf
	groups []ilGroup
	plans  map[planKey]*groupPlan

	y, y2, y3   planeSet
	prod, down0 []float64
	row         []float64
	srcs        [][]complex128 // pack-stage per-device zone pointers
}

// maxPlans bounds the per-runner plan cache; fault models that churn
// occupancy signatures past it build plans per batch instead of leaking.
const maxPlans = 64

// defaultInterleaveTile is the device-group width of one SoA pass. 16
// devices keep a full working set (y, y^2, y^3 planes plus accumulators)
// inside L2 on commodity cores; larger batches are tiled so K=64 runs as
// four cache-friendly passes instead of one thrashing one.
const defaultInterleaveTile = 16

func (br *BatchRunner) tileSize() int {
	switch {
	case br.InterleaveTile == 0:
		return defaultInterleaveTile
	case br.InterleaveTile < 1:
		return 1
	}
	return br.InterleaveTile
}

// RunDevices completes every device's capture against the prepared stimulus,
// equivalent to calling RunDevice per slot but with the downmix tail
// device-interleaved across each occupancy group. Per-slot outcomes land in
// the DeviceRun: panics from fault hooks are recovered into Panic (the
// caller re-raises under its own supervision), errors into Err. A slot never
// poisons its neighbors.
func (br *BatchRunner) RunDevices(devs []DeviceRun) {
	for i := range devs {
		devs[i].Err = nil
		devs[i].Panic = nil
	}
	if br.stim == nil {
		for i := range devs {
			devs[i].Err = fmt.Errorf("rf: BatchRunner.RunDevices before Prepare")
		}
		return
	}
	il := &br.il
	if cap(il.st) < len(devs) {
		il.st = make([]devTail, len(devs))
	}
	il.st = il.st[:len(devs)]
	for len(il.devY) < len(devs) {
		il.devY = append(il.devY, &envBuf{})
	}

	// Front half: per device, under per-device recovery. Identical FP order
	// to RunDevice (the shared stimulus state makes fronts independent).
	for i := range devs {
		br.frontDevice(i, &devs[i])
	}

	// Group the clean-LO devices by occupancy signature.
	ng := 0
	for i := range il.st {
		if il.st[i].mode != tailGrouped {
			continue
		}
		g := (*ilGroup)(nil)
		for gi := 0; gi < ng; gi++ {
			if il.groups[gi].key == il.st[i].key {
				g = &il.groups[gi]
				break
			}
		}
		if g == nil {
			if ng == len(il.groups) {
				il.groups = append(il.groups, ilGroup{})
			}
			g = &il.groups[ng]
			ng++
			g.key = il.st[i].key
			g.devs = g.devs[:0]
		}
		g.devs = append(g.devs, i)
	}

	// Tails: each group runs in cache-sized tiles through its shared plan;
	// singleton (sub)groups and recovered tile panics take the serial tail.
	tile := br.tileSize()
	for gi := 0; gi < ng; gi++ {
		g := &il.groups[gi]
		var plan *groupPlan
		for s := 0; s < len(g.devs); s += tile {
			e := min(s+tile, len(g.devs))
			sub := g.devs[s:e]
			if len(sub) == 1 {
				br.serialTailDevice(sub[0], devs)
				continue
			}
			if plan == nil {
				plan = br.planFor(g.key)
			}
			if !br.tryRunTile(devs, sub, plan) {
				for _, di := range sub {
					br.serialTailDevice(di, devs)
				}
				continue
			}
			for _, di := range sub {
				br.finishGrouped(di, devs)
			}
		}
	}
	for i := range il.st {
		if il.st[i].mode == tailSerial {
			br.serialTailDevice(i, devs)
		}
	}
}

// frontDevice runs one device's front half (DUT chain + contact fault) into
// its slot buffer and decides its tail mode. Any panic is recovered into the
// slot.
func (br *BatchRunner) frontDevice(slot int, dr *DeviceRun) {
	st := &br.il.st[slot]
	st.mode = tailDone
	st.y, st.ySig = nil, nil
	defer func() {
		if r := recover(); r != nil {
			dr.Panic = r
			st.mode = tailDone
		}
	}()
	if dr.Flt != nil && dr.Flt.StimTransform != nil {
		// The shared upconversion no longer applies; full reference path.
		dr.Capture, dr.Err = br.lb.RunEnvelopeFaulted(dr.DUT, br.stim, dr.Flt)
		return
	}
	br.powFor = nil
	y, ySig := br.front(dr.DUT, br.il.devY[slot])
	if dr.Flt != nil && dr.Flt.ContactGain != nil {
		scaleTime(y, dr.Flt.ContactGain)
	}
	st.y, st.ySig = y, ySig
	if !br.cleanLO(dr.Flt, y.alloc) || y.alloc > 63 {
		st.mode = tailSerial
		return
	}
	if ySig != nil {
		// Same check, same panic as the serial tail would raise after loFor.
		if err := ySig.compatible(br.loClean.sig); err != nil {
			panic(fmt.Errorf("rf: mixer inputs: %w", err))
		}
	}
	st.key = occKey(y)
	st.mode = tailGrouped
}

// cleanLO reports whether loFor would return the shared clean LO set.
func (br *BatchRunner) cleanLO(flt *InsertionFaults, yAlloc int) bool {
	return flt.loAmp(br.lb.CarrierAmp) == br.lb.CarrierAmp &&
		flt.loPhase(br.lb.PathPhase) == br.lb.PathPhase &&
		br.loCap(yAlloc) == br.loCap(br.mz)
}

// serialTailDevice completes one device through the per-device tail (the
// RunDevice code path), recovering panics into the slot.
func (br *BatchRunner) serialTailDevice(di int, devs []DeviceRun) {
	dr := &devs[di]
	st := &br.il.st[di]
	defer func() {
		if r := recover(); r != nil {
			dr.Panic = r
		}
	}()
	dr.Capture = br.tail(st.y, st.ySig, dr.Flt)
}

// finishGrouped applies the capture-transform fault (the only per-device
// stage left after a tile) under per-device recovery.
func (br *BatchRunner) finishGrouped(di int, devs []DeviceRun) {
	dr := &devs[di]
	defer func() {
		if r := recover(); r != nil {
			dr.Panic = r
		}
	}()
	dr.Capture = br.applyCaptureTransform(dr.Capture, dr.Flt)
}

// occKey computes a device's occupancy signature. Callers guard alloc <= 63.
func occKey(y *envBuf) planKey {
	k := planKey{alloc: y.alloc}
	for z := 0; z <= y.alloc; z++ {
		if y.occ[z] {
			k.occ |= 1 << uint(z)
		}
	}
	return k
}

// planFor returns the compiled plan for one occupancy signature, caching up
// to maxPlans per prepared stimulus.
func (br *BatchRunner) planFor(key planKey) *groupPlan {
	if p := br.il.plans[key]; p != nil {
		return p
	}
	p := br.buildPlan(key)
	if br.il.plans == nil {
		br.il.plans = make(map[planKey]*groupPlan)
	}
	if len(br.il.plans) < maxPlans {
		br.il.plans[key] = p
	}
	return p
}

// buildPlan mirrors downmixZone0's sizing and term discovery exactly — same
// need2/need3 derivation, same i-ascending term order — against the shared
// clean LO.
func (br *BatchRunner) buildPlan(key planKey) *groupPlan {
	m := br.lb.DownMixer
	lo := br.loClean
	p := &groupPlan{}
	yAlloc := key.alloc
	yOcc := make([]bool, yAlloc+1)
	for z := 0; z <= yAlloc; z++ {
		if key.occ&(1<<uint(z)) != 0 {
			yOcc[z] = true
			p.yZones = append(p.yZones, z)
		}
	}
	capY := min(br.mz+lo.sig.MaxZone*3, 3*yAlloc)
	need2, need3 := -1, -1
	for q := 0; q < 3; q++ {
		if m.K[2][q] != 0 && lo.maxOcc[q] > need3 {
			need3 = lo.maxOcc[q]
		}
		if m.K[1][q] != 0 && lo.maxOcc[q] > need2 {
			need2 = lo.maxOcc[q]
		}
	}
	if need3 > capY {
		need3 = capY
	}
	if need3 >= 0 {
		if v := need3 + yAlloc; v > need2 {
			need2 = v
		}
	}
	if need2 > capY {
		need2 = capY
	}
	p.capY, p.need2, p.need3 = capY, need2, need3

	if need2 >= 0 {
		p.y2terms, p.y2occ = mulPlanTerms(yOcc, yAlloc, yOcc, yAlloc, need2, capY)
	}
	if need3 >= 0 {
		p.y3terms, p.y3occ = mulPlanTerms(p.y2occ, capY, yOcc, yAlloc, need3, capY)
	}

	occs := [3][]bool{yOcc, p.y2occ, p.y3occ}
	allocs := [3]int{yAlloc, capY, capY}
	avail := [3]bool{true, need2 >= 0, need3 >= 0}
	for pi := 1; pi <= 3; pi++ {
		for q := 1; q <= 3; q++ {
			if m.K[pi-1][q-1] == 0 || !avail[pi-1] {
				continue
			}
			ypOcc, ypAlloc := occs[pi-1], allocs[pi-1]
			lq := lo.pows[q-1]
			var terms []zoneTerm
			for i := -ypAlloc; i <= ypAlloc; i++ {
				j := -i
				if j < -lq.alloc || j > lq.alloc {
					continue
				}
				ai, bj := i, j
				if ai < 0 {
					ai = -ai
				}
				if bj < 0 {
					bj = -bj
				}
				if !ypOcc[ai] || !lq.occ[bj] {
					continue
				}
				terms = append(terms, zoneTerm{az: ai, bz: bj, conjA: i < 0, conjB: j < 0})
			}
			p.pair[pi-1][q-1] = terms
		}
	}
	p.rfFeed = m.RFFeedthrough != 0 && yOcc[0]
	p.loFeed = m.LOFeedthrough != 0 && lo.pows[0].occ[0]
	return p
}

// mulPlanTerms compiles the surviving terms of mulOccInto(out, a, b,
// computeMax) for fixed occupancies: per output zone m, i ascending over
// a's allocated zones, j = m-i bounds-checked against b's — the serial term
// order exactly.
func mulPlanTerms(aOcc []bool, aAlloc int, bOcc []bool, bAlloc, computeMax, outAlloc int) ([][]zoneTerm, []bool) {
	if computeMax > outAlloc {
		computeMax = outAlloc
	}
	terms := make([][]zoneTerm, computeMax+1)
	occ := make([]bool, outAlloc+1)
	for m := 0; m <= computeMax; m++ {
		for i := -aAlloc; i <= aAlloc; i++ {
			j := m - i
			if j < -bAlloc || j > bAlloc {
				continue
			}
			ai, bj := i, j
			if ai < 0 {
				ai = -ai
			}
			if bj < 0 {
				bj = -bj
			}
			if !aOcc[ai] || !bOcc[bj] {
				continue
			}
			terms[m] = append(terms[m], zoneTerm{az: ai, bz: bj, conjA: i < 0, conjB: j < 0})
		}
		occ[m] = len(terms[m]) > 0
	}
	return terms, occ
}

// tryRunTile runs one tile, reporting false (for a per-device serial redo)
// if the tile math panicked. The capture transform has not run yet at any
// panic point here, so a redo never double-applies a fault.
func (br *BatchRunner) tryRunTile(devs []DeviceRun, idxs []int, plan *groupPlan) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	br.runTile(devs, idxs, plan)
	return true
}

// runTile executes the shared plan over one device tile: pack, y^2, y^3,
// real-only pair products + feedthrough, decimated FIR, scatter.
func (br *BatchRunner) runTile(devs []DeviceRun, idxs []int, plan *groupPlan) {
	il := &br.il
	k := len(idxs)
	sz := br.n * k

	// Pack with the device index innermost so every plane write is
	// contiguous; the per-device sources advance as k parallel streams.
	if cap(il.srcs) < k {
		il.srcs = make([][]complex128, k)
	}
	srcs := il.srcs[:k]
	for _, z := range plan.yZones {
		re, im := il.y.zone(z, sz)
		for d, di := range idxs {
			srcs[d] = il.st[di].y.z[z]
		}
		for t := 0; t < br.n; t++ {
			rowRe := re[t*k : t*k+k]
			rowIm := im[t*k : t*k+k]
			for d := range srcs {
				v := srcs[d][t]
				rowRe[d] = real(v)
				rowIm[d] = imag(v)
			}
		}
	}

	if plan.need2 >= 0 {
		for m, terms := range plan.y2terms {
			if len(terms) == 0 {
				continue
			}
			oRe, oIm := il.y2.zone(m, sz)
			zeroF(oRe)
			zeroF(oIm)
			for _, tm := range terms {
				aRe, aIm := il.y.zone(tm.az, sz)
				bRe, bIm := il.y.zone(tm.bz, sz)
				macPlanes(oRe, oIm, aRe, aIm, bRe, bIm, tm.conjA, tm.conjB)
			}
		}
	}
	if plan.need3 >= 0 {
		for m, terms := range plan.y3terms {
			if len(terms) == 0 {
				continue
			}
			oRe, oIm := il.y3.zone(m, sz)
			zeroF(oRe)
			zeroF(oIm)
			for _, tm := range terms {
				aRe, aIm := il.y2.zone(tm.az, sz)
				bRe, bIm := il.y.zone(tm.bz, sz)
				macPlanes(oRe, oIm, aRe, aIm, bRe, bIm, tm.conjA, tm.conjB)
			}
		}
	}

	if cap(il.down0) < sz {
		il.down0 = make([]float64, sz)
	}
	d0 := il.down0[:sz]
	zeroF(d0)
	if cap(il.prod) < sz {
		il.prod = make([]float64, sz)
	}
	prod := il.prod[:sz]
	m := br.lb.DownMixer
	lo := br.loClean
	sets := [3]*planeSet{&il.y, &il.y2, &il.y3}
	for pi := 1; pi <= 3; pi++ {
		for q := 1; q <= 3; q++ {
			terms := plan.pair[pi-1][q-1]
			if len(terms) == 0 {
				continue
			}
			zeroF(prod)
			for _, tm := range terms {
				aRe, aIm := sets[pi-1].zone(tm.az, sz)
				macPairRealLO(prod, aRe, aIm, lo.pows[q-1].z[tm.bz], k, tm.conjA, tm.conjB)
			}
			addScaled(d0, prod, m.K[pi-1][q-1])
		}
	}
	if plan.rfFeed {
		re, _ := il.y.zone(0, sz)
		addScaled(d0, re, m.RFFeedthrough)
	}
	if plan.loFeed {
		addScaledLO(d0, lo.pows[0].z[0], m.LOFeedthrough, k)
	}
	for x := range d0 {
		d0[x] = d0[x] / 2
	}

	capN := br.lb.CaptureN
	for _, di := range idxs {
		dr := &devs[di]
		if cap(dr.Capture) < capN {
			dr.Capture = make([]float64, capN)
		}
		dr.Capture = dr.Capture[:capN]
	}
	br.firDecimateTile(d0, k, idxs, devs)
}

// macPlanes accumulates one zone-pair term, (0.5*a)*b with optional
// conjugations, over deinterleaved planes. The per-element operations and
// their order match the serial complex accumulation for every nonzero value;
// the serial multiply's 0.5*re - 0*im real path can differ from 0.5*re only
// in the sign of an exact zero (finite data), which the bit-identity
// contract already tolerates.
func macPlanes(oRe, oIm, aRe, aIm, bRe, bIm []float64, conjA, conjB bool) {
	n := len(oRe)
	oIm = oIm[:n]
	aRe = aRe[:n]
	aIm = aIm[:n]
	bRe = bRe[:n]
	bIm = bIm[:n]
	ah := 0.5
	if conjA {
		ah = -0.5
	}
	if conjB {
		for x := 0; x < n; x++ {
			ur, ui := 0.5*aRe[x], ah*aIm[x]
			br, bi := bRe[x], -bIm[x]
			oRe[x] += ur*br - ui*bi
			oIm[x] += ur*bi + ui*br
		}
		return
	}
	for x := 0; x < n; x++ {
		ur, ui := 0.5*aRe[x], ah*aIm[x]
		br, bi := bRe[x], bIm[x]
		oRe[x] += ur*br - ui*bi
		oIm[x] += ur*bi + ui*br
	}
}

// macPairRealLO accumulates the real part of one (device-plane x shared-LO)
// zone-pair term. Only real(down0) ever feeds the digitizer and the real
// accumulator chain never reads the imaginary one, so skipping the imaginary
// half is exactly bit-identical, not just magnitude-identical. The LO sample
// is loaded once per time step and reused across the K devices.
func macPairRealLO(oRe, aRe, aIm []float64, b []complex128, k int, conjA, conjB bool) {
	ah := 0.5
	if conjA {
		ah = -0.5
	}
	bs := 1.0
	if conjB {
		bs = -1
	}
	for t, bv := range b {
		br := real(bv)
		bi := bs * imag(bv)
		o := oRe[t*k : t*k+k]
		ar := aRe[t*k : t*k+k]
		ai := aIm[t*k : t*k+k]
		for d := range o {
			ur, ui := 0.5*ar[d], ah*ai[d]
			o[d] += ur*br - ui*bi
		}
	}
}

// addScaled accumulates o += c*src elementwise, the real path of the serial
// down0 += complex(c, 0)*prod accumulation.
func addScaled(o, src []float64, c float64) {
	o = o[:len(src)]
	for x, v := range src {
		o[x] += c * v
	}
}

// addScaledLO adds the feedthrough of a shared LO zone to every device's
// real accumulator: the scaled sample is computed once per time step.
func addScaledLO(o []float64, src []complex128, c float64, k int) {
	for t, v := range src {
		w := c * real(v)
		ot := o[t*k : t*k+k]
		for d := range ot {
			ot[d] += w
		}
	}
}

func zeroF(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// firDecimateTile evaluates the channel filter only at the CaptureN
// decimated output positions, directly on the packed base plane, and
// scatters each row into its device's capture. Index math mirrors
// FilterCompensated + strideDecimate: output m reads padded index
// i = delay + (settle+m)*os, which by the runner's n formula always
// satisfies i <= n-2*os, so the zero-pad region is never touched; the tap
// loop breaks at j < 0 exactly like dsp.FIR.Filter.
func (br *BatchRunner) firDecimateTile(basePlane []float64, k int, idxs []int, devs []DeviceRun) {
	taps := br.fir.Taps
	delay := (len(taps) - 1) / 2
	if cap(br.il.row) < k {
		br.il.row = make([]float64, k)
	}
	row := br.il.row[:k]
	for m := 0; m < br.lb.CaptureN; m++ {
		i := delay + (br.settle+m)*br.os
		for d := range row {
			row[d] = 0
		}
		for kk := 0; kk < len(taps); kk++ {
			j := i - kk
			if j < 0 {
				break
			}
			c := taps[kk]
			src := basePlane[j*k : j*k+k]
			for d := range row {
				row[d] += c * src[d]
			}
		}
		for d, di := range idxs {
			devs[di].Capture[m] = row[d]
		}
	}
}
