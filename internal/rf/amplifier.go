package rf

import (
	"fmt"
	"math"
)

// Poly is a memoryless polynomial nonlinearity y = sum_{k>=1} C[k-1]*x^k.
// There is no constant term: a DUT with no input produces no output.
type Poly struct {
	C []float64
}

// Eval evaluates the polynomial at x (Horner form).
func (p Poly) Eval(x float64) float64 {
	y := 0.0
	for k := len(p.C) - 1; k >= 0; k-- {
		y = (y + p.C[k]) * x
	}
	return y
}

// EvalSlice maps Eval over a waveform.
func (p Poly) EvalSlice(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = p.Eval(v)
	}
	return out
}

// Gain returns the small-signal (first-order) gain.
func (p Poly) Gain() float64 {
	if len(p.C) == 0 {
		return 0
	}
	return p.C[0]
}

// IIP3DBm returns the polynomial's input third-order intercept in dBm re
// 50 ohms via AIP3^2 = (4/3)|c1/c3| (+inf if the cubic term is zero).
func (p Poly) IIP3DBm() float64 {
	if len(p.C) < 3 || p.C[2] == 0 || p.C[0] == 0 {
		return math.Inf(1)
	}
	a2 := 4.0 / 3.0 * math.Abs(p.C[0]/p.C[2])
	return voltsPeakToDBm(math.Sqrt(a2))
}

// P1dBDBm returns the input 1 dB compression point of the cubic polynomial
// (the classic A1dB = AIP3 - 9.64 dB relation).
func (p Poly) P1dBDBm() float64 {
	ip3 := p.IIP3DBm()
	if math.IsInf(ip3, 1) {
		return math.Inf(1)
	}
	return ip3 - 9.6
}

// PolyFromSpecs builds a cubic polynomial with the given voltage gain (dB)
// and input IIP3 (dBm re 50 ohms); the cubic coefficient is compressive.
// This is the inverse of the measurements above and is used for behavioral
// DUTs when no netlist is available (the paper's hardware experiment).
func PolyFromSpecs(gainDB, iip3DBm float64) Poly {
	c1 := math.Pow(10, gainDB/20)
	a := dbmToVoltsPeak(iip3DBm)
	c3 := -4.0 / 3.0 * c1 / (a * a)
	return Poly{C: []float64{c1, 0, c3}}
}

// Amplifier is the behavioral DUT used on the signature path. The linear
// path applies a per-zone response (the LNA's tank passes the carrier zone
// and rejects baseband and harmonic zones) with an optional linear gain
// slope across the carrier zone; the nonlinear path applies Poly through
// the zone algebra, which regenerates harmonic-zone and baseband products.
type Amplifier struct {
	Poly Poly
	// CarrierSlope is the normalized complex gain slope dH/df / H0 (1/Hz)
	// across the carrier zone; 0 means flat response.
	CarrierSlope complex128
	// ZoneGain scales the linear response of each zone relative to the
	// carrier zone; missing zones default to OutOfBandRejection.
	ZoneGain map[int]float64
	// OutOfBandRejection is the default linear gain multiplier for
	// non-carrier zones (e.g. 0.05 for a tuned LNA).
	OutOfBandRejection float64
	// NFDB is the amplifier noise figure (dB); used by noise-aware paths.
	NFDB float64
}

// NewAmplifier builds an amplifier with sensible defaults.
func NewAmplifier(p Poly) *Amplifier {
	return &Amplifier{Poly: p, OutOfBandRejection: 0.05, ZoneGain: map[int]float64{1: 1}}
}

// zoneScale returns the linear-path multiplier for zone k.
func (a *Amplifier) zoneScale(k int) float64 {
	if g, ok := a.ZoneGain[k]; ok {
		return g
	}
	return a.OutOfBandRejection
}

// ProcessEnvelope drives the amplifier with a multi-zone envelope signal,
// producing zones up to maxZone.
func (a *Amplifier) ProcessEnvelope(in *EnvSignal, maxZone int) *EnvSignal {
	// Split the polynomial: the linear term goes through the shaped path,
	// higher orders through the memoryless path.
	out := NewEnvSignal(in.Fs, in.Fref, in.N, maxZone)
	c1 := a.Poly.Gain()
	for k := 0; k <= maxZone && k <= in.MaxZone; k++ {
		scale := complex(c1*a.zoneScale(k), 0)
		for t := 0; t < in.N; t++ {
			out.Z[k][t] = scale * in.Z[k][t]
		}
	}
	// Gain slope on the carrier zone: y += H0*slope * x'/(2*pi*j).
	if a.CarrierSlope != 0 && in.MaxZone >= 1 && maxZone >= 1 {
		d := in.DifferentiateZone(1)
		f := complex(c1*a.zoneScale(1), 0) * a.CarrierSlope / complex(0, 1)
		for t := 0; t < in.N; t++ {
			out.Z[1][t] += f * d[t]
		}
	}
	// Higher-order terms.
	if len(a.Poly.C) > 1 {
		rest := Poly{C: append([]float64{0}, a.Poly.C[1:]...)}
		nl := in.ApplyPoly(rest, maxZone)
		out.AddScaled(nl, 1)
	}
	return out
}

// ProcessPassband drives the amplifier sample-by-sample in the passband
// domain (memoryless: the zone shaping and slope are envelope-domain
// conveniences; passband validation uses flat amplifiers).
func (a *Amplifier) ProcessPassband(x []float64) []float64 {
	return a.Poly.EvalSlice(x)
}

// voltsPeakToDBm converts sinusoid peak volts to dBm re 50 ohms.
func voltsPeakToDBm(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(v*v/2/50*1000)
}

// dbmToVoltsPeak converts dBm re 50 ohms to sinusoid peak volts.
func dbmToVoltsPeak(dbm float64) float64 {
	return math.Sqrt(2 * math.Pow(10, dbm/10) / 1000 * 50)
}

// String summarizes the amplifier.
func (a *Amplifier) String() string {
	return fmt.Sprintf("Amplifier{gain=%.2f dB, IIP3=%.2f dBm, NF=%.2f dB}",
		20*math.Log10(math.Abs(a.Poly.Gain())), a.Poly.IIP3DBm(), a.NFDB)
}
