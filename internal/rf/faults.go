package rf

// InsertionFaults describes per-insertion perturbations applied along the
// acquisition signal path of a Loadboard run. A production insertion can go
// wrong in several physically distinct places — the stimulus DAC, the
// contactor between DUT and load board, the LO distribution, and the
// digitizer — and each hook below acts at the corresponding point of the
// chain, so a fault corrupts the capture the way the real mechanism would
// (filtered, mixed and decimated along with the signal) rather than as a
// perturbation bolted onto the output vector.
//
// A nil *InsertionFaults (or a zero value) is a clean insertion.
type InsertionFaults struct {
	// StimTransform wraps the baseband stimulus waveform — a stimulus DAC
	// glitch or droop. Applied before upconversion.
	StimTransform func(StimFunc) StimFunc
	// ContactGain is a time-varying wideband gain applied to the DUT output
	// envelope (series contactor loss: 1 = clean contact, 0 = open,
	// flickering values = intermittent resistive contact). nil = clean.
	ContactGain func(t float64) float64
	// LOAmpScale scales the downconversion LO amplitude (LO drift).
	// Values <= 0 are treated as the nominal 1.
	LOAmpScale float64
	// LOPhaseRad is added to the LO path phase (LO phase drift).
	LOPhaseRad float64
	// CaptureTransform perturbs the digitized capture after decimation —
	// digitizer range saturation, sample dropout, additive burst noise.
	CaptureTransform func([]float64) []float64
}

// clean reports whether the fault set leaves the insertion unperturbed.
func (f *InsertionFaults) clean() bool {
	return f == nil || (f.StimTransform == nil && f.ContactGain == nil &&
		(f.LOAmpScale <= 0 || f.LOAmpScale == 1) && f.LOPhaseRad == 0 &&
		f.CaptureTransform == nil)
}

// loAmp returns the effective LO amplitude for nominal amp a.
func (f *InsertionFaults) loAmp(a float64) float64 {
	if f == nil || f.LOAmpScale <= 0 {
		return a
	}
	return a * f.LOAmpScale
}

// loPhase returns the effective LO path phase for nominal phase p.
func (f *InsertionFaults) loPhase(p float64) float64 {
	if f == nil {
		return p
	}
	return p + f.LOPhaseRad
}
