// Package rf provides the behavioral RF signal-path models of the
// signature tester's load board (paper Figs. 2-3): memoryless polynomial
// nonlinearities, amplifiers, mixers that generate RF x LO cross products
// including their second and third harmonics (the paper's mixer model), and
// two simulation engines for the chain — a direct passband time-domain
// simulator (reference) and a fast multi-zone complex-envelope simulator
// used inside the optimization loop. The two are cross-validated in tests.
package rf

import (
	"fmt"
	"math"
	"math/cmplx"
)

// EnvSignal is a multi-zone complex-envelope signal. The represented real
// passband signal is
//
//	x(t) = Z[0](t)/2 + sum_{k>=1} Re[ Z[k](t) * exp(j*2*pi*k*Fref*t) ]
//
// i.e. Z[k] is the complex envelope of the spectral zone centered at
// k*Fref. Zone 0 carries a (nominally real) baseband envelope with the
// factor-of-two convention above, which makes products close under the
// zone algebra. Fs is the envelope sample rate, shared by all zones.
type EnvSignal struct {
	Fs      float64 // envelope sample rate, Hz
	Fref    float64 // zone spacing (the carrier), Hz
	N       int     // samples per zone
	MaxZone int
	Z       [][]complex128 // [zone][sample]
}

// NewEnvSignal allocates a zero signal.
func NewEnvSignal(fs, fref float64, n, maxZone int) *EnvSignal {
	if fs <= 0 || fref <= 0 || n <= 0 || maxZone < 0 {
		panic(fmt.Sprintf("rf: invalid envelope signal (fs=%g fref=%g n=%d zones=%d)", fs, fref, n, maxZone))
	}
	z := make([][]complex128, maxZone+1)
	for k := range z {
		z[k] = make([]complex128, n)
	}
	return &EnvSignal{Fs: fs, Fref: fref, N: n, MaxZone: maxZone, Z: z}
}

// Clone deep-copies the signal.
func (s *EnvSignal) Clone() *EnvSignal {
	out := NewEnvSignal(s.Fs, s.Fref, s.N, s.MaxZone)
	for k := range s.Z {
		copy(out.Z[k], s.Z[k])
	}
	return out
}

// zoneAt returns Z[k][i] honoring the conjugate-symmetry convention for
// negative zones.
func (s *EnvSignal) zoneAt(k, i int) complex128 {
	if k < 0 {
		k = -k
		if k > s.MaxZone {
			return 0
		}
		return cmplx.Conj(s.Z[k][i])
	}
	if k > s.MaxZone {
		return 0
	}
	return s.Z[k][i]
}

func (s *EnvSignal) compatible(o *EnvSignal) error {
	if s.Fs != o.Fs || s.Fref != o.Fref || s.N != o.N {
		return fmt.Errorf("rf: incompatible envelope signals (fs %g/%g, fref %g/%g, n %d/%d)",
			s.Fs, o.Fs, s.Fref, o.Fref, s.N, o.N)
	}
	return nil
}

// Mul returns the zone-algebra product of a and b, keeping zones up to
// maxZone. With the representation x = (1/2) sum_k c_k e^{jkwt}
// (c_{-k} = conj(c_k)), the product's coefficients are
// c_m = (1/2) * sum_{i+j=m} a_i * b_j.
func Mul(a, b *EnvSignal, maxZone int) *EnvSignal {
	if err := a.compatible(b); err != nil {
		panic(err)
	}
	out := NewEnvSignal(a.Fs, a.Fref, a.N, maxZone)
	for m := 0; m <= maxZone; m++ {
		zm := out.Z[m]
		for i := -a.MaxZone; i <= a.MaxZone; i++ {
			j := m - i
			if j < -b.MaxZone || j > b.MaxZone {
				continue
			}
			for t := 0; t < a.N; t++ {
				zm[t] += 0.5 * a.zoneAt(i, t) * b.zoneAt(j, t)
			}
		}
	}
	return out
}

// AddScaled accumulates s += c*o in place (zones above s.MaxZone in o are
// dropped; zones missing in o contribute nothing).
func (s *EnvSignal) AddScaled(o *EnvSignal, c float64) {
	if err := s.compatible(o); err != nil {
		panic(err)
	}
	kmax := s.MaxZone
	if o.MaxZone < kmax {
		kmax = o.MaxZone
	}
	cc := complex(c, 0)
	for k := 0; k <= kmax; k++ {
		for t := 0; t < s.N; t++ {
			s.Z[k][t] += cc * o.Z[k][t]
		}
	}
}

// ScaleTime multiplies every zone of s by the real gain g(t), sample by
// sample — a wideband time-varying series loss in the signal path (e.g. a
// resistive or intermittent contactor fault), which attenuates all
// spectral zones identically.
func (s *EnvSignal) ScaleTime(g func(t float64) float64) {
	for i := 0; i < s.N; i++ {
		c := complex(g(float64(i)/s.Fs), 0)
		for k := range s.Z {
			s.Z[k][i] *= c
		}
	}
}

// ScaleZone multiplies one zone by a complex factor (a per-zone linear
// filter with flat response).
func (s *EnvSignal) ScaleZone(k int, c complex128) {
	if k < 0 || k > s.MaxZone {
		return
	}
	for t := range s.Z[k] {
		s.Z[k][t] *= c
	}
}

// BasebandReal returns the zone-0 signal as the real baseband waveform
// (value convention Z[0]/2) and reports the worst-case imaginary residue,
// which should be numerically tiny for physically real signals.
func (s *EnvSignal) BasebandReal() ([]float64, float64) {
	out := make([]float64, s.N)
	worst := 0.0
	for t, v := range s.Z[0] {
		out[t] = real(v) / 2
		if im := math.Abs(imag(v)); im > worst {
			worst = im
		}
	}
	return out, worst
}

// EnvTone places a tone at frequency k*Fref + offset with the given peak
// amplitude and phase into zone k of a fresh signal: the LO generator.
func EnvTone(fs, fref float64, n, maxZone, k int, amp, offsetHz, phase float64) *EnvSignal {
	s := NewEnvSignal(fs, fref, n, maxZone)
	if k < 0 || k > maxZone {
		panic(fmt.Sprintf("rf: tone zone %d outside 0..%d", k, maxZone))
	}
	for t := 0; t < n; t++ {
		ph := 2*math.Pi*offsetHz*float64(t)/fs + phase
		if k == 0 {
			// Zone-0 value convention: signal value = Z[0]/2.
			s.Z[0][t] = complex(2*amp*math.Cos(ph), 0)
		} else {
			s.Z[k][t] = cmplx.Rect(amp, ph)
		}
	}
	return s
}

// EnvFromBaseband wraps a real baseband waveform into zone 0.
func EnvFromBaseband(x []float64, fs, fref float64, maxZone int) *EnvSignal {
	s := NewEnvSignal(fs, fref, len(x), maxZone)
	for t, v := range x {
		s.Z[0][t] = complex(2*v, 0)
	}
	return s
}

// ApplyPoly evaluates the memoryless polynomial y = sum_k C[k-1] x^k using
// the zone algebra, keeping zones up to maxZone.
func (s *EnvSignal) ApplyPoly(p Poly, maxZone int) *EnvSignal {
	out := NewEnvSignal(s.Fs, s.Fref, s.N, maxZone)
	if len(p.C) == 0 {
		return out
	}
	power := s.Clone()
	out.AddScaled(power, p.C[0])
	for k := 1; k < len(p.C); k++ {
		power = Mul(power, s, maxZone)
		if p.C[k] != 0 {
			out.AddScaled(power, p.C[k])
		}
	}
	return out
}

// DifferentiateZone replaces zone k with its time derivative scaled by
// 1/(2*pi): used to realize a linear-in-frequency gain slope H(df) =
// H0*(1 + slope*df) as y = H0*(x + slope * x'/(2*pi*j)).
func (s *EnvSignal) DifferentiateZone(k int) []complex128 {
	if k < 0 || k > s.MaxZone {
		return nil
	}
	src := s.Z[k]
	out := make([]complex128, s.N)
	dt := 1 / s.Fs
	for t := 0; t < s.N; t++ {
		var d complex128
		switch {
		case t == 0:
			d = (src[1] - src[0]) / complex(dt, 0)
		case t == s.N-1:
			d = (src[t] - src[t-1]) / complex(dt, 0)
		default:
			d = (src[t+1] - src[t-1]) / complex(2*dt, 0)
		}
		out[t] = d / complex(2*math.Pi, 0)
	}
	return out
}
