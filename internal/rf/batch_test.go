package rf

import (
	"math"
	"strings"
	"testing"
)

// genericDUT hides the concrete type so BatchRunner takes its generic
// EnvelopeDevice path.
type genericDUT struct{ a *Amplifier }

func (g genericDUT) ProcessEnvelope(in *EnvSignal, maxZone int) *EnvSignal {
	return g.a.ProcessEnvelope(in, maxZone)
}

func batchStim(amp float64) StimFunc {
	return func(t float64) float64 {
		return amp * (math.Sin(2*math.Pi*3.1e5*t) + 0.4*math.Cos(2*math.Pi*7.3e5*t+0.3))
	}
}

func sameCapture(t *testing.T, name string, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(ref))
	}
	for i := range ref {
		// == tolerates the one deviation the batch kernel allows itself:
		// signed zeros from skipped structurally-zero accumulations.
		if ref[i] != got[i] {
			t.Fatalf("%s: sample %d differs: batch %v (%x) vs reference %v (%x)",
				name, i, got[i], math.Float64bits(got[i]), ref[i], math.Float64bits(ref[i]))
		}
	}
}

func batchTestBoards() map[string]*Loadboard {
	small := DefaultLoadboard()
	small.CaptureN = 40
	small.SettleN = 8

	phased := DefaultLoadboard()
	phased.CaptureN = 40
	phased.SettleN = 8
	phased.PathPhase = 0.7

	zones2 := DefaultLoadboard()
	zones2.CaptureN = 40
	zones2.SettleN = 8
	zones2.MaxZone = 2

	ideal := DefaultLoadboard()
	ideal.CaptureN = 40
	ideal.SettleN = 8
	ideal.UpMixer = IdealMixer()
	ideal.DownMixer = IdealMixer() // sparse K: the cube path must self-disable

	return map[string]*Loadboard{"default": small, "phased": phased, "maxzone2": zones2, "ideal": ideal}
}

func batchTestDUTs() map[string]EnvelopeDevice {
	slope := NewAmplifier(PolyFromSpecs(15, -8))
	slope.CarrierSlope = complex(2e-9, 5e-10)

	quad := NewAmplifier(Poly{C: []float64{5.6, 0.8, -120}})

	linear := NewAmplifier(Poly{C: []float64{3.2}})

	chain := &Chain{Stages: []*Amplifier{
		NewAmplifier(PolyFromSpecs(12, -5)),
		NewAmplifier(PolyFromSpecs(6, 4)),
	}}
	chain.Stages[1].CarrierSlope = complex(1e-9, 0)

	return map[string]EnvelopeDevice{
		"amp-slope": slope,
		"amp-quad":  quad,
		"amp-lin":   linear,
		"chain":     chain,
		"generic":   genericDUT{a: NewAmplifier(PolyFromSpecs(15, -8))},
	}
}

func batchTestFaults(windowS float64) map[string]*InsertionFaults {
	return map[string]*InsertionFaults{
		"clean": nil,
		"contact-flicker": {ContactGain: func(t float64) float64 {
			if math.Sin(2*math.Pi*3/windowS*t+1.1) > 0 {
				return 0.4
			}
			return 1
		}},
		"contact-open": {ContactGain: func(float64) float64 { return 0 }},
		"lo-drift":     {LOAmpScale: 0.82, LOPhaseRad: 0.3},
		"capture-sat": {CaptureTransform: func(x []float64) []float64 {
			out := make([]float64, len(x))
			for i, v := range x {
				out[i] = math.Max(-0.01, math.Min(0.01, v))
			}
			return out
		}},
		"stim-glitch": {StimTransform: func(s StimFunc) StimFunc {
			return func(t float64) float64 { return s(t) + 0.01*math.Sin(2*math.Pi*1e6*t) }
		}},
	}
}

// TestBatchRunnerBitIdentity sweeps boards x DUTs x fault kinds and demands
// the batched capture equal the reference RunEnvelopeFaulted capture sample
// for sample.
func TestBatchRunnerBitIdentity(t *testing.T) {
	for bname, lb := range batchTestBoards() {
		stim := batchStim(0.18)
		br, err := NewBatchRunner(lb)
		if err != nil {
			t.Fatalf("%s: NewBatchRunner: %v", bname, err)
		}
		br.Prepare(stim)
		windowS := float64(lb.CaptureN) / lb.DigitizerFs
		for dname, dut := range batchTestDUTs() {
			for fname, flt := range batchTestFaults(windowS) {
				name := bname + "/" + dname + "/" + fname
				ref, err := lb.RunEnvelopeFaulted(dut, stim, flt)
				if err != nil {
					t.Fatalf("%s: reference: %v", name, err)
				}
				got, err := br.RunDevice(dut, flt)
				if err != nil {
					t.Fatalf("%s: batch: %v", name, err)
				}
				sameCapture(t, name, ref, got)
			}
		}
	}
}

// TestBatchRunnerInterleavedDevices re-runs devices in shuffled order through
// one runner: scratch reuse must not leak state between devices or faults.
func TestBatchRunnerInterleavedDevices(t *testing.T) {
	lb := batchTestBoards()["default"]
	stim := batchStim(0.18)
	br, err := NewBatchRunner(lb)
	if err != nil {
		t.Fatal(err)
	}
	br.Prepare(stim)
	windowS := float64(lb.CaptureN) / lb.DigitizerFs
	duts := batchTestDUTs()
	faults := batchTestFaults(windowS)
	order := []struct{ d, f string }{
		{"amp-quad", "clean"}, {"chain", "lo-drift"}, {"amp-quad", "contact-open"},
		{"generic", "clean"}, {"amp-slope", "contact-flicker"}, {"amp-quad", "clean"},
		{"chain", "clean"}, {"amp-lin", "capture-sat"}, {"amp-slope", "clean"},
	}
	for step, oc := range order {
		ref, err := lb.RunEnvelopeFaulted(duts[oc.d], stim, faults[oc.f])
		if err != nil {
			t.Fatalf("step %d reference: %v", step, err)
		}
		got, err := br.RunDevice(duts[oc.d], faults[oc.f])
		if err != nil {
			t.Fatalf("step %d batch: %v", step, err)
		}
		sameCapture(t, oc.d+"/"+oc.f+" (interleaved)", ref, got)
	}
}

// TestBatchRunnerCaptureContractPanic pins the CaptureN-contract panic of
// the batched path to the reference message.
func TestBatchRunnerCaptureContractPanic(t *testing.T) {
	lb := batchTestBoards()["default"]
	br, err := NewBatchRunner(lb)
	if err != nil {
		t.Fatal(err)
	}
	br.Prepare(batchStim(0.18))
	flt := &InsertionFaults{CaptureTransform: func(x []float64) []float64 { return x[:len(x)-3] }}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected CaptureN contract panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "CaptureN contract") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	br.RunDevice(NewAmplifier(PolyFromSpecs(15, -8)), flt)
}

// TestBatchRunnerRequiresPrepare checks the unprepared-runner error.
func TestBatchRunnerRequiresPrepare(t *testing.T) {
	br, err := NewBatchRunner(DefaultLoadboard())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.RunDevice(NewAmplifier(PolyFromSpecs(15, -8)), nil); err == nil {
		t.Fatal("expected error before Prepare")
	}
}
