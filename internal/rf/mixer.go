package rf

import "fmt"

// Mixer is the paper's behavioral mixer: it "generates cross products of
// the RF and LO signals and their second and third harmonics". The output
// is
//
//	y = sum_{p=1..3, q=1..3} K[p-1][q-1] * rf^p * lo^q
//	    + RFFeedthrough*rf + LOFeedthrough*lo
//
// K[0][0] is the fundamental multiplicative conversion term.
type Mixer struct {
	K             [3][3]float64
	RFFeedthrough float64
	LOFeedthrough float64
}

// DefaultMixer returns a realistic diode-ring-like mixer: full fundamental
// product, progressively weaker harmonic cross products, small feedthrough.
func DefaultMixer() *Mixer {
	return &Mixer{
		K: [3][3]float64{
			{1.0, 0.10, 0.05},
			{0.05, 0.010, 0.004},
			{0.02, 0.004, 0.002},
		},
		RFFeedthrough: 0.02,
		LOFeedthrough: 0.02,
	}
}

// IdealMixer returns a pure multiplier (used in unit tests and the phase
// study, where the textbook Eqs. 1-5 assume ideal multiplication).
func IdealMixer() *Mixer {
	return &Mixer{K: [3][3]float64{{1, 0, 0}, {0, 0, 0}, {0, 0, 0}}}
}

// ProcessEnvelope mixes rf with lo in the zone-envelope domain, keeping
// output zones up to maxZone.
func (m *Mixer) ProcessEnvelope(rf, lo *EnvSignal, maxZone int) *EnvSignal {
	if err := rf.compatible(lo); err != nil {
		panic(fmt.Errorf("rf: mixer inputs: %w", err))
	}
	out := NewEnvSignal(rf.Fs, rf.Fref, rf.N, maxZone)
	// Powers of rf and lo, computed once.
	rfPows := powers(rf, 3, maxZone+lo.MaxZone*3)
	loPows := powers(lo, 3, maxZone+rf.MaxZone*3)
	for p := 1; p <= 3; p++ {
		for q := 1; q <= 3; q++ {
			k := m.K[p-1][q-1]
			if k == 0 {
				continue
			}
			prod := Mul(rfPows[p-1], loPows[q-1], maxZone)
			out.AddScaled(prod, k)
		}
	}
	if m.RFFeedthrough != 0 {
		out.AddScaled(rf, m.RFFeedthrough)
	}
	if m.LOFeedthrough != 0 {
		out.AddScaled(lo, m.LOFeedthrough)
	}
	return out
}

// powers returns s^1..s^n in the zone algebra (intermediate zones capped).
func powers(s *EnvSignal, n, zoneCap int) []*EnvSignal {
	if zoneCap > 3*s.MaxZone {
		zoneCap = 3 * s.MaxZone
	}
	out := make([]*EnvSignal, n)
	out[0] = s
	for k := 1; k < n; k++ {
		out[k] = Mul(out[k-1], s, zoneCap)
	}
	return out
}

// ProcessPassband mixes sample streams directly.
func (m *Mixer) ProcessPassband(rf, lo []float64) []float64 {
	if len(rf) != len(lo) {
		panic(fmt.Sprintf("rf: mixer passband inputs differ in length: %d vs %d", len(rf), len(lo)))
	}
	out := make([]float64, len(rf))
	for i := range rf {
		r, l := rf[i], lo[i]
		rp := [3]float64{r, r * r, r * r * r}
		lp := [3]float64{l, l * l, l * l * l}
		y := m.RFFeedthrough*r + m.LOFeedthrough*l
		for p := 0; p < 3; p++ {
			for q := 0; q < 3; q++ {
				if k := m.K[p][q]; k != 0 {
					y += k * rp[p] * lp[q]
				}
			}
		}
		out[i] = y
	}
	return out
}
