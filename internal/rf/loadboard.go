package rf

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// EnvelopeDevice is a DUT that can be simulated in the zone-envelope domain.
type EnvelopeDevice interface {
	ProcessEnvelope(in *EnvSignal, maxZone int) *EnvSignal
}

// PassbandDevice is a DUT that can be simulated sample-by-sample at the
// passband rate.
type PassbandDevice interface {
	ProcessPassband(x []float64) []float64
}

// StimFunc is a baseband stimulus waveform as a function of time (seconds).
type StimFunc func(t float64) float64

// Loadboard is the paper's Fig. 3 configuration: an upconversion mixer
// driven by LO1 at CarrierHz, the DUT, a downconversion mixer driven by LO2
// at CarrierHz+LOOffsetHz (with a path phase phi), a lowpass filter and the
// digitizer. LOOffsetHz = 0 with PathPhase != 0 reproduces the Eq. 4
// cancellation problem; a nonzero offset plus the FFT-magnitude signature
// is the paper's fix (Eq. 5).
type Loadboard struct {
	CarrierHz   float64 // LO1 frequency f1
	LOOffsetHz  float64 // f2 - f1 (e.g. 100 kHz in the hardware experiment)
	CarrierAmp  float64 // LO peak amplitude, volts (10 dBm -> 1.0 V)
	PathPhase   float64 // phi: phase mismatch between the LO paths, radians
	UpMixer     *Mixer
	DownMixer   *Mixer
	LPFCutoffHz float64 // channel filter corner (10 MHz in the paper)
	DigitizerFs float64 // capture rate (20 MHz simulation / 1 MHz hardware)
	CaptureN    int     // samples captured
	// SettleN digitizer samples are simulated and discarded before the
	// capture starts, letting filter start-up transients die out (default
	// 32).
	SettleN int

	// EnvOversample sets the envelope simulation rate as a multiple of
	// DigitizerFs (default 4).
	EnvOversample int
	// MaxZone is the number of carrier harmonics tracked (default 3,
	// matching the paper's mixer model).
	MaxZone int
	// PassbandFs is the direct passband simulation rate (default 8x
	// carrier).
	PassbandFs float64
}

// DefaultLoadboard returns the paper's simulation-experiment configuration:
// 900 MHz 10 dBm carrier, 100 kHz LO offset, 10 MHz LPF, 20 MHz digitizing,
// 5 us capture (100 samples).
func DefaultLoadboard() *Loadboard {
	return &Loadboard{
		CarrierHz:   900e6,
		LOOffsetHz:  100e3,
		CarrierAmp:  1.0, // 10 dBm into 50 ohms
		UpMixer:     DefaultMixer(),
		DownMixer:   DefaultMixer(),
		LPFCutoffHz: 10e6,
		DigitizerFs: 20e6,
		CaptureN:    100,
	}
}

func (lb *Loadboard) envFs() float64 {
	os := lb.EnvOversample
	if os <= 0 {
		os = 4
	}
	return lb.DigitizerFs * float64(os)
}

func (lb *Loadboard) maxZone() int {
	if lb.MaxZone <= 0 {
		return 3
	}
	return lb.MaxZone
}

func (lb *Loadboard) passbandFs() float64 {
	if lb.PassbandFs > 0 {
		return lb.PassbandFs
	}
	return 8 * lb.CarrierHz
}

func (lb *Loadboard) validate() error {
	if lb.CarrierHz <= 0 || lb.DigitizerFs <= 0 || lb.CaptureN <= 0 {
		return fmt.Errorf("rf: loadboard needs carrier, digitizer rate and capture length")
	}
	if lb.LPFCutoffHz <= 0 || lb.LPFCutoffHz > lb.DigitizerFs/2 {
		return fmt.Errorf("rf: LPF cutoff %g Hz outside (0, digitizer Nyquist %g]", lb.LPFCutoffHz, lb.DigitizerFs/2)
	}
	if lb.UpMixer == nil || lb.DownMixer == nil {
		return fmt.Errorf("rf: loadboard mixers not configured")
	}
	return nil
}

// finalFilter designs the shared channel filter at the envelope rate; both
// simulation paths use it so their responses match.
func (lb *Loadboard) finalFilter() (*dsp.FIR, error) {
	cutoff := lb.LPFCutoffHz * 0.95
	return dsp.DesignLowpassFIR(cutoff, lb.envFs(), 95, dsp.Blackman)
}

// strideDecimate picks every k-th sample starting at offset (input must
// already be band-limited by the channel filter).
func strideDecimate(x []float64, k, offset, n int) []float64 {
	out := make([]float64, 0, n)
	for i := offset; i < len(x) && len(out) < n; i += k {
		out = append(out, x[i])
	}
	return out
}

func (lb *Loadboard) settleN() int {
	if lb.SettleN > 0 {
		return lb.SettleN
	}
	return 32
}

// RunEnvelope simulates the chain in the zone-envelope domain and returns
// the CaptureN baseband samples the digitizer records.
func (lb *Loadboard) RunEnvelope(dut EnvelopeDevice, stim StimFunc) ([]float64, error) {
	return lb.RunEnvelopeFaulted(dut, stim, nil)
}

// RunEnvelopeFaulted is RunEnvelope with per-insertion faults injected at
// the physically corresponding points of the chain: the stimulus before
// upconversion, the contactor between DUT and downconverter, the
// downconversion LO, and the digitized capture. A nil flt is a clean
// insertion. The Loadboard itself is not mutated, so concurrent runs that
// share a board stay race-free.
func (lb *Loadboard) RunEnvelopeFaulted(dut EnvelopeDevice, stim StimFunc, flt *InsertionFaults) ([]float64, error) {
	if err := lb.validate(); err != nil {
		return nil, err
	}
	if flt != nil && flt.StimTransform != nil {
		stim = flt.StimTransform(stim)
	}
	fs := lb.envFs()
	os := int(math.Round(fs / lb.DigitizerFs))
	// Extra samples cover the channel-filter group delay.
	fir, err := lb.finalFilter()
	if err != nil {
		return nil, err
	}
	settle := lb.settleN()
	n := (lb.CaptureN+settle)*os + fir.GroupDelaySamples() + os
	mz := lb.maxZone()

	bb := make([]float64, n)
	for i := range bb {
		bb[i] = stim(float64(i) / fs)
	}
	x := EnvFromBaseband(bb, fs, lb.CarrierHz, mz)
	lo1 := EnvTone(fs, lb.CarrierHz, n, mz, 1, lb.CarrierAmp, 0, 0)
	rfIn := lb.UpMixer.ProcessEnvelope(x, lo1, mz)
	y := dut.ProcessEnvelope(rfIn, mz)
	if flt != nil && flt.ContactGain != nil {
		y.ScaleTime(flt.ContactGain)
	}
	lo2 := EnvTone(fs, lb.CarrierHz, n, mz, 1, flt.loAmp(lb.CarrierAmp), lb.LOOffsetHz, flt.loPhase(lb.PathPhase))
	down := lb.DownMixer.ProcessEnvelope(y, lo2, mz)
	base, _ := down.BasebandReal()
	filtered := fir.FilterCompensated(base)
	capture := strideDecimate(filtered, os, settle*os, lb.CaptureN)
	if flt != nil && flt.CaptureTransform != nil {
		capture = flt.CaptureTransform(capture)
		// A transform that changes the capture length violates the
		// digitizer contract: every downstream stage (window, FFT, feature
		// bins, regression input) is sized for CaptureN samples, and a
		// silently shortened capture would corrupt predictions instead of
		// failing. Fail loudly; the floor/orchestrator supervisors recover
		// this into a fallback-binned device.
		if len(capture) != lb.CaptureN {
			panic(fmt.Sprintf("rf: capture transform changed length %d -> %d (CaptureN contract)",
				lb.CaptureN, len(capture)))
		}
	}
	return capture, nil
}

// RunPassband simulates the chain by direct time-domain sampling at
// PassbandFs — the reference implementation used to validate the envelope
// engine. The passband stream is decimated to the envelope rate with
// boxcar stages, then shares the envelope path's channel filter.
func (lb *Loadboard) RunPassband(dut PassbandDevice, stim StimFunc) ([]float64, error) {
	if err := lb.validate(); err != nil {
		return nil, err
	}
	pfs := lb.passbandFs()
	envRate := lb.envFs()
	ratio := pfs / envRate
	if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
		return nil, fmt.Errorf("rf: passband rate %g not an integer multiple of envelope rate %g", pfs, envRate)
	}
	fir, err := lb.finalFilter()
	if err != nil {
		return nil, err
	}
	os := int(math.Round(envRate / lb.DigitizerFs))
	settle := lb.settleN()
	nEnv := (lb.CaptureN+settle)*os + fir.GroupDelaySamples() + os
	n := nEnv * int(math.Round(ratio))

	x := make([]float64, n)
	lo1 := make([]float64, n)
	lo2 := make([]float64, n)
	w1 := 2 * math.Pi * lb.CarrierHz
	w2 := 2 * math.Pi * (lb.CarrierHz + lb.LOOffsetHz)
	for i := range x {
		t := float64(i) / pfs
		x[i] = stim(t)
		lo1[i] = lb.CarrierAmp * math.Cos(w1*t)
		lo2[i] = lb.CarrierAmp * math.Cos(w2*t+lb.PathPhase)
	}
	rfIn := lb.UpMixer.ProcessPassband(x, lo1)
	y := dut.ProcessPassband(rfIn)
	down := lb.DownMixer.ProcessPassband(y, lo2)

	chain, err := dsp.NewDecimationChain(pfs, envRate, 0)
	if err != nil {
		return nil, err
	}
	atEnv := chain.Process(down)
	filtered := fir.FilterCompensated(atEnv)
	return strideDecimate(filtered, os, settle*os, lb.CaptureN), nil
}
