package rf

import (
	"math"
	"testing"
)

func TestChainEnvelopeEqualsSequentialStages(t *testing.T) {
	a := NewAmplifier(PolyFromSpecs(10, 0))
	b := NewAmplifier(PolyFromSpecs(6, 5))
	chain := &Chain{Stages: []*Amplifier{a, b}}
	in := EnvTone(80e6, 900e6, 64, 3, 1, 0.05, 1e6, 0.2)
	viaChain := chain.ProcessEnvelope(in, 3)
	manual := b.ProcessEnvelope(a.ProcessEnvelope(in, 3), 3)
	for k := 0; k <= 3; k++ {
		for i := 0; i < in.N; i++ {
			if d := viaChain.Z[k][i] - manual.Z[k][i]; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
				t.Fatalf("zone %d sample %d differs", k, i)
			}
		}
	}
}

func TestChainPassbandComposition(t *testing.T) {
	a := NewAmplifier(Poly{C: []float64{2}})
	b := NewAmplifier(Poly{C: []float64{3}})
	chain := &Chain{Stages: []*Amplifier{a, b}}
	out := chain.ProcessPassband([]float64{1, -0.5})
	if out[0] != 6 || out[1] != -3 {
		t.Fatalf("chain passband %v", out)
	}
}

func TestChainCascadeGainOnly(t *testing.T) {
	// Single linear stage: cascade specs must reduce to stage specs.
	a := NewAmplifier(PolyFromSpecs(12, 4))
	a.NFDB = 3
	c := &Chain{Stages: []*Amplifier{a}}
	g, nf, ip3 := c.CascadeSpecs()
	if math.Abs(g-12) > 1e-9 || math.Abs(nf-3) > 1e-9 || math.Abs(ip3-4) > 1e-6 {
		t.Fatalf("single-stage cascade %g %g %g", g, nf, ip3)
	}
}

func TestAmplifierZoneRejection(t *testing.T) {
	// Content in a rejected zone must be attenuated by the configured
	// factor on the linear path.
	amp := NewAmplifier(Poly{C: []float64{10}})
	amp.OutOfBandRejection = 0.01
	in := NewEnvSignal(80e6, 900e6, 16, 3)
	for i := 0; i < in.N; i++ {
		in.Z[1][i] = complex(0.1, 0)
		in.Z[2][i] = complex(0.1, 0)
	}
	out := amp.ProcessEnvelope(in, 3)
	// Carrier zone: full gain. Zone 2: rejected.
	if math.Abs(real(out.Z[1][0])-1.0) > 1e-12 {
		t.Fatalf("carrier zone gain %v", out.Z[1][0])
	}
	if math.Abs(real(out.Z[2][0])-0.01) > 1e-12 {
		t.Fatalf("rejected zone %v, want 0.01", out.Z[2][0])
	}
}

func TestAmplifierCarrierSlopeTiltsBand(t *testing.T) {
	// With a positive real slope, a tone above the carrier must come out
	// larger than a tone below it.
	amp := NewAmplifier(Poly{C: []float64{1}})
	amp.CarrierSlope = complex(2e-8, 0) // 2%/MHz
	fs, fref := 80e6, 900e6
	n := 512
	up := EnvTone(fs, fref, n, 3, 1, 0.1, 5e6, 0)  // +5 MHz
	dn := EnvTone(fs, fref, n, 3, 1, 0.1, -5e6, 0) // -5 MHz
	outUp := amp.ProcessEnvelope(up, 3)
	outDn := amp.ProcessEnvelope(dn, 3)
	// Compare steady-state envelope magnitudes mid-record.
	mid := n / 2
	mu := real(outUp.Z[1][mid])*real(outUp.Z[1][mid]) + imag(outUp.Z[1][mid])*imag(outUp.Z[1][mid])
	md := real(outDn.Z[1][mid])*real(outDn.Z[1][mid]) + imag(outDn.Z[1][mid])*imag(outDn.Z[1][mid])
	if mu <= md {
		t.Fatalf("positive slope should favor the upper tone: %g vs %g", mu, md)
	}
	wantUp := 0.1 * (1 + 2e-8*5e6) // |H| = |1 + slope*df|
	if math.Abs(math.Sqrt(mu)-wantUp) > 0.002 {
		t.Fatalf("upper tone envelope %g, want ~%g", math.Sqrt(mu), wantUp)
	}
}

func TestAmplifierString(t *testing.T) {
	a := NewAmplifier(PolyFromSpecs(16, 3))
	a.NFDB = 2.2
	s := a.String()
	if len(s) == 0 || s[0] != 'A' {
		t.Fatalf("String = %q", s)
	}
}
