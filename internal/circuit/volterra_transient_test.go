package circuit

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

// TestVolterraMatchesTransientTwoTone cross-validates the two nonlinear
// engines: the closed-form Volterra IIP3 of a resistively-degenerated CE
// stage must agree with a brute-force two-tone transient simulation
// (IM3 extracted with Goertzel, IIP3 extrapolated as Pin + dPc/2).
func TestVolterraMatchesTransientTwoTone(t *testing.T) {
	build := func() (*Circuit, *BJT, *OperatingPoint) {
		c := New()
		c.AddVSource("VCC", "vcc", "0", 3, 0)
		c.AddVSource("VIN", "in", "0", 0.8, 1)
		c.AddResistor("RC", "vcc", "c", 300)
		c.AddResistor("RE", "e", "0", 50)
		p := DefaultBJT()
		p.Cje, p.Cjc = 1e-15, 1e-15 // keep the low-frequency test memoryless
		q := c.AddBJT("Q1", "c", "in", "e", p)
		op, err := c.SolveDC(DCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return c, q, op
	}

	// Closed-form prediction. The feedback impedance is the emitter
	// resistor (frequency-independent, so a low-frequency transient sees
	// the same loop).
	c, q, op := build()
	rep, err := c.VolterraIIP3(op, q, "in", 1e6, complex(50, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Brute force: two tones at f1/f2, small enough for weak nonlinearity,
	// large enough for IM3 to clear numerical noise.
	const (
		f1, f2 = 1.0e6, 1.3e6
		amp    = 4e-3
		fs     = 200e6
		n      = 8000 // 40 us: integer cycles of f1, f2 and 2*f1-f2
	)
	res, err := c.SolveTransient(op, TransientOptions{
		Dt:    1 / fs,
		Steps: n,
		Sources: map[string]func(float64) float64{
			"VIN": func(tt float64) float64 {
				return 0.8 + amp*(math.Sin(2*math.Pi*f1*tt)+math.Sin(2*math.Pi*f2*tt))
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage("c")
	// Analysis window: exactly n/2 samples (integer cycles of f1, f2 and
	// 2*f1-f2) from the end of the record, with the DC level removed so
	// its spectral skirt cannot mask the small IM3 tone.
	tail := append([]float64(nil), v[len(v)-n/2:]...)
	mean := 0.0
	for _, x := range tail {
		mean += x
	}
	mean /= float64(len(tail))
	for i := range tail {
		tail[i] -= mean
	}
	fund := dsp.ToneAmplitude(tail, f1, fs)
	im3 := dsp.ToneAmplitude(tail, 2*f1-f2, fs)
	if fund <= 0 || im3 <= 0 {
		t.Fatalf("tone extraction failed: fund=%g im3=%g", fund, im3)
	}
	// Input-referred IP3 amplitude: A_ip3 = A * sqrt(fund/im3).
	aip3 := amp * math.Sqrt(fund/im3)
	relErr := math.Abs(aip3-rep.AIIP3) / rep.AIIP3
	if relErr > 0.15 {
		t.Fatalf("transient AIP3 %g vs Volterra %g (rel err %.2f)", aip3, rep.AIIP3, relErr)
	}
}
