package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DistortionReport summarizes the weakly-nonlinear (Volterra-series)
// analysis of a single-transistor gain stage with series (emitter)
// feedback — the dominant nonlinearity of the paper's LNA. It provides the
// closed-loop polynomial coefficients referred to the stage input and the
// resulting third-order intercept, plus the behavioral polynomial referred
// to the circuit's external input port (used by the signature-path
// simulator).
type DistortionReport struct {
	Freq float64

	// Closed-loop transconductance coefficients i_c = G1 v + G2 v^2 + G3 v^3
	// where v is the voltage across the intrinsic junction loop input.
	G1 complex128
	G2 complex128
	G3 complex128

	// InputTransfer is vbe/vin: the linear transfer from the external input
	// port voltage to the intrinsic base-emitter voltage.
	InputTransfer complex128

	// AIIP3 is the input-referred third-order intercept amplitude (volts
	// peak at the external input port).
	AIIP3 float64
	// IIP3DBm is AIIP3 expressed as power into the reference impedance.
	IIP3DBm float64
}

// VolterraIIP3 analyzes transistor q embedded in circuit c. inNode is the
// external input port node; feedbackZ is the series-feedback impedance seen
// at the emitter at the analysis frequency (typically j*w*Le for inductive
// degeneration, plus any parasitic resistance). The standard closed forms
// for an exponential transconductor with series feedback are used:
//
//	G1 = g1/(1+T),  T = g1*Zf
//	G2 = g2/(1+T)^3
//	G3 = (g3*(1+T) - 2*g2^2*Zf) / (1+T)^5
//
// with the open-loop exponential coefficients g1 = gm, g2 = gm/(2*Vt*qb2),
// g3 = gm/(6*Vt^2*qb3) where the qb terms capture the high-injection (Ikf)
// compression of the exponential.
func (c *Circuit) VolterraIIP3(op *OperatingPoint, q *BJT, inNode string, freq float64, feedbackZ complex128) (*DistortionReport, error) {
	ac, err := c.SolveAC(op, freq)
	if err != nil {
		return nil, err
	}
	bjtOp := q.OperatingPoint()
	// A transconductance below ~1 uS means the device is effectively off
	// (sub-nA bias): the power-series model is meaningless there.
	if bjtOp.Gm <= 1e-6 {
		return nil, fmt.Errorf("circuit: transistor %s is off (gm=%g S)", q.name(), bjtOp.Gm)
	}

	// Open-loop power-series of the transport current about the operating
	// point. For the ideal exponential g2 = gm/2Vt, g3 = gm/6Vt^2; the
	// normalized base charge qb (> 1 under high injection) softens the
	// higher-order terms faster than the first-order one.
	g1 := bjtOp.Gm
	qb := bjtOp.Qb
	if qb < 1 {
		qb = 1
	}
	g2 := g1 / (2 * Vt * qb)
	g3 := g1 / (6 * Vt * Vt * qb * qb)

	one := complex(1, 0)
	T := complex(g1, 0) * feedbackZ
	den := one + T
	G1 := complex(g1, 0) / den
	G2 := complex(g2, 0) / (den * den * den)
	G3 := (complex(g3, 0)*den - 2*complex(g2*g2, 0)*feedbackZ) / (den * den * den * den * den)

	// Input transfer vbe/vin from the AC solve: the AC source in the
	// netlist must be set to 1 V so node voltages are transfer functions.
	vin := ac.Voltage(inNode)
	if cmplx.Abs(vin) == 0 {
		return nil, fmt.Errorf("circuit: input node %q has zero AC drive; add an AC source", inNode)
	}
	vbe := ac.x[q.nbi]
	if q.ne >= 0 {
		vbe -= ac.x[q.ne]
	}
	tfr := vbe / vin

	// Input-referred IP3. The closed-loop coefficients G1..G3 refer to the
	// series-feedback loop input, which relates to the external port
	// through the PASSIVE divider only — the measured AC transfer tfr
	// already contains the loop suppression 1/(1+T), so that factor must
	// be removed before referral or the feedback would be counted twice:
	//
	//	tfr_passive = tfr * (1+T)
	//	A^2 = (4/3)|G1/G3| / |tfr_passive|^2
	//
	// (Validated against brute-force two-tone transient simulation in
	// volterra_transient_test.go.)
	tfrPassive := cmplx.Abs(tfr * den)
	ratio := cmplx.Abs(G1 / G3)
	a2 := 4.0 / 3.0 * ratio / (tfrPassive * tfrPassive)
	a := math.Sqrt(a2)

	rep := &DistortionReport{
		Freq:          freq,
		G1:            G1,
		G2:            G2,
		G3:            G3,
		InputTransfer: tfr,
		AIIP3:         a,
		IIP3DBm:       voltsPeakToDBm(a),
	}
	return rep, nil
}

// voltsPeakToDBm converts a sinusoid peak voltage to dBm re 50 ohms.
// (Duplicated from dsp to keep this package dependency-free.)
func voltsPeakToDBm(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(v*v/2/50*1000)
}

// BehavioralPoly converts a linear gain (complex vout/vin at the carrier)
// and the distortion report into a memoryless polynomial
// y = c1 x + c2 x^2 + c3 x^3 for the envelope/passband signature
// simulators. c3 is chosen compressive (opposite sign to c1) so that the
// polynomial reproduces the analyzed IIP3 through the standard relation
// AIP3^2 = (4/3)|c1/c3|; c2 is scaled from the second-order coefficient
// ratio in the same way.
func (r *DistortionReport) BehavioralPoly(linGain complex128) (c1, c2, c3 float64) {
	c1 = cmplx.Abs(linGain)
	if r.AIIP3 > 0 {
		c3 = -4.0 / 3.0 * c1 / (r.AIIP3 * r.AIIP3)
	}
	// Second-order: |G2/G1| has units 1/V at the loop input; refer to the
	// external port through the input transfer.
	if g1 := cmplx.Abs(r.G1); g1 > 0 {
		c2 = c1 * cmplx.Abs(r.G2) / g1 * cmplx.Abs(r.InputTransfer)
	}
	return c1, c2, c3
}
