package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// acSystem is the complex MNA system A x = b at one frequency.
type acSystem struct {
	n          int
	branchBase int
	A          [][]complex128
	b          []complex128
}

func newACSystem(n, branchBase int) *acSystem {
	s := &acSystem{n: n, branchBase: branchBase, A: make([][]complex128, n), b: make([]complex128, n)}
	for i := range s.A {
		s.A[i] = make([]complex128, n)
	}
	return s
}

func (s *acSystem) addA(i, j int, v complex128) {
	if i < 0 || j < 0 {
		return
	}
	s.A[i][j] += v
}

func (s *acSystem) addB(i int, v complex128) {
	if i < 0 {
		return
	}
	s.b[i] += v
}

// stampAdmittance stamps a two-terminal admittance y between a and b.
func (s *acSystem) stampAdmittance(a, b int, y complex128) {
	s.addA(a, a, y)
	s.addA(b, b, y)
	s.addA(a, b, -y)
	s.addA(b, a, -y)
}

// complexLU is an LU factorization with partial pivoting, retained so noise
// analysis can back-substitute many right-hand sides against one factored
// system.
type complexLU struct {
	lu  [][]complex128
	piv []int
	n   int
}

func factorize(a [][]complex128) (*complexLU, error) {
	n := len(a)
	lu := make([][]complex128, n)
	for i := range lu {
		lu[i] = make([]complex128, n)
		copy(lu[i], a[i])
	}
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p := k
		mx := cmplx.Abs(lu[k][k])
		for i := k + 1; i < n; i++ {
			if m := cmplx.Abs(lu[i][k]); m > mx {
				mx, p = m, i
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("circuit: singular AC system at column %d", k)
		}
		if p != k {
			lu[p], lu[k] = lu[k], lu[p]
			piv[p], piv[k] = piv[k], piv[p]
		}
		inv := 1 / lu[k][k]
		for i := k + 1; i < n; i++ {
			f := lu[i][k] * inv
			lu[i][k] = f
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i][j] -= f * lu[k][j]
			}
		}
	}
	return &complexLU{lu: lu, piv: piv, n: n}, nil
}

func (f *complexLU) solve(b []complex128) []complex128 {
	n := f.n
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu[i][j] * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu[i][j] * x[j]
		}
		x[i] /= f.lu[i][i]
	}
	return x
}

// ACResult is the small-signal solution at one frequency.
type ACResult struct {
	circuit *Circuit
	freq    float64
	x       []complex128
	lu      *complexLU
}

// Voltage returns the complex node voltage phasor.
func (r *ACResult) Voltage(node string) complex128 {
	idx, ok := r.circuit.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit: unknown node %q", node))
	}
	if idx < 0 {
		return 0
	}
	return r.x[idx]
}

// Freq returns the analysis frequency in Hz.
func (r *ACResult) Freq() float64 { return r.freq }

// SolveAC performs a small-signal analysis at freq Hz around the given
// operating point (which must come from the same circuit's SolveDC; the
// nonlinear devices hold their linearization internally).
func (c *Circuit) SolveAC(op *OperatingPoint, freq float64) (*ACResult, error) {
	if op == nil || op.circuit != c {
		return nil, fmt.Errorf("circuit: AC analysis requires an operating point of this circuit")
	}
	w := 2 * math.Pi * freq
	s := newACSystem(c.size(), len(c.nodeNames))
	for _, e := range c.elems {
		e.stampAC(s, w)
	}
	lu, err := factorize(s.A)
	if err != nil {
		return nil, err
	}
	x := lu.solve(s.b)
	return &ACResult{circuit: c, freq: freq, x: x, lu: lu}, nil
}

// ACSweep analyzes the circuit at each frequency, returning the complex
// voltage at outNode.
func (c *Circuit) ACSweep(op *OperatingPoint, freqs []float64, outNode string) ([]complex128, error) {
	out := make([]complex128, len(freqs))
	for i, f := range freqs {
		r, err := c.SolveAC(op, f)
		if err != nil {
			return nil, fmt.Errorf("at %g Hz: %w", f, err)
		}
		out[i] = r.Voltage(outNode)
	}
	return out, nil
}
