package circuit

import (
	"math"
	"math/cmplx"
	"testing"
)

func solveDC(t *testing.T, c *Circuit) *OperatingPoint {
	t.Helper()
	op, err := c.SolveDC(DCOptions{})
	if err != nil {
		t.Fatalf("DC solve failed: %v", err)
	}
	return op
}

func TestResistorDividerDC(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 10, 0)
	c.AddResistor("R1", "in", "mid", 1000)
	c.AddResistor("R2", "mid", "0", 3000)
	op := solveDC(t, c)
	if got := op.Voltage("mid"); math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("divider voltage %g, want 7.5", got)
	}
	if got := op.Voltage("in"); math.Abs(got-10) > 1e-9 {
		t.Fatalf("source node %g, want 10", got)
	}
}

func TestInductorIsDCShort(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 5, 0)
	c.AddResistor("R1", "in", "a", 100)
	c.AddInductor("L1", "a", "b", 10e-9)
	c.AddResistor("R2", "b", "0", 100)
	op := solveDC(t, c)
	if got := op.Voltage("a") - op.Voltage("b"); math.Abs(got) > 1e-9 {
		t.Fatalf("inductor DC drop %g, want 0", got)
	}
	if got := op.Voltage("b"); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("V(b) = %g, want 2.5", got)
	}
}

func TestCapacitorIsDCOpen(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 5, 0)
	c.AddResistor("R1", "in", "a", 100)
	c.AddCapacitor("C1", "a", "0", 1e-12)
	op := solveDC(t, c)
	// No DC current: node a sits at the source voltage.
	if got := op.Voltage("a"); math.Abs(got-5) > 1e-6 {
		t.Fatalf("V(a) = %g, want ~5", got)
	}
}

func TestRCLowpassACResponse(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddResistor("R1", "in", "out", 1000)
	c.AddCapacitor("C1", "out", "0", 1e-9)
	op := solveDC(t, c)
	fc := 1 / (2 * math.Pi * 1000 * 1e-9) // 159 kHz
	r, err := c.SolveAC(op, fc)
	if err != nil {
		t.Fatal(err)
	}
	// At the pole: magnitude 1/sqrt(2), phase -45 deg.
	v := r.Voltage("out")
	if math.Abs(cmplx.Abs(v)-1/math.Sqrt2) > 1e-6 {
		t.Fatalf("|H(fc)| = %g, want %g", cmplx.Abs(v), 1/math.Sqrt2)
	}
	if ph := cmplx.Phase(v) * 180 / math.Pi; math.Abs(ph+45) > 0.01 {
		t.Fatalf("phase %g deg, want -45", ph)
	}
	// Deep stopband rolls off 20 dB/decade.
	r2, _ := c.SolveAC(op, 100*fc)
	if got := cmplx.Abs(r2.Voltage("out")); math.Abs(got-0.01) > 0.001 {
		t.Fatalf("|H(100 fc)| = %g, want ~0.01", got)
	}
}

func TestSeriesRLCResonance(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddResistor("R1", "in", "a", 10)
	c.AddInductor("L1", "a", "b", 100e-9)
	c.AddCapacitor("C1", "b", "out", 10e-12)
	c.AddResistor("RL", "out", "0", 10)
	op := solveDC(t, c)
	f0 := 1 / (2 * math.Pi * math.Sqrt(100e-9*10e-12)) // 159 MHz
	r, err := c.SolveAC(op, f0)
	if err != nil {
		t.Fatal(err)
	}
	// At series resonance L and C cancel: pure divider 10/(10+10) = 0.5.
	if got := cmplx.Abs(r.Voltage("out")); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("|H(f0)| = %g, want 0.5", got)
	}
	// Off resonance the response must drop.
	r2, _ := c.SolveAC(op, f0/10)
	if got := cmplx.Abs(r2.Voltage("out")); got > 0.05 {
		t.Fatalf("|H(f0/10)| = %g, want << 0.5", got)
	}
}

func TestVCCSGain(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddResistor("Rs", "in", "x", 50)
	c.AddVCCS("G1", "y", "0", "x", "0", 0.1)
	c.AddResistor("RL", "y", "0", 100)
	op := solveDC(t, c)
	r, err := c.SolveAC(op, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// No input current -> vx = 1; vy = -gm*RL*vx = -10.
	got := r.Voltage("y")
	if math.Abs(real(got)+10) > 1e-9 || math.Abs(imag(got)) > 1e-9 {
		t.Fatalf("VCCS output %v, want -10", got)
	}
}

func TestBJTForwardActiveOperatingPoint(t *testing.T) {
	c := New()
	c.AddVSource("VCC", "vcc", "0", 3, 0)
	c.AddVSource("VB", "vb", "0", 0.75, 0)
	c.AddResistor("RC", "vcc", "c", 300)
	q := c.AddBJT("Q1", "c", "vb", "0", DefaultBJT())
	solveDC(t, c)
	op := q.OperatingPoint()

	// Hand estimate: Ic ~ Is*exp(0.75/Vt)/qb with small corrections.
	icIdeal := 2e-16 * math.Exp(0.75/Vt)
	if op.Ic < 0.7*icIdeal || op.Ic > 1.3*icIdeal {
		t.Fatalf("Ic = %g, expected near %g", op.Ic, icIdeal)
	}
	// Beta relation.
	if beta := op.Ic / op.Ib; beta < 70 || beta > 130 {
		t.Fatalf("Ic/Ib = %g, expected near Bf=100", beta)
	}
	// Transconductance close to Ic/Vt (within high-injection correction).
	if op.Gm < 0.7*op.Ic/Vt || op.Gm > 1.1*op.Ic/Vt {
		t.Fatalf("gm = %g vs Ic/Vt = %g", op.Gm, op.Ic/Vt)
	}
	// Forward active: Vbc negative.
	if op.Vbc >= 0 {
		t.Fatalf("Vbc = %g, want negative (forward active)", op.Vbc)
	}
}

func TestBJTEarlyEffect(t *testing.T) {
	// Higher collector voltage -> slightly higher Ic through Vaf.
	icAt := func(vc float64) float64 {
		c := New()
		c.AddVSource("VC", "c", "0", vc, 0)
		c.AddVSource("VB", "vb", "0", 0.72, 0)
		q := c.AddBJT("Q1", "c", "vb", "0", DefaultBJT())
		if _, err := c.SolveDC(DCOptions{}); err != nil {
			t.Fatalf("DC at Vc=%g: %v", vc, err)
		}
		return q.OperatingPoint().Ic
	}
	i1, i3 := icAt(1), icAt(3)
	if i3 <= i1 {
		t.Fatalf("Early effect missing: Ic(3V)=%g <= Ic(1V)=%g", i3, i1)
	}
	// Slope should correspond to Vaf ~ 60 V: (i3-i1)/i1 ~ 2/60.
	rel := (i3 - i1) / i1
	if rel < 0.01 || rel > 0.09 {
		t.Fatalf("Early slope %g, expected ~0.033", rel)
	}
}

func TestBJTHighInjectionCompression(t *testing.T) {
	// gm/Ic should drop as the device is driven past Ikf.
	gmOverIc := func(vb float64) float64 {
		c := New()
		c.AddVSource("VC", "c", "0", 3, 0)
		c.AddVSource("VB", "vb", "0", vb, 0)
		p := DefaultBJT()
		p.Ikf = 1e-3
		q := c.AddBJT("Q1", "c", "vb", "0", p)
		if _, err := c.SolveDC(DCOptions{}); err != nil {
			t.Fatalf("DC at Vb=%g: %v", vb, err)
		}
		op := q.OperatingPoint()
		return op.Gm / op.Ic
	}
	low := gmOverIc(0.65)  // well below knee
	high := gmOverIc(0.85) // far above knee
	if high >= 0.9*low {
		t.Fatalf("high injection should compress gm/Ic: low=%g high=%g", low, high)
	}
}

func TestBJTCommonEmitterACGain(t *testing.T) {
	// Degenerated CE stage: |gain| ~ gm*RC/(1+gm*RE) at low frequency.
	c := New()
	c.AddVSource("VCC", "vcc", "0", 3, 0)
	c.AddVSource("VIN", "vb", "0", 0.8, 1)
	c.AddResistor("RC", "vcc", "c", 500)
	c.AddResistor("RE", "e", "0", 100)
	q := c.AddBJT("Q1", "c", "vb", "e", DefaultBJT())
	op := solveDC(t, c)
	bop := q.OperatingPoint()
	r, err := c.SolveAC(op, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	got := cmplx.Abs(r.Voltage("c"))
	want := bop.Gm * 500 / (1 + bop.Gm*100)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("CE gain %g, analytic estimate %g", got, want)
	}
	// Output inverts.
	if ph := cmplx.Phase(r.Voltage("c")); math.Abs(math.Abs(ph)-math.Pi) > 0.2 {
		t.Fatalf("CE phase %g, want ~pi", ph)
	}
}

func TestNoiseAnalysisIdealAmplifier(t *testing.T) {
	// Noiseless VCCS amp: NF set by RL referred back through the gain.
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddResistor("Rs", "in", "x", 50)
	c.AddVCCS("G1", "y", "0", "x", "0", 0.1)
	c.AddResistor("RL", "y", "0", 100)
	op := solveDC(t, c)
	rep, err := c.NoiseAnalysis(op, 1e6, "y", "Rs")
	if err != nil {
		t.Fatal(err)
	}
	// Rs contribution: (4kT/50)*(50*0.1*100)^2 ; RL: (4kT/100)*100^2.
	k4t := 4 * KBoltz * TempK
	wantRs := k4t / 50 * 500 * 500
	wantRL := k4t / 100 * 100 * 100
	if math.Abs(rep.SourcePSD-wantRs)/wantRs > 1e-9 {
		t.Fatalf("source PSD %g, want %g", rep.SourcePSD, wantRs)
	}
	wantNF := 10 * math.Log10((wantRs+wantRL)/wantRs)
	if math.Abs(rep.NoiseFigureDB-wantNF) > 1e-9 {
		t.Fatalf("NF %g dB, want %g", rep.NoiseFigureDB, wantNF)
	}
	if rep.OutputPSD <= rep.SourcePSD {
		t.Fatal("total noise must exceed source-only noise")
	}
}

func TestNoiseAnalysisUnknownSource(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddResistor("Rs", "in", "out", 50)
	c.AddResistor("RL", "out", "0", 50)
	op := solveDC(t, c)
	if _, err := c.NoiseAnalysis(op, 1e6, "out", "nope"); err == nil {
		t.Fatal("expected error for unknown source resistor")
	}
}

func TestBJTNoiseIncreasesWithRb(t *testing.T) {
	nf := func(rb float64) float64 {
		c := New()
		c.AddVSource("VCC", "vcc", "0", 3, 0)
		c.AddVSource("VIN", "in", "0", 0, 1)
		c.AddResistor("Rs", "in", "x", 50)
		c.AddCapacitor("Cc", "x", "b", 1e-9) // DC-blocks the source
		c.AddResistor("RB1", "vcc", "b", 40000)
		c.AddResistor("RB2", "b", "0", 13000)
		c.AddResistor("RC", "vcc", "c", 500)
		p := DefaultBJT()
		p.Rb = rb
		c.AddBJT("Q1", "c", "b", "0", p)
		op, err := c.SolveDC(DCOptions{})
		if err != nil {
			t.Fatalf("DC: %v", err)
		}
		rep, err := c.NoiseAnalysis(op, 100e6, "c", "Rs")
		if err != nil {
			t.Fatal(err)
		}
		return rep.NoiseFigureDB
	}
	lo, hi := nf(5), nf(60)
	if hi <= lo {
		t.Fatalf("NF must grow with base resistance: NF(5)=%g NF(60)=%g", lo, hi)
	}
	if lo < 0.1 || hi > 20 {
		t.Fatalf("NF out of plausible range: %g, %g", lo, hi)
	}
}

func TestVolterraUndegeneratedBJTClassicIIP3(t *testing.T) {
	// Without feedback the exponential gives AIP3 = sqrt(8)*Vt at the
	// junction: about -9.6 dBm in 50 ohms when the input transfer is 1.
	c := New()
	c.AddVSource("VCC", "vcc", "0", 3, 0)
	c.AddVSource("VIN", "in", "0", 0.73, 1)
	c.AddResistor("RC", "vcc", "c", 300)
	p := DefaultBJT()
	p.Rb = 0  // drive the junction directly
	p.Ikf = 1 // knee far away
	q := c.AddBJT("Q1", "c", "in", "0", p)
	op := solveDC(t, c)
	rep, err := c.VolterraIIP3(op, q, "in", 900e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(8) * Vt
	if math.Abs(rep.AIIP3-want)/want > 0.05 {
		t.Fatalf("AIP3 = %g, want %g", rep.AIIP3, want)
	}
	// sqrt(8)*Vt peak is 53.5 uW into 50 ohms: -12.7 dBm.
	if math.Abs(rep.IIP3DBm-(-12.7)) > 0.5 {
		t.Fatalf("IIP3 = %g dBm, want about -12.7", rep.IIP3DBm)
	}
}

func TestVolterraDegenerationImprovesIIP3(t *testing.T) {
	// Two real circuits at the same collector current: grounded emitter vs
	// a 25-ohm degeneration resistor. feedbackZ must describe the actual
	// circuit so the AC transfer and the loop model stay consistent.
	analyze := func(re float64, vb float64) float64 {
		c := New()
		c.AddVSource("VCC", "vcc", "0", 3, 0)
		c.AddVSource("VIN", "in", "0", vb, 1)
		c.AddResistor("RC", "vcc", "c", 300)
		q := c.AddBJT("Q1", "c", "in", "e", DefaultBJT())
		if re > 0 {
			c.AddResistor("RE", "e", "0", re)
		} else {
			c.AddResistor("RE", "e", "0", 1e-3)
		}
		op := solveDC(t, c)
		rep, err := c.VolterraIIP3(op, q, "in", 900e6, complex(math.Max(re, 1e-3), 0))
		if err != nil {
			t.Fatal(err)
		}
		// Keep bias comparable across the two circuits.
		if ic := q.OperatingPoint().Ic; ic < 0.5e-3 || ic > 5e-3 {
			t.Fatalf("bias Ic %g out of window at RE=%g", ic, re)
		}
		return rep.IIP3DBm
	}
	plain := analyze(0, 0.75)
	deg := analyze(25, 0.80) // higher Vb compensates the RE drop
	if deg <= plain+3 {
		t.Fatalf("degeneration should clearly raise IIP3: %g vs %g dBm", deg, plain)
	}
}

func TestBehavioralPolyReproducesIIP3(t *testing.T) {
	rep := &DistortionReport{AIIP3: 0.5, G1: 1, G2: 0.1, InputTransfer: 1}
	c1, _, c3 := rep.BehavioralPoly(complex(10, 0))
	if c1 != 10 {
		t.Fatalf("c1 = %g", c1)
	}
	// Recover AIP3 from the polynomial.
	a := math.Sqrt(4.0 / 3.0 * math.Abs(c1/c3))
	if math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("polynomial AIP3 %g, want 0.5", a)
	}
	if c3 >= 0 {
		t.Fatal("c3 must be compressive (negative)")
	}
}

func TestACSweepMonotoneLowpass(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddResistor("R1", "in", "out", 1000)
	c.AddCapacitor("C1", "out", "0", 1e-9)
	op := solveDC(t, c)
	freqs := []float64{1e3, 1e4, 1e5, 1e6, 1e7}
	vs, err := c.ACSweep(op, freqs, "out")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vs); i++ {
		if cmplx.Abs(vs[i]) >= cmplx.Abs(vs[i-1]) {
			t.Fatalf("lowpass not monotone at %g Hz", freqs[i])
		}
	}
}

func TestSolveACRequiresMatchingOP(t *testing.T) {
	c1 := New()
	c1.AddVSource("V1", "in", "0", 1, 1)
	c1.AddResistor("R1", "in", "0", 100)
	op := solveDC(t, c1)
	c2 := New()
	c2.AddResistor("R1", "a", "0", 100)
	if _, err := c2.SolveAC(op, 1e6); err == nil {
		t.Fatal("expected error for foreign operating point")
	}
}

func TestElementValidation(t *testing.T) {
	c := New()
	for _, fn := range []func(){
		func() { c.AddResistor("R", "a", "b", 0) },
		func() { c.AddCapacitor("C", "a", "b", -1) },
		func() { c.AddInductor("L", "a", "b", 0) },
		func() { c.AddBJT("Q", "c", "b", "e", BJTParams{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for invalid element value")
				}
			}()
			fn()
		}()
	}
}
