package circuit

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// OperatingPoint is the result of a DC analysis.
type OperatingPoint struct {
	circuit  *Circuit
	solution []float64
}

// Voltage returns the DC voltage of a named node.
func (op *OperatingPoint) Voltage(node string) float64 {
	idx, ok := op.circuit.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit: unknown node %q", node))
	}
	return voltageAt(op.solution, idx)
}

// DCOptions tunes the Newton solve.
type DCOptions struct {
	MaxIter int     // per Newton attempt (default 200)
	AbsTol  float64 // convergence on max |dx| (default 1e-9)
}

// SolveDC computes the DC operating point with Newton-Raphson iteration and
// SPICE-style junction limiting. If plain Newton fails, the solver falls
// back to source stepping: all independent sources are ramped from 10% to
// 100% while reusing each converged point as the next initial guess.
func (c *Circuit) SolveDC(opt DCOptions) (*OperatingPoint, error) {
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 1e-9
	}
	x := make([]float64, c.size())
	if err := c.newton(x, opt); err == nil {
		return &OperatingPoint{circuit: c, solution: x}, nil
	}
	// Source stepping homotopy.
	for i := range x {
		x[i] = 0
	}
	steps := []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
	for _, lambda := range steps {
		c.setSourceScale(lambda)
		if err := c.newton(x, opt); err != nil {
			c.setSourceScale(1)
			return nil, fmt.Errorf("circuit: DC failed at source step %.0f%%: %w", lambda*100, err)
		}
	}
	c.setSourceScale(1)
	return &OperatingPoint{circuit: c, solution: x}, nil
}

// anyLimited reports whether any nonlinear device evaluated away from the
// requested solution during the last stamp pass.
func (c *Circuit) anyLimited() bool {
	for _, e := range c.elems {
		if le, ok := e.(limitedElement); ok && le.limitedNow() {
			return true
		}
	}
	return false
}

func (c *Circuit) setSourceScale(lambda float64) {
	for _, e := range c.elems {
		switch s := e.(type) {
		case *vsource:
			s.scale = lambda
		case *isource:
			s.scale = lambda
		}
	}
}

// newton iterates J x_new = rhs to convergence, updating x in place.
func (c *Circuit) newton(x []float64, opt DCOptions) error {
	n := c.size()
	for iter := 0; iter < opt.MaxIter; iter++ {
		s := newSystem(n, len(c.nodeNames))
		for _, e := range c.elems {
			e.stampDC(s, x)
		}
		xnew, err := linalg.SolveLinear(linalg.FromRows(s.J), s.rhs)
		if err != nil {
			return fmt.Errorf("circuit: singular Newton system at iteration %d: %w", iter, err)
		}
		maxDelta := 0.0
		for i := range x {
			if d := math.Abs(xnew[i] - x[i]); d > maxDelta {
				maxDelta = d
			}
			if math.IsNaN(xnew[i]) || math.IsInf(xnew[i], 0) {
				return fmt.Errorf("circuit: Newton diverged (non-finite solution) at iteration %d", iter)
			}
		}
		copy(x, xnew)
		if maxDelta < opt.AbsTol && !c.anyLimited() {
			return nil
		}
	}
	return fmt.Errorf("circuit: Newton did not converge in %d iterations", opt.MaxIter)
}
