package circuit

import "math"

// ---------------------------------------------------------------- resistor

type resistor struct {
	label  string
	na, nb int
	r      float64
}

func (e *resistor) name() string       { return e.label }
func (e *resistor) prepare(c *Circuit) {}
func (e *resistor) stampDC(s *system, x []float64) {
	s.stampConductance(e.na, e.nb, 1/e.r)
}
func (e *resistor) stampAC(s *acSystem, w float64) {
	s.stampAdmittance(e.na, e.nb, complex(1/e.r, 0))
}

// noiseSources: thermal current noise 4kT/R.
func (e *resistor) noiseSources(freq float64) []NoiseSource {
	return []NoiseSource{{Label: e.label + ".thermal", From: e.na, To: e.nb, PSD: 4 * KBoltz * TempK / e.r}}
}

// --------------------------------------------------------------- capacitor

type capacitor struct {
	label  string
	na, nb int
	cap    float64
}

func (e *capacitor) name() string       { return e.label }
func (e *capacitor) prepare(c *Circuit) {}
func (e *capacitor) stampDC(s *system, x []float64) {
	// Open circuit at DC; a gmin leak keeps otherwise-floating nodes
	// (e.g. behind coupling caps) numerically anchored.
	s.stampConductance(e.na, e.nb, gmin)
}
func (e *capacitor) stampAC(s *acSystem, w float64) {
	s.stampAdmittance(e.na, e.nb, complex(0, w*e.cap))
}

// ---------------------------------------------------------------- inductor

type inductor struct {
	label  string
	na, nb int
	l      float64
	branch int
}

func (e *inductor) name() string { return e.label }
func (e *inductor) prepare(c *Circuit) {
	e.branch = c.newBranch()
}

// DC: inductor is a short — branch equation V(a) - V(b) = 0.
func (e *inductor) stampDC(s *system, x []float64) {
	bi := s.branchBase + e.branch
	s.addJ(e.na, bi, 1)
	s.addJ(e.nb, bi, -1)
	s.addJ(bi, e.na, 1)
	s.addJ(bi, e.nb, -1)
}

// AC: V(a) - V(b) - jwL*I = 0.
func (e *inductor) stampAC(s *acSystem, w float64) {
	bi := s.branchBase + e.branch
	s.addA(e.na, bi, 1)
	s.addA(e.nb, bi, -1)
	s.addA(bi, e.na, 1)
	s.addA(bi, e.nb, -1)
	s.addA(bi, bi, complex(0, -w*e.l))
}

// ----------------------------------------------------------------- vsource

type vsource struct {
	label  string
	na, nb int
	dc, ac float64
	branch int
	// scale supports source-stepping homotopy during DC solve.
	scale float64
}

func (e *vsource) name() string { return e.label }
func (e *vsource) prepare(c *Circuit) {
	e.branch = c.newBranch()
	e.scale = 1
}
func (e *vsource) stampDC(s *system, x []float64) {
	bi := s.branchBase + e.branch
	s.addJ(e.na, bi, 1)
	s.addJ(e.nb, bi, -1)
	s.addJ(bi, e.na, 1)
	s.addJ(bi, e.nb, -1)
	s.addRHS(bi, e.dc*e.scale)
}
func (e *vsource) stampAC(s *acSystem, w float64) {
	bi := s.branchBase + e.branch
	s.addA(e.na, bi, 1)
	s.addA(e.nb, bi, -1)
	s.addA(bi, e.na, 1)
	s.addA(bi, e.nb, -1)
	s.addB(bi, complex(e.ac, 0))
}

// ----------------------------------------------------------------- isource

type isource struct {
	label  string
	na, nb int
	dc, ac float64
	scale  float64
}

func (e *isource) name() string       { return e.label }
func (e *isource) prepare(c *Circuit) { e.scale = 1 }
func (e *isource) stampDC(s *system, x []float64) {
	s.stampCurrent(e.na, e.nb, e.dc*e.scale)
}
func (e *isource) stampAC(s *acSystem, w float64) {
	s.addB(e.na, complex(-e.ac, 0))
	s.addB(e.nb, complex(e.ac, 0))
}

// -------------------------------------------------------------------- vccs

type vccs struct {
	label            string
	na, nb, ncp, ncn int
	gm               float64
}

func (e *vccs) name() string       { return e.label }
func (e *vccs) prepare(c *Circuit) {}
func (e *vccs) stampDC(s *system, x []float64) {
	s.addJ(e.na, e.ncp, e.gm)
	s.addJ(e.na, e.ncn, -e.gm)
	s.addJ(e.nb, e.ncp, -e.gm)
	s.addJ(e.nb, e.ncn, e.gm)
}
func (e *vccs) stampAC(s *acSystem, w float64) {
	g := complex(e.gm, 0)
	s.addA(e.na, e.ncp, g)
	s.addA(e.na, e.ncn, -g)
	s.addA(e.nb, e.ncp, -g)
	s.addA(e.nb, e.ncn, g)
}

// --------------------------------------------------------------------- BJT

// BJT is a simplified Gummel-Poon npn transistor. The forward-active DC
// model includes beta, Early effect (Vaf) and high-injection knee (Ikf);
// small-signal adds the hybrid-pi elements (gm, gpi, gmu, go, Cje, Cjc)
// derived analytically from the DC solution, and noise adds base/collector
// shot noise plus base-resistance thermal noise.
type BJT struct {
	label           string
	p               BJTParams
	nc, nb, ne, nbi int

	// limited junction voltages (SPICE pnjlim state)
	vbeState, vbcState float64
	// wasLimited reports whether the last stampDC evaluated the junctions
	// at voltages different from the ones the solution requested — Newton
	// must not declare convergence while this is true.
	wasLimited bool

	// operating point, filled by the DC solve
	op BJTOperatingPoint
}

// BJTOperatingPoint captures the linearization of a BJT.
type BJTOperatingPoint struct {
	Vbe, Vbc float64
	Ic, Ib   float64
	Gm       float64 // dIcc/dVbe (forward transconductance)
	Gmr      float64 // dIcc/dVbc (includes Early effect)
	Gpi      float64 // dIbe/dVbe
	Gmu      float64 // dIbc/dVbc
	Qb       float64 // normalized base charge
}

// OperatingPoint returns the transistor's linearization after a DC solve.
func (q *BJT) OperatingPoint() BJTOperatingPoint { return q.op }

// Params returns the device parameters.
func (q *BJT) Params() BJTParams { return q.p }

func (q *BJT) name() string { return q.label }

func (q *BJT) prepare(c *Circuit) {
	q.vbeState = 0.65
	q.vbcState = -1
}

// vcrit is the junction critical voltage for pnjlim.
func (q *BJT) vcrit() float64 {
	return Vt * math.Log(Vt/(math.Sqrt2*q.p.Is))
}

// pnjlim is the classic SPICE junction-voltage limiter: exponential-region
// updates are compressed logarithmically so Newton cannot overflow exp().
func pnjlim(vnew, vold, vt, vcrit float64) float64 {
	if vnew > vcrit && math.Abs(vnew-vold) > 2*vt {
		if vold > 0 {
			arg := 1 + (vnew-vold)/vt
			if arg > 0 {
				vnew = vold + vt*math.Log(arg)
			} else {
				vnew = vcrit
			}
		} else {
			vnew = vt * math.Log(vnew/vt)
		}
	}
	return vnew
}

// eval computes currents and conductances at junction voltages (vbe, vbc).
func (q *BJT) eval(vbe, vbc float64) (ibe, ibc, icc, gpi, gmu, gmf, gmr float64) {
	p := q.p
	expbe := math.Exp(vbe / Vt)
	expbc := math.Exp(vbc / Vt)
	iff := p.Is * (expbe - 1)
	ir := p.Is * (expbc - 1)
	dif := p.Is * expbe / Vt // dIf/dVbe
	dir := p.Is * expbc / Vt // dIr/dVbc

	// Normalized base charge with Early effect and forward knee.
	q1 := 1 / (1 - vbc/p.Vaf)
	dq1 := q1 * q1 / p.Vaf // dq1/dVbc
	q2 := iff / p.Ikf
	root := math.Sqrt(1 + 4*q2)
	qb := q1 * (1 + root) / 2
	dqbVbe := q1 * dif / p.Ikf / root
	dqbVbc := dq1 * (1 + root) / 2

	icc = (iff - ir) / qb
	gmf = (dif*qb - (iff-ir)*dqbVbe) / (qb * qb)
	gmr = (-dir*qb - (iff-ir)*dqbVbc) / (qb * qb)

	ibe = iff / p.Bf
	gpi = dif / p.Bf
	ibc = ir / p.Br
	gmu = dir / p.Br

	q.op.Qb = qb
	return
}

func (q *BJT) stampDC(s *system, x []float64) {
	// Base resistance as linear conductance between external and internal
	// base nodes.
	if q.p.Rb > 0 {
		s.stampConductance(q.nb, q.nbi, 1/q.p.Rb)
	}

	vbeReq := voltageAt(x, q.nbi) - voltageAt(x, q.ne)
	vbcReq := voltageAt(x, q.nbi) - voltageAt(x, q.nc)
	vc := q.vcrit()
	vbe := pnjlim(vbeReq, q.vbeState, Vt, vc)
	vbc := pnjlim(vbcReq, q.vbcState, Vt, vc)
	q.wasLimited = abs(vbe-vbeReq) > 1e-6 || abs(vbc-vbcReq) > 1e-6
	q.vbeState, q.vbcState = vbe, vbc

	ibe, ibc, icc, gpi, gmu, gmf, gmr := q.eval(vbe, vbc)

	// Convergence aids.
	gpi += gmin
	gmu += gmin
	ibe += gmin * vbe
	ibc += gmin * vbc

	// Base-emitter diode: current ibe from bi to e.
	s.stampConductance(q.nbi, q.ne, gpi)
	s.stampCurrent(q.nbi, q.ne, ibe-gpi*vbe)
	// Base-collector diode: current ibc from bi to c.
	s.stampConductance(q.nbi, q.nc, gmu)
	s.stampCurrent(q.nbi, q.nc, ibc-gmu*vbc)
	// Transport current icc into collector, out of emitter, controlled by
	// vbe and vbc.
	s.addJ(q.nc, q.nbi, gmf+gmr)
	s.addJ(q.nc, q.ne, -gmf)
	s.addJ(q.nc, q.nc, -gmr)
	s.addRHS(q.nc, gmf*vbe+gmr*vbc-icc)
	s.addJ(q.ne, q.nbi, -(gmf + gmr))
	s.addJ(q.ne, q.ne, gmf)
	s.addJ(q.ne, q.nc, gmr)
	s.addRHS(q.ne, -(gmf*vbe + gmr*vbc - icc))

	// Record the operating point (final iteration wins).
	q.op.Vbe, q.op.Vbc = vbe, vbc
	q.op.Ic = icc - ibc
	q.op.Ib = ibe + ibc
	q.op.Gm, q.op.Gmr, q.op.Gpi, q.op.Gmu = gmf, gmr, gpi, gmu
}

func (q *BJT) stampAC(s *acSystem, w float64) {
	if q.p.Rb > 0 {
		s.stampAdmittance(q.nb, q.nbi, complex(1/q.p.Rb, 0))
	}
	op := q.op
	// Junction conductances and capacitances.
	s.stampAdmittance(q.nbi, q.ne, complex(op.Gpi, w*q.p.Cje))
	s.stampAdmittance(q.nbi, q.nc, complex(op.Gmu, w*q.p.Cjc))
	// Transport transconductances.
	gmf, gmr := complex(op.Gm, 0), complex(op.Gmr, 0)
	s.addA(q.nc, q.nbi, gmf+gmr)
	s.addA(q.nc, q.ne, -gmf)
	s.addA(q.nc, q.nc, -gmr)
	s.addA(q.ne, q.nbi, -(gmf + gmr))
	s.addA(q.ne, q.ne, gmf)
	s.addA(q.ne, q.nc, gmr)
}

// limitedNow reports whether the last evaluation was junction-limited.
func (q *BJT) limitedNow() bool { return q.wasLimited }

// noiseSources: base-resistance thermal, base shot, collector shot.
func (q *BJT) noiseSources(freq float64) []NoiseSource {
	var out []NoiseSource
	if q.p.Rb > 0 {
		out = append(out, NoiseSource{Label: q.label + ".rb", From: q.nb, To: q.nbi, PSD: 4 * KBoltz * TempK / q.p.Rb})
	}
	out = append(out,
		NoiseSource{Label: q.label + ".ib-shot", From: q.nbi, To: q.ne, PSD: 2 * QElectron * math.Max(q.op.Ib, 0)},
		NoiseSource{Label: q.label + ".ic-shot", From: q.nc, To: q.ne, PSD: 2 * QElectron * math.Max(q.op.Ic, 0)},
	)
	return out
}
