package circuit

import (
	"math"
	"testing"
)

func TestTransientRCStepResponse(t *testing.T) {
	// RC charging from 0 to 1 V: v(t) = 1 - exp(-t/RC).
	c := New()
	c.AddVSource("V1", "in", "0", 0, 0)
	c.AddResistor("R1", "in", "out", 1000)
	c.AddCapacitor("C1", "out", "0", 1e-9) // tau = 1 us
	op := solveDC(t, c)
	tau := 1e-6
	res, err := c.SolveTransient(op, TransientOptions{
		Dt:    tau / 200,
		Steps: 1000, // 5 tau
		Sources: map[string]func(float64) float64{
			"V1": func(tt float64) float64 { return 1 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage("out")
	for _, chk := range []struct{ at, want float64 }{
		{tau, 1 - math.Exp(-1)},
		{2 * tau, 1 - math.Exp(-2)},
		{5 * tau, 1 - math.Exp(-5)},
	} {
		idx := int(chk.at / res.Dt)
		if math.Abs(v[idx]-chk.want) > 0.01 {
			t.Fatalf("v(%g) = %g, want %g", chk.at, v[idx], chk.want)
		}
	}
}

func TestTransientLCOscillation(t *testing.T) {
	// A charged capacitor across an inductor (with tiny loss) rings at
	// f0 = 1/(2*pi*sqrt(LC)).
	c := New()
	c.AddVSource("V1", "a", "0", 1, 0)    // biases L with a small DC current
	c.AddResistor("Rsw", "a", "n", 100e3) // large: keeps the parallel tank high-Q
	c.AddCapacitor("C1", "n", "0", 1e-9)
	c.AddInductor("L1", "n", "0", 1e-6) // f0 ~ 5.03 MHz
	op := solveDC(t, c)
	// During transient, drop the source to 0 and watch the tank ring
	// through the 1-ohm path... the source at 0 damps it; instead keep the
	// source but verify the ringing frequency during the decay.
	f0 := 1 / (2 * math.Pi * math.Sqrt(1e-6*1e-9))
	res, err := c.SolveTransient(op, TransientOptions{
		Dt:    1 / (f0 * 400),
		Steps: 2000,
		Sources: map[string]func(float64) float64{
			"V1": func(tt float64) float64 { return 0 },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage("n")
	// Count zero crossings over the record to estimate frequency.
	crossings := 0
	for i := 1; i < len(v); i++ {
		if (v[i-1] < 0) != (v[i] < 0) {
			crossings++
		}
	}
	dur := float64(res.Steps()-1) * res.Dt
	fEst := float64(crossings) / 2 / dur
	if math.Abs(fEst-f0)/f0 > 0.05 {
		t.Fatalf("ringing at %g Hz, want %g", fEst, f0)
	}
}

func TestTransientCEAmplifierMatchesACGain(t *testing.T) {
	// Drive a resistively-degenerated CE stage with a small low-frequency
	// sine; the transient output amplitude must match the AC analysis.
	build := func() (*Circuit, *OperatingPoint) {
		c := New()
		c.AddVSource("VCC", "vcc", "0", 3, 0)
		c.AddVSource("VIN", "vb", "0", 0.8, 1)
		c.AddResistor("RC", "vcc", "c", 500)
		c.AddResistor("RE", "e", "0", 100)
		c.AddBJT("Q1", "c", "vb", "e", DefaultBJT())
		op := solveDC(t, c)
		return c, op
	}
	c, op := build()
	ac, err := c.SolveAC(op, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	wantGain := cabs(ac.Voltage("c"))

	const amp = 1e-3 // stay in the linear region
	f := 1e6
	res, err := c.SolveTransient(op, TransientOptions{
		Dt:    1 / (f * 200),
		Steps: 600, // 3 periods
		Sources: map[string]func(float64) float64{
			"VIN": func(tt float64) float64 { return 0.8 + amp*math.Sin(2*math.Pi*f*tt) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Voltage("c")
	// Peak-to-peak over the last period.
	lo, hi := v[len(v)-1], v[len(v)-1]
	for _, x := range v[len(v)-200:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	gotGain := (hi - lo) / 2 / amp
	if math.Abs(gotGain-wantGain)/wantGain > 0.05 {
		t.Fatalf("transient gain %g vs AC gain %g", gotGain, wantGain)
	}
}

func TestTransientValidation(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", 1, 0)
	c.AddResistor("R1", "a", "0", 100)
	op := solveDC(t, c)
	if _, err := c.SolveTransient(op, TransientOptions{Dt: 0, Steps: 10}); err == nil {
		t.Fatal("zero Dt must error")
	}
	if _, err := c.SolveTransient(op, TransientOptions{Dt: 1e-9, Steps: 0}); err == nil {
		t.Fatal("zero steps must error")
	}
	c2 := New()
	c2.AddResistor("R1", "x", "0", 1)
	if _, err := c2.SolveTransient(op, TransientOptions{Dt: 1e-9, Steps: 1}); err == nil {
		t.Fatal("foreign operating point must error")
	}
}

func TestTransientUnknownNodePanics(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", 1, 0)
	c.AddResistor("R1", "a", "0", 100)
	op := solveDC(t, c)
	res, err := c.SolveTransient(op, TransientOptions{Dt: 1e-9, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Voltage("zz")
}

func cabs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}
