package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// NoiseReport is the result of a spot-noise analysis at one frequency.
type NoiseReport struct {
	Freq           float64
	OutputPSD      float64            // total output noise voltage PSD, V^2/Hz
	Contributions  map[string]float64 // per-source output PSD, V^2/Hz
	SourcePSD      float64            // output PSD due to the designated source resistor
	GainFromSource float64            // |vout/vsource-EMF| magnitude at Freq
	NoiseFigureDB  float64            // 10*log10(total/source-only)
}

// NoiseAnalysis computes the output noise at outNode at frequency freq by
// injecting each device noise current across the factored AC system and
// accumulating |transimpedance|^2 * PSD. sourceName identifies the source
// resistor whose thermal noise defines the noise-figure reference (the
// 50-ohm generator impedance in an LNA testbench).
func (c *Circuit) NoiseAnalysis(op *OperatingPoint, freq float64, outNode, sourceName string) (*NoiseReport, error) {
	r, err := c.SolveAC(op, freq)
	if err != nil {
		return nil, err
	}
	outIdx, ok := c.nodeIndex[outNode]
	if !ok || outIdx < 0 {
		return nil, fmt.Errorf("circuit: noise output node %q unknown or ground", outNode)
	}
	rep := &NoiseReport{Freq: freq, Contributions: map[string]float64{}}
	rep.GainFromSource = cmplx.Abs(r.Voltage(outNode))

	sourcePrefix := sourceName + "."
	foundSource := false
	for _, e := range c.elems {
		nc, ok := e.(noiseContributor)
		if !ok {
			continue
		}
		for _, src := range nc.noiseSources(freq) {
			// Inject a unit AC current from src.From to src.To and read the
			// output voltage: that is the transimpedance Z(out; src).
			b := make([]complex128, c.size())
			if src.From >= 0 {
				b[src.From] -= 1
			}
			if src.To >= 0 {
				b[src.To] += 1
			}
			x := r.lu.solve(b)
			z2 := cmplx.Abs(x[outIdx])
			contrib := z2 * z2 * src.PSD
			rep.Contributions[src.Label] += contrib
			rep.OutputPSD += contrib
			if src.Label == sourcePrefix+"thermal" || src.Label == sourceName {
				rep.SourcePSD += contrib
				foundSource = true
			}
		}
	}
	if !foundSource {
		return nil, fmt.Errorf("circuit: source resistor %q not found among noise contributors", sourceName)
	}
	if rep.SourcePSD <= 0 {
		return nil, fmt.Errorf("circuit: source resistor %q contributes no output noise (zero gain?)", sourceName)
	}
	rep.NoiseFigureDB = 10 * math.Log10(rep.OutputPSD/rep.SourcePSD)
	return rep, nil
}
