package circuit

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// TransientResult holds a time-domain simulation: node voltages sampled at
// a fixed step.
type TransientResult struct {
	circuit *Circuit
	Dt      float64
	x       [][]float64 // [step][unknown]
}

// Steps returns the number of stored time points.
func (r *TransientResult) Steps() int { return len(r.x) }

// Voltage returns the waveform of a named node.
func (r *TransientResult) Voltage(node string) []float64 {
	idx, ok := r.circuit.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit: unknown node %q", node))
	}
	out := make([]float64, len(r.x))
	if idx < 0 {
		return out
	}
	for i, xs := range r.x {
		out[i] = xs[idx]
	}
	return out
}

// TransientOptions configures a transient run.
type TransientOptions struct {
	Dt      float64 // time step, seconds
	Steps   int     // number of steps
	MaxIter int     // Newton iterations per step (default 50)
	AbsTol  float64 // Newton convergence (default 1e-9)
	// Sources maps a voltage/current source name to a time-varying value
	// that overrides its DC value during the transient.
	Sources map[string]func(t float64) float64
}

// transientStamper is implemented by elements with dynamic (companion
// model) transient stamps.
type transientStamper interface {
	// stampTransient stamps the element for the step ending at time t,
	// given the current Newton guess x and the previous accepted solution
	// xPrev. dt is the step size.
	stampTransient(s *system, x, xPrev []float64, dt, t float64, src func(name string) (float64, bool))
}

// SolveTransient integrates the circuit with backward-Euler companion
// models starting from the given operating point (use SolveDC first). It
// is the reference engine used to validate the behavioral signature-path
// models against "real" circuit dynamics.
func (c *Circuit) SolveTransient(op *OperatingPoint, opt TransientOptions) (*TransientResult, error) {
	if op == nil || op.circuit != c {
		return nil, fmt.Errorf("circuit: transient needs an operating point of this circuit")
	}
	if opt.Dt <= 0 || opt.Steps <= 0 {
		return nil, fmt.Errorf("circuit: transient needs positive Dt and Steps")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	if opt.AbsTol <= 0 {
		opt.AbsTol = 1e-9
	}
	srcLookup := func(t float64) func(string) (float64, bool) {
		return func(name string) (float64, bool) {
			if opt.Sources == nil {
				return 0, false
			}
			f, ok := opt.Sources[name]
			if !ok {
				return 0, false
			}
			return f(t), true
		}
	}

	n := c.size()
	xPrev := make([]float64, n)
	copy(xPrev, op.solution)
	res := &TransientResult{circuit: c, Dt: opt.Dt}
	res.x = append(res.x, append([]float64(nil), xPrev...))

	x := make([]float64, n)
	copy(x, xPrev)
	for step := 1; step <= opt.Steps; step++ {
		t := float64(step) * opt.Dt
		lookup := srcLookup(t)
		converged := false
		for iter := 0; iter < opt.MaxIter; iter++ {
			s := newSystem(n, len(c.nodeNames))
			for _, e := range c.elems {
				if ts, ok := e.(transientStamper); ok {
					ts.stampTransient(s, x, xPrev, opt.Dt, t, lookup)
				} else {
					e.stampDC(s, x)
				}
			}
			xNew, err := linalg.SolveLinear(linalg.FromRows(s.J), s.rhs)
			if err != nil {
				return nil, fmt.Errorf("circuit: transient step %d: %w", step, err)
			}
			maxDelta := 0.0
			for i := range x {
				if d := math.Abs(xNew[i] - x[i]); d > maxDelta {
					maxDelta = d
				}
				if math.IsNaN(xNew[i]) || math.IsInf(xNew[i], 0) {
					return nil, fmt.Errorf("circuit: transient diverged at step %d", step)
				}
			}
			copy(x, xNew)
			if maxDelta < opt.AbsTol && !c.anyLimited() {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("circuit: transient Newton did not converge at step %d (t=%g s)", step, t)
		}
		copy(xPrev, x)
		res.x = append(res.x, append([]float64(nil), x...))
	}
	return res, nil
}

// ---- transient stamps for the dynamic and source elements --------------

// Capacitor backward-Euler companion: i = C/dt * (v - vPrev), i.e. a
// conductance C/dt in parallel with a history current source.
func (e *capacitor) stampTransient(s *system, x, xPrev []float64, dt, t float64, src func(string) (float64, bool)) {
	g := e.cap / dt
	vPrev := voltageAt(xPrev, e.na) - voltageAt(xPrev, e.nb)
	s.stampConductance(e.na, e.nb, g)
	// History current g*vPrev flowing from b to a (it opposes discharge).
	s.stampCurrent(e.na, e.nb, -g*vPrev)
}

// Inductor backward-Euler companion using its branch current unknown:
// v = L * di/dt  ->  V(a) - V(b) - (L/dt)*I = -(L/dt)*IPrev.
func (e *inductor) stampTransient(s *system, x, xPrev []float64, dt, t float64, src func(string) (float64, bool)) {
	bi := s.branchBase + e.branch
	s.addJ(e.na, bi, 1)
	s.addJ(e.nb, bi, -1)
	s.addJ(bi, e.na, 1)
	s.addJ(bi, e.nb, -1)
	gl := e.l / dt
	s.addJ(bi, bi, -gl)
	s.addRHS(bi, -gl*xPrev[bi])
}

// Voltage source with optional time-varying waveform.
func (e *vsource) stampTransient(s *system, x, xPrev []float64, dt, t float64, src func(string) (float64, bool)) {
	bi := s.branchBase + e.branch
	s.addJ(e.na, bi, 1)
	s.addJ(e.nb, bi, -1)
	s.addJ(bi, e.na, 1)
	s.addJ(bi, e.nb, -1)
	v := e.dc
	if tv, ok := src(e.label); ok {
		v = tv
	}
	s.addRHS(bi, v)
}

// Current source with optional time-varying waveform.
func (e *isource) stampTransient(s *system, x, xPrev []float64, dt, t float64, src func(string) (float64, bool)) {
	i := e.dc
	if tv, ok := src(e.label); ok {
		i = tv
	}
	s.stampCurrent(e.na, e.nb, i)
}

// BJT: static stamps plus backward-Euler companions for Cje and Cjc.
func (q *BJT) stampTransient(s *system, x, xPrev []float64, dt, t float64, src func(string) (float64, bool)) {
	q.stampDC(s, x)
	stampCapCompanion(s, q.nbi, q.ne, q.p.Cje, dt, xPrev)
	stampCapCompanion(s, q.nbi, q.nc, q.p.Cjc, dt, xPrev)
}

func stampCapCompanion(s *system, a, b int, c, dt float64, xPrev []float64) {
	if c <= 0 {
		return
	}
	g := c / dt
	vPrev := voltageAt(xPrev, a) - voltageAt(xPrev, b)
	s.stampConductance(a, b, g)
	s.stampCurrent(a, b, -g*vPrev)
}
