// Package circuit is a small analog circuit simulator: modified nodal
// analysis with nonlinear Newton-Raphson DC operating point, complex-valued
// AC small-signal analysis, spot-noise analysis and weakly-nonlinear
// (Volterra) distortion analysis. It stands in for the Cadence SpectreRF
// runs in the paper's simulation experiment: the 900 MHz LNA of Fig. 6 is
// described as a netlist of these elements and its gain, noise figure and
// IIP3 are extracted per process-parameter instance.
//
// Supported elements: resistor, capacitor, inductor, independent voltage
// and current sources, voltage-controlled current source, and a simplified
// Gummel-Poon bipolar transistor (Is, Bf, Vaf, Rb, Ikf, junction
// capacitances) — exactly the parameter set the paper varies.
package circuit

import (
	"fmt"
	"math"
)

// Boltzmann constant times nominal temperature over electron charge:
// thermal voltage at 300 K.
const (
	Vt        = 0.025852 // thermal voltage, volts
	KBoltz    = 1.380649e-23
	TempK     = 300.0
	QElectron = 1.602176634e-19
	gmin      = 1e-12 // convergence conductance across junctions
)

// Circuit is a netlist under construction. Node "0" (or "gnd") is ground.
type Circuit struct {
	nodeIndex map[string]int // node name -> unknown index (-1 for ground)
	nodeNames []string       // index -> name
	elems     []element
	nBranch   int // extra unknowns for V sources and inductors
}

// element is the internal device interface.
type element interface {
	name() string
	// prepare registers internal nodes and branch unknowns.
	prepare(c *Circuit)
	// stampDC adds the element's contribution to the Newton system given
	// the current solution guess x.
	stampDC(s *system, x []float64)
	// stampAC adds the element's small-signal contribution at angular
	// frequency w, linearized around the operating point.
	stampAC(s *acSystem, w float64)
}

// limitedElement is implemented by nonlinear devices whose internal
// limiting (SPICE pnjlim) may evaluate the model away from the requested
// solution; Newton polls it to avoid declaring false convergence.
type limitedElement interface {
	limitedNow() bool
}

// noiseContributor enumerates a device's noise current sources.
type noiseContributor interface {
	noiseSources(freq float64) []NoiseSource
}

// NoiseSource is a white (or shaped) noise current source between two
// unknown indices (-1 = ground) with power spectral density PSD (A^2/Hz).
type NoiseSource struct {
	Label    string
	From, To int
	PSD      float64
}

// New creates an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIndex: map[string]int{"0": -1, "gnd": -1}}
}

// Node returns (creating if necessary) the unknown index for a node name;
// ground returns -1.
func (c *Circuit) Node(name string) int {
	if idx, ok := c.nodeIndex[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeIndex[name] = idx
	c.nodeNames = append(c.nodeNames, name)
	return idx
}

// NodeNames returns the non-ground node names in unknown order.
func (c *Circuit) NodeNames() []string {
	out := make([]string, len(c.nodeNames))
	copy(out, c.nodeNames)
	return out
}

// newBranch allocates a branch-current unknown (V sources, inductors).
func (c *Circuit) newBranch() int {
	idx := c.nBranch
	c.nBranch++
	return idx
}

// size returns the total unknown count after prepare.
func (c *Circuit) size() int { return len(c.nodeNames) + c.nBranch }

// branchIndex converts a branch id to an unknown index.
func (c *Circuit) branchIndex(b int) int { return len(c.nodeNames) + b }

func (c *Circuit) add(e element) {
	e.prepare(c)
	c.elems = append(c.elems, e)
}

// AddResistor adds resistance ohms between nodes a and b.
func (c *Circuit) AddResistor(name, a, b string, ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("circuit: resistor %s must be positive, got %g", name, ohms))
	}
	c.add(&resistor{label: name, na: c.Node(a), nb: c.Node(b), r: ohms})
}

// AddCapacitor adds capacitance farads between a and b.
func (c *Circuit) AddCapacitor(name, a, b string, farads float64) {
	if farads <= 0 {
		panic(fmt.Sprintf("circuit: capacitor %s must be positive, got %g", name, farads))
	}
	c.add(&capacitor{label: name, na: c.Node(a), nb: c.Node(b), cap: farads})
}

// AddInductor adds inductance henries between a and b.
func (c *Circuit) AddInductor(name, a, b string, henries float64) {
	if henries <= 0 {
		panic(fmt.Sprintf("circuit: inductor %s must be positive, got %g", name, henries))
	}
	c.add(&inductor{label: name, na: c.Node(a), nb: c.Node(b), l: henries})
}

// AddVSource adds an independent voltage source a-b with DC value dc volts
// and AC magnitude acMag volts (phase 0). Positive terminal is a.
func (c *Circuit) AddVSource(name, a, b string, dc, acMag float64) {
	c.add(&vsource{label: name, na: c.Node(a), nb: c.Node(b), dc: dc, ac: acMag})
}

// AddISource adds an independent current source flowing from a to b.
func (c *Circuit) AddISource(name, a, b string, dc, acMag float64) {
	c.add(&isource{label: name, na: c.Node(a), nb: c.Node(b), dc: dc, ac: acMag})
}

// AddVCCS adds a voltage-controlled current source: current gm*(V(cp)-V(cn))
// flows from a to b.
func (c *Circuit) AddVCCS(name, a, b, cp, cn string, gm float64) {
	c.add(&vccs{label: name, na: c.Node(a), nb: c.Node(b), ncp: c.Node(cp), ncn: c.Node(cn), gm: gm})
}

// BJTParams is the simplified Gummel-Poon parameter set — the statistical
// transistor parameters the paper varies (Is, Bf, Vaf, Rb, Ikf) plus fixed
// junction capacitances.
type BJTParams struct {
	Is  float64 // saturation current, A
	Bf  float64 // forward beta
	Vaf float64 // forward Early voltage, V
	Rb  float64 // base resistance, ohms
	Ikf float64 // forward knee current, A
	Br  float64 // reverse beta
	Cje float64 // base-emitter capacitance, F
	Cjc float64 // base-collector capacitance, F
}

// DefaultBJT returns nominal parameters for the LNA device.
func DefaultBJT() BJTParams {
	return BJTParams{
		Is:  2e-16,
		Bf:  100,
		Vaf: 60,
		Rb:  18,
		Ikf: 0.04,
		Br:  2,
		Cje: 1.1e-12,
		Cjc: 0.22e-12,
	}
}

// AddBJT adds an npn transistor with terminals (collector, base, emitter).
// A base-resistance internal node is created automatically.
func (c *Circuit) AddBJT(name, col, base, emit string, p BJTParams) *BJT {
	if p.Is <= 0 || p.Bf <= 0 || p.Vaf <= 0 || p.Ikf <= 0 || p.Br <= 0 {
		panic(fmt.Sprintf("circuit: BJT %s has non-positive parameters: %+v", name, p))
	}
	q := &BJT{label: name, p: p}
	q.nc = c.Node(col)
	q.nb = c.Node(base)
	q.ne = c.Node(emit)
	if p.Rb > 0 {
		q.nbi = c.Node(name + ".bi")
	} else {
		q.nbi = q.nb
	}
	c.add(q)
	return q
}

// Elements returns the element names (diagnostics).
func (c *Circuit) Elements() []string {
	out := make([]string, len(c.elems))
	for i, e := range c.elems {
		out[i] = e.name()
	}
	return out
}

// findElement returns the named element or nil.
func (c *Circuit) findElement(name string) element {
	for _, e := range c.elems {
		if e.name() == name {
			return e
		}
	}
	return nil
}

// voltageAt reads a node voltage from a solution vector (0 for ground).
func voltageAt(x []float64, n int) float64 {
	if n < 0 {
		return 0
	}
	return x[n]
}

// system is the real-valued Newton linear system J*dx = -f, expressed in
// the standard MNA "stamp" form: J accumulates conductances, rhs
// accumulates equivalent currents such that J*x_new = rhs.
type system struct {
	n          int
	branchBase int // index of the first branch unknown
	J          [][]float64
	rhs        []float64
}

func newSystem(n, branchBase int) *system {
	s := &system{n: n, branchBase: branchBase, J: make([][]float64, n), rhs: make([]float64, n)}
	for i := range s.J {
		s.J[i] = make([]float64, n)
	}
	return s
}

// addJ accumulates J[i][j] += v, ignoring ground (-1) indices.
func (s *system) addJ(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	s.J[i][j] += v
}

// addRHS accumulates rhs[i] += v.
func (s *system) addRHS(i int, v float64) {
	if i < 0 {
		return
	}
	s.rhs[i] += v
}

// stampConductance stamps a two-terminal conductance g between a and b.
func (s *system) stampConductance(a, b int, g float64) {
	s.addJ(a, a, g)
	s.addJ(b, b, g)
	s.addJ(a, b, -g)
	s.addJ(b, a, -g)
}

// stampCurrent stamps a current i flowing from a to b (out of a, into b).
func (s *system) stampCurrent(a, b int, i float64) {
	s.addRHS(a, -i)
	s.addRHS(b, i)
}

func abs(x float64) float64 { return math.Abs(x) }
