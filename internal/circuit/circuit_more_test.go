package circuit

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestBJTSaturationRegion(t *testing.T) {
	// Force Vce ~ 0.05 V: both junctions forward biased; the solver must
	// still converge and Ic must collapse versus forward active.
	c := New()
	c.AddVSource("VC", "c", "0", 0.05, 0)
	c.AddVSource("VB", "vb", "0", 0.75, 0)
	q := c.AddBJT("Q1", "c", "vb", "0", DefaultBJT())
	op, err := c.SolveDC(DCOptions{})
	if err != nil {
		t.Fatalf("saturation DC failed: %v", err)
	}
	_ = op
	bop := q.OperatingPoint()
	if bop.Vbc <= 0 {
		t.Fatalf("Vbc = %g, expected forward-biased BC junction", bop.Vbc)
	}
	// Compare with forward active at the same Vbe.
	c2 := New()
	c2.AddVSource("VC", "c", "0", 3, 0)
	c2.AddVSource("VB", "vb", "0", 0.75, 0)
	q2 := c2.AddBJT("Q1", "c", "vb", "0", DefaultBJT())
	if _, err := c2.SolveDC(DCOptions{}); err != nil {
		t.Fatal(err)
	}
	if bop.Ic >= q2.OperatingPoint().Ic {
		t.Fatalf("saturated Ic %g should be below active Ic %g", bop.Ic, q2.OperatingPoint().Ic)
	}
}

func TestVsourceBranchCurrentConsistency(t *testing.T) {
	// Two parallel resistors across a source: node equations must satisfy
	// the divider exactly.
	c := New()
	c.AddVSource("V1", "a", "0", 6, 0)
	c.AddResistor("R1", "a", "0", 100)
	c.AddResistor("R2", "a", "0", 200)
	op := solveDC(t, c)
	if got := op.Voltage("a"); math.Abs(got-6) > 1e-12 {
		t.Fatalf("V(a) = %g", got)
	}
}

func TestOperatingPointUnknownNodePanics(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", 1, 0)
	c.AddResistor("R1", "a", "0", 100)
	op := solveDC(t, c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	op.Voltage("nope")
}

func TestACResultUnknownNodePanics(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "0", 1, 1)
	c.AddResistor("R1", "a", "0", 100)
	op := solveDC(t, c)
	r, err := c.SolveAC(op, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Voltage("a") == 0 {
		t.Fatal("driven node should be nonzero")
	}
	if r.Freq() != 1e6 {
		t.Fatal("Freq accessor")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	r.Voltage("nope")
}

func TestGroundVoltageIsZero(t *testing.T) {
	c := New()
	c.AddVSource("V1", "a", "gnd", 1, 1)
	c.AddResistor("R1", "a", "0", 100)
	op := solveDC(t, c)
	if op.Voltage("0") != 0 || op.Voltage("gnd") != 0 {
		t.Fatal("ground must read 0")
	}
	r, _ := c.SolveAC(op, 1e3)
	if r.Voltage("gnd") != 0 {
		t.Fatal("AC ground must read 0")
	}
}

func TestCapacitorCouplingHighpass(t *testing.T) {
	c := New()
	c.AddVSource("V1", "in", "0", 0, 1)
	c.AddCapacitor("C1", "in", "out", 1e-9)
	c.AddResistor("R1", "out", "0", 1000)
	op := solveDC(t, c)
	fc := 1 / (2 * math.Pi * 1000 * 1e-9)
	hi, _ := c.SolveAC(op, 100*fc)
	lo, _ := c.SolveAC(op, fc/100)
	if cmplx.Abs(hi.Voltage("out")) < 0.99 {
		t.Fatalf("highpass passband %g", cmplx.Abs(hi.Voltage("out")))
	}
	if cmplx.Abs(lo.Voltage("out")) > 0.02 {
		t.Fatalf("highpass stopband %g", cmplx.Abs(lo.Voltage("out")))
	}
}

func TestNoiseScalesWithBandReference(t *testing.T) {
	// A resistive divider: NF of a matched 6 dB pad should be ~6 dB.
	// Use series 50 + shunt to make a simple L-pad; verify NF > 0 and
	// grows with attenuation.
	nfOf := func(rseries float64) float64 {
		c := New()
		c.AddVSource("V1", "in", "0", 0, 1)
		c.AddResistor("Rs", "in", "x", 50)
		c.AddResistor("Rp", "x", "out", rseries)
		c.AddResistor("RL", "out", "0", 50)
		op := solveDC(t, c)
		rep, err := c.NoiseAnalysis(op, 1e6, "out", "Rs")
		if err != nil {
			t.Fatal(err)
		}
		return rep.NoiseFigureDB
	}
	nf1, nf2 := nfOf(20), nfOf(200)
	if !(nf2 > nf1 && nf1 > 0) {
		t.Fatalf("attenuator NF should grow with loss: %g, %g", nf1, nf2)
	}
}

func TestElementsListing(t *testing.T) {
	c := New()
	c.AddResistor("R1", "a", "b", 10)
	c.AddCapacitor("C1", "b", "0", 1e-12)
	names := c.Elements()
	if len(names) != 2 || names[0] != "R1" || names[1] != "C1" {
		t.Fatalf("Elements = %v", names)
	}
	if c.findElement("R1") == nil || c.findElement("zz") != nil {
		t.Fatal("findElement behavior")
	}
}

func TestVolterraOffTransistorErrors(t *testing.T) {
	c := New()
	c.AddVSource("VCC", "vcc", "0", 3, 0)
	c.AddVSource("VB", "vb", "0", 0.1, 1) // device off
	c.AddResistor("RC", "vcc", "c", 300)
	q := c.AddBJT("Q1", "c", "vb", "0", DefaultBJT())
	op := solveDC(t, c)
	if _, err := c.VolterraIIP3(op, q, "vb", 900e6, 0); err == nil {
		t.Fatal("expected error for an off transistor")
	}
}

func TestComplexLUSingularDetected(t *testing.T) {
	a := [][]complex128{{1, 2}, {2, 4}}
	if _, err := factorize(a); err == nil {
		t.Fatal("singular complex system must error")
	}
}

func TestComplexLUSolveKnownSystem(t *testing.T) {
	a := [][]complex128{{complex(2, 0), complex(0, 1)}, {complex(0, -1), complex(3, 0)}}
	lu, err := factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.solve([]complex128{complex(1, 0), complex(0, 0)})
	// Verify A x = b.
	b0 := a[0][0]*x[0] + a[0][1]*x[1]
	b1 := a[1][0]*x[0] + a[1][1]*x[1]
	if cmplx.Abs(b0-1) > 1e-12 || cmplx.Abs(b1) > 1e-12 {
		t.Fatalf("residual %v %v", b0, b1)
	}
}
