package parallel

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{0, 1, 3, 16} {
		counts := make([]int64, 100)
		if err := ForEach(w, len(counts), func(i int) error {
			atomic.AddInt64(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		out := make([]float64, 64)
		if err := ForEach(workers, len(out), func(i int) error {
			rng := rand.New(rand.NewSource(SubSeed(7, i)))
			s := 0.0
			for k := 0; k < 100; k++ {
				s += rng.NormFloat64()
			}
			out[i] = s
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d differs: %g vs %g", w, i, got[i], ref[i])
			}
		}
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(w, 32, func(i int) error {
			if i%5 == 2 { // fails at 2, 7, 12, ...
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 2 failed" {
			t.Fatalf("workers=%d: got %v, want the index-2 error", w, err)
		}
	}
}

func TestForEachRunsAllIndicesDespiteErrors(t *testing.T) {
	var ran int64
	err := ForEach(4, 20, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran != 20 {
		t.Fatalf("ran %d of 20 indices", ran)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", w)
				}
				if w > 1 {
					if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "panicked") {
						t.Fatalf("workers=%d: unexpected panic payload %v", w, r)
					}
				}
			}()
			_ = ForEach(w, 8, func(i int) error {
				if i == 3 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestSubSeedMatchesDeviceSeedContract(t *testing.T) {
	// Non-negative, index-sensitive, seed-sensitive.
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SubSeed(42, i)
		if s < 0 {
			t.Fatalf("negative sub-seed at index %d", i)
		}
		if seen[s] {
			t.Fatalf("sub-seed collision at index %d", i)
		}
		seen[s] = true
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("sub-seed ignores the base seed")
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive requests must resolve to at least one worker")
	}
	if Workers(5) != 5 {
		t.Fatal("positive requests are literal")
	}
}
