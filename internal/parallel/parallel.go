// Package parallel is the deterministic fan-out engine shared by the
// calibration pipeline's hot paths: training-set acquisition, GA fitness
// evaluation and cross-validation. Work is split by index, every index
// owns its output slot and (when it needs randomness) its own RNG stream
// derived with SubSeed, so the result of a fan-out depends only on the
// inputs — never on the worker count, goroutine scheduling or completion
// order. Serial (workers=1) and N-way-parallel runs of the same job are
// bit-identical, which is the repo-wide determinism contract established
// by core.DeviceSeed for lot screening.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS), anything else is taken literally.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SubSeed derives the seed for sub-stream index of a seeded computation.
// It is the SplitMix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"): a bijective avalanche over the
// combined key, so adjacent indices yield statistically unrelated seeds.
// The sign bit is cleared so derived seeds stay stable, non-negative and
// readable in journals. core.DeviceSeed is this same mix, so every seeded
// fan-out in the repo shares one derivation scheme.
func SubSeed(seed int64, index int) int64 {
	z := uint64(seed) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// ForEach runs fn(i) for every i in [0, n) on a pool of workers (resolved
// via Workers; capped at n). Determinism contract: fn must write its
// results only into per-index slots owned by the caller; under that
// contract the outcome is identical for every worker count. All indices
// are attempted even when some fail; the returned error is the one from
// the lowest failing index, so error reporting is scheduling-independent
// too. With one worker (or n <= 1) everything runs inline on the calling
// goroutine. A panic in fn is re-raised on the caller.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	var mu sync.Mutex
	var panicked any // first panic by discovery order, re-raised on the caller
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = fmt.Errorf("parallel: task %d panicked: %v", i, r)
							}
							mu.Unlock()
						}
					}()
					errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
