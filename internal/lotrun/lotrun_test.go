package lotrun

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/wave"
)

// fixture is the shared engineering phase (stimulus, calibration, gate),
// built once for the whole package.
type fixture struct {
	cfg   *core.TestConfig
	cal   *core.Calibration
	stim  *wave.PWL
	gate  *floor.Gate
	model core.DeviceModel
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, 60, 0.9)
		if err != nil {
			fixErr = err
			return
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train,
			func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			fixErr = err
			return
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			fixErr = err
			return
		}
		sigs := make([][]float64, len(td))
		for i := range td {
			sigs[i] = td[i].Signature
		}
		gate, err := floor.FitGate(sigs, floor.GateOptions{})
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{cfg: cfg, cal: cal, stim: stim, gate: gate, model: model}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func rf2401Pass(s lna.Specs) bool {
	return s.GainDB >= 10.0 && s.NFDB <= 4.2 && s.IIP3DBm >= -9.5
}

func (f *fixture) engine() *floor.Engine {
	return &floor.Engine{
		Cfg:      f.cfg,
		Cal:      f.cal,
		Stim:     f.stim,
		Gate:     f.gate,
		PredPass: rf2401Pass,
		TruePass: rf2401Pass,
		Policy:   floor.DefaultPolicy(),
	}
}

func testLot(t *testing.T, f *fixture, n int) []*core.Device {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	lot, err := core.GeneratePopulation(rng, f.model, n, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return lot
}

// quietBreaker never trips, so lot economics carry no scheduling-dependent
// quarantine charge — used by the determinism tests.
func quietBreaker() BreakerConfig { return BreakerConfig{TripConsecutive: 1 << 20} }

// stripSites zeroes the per-result Site field — the only LotReport content
// that legitimately depends on worker scheduling.
func stripSites(rep *floor.LotReport) {
	for i := range rep.Results {
		rep.Results[i].Site = 0
	}
}

func reportsEqual(t *testing.T, label string, a, b *floor.LotReport) {
	t.Helper()
	stripSites(a)
	stripSites(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: lot reports diverge:\n%v\nvs\n%v", label, a, b)
	}
}

// TestSerialVsConcurrentByteIdentical is the reproducibility acceptance:
// screening the same seeded lot serially, serially again, and across 4
// concurrent sites yields byte-identical LotReports (modulo the Site tag),
// because every device's RNG stream derives from (lot seed, index) alone.
func TestSerialVsConcurrentByteIdentical(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 80)
	faults := floor.DefaultFaultModel(0.15)
	const seed = 99

	serial, err := f.engine().RunLot(seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	again, err := f.engine().RunLot(seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "serial rerun", serial, again)

	for _, sites := range []int{1, 4} {
		o := &Orchestrator{Engine: f.engine(), Opt: Options{Sites: sites, Breaker: quietBreaker()}}
		rep, err := o.Run(context.Background(), seed, lot, faults)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, fmt.Sprintf("%d-site orchestrator", sites), serial, rep.Lot)
	}
}

// TestKillAndResume is the crash-recovery acceptance: a run killed mid-lot
// (context cancellation — SIGKILL-equivalent for the journal, which only
// contains fsync'd committed records) followed by Resume produces the same
// final LotReport as an uninterrupted run with the same seed.
func TestKillAndResume(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 60)
	faults := floor.DefaultFaultModel(0.15)
	const seed = 7
	dir := t.TempDir()

	refPath := filepath.Join(dir, "ref.journal")
	ref, err := (&Orchestrator{Engine: f.engine(),
		Opt: Options{Sites: 3, JournalPath: refPath, Breaker: quietBreaker()}}).
		Run(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}

	// Kill: cancel after 20 devices have started screening.
	killPath := filepath.Join(dir, "kill.journal")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	o := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 3, JournalPath: killPath, Breaker: quietBreaker(),
		Hook: func(site, device int) {
			if started.Add(1) == 20 {
				cancel()
			}
		},
	}}
	if _, err := o.Run(ctx, seed, lot, faults); err == nil {
		t.Fatal("killed run must report interruption")
	}

	// Resume with a fresh orchestrator (new process equivalent).
	o2 := &Orchestrator{Engine: f.engine(),
		Opt: Options{Sites: 3, JournalPath: killPath, Breaker: quietBreaker()}}
	rep, err := o2.Resume(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed == 0 || rep.Replayed >= len(lot) {
		t.Fatalf("resume replayed %d of %d devices; want partial progress", rep.Replayed, len(lot))
	}
	reportsEqual(t, "kill-and-resume", ref.Lot, rep.Lot)

	// Idempotence: resuming the now-complete journal replays everything
	// and screens nothing.
	rep2, err := o2.Resume(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Replayed != len(lot) {
		t.Fatalf("complete journal replayed %d of %d", rep2.Replayed, len(lot))
	}
	reportsEqual(t, "resume of complete journal", ref.Lot, rep2.Lot)
}

// TestPanicCostsOneDevice: a worker panic injected via the fault hook is
// recovered into a fallback-binned device; the lot completes and no other
// device is affected.
func TestPanicCostsOneDevice(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 40)
	const seed = 5
	const victim = 17

	ref, err := f.engine().RunLot(seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 4, Breaker: quietBreaker(),
		Hook: func(site, device int) {
			if device == victim {
				panic("injected contactor firmware fault")
			}
		},
	}}
	rep, err := o.Run(context.Background(), seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d devices binned after panic", rep.Lot.Binned(), len(lot))
	}
	var got floor.DeviceResult
	for _, r := range rep.Lot.Results {
		if r.Index == victim {
			got = r
		}
	}
	if got.Bin != floor.BinFallback || !strings.Contains(got.Err, "injected contactor firmware fault") {
		t.Fatalf("panicked device result: bin %v err %q; want fallback with structured panic", got.Bin, got.Err)
	}
	if rep.Lot.SupervisionErrs != 1 {
		t.Fatalf("supervision errors %d, want 1", rep.Lot.SupervisionErrs)
	}
	// Every other device matches the panic-free reference exactly.
	for _, r := range rep.Lot.Results {
		if r.Index == victim {
			continue
		}
		want := ref.Results[r.Index]
		r.Site = 0
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("device %d perturbed by device %d's panic:\n%+v\nvs\n%+v", r.Index, victim, r, want)
		}
	}
}

// TestEnginePanicRecovery: a panic from inside the rf hot path (nil
// behavioral model dereferenced by the load board) is recovered by
// ScreenDevice itself, so even the serial floor never loses a lot.
func TestEnginePanicRecovery(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 10)
	broken := *lot[4]
	broken.Behavioral = nil
	lot[4] = &broken

	rep, err := f.engine().RunLot(3, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Binned() != len(lot) {
		t.Fatalf("%d of %d binned", rep.Binned(), len(lot))
	}
	res := rep.Results[4]
	if res.Bin != floor.BinFallback || !strings.Contains(res.Err, "panic") {
		t.Fatalf("rf-path panic not supervised: bin %v err %q", res.Bin, res.Err)
	}
	if rep.SupervisionErrs != 1 {
		t.Fatalf("supervision errors %d, want 1", rep.SupervisionErrs)
	}
}

// TestDeviceDeadline: an expired per-device deadline stops retesting after
// the first insertion and routes unresolved devices to fallback.
func TestDeviceDeadline(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 30)
	faults := floor.DefaultFaultModel(0.5)
	o := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 2, Breaker: quietBreaker(), DeviceTimeout: time.Nanosecond,
	}}
	rep, err := o.Run(context.Background(), 12, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d binned", rep.Lot.Binned(), len(lot))
	}
	deadlined := 0
	for _, r := range rep.Lot.Results {
		if r.Insertions != 1 {
			t.Fatalf("device %d got %d insertions under a 1 ns deadline", r.Index, r.Insertions)
		}
		if strings.Contains(r.Err, "deadline") {
			deadlined++
			if r.Bin != floor.BinFallback {
				t.Fatalf("deadlined device %d binned %v", r.Index, r.Bin)
			}
		}
	}
	if deadlined == 0 {
		t.Fatal("50% fault load under a 1 ns deadline produced no deadline fallbacks")
	}
}

// TestBreakerQuarantinesFailingSite: with every insertion faulted to a
// contactor-open, sites trip, re-probe half-open, re-trip with growing
// backoff, and the quarantine time is charged to the lot economics.
func TestBreakerQuarantinesFailingSite(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 24)
	allOpen := &floor.FaultModel{P: map[floor.FaultKind]float64{floor.FaultContactorOpen: 1}}
	cfg := BreakerConfig{TripConsecutive: 3, ProbeBackoffS: 2, BackoffFactor: 2, MaxBackoffS: 16}
	o := &Orchestrator{Engine: f.engine(), Opt: Options{Sites: 2, Breaker: cfg}}
	rep, err := o.Run(context.Background(), 8, lot, allOpen)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lot.Fallback != len(lot) {
		t.Fatalf("all-open lot binned %d fallbacks of %d", rep.Lot.Fallback, len(lot))
	}
	if len(rep.Trips) < 2 {
		t.Fatalf("breakers tripped %d times on an all-failing floor", len(rep.Trips))
	}
	if rep.Lot.Load.QuarantineS <= 0 {
		t.Fatal("quarantine time not charged to the lot economics")
	}
	grew := false
	for _, tr := range rep.Trips {
		if tr.QuarantineS > cfg.ProbeBackoffS {
			grew = true
		}
		if tr.QuarantineS > cfg.MaxBackoffS {
			t.Fatalf("backoff %g exceeds cap %g", tr.QuarantineS, cfg.MaxBackoffS)
		}
	}
	if !grew {
		t.Fatal("failed half-open probes must grow the backoff")
	}
	total := 0.0
	for _, s := range rep.Sites {
		total += s.QuarantineS
	}
	if total != rep.Lot.Load.QuarantineS {
		t.Fatalf("site quarantine %g != charged %g", total, rep.Lot.Load.QuarantineS)
	}
	if s := rep.String(); !strings.Contains(s, "trips") {
		t.Fatalf("report rendering lost the breaker story: %q", s)
	}
}

// TestBreakerStateMachine unit-tests the closed -> open -> half-open
// transitions directly.
func TestBreakerStateMachine(t *testing.T) {
	br := NewBreaker(BreakerConfig{TripConsecutive: 2, ProbeBackoffS: 1, BackoffFactor: 2, MaxBackoffS: 4})
	gated := floor.DeviceResult{Verdicts: []floor.Verdict{floor.VerdictInvalid, floor.VerdictInvalid}}
	clean := floor.DeviceResult{Verdicts: []floor.Verdict{floor.VerdictClean}}

	if br.Record(clean); br.state != stateClosed {
		t.Fatalf("clean outcome moved state to %v", br.state)
	}
	if !br.Record(gated) || br.state != stateOpen {
		t.Fatalf("2 consecutive gated verdicts must trip; state %v", br.state)
	}
	if q := br.BeginProbe(); q != 1 || br.state != stateHalfOpen {
		t.Fatalf("first probe backoff %g state %v", q, br.state)
	}
	// Failed probe: re-open with doubled backoff.
	if !br.Record(gated) || br.state != stateOpen {
		t.Fatalf("failed probe must re-open; state %v", br.state)
	}
	if q := br.BeginProbe(); q != 2 {
		t.Fatalf("second backoff %g, want 2", q)
	}
	// Successful probe closes and resets the backoff history.
	if br.Record(clean); br.state != stateClosed || br.failedOpens != 0 {
		t.Fatalf("clean probe must close; state %v failedOpens %d", br.state, br.failedOpens)
	}
	if br.trips != 2 {
		t.Fatalf("trips %d, want 2", br.trips)
	}
	// Backoff saturates at the cap.
	br.failedOpens = 10
	if q := br.backoff(); q != 4 {
		t.Fatalf("backoff %g, want cap 4", q)
	}
}

// TestWatchdogCharts unit-tests the EWMA/CUSUM change detectors on
// synthetic standardized streams.
func TestWatchdogCharts(t *testing.T) {
	g := &floor.Gate{TrainMeanD: 1, TrainSigmaD: 0.5}
	cfg := WatchdogConfig{Lambda: 0.2, EWMALimit: 3, CUSUMSlack: 0.5, CUSUMLimit: 8, MinSamples: 10}

	// An in-control stream (distances at the training mean) never alarms.
	w := NewWatchdog(g, cfg)
	for i := 0; i < 500; i++ {
		if a := w.Observe(i, 1.0); a != nil {
			t.Fatalf("in-control stream alarmed at %d: %+v", i, a)
		}
	}

	// A 2-sigma mean shift alarms, but not before the warm-up.
	w = NewWatchdog(g, cfg)
	var alarm *DriftAlarm
	for i := 0; i < 100 && alarm == nil; i++ {
		alarm = w.Observe(i, 2.0) // z = +2
		if alarm != nil && alarm.Samples < cfg.MinSamples {
			t.Fatalf("alarm before warm-up: %+v", alarm)
		}
	}
	if alarm == nil {
		t.Fatal("2-sigma shift never alarmed")
	}
	if len(w.Alarms()) != 1 {
		t.Fatalf("alarms recorded: %d", len(w.Alarms()))
	}
	// The charts reset after an alarm and re-arm.
	if w.n != 0 || w.ewma != 0 || w.cusum != 0 {
		t.Fatal("charts must reset after an alarm")
	}
	for i := 0; i < 100; i++ {
		w.Observe(100+i, 2.0)
	}
	if len(w.Alarms()) < 2 {
		t.Fatal("watchdog did not re-arm after the first alarm")
	}

	// Disabled watchdog observes nothing.
	w = NewWatchdog(g, WatchdogConfig{Disabled: true})
	for i := 0; i < 200; i++ {
		if a := w.Observe(i, 100); a != nil {
			t.Fatal("disabled watchdog alarmed")
		}
	}
}

// TestDriftAlarmTriggersRecalibration: a watchdog whose baseline is shifted
// far below the production distances (simulating a drifted process) raises
// an alarm and auto-triggers the recalibration hook, which swaps the
// regression map for the rest of the lot.
func TestDriftAlarmTriggersRecalibration(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 50)

	drifted := *f.gate
	drifted.TrainMeanD = f.gate.TrainMeanD - 20*f.gate.TrainSigmaD
	eng := f.engine()
	eng.Gate = &drifted

	var onDrift atomic.Int64
	recal := 0
	o := &Orchestrator{Engine: eng, Opt: Options{
		Sites:    2,
		Breaker:  quietBreaker(),
		Watchdog: WatchdogConfig{MinSamples: 5},
		OnDrift:  func(DriftAlarm) { onDrift.Add(1) },
		Recalibrate: func(a DriftAlarm) (*core.Calibration, *floor.Gate, error) {
			recal++
			// "Retrain": hand back the healthy baseline gate and map.
			return f.cal, f.gate, nil
		},
	}}
	rep, err := o.Run(context.Background(), 31, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alarms) == 0 {
		t.Fatal("20-sigma baseline shift raised no drift alarm")
	}
	if rep.Alarms[0].Samples < 5 {
		t.Fatalf("alarm before warm-up: %+v", rep.Alarms[0])
	}
	if onDrift.Load() == 0 || recal == 0 || rep.Recalibrations == 0 {
		t.Fatalf("alarm did not propagate: onDrift %d recal %d report %d",
			onDrift.Load(), recal, rep.Recalibrations)
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d binned across the recalibration", rep.Lot.Binned(), len(lot))
	}
	if s := rep.String(); !strings.Contains(s, "drift alarm") {
		t.Fatalf("report rendering lost the alarm: %q", s)
	}
}

func TestOrchestratorInputValidation(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 4)
	ctx := context.Background()

	if _, err := (&Orchestrator{}).Run(ctx, 1, lot, nil); err == nil {
		t.Fatal("nil engine must error")
	}
	if _, err := (&Orchestrator{Engine: f.engine()}).Run(ctx, 1, nil, nil); err == nil {
		t.Fatal("empty lot must error")
	}
	if _, err := (&Orchestrator{Engine: f.engine(), Opt: Options{Sites: -2}}).Run(ctx, 1, lot, nil); err == nil {
		t.Fatal("negative site count must error")
	}
	if _, err := (&Orchestrator{Engine: f.engine()}).Resume(ctx, 1, lot, nil); err == nil {
		t.Fatal("resume without a journal path must error")
	}
	bad := &floor.FaultModel{P: map[floor.FaultKind]float64{floor.FaultBurstNoise: 2}}
	if _, err := (&Orchestrator{Engine: f.engine()}).Run(ctx, 1, lot, bad); err == nil {
		t.Fatal("invalid fault model must error")
	}
}

// TestResumeRejectsWrongLot: the journal header pins (seed, lot size,
// fault load); resuming anything else must be refused.
func TestResumeRejectsWrongLot(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 8)
	path := filepath.Join(t.TempDir(), "lot.journal")
	o := &Orchestrator{Engine: f.engine(), Opt: Options{JournalPath: path, Breaker: quietBreaker()}}
	if _, err := o.Run(context.Background(), 42, lot, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Resume(context.Background(), 43, lot, nil); err == nil {
		t.Fatal("wrong seed must be refused")
	}
	if _, err := o.Resume(context.Background(), 42, lot[:6], nil); err == nil {
		t.Fatal("wrong lot size must be refused")
	}
	if _, err := o.Resume(context.Background(), 42, lot, floor.DefaultFaultModel(0.1)); err == nil {
		t.Fatal("wrong fault load must be refused")
	}
}

// TestBatchedOrchestratorByteIdentical extends the reproducibility
// acceptance to the batched kernel: screening the same seeded lot with
// batched sites (K devices per engine call) yields the same LotReport
// (modulo Site tags) as the serial engine, for every batch size and site
// count combination — batching amortizes compute, never semantics.
func TestBatchedOrchestratorByteIdentical(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 80)
	faults := floor.DefaultFaultModel(0.15)
	const seed = 99

	serial, err := f.engine().RunLot(seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct{ sites, batch int }{{1, 3}, {1, 16}, {2, 8}, {4, 64}} {
		o := &Orchestrator{Engine: f.engine(), Opt: Options{
			Sites: cfg.sites, Batch: cfg.batch, Breaker: quietBreaker(),
		}}
		rep, err := o.Run(context.Background(), seed, lot, faults)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, fmt.Sprintf("%d-site batch-%d orchestrator", cfg.sites, cfg.batch), serial, rep.Lot)
	}
}

// TestBatchedHookPanicCostsOneDevice: a hook panic inside a batched site
// fallback-bins only the device it fired on; the rest of the batch screens
// normally.
func TestBatchedHookPanicCostsOneDevice(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 24)
	const victim = 9
	o := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 1, Batch: 8, Breaker: quietBreaker(),
		Hook: func(site, device int) {
			if device == victim {
				panic("batched hook boom")
			}
		},
	}}
	rep, err := o.Run(context.Background(), 5, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Lot.Results {
		if res.Index == victim {
			if res.Bin != floor.BinFallback || !strings.Contains(res.Err, "batched hook boom") {
				t.Fatalf("victim device: bin %v err %q, want fallback with the hook panic", res.Bin, res.Err)
			}
			continue
		}
		if res.Err != "" {
			t.Fatalf("device %d collateral error: %q", res.Index, res.Err)
		}
	}
}
