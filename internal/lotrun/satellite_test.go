package lotrun

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/floor"
)

// TestJournalCRCDetectsBitFlip: a flipped digit inside a committed record
// leaves the line perfectly valid JSON — only the CRC envelope catches it.
// The tampered record must be skipped as corrupt, not silently replayed
// with the wrong value.
func TestJournalCRCDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	writeTestJournal(t, path, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one digit of device 1's predicted gain (12.25 -> 12.35). The
	// line still parses; only the checksum knows.
	lines := bytes.Split(data, []byte("\n"))
	tampered := false
	for i, ln := range lines {
		if bytes.Contains(ln, []byte(`"Index":1,`)) {
			lines[i] = bytes.Replace(ln, []byte("12.25"), []byte("12.35"), 1)
			tampered = !bytes.Equal(lines[i], ln)
		}
	}
	if !tampered {
		t.Fatal("test fixture drifted: device 1's record no longer carries 12.25")
	}
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, results, _, stats, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || stats.Corrupt != 1 {
		t.Fatalf("stats %+v, want 2 records 1 corrupt", stats)
	}
	if _, ok := results[1]; ok {
		t.Fatal("the bit-flipped record replayed instead of being caught by its CRC")
	}
	for _, i := range []int{0, 2} {
		if got := results[i]; got.Pred != mkResult(i, floor.BinPass).Pred {
			t.Fatalf("untampered record %d mangled: %+v", i, got)
		}
	}
}

// TestJournalLegacyCRCLessAccepted: journals written before the CRC
// envelope carry records directly on each line; the reader must replay
// them, and a resumed journal may append CRC'd lines after them.
func TestJournalLegacyCRCLessAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	legacy := `{"type":"header","version":1,"lot_seed":9,"devices":100,"fault_p":0.1}
{"type":"device","result":{"Index":0,"Bin":0,"Insertions":1,"CleanD":0.5,"TruePass":true}}
`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	hdr, results, validEnd, stats, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.LotSeed != 9 || hdr.Fingerprint != 0 {
		t.Fatalf("legacy header mangled: %+v", hdr)
	}
	if stats.Records != 1 || stats.Corrupt != 0 {
		t.Fatalf("legacy stats %+v, want 1 record 0 corrupt", stats)
	}
	if results[0].CleanD != 0.5 {
		t.Fatalf("legacy record mangled: %+v", results[0])
	}

	// Mixed journal: CRC'd records appended after legacy lines.
	j, err := ResumeJournal(path, validEnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(mkResult(1, floor.BinFail)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, results, _, stats, err = ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 2 || results[1].Bin != floor.BinFail {
		t.Fatalf("mixed journal: stats %+v results[1] %+v", stats, results[1])
	}
}

// TestBreakerHalfOpenRecoveryConcurrent: with every early device panicking,
// all four sites trip, quarantine (with real sleep so open breakers overlap
// concurrent probes), fail their half-open probes on more early devices,
// and finally close when the healthy tail of the lot arrives. The lot must
// complete, the backoff growth must show failed probes happened, and every
// post-recovery device must match the hook-free reference bit for bit.
func TestBreakerHalfOpenRecoveryConcurrent(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 48)
	const seed = 17
	const victims = 24 // devices [0, victims) panic on the tester

	ref, err := f.engine().RunLot(seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := BreakerConfig{TripConsecutive: 2, ProbeBackoffS: 2, BackoffFactor: 2, MaxBackoffS: 16}
	o := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites:                4,
		Breaker:              cfg,
		QuarantineSleepScale: 1e-4, // 2 s modeled -> 0.2 ms real: probes overlap
		Hook: func(site, device int) {
			if device < victims {
				panic("early-lot contactor fault")
			}
		},
	}}
	rep, err := o.Run(context.Background(), seed, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d binned after breaker recovery", rep.Lot.Binned(), len(lot))
	}
	if len(rep.Trips) < 2 {
		t.Fatalf("%d trips across a 24-device failure run; want the breakers exercised", len(rep.Trips))
	}
	grew := false
	for _, tr := range rep.Trips {
		if tr.QuarantineS > cfg.ProbeBackoffS {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no trip shows grown backoff: half-open probes never failed")
	}
	if rep.Lot.Load.QuarantineS <= 0 {
		t.Fatal("quarantine time not charged to the lot economics")
	}
	for _, r := range rep.Lot.Results {
		if r.Index < victims {
			if r.Bin != floor.BinFallback || !strings.Contains(r.Err, "contactor fault") {
				t.Fatalf("victim %d: bin %v err %q", r.Index, r.Bin, r.Err)
			}
			continue
		}
		want := ref.Results[r.Index]
		r.Site = 0
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("post-recovery device %d diverges from the hook-free reference:\n%+v\nvs\n%+v",
				r.Index, r, want)
		}
	}
}

// TestWatchdogCUSUMResetAfterRecalibration: a Recalibrate hook that hands
// back the SAME drifted gate does not fix anything — the swapped-in
// watchdog re-accumulates against the same bad baseline and must alarm
// again. Every alarm carrying Samples >= MinSamples proves the charts
// (including the CUSUM sum) were fully reset by the swap rather than
// re-firing on stale accumulation.
func TestWatchdogCUSUMResetAfterRecalibration(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 50)

	drifted := *f.gate
	drifted.TrainMeanD = f.gate.TrainMeanD - 20*f.gate.TrainSigmaD
	eng := f.engine()
	eng.Gate = &drifted

	const minSamples = 5
	o := &Orchestrator{Engine: eng, Opt: Options{
		Sites:    2,
		Breaker:  quietBreaker(),
		Watchdog: WatchdogConfig{MinSamples: minSamples},
		Recalibrate: func(a DriftAlarm) (*core.Calibration, *floor.Gate, error) {
			// A retrain that converges on the same drifted baseline.
			return f.cal, &drifted, nil
		},
	}}
	rep, err := o.Run(context.Background(), 31, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alarms) < 2 {
		t.Fatalf("%d alarms; an unfixed drift must re-alarm after recalibration", len(rep.Alarms))
	}
	if rep.Recalibrations < 2 {
		t.Fatalf("%d recalibrations for %d alarms", rep.Recalibrations, len(rep.Alarms))
	}
	for i, a := range rep.Alarms {
		if a.Samples < minSamples {
			t.Fatalf("alarm %d fired on %d samples (< MinSamples %d): charts not reset by the recalibration swap: %+v",
				i, a.Samples, minSamples, a)
		}
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d binned across repeated recalibrations", rep.Lot.Binned(), len(lot))
	}
}
