package lotrun

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/floor"
)

// The lot journal is a JSON-lines file: one header line, then one line per
// completed device, each fsync'd before the result is considered
// committed. A SIGKILL mid-lot therefore loses at most the record being
// written — which replay treats as corruption and re-screens — and never a
// committed device. Because every device's randomness derives from
// (lot seed, index), re-screening an uncommitted device on resume
// reproduces exactly the result the killed run was about to write.
const journalVersion = 1

// journalHeader is the first line of a lot journal: enough identity to
// refuse resuming the wrong lot.
type journalHeader struct {
	Type    string  `json:"type"` // "header"
	Version int     `json:"version"`
	LotSeed int64   `json:"lot_seed"`
	Devices int     `json:"devices"`
	FaultP  float64 `json:"fault_p"` // total per-insertion fault probability
}

// journalRecord is one committed device line.
type journalRecord struct {
	Type   string             `json:"type"` // "device"
	Result floor.DeviceResult `json:"result"`
}

// ReplayStats summarizes what journal replay found.
type ReplayStats struct {
	// Records is the number of valid device records replayed.
	Records int
	// Corrupt counts unparseable or invalid lines skipped (a truncated
	// tail from a crash mid-write lands here).
	Corrupt int
	// Duplicates counts device indices journaled more than once; the
	// first committed record wins, so a device is never double-counted.
	Duplicates int
}

// journal is the append side. Writes go through a single collector
// goroutine, so no locking is needed here.
type journal struct {
	f *os.File
}

// createJournal starts a fresh journal (truncating any previous file) and
// commits the header.
func createJournal(path string, hdr journalHeader) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lotrun: create journal: %w", err)
	}
	j := &journal{f: f}
	if err := j.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *journal) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("lotrun: journal marshal: %w", err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("lotrun: journal write: %w", err)
	}
	// fsync per record: the crash-safety contract. The cost is modeled
	// into the lot economics as RetestLoad.JournalS.
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("lotrun: journal fsync: %w", err)
	}
	return nil
}

// commit appends one device result.
func (j *journal) commit(res floor.DeviceResult) error {
	return j.writeLine(journalRecord{Type: "device", Result: res})
}

func (j *journal) close() error { return j.f.Close() }

// validResult rejects records whose payload cannot be a committed device:
// replaying them would corrupt the lot accounting.
func validResult(res floor.DeviceResult, devices int) bool {
	return res.Index >= 0 && res.Index < devices &&
		res.Insertions >= 1 &&
		res.Bin >= floor.BinPass && res.Bin <= floor.BinFallback
}

// replayJournal reads a journal tolerantly: garbage lines and a truncated
// last line are skipped (counted in stats.Corrupt), duplicate device
// indices keep the first committed record, and the returned offset is the
// end of the last valid line — the point a resumed journal truncates to
// before appending, so a torn tail can never corrupt later records.
func replayJournal(path string) (journalHeader, map[int]floor.DeviceResult, int64, ReplayStats, error) {
	var hdr journalHeader
	var stats ReplayStats
	results := make(map[int]floor.DeviceResult)

	f, err := os.Open(path)
	if err != nil {
		return hdr, nil, 0, stats, fmt.Errorf("lotrun: open journal: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var offset, validEnd int64
	haveHeader := false
	for {
		line, err := r.ReadBytes('\n')
		offset += int64(len(line))
		if len(line) > 0 {
			ok := false
			if !haveHeader {
				// The header must be the first valid line.
				var h journalHeader
				if json.Unmarshal(line, &h) == nil && h.Type == "header" &&
					h.Version == journalVersion && h.Devices > 0 {
					hdr = h
					haveHeader = true
					ok = true
				}
			} else {
				var rec journalRecord
				if json.Unmarshal(line, &rec) == nil && rec.Type == "device" &&
					validResult(rec.Result, hdr.Devices) {
					if _, dup := results[rec.Result.Index]; dup {
						stats.Duplicates++
					} else {
						results[rec.Result.Index] = rec.Result
						stats.Records++
					}
					ok = true
				}
			}
			if ok {
				validEnd = offset
			} else {
				stats.Corrupt++
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return hdr, nil, 0, stats, fmt.Errorf("lotrun: read journal: %w", err)
		}
	}
	if !haveHeader {
		return hdr, nil, 0, stats, fmt.Errorf("lotrun: journal %s has no valid header", path)
	}
	return hdr, results, validEnd, stats, nil
}

// resumeJournal reopens a journal for appending, truncated to the end of
// its last valid line so new records always start on a fresh line.
func resumeJournal(path string, validEnd int64) (*journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lotrun: reopen journal: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("lotrun: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("lotrun: seek journal: %w", err)
	}
	return &journal{f: f}, nil
}
