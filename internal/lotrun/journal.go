package lotrun

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/diskfault"
	"repro/internal/floor"
)

// The lot journal is a JSON-lines file: one header line, then one line per
// completed device, each fsync'd before the result is considered
// committed. A SIGKILL mid-lot therefore loses at most the record being
// written — which replay treats as corruption and re-screens — and never a
// committed device. Because every device's randomness derives from
// (lot seed, index), re-screening an uncommitted device on resume
// reproduces exactly the result the killed run was about to write.
//
// Each line written today is a CRC envelope `{"crc":C,"rec":R}` where C is
// the IEEE CRC32 of the raw bytes of R: a torn or scribbled-over write
// that still happens to parse as JSON (a flipped digit inside a float, a
// partial overwrite landing on a syntactically valid prefix) is detected
// by the checksum instead of being silently committed. The reader stays
// tolerant of legacy CRC-less lines, which carry the record directly.
//
// All file access goes through the diskfault.FS seam: production uses
// diskfault.OS, fault-injection tests substitute a seeded FaultFS. The
// journal additionally self-repairs after a failed write — a torn partial
// line is truncated away (or newline-terminated when truncation itself
// fails) before the record is retried — so a transient I/O error never
// leaves a committed record unreadable.
//
// The journal is shared infrastructure: the in-process orchestrator
// (Orchestrator) and the distributed coordinator (internal/netfloor)
// commit through the same exported API, so a lot started locally can even
// be resumed distributed — the journal only speaks (lot identity,
// DeviceResult).
const JournalVersion = 1

// ErrJournalDegraded marks a lot that ran (or finished) in degraded
// journal-less mode: the journal failed persistently, the lot's bins are
// still complete and deterministic, but crash-resume is no longer
// possible for this lot. It is surfaced in LotReport, /statusz and the
// client wire protocol rather than aborting the lot.
var ErrJournalDegraded = errors.New("lotrun: journal degraded — lot ran journal-less, resume disabled")

// JournalHeader is the first line of a lot journal: enough identity to
// refuse resuming the wrong lot.
type JournalHeader struct {
	Type    string  `json:"type"` // "header"
	Version int     `json:"version"`
	LotSeed int64   `json:"lot_seed"`
	Devices int     `json:"devices"`
	FaultP  float64 `json:"fault_p"` // total per-insertion fault probability
	// Fingerprint is the screening engine's floor.Engine.Fingerprint —
	// calibration, gate and policy identity. 0 on legacy journals (then
	// the check is skipped on resume).
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	// ModelVersion is the calibration registry version the lot is pinned
	// to (0 = the process's base model, and what legacy journals decode
	// to). A lot keeps its version for life; resuming under a different
	// one is refused with ErrModelMismatch.
	ModelVersion int `json:"model_version,omitempty"`
}

// journalRecord is one committed device line.
type journalRecord struct {
	Type   string             `json:"type"` // "device"
	Result floor.DeviceResult `json:"result"`
}

// crcEnvelope wraps every written line: Crc is the IEEE CRC32 of the raw
// Rec bytes.
type crcEnvelope struct {
	Crc *uint32         `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// ReplayStats summarizes what journal replay found.
type ReplayStats struct {
	// Records is the number of valid device records replayed.
	Records int
	// Corrupt counts unparseable or invalid lines skipped (a truncated
	// tail from a crash mid-write, or a CRC mismatch, lands here).
	Corrupt int
	// Duplicates counts device indices journaled more than once; the
	// first committed record wins, so a device is never double-counted.
	Duplicates int
}

// RetryPolicy bounds the journal's retry-with-backoff on commit failure.
type RetryPolicy struct {
	// Attempts is the total number of tries per record (default 3).
	Attempts int
	// Backoff is the sleep before the first retry, doubling after each
	// (default 1ms).
	Backoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	return p
}

// Journal is the append side. Writes go through a single collector
// goroutine, so no locking is needed here.
type Journal struct {
	f diskfault.File
	// off is the file offset at the end of the last committed line — the
	// truncation target when a failed write leaves a partial line behind.
	off int64
	// dirty marks that the last write failed and the tail may hold a
	// torn partial line that must be repaired before the next record.
	dirty bool
}

// CreateJournal starts a fresh journal on the real filesystem.
func CreateJournal(path string, hdr JournalHeader) (*Journal, error) {
	return CreateJournalFS(diskfault.OS, path, hdr)
}

// CreateJournalFS starts a fresh journal (truncating any previous file),
// commits the header, and fsyncs the parent directory so a crash between
// create and the first device commit cannot lose the file entirely.
func CreateJournalFS(fsys diskfault.FS, path string, hdr JournalHeader) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lotrun: create journal: %w", err)
	}
	j := &Journal{f: f}
	if err := j.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	// Directory fsync makes the journal's existence itself durable —
	// the same contract modelreg gives its record renames.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("lotrun: fsync journal dir: %w", err)
	}
	return j, nil
}

func (j *Journal) writeLine(v any) error {
	rec, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("lotrun: journal marshal: %w", err)
	}
	crc := crc32.ChecksumIEEE(rec)
	data, err := json.Marshal(crcEnvelope{Crc: &crc, Rec: rec})
	if err != nil {
		return fmt.Errorf("lotrun: journal envelope: %w", err)
	}
	data = append(data, '\n')
	if j.dirty {
		// A previous write failed and may have left a torn partial line
		// (or an unsynced whole line). Truncate back to the last
		// committed offset so the retry starts on a clean boundary; if
		// truncation itself fails, terminate the garbage line with a
		// newline instead — replay counts it corrupt and skips it, and
		// the retried record still lands parseable on its own line.
		if j.f.Truncate(j.off) == nil {
			if _, err := j.f.Seek(j.off, io.SeekStart); err == nil {
				j.dirty = false
			}
		}
		if j.dirty {
			data = append([]byte{'\n'}, data...)
		}
	}
	if _, err := j.f.Write(data); err != nil {
		j.dirty = true
		return fmt.Errorf("lotrun: journal write: %w", err)
	}
	// fsync per record: the crash-safety contract. The cost is modeled
	// into the lot economics as RetestLoad.JournalS.
	if err := j.f.Sync(); err != nil {
		// The bytes were written but durability is unknown; mark dirty so
		// a retry truncates and rewrites rather than duplicating.
		j.dirty = true
		return fmt.Errorf("lotrun: journal fsync: %w", err)
	}
	j.dirty = false
	if pos, err := j.f.Seek(0, io.SeekCurrent); err == nil {
		j.off = pos
	}
	return nil
}

// Commit appends one device result.
func (j *Journal) Commit(res floor.DeviceResult) error {
	return j.writeLine(journalRecord{Type: "device", Result: res})
}

// CommitRetry appends one device result with bounded retry-with-backoff:
// transient I/O faults (a flaky fsync, a torn write) are absorbed here;
// only a persistently failing journal surfaces an error, at which point
// the caller decides between aborting and degrading to journal-less mode.
func (j *Journal) CommitRetry(res floor.DeviceResult, pol RetryPolicy) error {
	pol = pol.withDefaults()
	backoff := pol.Backoff
	var err error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err = j.Commit(res); err == nil {
			return nil
		}
	}
	return err
}

// Close closes the underlying file (committed records are already synced).
func (j *Journal) Close() error { return j.f.Close() }

// validResult rejects records whose payload cannot be a committed device:
// replaying them would corrupt the lot accounting.
func validResult(res floor.DeviceResult, devices int) bool {
	return res.Index >= 0 && res.Index < devices &&
		res.Insertions >= 1 &&
		res.Bin >= floor.BinPass && res.Bin <= floor.BinFallback
}

// unwrapLine returns the record payload of one journal line: the CRC
// envelope's Rec when the checksum verifies, the line itself for legacy
// CRC-less journals, and nil when the line is corrupt.
func unwrapLine(line []byte) []byte {
	var env crcEnvelope
	if json.Unmarshal(line, &env) == nil && env.Rec != nil {
		if env.Crc == nil || crc32.ChecksumIEEE(env.Rec) != *env.Crc {
			return nil
		}
		return env.Rec
	}
	return line
}

// ReplayJournal reads a journal on the real filesystem.
func ReplayJournal(path string) (JournalHeader, map[int]floor.DeviceResult, int64, ReplayStats, error) {
	return ReplayJournalFS(diskfault.OS, path)
}

// ReplayJournalFS reads a journal tolerantly: garbage lines,
// CRC-mismatched lines and a truncated last line are skipped (counted in
// stats.Corrupt), duplicate device indices keep the first committed
// record, and the returned offset is the end of the last valid line — the
// point a resumed journal truncates to before appending, so a torn tail
// can never corrupt later records.
func ReplayJournalFS(fsys diskfault.FS, path string) (JournalHeader, map[int]floor.DeviceResult, int64, ReplayStats, error) {
	var hdr JournalHeader
	var stats ReplayStats
	results := make(map[int]floor.DeviceResult)

	f, err := fsys.Open(path)
	if err != nil {
		return hdr, nil, 0, stats, fmt.Errorf("lotrun: open journal: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var offset, validEnd int64
	haveHeader := false
	for {
		line, err := r.ReadBytes('\n')
		offset += int64(len(line))
		if len(line) > 0 {
			ok := false
			if rec := unwrapLine(line); rec != nil {
				if !haveHeader {
					// The header must be the first valid line.
					var h JournalHeader
					if json.Unmarshal(rec, &h) == nil && h.Type == "header" &&
						h.Version == JournalVersion && h.Devices > 0 && h.ModelVersion >= 0 {
						hdr = h
						haveHeader = true
						ok = true
					}
				} else {
					var jr journalRecord
					if json.Unmarshal(rec, &jr) == nil && jr.Type == "device" &&
						validResult(jr.Result, hdr.Devices) {
						if _, dup := results[jr.Result.Index]; dup {
							stats.Duplicates++
						} else {
							results[jr.Result.Index] = jr.Result
							stats.Records++
						}
						ok = true
					}
				}
			}
			if ok {
				validEnd = offset
			} else {
				stats.Corrupt++
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return hdr, nil, 0, stats, fmt.Errorf("lotrun: read journal: %w", err)
		}
	}
	if !haveHeader {
		return hdr, nil, 0, stats, fmt.Errorf("lotrun: journal %s has no valid header", path)
	}
	return hdr, results, validEnd, stats, nil
}

// ResumeJournal reopens a journal for appending on the real filesystem.
func ResumeJournal(path string, validEnd int64) (*Journal, error) {
	return ResumeJournalFS(diskfault.OS, path, validEnd)
}

// ResumeJournalFS reopens a journal for appending, truncated to the end
// of its last valid line so new records always start on a fresh line.
func ResumeJournalFS(fsys diskfault.FS, path string, validEnd int64) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lotrun: reopen journal: %w", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("lotrun: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("lotrun: seek journal: %w", err)
	}
	return &Journal{f: f, off: validEnd}, nil
}
