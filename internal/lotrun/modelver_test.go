package lotrun

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/modelreg"
)

// TestJournalModelVersionPinned: the journal header pins the lot to its
// calibration version; resuming under a different version is refused with
// the typed ErrModelMismatch (an upgrade problem, not a retryable one),
// and resuming under the right version completes the lot bit-identically.
func TestJournalModelVersionPinned(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 30)
	path := filepath.Join(t.TempDir(), "lot.journal")

	ref, err := f.engine().RunLot(41, lot, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt the lot partway so there is something to resume.
	ctx, cancel := context.WithCancel(context.Background())
	o := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 2, JournalPath: path, Breaker: quietBreaker(), ModelVersion: 3,
		Hook: func(site, device int) {
			if device == 15 {
				cancel()
			}
		},
	}}
	if _, err := o.Run(ctx, 41, lot, nil); err == nil {
		t.Fatal("interrupted run reported success")
	}

	wrong := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 2, JournalPath: path, Breaker: quietBreaker(), ModelVersion: 1,
	}}
	if _, err := wrong.Resume(context.Background(), 41, lot, nil); !errors.Is(err, ErrModelMismatch) {
		t.Fatalf("resume under the wrong model version: err=%v, want ErrModelMismatch", err)
	}

	right := &Orchestrator{Engine: f.engine(), Opt: Options{
		Sites: 2, JournalPath: path, Breaker: quietBreaker(), ModelVersion: 3,
	}}
	rep, err := right.Resume(context.Background(), 41, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Lot.Results {
		got := rep.Lot.Results[i]
		got.Site = 0
		want := ref.Results[i]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("device %d after resume diverges from serial reference", i)
		}
	}
}

func envelopeLine(t *testing.T, rec any) []byte {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	crc := crc32.ChecksumIEEE(raw)
	line, err := json.Marshal(crcEnvelope{Crc: &crc, Rec: raw})
	if err != nil {
		t.Fatal(err)
	}
	return append(line, '\n')
}

// TestJournalGarbageModelVersionHeader: a header whose model version is
// garbage — wrong JSON type, or negative — must be rejected by the
// torn-tail-tolerant reader as an invalid header, cleanly, never panicking
// and never replaying the device records that follow it.
func TestJournalGarbageModelVersionHeader(t *testing.T) {
	dir := t.TempDir()
	devRec := envelopeLine(t, journalRecord{Type: "device", Result: floor.DeviceResult{
		Index: 0, Bin: floor.BinPass, Insertions: 1,
	}})
	cases := []struct {
		name   string
		header []byte
	}{
		{"string-version", envelopeLine(t, map[string]any{
			"type": "header", "version": JournalVersion, "lot_seed": 41,
			"devices": 4, "model_version": "abc",
		})},
		{"negative-version", envelopeLine(t, map[string]any{
			"type": "header", "version": JournalVersion, "lot_seed": 41,
			"devices": 4, "model_version": -1,
		})},
		{"float-version", envelopeLine(t, map[string]any{
			"type": "header", "version": JournalVersion, "lot_seed": 41,
			"devices": 4, "model_version": 2.5,
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".journal")
			if err := os.WriteFile(path, append(append([]byte{}, tc.header...), devRec...), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, _, err := ReplayJournal(path)
			if err == nil {
				t.Fatal("garbage model-version header accepted")
			}
		})
	}
}

// TestDriftRecalStagesCandidate: with a registry configured, a drift
// alarm's recalibration is enqueued as a staged candidate version and the
// running lot's engine is NEVER swapped — its bins stay bit-identical to
// a serial run of its pinned model.
func TestDriftRecalStagesCandidate(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 50)

	drifted := *f.gate
	drifted.TrainMeanD = f.gate.TrainMeanD - 20*f.gate.TrainSigmaD
	eng := f.engine()
	eng.Gate = &drifted

	ref, err := eng.RunLot(31, lot, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg, err := modelreg.Open("")
	if err != nil {
		t.Fatal(err)
	}
	o := &Orchestrator{Engine: eng, Opt: Options{
		Sites:    2,
		Breaker:  quietBreaker(),
		Watchdog: WatchdogConfig{MinSamples: 5},
		Registry: reg,
		Logf:     t.Logf,
		Recalibrate: func(a DriftAlarm) (*core.Calibration, *floor.Gate, error) {
			return f.cal, f.gate, nil
		},
	}}
	rep, err := o.Run(context.Background(), 31, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StagedVersions) == 0 || rep.Recalibrations == 0 {
		t.Fatalf("drift recalibration staged nothing: staged=%v recals=%d alarms=%d",
			rep.StagedVersions, rep.Recalibrations, len(rep.Alarms))
	}
	if got := reg.Versions(); len(got) != len(rep.StagedVersions) {
		t.Fatalf("registry has versions %v, report staged %v", got, rep.StagedVersions)
	}
	art, ok := reg.Get(rep.StagedVersions[0])
	if !ok || art.Note == "" {
		t.Fatalf("staged artifact missing or without provenance: %+v", art)
	}
	if reg.Active() != 0 {
		t.Fatal("staging a candidate must not activate it")
	}
	// The load-bearing half: no mid-lot swap happened.
	for i := range rep.Lot.Results {
		got := rep.Lot.Results[i]
		got.Site = 0
		if !reflect.DeepEqual(got, ref.Results[i]) {
			t.Fatalf("device %d diverges from the pinned-model reference: registry mode must not swap the engine mid-lot", i)
		}
	}
}

// TestDriftRecalRegistryAbsentKeepsLegacySwap is documentation-by-test:
// without a registry the legacy swap path still applies (covered in depth
// by TestWatchdogCUSUMResetAfterRecalibration); with a registry whose
// staging fails, the lot logs and continues.
func TestDriftRecalStagingFailureContinues(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 40)

	drifted := *f.gate
	drifted.TrainMeanD = f.gate.TrainMeanD - 20*f.gate.TrainSigmaD
	eng := f.engine()
	eng.Gate = &drifted

	reg, err := modelreg.Open("")
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	o := &Orchestrator{Engine: eng, Opt: Options{
		Sites:    2,
		Breaker:  quietBreaker(),
		Watchdog: WatchdogConfig{MinSamples: 5},
		Registry: reg,
		Logf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
		Recalibrate: func(a DriftAlarm) (*core.Calibration, *floor.Gate, error) {
			// A "retrain" that produces an unusable artifact (no models).
			return &core.Calibration{Stimulus: f.stim}, f.gate, nil
		},
	}}
	rep, err := o.Run(context.Background(), 33, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d binned: staging failure must not cost devices", rep.Lot.Binned(), len(lot))
	}
	if len(rep.StagedVersions) != 0 {
		t.Fatalf("unusable artifact staged: %v", rep.StagedVersions)
	}
	if len(logged) == 0 {
		t.Fatal("staging failure was not logged")
	}
}
