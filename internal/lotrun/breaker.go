package lotrun

import (
	"fmt"

	"repro/internal/floor"
)

// BreakerConfig tunes the per-site circuit breaker. A tester site whose
// contactor is wearing out (or whose board has drifted) does not fail one
// device — it fails a run of them, and every gated-out insertion it burns
// is a retest the lot pays for. The breaker watches each site's insertion
// verdicts and takes the site out of rotation when they indicate a site
// problem rather than a device problem.
type BreakerConfig struct {
	// TripConsecutive is the number of consecutive gated-out insertion
	// verdicts (INVALID or SUSPECT, including acquisition errors and
	// supervision faults) that trips the site (default 8). A CLEAN capture
	// resets the run — healthy sites see CLEAN on almost every device, so
	// only a systemic site fault sustains a run this long.
	TripConsecutive int
	// ProbeBackoffS is the modeled quarantine time before the first
	// half-open re-probe insertion (default 5 s — contactor cool-down /
	// operator-glance scale).
	ProbeBackoffS float64
	// BackoffFactor grows the quarantine on each failed probe (default 2).
	BackoffFactor float64
	// MaxBackoffS caps the quarantine growth (default 60 s).
	MaxBackoffS float64
}

func (c *BreakerConfig) defaults() {
	if c.TripConsecutive <= 0 {
		c.TripConsecutive = 8
	}
	if c.ProbeBackoffS <= 0 {
		c.ProbeBackoffS = 5
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.MaxBackoffS <= 0 {
		c.MaxBackoffS = 60
	}
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	stateClosed   breakerState = iota // normal service
	stateOpen                         // quarantined, waiting out the backoff
	stateHalfOpen                     // next device is the probe insertion
)

func (s breakerState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// TripEvent records one breaker trip for the lot report.
type TripEvent struct {
	Site int
	// AfterDevice is the device index whose outcome tripped the breaker
	// (or whose probe failed).
	AfterDevice int
	// Consecutive is the gated-out run length at the trip.
	Consecutive int
	// QuarantineS is the modeled backoff charged before the next probe.
	QuarantineS float64
}

// Breaker is one site's circuit breaker. It is owned by a single worker
// goroutine (the in-process orchestrator's site worker, or the
// distributed coordinator's per-remote loop); the orchestrator collects
// its stats after the workers join.
type Breaker struct {
	cfg         BreakerConfig
	state       breakerState
	consecutive int     // current gated-out insertion run
	failedOpens int     // consecutive failed probes (drives backoff growth)
	trips       int     // total trips
	quarantineS float64 // total modeled quarantine charged
	events      []TripEvent
}

// NewBreaker builds a breaker with the config's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg}
}

// backoff is the modeled quarantine for the current open period.
func (b *Breaker) backoff() float64 {
	q := b.cfg.ProbeBackoffS
	for i := 0; i < b.failedOpens-1; i++ {
		q *= b.cfg.BackoffFactor
		if q >= b.cfg.MaxBackoffS {
			return b.cfg.MaxBackoffS
		}
	}
	return q
}

// BeginProbe transitions open -> half-open, charging the quarantine
// backoff. The worker calls it before pulling the next device; the device
// it then screens is the probe insertion.
func (b *Breaker) BeginProbe() float64 {
	if b.state != stateOpen {
		return 0
	}
	q := b.backoff()
	b.quarantineS += q
	b.state = stateHalfOpen
	return q
}

// Record folds one device outcome into the state machine. Each insertion
// verdict counts individually: CLEAN resets the gated-out run, anything
// else extends it; a supervision fault (panic, deadline) counts as one
// more failure. Returns true if this outcome tripped (or re-tripped) the
// breaker.
func (b *Breaker) Record(res floor.DeviceResult) bool {
	for _, v := range res.Verdicts {
		if v == floor.VerdictClean {
			b.consecutive = 0
		} else {
			b.consecutive++
		}
	}
	if res.Err != "" {
		b.consecutive++
	}
	probeClean := res.Err == "" && len(res.Verdicts) > 0 &&
		res.Verdicts[len(res.Verdicts)-1] == floor.VerdictClean

	switch b.state {
	case stateHalfOpen:
		if probeClean {
			// Probe succeeded: close and forget the backoff history.
			b.state = stateClosed
			b.failedOpens = 0
			b.consecutive = 0
			return false
		}
		// Probe failed: back to quarantine with a longer backoff.
		b.failedOpens++
		b.trips++
		b.state = stateOpen
		b.events = append(b.events, TripEvent{
			Site: res.Site, AfterDevice: res.Index,
			Consecutive: b.consecutive, QuarantineS: b.backoff(),
		})
		return true
	case stateClosed:
		if b.consecutive >= b.cfg.TripConsecutive {
			b.failedOpens = 1
			b.trips++
			b.state = stateOpen
			b.events = append(b.events, TripEvent{
				Site: res.Site, AfterDevice: res.Index,
				Consecutive: b.consecutive, QuarantineS: b.backoff(),
			})
			return true
		}
	}
	return false
}

// Open reports whether the site is quarantined (waiting out the backoff);
// the worker must BeginProbe before screening its next device.
func (b *Breaker) Open() bool { return b.state == stateOpen }

// State names the current state ("closed", "open", "half-open") for
// status endpoints. Like every Breaker method it must be called by the
// owning goroutine (or under the owner's lock).
func (b *Breaker) State() string { return b.state.String() }

// TotalTrips returns how many times the breaker has tripped.
func (b *Breaker) TotalTrips() int { return b.trips }

// QuarantineTotalS returns the total modeled quarantine charged.
func (b *Breaker) QuarantineTotalS() float64 { return b.quarantineS }

// Events returns every trip recorded so far.
func (b *Breaker) Events() []TripEvent { return b.events }
