package lotrun

import (
	"math"
	"sync"

	"repro/internal/floor"
)

// WatchdogConfig tunes the drift watchdog. The regression map is only
// valid inside the region its training set covered; when the process (or
// the tester) drifts, clean captures slide toward the edge of the training
// envelope long before they gate out. The watchdog watches the stream of
// accepted-capture gate distances, standardized against the training
// set's own distance statistics, through the two classic change
// detectors: an EWMA control chart (slow mean shifts) and a one-sided
// CUSUM (accumulated small shifts). Either crossing its limit raises a
// recalibration alarm.
type WatchdogConfig struct {
	// Disabled turns the watchdog off (it is otherwise active whenever the
	// engine runs gated).
	Disabled bool
	// Lambda is the EWMA weight (default 0.2).
	Lambda float64
	// EWMALimit is the alarm threshold in asymptotic EWMA sigmas of the
	// standardized distance (default 3 — the usual 3-sigma control limit).
	EWMALimit float64
	// CUSUMSlack is the CUSUM allowance k in training sigmas (default 0.5:
	// tuned to detect ~1-sigma mean shifts).
	CUSUMSlack float64
	// CUSUMLimit is the CUSUM decision interval h in training sigmas
	// (default 8).
	CUSUMLimit float64
	// MinSamples is the number of observations required before an alarm
	// can fire (default 16) — a warm-up so the first few devices of a lot
	// cannot trip the chart.
	MinSamples int
}

func (c *WatchdogConfig) defaults() {
	if c.Lambda <= 0 || c.Lambda > 1 {
		c.Lambda = 0.2
	}
	if c.EWMALimit <= 0 {
		c.EWMALimit = 3
	}
	if c.CUSUMSlack <= 0 {
		c.CUSUMSlack = 0.5
	}
	if c.CUSUMLimit <= 0 {
		c.CUSUMLimit = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
}

// DriftAlarm is one recalibration alarm raised by the watchdog.
type DriftAlarm struct {
	// Device is the lot index whose observation crossed the limit.
	Device int
	// Detector names the chart that fired: "ewma" or "cusum".
	Detector string
	// Samples is how many observations the charts had accumulated.
	Samples int
	// EWMA and CUSUM are the chart values at the alarm (standardized
	// units).
	EWMA, CUSUM float64
}

// Watchdog monitors accepted-capture gate distances for process drift
// against a gate's training statistics. It is safe for concurrent use;
// the orchestrator feeds it from the collector goroutine.
type Watchdog struct {
	mu          sync.Mutex
	cfg         WatchdogConfig
	mean, sigma float64 // training baseline to standardize against

	n      int
	ewma   float64
	cusum  float64
	alarms []DriftAlarm
}

// NewWatchdog builds a watchdog standardizing against the gate's training
// distance statistics.
func NewWatchdog(g *floor.Gate, cfg WatchdogConfig) *Watchdog {
	cfg.defaults()
	return &Watchdog{cfg: cfg, mean: g.TrainMeanD, sigma: math.Max(g.TrainSigmaD, 1e-15)}
}

// ewmaLimit is the alarm threshold on the EWMA chart: EWMALimit asymptotic
// EWMA sigmas, where the EWMA of a unit-variance stream has asymptotic
// sigma sqrt(lambda/(2-lambda)).
func (w *Watchdog) ewmaLimit() float64 {
	return w.cfg.EWMALimit * math.Sqrt(w.cfg.Lambda/(2-w.cfg.Lambda))
}

// Observe folds one accepted-capture distance into the charts and returns
// a non-nil alarm if a control limit was crossed. After an alarm the
// charts reset, so the watchdog re-arms (e.g. to verify a recalibration
// actually brought the process back).
func (w *Watchdog) Observe(device int, d float64) *DriftAlarm {
	if w == nil || w.cfg.Disabled {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	z := (d - w.mean) / w.sigma
	w.n++
	w.ewma = (1-w.cfg.Lambda)*w.ewma + w.cfg.Lambda*z
	w.cusum = math.Max(0, w.cusum+z-w.cfg.CUSUMSlack)
	if w.n < w.cfg.MinSamples {
		return nil
	}
	detector := ""
	switch {
	case w.ewma > w.ewmaLimit():
		detector = "ewma"
	case w.cusum > w.cfg.CUSUMLimit:
		detector = "cusum"
	default:
		return nil
	}
	alarm := DriftAlarm{Device: device, Detector: detector, Samples: w.n, EWMA: w.ewma, CUSUM: w.cusum}
	w.alarms = append(w.alarms, alarm)
	w.n, w.ewma, w.cusum = 0, 0, 0
	return &alarm
}

// Alarms returns the alarms raised so far.
func (w *Watchdog) Alarms() []DriftAlarm {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]DriftAlarm, len(w.alarms))
	copy(out, w.alarms)
	return out
}
