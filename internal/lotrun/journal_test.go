package lotrun

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/floor"
	"repro/internal/lna"
)

func mkResult(index int, bin floor.Bin) floor.DeviceResult {
	return floor.DeviceResult{
		Index: index, Bin: bin, Insertions: 1, CleanD: 0.5,
		Faults:   []floor.FaultKind{floor.FaultNone},
		Verdicts: []floor.Verdict{floor.VerdictClean},
		Pred:     lna.Specs{GainDB: 12.25, NFDB: 3.5, IIP3DBm: -8.125},
		TruePass: true,
	}
}

func writeTestJournal(t *testing.T, path string, n int) {
	t.Helper()
	j, err := CreateJournal(path, JournalHeader{
		Type: "header", Version: JournalVersion, LotSeed: 9, Devices: 100, FaultP: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < n; i++ {
		if err := j.Commit(mkResult(i, floor.BinPass)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalRoundTrip: committed records replay exactly, including float
// spec predictions (JSON round-trips Go float64 bit-exactly).
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	writeTestJournal(t, path, 5)
	hdr, results, _, stats, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.LotSeed != 9 || hdr.Devices != 100 || hdr.FaultP != 0.1 {
		t.Fatalf("header mangled: %+v", hdr)
	}
	if stats.Records != 5 || stats.Corrupt != 0 || stats.Duplicates != 0 {
		t.Fatalf("stats %+v", stats)
	}
	for i := 0; i < 5; i++ {
		got, ok := results[i]
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		want := mkResult(i, floor.BinPass)
		if got.Pred != want.Pred || got.Bin != want.Bin || got.CleanD != want.CleanD {
			t.Fatalf("record %d mangled: %+v", i, got)
		}
	}
}

// TestJournalTruncatedTail: a crash mid-write leaves a partial last line;
// replay must recover every fully committed record and resume appending on
// a fresh line.
func TestJournalTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	writeTestJournal(t, path, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the last record (drop 10 bytes).
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	hdr, results, validEnd, stats, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 || stats.Corrupt != 1 {
		t.Fatalf("truncated tail: stats %+v, want 3 records 1 corrupt", stats)
	}
	if _, ok := results[3]; ok {
		t.Fatal("the torn record must not replay")
	}
	if hdr.Devices != 100 {
		t.Fatalf("header lost: %+v", hdr)
	}

	// Resume truncates the torn tail and appends cleanly.
	j, err := ResumeJournal(path, validEnd)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(mkResult(3, floor.BinFail)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, results, _, stats, err = ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 4 || stats.Corrupt != 0 {
		t.Fatalf("after resume: stats %+v", stats)
	}
	if results[3].Bin != floor.BinFail {
		t.Fatalf("re-screened record lost: %+v", results[3])
	}
}

// TestJournalGarbageAndDuplicates: garbage bytes between records are
// skipped, and a device journaled twice keeps its first committed record —
// never a double count.
func TestJournalGarbageAndDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	writeTestJournal(t, path, 2)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\x00\xffgarbage not json\n{\"type\":\"device\"\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err := ResumeJournal(path, func() int64 {
		_, _, end, _, err := ReplayJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		return end
	}())
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate of device 1 with a different bin, then a fresh device 2.
	if err := j.Commit(mkResult(1, floor.BinFail)); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(mkResult(2, floor.BinFallback)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, results, _, stats, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 {
		t.Fatalf("replayed %d records, want 3 (no double count)", stats.Records)
	}
	if stats.Duplicates != 1 {
		t.Fatalf("duplicates %d, want 1", stats.Duplicates)
	}
	if results[1].Bin != floor.BinPass {
		t.Fatalf("device 1 double-counted: first committed record must win, got bin %v", results[1].Bin)
	}
	if results[2].Bin != floor.BinFallback {
		t.Fatalf("record after garbage lost: %+v", results[2])
	}
}

// TestJournalRejectsInvalidRecords: records whose payload cannot be a
// committed device (index out of range, zero insertions, bogus bin) are
// treated as corruption, not replayed.
func TestJournalRejectsInvalidRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	j, err := CreateJournal(path, JournalHeader{
		Type: "header", Version: JournalVersion, LotSeed: 1, Devices: 3, FaultP: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := []floor.DeviceResult{
		{Index: -1, Insertions: 1},
		{Index: 3, Insertions: 1},         // out of range for Devices: 3
		{Index: 0, Insertions: 0},         // never inserted
		{Index: 1, Insertions: 1, Bin: 9}, // bogus bin
	}
	for _, r := range bad {
		if err := j.Commit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(mkResult(2, floor.BinPass)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, results, _, stats, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.Corrupt != len(bad) {
		t.Fatalf("stats %+v, want 1 record %d corrupt", stats, len(bad))
	}
	if _, ok := results[2]; !ok {
		t.Fatal("valid record lost among invalid ones")
	}
}

// TestJournalNoHeader: a journal without a valid header cannot identify
// its lot and must refuse to replay.
func TestJournalNoHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lot.journal")
	if err := os.WriteFile(path, []byte("not a journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := ReplayJournal(path); err == nil {
		t.Fatal("headerless journal must be refused")
	}
	if _, _, _, _, err := ReplayJournal(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing journal must be refused")
	}
}

// TestResumeAfterJournalCorruption: end-to-end — run a lot to completion,
// corrupt the journal (garbage + torn tail), and Resume: the corrupted
// records are re-screened and the final report matches the uncorrupted
// run exactly.
func TestResumeAfterJournalCorruption(t *testing.T) {
	f := getFixture(t)
	lot := testLot(t, f, 30)
	faults := floor.DefaultFaultModel(0.12)
	const seed = 77
	path := filepath.Join(t.TempDir(), "lot.journal")

	o := &Orchestrator{Engine: f.engine(), Opt: Options{Sites: 2, JournalPath: path, Breaker: quietBreaker()}}
	ref, err := o.Run(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail and scribble garbage over it.
	torn := append(append([]byte{}, data[:len(data)-25]...), []byte("\xde\xad{torn")...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := o.Resume(context.Background(), seed, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replay.Corrupt == 0 {
		t.Fatal("corruption not detected")
	}
	if rep.Replayed >= len(lot) {
		t.Fatalf("replayed %d of %d despite a torn tail", rep.Replayed, len(lot))
	}
	if rep.Lot.Binned() != len(lot) {
		t.Fatalf("%d of %d binned after corrupted resume", rep.Lot.Binned(), len(lot))
	}
	reportsEqual(t, "resume after corruption", ref.Lot, rep.Lot)
}
