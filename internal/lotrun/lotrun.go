// Package lotrun is the supervised concurrent lot orchestrator: it screens
// a production lot across N tester sites (worker goroutines), each running
// the fault-tolerant floor engine's per-device path, under a supervision
// tree that keeps every systemic failure mode from costing more than it
// must:
//
//   - panic isolation: a panic escaping the rf/linalg hot paths of one
//     device's screening is recovered into a structured device error and
//     the device routed to the fallback bin — one device, never the lot;
//   - per-device deadlines: a context deadline bounds each device's wall
//     time; a stuck device stops retesting and falls back;
//   - a crash-safe journal: every completed device is committed to an
//     fsync'd JSON-lines journal, and Resume replays the journal and
//     continues the lot exactly where a crash stopped it — idempotent
//     under the same lot seed because each device's randomness derives
//     from (lot seed, index) alone;
//   - per-site circuit breakers: a site producing consecutive gated-out
//     insertions (a degrading contactor, a drifted board) is quarantined
//     (open), re-probed after backoff (half-open), and its queue drains to
//     the healthy sites meanwhile;
//   - a drift watchdog: EWMA and CUSUM charts on the accepted-capture
//     gate distances, standardized against the gate's training statistics,
//     raise a recalibration alarm when the process drifts — and can
//     auto-trigger retraining of the regression map via a callback.
//
// The orchestrator's bins are bit-identical to the serial engine's on the
// same seeded lot, regardless of site count, scheduling or crash/resume
// history. Only the economics' quarantine charge depends on which devices
// land on which site.
package lotrun

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diskfault"
	"repro/internal/floor"
	"repro/internal/modelreg"
)

// ErrModelMismatch reports a journal written under a different calibration
// model than the one trying to resume it — an upgrade problem, not a
// transport or corruption problem. Callers distinguish it (errors.Is) from
// retryable failures and react by rebuilding the journal's pinned engine
// version instead of retrying blindly.
var ErrModelMismatch = errors.New("lotrun: calibration model mismatch")

// Options configures the orchestrator.
type Options struct {
	// Sites is the number of concurrent tester sites (default 1).
	Sites int
	// JournalPath enables the crash-safe lot journal when non-empty. Run
	// starts a fresh journal (overwriting any previous one); Resume
	// replays it and continues.
	JournalPath string
	// DeviceTimeout bounds one device's screening wall time (0 = none).
	// The first insertion always runs; an expired deadline stops further
	// retests and routes the device to fallback.
	DeviceTimeout time.Duration
	// Batch is how many devices a site screens per engine call through the
	// batched kernel (floor.Engine.ScreenBatch): shared stimulus state, one
	// device-batched FFT per retest round, matrix-matrix prediction.
	// Default (or 1) keeps the serial per-device path. Bins are
	// bit-identical at every batch size; only throughput changes. A site
	// takes whatever is queued up to Batch, so partial batches are normal.
	Batch int
	// JournalSyncS is the modeled cost of one journal record fsync charged
	// to the lot economics (default 0.5 ms). Modeled rather than measured
	// so serial, concurrent and resumed lots charge identically.
	JournalSyncS float64
	// FS is the filesystem seam the journal runs on (default diskfault.OS;
	// tests substitute a seeded diskfault.FaultFS).
	FS diskfault.FS
	// JournalRetry bounds the retry-with-backoff applied to each journal
	// commit before the lot degrades to journal-less mode (zero value:
	// 3 attempts, 1ms initial backoff).
	JournalRetry RetryPolicy
	// QuarantineSleepScale converts modeled quarantine seconds into real
	// sleep (default 0: quarantine is charged to the economics and the
	// site re-probes immediately; a positive scale makes the site actually
	// sit out while healthy sites drain its queue).
	QuarantineSleepScale float64
	// Breaker tunes the per-site circuit breakers.
	Breaker BreakerConfig
	// Watchdog tunes the drift watchdog (active whenever the engine runs
	// gated; set Watchdog.Disabled to turn it off).
	Watchdog WatchdogConfig
	// Hook, when set, runs inside each device's supervised region before
	// screening — test instrumentation for injecting panics or delays at
	// a chosen (site, device).
	Hook func(site, device int)
	// OnDrift, when set, is called for every drift alarm.
	OnDrift func(DriftAlarm)
	// Recalibrate, when set, is invoked on a drift alarm to retrain the
	// regression map. With a Registry configured the result is staged as
	// a candidate version for shadow evaluation and the running lot keeps
	// its pinned model — recalibration no longer stops the world. Without
	// a Registry the legacy behavior applies: the calibration and gate
	// are swapped in for all subsequent devices (the watchdog restarts
	// against the new gate's baseline), and bins are no longer
	// scheduling-independent for the remainder of the lot.
	Recalibrate func(DriftAlarm) (*core.Calibration, *floor.Gate, error)
	// Registry, when set, receives drift-demanded candidate calibrations
	// as staged versions (see Recalibrate). Staging failures are logged
	// and the lot continues — the registry is an upgrade path, never a
	// new way to kill a lot.
	Registry *modelreg.Registry
	// ModelVersion is the calibration version this lot is pinned to; it
	// is recorded in the journal header and verified on Resume. 0 means
	// the process's base model.
	ModelVersion int
	// Logf logs supervision events (registry staging failures); nil
	// discards.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() error {
	if o.Sites < 0 {
		return fmt.Errorf("lotrun: %d sites; need >= 1", o.Sites)
	}
	if o.Sites == 0 {
		o.Sites = 1
	}
	if o.Batch < 0 {
		return fmt.Errorf("lotrun: batch %d; need >= 1", o.Batch)
	}
	if o.Batch == 0 {
		o.Batch = 1
	}
	if o.JournalSyncS <= 0 {
		o.JournalSyncS = 0.5e-3
	}
	if o.FS == nil {
		o.FS = diskfault.OS
	}
	return nil
}

// SiteStats is one site's share of the lot.
type SiteStats struct {
	Site        int
	Devices     int
	Insertions  int
	Trips       int
	QuarantineS float64
}

// Report is the orchestrator's outcome: the floor LotReport (bins,
// mis-bins, economics) plus the supervision story.
type Report struct {
	Lot   *floor.LotReport
	Sites []SiteStats
	// Trips lists every breaker trip across all sites.
	Trips []TripEvent
	// Alarms lists the drift watchdog's recalibration alarms.
	Alarms []DriftAlarm
	// Recalibrations counts successful Recalibrate invocations.
	Recalibrations int
	// StagedVersions lists candidate versions enqueued into the registry
	// by drift-demanded recalibrations (registry mode only).
	StagedVersions []int
	// Replayed is how many devices came from the journal instead of being
	// screened (0 on a fresh run).
	Replayed int
	// Replay details what journal replay found.
	Replay ReplayStats
	// JournalDegraded marks a lot whose journal failed persistently
	// mid-run: the lot finished journal-less (bins intact, resume
	// disabled). JournalErr carries the final journal error.
	JournalDegraded bool
	JournalErr      string
}

// String renders the supervision summary (the lot itself renders via
// Report.Lot).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "orchestrator: %d sites", len(r.Sites))
	if r.Replayed > 0 {
		fmt.Fprintf(&b, ", %d devices replayed from journal (%d corrupt lines skipped)",
			r.Replayed, r.Replay.Corrupt)
	}
	fmt.Fprintln(&b)
	for _, s := range r.Sites {
		fmt.Fprintf(&b, "  site %d: %d devices, %d insertions, %d trips, %.1fs quarantine\n",
			s.Site, s.Devices, s.Insertions, s.Trips, s.QuarantineS)
	}
	if len(r.Trips) > 0 {
		fmt.Fprintf(&b, "  breaker trips: %d (", len(r.Trips))
		for i, tr := range r.Trips {
			if i > 0 {
				fmt.Fprint(&b, ", ")
			}
			fmt.Fprintf(&b, "site %d after device %d run=%d", tr.Site, tr.AfterDevice, tr.Consecutive)
		}
		fmt.Fprintln(&b, ")")
	}
	for _, a := range r.Alarms {
		fmt.Fprintf(&b, "  drift alarm (%s) at device %d: ewma %.2f, cusum %.2f over %d samples\n",
			a.Detector, a.Device, a.EWMA, a.CUSUM, a.Samples)
	}
	if r.Recalibrations > 0 {
		fmt.Fprintf(&b, "  recalibrations triggered: %d\n", r.Recalibrations)
	}
	if r.JournalDegraded {
		fmt.Fprintf(&b, "  WARNING: journal degraded — lot ran journal-less, resume disabled (%s)\n", r.JournalErr)
	}
	return b.String()
}

// Orchestrator screens lots for one engine under the supervision options.
type Orchestrator struct {
	Engine *floor.Engine
	Opt    Options
}

// Run screens the lot from scratch. If a journal is configured it is
// started fresh. ctx cancellation stops the lot (the journal keeps every
// committed device; Resume continues it).
func (o *Orchestrator) Run(ctx context.Context, lotSeed int64, lot []*core.Device, faults *floor.FaultModel) (*Report, error) {
	return o.run(ctx, lotSeed, lot, faults, false)
}

// Resume replays the configured journal and screens only the devices it
// does not already contain. The same lotSeed, lot and fault model as the
// interrupted run must be supplied; the journal header is checked against
// them. The final report is identical to an uninterrupted run's.
func (o *Orchestrator) Resume(ctx context.Context, lotSeed int64, lot []*core.Device, faults *floor.FaultModel) (*Report, error) {
	return o.run(ctx, lotSeed, lot, faults, true)
}

// engineHolder hands the current engine to workers and lets the collector
// swap in a recalibrated one.
type engineHolder struct {
	mu  sync.RWMutex
	cur *floor.Engine
	wd  *Watchdog
}

func (h *engineHolder) engine() *floor.Engine {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.cur
}

func (h *engineHolder) watchdog() *Watchdog {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.wd
}

func (h *engineHolder) swap(e *floor.Engine, wd *Watchdog) {
	h.mu.Lock()
	h.cur, h.wd = e, wd
	h.mu.Unlock()
}

// siteState is one worker's breaker and counters; owned by the worker
// goroutine, read by the orchestrator after the workers join.
type siteState struct {
	br         *Breaker
	devices    int
	insertions int
}

func (o *Orchestrator) run(ctx context.Context, lotSeed int64, lot []*core.Device, faults *floor.FaultModel, resume bool) (*Report, error) {
	if o.Engine == nil {
		return nil, fmt.Errorf("lotrun: orchestrator needs an engine")
	}
	if err := o.Engine.Validate(); err != nil {
		return nil, err
	}
	if len(lot) == 0 {
		return nil, fmt.Errorf("lotrun: empty lot")
	}
	if faults != nil {
		if err := faults.Validate(); err != nil {
			return nil, err
		}
	}
	opt := o.Opt
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	faultP := 0.0
	if faults != nil {
		faultP = faults.TotalP()
	}
	rep := &Report{}
	results := make([]*floor.DeviceResult, len(lot))

	// Journal setup: fresh on Run, replay + append on Resume.
	var jr *Journal
	if resume {
		if opt.JournalPath == "" {
			return nil, fmt.Errorf("lotrun: resume needs Options.JournalPath")
		}
		hdr, done, validEnd, stats, err := ReplayJournalFS(opt.FS, opt.JournalPath)
		if err != nil {
			return nil, err
		}
		if hdr.LotSeed != lotSeed || hdr.Devices != len(lot) || hdr.FaultP != faultP {
			return nil, fmt.Errorf("lotrun: journal is for a different lot (seed %d devices %d faultp %g; resuming seed %d devices %d faultp %g)",
				hdr.LotSeed, hdr.Devices, hdr.FaultP, lotSeed, len(lot), faultP)
		}
		if hdr.ModelVersion != opt.ModelVersion {
			return nil, fmt.Errorf("%w: journal pinned to model version %d, resuming with %d",
				ErrModelMismatch, hdr.ModelVersion, opt.ModelVersion)
		}
		if hdr.Fingerprint != 0 && hdr.Fingerprint != o.Engine.Fingerprint() {
			return nil, fmt.Errorf("%w: journal was written by a differently calibrated engine (fingerprint %x, resuming %x)",
				ErrModelMismatch, hdr.Fingerprint, o.Engine.Fingerprint())
		}
		for i, res := range done {
			res := res
			results[i] = &res
		}
		rep.Replayed = stats.Records
		rep.Replay = stats
		if jr, err = ResumeJournalFS(opt.FS, opt.JournalPath, validEnd); err != nil {
			return nil, err
		}
	} else if opt.JournalPath != "" {
		var err error
		jr, err = CreateJournalFS(opt.FS, opt.JournalPath, JournalHeader{
			Type: "header", Version: JournalVersion,
			LotSeed: lotSeed, Devices: len(lot), FaultP: faultP,
			Fingerprint:  o.Engine.Fingerprint(),
			ModelVersion: opt.ModelVersion,
		})
		if err != nil {
			// A journal that cannot even be created is the same storage
			// fault as one dying mid-lot: screen the lot journal-less in
			// degraded mode rather than refuse it.
			logf(opt.Logf, "lotrun: journal create failed, running journal-less: %v", err)
			rep.JournalDegraded = true
			rep.JournalErr = err.Error()
			jr = nil
		}
	}
	hadJournal := jr != nil
	defer func() {
		if jr != nil {
			jr.Close()
		}
	}()

	holder := &engineHolder{cur: o.Engine}
	if o.Engine.Gate != nil && !opt.Watchdog.Disabled {
		holder.wd = NewWatchdog(o.Engine.Gate, opt.Watchdog)
	}

	var pending []int
	for i := range lot {
		if results[i] == nil {
			pending = append(pending, i)
		}
	}

	sites := make([]*siteState, opt.Sites)
	for s := range sites {
		sites[s] = &siteState{br: NewBreaker(opt.Breaker)}
	}

	if len(pending) > 0 {
		queue := make(chan int)
		out := make(chan floor.DeviceResult, opt.Sites)
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()

		go func() {
			defer close(queue)
			for _, i := range pending {
				select {
				case queue <- i:
				case <-runCtx.Done():
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for s := 0; s < opt.Sites; s++ {
			wg.Add(1)
			go o.worker(runCtx, s, opt.Batch, sites[s], holder, lotSeed, lot, faults, queue, out, &wg)
		}
		go func() {
			wg.Wait()
			close(out)
		}()

		// Collector: the single goroutine that commits results, feeds the
		// watchdog and applies recalibrations.
		for res := range out {
			res := res
			if jr != nil {
				if err := jr.CommitRetry(res, opt.JournalRetry); err != nil {
					// Persistent journal failure: the crash-resume contract
					// is gone, but the lot's bins are still a pure function
					// of (seed, index). Degrade to journal-less mode and
					// finish the lot instead of aborting it.
					jr.Close()
					jr = nil
					rep.JournalDegraded = true
					rep.JournalErr = err.Error()
					logf(opt.Logf, "lotrun: journal degraded, continuing journal-less: %v", err)
				}
			}
			results[res.Index] = &res
			if wd := holder.watchdog(); wd != nil && res.CleanD >= 0 {
				if alarm := wd.Observe(res.Index, res.CleanD); alarm != nil {
					rep.Alarms = append(rep.Alarms, *alarm)
					if opt.OnDrift != nil {
						opt.OnDrift(*alarm)
					}
					if opt.Recalibrate != nil {
						if cal, gate, err := opt.Recalibrate(*alarm); err == nil && cal != nil {
							if opt.Registry != nil {
								// Registry mode: the retrained model becomes a
								// staged candidate for shadow evaluation; this
								// lot keeps its pinned version, so bins stay a
								// pure function of (seed, index, version).
								g := gate
								if g == nil {
									g = holder.engine().Gate
								}
								if v, serr := stageCandidate(opt.Registry, holder.engine(), cal, g, *alarm); serr != nil {
									logf(opt.Logf, "lotrun: drift recalibration not staged: %v", serr)
								} else {
									rep.StagedVersions = append(rep.StagedVersions, v)
									rep.Recalibrations++
									logf(opt.Logf, "lotrun: drift alarm at device %d staged candidate model v%d", alarm.Device, v)
								}
							} else {
								next := *holder.engine()
								next.Cal = cal
								if gate != nil {
									next.Gate = gate
								}
								var nwd *Watchdog
								if next.Gate != nil {
									nwd = NewWatchdog(next.Gate, opt.Watchdog)
								}
								holder.swap(&next, nwd)
								rep.Recalibrations++
							}
						}
					}
				}
			}
		}
		if err := ctx.Err(); err != nil {
			committed := 0
			for _, r := range results {
				if r != nil {
					committed++
				}
			}
			return nil, fmt.Errorf("lotrun: lot interrupted with %d of %d devices committed: %w",
				committed, len(lot), err)
		}
	}

	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("lotrun: device %d was never screened", i)
		}
	}

	// Fold in index order: the report is identical no matter which site
	// produced each result or in what order they completed.
	lotRep := o.Engine.NewReport(len(lot))
	for _, r := range results {
		lotRep.Fold(*r)
	}
	if hadJournal {
		lotRep.Load.JournalS = float64(len(lot)) * opt.JournalSyncS
	}
	lotRep.JournalDegraded = rep.JournalDegraded
	lotRep.JournalErr = rep.JournalErr
	for s, st := range sites {
		lotRep.Load.QuarantineS += st.br.quarantineS
		rep.Sites = append(rep.Sites, SiteStats{
			Site: s, Devices: st.devices, Insertions: st.insertions,
			Trips: st.br.trips, QuarantineS: st.br.quarantineS,
		})
		rep.Trips = append(rep.Trips, st.br.events...)
	}
	sort.Slice(rep.Trips, func(i, j int) bool { return rep.Trips[i].AfterDevice < rep.Trips[j].AfterDevice })
	if err := o.Engine.Finish(lotRep); err != nil {
		return nil, err
	}
	rep.Lot = lotRep
	return rep, nil
}

// stageCandidate wraps a retrained calibration into an artifact on the
// current engine and enqueues it as a registry candidate.
func stageCandidate(reg *modelreg.Registry, eng *floor.Engine, cal *core.Calibration, gate *floor.Gate, alarm DriftAlarm) (int, error) {
	note := fmt.Sprintf("drift alarm (%s) at device %d: ewma %.2f cusum %.2f over %d samples",
		alarm.Detector, alarm.Device, alarm.EWMA, alarm.CUSUM, alarm.Samples)
	art, err := modelreg.NewArtifact(eng, cal, gate, note)
	if err != nil {
		return 0, err
	}
	return reg.Stage(art)
}

func logf(f func(string, ...any), format string, args ...any) {
	if f != nil {
		f(format, args...)
	}
}

// worker is one tester site: it pulls device indices from the shared
// queue, screens them under supervision, and runs its circuit breaker.
// While the breaker holds the site in quarantine the shared queue drains
// to the healthy sites. With kBatch > 1 the site greedily takes up to
// kBatch queued devices per engine call and screens them through the
// batched kernel — bins stay bit-identical, only the kernel amortization
// changes.
func (o *Orchestrator) worker(ctx context.Context, site, kBatch int, st *siteState, holder *engineHolder,
	lotSeed int64, lot []*core.Device, faults *floor.FaultModel,
	queue <-chan int, out chan<- floor.DeviceResult, wg *sync.WaitGroup) {
	defer wg.Done()
	idxs := make([]int, 0, kBatch)
	for {
		idx, ok := <-queue
		if !ok {
			return
		}
		if ctx.Err() != nil {
			return
		}
		if st.br.state == stateOpen {
			q := st.br.BeginProbe()
			if scale := o.Opt.QuarantineSleepScale; scale > 0 && q > 0 {
				select {
				case <-time.After(time.Duration(q * scale * float64(time.Second))):
				case <-ctx.Done():
					return
				}
			}
		}
		idxs = append(idxs[:0], idx)
	fill:
		for len(idxs) < kBatch {
			select {
			case next, more := <-queue:
				if !more {
					break fill
				}
				idxs = append(idxs, next)
			default:
				break fill
			}
		}
		var results []floor.DeviceResult
		if len(idxs) == 1 {
			results = []floor.DeviceResult{o.screenSupervised(ctx, site, idxs[0], lot[idxs[0]], lotSeed, faults, holder)}
		} else {
			results = o.screenBatchSupervised(ctx, site, idxs, lot, lotSeed, faults, holder)
		}
		truncated := false
		for _, res := range results {
			if res.Err != "" && ctx.Err() != nil {
				// The lot was cancelled while this device was on the tester:
				// its result is a truncation, not an outcome. Drop it so it
				// is never journaled; Resume re-screens it from the same
				// per-device seed.
				truncated = true
				continue
			}
			st.devices++
			st.insertions += res.Insertions
			st.br.Record(res)
			select {
			case out <- res:
			case <-ctx.Done():
				return
			}
		}
		if truncated {
			return
		}
	}
}

// screenSupervised runs one device with the full supervision wrapping:
// per-device deadline, test hook, and a recover() that converts any panic
// escaping the screening path into a fallback-binned device.
func (o *Orchestrator) screenSupervised(ctx context.Context, site, idx int, d *core.Device,
	lotSeed int64, faults *floor.FaultModel, holder *engineHolder) (res floor.DeviceResult) {
	eng := holder.engine()
	res = floor.DeviceResult{Index: idx, CleanD: -1, Site: site, TruePass: eng.TruePass(d.Specs)}
	defer func() {
		if r := recover(); r != nil {
			res.Bin = floor.BinFallback
			res.Err = fmt.Sprintf("panic: %v", r)
			if res.Insertions == 0 {
				res.Insertions = 1
			}
		}
	}()
	dctx := ctx
	if o.Opt.DeviceTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, o.Opt.DeviceTimeout)
		defer cancel()
	}
	if o.Opt.Hook != nil {
		o.Opt.Hook(site, idx)
	}
	r := eng.ScreenDevice(dctx, idx, d, core.DeviceSeed(lotSeed, idx), faults)
	r.Site = site
	res = r
	return res
}

// screenBatchSupervised screens a batch of devices through the engine's
// batched kernel with the same supervision contract as screenSupervised:
// the per-device hook runs inside a per-device supervised region (a hook
// panic fallback-bins that device and the rest of the batch still
// screens), and the context deadline scales with the batch size so a
// batch's per-device wall budget matches the serial path's.
func (o *Orchestrator) screenBatchSupervised(ctx context.Context, site int, idxs []int, lot []*core.Device,
	lotSeed int64, faults *floor.FaultModel, holder *engineHolder) []floor.DeviceResult {
	eng := holder.engine()
	dctx := ctx
	if o.Opt.DeviceTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, time.Duration(len(idxs))*o.Opt.DeviceTimeout)
		defer cancel()
	}

	results := make([]floor.DeviceResult, len(idxs))
	batch := make([]floor.BatchDevice, 0, len(idxs))
	screened := make([]int, 0, len(idxs)) // position in results per batch entry
	for i, idx := range idxs {
		hookOK := func() (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					// Keep TruePass if it was already computed; the rest of
					// the result mirrors the serial hook-panic outcome.
					results[i].Index = idx
					results[i].CleanD = -1
					results[i].Site = site
					results[i].Bin = floor.BinFallback
					results[i].Insertions = 1
					results[i].Err = fmt.Sprintf("panic: %v", r)
				}
			}()
			results[i].TruePass = eng.TruePass(lot[idx].Specs)
			if o.Opt.Hook != nil {
				o.Opt.Hook(site, idx)
			}
			return true
		}()
		if !hookOK {
			continue
		}
		batch = append(batch, floor.BatchDevice{Index: idx, Device: lot[idx], Seed: core.DeviceSeed(lotSeed, idx)})
		screened = append(screened, i)
	}
	for bi, res := range eng.ScreenBatch(dctx, batch, faults) {
		res.Site = site
		results[screened[bi]] = res
	}
	return results
}
