package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/lna"
)

// SimResult is the shared outcome of the paper's simulation experiment
// (Section 4.1): the optimized stimulus (Fig. 7) and the three validation
// scatters (Figs. 8-10).
type SimResult struct {
	Opt       *core.OptimizeResult
	Cal       *core.Calibration
	Report    *core.ValidationReport
	TrainN    int
	ValN      int
	NoiseV    float64
	SpreadPct float64

	// Shared state reused by the ablation studies.
	Cfg         *core.TestConfig
	Model       *core.LNAModel
	Train, Val  []*core.Device
	TrainingSet []core.TrainingDevice
}

// RunSimExperiment executes the full Section 4.1 flow on the circuit-level
// 900 MHz LNA: optimize the PWL stimulus with the GA (Eq. 10 objective),
// simulate 100 training + 25 validation instances with +/-20% uniform
// parameter spread, add 1 mV Gaussian noise to the signatures, calibrate
// the regression maps, and validate. The result is memoized per context:
// Figs. 7-10 all read from one run, exactly as in the paper.
func RunSimExperiment(ctx Context) (*SimResult, error) {
	key := memoKey("sim", ctx)
	if v, ok := memo.Load(key); ok {
		return v.(*SimResult), nil
	}
	trainN, valN, pop, gens := ctx.sizes()
	rng := rand.New(rand.NewSource(ctx.Seed))
	model := core.NewLNAModel()
	cfg := core.DefaultSimConfig()

	workers := ctx.Workers
	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: pop, Generations: gens, Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: stimulus optimization: %w", err)
	}
	train, err := core.GeneratePopulation(rng, model, trainN, 0.20)
	if err != nil {
		return nil, err
	}
	val, err := core.GeneratePopulation(rng, model, valN, 0.20)
	if err != nil {
		return nil, err
	}
	// Training acquisition fans out per device, seeded via
	// core.DeviceSeed so the set is identical at every worker count.
	td, err := core.AcquireTrainingSetSeeded(rng.Int63(), cfg, opt.Stimulus, train, func(d *core.Device) lna.Specs { return d.Specs }, workers)
	if err != nil {
		return nil, err
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	rep, err := core.Validate(rng, cfg, cal, opt.Stimulus, val)
	if err != nil {
		return nil, err
	}
	res := &SimResult{Opt: opt, Cal: cal, Report: rep, TrainN: trainN, ValN: valN,
		NoiseV: cfg.NoiseSigmaV, SpreadPct: 20,
		Cfg: cfg, Model: model, Train: train, Val: val, TrainingSet: td}
	memo.Store(key, res)
	return res, nil
}

// RenderFig7 prints the optimized stimulus breakpoints and the GA
// convergence trace (the paper's Fig. 7 series).
func (r *SimResult) RenderFig7() string {
	var b strings.Builder
	b.WriteString("FIG7  Optimized PWL test stimulus (volts vs microseconds)\n")
	stim := r.Opt.Stimulus
	n := len(stim.Levels)
	for i, v := range stim.Levels {
		t := stim.Duration * float64(i) / float64(n-1) * 1e6
		bar := renderBar(v, 0.25, 24)
		fmt.Fprintf(&b, "  t=%6.3f us  %+8.4f V  %s\n", t, v, bar)
	}
	b.WriteString("  GA best-objective trace (Eq. 10):")
	for _, f := range r.Opt.Trace {
		fmt.Fprintf(&b, " %.4g", f)
	}
	b.WriteString("\n")
	return b.String()
}

func renderBar(v, fullScale float64, half int) string {
	pos := clampInt(int(v/fullScale*float64(half)), -half, half)
	bar := make([]byte, 2*half+1)
	for i := range bar {
		bar[i] = ' '
	}
	bar[half] = '|'
	step := 1
	if pos < 0 {
		step = -1
	}
	for i := step; i != pos+step; i += step {
		bar[half+i] = '#'
		if i == pos {
			break
		}
	}
	return string(bar)
}

// RenderScatterFig prints the paper-style scatter for spec index s
// (0=gain -> Fig. 8, 2=IIP3 -> Fig. 9, 1=NF -> Fig. 10).
func (r *SimResult) RenderScatterFig(s int) string {
	sp := r.Report.Specs[s]
	actual := make([]float64, len(sp.Points))
	pred := make([]float64, len(sp.Points))
	for i, p := range sp.Points {
		actual[i] = p.Actual
		pred[i] = p.Predicted
	}
	fig := map[int]string{0: "FIG8", 2: "FIG9", 1: "FIG10"}[s]
	title := fmt.Sprintf("%s  %s: direct simulation vs signature-test prediction  (std(err)=%.3f, RMS=%.3f, corr=%.3f)",
		fig, sp.Name, sp.StdErr, sp.RMSErr, sp.Correlation)
	return RenderScatter(title, "direct simulation", "predicted", actual, pred, 56, 18)
}

// Summary prints the validation table plus the calibration metadata.
func (r *SimResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Simulation experiment: %d training + %d validation devices, +/-%.0f%% parameters, %.0f mV signature noise\n",
		r.TrainN, r.ValN, r.SpreadPct, r.NoiseV*1e3)
	fmt.Fprintf(&b, "Regression per spec: %v (CV RMS %.3f / %.3f / %.3f)\n", r.Cal.Trainers, r.Cal.CVRMS[0], r.Cal.CVRMS[1], r.Cal.CVRMS[2])
	b.WriteString(r.Report.String())
	return b.String()
}
