package experiments

import "testing"

// The end-to-end determinism contract over the whole off-line pipeline:
// GA-optimized stimulus, training signatures, trainer selection and CV
// RMS must be bit-identical whether the pipeline ran serially or on a
// worker pool.
func TestSimExperimentWorkerBitIdentity(t *testing.T) {
	run := func(workers int) *SimResult {
		res, err := RunSimExperiment(Context{Seed: 71, Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{4, 8} {
		got := run(w)
		for i := range ref.Opt.Stimulus.Levels {
			if got.Opt.Stimulus.Levels[i] != ref.Opt.Stimulus.Levels[i] {
				t.Fatalf("workers=%d: stimulus breakpoint %d differs", w, i)
			}
		}
		for i := range ref.Opt.Trace {
			if got.Opt.Trace[i] != ref.Opt.Trace[i] {
				t.Fatalf("workers=%d: GA trace[%d] differs: %g vs %g", w, i, got.Opt.Trace[i], ref.Opt.Trace[i])
			}
		}
		for i := range ref.TrainingSet {
			for j := range ref.TrainingSet[i].Signature {
				if got.TrainingSet[i].Signature[j] != ref.TrainingSet[i].Signature[j] {
					t.Fatalf("workers=%d: training device %d bin %d differs", w, i, j)
				}
			}
		}
		for s := 0; s < 3; s++ {
			if got.Cal.CVRMS[s] != ref.Cal.CVRMS[s] {
				t.Fatalf("workers=%d: CV RMS for spec %d differs: %v vs %v", w, s, got.Cal.CVRMS[s], ref.Cal.CVRMS[s])
			}
			if got.Cal.Trainers[s] != ref.Cal.Trainers[s] {
				t.Fatalf("workers=%d: trainer for spec %d differs: %s vs %s", w, s, got.Cal.Trainers[s], ref.Cal.Trainers[s])
			}
		}
		if got.Report.String() != ref.Report.String() {
			t.Fatalf("workers=%d: validation report differs:\n%s\nvs\n%s", w, got.Report, ref.Report)
		}
	}
}
