package experiments

import (
	"math"
	"strings"
	"testing"
)

// quickCtx keeps test runtime modest; the benchmarks run paper scale.
func quickCtx() Context { return Context{Seed: 7, Quick: true} }

func TestSimExperimentQuick(t *testing.T) {
	res, err := RunSimExperiment(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions (quick sizes, loose windows): gain must be the
	// best-predicted spec and its correlation must be strong.
	gain := res.Report.Specs[0]
	nf := res.Report.Specs[1]
	iip3 := res.Report.Specs[2]
	if gain.RMSErr > 0.15 {
		t.Fatalf("gain RMS %.3f dB", gain.RMSErr)
	}
	if gain.Correlation < 0.93 {
		t.Fatalf("gain correlation %.3f", gain.Correlation)
	}
	if iip3.RMSErr > 1.5 {
		t.Fatalf("IIP3 RMS %.3f dB", iip3.RMSErr)
	}
	// The paper's ordering: NF predicts worst.
	if nf.RMSErr < gain.RMSErr {
		t.Fatal("NF should be harder to predict than gain")
	}
	// Memoization: a second call returns the identical object.
	res2, err := RunSimExperiment(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Fatal("sim experiment should be memoized per context")
	}
	// Renderers produce the paper-style artifacts.
	if !strings.Contains(res.RenderFig7(), "FIG7") {
		t.Fatal("Fig7 rendering")
	}
	for _, s := range []int{0, 1, 2} {
		out := res.RenderScatterFig(s)
		if !strings.Contains(out, "std(err)") || !strings.Contains(out, "o") {
			t.Fatalf("scatter rendering for spec %d:\n%s", s, out)
		}
	}
	if !strings.Contains(res.Summary(), "Spec") {
		t.Fatal("summary rendering")
	}
}

func TestHardwareExperimentQuick(t *testing.T) {
	res, err := RunHardwareExperiment(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	gain := res.Report.Specs[0]
	iip3 := res.Report.Specs[2]
	// Hardware-regime errors: larger than simulation but sub-dB, with
	// clear correlation (the Figs. 12-13 shape).
	if gain.RMSErr > 0.6 {
		t.Fatalf("hardware gain RMS %.3f dB", gain.RMSErr)
	}
	if gain.Correlation < 0.85 {
		t.Fatalf("hardware gain correlation %.3f", gain.Correlation)
	}
	if iip3.RMSErr > 0.8 {
		t.Fatalf("hardware IIP3 RMS %.3f dB", iip3.RMSErr)
	}
	if !strings.Contains(res.RenderFig(0), "FIG12") || !strings.Contains(res.RenderFig(2), "FIG13") {
		t.Fatal("figure rendering")
	}
}

func TestTimeComparison(t *testing.T) {
	res, err := RunTimeComparison()
	if err != nil {
		t.Fatal(err)
	}
	if res.NoHandler.Speedup < 10 {
		t.Fatalf("raw speedup %.1f, want >10x", res.NoHandler.Speedup)
	}
	if res.CostFactor < 20 {
		t.Fatalf("cost factor %.1f", res.CostFactor)
	}
	out := res.Render()
	for _, want := range []string{"TIME", "Noise figure", "TOTAL signature", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("time table missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseStudy(t *testing.T) {
	res, err := RunPhaseStudy(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	var at90, at0 float64
	for _, p := range res.Points {
		deg := p.PhaseRad * 180 / math.Pi
		// Same-LO power must track cos^2(phi).
		want := math.Pow(math.Cos(p.PhaseRad), 2)
		got := p.SameLOPower / res.Points[0].SameLOPower
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("phi=%.0f: same-LO power %.4f, want cos^2=%.4f", deg, got, want)
		}
		// Offset-LO magnitude signature is invariant.
		if p.OffsetSigChange > 0.02 {
			t.Fatalf("phi=%.0f: offset-LO signature changed %.3f", deg, p.OffsetSigChange)
		}
		if deg == 90 {
			at90 = got
		}
		if deg == 0 {
			at0 = got
		}
	}
	if at90 > 1e-4*at0 {
		t.Fatalf("quadrature cancellation missing: %g vs %g", at90, at0)
	}
	if !strings.Contains(res.Render(), "cos^2") {
		t.Fatal("phase rendering")
	}
}

func TestStimulusAblationQuick(t *testing.T) {
	res, err := RunStimulusAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// At the quick GA budget single-spec comparisons are dominated by
	// acquisition-noise luck, so assert what holds robustly across seeds:
	// the optimized stimulus beats the engineered tone on gain, and stays
	// competitive on the average across all three specs. (The paper-scale
	// run is where the full IIP3 advantage shows.)
	opt, tone := res.Rows[0], res.Rows[2]
	if opt.RMS[0] >= tone.RMS[0] {
		t.Fatalf("optimized gain RMS %.3f vs tone %.3f", opt.RMS[0], tone.RMS[0])
	}
	rel := 0.0
	for s := 0; s < 3; s++ {
		rel += opt.RMS[s] / tone.RMS[s]
	}
	if rel/3 > 1.6 {
		t.Fatalf("optimized stimulus not competitive: mean relative RMS %.2f", rel/3)
	}
	if !strings.Contains(res.Render(), "A-STIM") {
		t.Fatal("rendering")
	}
}

func TestTrainingSizeAblationQuick(t *testing.T) {
	res, err := RunTrainingSizeAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// More calibration devices must not hurt gain prediction much, and
	// typically helps substantially.
	if last.RMS[0] > first.RMS[0]*1.2 {
		t.Fatalf("training size did not help: %.4f -> %.4f", first.RMS[0], last.RMS[0])
	}
	if !strings.Contains(res.Render(), "A-TRAIN") {
		t.Fatal("rendering")
	}
}

func TestNoiseAblationQuick(t *testing.T) {
	res, err := RunNoiseAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Rows[0], res.Rows[len(res.Rows)-1]
	if hi.RMS[0] < lo.RMS[0] {
		t.Fatalf("more noise should not improve gain prediction: %.4f -> %.4f", lo.RMS[0], hi.RMS[0])
	}
	if !strings.Contains(res.Render(), "A-NOISE") {
		t.Fatal("rendering")
	}
}

func TestEnvelopeAblation(t *testing.T) {
	res, err := RunEnvelopeAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res.SignatureRelErr > 0.05 {
		t.Fatalf("engine disagreement %.3f", res.SignatureRelErr)
	}
	if res.Speedup < 3 {
		t.Fatalf("envelope engine should be much faster: %.1fx", res.Speedup)
	}
	if !strings.Contains(res.Render(), "A-ENV") {
		t.Fatal("rendering")
	}
}

func TestRegressionAblationQuick(t *testing.T) {
	res, err := RunRegressionAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	if !strings.Contains(res.Render(), "A-REG") {
		t.Fatal("rendering")
	}
}

func TestRenderHelpers(t *testing.T) {
	out := RenderScatter("T", "x", "y", []float64{1, 2, 3}, []float64{1.1, 2.0, 2.9}, 20, 8)
	if !strings.Contains(out, "o") || !strings.Contains(out, ".") {
		t.Fatalf("scatter:\n%s", out)
	}
	if got := RenderScatter("T", "x", "y", nil, nil, 20, 8); !strings.Contains(got, "no data") {
		t.Fatal("empty scatter")
	}
	header := []string{"a", "bb"}
	tbl := Table(header, [][]string{{"1", "2"}})
	if !strings.Contains(tbl, "--") {
		t.Fatalf("table:\n%s", tbl)
	}
	if header[0] != "a" {
		t.Fatal("Table must not mutate the header")
	}
}

func TestADCAblationQuick(t *testing.T) {
	res, err := RunADCAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	coarse := res.Rows[0]
	ideal := res.Rows[len(res.Rows)-1]
	if ideal.Bits != 0 || coarse.Bits != 4 {
		t.Fatalf("rows %+v", res.Rows)
	}
	if coarse.RMS[0] < ideal.RMS[0] {
		t.Fatalf("4-bit ADC should not beat ideal: %.4f vs %.4f", coarse.RMS[0], ideal.RMS[0])
	}
	if !strings.Contains(res.Render(), "A-ADC") {
		t.Fatal("rendering")
	}
}

func TestDiagnosisExperimentQuick(t *testing.T) {
	res, err := RunDiagnosisExperiment(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2*res.TotalParams {
		t.Fatalf("trials %d for %d parameters", res.Trials, res.TotalParams)
	}
	// Exact culprit naming is limited by physically collinear parameters
	// (e.g. the bias network resistors); within-ambiguity-group accuracy
	// is the meaningful score.
	if float64(res.Correct)/float64(res.Trials) < 0.35 {
		t.Fatalf("exact diagnosis accuracy %d/%d too low", res.Correct, res.Trials)
	}
	if g := float64(res.Correct+res.CorrectGroup) / float64(res.Trials); g < 0.6 {
		t.Fatalf("group diagnosis accuracy %.2f too low (%d+%d of %d)", g, res.Correct, res.CorrectGroup, res.Trials)
	}
	if !strings.Contains(res.Render(), "DIAG") {
		t.Fatal("rendering")
	}
}

func TestRenderBarShapes(t *testing.T) {
	zero := renderBar(0, 1, 5)
	if !strings.Contains(zero, "|") || strings.Contains(zero, "#") {
		t.Fatalf("zero bar %q", zero)
	}
	pos := renderBar(0.5, 1, 5)
	neg := renderBar(-0.5, 1, 5)
	if !strings.Contains(pos, "#") || !strings.Contains(neg, "#") {
		t.Fatalf("bars %q %q", pos, neg)
	}
	if len(pos) != len(neg) || len(pos) != 11 {
		t.Fatalf("bar widths %d %d", len(pos), len(neg))
	}
}

func TestMemoKeyDistinguishesContexts(t *testing.T) {
	a := memoKey("x", Context{Seed: 1})
	b := memoKey("x", Context{Seed: 2})
	c := memoKey("x", Context{Seed: 1, Quick: true})
	if a == b || a == c || b == c {
		t.Fatal("memo keys must be distinct per context")
	}
}

func TestS11ExperimentQuick(t *testing.T) {
	res, err := RunS11Experiment(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no validation points")
	}
	// S11 depends on the same process parameters; prediction should show
	// clear correlation even at quick sizes.
	if res.Corr < 0.5 {
		t.Fatalf("S11 correlation %.3f too low", res.Corr)
	}
	if res.RMSDB > 3 {
		t.Fatalf("S11 RMS %.3f dB implausible", res.RMSDB)
	}
	if !strings.Contains(res.Render(), "S11") {
		t.Fatal("rendering")
	}
}

func TestTesterVariationQuick(t *testing.T) {
	res, err := RunTesterVariationAblation(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	// Tester drift must hurt gain prediction (a 2% carrier error is a
	// ~0.17 dB systematic gain shift) and recalibration must restore most
	// of it.
	if res.DriftedRMS[0] < res.NominalRMS[0] {
		t.Fatalf("drift should not improve accuracy: %.4f vs %.4f", res.DriftedRMS[0], res.NominalRMS[0])
	}
	if res.RecalRMS[0] > res.DriftedRMS[0] {
		t.Fatalf("recalibration should help: %.4f vs %.4f", res.RecalRMS[0], res.DriftedRMS[0])
	}
	if !strings.Contains(res.Render(), "A-TESTER") {
		t.Fatal("rendering")
	}
}

func TestDefaultContext(t *testing.T) {
	ctx := DefaultContext()
	if ctx.Quick {
		t.Fatal("default context must be paper scale")
	}
	tr, val, pop, gens := ctx.sizes()
	if tr != 100 || val != 25 || pop != 20 || gens != 5 {
		t.Fatalf("paper-scale sizes %d %d %d %d", tr, val, pop, gens)
	}
	c, v := ctx.hardwareSizes()
	if c != 28 || v != 27 {
		t.Fatalf("hardware sizes %d %d", c, v)
	}
}

func TestHardwareSummaryRendering(t *testing.T) {
	res, err := RunHardwareExperiment(quickCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary(), "calibration") {
		t.Fatal("summary rendering")
	}
}
