package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/lna"
	"repro/internal/regress"
	"repro/internal/stat"
)

// ---------------------------------------------------------------- S11

// S11Result is the fourth-spec extension: predicting the input return loss
// (a spec the paper does not evaluate but the same framework covers — the
// input match depends on the same process parameters the signature sees).
type S11Result struct {
	RMSDB  float64
	Corr   float64
	Points []core.ScatterPoint
}

// RunS11Experiment trains one extra regression from the simulation
// experiment's signatures to S11 at 900 MHz and validates it on the
// held-out devices.
func RunS11Experiment(ctx Context) (*S11Result, error) {
	sim, err := RunSimExperiment(ctx)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ctx.Seed + 9))

	s11Of := func(rel []float64) (float64, error) {
		p, err := lna.Nominal().Perturb(rel)
		if err != nil {
			return 0, err
		}
		d, err := lna.Build(p)
		if err != nil {
			return 0, err
		}
		return d.InputReturnLossDB(lna.FCarrier)
	}

	// Training matrix from the cached signatures, targets from fresh S11
	// analyses.
	X := linalg.NewMatrix(len(sim.TrainingSet), len(sim.TrainingSet[0].Signature))
	y := make([]float64, len(sim.TrainingSet))
	for i, td := range sim.TrainingSet {
		X.SetRow(i, td.Signature)
		if y[i], err = s11Of(sim.Train[i].Rel); err != nil {
			return nil, err
		}
	}
	trainers := []regress.Trainer{
		regress.Ridge{Lambda: 1e-8},
		regress.MARS{MaxTerms: 13, Knots: 5},
	}
	model, _, _, err := regress.SelectBest(trainers, X, y, 5, rng)
	if err != nil {
		return nil, err
	}

	res := &S11Result{}
	var actual, pred []float64
	for _, d := range sim.Val {
		sig, err := sim.Cfg.Acquire(d.Behavioral, sim.Opt.Stimulus, rng)
		if err != nil {
			return nil, err
		}
		truth, err := s11Of(d.Rel)
		if err != nil {
			return nil, err
		}
		p := model.Predict(sig)
		actual = append(actual, truth)
		pred = append(pred, p)
		res.Points = append(res.Points, core.ScatterPoint{Actual: truth, Predicted: p})
	}
	res.RMSDB = stat.RMSError(pred, actual)
	res.Corr = stat.Correlation(pred, actual)
	return res, nil
}

// Render prints the S11 summary.
func (r *S11Result) Render() string {
	var b strings.Builder
	b.WriteString("S11  Input return loss predicted from the same signature (extension)\n\n")
	fmt.Fprintf(&b, "  validation devices : %d\n", len(r.Points))
	fmt.Fprintf(&b, "  RMS error          : %.3f dB\n", r.RMSDB)
	fmt.Fprintf(&b, "  correlation        : %.3f\n", r.Corr)
	return b.String()
}

// ---------------------------------------------------------------- A-TESTER

// TesterVariationResult quantifies the paper's "tester variations" concern
// (Section 3.1): the calibration is built on one tester; production
// insertions see slightly different carrier level and filter corner.
type TesterVariationResult struct {
	NominalRMS [3]float64 // same-tester validation
	DriftedRMS [3]float64 // cross-tester validation
	RecalRMS   [3]float64 // after recalibrating on the drifted tester
	DriftPct   float64
}

// RunTesterVariationAblation validates the simulation calibration against
// acquisitions from a drifted tester (carrier amplitude and LPF corner off
// by DriftPct), then shows that recalibration on the drifted tester
// restores accuracy.
func RunTesterVariationAblation(ctx Context) (*TesterVariationResult, error) {
	sim, err := RunSimExperiment(ctx)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ctx.Seed + 10))
	res := &TesterVariationResult{DriftPct: 2}

	for s := 0; s < 3; s++ {
		res.NominalRMS[s] = sim.Report.Specs[s].RMSErr
	}

	// Drifted tester: clone the board with systematic offsets.
	drifted := *sim.Cfg
	board := *sim.Cfg.Board
	board.CarrierAmp *= 1 + res.DriftPct/100
	board.LPFCutoffHz *= 1 - res.DriftPct/100
	drifted.Board = &board

	validate := func(cal *core.Calibration) ([3]float64, error) {
		var pred, actual [3][]float64
		for _, d := range sim.Val {
			sig, err := drifted.Acquire(d.Behavioral, sim.Opt.Stimulus, rng)
			if err != nil {
				return [3]float64{}, err
			}
			p := cal.Predict(sig).Vector()
			a := d.Specs.Vector()
			for s := 0; s < 3; s++ {
				pred[s] = append(pred[s], p[s])
				actual[s] = append(actual[s], a[s])
			}
		}
		var out [3]float64
		for s := 0; s < 3; s++ {
			out[s] = stat.RMSError(pred[s], actual[s])
		}
		return out, nil
	}

	// Cross-tester: nominal calibration, drifted acquisitions.
	if res.DriftedRMS, err = validate(sim.Cal); err != nil {
		return nil, err
	}

	// Recalibration on the drifted tester.
	td, err := core.AcquireTrainingSet(rng, &drifted, sim.Opt.Stimulus, sim.Train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		return nil, err
	}
	recal, err := core.Calibrate(rng, sim.Opt.Stimulus, td, core.CalibrationOptions{})
	if err != nil {
		return nil, err
	}
	if res.RecalRMS, err = validate(recal); err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the A-TESTER table.
func (r *TesterVariationResult) Render() string {
	rows := [][]string{
		{"same tester", f4(r.NominalRMS[0]), f4(r.NominalRMS[1]), f4(r.NominalRMS[2])},
		{fmt.Sprintf("drifted tester (%.0f%%)", r.DriftPct), f4(r.DriftedRMS[0]), f4(r.DriftedRMS[1]), f4(r.DriftedRMS[2])},
		{"after recalibration", f4(r.RecalRMS[0]), f4(r.RecalRMS[1]), f4(r.RecalRMS[2])},
	}
	return "A-TESTER  Tester-to-tester variation vs prediction RMS error\n\n" +
		Table([]string{"Condition", "gain (dB)", "NF (dB)", "IIP3 (dB)"}, rows)
}

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
