package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/lna"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/wave"
)

// ---------------------------------------------------------------- A-STIM

// StimulusAblationRow compares one stimulus family.
type StimulusAblationRow struct {
	Name string
	RMS  [3]float64 // gain, NF, IIP3
}

// StimulusAblation holds the A-STIM result.
type StimulusAblation struct {
	Rows []StimulusAblationRow
}

// RunStimulusAblation quantifies the value of the Eq. 10 GA optimization:
// the optimized stimulus vs a random PWL vs a single full-scale tone, all
// calibrated and validated on the same device populations.
func RunStimulusAblation(ctx Context) (*StimulusAblation, error) {
	sim, err := RunSimExperiment(ctx)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ctx.Seed + 3))
	out := &StimulusAblation{}

	evaluate := func(name string, stim *wave.PWL) error {
		td, err := core.AcquireTrainingSet(rng, sim.Cfg, stim, sim.Train, func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			return err
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			return err
		}
		rep, err := core.Validate(rng, sim.Cfg, cal, stim, sim.Val)
		if err != nil {
			return err
		}
		out.Rows = append(out.Rows, StimulusAblationRow{Name: name,
			RMS: [3]float64{rep.Specs[0].RMSErr, rep.Specs[1].RMSErr, rep.Specs[2].RMSErr}})
		return nil
	}

	if err := evaluate("GA-optimized PWL (Eq. 10)", sim.Opt.Stimulus); err != nil {
		return nil, err
	}
	if err := evaluate("random PWL", sim.Cfg.RandomStimulus(rng)); err != nil {
		return nil, err
	}
	// Single baseband tone at 2 MHz, full scale.
	n := sim.Cfg.StimBreakpoints
	tone := make([]float64, n)
	dur := sim.Cfg.StimulusDuration()
	for i := range tone {
		t := dur * float64(i) / float64(n-1)
		tone[i] = sim.Cfg.StimAmplitude * math.Sin(2*math.Pi*2e6*t)
	}
	toneStim, err := sim.Cfg.NewStimulus(tone)
	if err != nil {
		return nil, err
	}
	if err := evaluate("single 2 MHz tone", toneStim); err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the A-STIM table.
func (a *StimulusAblation) Render() string {
	rows := [][]string{}
	for _, r := range a.Rows {
		rows = append(rows, []string{r.Name,
			fmt.Sprintf("%.4f", r.RMS[0]), fmt.Sprintf("%.4f", r.RMS[1]), fmt.Sprintf("%.4f", r.RMS[2])})
	}
	return "A-STIM  Stimulus family vs prediction RMS error\n\n" +
		Table([]string{"Stimulus", "gain (dB)", "NF (dB)", "IIP3 (dB)"}, rows)
}

// ---------------------------------------------------------------- A-TRAIN

// TrainingSizeRow is one sweep point.
type TrainingSizeRow struct {
	N   int
	RMS [3]float64
}

// TrainingSizeAblation holds the A-TRAIN result.
type TrainingSizeAblation struct {
	Rows []TrainingSizeRow
}

// RunTrainingSizeAblation sweeps the calibration-set size — the paper
// expects results to "improve significantly with a larger set of
// calibrating devices". Runs on the behavioral RF2401 family.
func RunTrainingSizeAblation(ctx Context) (*TrainingSizeAblation, error) {
	rng := rand.New(rand.NewSource(ctx.Seed + 4))
	model := core.RF2401Model{}
	cfg := core.DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	stim := cfg.RandomStimulus(rng)
	sizes := []int{10, 20, 40, 80}
	if ctx.Quick {
		sizes = []int{10, 25}
	}
	val, err := core.GeneratePopulation(rng, model, 25, 0.9)
	if err != nil {
		return nil, err
	}
	out := &TrainingSizeAblation{}
	for _, n := range sizes {
		train, err := core.GeneratePopulation(rng, model, n, 0.9)
		if err != nil {
			return nil, err
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train, func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			return nil, err
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			return nil, err
		}
		rep, err := core.Validate(rng, cfg, cal, stim, val)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, TrainingSizeRow{N: n,
			RMS: [3]float64{rep.Specs[0].RMSErr, rep.Specs[1].RMSErr, rep.Specs[2].RMSErr}})
	}
	return out, nil
}

// Render prints the A-TRAIN table.
func (a *TrainingSizeAblation) Render() string {
	rows := [][]string{}
	for _, r := range a.Rows {
		rows = append(rows, []string{fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%.4f", r.RMS[0]), fmt.Sprintf("%.4f", r.RMS[1]), fmt.Sprintf("%.4f", r.RMS[2])})
	}
	return "A-TRAIN  Calibration-set size vs prediction RMS error\n\n" +
		Table([]string{"training devices", "gain (dB)", "NF (dB)", "IIP3 (dB)"}, rows)
}

// ---------------------------------------------------------------- A-NOISE

// NoiseRow is one sweep point of signature noise.
type NoiseRow struct {
	SigmaV float64
	RMS    [3]float64
}

// NoiseAblation holds the A-NOISE result.
type NoiseAblation struct {
	Rows []NoiseRow
}

// RunNoiseAblation sweeps the digitizer noise sigma_m, the quantity the
// Eq. 10 objective trades against mapping fidelity.
func RunNoiseAblation(ctx Context) (*NoiseAblation, error) {
	rng := rand.New(rand.NewSource(ctx.Seed + 5))
	model := core.RF2401Model{}
	cfg := core.DefaultSimConfig()
	cfg.StimAmplitude = 0.05
	stim := cfg.RandomStimulus(rng)
	sigmas := []float64{0, 1e-3, 5e-3, 2e-2}
	if ctx.Quick {
		sigmas = []float64{1e-3, 2e-2}
	}
	train, err := core.GeneratePopulation(rng, model, 60, 0.9)
	if err != nil {
		return nil, err
	}
	val, err := core.GeneratePopulation(rng, model, 25, 0.9)
	if err != nil {
		return nil, err
	}
	out := &NoiseAblation{}
	for _, s := range sigmas {
		c := *cfg
		c.NoiseSigmaV = s
		td, err := core.AcquireTrainingSet(rng, &c, stim, train, func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			return nil, err
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			return nil, err
		}
		rep, err := core.Validate(rng, &c, cal, stim, val)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, NoiseRow{SigmaV: s,
			RMS: [3]float64{rep.Specs[0].RMSErr, rep.Specs[1].RMSErr, rep.Specs[2].RMSErr}})
	}
	return out, nil
}

// Render prints the A-NOISE table.
func (a *NoiseAblation) Render() string {
	rows := [][]string{}
	for _, r := range a.Rows {
		rows = append(rows, []string{fmt.Sprintf("%.1f", r.SigmaV*1e3),
			fmt.Sprintf("%.4f", r.RMS[0]), fmt.Sprintf("%.4f", r.RMS[1]), fmt.Sprintf("%.4f", r.RMS[2])})
	}
	return "A-NOISE  Signature noise vs prediction RMS error\n\n" +
		Table([]string{"noise (mV)", "gain (dB)", "NF (dB)", "IIP3 (dB)"}, rows)
}

// ---------------------------------------------------------------- A-REG

// RegressionRow compares one trainer.
type RegressionRow struct {
	Name string
	RMS  [3]float64
}

// RegressionAblation holds the A-REG result.
type RegressionAblation struct {
	Rows []RegressionRow
}

// RunRegressionAblation fits each regression family on the simulation
// experiment's training set and validates on its held-out devices.
func RunRegressionAblation(ctx Context) (*RegressionAblation, error) {
	sim, err := RunSimExperiment(ctx)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ctx.Seed + 6))
	out := &RegressionAblation{}
	for _, tr := range []regress.Trainer{
		regress.Ridge{Lambda: 1e-8},
		regress.Ridge{Lambda: 1e-2},
		regress.PolyPCA{Components: 8},
		regress.MARS{MaxTerms: 13, Knots: 5},
	} {
		cal, err := core.Calibrate(rng, sim.Opt.Stimulus, sim.TrainingSet,
			core.CalibrationOptions{Trainers: []regress.Trainer{tr}})
		if err != nil {
			return nil, err
		}
		rep, err := core.Validate(rng, sim.Cfg, cal, sim.Opt.Stimulus, sim.Val)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, RegressionRow{Name: tr.Name(),
			RMS: [3]float64{rep.Specs[0].RMSErr, rep.Specs[1].RMSErr, rep.Specs[2].RMSErr}})
	}
	return out, nil
}

// Render prints the A-REG table.
func (a *RegressionAblation) Render() string {
	rows := [][]string{}
	for _, r := range a.Rows {
		rows = append(rows, []string{r.Name,
			fmt.Sprintf("%.4f", r.RMS[0]), fmt.Sprintf("%.4f", r.RMS[1]), fmt.Sprintf("%.4f", r.RMS[2])})
	}
	return "A-REG  Regression family vs prediction RMS error\n\n" +
		Table([]string{"Regression", "gain (dB)", "NF (dB)", "IIP3 (dB)"}, rows)
}

// ---------------------------------------------------------------- A-ENV

// EnvelopeAblation holds the A-ENV result: engine agreement and speed.
type EnvelopeAblation struct {
	SignatureRelErr float64
	EnvelopeS       float64
	PassbandS       float64
	Speedup         float64
}

// RunEnvelopeAblation cross-checks the fast multi-zone envelope engine
// against the direct passband reference on a flat nonlinear DUT and
// measures the speed advantage. The comparison runs at the hardware
// experiment's timescale (1 MHz digitizing): there a millisecond capture
// costs millions of 7.2 GHz passband samples but only thousands of
// envelope samples, which is what makes the GA loop affordable.
func RunEnvelopeAblation(ctx Context) (*EnvelopeAblation, error) {
	board := rf.DefaultLoadboard()
	board.DigitizerFs = 1e6
	board.LPFCutoffHz = 450e3
	board.LOOffsetHz = 100e3
	board.CaptureN = 400
	if ctx.Quick {
		board.CaptureN = 150
	}
	board.PathPhase = 0.3
	amp := rf.NewAmplifier(rf.PolyFromSpecs(16, 3))
	amp.ZoneGain = map[int]float64{0: 1, 1: 1, 2: 1, 3: 1}
	stim := func(t float64) float64 {
		return 0.08*math.Sin(2*math.Pi*20e3*t) + 0.06*math.Sin(2*math.Pi*45e3*t+0.7)
	}
	t0 := time.Now()
	env, err := board.RunEnvelope(amp, stim)
	if err != nil {
		return nil, err
	}
	envS := time.Since(t0).Seconds()
	t0 = time.Now()
	pass, err := board.RunPassband(amp, stim)
	if err != nil {
		return nil, err
	}
	passS := time.Since(t0).Seconds()
	se := dsp.MagnitudeSpectrum(dsp.Blackman.Apply(env))
	sp := dsp.MagnitudeSpectrum(dsp.Blackman.Apply(pass))
	return &EnvelopeAblation{
		SignatureRelErr: relL2(se, sp),
		EnvelopeS:       envS,
		PassbandS:       passS,
		Speedup:         passS / math.Max(envS, 1e-9),
	}, nil
}

// Render prints the A-ENV summary.
func (a *EnvelopeAblation) Render() string {
	var b strings.Builder
	b.WriteString("A-ENV  Envelope engine vs passband reference\n\n")
	fmt.Fprintf(&b, "  signature relative error : %.4f\n", a.SignatureRelErr)
	fmt.Fprintf(&b, "  envelope run time        : %.1f ms\n", a.EnvelopeS*1e3)
	fmt.Fprintf(&b, "  passband run time        : %.1f ms\n", a.PassbandS*1e3)
	fmt.Fprintf(&b, "  speedup                  : %.1fx\n", a.Speedup)
	return b.String()
}
