package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/rf"
)

// HardwareResult is the Section 4.2 measurement experiment: an RF2401-like
// front-end population "measured" on a simulated bench (ATE repeatability
// noise, socket non-repeatability per insertion), 28 calibration + 27
// validation devices, 100 kHz LO offset, 1 MHz digitizing rate.
type HardwareResult struct {
	Report *core.ValidationReport
	Cal    *core.Calibration
	CalN   int
	ValN   int
}

// Per-insertion socket non-repeatability used by the hardware experiment:
// the paper attributes part of its residual to "better socketing".
const (
	socketGainSigmaDB = 0.04
	socketTiltSigma   = 2e-10
)

// RunHardwareExperiment executes the Figs. 12-13 flow. As in the paper the
// stimulus is optimized on a behavioral model (no netlist access); training
// specs come from a conventional ATE characterization with bench
// repeatability noise; every signature acquisition is a fresh insertion
// with socket perturbation and digitizer noise. Predictions are validated
// against direct ATE measurements of the held-out devices.
func RunHardwareExperiment(ctx Context) (*HardwareResult, error) {
	key := memoKey("hardware", ctx)
	if v, ok := memo.Load(key); ok {
		return v.(*HardwareResult), nil
	}
	calN, valN := ctx.hardwareSizes()
	_, _, pop, gens := ctx.sizes()
	rng := rand.New(rand.NewSource(ctx.Seed + 1))
	model := core.RF2401Model{}
	cfg := core.DefaultHardwareConfig()

	opt, err := core.OptimizeStimulus(rng, model, cfg, core.OptimizerOptions{PopSize: pop, Generations: gens, Workers: ctx.Workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: hardware stimulus optimization: %w", err)
	}

	devices := lna.RF2401Population(rng, calN+valN)
	bench := ate.NewRFATE(rng)

	// measureOne performs a full insertion: ATE characterization plus a
	// signature capture of the socket-perturbed device.
	measure := func(d *lna.RF2401Device) (*core.Device, error) {
		inserted := d.PerturbedBehavioral(rng, socketGainSigmaDB, socketTiltSigma)
		specs, err := bench.Characterize(inserted, d.IIP3DBm-25)
		if err != nil {
			return nil, err
		}
		return &core.Device{
			Specs:      lna.Specs{GainDB: specs.GainDB, NFDB: specs.NFDB, IIP3DBm: specs.IIP3DBm},
			Behavioral: rf.EnvelopeDevice(inserted),
		}, nil
	}

	var calDevs, valDevs []*core.Device
	for i, d := range devices {
		cd, err := measure(d)
		if err != nil {
			return nil, fmt.Errorf("experiments: device %d: %w", i, err)
		}
		if i < calN {
			calDevs = append(calDevs, cd)
		} else {
			valDevs = append(valDevs, cd)
		}
	}

	// Each calibration insertion is an independent seeded task; the ATE
	// characterization above stays serial because the bench RNG models one
	// physical instrument shared across insertions.
	td, err := core.AcquireTrainingSetSeeded(rng.Int63(), cfg, opt.Stimulus, calDevs, func(d *core.Device) lna.Specs { return d.Specs }, ctx.Workers)
	if err != nil {
		return nil, err
	}
	cal, err := core.Calibrate(rng, opt.Stimulus, td, core.CalibrationOptions{Workers: ctx.Workers})
	if err != nil {
		return nil, err
	}
	rep, err := core.Validate(rng, cfg, cal, opt.Stimulus, valDevs)
	if err != nil {
		return nil, err
	}
	res := &HardwareResult{Report: rep, Cal: cal, CalN: calN, ValN: valN}
	memo.Store(key, res)
	return res, nil
}

// RenderFig renders Fig. 12 (spec 0, gain) or Fig. 13 (spec 2, IIP3).
func (r *HardwareResult) RenderFig(s int) string {
	sp := r.Report.Specs[s]
	actual := make([]float64, len(sp.Points))
	pred := make([]float64, len(sp.Points))
	for i, p := range sp.Points {
		actual[i] = p.Actual
		pred[i] = p.Predicted
	}
	fig := map[int]string{0: "FIG12", 2: "FIG13"}[s]
	title := fmt.Sprintf("%s  %s: direct measurement vs signature-test prediction  (RMS=%.3f, corr=%.3f)",
		fig, sp.Name, sp.RMSErr, sp.Correlation)
	return RenderScatter(title, "direct measurement", "predicted", actual, pred, 56, 18)
}

// Summary prints the hardware validation table.
func (r *HardwareResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hardware experiment: %d calibration + %d validation devices, 100 kHz LO offset, 1 MHz digitizing\n", r.CalN, r.ValN)
	b.WriteString(r.Report.String())
	return b.String()
}
