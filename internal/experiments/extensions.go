package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/lna"
)

// ---------------------------------------------------------------- A-ADC

// ADCRow is one digitizer-resolution sweep point.
type ADCRow struct {
	Bits int // 0 = ideal
	RMS  [3]float64
}

// ADCAblation holds the A-ADC result.
type ADCAblation struct {
	Rows []ADCRow
}

// RunADCAblation sweeps the low-cost tester's digitizer resolution. The
// paper's cost case rests on "a baseband digitizer" being cheap; this
// quantifies how few bits the signature test actually needs.
func RunADCAblation(ctx Context) (*ADCAblation, error) {
	rng := rand.New(rand.NewSource(ctx.Seed + 7))
	model := core.RF2401Model{}
	base := core.DefaultSimConfig()
	base.StimAmplitude = 0.05
	stim := base.RandomStimulus(rng)
	bitsList := []int{4, 6, 8, 12, 0}
	if ctx.Quick {
		bitsList = []int{4, 12, 0}
	}
	train, err := core.GeneratePopulation(rng, model, 60, 0.9)
	if err != nil {
		return nil, err
	}
	val, err := core.GeneratePopulation(rng, model, 25, 0.9)
	if err != nil {
		return nil, err
	}
	out := &ADCAblation{}
	for _, bits := range bitsList {
		cfg := *base
		cfg.DigitizerBits = bits
		cfg.DigitizerFullScaleV = 1.0
		td, err := core.AcquireTrainingSet(rng, &cfg, stim, train, func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			return nil, err
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			return nil, err
		}
		rep, err := core.Validate(rng, &cfg, cal, stim, val)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ADCRow{Bits: bits,
			RMS: [3]float64{rep.Specs[0].RMSErr, rep.Specs[1].RMSErr, rep.Specs[2].RMSErr}})
	}
	return out, nil
}

// Render prints the A-ADC table.
func (a *ADCAblation) Render() string {
	rows := [][]string{}
	for _, r := range a.Rows {
		label := fmt.Sprintf("%d", r.Bits)
		if r.Bits == 0 {
			label = "ideal"
		}
		rows = append(rows, []string{label,
			fmt.Sprintf("%.4f", r.RMS[0]), fmt.Sprintf("%.4f", r.RMS[1]), fmt.Sprintf("%.4f", r.RMS[2])})
	}
	return "A-ADC  Digitizer resolution vs prediction RMS error\n\n" +
		Table([]string{"ADC bits", "gain (dB)", "NF (dB)", "IIP3 (dB)"}, rows)
}

// ---------------------------------------------------------------- DIAG

// DiagResult is the fault-diagnosis extension (the authors' follow-on
// work, reference [9]): identify WHICH process parameter drifted from the
// same signature used for spec prediction. Only parameters with a usable
// signature footprint (Observable) are scored — a parameter that does not
// touch the signature is undiagnosable in principle.
type DiagResult struct {
	Trials       int
	Correct      int     // exact culprit named
	CorrectGroup int     // additionally: culprit inside the ambiguity group
	MeanAbsErr   float64 // |estimated - true| for the shifted parameter
	Observable   int     // parameters with a usable signature footprint
	TotalParams  int
}

// RunDiagnosisExperiment builds the sensitivity-matrix inverter (Eq. 7's
// linearization, pseudoinverted) at the simulation experiment's optimized
// stimulus, then shifts one LNA process parameter at a time on fresh
// devices and checks that the diagnosis names the right culprit.
func RunDiagnosisExperiment(ctx Context) (*DiagResult, error) {
	sim, err := RunSimExperiment(ctx)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ctx.Seed + 8))
	names := lna.ParamNames()

	set, err := core.NewBehavioralSet(sim.Model)
	if err != nil {
		return nil, err
	}
	as, err := sim.Cfg.SignatureSensitivity(set, sim.Opt.Stimulus)
	if err != nil {
		return nil, err
	}
	nominalSig, err := sim.Cfg.Acquire(set.Nominal, sim.Opt.Stimulus, nil)
	if err != nil {
		return nil, err
	}
	diag, err := core.NewSensitivityDiagnosis(as, nominalSig, names)
	if err != nil {
		return nil, err
	}

	res := &DiagResult{TotalParams: len(names), Observable: len(names)}
	shifts := []float64{0.15, -0.15}
	for p := 0; p < len(names); p++ {
		for _, shift := range shifts {
			rel := make([]float64, len(names))
			rel[p] = shift
			dut, err := sim.Model.Behavioral(rel)
			if err != nil {
				return nil, err
			}
			sig, err := sim.Cfg.Acquire(dut, sim.Opt.Stimulus, rng)
			if err != nil {
				return nil, err
			}
			culprit, _ := diag.Culprit(sig)
			est := diag.Estimate(sig)
			res.Trials++
			if culprit == names[p] {
				res.Correct++
			} else if q := diag.IndexOf(culprit); q >= 0 && diag.Ambiguous(p, q, 0.95) {
				// Named a parameter whose signature direction is
				// indistinguishable from the true one: counted as correct
				// within the ambiguity group.
				res.CorrectGroup++
			}
			if d := est[p] - shift; d >= 0 {
				res.MeanAbsErr += d
			} else {
				res.MeanAbsErr -= d
			}
		}
	}
	if res.Trials > 0 {
		res.MeanAbsErr /= float64(res.Trials)
	}
	return res, nil
}

// Render prints the DIAG summary.
func (r *DiagResult) Render() string {
	var b strings.Builder
	b.WriteString("DIAG  Parametric fault diagnosis from the signature (extension, ref. [9])\n\n")
	fmt.Fprintf(&b, "  single-parameter shift trials : %d (over %d parameters)\n", r.Trials, r.TotalParams)
	fmt.Fprintf(&b, "  culprit named exactly         : %d (%.0f%%)\n", r.Correct, 100*float64(r.Correct)/float64(r.Trials))
	fmt.Fprintf(&b, "  within ambiguity group        : %d (%.0f%%)\n", r.Correct+r.CorrectGroup, 100*float64(r.Correct+r.CorrectGroup)/float64(r.Trials))
	fmt.Fprintf(&b, "  mean |estimate - truth|       : %.3f (relative units)\n", r.MeanAbsErr)
	return b.String()
}
