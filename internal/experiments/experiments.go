// Package experiments contains one driver per paper figure/table plus the
// ablation studies called out in DESIGN.md. Each driver returns a
// structured result with a text renderer that prints the same rows/series
// the paper reports; cmd/rfexp and the repository's benchmarks are thin
// wrappers over these drivers.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Context configures an experiment run.
type Context struct {
	// Seed drives every RNG so runs are bit-for-bit reproducible.
	Seed int64
	// Quick shrinks population sizes and GA budgets for unit tests; full
	// paper-scale runs leave it false.
	Quick bool
	// Workers fans out the off-line phase (training-set acquisition, GA
	// fitness evaluation, cross-validation) over a worker pool; <= 1
	// runs serially. Every experiment result is bit-identical for every
	// worker count — parallelism buys wall-clock time, never different
	// numbers.
	Workers int
}

// DefaultContext is the paper-scale configuration.
func DefaultContext() Context { return Context{Seed: 2002} }

// sizes returns (training, validation, GA population, GA generations).
func (c Context) sizes() (train, val, pop, gens int) {
	if c.Quick {
		return 30, 16, 10, 3
	}
	// The paper: 100 training + 25 validation instances, five GA
	// iterations.
	return 100, 25, 20, 5
}

// hardwareSizes returns (calibration, validation) device counts for the
// measurement experiment (the paper used 28 + 27 of 55 devices).
func (c Context) hardwareSizes() (cal, val int) {
	if c.Quick {
		return 16, 10
	}
	return 28, 27
}

// memo caches expensive shared experiment results per context.
var memo sync.Map

func memoKey(name string, ctx Context) string {
	// Workers is part of the key even though results are worker-count
	// independent, so bit-identity tests comparing worker counts exercise
	// real recomputation instead of a cache hit.
	return fmt.Sprintf("%s/%d/%v/%d", name, ctx.Seed, ctx.Quick, ctx.Workers)
}

// RenderScatter draws a paper-style correlation plot (actual on x,
// predicted on y, the ideal 45-degree line as dots) in ASCII.
func RenderScatter(title, xlabel, ylabel string, actual, predicted []float64, width, height int) string {
	if len(actual) == 0 || len(actual) != len(predicted) {
		return title + ": no data\n"
	}
	lo, hi := actual[0], actual[0]
	for i := range actual {
		lo = math.Min(lo, math.Min(actual[i], predicted[i]))
		hi = math.Max(hi, math.Max(actual[i], predicted[i]))
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := 0.05 * (hi - lo)
	lo, hi = lo-pad, hi+pad
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(v float64) int {
		c := int((v - lo) / (hi - lo) * float64(width-1))
		return clampInt(c, 0, width-1)
	}
	toRow := func(v float64) int {
		r := height - 1 - int((v-lo)/(hi-lo)*float64(height-1))
		return clampInt(r, 0, height-1)
	}
	// Ideal 45-degree reference.
	for c := 0; c < width; c++ {
		v := lo + (hi-lo)*float64(c)/float64(width-1)
		grid[toRow(v)][c] = '.'
	}
	for i := range actual {
		grid[toRow(predicted[i])][toCol(actual[i])] = 'o'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s|\n", row)
	}
	fmt.Fprintf(&b, "   x: %s [%.3g .. %.3g], y: %s, 'o' devices, '.' ideal\n", xlabel, lo, hi, ylabel)
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Table formats rows with a header in aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	dashes := make([]string, len(widths))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
