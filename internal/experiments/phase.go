package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/rf"
)

// PhasePoint is one row of the Eq. 4/5 study.
type PhasePoint struct {
	PhaseRad float64
	// SameLOPower is the captured signal power with the naive same-LO
	// configuration (Eq. 4: proportional to cos^2 phi).
	SameLOPower float64
	// OffsetSigChange is the relative L2 change of the FFT-magnitude
	// signature vs phi = 0 with the offset-LO configuration (Eq. 5: ~0).
	OffsetSigChange float64
	// OffsetRawChange is the relative change of the raw time capture (for
	// contrast: large).
	OffsetRawChange float64
}

// PhaseResult is the PHASE experiment.
type PhaseResult struct {
	Points []PhasePoint
}

// RunPhaseStudy sweeps the LO path phase mismatch phi and reproduces the
// paper's Section 2.1 analysis: with a shared LO the demodulated signature
// collapses as cos(phi) — vanishing entirely at quadrature — while the
// offset-LO FFT-magnitude signature is invariant.
//
// Strict Eq. 5 invariance requires the stimulus bandwidth to sit BELOW the
// LO offset, so the two spectral images X_t(f-delta) and X_t(f+delta)
// never overlap: this study therefore uses the paper's hardware-style
// configuration (100 kHz offset, 1 MHz digitizing, millisecond capture)
// with a multitone stimulus confined below 50 kHz. DESIGN.md records this
// bandwidth rule — implicit in the paper — as a reproduction finding.
func RunPhaseStudy(ctx Context) (*PhaseResult, error) {
	_ = rand.New(rand.NewSource(ctx.Seed + 2)) // study is deterministic
	model := core.RF2401Model{}
	dut, err := model.Behavioral(make([]float64, model.NumParams()))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultHardwareConfig()
	if ctx.Quick {
		cfg.Board.CaptureN = 1000
	}
	// Narrowband multitone: 10/25/40 kHz, all below the 100 kHz offset and
	// integer-cycle within the capture.
	stim := func(t float64) float64 {
		return 0.02*math.Sin(2*math.Pi*10e3*t) +
			0.015*math.Sin(2*math.Pi*25e3*t+0.5) +
			0.01*math.Sin(2*math.Pi*40e3*t+1.1)
	}

	// Textbook configuration per Eqs. 1-5: ideal multiplying mixers.
	sameLO := *cfg.Board
	sameLO.UpMixer = rf.IdealMixer()
	sameLO.DownMixer = rf.IdealMixer()
	sameLO.LOOffsetHz = 0
	offsetLO := *cfg.Board
	offsetLO.UpMixer = rf.IdealMixer()
	offsetLO.DownMixer = rf.IdealMixer()

	signature := func(board rf.Loadboard, phase float64) ([]float64, []float64, error) {
		board.PathPhase = phase
		y, err := board.RunEnvelope(dut, stim)
		if err != nil {
			return nil, nil, err
		}
		return y, dsp.MagnitudeSpectrum(dsp.Blackman.Apply(y)), nil
	}

	raw0, sig0, err := signature(offsetLO, 0)
	if err != nil {
		return nil, err
	}
	res := &PhaseResult{}
	for _, deg := range []float64{0, 15, 30, 45, 60, 75, 90, 120, 150, 180} {
		phi := deg * math.Pi / 180
		ySame, _, err := signature(sameLO, phi)
		if err != nil {
			return nil, err
		}
		yOff, sigOff, err := signature(offsetLO, phi)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, PhasePoint{
			PhaseRad:        phi,
			SameLOPower:     dsp.SignalPower(ySame),
			OffsetSigChange: relL2(sigOff, sig0),
			OffsetRawChange: relL2(yOff, raw0),
		})
	}
	return res, nil
}

func relL2(a, ref []float64) float64 {
	var num, den float64
	for i := range a {
		d := a[i] - ref[i]
		num += d * d
		den += ref[i] * ref[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Render prints the PHASE table.
func (r *PhaseResult) Render() string {
	var b strings.Builder
	b.WriteString("PHASE  LO path-phase sensitivity (Eqs. 4-5)\n\n")
	p0 := r.Points[0].SameLOPower
	rows := [][]string{}
	for _, p := range r.Points {
		deg := p.PhaseRad * 180 / math.Pi
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", deg),
			fmt.Sprintf("%.4f", p.SameLOPower/p0),
			fmt.Sprintf("%.4f", math.Pow(math.Cos(p.PhaseRad), 2)),
			fmt.Sprintf("%.2e", p.OffsetSigChange),
			fmt.Sprintf("%.3f", p.OffsetRawChange),
		})
	}
	b.WriteString(Table([]string{"phi (deg)", "same-LO power (rel)", "cos^2 phi", "offset-LO |FFT| change", "offset-LO raw change"}, rows))
	b.WriteString("\nSame-LO capture follows cos^2(phi) and vanishes at 90 deg; the offset-LO magnitude signature is phase-immune.\n")
	return b.String()
}
