package experiments

import (
	"fmt"
	"strings"

	"repro/internal/ate"
)

// TimeResult regenerates the Section 4.2 test-time claim ("the signature
// test in this case required only 5 milliseconds of data capture ...
// significant improvement in test throughput is possible") as a table, plus
// the tester-economics comparison implied by the introduction.
type TimeResult struct {
	Suite       []ate.SpecTest
	Signature   *ate.SignatureTester
	NoHandler   ate.TimeComparison
	WithHandler ate.TimeComparison
	CostFactor  float64
}

// RunTimeComparison builds the comparison for the paper's hardware
// configuration (5 ms capture at 1 MHz) and a 200 ms handler index time.
func RunTimeComparison() (*TimeResult, error) {
	sig, err := ate.NewSignatureTester(5000, 1e6)
	if err != nil {
		return nil, err
	}
	suite := ate.ConventionalSuite()
	res := &TimeResult{
		Suite:       suite,
		Signature:   sig,
		NoHandler:   ate.CompareTestTime(suite, sig, 0),
		WithHandler: ate.CompareTestTime(suite, sig, 0.2),
	}
	conv := ate.Economics{CapitalUSD: ate.HighEndRFATE.CapitalUSD, DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	lowCost := ate.Economics{CapitalUSD: sig.CapitalUSD(), DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	res.CostFactor, err = ate.CostReductionFactor(conv, lowCost, res.NoHandler.ConventionalS, res.NoHandler.SignatureS)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the TIME table.
func (r *TimeResult) Render() string {
	var b strings.Builder
	b.WriteString("TIME  Conventional specification suite vs signature test\n\n")
	rows := [][]string{}
	for _, t := range r.Suite {
		rows = append(rows, []string{t.Name, fmt.Sprintf("%.0f", t.SetupS*1e3), fmt.Sprintf("%.0f", t.MeasureS*1e3), fmt.Sprintf("%.0f", t.Duration()*1e3)})
	}
	rows = append(rows, []string{"TOTAL conventional", "", "", fmt.Sprintf("%.0f", ate.SuiteDuration(r.Suite)*1e3)})
	b.WriteString(Table([]string{"Conventional test", "setup (ms)", "measure (ms)", "total (ms)"}, rows))
	b.WriteString("\n")
	rows = [][]string{
		{"setup (single configuration)", fmt.Sprintf("%.1f", r.Signature.SetupS()*1e3)},
		{"signature capture (5000 samples @ 1 MHz)", fmt.Sprintf("%.1f", r.Signature.CaptureS()*1e3)},
		{"transfer + FFT", fmt.Sprintf("%.1f", (r.Signature.TransferS+r.Signature.ComputeS)*1e3)},
		{"TOTAL signature", fmt.Sprintf("%.1f", r.Signature.InsertionS()*1e3)},
	}
	b.WriteString(Table([]string{"Signature test", "time (ms)"}, rows))
	b.WriteString("\n")
	rows = [][]string{
		{"raw test time", fmt.Sprintf("%.0f ms", r.NoHandler.ConventionalS*1e3), fmt.Sprintf("%.1f ms", r.NoHandler.SignatureS*1e3), fmt.Sprintf("%.1fx", r.NoHandler.Speedup)},
		{"incl. 200 ms handler", fmt.Sprintf("%.0f ms", r.WithHandler.ConventionalS*1e3), fmt.Sprintf("%.1f ms", r.WithHandler.SignatureS*1e3), fmt.Sprintf("%.1fx", r.WithHandler.Speedup)},
		{"throughput (dev/hr)", fmt.Sprintf("%.0f", r.WithHandler.ThroughputConventional), fmt.Sprintf("%.0f", r.WithHandler.ThroughputSignature), ""},
	}
	b.WriteString(Table([]string{"Comparison", "conventional", "signature", "speedup"}, rows))
	fmt.Fprintf(&b, "\nAll-in cost-per-device reduction (capital + overhead amortized): %.0fx\n", r.CostFactor)
	return b.String()
}
