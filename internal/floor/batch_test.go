package floor

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func sameResult(t *testing.T, name string, want, got DeviceResult) {
	t.Helper()
	fail := func(field string, a, b any) {
		t.Fatalf("%s: %s differs: serial %v vs batched %v", name, field, a, b)
	}
	if want.Index != got.Index {
		fail("Index", want.Index, got.Index)
	}
	if want.Bin != got.Bin {
		fail("Bin", want.Bin, got.Bin)
	}
	if want.Insertions != got.Insertions {
		fail("Insertions", want.Insertions, got.Insertions)
	}
	if want.AcqErrors != got.AcqErrors {
		fail("AcqErrors", want.AcqErrors, got.AcqErrors)
	}
	if want.TruePass != got.TruePass {
		fail("TruePass", want.TruePass, got.TruePass)
	}
	if want.Err != got.Err {
		fail("Err", want.Err, got.Err)
	}
	if len(want.Faults) != len(got.Faults) {
		fail("len(Faults)", want.Faults, got.Faults)
	}
	for i := range want.Faults {
		if want.Faults[i] != got.Faults[i] {
			fail("Faults", want.Faults, got.Faults)
		}
	}
	if len(want.Verdicts) != len(got.Verdicts) {
		fail("len(Verdicts)", want.Verdicts, got.Verdicts)
	}
	for i := range want.Verdicts {
		if want.Verdicts[i] != got.Verdicts[i] {
			fail("Verdicts", want.Verdicts, got.Verdicts)
		}
	}
	for _, pair := range []struct {
		field string
		a, b  float64
	}{
		{"ExtraSettleS", want.ExtraSettleS, got.ExtraSettleS},
		{"CleanD", want.CleanD, got.CleanD},
		{"Pred.GainDB", want.Pred.GainDB, got.Pred.GainDB},
		{"Pred.NFDB", want.Pred.NFDB, got.Pred.NFDB},
		{"Pred.IIP3DBm", want.Pred.IIP3DBm, got.Pred.IIP3DBm},
	} {
		if math.Float64bits(pair.a) != math.Float64bits(pair.b) {
			fail(pair.field, pair.a, pair.b)
		}
	}
}

// TestScreenBatchBitIdentity is the tentpole acceptance test: for batch
// sizes K in {1,3,16,64}, gated and ungated, clean floor and heavily
// faulted (so retests and fallbacks occur), every DeviceResult out of
// ScreenBatch must match the serial ScreenDevice result field for field,
// floats bit for bit.
func TestScreenBatchBitIdentity(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(47))
	lot, err := core.GeneratePopulation(rng, f.model, 70, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	const lotSeed = 909
	ctx := context.Background()

	for _, gated := range []bool{true, false} {
		eng := f.engine(gated)
		for _, faults := range []*FaultModel{nil, DefaultFaultModel(0.35)} {
			serial := make([]DeviceResult, len(lot))
			for i, d := range lot {
				serial[i] = eng.ScreenDevice(ctx, i, d, core.DeviceSeed(lotSeed, i), faults)
			}
			retested, fellBack := 0, 0
			for _, r := range serial {
				if r.Insertions > 1 {
					retested++
				}
				if r.Bin == BinFallback {
					fellBack++
				}
			}
			if gated && faults != nil && (retested == 0 || fellBack == 0) {
				t.Fatalf("fixture too tame: %d retested, %d fallback — the sweep would not exercise retest routing", retested, fellBack)
			}
			for _, k := range []int{1, 3, 16, 64} {
				for start := 0; start < len(lot); start += k {
					end := start + k
					if end > len(lot) {
						end = len(lot)
					}
					batch := make([]BatchDevice, 0, end-start)
					for i := start; i < end; i++ {
						batch = append(batch, BatchDevice{Index: i, Device: lot[i], Seed: core.DeviceSeed(lotSeed, i)})
					}
					got := eng.ScreenBatch(ctx, batch, faults)
					for j, r := range got {
						name := "gated=" + boolName(gated) + " faulted=" + boolName(faults != nil)
						sameResult(t, name, serial[start+j], r)
					}
				}
			}
		}
	}
}

func boolName(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// TestScreenDeviceCleanDRegression pins the CleanD of an accepted capture
// to the gate distance of that same signature: since Classify now hands the
// distance back, a clean first-insertion device must record exactly
// Distance(signature) — recomputed here from the identical rng stream.
func TestScreenDeviceCleanDRegression(t *testing.T) {
	f := getFixture(t)
	eng := f.engine(true)
	rng := rand.New(rand.NewSource(53))
	lot, err := core.GeneratePopulation(rng, f.model, 12, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	pinned := 0
	for i, d := range lot {
		seed := core.DeviceSeed(4242, i)
		res := eng.ScreenDevice(context.Background(), i, d, seed, nil)
		if res.Bin == BinFallback || res.Insertions != 1 {
			continue
		}
		sig, err := f.cfg.AcquireWithFaults(d.Behavioral, f.stim, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := f.gate.Distance(sig)
		if res.CleanD < 0 {
			t.Fatalf("device %d: accepted capture recorded CleanD %v, want >= 0", i, res.CleanD)
		}
		if math.Float64bits(res.CleanD) != math.Float64bits(want) {
			t.Fatalf("device %d: CleanD %v, want Distance %v", i, res.CleanD, want)
		}
		pinned++
	}
	if pinned < 8 {
		t.Fatalf("only %d/12 devices resolved on first insertion — fixture cannot pin CleanD", pinned)
	}
}

// TestScreenBatchUngatedCleanD: the ungated engine must keep reporting
// CleanD == -1 (no gate, no distance), on both paths.
func TestScreenBatchUngatedCleanD(t *testing.T) {
	f := getFixture(t)
	eng := f.engine(false)
	rng := rand.New(rand.NewSource(59))
	lot, err := core.GeneratePopulation(rng, f.model, 4, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchDevice, len(lot))
	for i, d := range lot {
		batch[i] = BatchDevice{Index: i, Device: d, Seed: core.DeviceSeed(7, i)}
	}
	for _, res := range eng.ScreenBatch(context.Background(), batch, nil) {
		if res.CleanD != -1 {
			t.Fatalf("device %d: ungated CleanD %v, want -1", res.Index, res.CleanD)
		}
		if res.Bin == BinFallback {
			t.Fatalf("device %d: clean ungated screen fell back: %s", res.Index, res.Err)
		}
	}
}

// TestScreenBatchAllocBudget guards the per-device allocation count of the
// batched screen. The budget is deliberately loose — it exists to catch a
// reintroduced per-predict or per-FFT allocation storm, not to pin the
// allocator.
func TestScreenBatchAllocBudget(t *testing.T) {
	f := getFixture(t)
	eng := f.engine(true)
	rng := rand.New(rand.NewSource(61))
	const k = 16
	lot, err := core.GeneratePopulation(rng, f.model, k, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]BatchDevice, len(lot))
	for i, d := range lot {
		batch[i] = BatchDevice{Index: i, Device: d, Seed: core.DeviceSeed(17, i)}
	}
	ctx := context.Background()
	eng.ScreenBatch(ctx, batch, nil) // warm the screener pool and FFT plans
	allocs := testing.AllocsPerRun(3, func() {
		eng.ScreenBatch(ctx, batch, nil)
	})
	perDevice := allocs / k
	const budget = 600
	if perDevice > budget {
		t.Fatalf("batched screen allocates %.0f objects/device (budget %d)", perDevice, budget)
	}
}
