package floor

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/rf"
	"repro/internal/wave"
)

// BatchDevice is one entry of a ScreenBatch call: a device plus the index
// and seed ScreenDevice would have received for it.
type BatchDevice struct {
	Index  int
	Device *core.Device
	Seed   int64
}

// batchScreener bundles the reusable kernels of one batched screening call:
// the batched acquirer (shared upconversion and LO state for the engine's
// stimulus, one FFT plan for the whole batch) and the predict scratch. It
// is checked out of a per-(config, stimulus) pool so concurrent tester
// sites each hold their own while amortizing the Prepare cost across calls.
type batchScreener struct {
	ba    *core.BatchAcquirer
	ps    core.PredictScratch
	specs []lna.Specs
	pool  *sync.Pool // nil when the registry was full at construction

	// Stage-1 scratch: the round's attempting devices and the parallel
	// argument arrays handed to CaptureTimeBatch, pooled across rounds.
	att  []*batchDevState
	duts []rf.EnvelopeDevice
	rngs []*rand.Rand
	flts []*rf.InsertionFaults
	caps []core.BatchCapture
}

func (s *batchScreener) release() {
	// Drop references into the finished batch so a pooled screener never
	// pins device state or records beyond the call that produced them.
	for i := range s.att {
		s.att[i] = nil
	}
	for i := range s.duts {
		s.duts[i] = nil
	}
	for i := range s.rngs {
		s.rngs[i] = nil
	}
	for i := range s.flts {
		s.flts[i] = nil
	}
	for i := range s.caps {
		s.caps[i] = core.BatchCapture{}
	}
	if s.pool != nil {
		s.pool.Put(s)
	}
}

// The screener registry is keyed by the state a BatchAcquirer is built
// from. Engines that share Cfg and Stim (WithModel copies, shadow/canary
// variants) share a pool; the cap keeps a process that churns through
// configurations from accumulating pools forever — past it, screeners are
// built per call and simply not pooled.
type screenerKey struct {
	cfg  *core.TestConfig
	stim *wave.PWL
}

var (
	screenerMu    sync.Mutex
	screenerPools = map[screenerKey]*sync.Pool{}
)

const maxScreenerPools = 64

// screener checks a batchScreener out of the registry, constructing one if
// the pool is empty. A nil return means the batched kernel cannot be built
// for this engine (invalid config); the caller falls back to ScreenDevice.
func (e *Engine) screener() *batchScreener {
	key := screenerKey{cfg: e.Cfg, stim: e.Stim}
	screenerMu.Lock()
	pool := screenerPools[key]
	if pool == nil && len(screenerPools) < maxScreenerPools {
		pool = &sync.Pool{}
		screenerPools[key] = pool
	}
	screenerMu.Unlock()
	if pool != nil {
		if s, _ := pool.Get().(*batchScreener); s != nil {
			return s
		}
	}
	ba, err := core.NewBatchAcquirer(e.Cfg, e.Stim)
	if err != nil {
		return nil
	}
	return &batchScreener{ba: ba, pool: pool}
}

// batchDevState is one device's in-flight state across the retest rounds.
type batchDevState struct {
	res *DeviceResult
	dev *core.Device
	rng *rand.Rand

	sig       []float64 // accepted signature
	rec       []float64 // this round's time record (nil: no capture)
	flt       *rf.InsertionFaults
	attempted bool // this round drew an insertion and wants a capture
	resolved  bool // clean capture accepted
	done      bool // no further attempts (panic or expired deadline)
}

// supervised runs fn under the per-device panic contract: a panic is
// recovered into the device's result (fallback bin, structured error, at
// least one insertion) and the device takes no further attempts. Other
// devices in the batch are untouched — supervision still costs one device,
// never the lot.
func (st *batchDevState) supervised(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			st.res.Bin = BinFallback
			st.res.Err = fmt.Sprintf("panic: %v", r)
			if st.res.Insertions == 0 {
				st.res.Insertions = 1
			}
			st.done = true
			st.resolved = false
		}
	}()
	fn()
}

// ScreenBatch screens up to K devices through one pass of the batched
// kernels: the time-domain half of each insertion runs per device through a
// shared-stimulus BatchRunner, every round's FFTs run as one device-batched
// transform, and the surviving signatures are mapped to spec predictions as
// matrix-matrix products. Bins, predictions, fault draws, gate verdicts and
// retest routing are bit-identical to calling ScreenDevice per entry: each
// device consumes its own seed-derived randomness exactly as the serial
// path does, and every numeric stage of the batched kernels is
// bit-compatible with its serial counterpart.
//
// Like ScreenDevice it never panics — a panic inside one device's screening
// routes that device to the fallback bin and the rest of the batch
// continues. ctx bounds each device's wall time the same way: once expired,
// devices stop retesting after their next round boundary. If the batched
// kernel cannot be constructed for this engine's config, ScreenBatch
// degrades to per-device ScreenDevice calls.
func (e *Engine) ScreenBatch(ctx context.Context, batch []BatchDevice, faults *FaultModel) []DeviceResult {
	results := make([]DeviceResult, len(batch))
	if len(batch) == 0 {
		return results
	}
	scr := e.screener()
	if scr == nil {
		for i, bd := range batch {
			results[i] = e.ScreenDevice(ctx, bd.Index, bd.Device, bd.Seed, faults)
		}
		return results
	}
	defer scr.release()

	pol := e.Policy
	pol.defaults()
	maxAttempts := e.MaxAttempts()
	windowS := e.Cfg.StimulusDuration()

	states := make([]*batchDevState, len(batch))
	for i, bd := range batch {
		st := &batchDevState{res: &results[i], dev: bd.Device}
		st.res.Index = bd.Index
		st.res.CleanD = -1
		st.supervised(func() {
			st.res.TruePass = e.TruePass(bd.Device.Specs)
			st.rng = rand.New(rand.NewSource(bd.Seed))
		})
		states[i] = st
	}

	recs := make([][]float64, 0, len(batch))
	live := make([]*batchDevState, 0, len(batch))
	for attempt := 0; attempt < maxAttempts; attempt++ {
		// Stage 1 — per-device insertion bookkeeping (backoff, fault draw)
		// followed by one device-interleaved capture of the whole round.
		// Each device's rng consumption matches the serial path sample for
		// sample: the draw and the noise stream both come from the device's
		// own rng in the serial order, so splitting the round into
		// draw-then-capture phases reorders nothing within a device.
		recs = recs[:0]
		live = live[:0]
		att := scr.att[:0]
		duts := scr.duts[:0]
		rngs := scr.rngs[:0]
		flts := scr.flts[:0]
		for _, st := range states {
			if st.resolved || st.done {
				continue
			}
			st.rec = nil
			st.flt = nil
			st.attempted = false
			st.supervised(func() {
				if attempt > 0 {
					if ctx != nil && ctx.Err() != nil {
						st.res.Err = fmt.Sprintf("deadline: %v after %d insertions", ctx.Err(), st.res.Insertions)
						st.done = true
						return
					}
					st.res.ExtraSettleS += pol.SettleBaseS * math.Pow(pol.BackoffFactor, float64(attempt-1))
				}
				var kind FaultKind
				if faults != nil {
					kind, st.flt = faults.Draw(st.rng, windowS)
				}
				st.res.Insertions++
				st.res.Faults = append(st.res.Faults, kind)
				st.attempted = true
			})
			if st.attempted && !st.done {
				att = append(att, st)
				duts = append(duts, st.dev.Behavioral)
				rngs = append(rngs, st.rng)
				flts = append(flts, st.flt)
			}
		}
		if len(att) > 0 {
			if cap(scr.caps) < len(att) {
				scr.caps = make([]core.BatchCapture, len(att))
			}
			caps := scr.caps[:len(att)]
			scr.ba.CaptureTimeBatch(duts, rngs, flts, caps)
			for ci, st := range att {
				c := &caps[ci]
				st.supervised(func() {
					if c.Panic != nil {
						// Re-raise under this device's supervision: the
						// fallback-bin routing and "panic: %v" message are
						// byte-identical to the serial CaptureTime panic.
						panic(c.Panic)
					}
					if c.Err != nil {
						st.res.AcqErrors++
						st.res.Verdicts = append(st.res.Verdicts, VerdictInvalid)
						return
					}
					st.rec = c.Rec
				})
				if st.rec != nil && !st.done {
					recs = append(recs, st.rec)
					live = append(live, st)
				}
			}
		}
		scr.att, scr.duts, scr.rngs, scr.flts = att, duts, rngs, flts
		// Stage 2 — one batched FFT turns every surviving capture of the
		// round into its signature.
		var sigs [][]float64
		if len(recs) > 0 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						// A batch-FFT failure costs the round's captures, not
						// the batch: each device records the lost insertion
						// and retests.
						for _, st := range live {
							st.res.AcqErrors++
							st.res.Verdicts = append(st.res.Verdicts, VerdictInvalid)
						}
						live = live[:0]
					}
				}()
				sigs = scr.ba.Signatures(recs)
			}()
		}

		// Stage 3 — gate each signature; clean captures resolve the device.
		allDone := true
		for li, st := range live {
			sig := sigs[li]
			st.supervised(func() {
				verdict := VerdictClean
				d := -1.0
				if e.Gate != nil {
					verdict, d = e.Gate.Classify(sig)
				}
				st.res.Verdicts = append(st.res.Verdicts, verdict)
				if verdict == VerdictClean {
					st.sig = sig
					st.res.CleanD = d
					st.resolved = true
				}
			})
		}
		for _, st := range states {
			if !st.resolved && !st.done {
				allDone = false
			}
		}
		if allDone {
			break
		}
	}

	// Stage 4 — batched prediction over the resolved devices. The matrix
	// path is bit-identical to Calibration.Predict; if it panics (a model
	// missing its fast path misbehaving), each device retries through the
	// serial predict under its own supervision.
	resolved := live[:0]
	sigs := recs[:0]
	for _, st := range states {
		if st.resolved {
			resolved = append(resolved, st)
			sigs = append(sigs, st.sig)
		} else if !st.done {
			st.res.Bin = BinFallback
		}
	}
	if len(resolved) > 0 {
		batchOK := false
		func() {
			defer func() { _ = recover() }()
			X := scr.ps.StackSignatures(sigs)
			if cap(scr.specs) < len(resolved) {
				scr.specs = make([]lna.Specs, len(resolved))
			}
			specs := scr.specs[:len(resolved)]
			e.Cal.PredictBatch(X, specs, &scr.ps)
			for i, st := range resolved {
				st.res.Pred = specs[i]
			}
			batchOK = true
		}()
		for _, st := range resolved {
			st := st
			st.supervised(func() {
				if !batchOK {
					st.res.Pred = e.Cal.Predict(st.sig)
				}
				if e.PredPass(st.res.Pred) {
					st.res.Bin = BinPass
				} else {
					st.res.Bin = BinFail
				}
			})
		}
	}
	return results
}
