package floor

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/rf"
	"repro/internal/wave"
)

// Policy bounds the retest loop: how many re-insertions a device may get
// after a gated-out capture, and how much extra settle time each retest
// adds (exponential backoff lets thermal/contact transients die out).
type Policy struct {
	// MaxRetests is the number of additional insertions after the first
	// (default 2, so at most 3 insertions per device).
	MaxRetests int
	// SettleBaseS is the extra settle time before the first retest
	// (default 2 ms).
	SettleBaseS float64
	// BackoffFactor multiplies the settle time per further retest
	// (default 2).
	BackoffFactor float64
	// HandlerS is the part placement time per insertion, shared with the
	// throughput tables (default 0.2 s).
	HandlerS float64
}

// DefaultPolicy returns the retest policy used by the examples.
func DefaultPolicy() Policy {
	return Policy{MaxRetests: 2, SettleBaseS: 2e-3, BackoffFactor: 2, HandlerS: 0.2}
}

func (p *Policy) defaults() {
	if p.MaxRetests < 0 {
		p.MaxRetests = 0
	}
	if p.SettleBaseS <= 0 {
		p.SettleBaseS = 2e-3
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	if p.HandlerS <= 0 {
		p.HandlerS = 0.2
	}
}

// Bin is where a device ends up. Every device lands in exactly one bin —
// the engine never silently drops a device.
type Bin int

const (
	// BinPass ships on the signature tester's verdict.
	BinPass Bin = iota
	// BinFail is rejected on the signature tester's verdict.
	BinFail
	// BinFallback is routed to the conventional spec-test suite because no
	// clean capture was obtained within the retest budget (or the device's
	// screening panicked or timed out); the conventional test then bins it
	// correctly at conventional cost.
	BinFallback
)

// String names the bin.
func (b Bin) String() string {
	switch b {
	case BinPass:
		return "pass"
	case BinFail:
		return "fail"
	case BinFallback:
		return "fallback-to-spec-test"
	default:
		return fmt.Sprintf("bin(%d)", int(b))
	}
}

// DeviceResult records one device's path across the floor. It is
// self-contained: everything the lot accounting needs — insertions, settle
// backoff, fault draws, verdicts — is carried here, so results produced by
// concurrent workers (or replayed from a journal) fold into an identical
// LotReport regardless of completion order.
type DeviceResult struct {
	Index      int
	Bin        Bin
	Insertions int
	Faults     []FaultKind // drawn fault per insertion
	Verdicts   []Verdict   // gate verdict per insertion (VerdictClean when ungated)
	AcqErrors  int         // insertions lost to acquisition errors
	Pred       lna.Specs   // signature prediction (valid unless BinFallback)
	TruePass   bool        // conventional-ATE verdict on the true specs

	// ExtraSettleS is the backoff settle time this device's retests added.
	ExtraSettleS float64
	// CleanD is the gate distance of the accepted capture (-1 when no
	// capture was accepted or the engine runs ungated) — the drift
	// watchdog's raw observable.
	CleanD float64
	// Err carries a structured supervision error (recovered panic, missed
	// deadline) that routed the device to BinFallback; empty otherwise.
	Err string
	// Site is the tester site that screened the device (0 on the serial
	// engine; set by the lot orchestrator).
	Site int
}

// Engine is the fault-tolerant test-floor engine. Gate == nil degrades it
// to the naive flow (first capture trusted blindly, no retests) — that
// configuration exists so the gated flow's benefit is measurable against
// it on the same lot.
type Engine struct {
	Cfg  *core.TestConfig
	Cal  *core.Calibration
	Stim *wave.PWL
	Gate *Gate
	// PredPass bins a signature prediction (typically guard-banded limits).
	PredPass func(lna.Specs) bool
	// TruePass is the conventional-ATE verdict on true specs: it scores
	// escapes/overkill and bins the fallback devices.
	TruePass func(lna.Specs) bool
	Policy   Policy
}

// Validate checks that the engine is fully configured.
func (e *Engine) Validate() error {
	if e.Cfg == nil || e.Cal == nil || e.Stim == nil {
		return fmt.Errorf("floor: engine needs config, calibration and stimulus")
	}
	if e.PredPass == nil || e.TruePass == nil {
		return fmt.Errorf("floor: engine needs PredPass and TruePass limit functions")
	}
	return nil
}

// Fingerprint hashes the engine's screening-relevant configuration —
// retest policy, board capture geometry, calibration trainers and their
// cross-validation errors, and the gate's thresholds and training
// statistics — into one FNV-1a value. Two processes that rebuilt the same
// engineering phase (same seed, same flags) get the same fingerprint, so
// a distributed test floor can refuse to pair a coordinator with a site
// that was calibrated differently: matching (lot seed, device index)
// streams are not enough if the regression maps disagree.
func (e *Engine) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	putI := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	pol := e.Policy
	pol.defaults()
	putI(pol.MaxRetests)
	putF(pol.SettleBaseS)
	putF(pol.BackoffFactor)
	putF(pol.HandlerS)
	if e.Cfg != nil {
		putI(e.Cfg.Board.CaptureN)
		putF(e.Cfg.Board.DigitizerFs)
	}
	if e.Cal != nil {
		for i, tr := range e.Cal.Trainers {
			h.Write([]byte(tr))
			putF(e.Cal.CVRMS[i])
		}
	}
	if e.Gate == nil {
		h.Write([]byte("ungated"))
	} else {
		g := e.Gate
		putI(g.Components())
		putF(g.SuspectD)
		putF(g.InvalidD)
		putF(g.SuspectRes)
		putF(g.InvalidRes)
		putF(g.TrainMeanD)
		putF(g.TrainSigmaD)
		for _, m := range g.Mean {
			putF(m)
		}
	}
	return h.Sum64()
}

// WithModel returns a copy of the engine that screens through a different
// calibration model and gate, sharing everything else — config, stimulus,
// policy, and the pass-limit functions. This is how a versioned calibration
// artifact becomes a runnable engine: the screening semantics (and hence
// the fingerprint) follow the model, the floor plumbing stays put.
func (e *Engine) WithModel(cal *core.Calibration, gate *Gate) *Engine {
	ne := *e
	ne.Cal = cal
	ne.Gate = gate
	return &ne
}

// MaxAttempts is the per-device insertion budget under the engine's policy:
// 1 when ungated (first capture trusted), 1+MaxRetests when gated.
func (e *Engine) MaxAttempts() int {
	pol := e.Policy
	pol.defaults()
	if e.Gate == nil {
		return 1
	}
	return 1 + pol.MaxRetests
}

// NewReport allocates an empty LotReport sized for this engine's retest
// budget; DeviceResults are folded in with Fold and the economics closed
// with Finish.
func (e *Engine) NewReport(devices int) *LotReport {
	return newLotReport(devices, e.MaxAttempts())
}

// ScreenDevice runs one device through the full floor path — fault draw,
// acquisition, gate, bounded retests — and returns its DeviceResult. All
// randomness the device sees flows from seed (derive it with
// core.DeviceSeed so the stream depends only on lot seed and index), which
// is what keeps serial, concurrent and resumed lots identical.
//
// ScreenDevice never panics: a panic escaping the rf/linalg hot paths
// (e.g. a fault hook corrupting the capture contract) is recovered into a
// structured DeviceResult.Err and the device is routed to the fallback
// bin — supervision costs one device, never the lot. ctx bounds the
// device's wall time: an expired deadline stops further retests and routes
// the device to fallback (the first insertion always runs, so every
// device is inserted at least once).
func (e *Engine) ScreenDevice(ctx context.Context, index int, d *core.Device, seed int64, faults *FaultModel) (res DeviceResult) {
	res = DeviceResult{Index: index, CleanD: -1, TruePass: e.TruePass(d.Specs)}
	defer func() {
		if r := recover(); r != nil {
			res.Bin = BinFallback
			res.Err = fmt.Sprintf("panic: %v", r)
			if res.Insertions == 0 {
				// The panicked insertion was still an insertion: the part
				// was placed and the capture attempted.
				res.Insertions = 1
			}
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	pol := e.Policy
	pol.defaults()
	maxAttempts := e.MaxAttempts()
	windowS := e.Cfg.StimulusDuration()

	var sig []float64
	resolved := false
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if ctx != nil && ctx.Err() != nil {
				res.Err = fmt.Sprintf("deadline: %v after %d insertions", ctx.Err(), res.Insertions)
				break
			}
			res.ExtraSettleS += pol.SettleBaseS * math.Pow(pol.BackoffFactor, float64(attempt-1))
		}
		var kind FaultKind
		var flt *rf.InsertionFaults
		if faults != nil {
			kind, flt = faults.Draw(rng, windowS)
		}
		res.Insertions++
		res.Faults = append(res.Faults, kind)

		capture, err := e.Cfg.AcquireWithFaults(d.Behavioral, e.Stim, rng, flt)
		if err != nil {
			// A lost capture is handled like an INVALID one: count it and
			// retest; the device is never dropped.
			res.AcqErrors++
			res.Verdicts = append(res.Verdicts, VerdictInvalid)
			continue
		}
		verdict := VerdictClean
		d := -1.0
		if e.Gate != nil {
			verdict, d = e.Gate.Classify(capture)
		}
		res.Verdicts = append(res.Verdicts, verdict)
		if verdict == VerdictClean {
			sig = capture
			res.CleanD = d
			resolved = true
			break
		}
	}
	if resolved {
		res.Pred = e.Cal.Predict(sig)
		if e.PredPass(res.Pred) {
			res.Bin = BinPass
		} else {
			res.Bin = BinFail
		}
	} else {
		res.Bin = BinFallback
	}
	return res
}

// RunLot screens every device in the lot serially. faults may be nil
// (clean floor). All randomness — measurement noise and fault draws — is
// derived per device from (lotSeed, index) via core.DeviceSeed, so a fixed
// lot seed reproduces the lot exactly and the result is bit-identical to
// the concurrent orchestrator screening the same seeded lot. The engine
// does not mutate Cfg, Cal, Stim or Gate, so engines sharing them may run
// concurrently.
func (e *Engine) RunLot(lotSeed int64, lot []*core.Device, faults *FaultModel) (*LotReport, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if len(lot) == 0 {
		return nil, fmt.Errorf("floor: empty lot")
	}
	if faults != nil {
		if err := faults.Validate(); err != nil {
			return nil, err
		}
	}
	rep := e.NewReport(len(lot))
	for i, d := range lot {
		res := e.ScreenDevice(context.Background(), i, d, core.DeviceSeed(lotSeed, i), faults)
		rep.Fold(res)
	}
	if err := e.Finish(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// Finish closes the lot economics: the throughput comparison under the
// accumulated retest/fallback (and, on the orchestrator, quarantine and
// journal) load.
func (e *Engine) Finish(r *LotReport) error {
	pol := e.Policy
	pol.defaults()
	tester, err := ate.NewSignatureTester(e.Cfg.Board.CaptureN, e.Cfg.Board.DigitizerFs)
	if err != nil {
		return err
	}
	r.Load.Devices = r.Devices
	cmp, err := ate.CompareTestTimeUnderLoad(ate.ConventionalSuite(), tester, pol.HandlerS, r.Load)
	if err != nil {
		return err
	}
	r.Time = cmp
	return nil
}
