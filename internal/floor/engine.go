package floor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/rf"
	"repro/internal/wave"
)

// Policy bounds the retest loop: how many re-insertions a device may get
// after a gated-out capture, and how much extra settle time each retest
// adds (exponential backoff lets thermal/contact transients die out).
type Policy struct {
	// MaxRetests is the number of additional insertions after the first
	// (default 2, so at most 3 insertions per device).
	MaxRetests int
	// SettleBaseS is the extra settle time before the first retest
	// (default 2 ms).
	SettleBaseS float64
	// BackoffFactor multiplies the settle time per further retest
	// (default 2).
	BackoffFactor float64
	// HandlerS is the part placement time per insertion, shared with the
	// throughput tables (default 0.2 s).
	HandlerS float64
}

// DefaultPolicy returns the retest policy used by the examples.
func DefaultPolicy() Policy {
	return Policy{MaxRetests: 2, SettleBaseS: 2e-3, BackoffFactor: 2, HandlerS: 0.2}
}

func (p *Policy) defaults() {
	if p.MaxRetests < 0 {
		p.MaxRetests = 0
	}
	if p.SettleBaseS <= 0 {
		p.SettleBaseS = 2e-3
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	if p.HandlerS <= 0 {
		p.HandlerS = 0.2
	}
}

// Bin is where a device ends up. Every device lands in exactly one bin —
// the engine never silently drops a device.
type Bin int

const (
	// BinPass ships on the signature tester's verdict.
	BinPass Bin = iota
	// BinFail is rejected on the signature tester's verdict.
	BinFail
	// BinFallback is routed to the conventional spec-test suite because no
	// clean capture was obtained within the retest budget; the
	// conventional test then bins it correctly at conventional cost.
	BinFallback
)

// String names the bin.
func (b Bin) String() string {
	switch b {
	case BinPass:
		return "pass"
	case BinFail:
		return "fail"
	case BinFallback:
		return "fallback-to-spec-test"
	default:
		return fmt.Sprintf("bin(%d)", int(b))
	}
}

// DeviceResult records one device's path across the floor.
type DeviceResult struct {
	Index      int
	Bin        Bin
	Insertions int
	Faults     []FaultKind // drawn fault per insertion
	Verdicts   []Verdict   // gate verdict per insertion (VerdictClean when ungated)
	AcqErrors  int         // insertions lost to acquisition errors
	Pred       lna.Specs   // signature prediction (valid unless BinFallback)
	TruePass   bool        // conventional-ATE verdict on the true specs
}

// Engine is the fault-tolerant test-floor engine. Gate == nil degrades it
// to the naive flow (first capture trusted blindly, no retests) — that
// configuration exists so the gated flow's benefit is measurable against
// it on the same lot.
type Engine struct {
	Cfg  *core.TestConfig
	Cal  *core.Calibration
	Stim *wave.PWL
	Gate *Gate
	// PredPass bins a signature prediction (typically guard-banded limits).
	PredPass func(lna.Specs) bool
	// TruePass is the conventional-ATE verdict on true specs: it scores
	// escapes/overkill and bins the fallback devices.
	TruePass func(lna.Specs) bool
	Policy   Policy
}

func (e *Engine) validate() error {
	if e.Cfg == nil || e.Cal == nil || e.Stim == nil {
		return fmt.Errorf("floor: engine needs config, calibration and stimulus")
	}
	if e.PredPass == nil || e.TruePass == nil {
		return fmt.Errorf("floor: engine needs PredPass and TruePass limit functions")
	}
	return nil
}

// RunLot screens every device in the lot. faults may be nil (clean floor).
// All randomness — measurement noise and fault draws — flows through rng,
// so a fixed seed reproduces the lot exactly. The engine does not mutate
// Cfg, Cal, Stim or Gate, so engines sharing them may run concurrently
// as long as each call gets its own rng.
func (e *Engine) RunLot(rng *rand.Rand, lot []*core.Device, faults *FaultModel) (*LotReport, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	if len(lot) == 0 {
		return nil, fmt.Errorf("floor: empty lot")
	}
	if faults != nil {
		if err := faults.Validate(); err != nil {
			return nil, err
		}
	}
	pol := e.Policy
	pol.defaults()
	maxAttempts := 1
	if e.Gate != nil {
		maxAttempts = 1 + pol.MaxRetests
	}
	windowS := e.Cfg.StimulusDuration()

	rep := newLotReport(len(lot), maxAttempts)
	for i, d := range lot {
		res := DeviceResult{Index: i, TruePass: e.TruePass(d.Specs)}
		var sig []float64
		resolved := false
		for attempt := 0; attempt < maxAttempts; attempt++ {
			if attempt > 0 {
				rep.Load.ExtraSettleS += pol.SettleBaseS * math.Pow(pol.BackoffFactor, float64(attempt-1))
			}
			var kind FaultKind
			var flt *rf.InsertionFaults
			if faults != nil {
				kind, flt = faults.Draw(rng, windowS)
			}
			res.Insertions++
			rep.Load.Insertions++
			res.Faults = append(res.Faults, kind)
			rep.FaultCounts[kind]++

			capture, err := e.Cfg.AcquireWithFaults(d.Behavioral, e.Stim, rng, flt)
			if err != nil {
				// A lost capture is handled like an INVALID one: count it
				// and retest; the device is never dropped.
				res.AcqErrors++
				rep.AcqErrors++
				res.Verdicts = append(res.Verdicts, VerdictInvalid)
				continue
			}
			verdict := VerdictClean
			if e.Gate != nil {
				verdict = e.Gate.Classify(capture)
			}
			res.Verdicts = append(res.Verdicts, verdict)
			rep.GateCounts[verdict]++
			if verdict == VerdictClean {
				sig = capture
				resolved = true
				break
			}
		}
		rep.RetestHist[res.Insertions-1]++
		if resolved {
			res.Pred = e.Cal.Predict(sig)
			if e.PredPass(res.Pred) {
				res.Bin = BinPass
			} else {
				res.Bin = BinFail
			}
		} else {
			res.Bin = BinFallback
			rep.Load.FallbackDevices++
		}
		rep.tally(res)
		rep.Results = append(rep.Results, res)
	}

	if err := rep.finishEconomics(e.Cfg, pol); err != nil {
		return nil, err
	}
	return rep, nil
}

// finishEconomics fills the throughput comparison under the accumulated
// retest/fallback load.
func (r *LotReport) finishEconomics(cfg *core.TestConfig, pol Policy) error {
	tester, err := ate.NewSignatureTester(cfg.Board.CaptureN, cfg.Board.DigitizerFs)
	if err != nil {
		return err
	}
	r.Load.Devices = r.Devices
	cmp, err := ate.CompareTestTimeUnderLoad(ate.ConventionalSuite(), tester, pol.HandlerS, r.Load)
	if err != nil {
		return err
	}
	r.Time = cmp
	return nil
}
