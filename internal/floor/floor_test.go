package floor

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/lna"
	"repro/internal/wave"
)

// fixture is the shared engineering phase: a calibrated signature test for
// the RF2401 behavioral population, plus a gate fit on the training
// signatures. Built once — the lot tests only differ in floor policy.
type fixture struct {
	cfg   *core.TestConfig
	cal   *core.Calibration
	stim  *wave.PWL
	gate  *Gate
	model core.DeviceModel
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, 60, 0.9)
		if err != nil {
			fixErr = err
			return
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train,
			func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			fixErr = err
			return
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			fixErr = err
			return
		}
		sigs := make([][]float64, len(td))
		for i := range td {
			sigs[i] = td[i].Signature
		}
		gate, err := FitGate(sigs, GateOptions{})
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{cfg: cfg, cal: cal, stim: stim, gate: gate, model: model}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

// rf2401Limits is the datasheet window used across the lot tests.
func rf2401Pass(s lna.Specs) bool {
	return s.GainDB >= 10.0 && s.NFDB <= 4.2 && s.IIP3DBm >= -9.5
}

func (f *fixture) engine(gated bool) *Engine {
	e := &Engine{
		Cfg:      f.cfg,
		Cal:      f.cal,
		Stim:     f.stim,
		PredPass: rf2401Pass,
		TruePass: rf2401Pass,
		Policy:   DefaultPolicy(),
	}
	if gated {
		e.Gate = f.gate
	}
	return e
}

func lot200(t *testing.T, f *fixture) []*core.Device {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	lot, err := core.GeneratePopulation(rng, f.model, 200, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return lot
}

func TestFaultModelValidateAndDeterminism(t *testing.T) {
	m := DefaultFaultModel(0.14)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if p := m.TotalP(); math.Abs(p-0.14) > 1e-12 {
		t.Fatalf("total probability %g, want 0.14", p)
	}
	bad := DefaultFaultModel(1.5)
	if err := bad.Validate(); err == nil {
		t.Fatal("total probability > 1 should not validate")
	}
	bad2 := &FaultModel{P: map[FaultKind]float64{FaultContactorOpen: -0.1}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative probability should not validate")
	}

	// The drawn fault sequence must reproduce exactly under a fixed seed.
	a := rand.New(rand.NewSource(5))
	b := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		ka, _ := m.Draw(a, 1e-5)
		kb, _ := m.Draw(b, 1e-5)
		if ka != kb {
			t.Fatalf("draw %d: %v vs %v under the same seed", i, ka, kb)
		}
	}
}

// TestFaultsActOnSignalPath forces each fault kind in turn and checks the
// acquired signature moves measurably away from the clean capture — i.e.
// the hooks really act inside the rf chain, not as a no-op.
func TestFaultsActOnSignalPath(t *testing.T) {
	f := getFixture(t)
	dut := lna.RF2401Typical().Behavioral()
	clean, err := f.cfg.Acquire(dut, f.stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	}
	for _, kind := range FaultKinds() {
		m := &FaultModel{P: map[FaultKind]float64{kind: 1}}
		rng := rand.New(rand.NewSource(3))
		k, flt := m.Draw(rng, f.cfg.StimulusDuration())
		if k != kind {
			t.Fatalf("forced model drew %v, want %v", k, kind)
		}
		if flt == nil {
			t.Fatalf("%v: nil insertion faults", kind)
		}
		faulted, err := f.cfg.AcquireWithFaults(dut, f.stim, nil, flt)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		diff := make([]float64, len(clean))
		for i := range clean {
			diff[i] = clean[i] - faulted[i]
		}
		if rel := norm(diff) / norm(clean); rel < 1e-4 {
			t.Errorf("%v: faulted signature within %.2g of clean — fault not reaching the signal path", kind, rel)
		}
	}
}

func TestGateClassifiesCleanAndFaulted(t *testing.T) {
	f := getFixture(t)
	rng := rand.New(rand.NewSource(77))
	pop, err := core.GeneratePopulation(rng, f.model, 30, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cleanOK := 0
	for _, d := range pop {
		sig, err := f.cfg.Acquire(d.Behavioral, f.stim, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := f.gate.Classify(sig); v == VerdictClean {
			cleanOK++
		}
	}
	if cleanOK < 27 {
		t.Fatalf("gate passed only %d/30 clean captures", cleanOK)
	}

	// A contactor-open capture is pure noise and must gate INVALID.
	open := &FaultModel{P: map[FaultKind]float64{FaultContactorOpen: 1}}
	for i := 0; i < 5; i++ {
		_, flt := open.Draw(rng, f.cfg.StimulusDuration())
		sig, err := f.cfg.AcquireWithFaults(pop[i].Behavioral, f.stim, rng, flt)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := f.gate.Classify(sig); v != VerdictInvalid {
			t.Fatalf("contactor-open capture classified %v, want INVALID", v)
		}
	}
}

// TestGatedBeatsUngated is the acceptance criterion: on a seeded
// 200-device lot with faults injected above 5% per insertion, the
// gated+retest flow mis-bins strictly fewer devices than the ungated
// flow, and neither flow drops a single device.
func TestGatedBeatsUngated(t *testing.T) {
	f := getFixture(t)
	lot := lot200(t, f)
	faults := DefaultFaultModel(0.14) // 2% per kind, 14% per insertion
	if faults.TotalP() < 0.05 {
		t.Fatalf("fault load %g below the 5%% the test claims", faults.TotalP())
	}

	ungated, err := f.engine(false).RunLot(99, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := f.engine(true).RunLot(99, lot, faults)
	if err != nil {
		t.Fatal(err)
	}

	for _, rep := range []*LotReport{ungated, gated} {
		if rep.Binned() != len(lot) {
			t.Fatalf("devices dropped: %d binned of %d", rep.Binned(), len(lot))
		}
		if rep.Pass+rep.Fail+rep.Fallback != rep.Devices {
			t.Fatalf("bins don't partition the lot: %d+%d+%d != %d",
				rep.Pass, rep.Fail, rep.Fallback, rep.Devices)
		}
		if len(rep.Results) != len(lot) {
			t.Fatalf("missing per-device results: %d of %d", len(rep.Results), len(lot))
		}
	}
	if ungated.Fallback != 0 {
		// The ungated flow has no gate, so nothing routes to fallback
		// unless an acquisition error occurred.
		if ungated.AcqErrors == 0 {
			t.Fatalf("ungated flow sent %d devices to fallback without errors", ungated.Fallback)
		}
	}
	t.Logf("ungated: %d mis-bins (escapes %d, overkill %d); gated: %d mis-bins (escapes %d, overkill %d), %d fallback",
		ungated.MisBins(), ungated.Escapes, ungated.Overkill,
		gated.MisBins(), gated.Escapes, gated.Overkill, gated.Fallback)
	if gated.MisBins() >= ungated.MisBins() {
		t.Fatalf("gated flow mis-binned %d (escapes %d overkill %d), ungated %d (escapes %d overkill %d): gating must strictly help",
			gated.MisBins(), gated.Escapes, gated.Overkill,
			ungated.MisBins(), ungated.Escapes, ungated.Overkill)
	}

	// Determinism: the same seed reproduces the lot report exactly.
	again, err := f.engine(true).RunLot(99, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	if again.Pass != gated.Pass || again.Fail != gated.Fail || again.Fallback != gated.Fallback ||
		again.MisBins() != gated.MisBins() || again.Load.Insertions != gated.Load.Insertions {
		t.Fatalf("seeded rerun diverged: %+v vs %+v", again.Load, gated.Load)
	}
}

func TestRetestAccountingAndEconomics(t *testing.T) {
	f := getFixture(t)
	lot := lot200(t, f)[:60]
	faults := DefaultFaultModel(0.25)
	rep, err := f.engine(true).RunLot(4, lot, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.Insertions < rep.Devices {
		t.Fatalf("%d insertions for %d devices", rep.Load.Insertions, rep.Devices)
	}
	retested := 0
	for k, n := range rep.RetestHist {
		if k > 0 {
			retested += n
		}
	}
	if retested == 0 {
		t.Fatal("25% fault load produced no retests")
	}
	if rep.Load.ExtraSettleS <= 0 {
		t.Fatal("retests must accrue backoff settle time")
	}
	// The loaded flow must be charged more time than a clean lot would be.
	clean, err := f.engine(true).RunLot(4, lot, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time.SignatureS <= clean.Time.SignatureS {
		t.Fatalf("fault load not charged: %.4fs loaded vs %.4fs clean",
			rep.Time.SignatureS, clean.Time.SignatureS)
	}
	if rep.Time.ThroughputSignature >= clean.Time.ThroughputSignature {
		t.Fatal("throughput should drop under fault load")
	}
	if s := rep.String(); len(s) == 0 {
		t.Fatal("empty report rendering")
	}
}

func TestEngineInputValidation(t *testing.T) {
	f := getFixture(t)
	e := f.engine(true)
	if _, err := e.RunLot(1, nil, nil); err == nil {
		t.Fatal("empty lot must error")
	}
	bad := &Engine{}
	if _, err := bad.RunLot(1, lot200(t, f)[:1], nil); err == nil {
		t.Fatal("unconfigured engine must error")
	}
	overP := &FaultModel{P: map[FaultKind]float64{FaultBurstNoise: 2}}
	if _, err := e.RunLot(1, lot200(t, f)[:1], overP); err == nil {
		t.Fatal("invalid fault model must error")
	}
}

// TestConcurrentLots runs two lots through engines sharing the same
// calibration, gate and config from separate goroutines — the fault
// injector and retest loop must be race-clean (run with -race).
func TestConcurrentLots(t *testing.T) {
	f := getFixture(t)
	lot := lot200(t, f)[:30]
	faults := DefaultFaultModel(0.2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = f.engine(true).RunLot(int64(i+1), lot, faults)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGateFitErrors(t *testing.T) {
	if _, err := FitGate(nil, GateOptions{}); err == nil {
		t.Fatal("no signatures must error")
	}
	sigs := make([][]float64, 10)
	for i := range sigs {
		sigs[i] = make([]float64, 8)
		sigs[i][0] = float64(i)
	}
	sigs[3] = make([]float64, 5)
	if _, err := FitGate(sigs, GateOptions{}); err == nil {
		t.Fatal("ragged signatures must error")
	}
}
