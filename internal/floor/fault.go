// Package floor is a fault-tolerant production test-floor engine wrapped
// around the signature-test runtime (internal/core) and the load-board
// acquisition path (internal/rf). The paper's throughput and cost claims
// assume every capture is clean; a real insertion sees contactor faults,
// digitizer clipping, LO drift and dropped samples. This package makes the
// flow production-credible in four steps:
//
//  1. a seeded FaultModel injects per-insertion faults into the signal
//     path (rf.InsertionFaults), so a bad insertion corrupts the capture
//     the way the physical mechanism would;
//  2. a Gate fit on the training-set signatures classifies each capture
//     CLEAN / SUSPECT / INVALID before any spec is predicted;
//  3. a bounded retest Policy re-inserts gated-out devices with
//     exponential settle backoff, with the time charged to the economics
//     via ate.RetestLoad;
//  4. devices still unresolved after the retest budget fall back to the
//     conventional spec test instead of being mis-binned, and the engine
//     emits a structured LotReport.
package floor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rf"
)

// FaultKind labels the physical fault mechanisms the model can inject.
type FaultKind int

const (
	// FaultNone is a clean insertion.
	FaultNone FaultKind = iota
	// FaultContactorOpen is a fully open contactor: the DUT output never
	// reaches the downconverter.
	FaultContactorOpen
	// FaultContactorResistive is an intermittent resistive contact: the
	// path gain flickers between clean and a series loss.
	FaultContactorResistive
	// FaultDigitizerSaturation is a mis-ranged digitizer clipping the
	// capture well inside the signal swing.
	FaultDigitizerSaturation
	// FaultSampleDropout is a block of digitizer samples lost in transfer.
	FaultSampleDropout
	// FaultLODrift is downconversion-LO amplitude/phase drift.
	FaultLODrift
	// FaultStimGlitch is a stimulus DAC glitch riding on the PWL waveform.
	FaultStimGlitch
	// FaultBurstNoise is an additive noise burst over part of the capture.
	FaultBurstNoise

	numFaultKinds
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "clean"
	case FaultContactorOpen:
		return "contactor-open"
	case FaultContactorResistive:
		return "contactor-resistive"
	case FaultDigitizerSaturation:
		return "digitizer-saturation"
	case FaultSampleDropout:
		return "sample-dropout"
	case FaultLODrift:
		return "lo-drift"
	case FaultStimGlitch:
		return "stim-glitch"
	case FaultBurstNoise:
		return "burst-noise"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultKinds lists the injectable kinds (excluding FaultNone) in the order
// the model rolls them.
func FaultKinds() []FaultKind {
	out := make([]FaultKind, 0, numFaultKinds-1)
	for k := FaultContactorOpen; k < numFaultKinds; k++ {
		out = append(out, k)
	}
	return out
}

// FaultModel draws at most one fault per insertion, each kind with its own
// probability; the severity parameters control how hard a drawn fault hits
// the capture. All randomness flows through the *rand.Rand passed to Draw,
// so a fixed seed reproduces the exact fault sequence.
type FaultModel struct {
	// Per-insertion probability of each kind. Their sum is the total
	// per-insertion fault probability and must stay <= 1.
	P map[FaultKind]float64

	// ResistiveLossDB is the series loss of a resistive contact (default 8).
	ResistiveLossDB float64
	// FlickerHz is the intermittent-contact flicker rate relative to the
	// capture window: cycles over the capture (default 3).
	FlickerCycles float64
	// SaturationFrac clips the capture at this fraction of its own peak
	// (default 0.35).
	SaturationFrac float64
	// DropoutFrac zeroes this fraction of the capture (default 0.15).
	DropoutFrac float64
	// LOAmpSigma is the relative LO amplitude drift sigma (default 0.15).
	LOAmpSigma float64
	// LOPhaseSigma is the LO phase drift sigma in radians (default 0.4).
	LOPhaseSigma float64
	// GlitchAmpV is the stimulus DAC glitch amplitude (default 0.1 V).
	GlitchAmpV float64
	// GlitchFrac is the glitch width as a fraction of the window (default 0.1).
	GlitchFrac float64
	// BurstSigmaV is the burst-noise sigma (default 0.05 V).
	BurstSigmaV float64
	// BurstFrac is the burst length as a fraction of the capture (default 0.25).
	BurstFrac float64
}

// DefaultFaultModel spreads a total per-insertion fault probability
// pTotal uniformly across every fault kind, with default severities.
func DefaultFaultModel(pTotal float64) *FaultModel {
	kinds := FaultKinds()
	p := make(map[FaultKind]float64, len(kinds))
	for _, k := range kinds {
		p[k] = pTotal / float64(len(kinds))
	}
	return &FaultModel{P: p}
}

// Validate checks the probability table.
func (m *FaultModel) Validate() error {
	for k, p := range m.P {
		if k <= FaultNone || k >= numFaultKinds {
			return fmt.Errorf("floor: probability assigned to invalid fault kind %d", int(k))
		}
		if p < 0 || p > 1 {
			return fmt.Errorf("floor: fault probability %g for %s outside [0,1]", p, k)
		}
	}
	if total := m.TotalP(); total > 1 {
		return fmt.Errorf("floor: total fault probability %g exceeds 1", total)
	}
	return nil
}

// TotalP returns the per-insertion probability of any fault. The sum runs
// in FaultKinds() order, not map order: the total identifies the lot in
// the crash-recovery journal and the distributed-floor handshake, so two
// processes summing the same table must get the bit-identical float.
func (m *FaultModel) TotalP() float64 {
	total := 0.0
	for _, k := range FaultKinds() {
		total += m.P[k]
	}
	return total
}

func (m *FaultModel) resistiveLossDB() float64 { return defaultIf(m.ResistiveLossDB, 8) }
func (m *FaultModel) flickerCycles() float64   { return defaultIf(m.FlickerCycles, 3) }
func (m *FaultModel) saturationFrac() float64  { return defaultIf(m.SaturationFrac, 0.35) }
func (m *FaultModel) dropoutFrac() float64     { return defaultIf(m.DropoutFrac, 0.15) }
func (m *FaultModel) loAmpSigma() float64      { return defaultIf(m.LOAmpSigma, 0.15) }
func (m *FaultModel) loPhaseSigma() float64    { return defaultIf(m.LOPhaseSigma, 0.4) }
func (m *FaultModel) glitchAmpV() float64      { return defaultIf(m.GlitchAmpV, 0.1) }
func (m *FaultModel) glitchFrac() float64      { return defaultIf(m.GlitchFrac, 0.1) }
func (m *FaultModel) burstSigmaV() float64     { return defaultIf(m.BurstSigmaV, 0.05) }
func (m *FaultModel) burstFrac() float64       { return defaultIf(m.BurstFrac, 0.25) }

func defaultIf(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

// Draw rolls the per-insertion fault for one insertion. windowS is the
// stimulus/capture window in seconds (used to place time-domain faults).
// It returns the drawn kind and the signal-path hooks to hand to the
// acquisition; FaultNone comes with a nil hook set.
func (m *FaultModel) Draw(rng *rand.Rand, windowS float64) (FaultKind, *rf.InsertionFaults) {
	u := rng.Float64()
	cum := 0.0
	for _, k := range FaultKinds() {
		cum += m.P[k]
		if u < cum {
			return k, m.build(k, rng, windowS)
		}
	}
	return FaultNone, nil
}

// build materializes the signal-path hooks for one drawn fault.
func (m *FaultModel) build(k FaultKind, rng *rand.Rand, windowS float64) *rf.InsertionFaults {
	switch k {
	case FaultContactorOpen:
		return &rf.InsertionFaults{ContactGain: func(float64) float64 { return 0 }}
	case FaultContactorResistive:
		loss := math.Pow(10, -m.resistiveLossDB()/20)
		freq := m.flickerCycles() / math.Max(windowS, 1e-12)
		phase := 2 * math.Pi * rng.Float64()
		return &rf.InsertionFaults{ContactGain: func(t float64) float64 {
			if math.Sin(2*math.Pi*freq*t+phase) > 0 {
				return loss
			}
			return 1
		}}
	case FaultDigitizerSaturation:
		frac := m.saturationFrac()
		return &rf.InsertionFaults{CaptureTransform: func(x []float64) []float64 {
			peak := 0.0
			for _, v := range x {
				if a := math.Abs(v); a > peak {
					peak = a
				}
			}
			clip := frac * peak
			out := make([]float64, len(x))
			for i, v := range x {
				out[i] = math.Max(-clip, math.Min(clip, v))
			}
			return out
		}}
	case FaultSampleDropout:
		frac := m.dropoutFrac()
		start := rng.Float64() * (1 - frac)
		return &rf.InsertionFaults{CaptureTransform: func(x []float64) []float64 {
			out := append([]float64(nil), x...)
			lo := int(start * float64(len(x)))
			hi := lo + int(frac*float64(len(x)))
			for i := lo; i < hi && i < len(out); i++ {
				out[i] = 0
			}
			return out
		}}
	case FaultLODrift:
		amp := 1 + m.loAmpSigma()*rng.NormFloat64()
		if amp < 0.1 {
			amp = 0.1
		}
		return &rf.InsertionFaults{
			LOAmpScale: amp,
			LOPhaseRad: m.loPhaseSigma() * rng.NormFloat64(),
		}
	case FaultStimGlitch:
		ampV := m.glitchAmpV()
		if rng.Float64() < 0.5 {
			ampV = -ampV
		}
		width := m.glitchFrac() * windowS
		t0 := rng.Float64() * (windowS - width)
		return &rf.InsertionFaults{StimTransform: func(s rf.StimFunc) rf.StimFunc {
			return func(t float64) float64 {
				v := s(t)
				if t >= t0 && t < t0+width {
					v += ampV
				}
				return v
			}
		}}
	case FaultBurstNoise:
		sigma := m.burstSigmaV()
		frac := m.burstFrac()
		start := rng.Float64() * (1 - frac)
		// The noise samples draw from rng when the capture transform runs;
		// the engine acquires strictly sequentially, so the stream stays
		// deterministic under a fixed seed.
		return &rf.InsertionFaults{CaptureTransform: func(x []float64) []float64 {
			out := append([]float64(nil), x...)
			lo := int(start * float64(len(x)))
			hi := lo + int(frac*float64(len(x)))
			for i := lo; i < hi && i < len(out); i++ {
				out[i] += sigma * rng.NormFloat64()
			}
			return out
		}}
	default:
		return nil
	}
}
