package floor

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func synthSignatures(n, m int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([][]float64, n)
	for i := range sigs {
		s := make([]float64, m)
		for j := range s {
			s[j] = float64(j)*0.1 + rng.NormFloat64()
		}
		sigs[i] = s
	}
	return sigs
}

// TestGateJSONRoundTrip: a gate rebuilt from its artifact form must
// classify and measure distances bit-identically — otherwise a lot pinned
// to a persisted calibration version could bin differently after a
// restart.
func TestGateJSONRoundTrip(t *testing.T) {
	sigs := synthSignatures(24, 10, 3)
	g, err := FitGate(sigs, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Gate
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Components() != g.Components() {
		t.Fatalf("components: got %d want %d", back.Components(), g.Components())
	}
	probes := append(sigs, synthSignatures(16, 10, 99)...)
	for i, s := range probes {
		d1, r1 := g.Distance(s)
		d2, r2 := back.Distance(s)
		if d1 != d2 || r1 != r2 {
			t.Fatalf("probe %d: distance (%v,%v) != (%v,%v)", i, d2, r2, d1, r1)
		}
		v1, dc1 := g.Classify(s)
		v2, dc2 := back.Classify(s)
		if v1 != v2 || dc1 != dc2 {
			t.Fatalf("probe %d: classification changed after round-trip", i)
		}
	}
}

// TestGateUnmarshalRejectsGarbage: a scribbled artifact must be refused,
// not half-applied.
func TestGateUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{}`,
		`{"basis":{"Rows":0,"Cols":0}}`,
		`{"mean":[1,2],"sigma":[1],"basis":{"Rows":2,"Cols":1,"Data":[1,0]},"comp_sigma":[1],"res_sigma":1}`,
		`{"mean":[1,2],"sigma":[1,1],"basis":{"Rows":2,"Cols":1,"Data":[1,0]},"comp_sigma":[1],"res_sigma":0}`,
	} {
		var g Gate
		if err := json.Unmarshal([]byte(bad), &g); err == nil {
			t.Fatalf("unmarshal %q succeeded, want error", bad)
		}
	}
}
