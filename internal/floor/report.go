package floor

import (
	"fmt"
	"strings"

	"repro/internal/ate"
)

// LotReport is the structured outcome of one lot on the fault-tolerant
// floor: binning, mis-bin scoring against the conventional verdicts,
// per-fault-type counts, the retest histogram, gate statistics, and the
// throughput comparison charged for retests and fallbacks.
type LotReport struct {
	Devices int

	// Binning. Pass+Fail+Fallback == Devices, always.
	Pass, Fail, Fallback int
	// FallbackPass/FallbackFail split the fallback bin by the conventional
	// test's verdict (the fallback path measures the truth).
	FallbackPass, FallbackFail int

	// Mis-bins among signature-binned devices, scored against TruePass.
	Escapes  int // shipped but truly failing
	Overkill int // rejected but truly passing
	// TrueYield is the lot's conventional yield.
	TrueYield int

	// Fault and gate accounting.
	FaultCounts map[FaultKind]int
	GateCounts  map[Verdict]int
	AcqErrors   int
	// SupervisionErrs counts devices routed to fallback by the supervisor
	// (recovered panics, missed per-device deadlines) rather than by the
	// gate's retest budget.
	SupervisionErrs int
	// RetestHist[k] counts devices that needed k+1 insertions.
	RetestHist []int

	// JournalDegraded marks a lot that lost its crash-safe journal to a
	// persistent storage fault and finished in degraded journal-less
	// mode: bins are complete and deterministic, but this lot cannot be
	// crash-resumed. JournalErr carries the final journal error.
	JournalDegraded bool
	JournalErr      string

	// Economics.
	Load ate.RetestLoad
	Time ate.TimeComparison

	Results []DeviceResult
}

func newLotReport(devices, maxAttempts int) *LotReport {
	return &LotReport{
		Devices:     devices,
		FaultCounts: make(map[FaultKind]int),
		GateCounts:  make(map[Verdict]int),
		RetestHist:  make([]int, maxAttempts),
	}
}

// Fold accumulates one DeviceResult into the report: insertion and settle
// load, fault and gate counts, retest histogram, binning and mis-bin
// scoring. The result is self-contained, so folding a set of results in
// index order yields the same report no matter which worker produced each
// one or in what order they completed. Call Finish (on the engine) after
// the last Fold to close the economics.
func (r *LotReport) Fold(res DeviceResult) {
	r.Load.Insertions += res.Insertions
	r.Load.ExtraSettleS += res.ExtraSettleS
	for _, k := range res.Faults {
		r.FaultCounts[k]++
	}
	// Acquisition-error attempts record a VerdictInvalid placeholder in
	// res.Verdicts but are accounted separately from gate verdicts.
	for _, v := range res.Verdicts {
		r.GateCounts[v]++
	}
	r.GateCounts[VerdictInvalid] -= res.AcqErrors
	r.AcqErrors += res.AcqErrors
	if res.Insertions > 0 {
		k := res.Insertions - 1
		for k >= len(r.RetestHist) {
			r.RetestHist = append(r.RetestHist, 0)
		}
		r.RetestHist[k]++
	}
	if res.Bin == BinFallback {
		r.Load.FallbackDevices++
	}
	if res.Err != "" {
		r.SupervisionErrs++
	}
	r.tally(res)
	r.Results = append(r.Results, res)
}

// tally folds one device outcome into the lot counters.
func (r *LotReport) tally(res DeviceResult) {
	if res.TruePass {
		r.TrueYield++
	}
	switch res.Bin {
	case BinPass:
		r.Pass++
		if !res.TruePass {
			r.Escapes++
		}
	case BinFail:
		r.Fail++
		if res.TruePass {
			r.Overkill++
		}
	case BinFallback:
		r.Fallback++
		if res.TruePass {
			r.FallbackPass++
		} else {
			r.FallbackFail++
		}
	}
}

// MisBins returns escapes + overkill — the headline robustness metric.
func (r *LotReport) MisBins() int { return r.Escapes + r.Overkill }

// Binned returns how many devices landed in any bin; always Devices.
func (r *LotReport) Binned() int { return r.Pass + r.Fail + r.Fallback }

// String renders the report as a floor summary table.
func (r *LotReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lot: %d devices, %d insertions (%.2f per device), conventional yield %d\n",
		r.Devices, r.Load.Insertions, float64(r.Load.Insertions)/float64(r.Devices), r.TrueYield)
	fmt.Fprintf(&b, "bins: pass %d, fail %d, fallback-to-spec-test %d (of which %d pass / %d fail on the ATE)\n",
		r.Pass, r.Fail, r.Fallback, r.FallbackPass, r.FallbackFail)
	fmt.Fprintf(&b, "mis-bins: %d escapes + %d overkill = %d\n", r.Escapes, r.Overkill, r.MisBins())
	if len(r.FaultCounts) > 0 {
		fmt.Fprintf(&b, "faults injected:")
		for _, k := range FaultKinds() {
			if n := r.FaultCounts[k]; n > 0 {
				fmt.Fprintf(&b, " %s=%d", k, n)
			}
		}
		if n := r.FaultCounts[FaultNone]; n > 0 {
			fmt.Fprintf(&b, " (clean=%d)", n)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "gate: clean %d, suspect %d, invalid %d, acquisition errors %d\n",
		r.GateCounts[VerdictClean], r.GateCounts[VerdictSuspect], r.GateCounts[VerdictInvalid], r.AcqErrors)
	if r.SupervisionErrs > 0 {
		fmt.Fprintf(&b, "supervision: %d devices recovered to fallback (panic/deadline)\n", r.SupervisionErrs)
	}
	if r.JournalDegraded {
		fmt.Fprintf(&b, "WARNING: journal degraded — lot ran journal-less, resume disabled (%s)\n", r.JournalErr)
	}
	fmt.Fprintf(&b, "retest histogram (insertions -> devices):")
	for k, n := range r.RetestHist {
		fmt.Fprintf(&b, " %d->%d", k+1, n)
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "effective insertion: %.1f ms signature vs %.0f ms conventional (%.1fx, %.0f vs %.0f devices/hour)\n",
		r.Time.SignatureS*1e3, r.Time.ConventionalS*1e3, r.Time.Speedup,
		r.Time.ThroughputSignature, r.Time.ThroughputConventional)
	return b.String()
}
