package floor

import (
	"testing"
)

// TestFingerprintDiscriminates: the engine fingerprint must be stable for
// an identical rebuild (it is what lets a coordinator pair with a remote
// site) and must change whenever any screening-relevant knob changes (it
// is what makes the pairing refusal meaningful).
func TestFingerprintDiscriminates(t *testing.T) {
	f := getFixture(t)

	base := f.engine(true)
	if got, again := base.Fingerprint(), f.engine(true).Fingerprint(); got != again {
		t.Fatalf("identical engines fingerprint differently: %x vs %x", got, again)
	}

	mutations := map[string]func(*Engine){
		"retest policy": func(e *Engine) { e.Policy.MaxRetests += 3 },
		"handler time":  func(e *Engine) { e.Policy.HandlerS += 0.01 },
		"gate threshold": func(e *Engine) {
			g := *e.Gate
			g.SuspectD *= 1.01
			e.Gate = &g
		},
		"gate baseline": func(e *Engine) {
			g := *e.Gate
			g.TrainMeanD += 1e-6
			e.Gate = &g
		},
		"ungated": func(e *Engine) { e.Gate = nil },
	}
	seen := map[uint64]string{base.Fingerprint(): "base"}
	for name, mutate := range mutations {
		e := f.engine(true)
		mutate(e)
		fp := e.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%q collides with %q: %x", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestTotalPDeterministic: TotalP sums a map — the sum must not depend on
// Go's randomized map iteration order, because it is pinned in journal
// headers and the distributed Hello handshake, where the last float bit
// decides whether a resume or a site pairing is refused.
func TestTotalPDeterministic(t *testing.T) {
	m := &FaultModel{P: map[FaultKind]float64{
		FaultContactorOpen:       0.1,
		FaultBurstNoise:          0.2,
		FaultLODrift:             0.3,
		FaultSampleDropout:       0.07,
		FaultContactorResistive:  1e-17, // order-sensitive: vanishes unless added first
		FaultDigitizerSaturation: 0.013,
	}}
	want := m.TotalP()
	for i := 0; i < 200; i++ {
		if got := m.TotalP(); got != want {
			t.Fatalf("iteration %d: TotalP %x differs from %x — map-order dependent sum", i, got, want)
		}
	}
}
