package floor

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/stat"
)

// Verdict is the gate's classification of one captured signature.
type Verdict int

const (
	// VerdictClean means the capture sits inside the training envelope and
	// the reduced-space distance band: hand it to the regression.
	VerdictClean Verdict = iota
	// VerdictSuspect means the capture is marginally outside the training
	// statistics: retest before trusting a prediction.
	VerdictSuspect
	// VerdictInvalid means the capture cannot have come from a healthy
	// insertion (envelope blown or far outside the signature manifold).
	VerdictInvalid
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "CLEAN"
	case VerdictSuspect:
		return "SUSPECT"
	case VerdictInvalid:
		return "INVALID"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// GateOptions tunes the sanity gate.
type GateOptions struct {
	// MaxComponents caps the reduced space dimension (default 12).
	MaxComponents int
	// EnvelopeZ is the per-bin outlier threshold in training sigmas
	// (default 8 — the per-bin spread across training devices includes
	// process variation, so healthy captures stay well inside it).
	EnvelopeZ float64
	// MaxOutlierFrac is the fraction of envelope-outlier bins beyond which
	// a capture is INVALID outright (default 0.25).
	MaxOutlierFrac float64
	// SuspectMargin and InvalidMargin scale the worst training distance
	// into the SUSPECT and INVALID thresholds (defaults 1.5 and 4).
	SuspectMargin float64
	InvalidMargin float64
}

func (o *GateOptions) defaults() {
	if o.MaxComponents <= 0 {
		o.MaxComponents = 12
	}
	if o.EnvelopeZ <= 0 {
		o.EnvelopeZ = 8
	}
	if o.MaxOutlierFrac <= 0 {
		o.MaxOutlierFrac = 0.25
	}
	if o.SuspectMargin <= 0 {
		o.SuspectMargin = 1.5
	}
	if o.InvalidMargin <= 0 {
		o.InvalidMargin = 4
	}
}

// Gate is the signature sanity gate: a per-bin mean/sigma envelope plus a
// Mahalanobis-style distance in the SVD-reduced space of the training
// signatures. Both views are fit once on the calibration training set —
// the same signatures the regression was trained on — so anything the
// gate flags is by construction outside the region where the regression
// was ever validated.
type Gate struct {
	Mean  []float64 // per-bin training mean
	Sigma []float64 // per-bin training sigma (floored)

	basis     *linalg.Matrix // m x p, columns are principal directions
	compSigma []float64      // per-component training sigma
	resSigma  float64        // training residual RMS (floored)

	// Thresholds calibrated from the training distances.
	SuspectD, InvalidD     float64
	SuspectRes, InvalidRes float64

	// TrainMeanD and TrainSigmaD are the mean and standard deviation of
	// the training set's own reduced-space distances — the baseline the
	// drift watchdog standardizes production distances against.
	TrainMeanD, TrainSigmaD float64

	opt GateOptions
}

// FitGate fits the gate on the training-set signatures.
func FitGate(signatures [][]float64, opt GateOptions) (*Gate, error) {
	opt.defaults()
	n := len(signatures)
	if n < 8 {
		return nil, fmt.Errorf("floor: need >= 8 training signatures to fit a gate, got %d", n)
	}
	m := len(signatures[0])
	X := linalg.NewMatrix(n, m)
	for i, s := range signatures {
		if len(s) != m {
			return nil, fmt.Errorf("floor: training signature %d has length %d, want %d", i, len(s), m)
		}
		X.SetRow(i, s)
	}

	g := &Gate{opt: opt, Mean: make([]float64, m), Sigma: make([]float64, m)}
	sigmaFloor := 0.0
	for j := 0; j < m; j++ {
		col := X.Col(j)
		g.Mean[j] = stat.Mean(col)
		g.Sigma[j] = stat.StdDev(col)
		sigmaFloor += g.Sigma[j]
	}
	// Floor degenerate bins at a fraction of the average spread so a
	// constant training bin cannot turn every capture into an outlier.
	sigmaFloor = math.Max(sigmaFloor/float64(m)*1e-3, 1e-15)
	for j := range g.Sigma {
		if g.Sigma[j] < sigmaFloor {
			g.Sigma[j] = sigmaFloor
		}
	}

	centered := linalg.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			centered.Set(i, j, X.At(i, j)-g.Mean[j])
		}
	}
	svd := linalg.ComputeSVD(centered)
	p := 0
	for p < len(svd.S) && p < opt.MaxComponents && svd.S[p] > 1e-9*svd.S[0] {
		p++
	}
	if p == 0 {
		return nil, fmt.Errorf("floor: training signatures are rank-deficient, cannot fit gate")
	}
	g.basis = linalg.NewMatrix(m, p)
	g.compSigma = make([]float64, p)
	for c := 0; c < p; c++ {
		for j := 0; j < m; j++ {
			g.basis.Set(j, c, svd.V.At(j, c))
		}
		g.compSigma[c] = svd.S[c] / math.Sqrt(float64(n-1))
	}

	// Calibrate thresholds on the training set's own distances.
	dTrain := make([]float64, n)
	resTrain := make([]float64, n)
	for i := range signatures {
		dTrain[i], resTrain[i] = g.Distance(signatures[i])
	}
	g.TrainMeanD = stat.Mean(dTrain)
	g.TrainSigmaD = math.Max(stat.StdDev(dTrain), 1e-15)
	g.resSigma = math.Max(stat.RMS(resTrain), 1e-15)
	for i := range resTrain {
		resTrain[i] /= g.resSigma
	}
	dMax, resMax := maxOf(dTrain), maxOf(resTrain)
	g.SuspectD = dMax * opt.SuspectMargin
	g.InvalidD = dMax * opt.InvalidMargin
	g.SuspectRes = resMax * opt.SuspectMargin
	g.InvalidRes = resMax * opt.InvalidMargin
	return g, nil
}

func maxOf(v []float64) float64 {
	mx := 0.0
	for _, x := range v {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Components returns the reduced-space dimension.
func (g *Gate) Components() int { return g.basis.Cols }

// Distance returns the normalized Mahalanobis-style distance of sig in the
// reduced space and the out-of-subspace residual norm. Before threshold
// calibration completes the residual is raw; afterwards Classify compares
// it against resSigma-normalized thresholds.
func (g *Gate) Distance(sig []float64) (d, residual float64) {
	m := len(g.Mean)
	if len(sig) != m {
		return math.Inf(1), math.Inf(1)
	}
	dx := make([]float64, m)
	for j := range dx {
		dx[j] = sig[j] - g.Mean[j]
	}
	p := g.basis.Cols
	proj := make([]float64, m)
	sum := 0.0
	for c := 0; c < p; c++ {
		z := 0.0
		for j := 0; j < m; j++ {
			z += dx[j] * g.basis.At(j, c)
		}
		w := z / g.compSigma[c]
		sum += w * w
		for j := 0; j < m; j++ {
			proj[j] += z * g.basis.At(j, c)
		}
	}
	res := 0.0
	for j := 0; j < m; j++ {
		r := dx[j] - proj[j]
		res += r * r
	}
	return math.Sqrt(sum / float64(p)), math.Sqrt(res)
}

// EnvelopeOutliers counts signature bins outside Mean +/- EnvelopeZ*Sigma.
func (g *Gate) EnvelopeOutliers(sig []float64) int {
	if len(sig) != len(g.Mean) {
		return len(g.Mean)
	}
	out := 0
	for j := range sig {
		if math.Abs(sig[j]-g.Mean[j]) > g.opt.EnvelopeZ*g.Sigma[j] {
			out++
		}
	}
	return out
}

// Classify gates one capture before prediction. It also returns the raw
// reduced-space distance it computed on the way (the same value Distance
// returns first), so callers that record the distance of an accepted
// capture — the drift watchdog's observable — don't pay for a second
// projection.
func (g *Gate) Classify(sig []float64) (Verdict, float64) {
	outliers := g.EnvelopeOutliers(sig)
	d, res := g.Distance(sig)
	res /= g.resSigma
	frac := float64(outliers) / float64(len(g.Mean))
	switch {
	case frac > g.opt.MaxOutlierFrac || d > g.InvalidD || res > g.InvalidRes:
		return VerdictInvalid, d
	case outliers > 0 || d > g.SuspectD || res > g.SuspectRes:
		return VerdictSuspect, d
	default:
		return VerdictClean, d
	}
}

// gateState is the serialized form of a Gate: every field that Classify,
// Distance, and the engine fingerprint depend on, exported for JSON. The
// float64 values round-trip exactly (encoding/json emits the shortest
// representation that parses back to the same bits), so a decoded gate
// classifies bit-identically to the original.
type gateState struct {
	Mean       []float64      `json:"mean"`
	Sigma      []float64      `json:"sigma"`
	Basis      *linalg.Matrix `json:"basis"`
	CompSigma  []float64      `json:"comp_sigma"`
	ResSigma   float64        `json:"res_sigma"`
	SuspectD   float64        `json:"suspect_d"`
	InvalidD   float64        `json:"invalid_d"`
	SuspectRes float64        `json:"suspect_res"`
	InvalidRes float64        `json:"invalid_res"`
	TrainMeanD float64        `json:"train_mean_d"`
	TrainSigD  float64        `json:"train_sigma_d"`
	Opt        GateOptions    `json:"opt"`
}

// MarshalJSON serializes the gate for a calibration artifact.
func (g *Gate) MarshalJSON() ([]byte, error) {
	return json.Marshal(gateState{
		Mean: g.Mean, Sigma: g.Sigma,
		Basis: g.basis, CompSigma: g.compSigma, ResSigma: g.resSigma,
		SuspectD: g.SuspectD, InvalidD: g.InvalidD,
		SuspectRes: g.SuspectRes, InvalidRes: g.InvalidRes,
		TrainMeanD: g.TrainMeanD, TrainSigD: g.TrainSigmaD,
		Opt: g.opt,
	})
}

// UnmarshalJSON rebuilds a gate from its artifact form.
func (g *Gate) UnmarshalJSON(data []byte) error {
	var st gateState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("floor: decode gate: %w", err)
	}
	if st.Basis == nil || st.Basis.Rows == 0 || st.Basis.Cols == 0 {
		return fmt.Errorf("floor: decoded gate has no reduced-space basis")
	}
	if len(st.Mean) != st.Basis.Rows || len(st.Sigma) != st.Basis.Rows ||
		len(st.CompSigma) != st.Basis.Cols {
		return fmt.Errorf("floor: decoded gate dimensions disagree (%d bins, %dx%d basis, %d comp sigmas)",
			len(st.Mean), st.Basis.Rows, st.Basis.Cols, len(st.CompSigma))
	}
	if st.ResSigma <= 0 {
		return fmt.Errorf("floor: decoded gate residual sigma %v out of range", st.ResSigma)
	}
	*g = Gate{
		Mean: st.Mean, Sigma: st.Sigma,
		basis: st.Basis, compSigma: st.CompSigma, resSigma: st.ResSigma,
		SuspectD: st.SuspectD, InvalidD: st.InvalidD,
		SuspectRes: st.SuspectRes, InvalidRes: st.InvalidRes,
		TrainMeanD: st.TrainMeanD, TrainSigmaD: st.TrainSigD,
		opt: st.Opt,
	}
	return nil
}
