package lotserver

import (
	"context"
	"testing"
	"time"

	"repro/internal/floor"
	"repro/internal/netfloor"
)

// TestBatchedServerBitIdentical runs the multi-lot server with batching at
// every layer — batched local workers, one batch-capable remote site and
// one legacy single-device site — over a faulty transport, and requires
// every lot's report to match the serial reference bit for bit. This is
// the lotserver leg of the batched-kernel determinism contract: the fair
// scheduler hands out same-lot batches, legacy sites negotiate down to
// K=1, and the exactly-once commit gate absorbs the duplicates that
// retries and hedges produce.
func TestBatchedServerBitIdentical(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	faults := floor.DefaultFaultModel(0.10)

	specs := []LotSpec{
		{ID: "alpha", Seed: 99, Devices: 36},
		{ID: "beta", Seed: 1234, Devices: 25},
		{ID: "gamma", Seed: 42, Devices: 12},
	}
	runAll := func(t *testing.T, opt Options) {
		t.Helper()
		s, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Kill()
		handles := make([]*LotHandle, len(specs))
		for i, spec := range specs {
			h, err := s.Submit(context.Background(), spec)
			if err != nil {
				t.Fatalf("submit %s: %v", spec.ID, err)
			}
			handles[i] = h
		}
		for i, h := range handles {
			res, err := h.Wait(context.Background())
			if err != nil {
				t.Fatalf("lot %s: %v", specs[i].ID, err)
			}
			reportsEqual(t, specs[i].ID, res.Report, serialReference(t, f, pool, specs[i], faults))
		}
	}

	t.Run("local-workers", func(t *testing.T) {
		opt := serverOpts(f, pool, faults)
		opt.LocalWorkers = 2
		opt.Batch = 8
		opt.MaxActiveLots = 3
		runAll(t, opt)
	})

	t.Run("mixed-sites", func(t *testing.T) {
		fm := newFarm(t, f, pool, faults, 2)
		fm.sites["site0"].MaxBatch = 16 // site1 stays legacy: K=1
		opt := serverOpts(f, pool, faults)
		opt.Sites = fm.addrs
		opt.Dialer = fm.dialer(netfloor.FaultProfile{DropP: 0.03, DupP: 0.05, DelayP: 0.10, DelayMax: 2 * time.Millisecond}, 17)
		opt.NetSeed = 17
		opt.Batch = 16
		opt.JournalDir = t.TempDir()
		opt.MaxActiveLots = 3
		runAll(t, opt)
	})
}
