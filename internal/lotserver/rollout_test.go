package lotserver

// Acceptance tests for the versioned calibration lifecycle: stage →
// shadow (incumbent bins bit-identical to a no-shadow run) → canary
// (deterministic lot pinning) → promote, with automatic rollback on
// shadow divergence or canary drift, durable across kill-restart.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/lotrun"
	"repro/internal/modelreg"
	"repro/internal/netfloor"
)

// retrain fits a calibration on an independent training draw, optionally
// shifting the labelled specs — shift 0 is an honest retrain (close to
// the fixture calibration, different parameters), shift -40 a mangled one
// whose predictions are wrong by tens of dB.
func retrain(f *fixture, shift float64) (*core.Calibration, error) {
	rng := rand.New(rand.NewSource(31))
	train, err := core.GeneratePopulation(rng, f.model, 60, 0.9)
	if err != nil {
		return nil, err
	}
	td, err := core.AcquireTrainingSet(rng, f.cfg, f.stim, train,
		func(d *core.Device) lna.Specs { return d.Specs })
	if err != nil {
		return nil, err
	}
	for i := range td {
		td[i].Specs.GainDB += shift
		td[i].Specs.IIP3DBm += shift
	}
	return core.Calibrate(rng, f.stim, td, core.CalibrationOptions{})
}

var (
	altOnce, badOnce sync.Once
	altCal, badCal   *core.Calibration
	altErr, badErr   error
)

// altCalibration is a legitimately different but accurate candidate.
func altCalibration(t *testing.T, f *fixture) *core.Calibration {
	t.Helper()
	altOnce.Do(func() { altCal, altErr = retrain(f, 0) })
	if altErr != nil {
		t.Fatalf("alt calibration: %v", altErr)
	}
	return altCal
}

// badCalibration is a divergent candidate: shadow scoring against the
// incumbent must disagree on most bins.
func badCalibration(t *testing.T, f *fixture) *core.Calibration {
	t.Helper()
	badOnce.Do(func() { badCal, badErr = retrain(f, -40) })
	if badErr != nil {
		t.Fatalf("bad calibration: %v", badErr)
	}
	return badCal
}

// looseBounds accepts any divergence once minSamples devices are scored —
// for tests promoting an honestly-different candidate.
func looseBounds(minSamples int) modelreg.Bounds {
	return modelreg.Bounds{MinSamples: minSamples, MaxDisagreeRate: 0.75, MaxResidualEWMA: 1e9}
}

// versionReference screens the lot serially under version v's artifact
// engine — the ground truth for any lot pinned to v.
func versionReference(t *testing.T, f *fixture, reg *modelreg.Registry, v int, pool []*core.Device, spec LotSpec, faults *floor.FaultModel) *floor.LotReport {
	t.Helper()
	art, ok := reg.Get(v)
	if !ok {
		t.Fatalf("version %d not in registry", v)
	}
	eng, err := art.Engine(f.engine())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunLot(spec.Seed, pool[:spec.Devices], faults)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func runLotOn(t *testing.T, s *Server, spec LotSpec) *LotResult {
	t.Helper()
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit %s: %v", spec.ID, err)
	}
	res, err := h.Wait(context.Background())
	if err != nil {
		t.Fatalf("lot %s: %v", spec.ID, err)
	}
	return res
}

// waitShadowScored polls until the shadow scorer has seen n devices.
func waitShadowScored(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if rs := s.RolloutStatus(); rs.Shadow != nil && rs.Shadow.Scored >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("shadow never scored %d devices: %+v", n, s.RolloutStatus())
}

// waitRolloutCleared polls until the registry's rollout record is gone —
// the observable end of an automatic rollback.
func waitRolloutCleared(t *testing.T, reg *modelreg.Registry) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Rollout() == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("rollout never rolled back")
}

// pickLotID finds a lot ID whose deterministic canary pick matches want.
func pickLotID(t *testing.T, prefix string, fraction float64, want bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("%s%d", prefix, i)
		if canaryPick(id, fraction) == want {
			return id
		}
	}
	t.Fatalf("no %s lot ID with canary pick %v at fraction %g", prefix, want, fraction)
	return ""
}

// TestRolloutLifecycleBitIdentical is the headline acceptance: stage an
// honest retrain, shadow it on live traffic (incumbent bins untouched),
// promote to canary (deterministic lot pinning, versioned journals,
// remote sites fetching the artifact over the wire), then promote to
// ACTIVE — every lot bit-identical to a serial run of its pinned version.
func TestRolloutLifecycleBitIdentical(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	fm := newFarm(t, f, pool, nil, 2)
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	opt := serverOpts(f, pool, nil)
	opt.Sites = fm.addrs
	opt.Dialer = fm.dialer(netfloor.FaultProfile{}, 0)
	opt.LocalWorkers = 1
	opt.JournalDir = t.TempDir()
	opt.MaxActiveLots = 2
	opt.Registry = reg
	opt.ShadowBounds = looseBounds(8)
	opt.CanaryFraction = 0.5
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	// Before any rollout: base model, bins identical to serial.
	base := LotSpec{ID: "pre", Seed: 99, Devices: 36}
	reportsEqual(t, "pre-rollout", runLotOn(t, s, base).Report, serialReference(t, f, pool, base, nil))
	if rs := s.RolloutStatus(); !rs.Enabled || rs.Active != 0 || rs.Stage != "" {
		t.Fatalf("idle rollout status: %+v", rs)
	}

	// Stage: inert until a rollout begins; no promotion without one.
	if err := s.Promote(); !errors.Is(err, ErrNoRollout) {
		t.Fatalf("promote with no rollout: %v", err)
	}
	v, err := s.StageCandidate(altCalibration(t, f), f.gate, "independent retrain")
	if err != nil || v != 1 {
		t.Fatalf("stage: v=%d err=%v", v, err)
	}
	art, _ := reg.Get(v)
	cand, err := art.Engine(f.engine())
	if err != nil {
		t.Fatal(err)
	}
	if cand.Fingerprint() == f.engine().Fingerprint() {
		t.Fatal("candidate hashes like the base model; the lifecycle test would prove nothing")
	}

	// Shadow: candidate scored on live commits, zero promotion evidence
	// refused, incumbent bins bit-identical to a no-shadow run.
	if err := s.BeginShadow(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(); err == nil {
		t.Fatal("promotion with zero shadow evidence must be refused")
	}
	shade := LotSpec{ID: "shade", Seed: 1234, Devices: 36}
	reportsEqual(t, "shadowed incumbent", runLotOn(t, s, shade).Report, serialReference(t, f, pool, shade, nil))
	waitShadowScored(t, s, 8)
	if err := s.Promote(); err != nil {
		t.Fatalf("shadow→canary: %v", err)
	}

	// Canary: pinning is a pure function of the lot ID, and each lot's
	// bins match a serial run of its own pinned version.
	canSpec := LotSpec{ID: pickLotID(t, "cy", 0.5, true), Seed: 7, Devices: 25}
	stSpec := LotSpec{ID: pickLotID(t, "st", 0.5, false), Seed: 8, Devices: 25}
	ch, err := s.Submit(context.Background(), canSpec)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := s.Submit(context.Background(), stSpec)
	if err != nil {
		t.Fatal(err)
	}
	canRes, err := ch.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := sh.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "canary lot", canRes.Report, versionReference(t, f, reg, v, pool, canSpec, nil))
	reportsEqual(t, "stable lot", stRes.Report, serialReference(t, f, pool, stSpec, nil))
	for id, want := range map[string]int{canSpec.ID: v, stSpec.ID: 0} {
		hdr, _, _, _, err := lotrun.ReplayJournal(filepath.Join(opt.JournalDir, id+".journal"))
		if err != nil {
			t.Fatal(err)
		}
		if hdr.ModelVersion != want {
			t.Fatalf("lot %s journal pins v%d, want v%d", id, hdr.ModelVersion, want)
		}
	}

	// Promote to ACTIVE: every new lot pins the candidate.
	if err := s.Promote(); err != nil {
		t.Fatalf("canary→active: %v", err)
	}
	if reg.Active() != v {
		t.Fatalf("ACTIVE = v%d, want v%d", reg.Active(), v)
	}
	post := LotSpec{ID: "post", Seed: 42, Devices: 12}
	reportsEqual(t, "post-promotion", runLotOn(t, s, post).Report, versionReference(t, f, reg, v, pool, post, nil))
	rs := s.RolloutStatus()
	if rs.Active != v || rs.Stage != "" || rs.Candidate != 0 || rs.Rollbacks != 0 {
		t.Fatalf("post-promotion rollout status: %+v", rs)
	}
	// The remote sites fetched and screened under the candidate artifact.
	st := s.Status()
	if st.Rollout == nil || st.Rollout.Active != v {
		t.Fatalf("/statusz rollout section missing or wrong: %+v", st.Rollout)
	}
	fetched := false
	for _, site := range st.Sites {
		for _, m := range site.Models {
			if m == v {
				fetched = true
			}
		}
	}
	if !fetched {
		t.Fatalf("no site screened under v%d: %+v", v, st.Sites)
	}
}

// TestShadowDivergenceRollback: a divergent candidate in shadow is
// demoted automatically, with the divergence statistics recorded as
// evidence — and the incumbent's bins never budge.
func TestShadowDivergenceRollback(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 2
	opt.Registry = reg
	opt.ShadowBounds = modelreg.Bounds{MinSamples: 8} // tight default divergence gates
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	v, err := s.StageCandidate(badCalibration(t, f), f.gate, "mangled retrain")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginShadow(v); err != nil {
		t.Fatal(err)
	}
	spec := LotSpec{ID: "victim", Seed: 99, Devices: 36}
	res := runLotOn(t, s, spec)
	reportsEqual(t, "incumbent under diverging shadow", res.Report, serialReference(t, f, pool, spec, nil))

	waitRolloutCleared(t, reg)
	d, ok := reg.Demoted(v)
	if !ok {
		t.Fatalf("v%d was not demoted", v)
	}
	if !strings.Contains(d.Reason, "shadow divergence") {
		t.Fatalf("demotion reason %q does not name shadow divergence", d.Reason)
	}
	if d.Evidence == nil || d.Evidence.Scored < 8 || d.Evidence.Disagree == 0 {
		t.Fatalf("demotion evidence missing or empty: %+v", d.Evidence)
	}
	if rs := s.RolloutStatus(); rs.Rollbacks != 1 || rs.Stage != "" {
		t.Fatalf("post-rollback status: %+v", rs)
	}
	// A demoted version cannot be rolled out again by accident.
	if err := s.BeginShadow(v); err == nil || !strings.Contains(err.Error(), "demoted") {
		t.Fatalf("re-rollout of demoted version: %v", err)
	}
}

// TestCanaryDriftRollback: a drift alarm on a lot pinned to the canary
// candidate is direct evidence against it — automatic rollback, while the
// canary lot itself still completes bit-identically under its pinned
// version.
func TestCanaryDriftRollback(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// The candidate screens identically to the base model, but its gate's
	// watchdog baseline sits 20 sigma below production distances — every
	// lot pinned to it alarms shortly after warm-up.
	drifted := *f.gate
	drifted.TrainMeanD -= 20 * f.gate.TrainSigmaD

	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 2
	opt.Registry = reg
	opt.ShadowBounds = looseBounds(4)
	opt.CanaryFraction = 1.0
	opt.Watchdog = lotrun.WatchdogConfig{MinSamples: 5}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	v, err := s.StageCandidate(f.cal, &drifted, "drifted-baseline candidate")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginShadow(v); err != nil {
		t.Fatal(err)
	}
	warm := LotSpec{ID: "warm", Seed: 99, Devices: 36}
	reportsEqual(t, "warm-up", runLotOn(t, s, warm).Report, serialReference(t, f, pool, warm, nil))
	waitShadowScored(t, s, 4)
	if err := s.Promote(); err != nil {
		t.Fatalf("shadow→canary: %v", err)
	}

	can := LotSpec{ID: "canape", Seed: 1234, Devices: 36}
	res := runLotOn(t, s, can)
	if len(res.Alarms) == 0 {
		t.Fatal("drifted watchdog baseline raised no alarm")
	}
	reportsEqual(t, "canary lot", res.Report, versionReference(t, f, reg, v, pool, can, nil))

	waitRolloutCleared(t, reg)
	d, ok := reg.Demoted(v)
	if !ok {
		t.Fatalf("v%d was not demoted after canary drift", v)
	}
	if !strings.Contains(d.Reason, "drift alarm") || !strings.Contains(d.Reason, can.ID) {
		t.Fatalf("demotion reason %q does not name the canary drift", d.Reason)
	}
	if rs := s.RolloutStatus(); rs.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", rs.Rollbacks)
	}
}

// TestDriftStagesRecalibratedCandidate: a drift alarm on a base-model lot
// with a Recalibrate hook stages a fresh candidate into the registry —
// off the hot path, no auto-rollout, the lot completes; without a
// registry the hook is simply skipped and screening continues.
func TestDriftStagesRecalibratedCandidate(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	driftedEngine := func() *floor.Engine {
		eng := f.engine()
		g := *f.gate
		g.TrainMeanD -= 20 * f.gate.TrainSigmaD
		eng.Gate = &g
		return eng
	}

	opt := serverOpts(f, pool, nil)
	opt.Engine = driftedEngine()
	opt.LocalWorkers = 2
	opt.Registry = reg
	opt.Watchdog = lotrun.WatchdogConfig{MinSamples: 5}
	opt.Recalibrate = func(lotID string, a lotrun.DriftAlarm) (*core.Calibration, *floor.Gate, error) {
		return f.cal, f.gate, nil // "retrain": hand back the healthy model
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	res := runLotOn(t, s, LotSpec{ID: "drifty", Seed: 31, Devices: 36})
	if len(res.Alarms) == 0 {
		t.Fatal("drifted baseline raised no alarm")
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(reg.Versions()) > 0 && s.RolloutStatus().Recalibrations > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(reg.Versions()) == 0 {
		t.Fatal("drift alarm staged no candidate")
	}
	if rs := s.RolloutStatus(); rs.Recalibrations == 0 {
		t.Fatalf("recalibration counter never moved: %+v", rs)
	}
	if reg.Rollout() != nil {
		t.Fatal("recalibration must stage a candidate, never start a rollout by itself")
	}
	if _, ok := reg.Get(reg.Versions()[0]); !ok {
		t.Fatal("staged candidate unreadable")
	}

	// No registry: the hook is skipped, screening never stops.
	opt2 := serverOpts(f, pool, nil)
	opt2.Engine = driftedEngine()
	opt2.LocalWorkers = 2
	opt2.Watchdog = lotrun.WatchdogConfig{MinSamples: 5}
	opt2.Recalibrate = opt.Recalibrate
	s2, err := New(opt2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	if res := runLotOn(t, s2, LotSpec{ID: "noreg", Seed: 31, Devices: 36}); len(res.Alarms) == 0 {
		t.Fatal("no-registry drift lot raised no alarm")
	}
}

// TestRolloutKillRestartResume: kill the server mid-canary; a new server
// on the same registry and journal directories resumes the same rollout
// stage, the interrupted canary lot resumes under its journal-pinned
// version to bit-identical bins, and promotion survives a further
// restart.
func TestRolloutKillRestartResume(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	regDir := t.TempDir()
	reg1, err := modelreg.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}

	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 2
	opt.JournalDir = t.TempDir()
	opt.Registry = reg1
	opt.ShadowBounds = looseBounds(8)
	opt.CanaryFraction = 1.0
	s1, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}

	v, err := s1.StageCandidate(altCalibration(t, f), f.gate, "retrain")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.BeginShadow(v); err != nil {
		t.Fatal(err)
	}
	runLotOn(t, s1, LotSpec{ID: "warm", Seed: 77, Devices: 36})
	waitShadowScored(t, s1, 8)
	if err := s1.Promote(); err != nil {
		t.Fatal(err)
	}
	can := LotSpec{ID: "kcan", Seed: 99, Devices: 36}
	if _, err := s1.Submit(context.Background(), can); err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, s1, can.ID, 2)
	s1.Kill() // crash mid-canary: no drain, no checkpoint flush

	reg2, err := modelreg.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	opt.Registry = reg2
	s2, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rs := s2.RolloutStatus(); rs.Stage != modelreg.StageCanary || rs.Candidate != v {
		t.Fatalf("rollout did not resume: %+v", rs)
	}
	hdr, _, _, _, err := lotrun.ReplayJournal(filepath.Join(opt.JournalDir, can.ID+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ModelVersion != v {
		t.Fatalf("canary journal pins v%d, want v%d", hdr.ModelVersion, v)
	}
	res := runLotOn(t, s2, can)
	if res.Replayed == 0 {
		t.Fatal("canary lot replayed nothing after the crash")
	}
	reportsEqual(t, "resumed canary", res.Report, versionReference(t, f, reg2, v, pool, can, nil))
	if err := s2.Promote(); err != nil {
		t.Fatalf("canary→active after restart: %v", err)
	}
	s2.Kill()

	reg3, err := modelreg.Open(regDir)
	if err != nil {
		t.Fatal(err)
	}
	opt.Registry = reg3
	s3, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Kill()
	if rs := s3.RolloutStatus(); rs.Active != v || rs.Stage != "" {
		t.Fatalf("promotion did not survive restart: %+v", rs)
	}
	post := LotSpec{ID: "post", Seed: 42, Devices: 12}
	reportsEqual(t, "post-restart", runLotOn(t, s3, post).Report, versionReference(t, f, reg3, v, pool, post, nil))
}

// TestJournalUnknownModelVersionRejected: a journal pinned to a version
// the registry cannot rebuild is refused cleanly — typed, no panic — and
// the server keeps serving other lots.
func TestJournalUnknownModelVersionRejected(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 12)
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.JournalDir = t.TempDir()
	opt.Registry = reg

	spec := LotSpec{ID: "poison", Seed: 5, Devices: 12}
	jr, err := lotrun.CreateJournal(filepath.Join(opt.JournalDir, spec.ID+".journal"), lotrun.JournalHeader{
		Type: "header", Version: lotrun.JournalVersion,
		LotSeed: spec.Seed, Devices: spec.Devices,
		ModelVersion: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()

	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	if _, err := s.Submit(context.Background(), spec); !errors.Is(err, lotrun.ErrModelMismatch) {
		t.Fatalf("version-99 journal: err=%v, want lotrun.ErrModelMismatch", err)
	}
	ok := LotSpec{ID: "fine", Seed: 3, Devices: 12}
	reportsEqual(t, "bystander", runLotOn(t, s, ok).Report, serialReference(t, f, pool, ok, nil))
}

// TestRolloutWireControls: the client-protocol rollout ops — status,
// shadow, promote, demote — against a live server over TCP loopback,
// including typed refusals for premature promotion and unknown ops.
func TestRolloutWireControls(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	reg, err := modelreg.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 2
	opt.Registry = reg
	opt.ShadowBounds = looseBounds(4)
	opt.HeartbeatInterval = 50 * time.Millisecond
	opt.IdleTimeout = 10 * time.Second
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go s.ServeClients(ln)
	cli, err := Dial(ln.Addr().String(), ClientOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		IdleTimeout:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	rs, err := cli.Rollout(ctx, "status", 0, "")
	if err != nil || !rs.Enabled || rs.Active != 0 {
		t.Fatalf("status: %+v, %v", rs, err)
	}
	var rej *RejectionError
	if _, err := cli.Rollout(ctx, "bogus", 0, ""); !errors.As(err, &rej) || rej.Code != CodeBadRequest {
		t.Fatalf("unknown op: %v", err)
	}
	if _, err := cli.Rollout(ctx, "shadow", 1, ""); !errors.As(err, &rej) {
		t.Fatalf("shadow of unstaged version: %v", err)
	}

	v, err := s.StageCandidate(altCalibration(t, f), f.gate, "wire test")
	if err != nil {
		t.Fatal(err)
	}
	rs, err = cli.Rollout(ctx, "shadow", v, "")
	if err != nil || rs.Candidate != v || rs.Stage != modelreg.StageShadow {
		t.Fatalf("begin shadow: %+v, %v", rs, err)
	}
	if _, err := cli.Rollout(ctx, "promote", 0, ""); !errors.As(err, &rej) {
		t.Fatalf("premature promote: %v", err)
	}

	if _, err := cli.Run(ctx, LotSpec{ID: "wlot", Seed: 3, Devices: 36}); err != nil {
		t.Fatal(err)
	}
	waitShadowScored(t, s, 4)
	rs, err = cli.Rollout(ctx, "promote", 0, "")
	if err != nil || rs.Stage != modelreg.StageCanary {
		t.Fatalf("promote to canary: %+v, %v", rs, err)
	}
	rs, err = cli.Rollout(ctx, "demote", 0, "operator says no")
	if err != nil || rs.Stage != "" {
		t.Fatalf("demote: %+v, %v", rs, err)
	}
	d, ok := reg.Demoted(v)
	if !ok || d.Reason != "operator says no" {
		t.Fatalf("demotion record: %+v, %v", d, ok)
	}
}
