package lotserver

// The /statusz surface: a JSON snapshot of everything an operator (or a
// test) wants to know about the serving floor — active lots and their
// progress, queue depth, shed counts, per-site connection health,
// per-(lot, site) breaker states, and device-latency percentiles.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latRing is a fixed-size ring of recent device latencies (milliseconds,
// first-assignment → commit). Percentiles are computed on snapshot.
type latRing struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	count int
}

func newLatRing(n int) *latRing {
	return &latRing{buf: make([]float64, n)}
}

func (r *latRing) add(ms float64) {
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// percentiles returns p50/p95/p99 of the retained window (zeros when
// empty).
func (r *latRing) percentiles() (p50, p95, p99 float64) {
	r.mu.Lock()
	snap := make([]float64, r.count)
	if r.count < len(r.buf) {
		copy(snap, r.buf[:r.count])
	} else {
		copy(snap, r.buf)
	}
	r.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(snap)
	pick := func(p float64) float64 {
		i := int(p * float64(len(snap)-1))
		return snap[i]
	}
	return pick(0.50), pick(0.95), pick(0.99)
}

// LotStatus is one admitted lot's progress snapshot.
type LotStatus struct {
	ID        string `json:"id"`
	Seed      int64  `json:"seed"`
	Devices   int    `json:"devices"`
	Committed int    `json:"committed"`
	Replayed  int    `json:"replayed"`
	Queued    bool   `json:"queued,omitempty"`
	Alarms    int    `json:"alarms,omitempty"`
	// ModelVersion is the calibration version this lot is pinned to for
	// life (0 = the base model the server booted with).
	ModelVersion int `json:"model_version,omitempty"`
	// JournalDegraded marks a lot running in journal-less degraded mode
	// after a persistent journal failure (resume disabled); JournalErr
	// carries the typed error.
	JournalDegraded bool   `json:"journal_degraded,omitempty"`
	JournalErr      string `json:"journal_err,omitempty"`
	// Breakers maps worker name (site address or "localN") to breaker
	// state for every breaker this lot has exercised.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// SiteStatus is one remote site's connection health.
type SiteStatus struct {
	Addr       string `json:"addr"`
	Connected  bool   `json:"connected"`
	Assigns    int    `json:"assigns"`
	Retries    int    `json:"retries"`
	Reassigns  int    `json:"reassigns"`
	Reconnects int    `json:"reconnects"`
	DialFails  int    `json:"dial_fails"`
	DrainFails int    `json:"drain_fails,omitempty"`
	Abandoned  string `json:"abandoned,omitempty"`
	// Models lists every registry version this site has screened under
	// (0 = base, implicit); ModelSends counts artifact deliveries.
	Models     []int `json:"models,omitempty"`
	ModelSends int   `json:"model_sends,omitempty"`
}

// Status is the full service snapshot.
type Status struct {
	Draining      bool        `json:"draining"`
	ActiveLots    []LotStatus `json:"active_lots"`
	QueuedLots    []LotStatus `json:"queued_lots"`
	Inflight      int         `json:"inflight"`
	MaxActiveLots int         `json:"max_active_lots"`
	MaxQueuedLots int         `json:"max_queued_lots"`
	// ShedSaturated counts ErrSaturated backpressure rejections;
	// RejectedDuplicate and RejectedDraining the other admission refusals.
	ShedSaturated     int `json:"shed_saturated"`
	RejectedDuplicate int `json:"rejected_duplicate"`
	RejectedDraining  int `json:"rejected_draining"`
	LotsCompleted     int `json:"lots_completed"`
	// LotsDegraded counts lots that lost their journal to a persistent
	// storage fault and ran (or are running) in journal-less mode.
	LotsDegraded     int          `json:"lots_degraded,omitempty"`
	DevicesCommitted int          `json:"devices_committed"`
	Sites            []SiteStatus `json:"sites"`
	LocalWorkers     int          `json:"local_workers"`
	LatencyP50Ms     float64      `json:"latency_p50_ms"`
	LatencyP95Ms     float64      `json:"latency_p95_ms"`
	LatencyP99Ms     float64      `json:"latency_p99_ms"`
	UptimeS          float64      `json:"uptime_s"`
	// Rollout is the versioned-calibration lifecycle snapshot; nil when no
	// registry is configured.
	Rollout *RolloutStatus `json:"rollout,omitempty"`
}

// workerName names a worker ordinal for the breaker map.
func (s *Server) workerName(ordinal int) string {
	if ordinal < len(s.opt.Sites) {
		return s.opt.Sites[ordinal]
	}
	return "local" + strconv.Itoa(ordinal-len(s.opt.Sites))
}

func (s *Server) lotStatus(l *lot, queued bool) LotStatus {
	l.mu.Lock()
	ls := LotStatus{
		ID: l.spec.ID, Seed: l.spec.Seed, Devices: l.spec.Devices,
		Committed: l.commits + l.replayed, Replayed: l.replayed,
		Queued: queued, Alarms: len(l.alarms),
		ModelVersion:    l.modelVersion,
		JournalDegraded: l.degraded,
	}
	if l.jerr != nil {
		ls.JournalErr = l.jerr.Error()
	}
	if len(l.breakers) > 0 {
		ls.Breakers = make(map[string]string, len(l.breakers))
		for ordinal, br := range l.breakers {
			ls.Breakers[s.workerName(ordinal)] = br.State()
		}
	}
	l.mu.Unlock()
	return ls
}

// Status snapshots the service.
func (s *Server) Status() Status {
	s.mu.Lock()
	st := Status{
		Draining:          s.draining,
		MaxActiveLots:     s.opt.MaxActiveLots,
		MaxQueuedLots:     s.opt.MaxQueuedLots,
		ShedSaturated:     s.sheds,
		RejectedDuplicate: s.dupRejs,
		RejectedDraining:  s.drainRejs,
		LotsCompleted:     s.lotsDone,
		LotsDegraded:      s.lotsDeg,
		DevicesCommitted:  s.devices,
		LocalWorkers:      s.opt.LocalWorkers,
		UptimeS:           time.Since(s.start).Seconds(),
	}
	var actives []*lot
	for _, l := range s.lots {
		if l.state == lotActive {
			actives = append(actives, l)
		}
	}
	queued := append([]*lot(nil), s.queue...)
	s.mu.Unlock()

	sort.Slice(actives, func(i, j int) bool { return actives[i].spec.ID < actives[j].spec.ID })
	for _, l := range actives {
		st.ActiveLots = append(st.ActiveLots, s.lotStatus(l, false))
	}
	for _, l := range queued {
		st.QueuedLots = append(st.QueuedLots, s.lotStatus(l, true))
	}
	st.Inflight = s.sched.inflightCount()
	for _, site := range s.sites {
		site.mu.Lock()
		ss := SiteStatus{
			Addr: site.addr, Connected: site.connected,
			Assigns: site.assigns, Retries: site.retries, Reassigns: site.reassigns,
			Reconnects: site.reconnects, DialFails: site.dialFails,
			DrainFails: site.drainFails, Abandoned: site.abandoned,
			ModelSends: site.modelSends,
		}
		for v := range site.models {
			ss.Models = append(ss.Models, v)
		}
		site.mu.Unlock()
		sort.Ints(ss.Models)
		st.Sites = append(st.Sites, ss)
	}
	st.LatencyP50Ms, st.LatencyP95Ms, st.LatencyP99Ms = s.lat.percentiles()
	if s.opt.Registry != nil {
		rs := s.RolloutStatus()
		st.Rollout = &rs
	}
	return st
}

// StatusHandler serves the Status snapshot as JSON — mount it at
// /statusz.
func (s *Server) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Status())
	})
}
