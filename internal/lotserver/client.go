package lotserver

// Client is the submitting side of the client protocol: dial a lotserverd,
// Run lots (concurrently if desired), read back summaries. It is what
// `sigtest -server` uses — a thin client that never builds the rig.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/lotrun"
	"repro/internal/netfloor"
)

// Client is one connection to a lot server. Safe for concurrent Run
// calls; each lot's replies are demultiplexed by lot ID.
type Client struct {
	mc   *netfloor.MsgConn
	hb   time.Duration
	idle time.Duration

	mu      sync.Mutex
	waiters map[string]chan *clientMsg
	rseq    uint64
	readErr error
	closed  chan struct{}
	once    sync.Once
}

// ClientOptions tunes the client connection.
type ClientOptions struct {
	// HeartbeatInterval is the client's beacon period (default 1s);
	// IdleTimeout how long without hearing the server before the
	// connection is declared dead (default 10 × HeartbeatInterval).
	HeartbeatInterval time.Duration
	IdleTimeout       time.Duration
}

// Dial connects to a lot server's client listener.
func Dial(addr string, opt ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lotserver: dial %s: %w", addr, err)
	}
	return NewClient(conn, opt), nil
}

// NewClient wraps an established connection (tests use net.Pipe).
func NewClient(conn net.Conn, opt ClientOptions) *Client {
	if opt.HeartbeatInterval <= 0 {
		opt.HeartbeatInterval = time.Second
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 10 * opt.HeartbeatInterval
	}
	c := &Client{
		mc:      netfloor.NewMsgConn(conn),
		hb:      opt.HeartbeatInterval,
		idle:    opt.IdleTimeout,
		waiters: make(map[string]chan *clientMsg),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	go c.heartbeatLoop()
	return c
}

// Close drops the connection; the server cancels this client's
// still-running lots (their journals keep all progress).
func (c *Client) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.mc.Close()
}

func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.hb)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			// Budget the write with the idle window: a slow scheduler is
			// not a dead connection.
			if err := writeClientMsg(c.mc, &clientMsg{Type: "heartbeat"}, c.idle); err != nil {
				return
			}
		}
	}
}

// readLoop demultiplexes server frames to the per-lot waiters.
func (c *Client) readLoop() {
	for {
		m, err := readClientMsg(c.mc, c.idle)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.waiters {
				close(ch)
			}
			c.waiters = make(map[string]chan *clientMsg)
			c.mu.Unlock()
			c.once.Do(func() { close(c.closed) })
			return
		}
		if m.Type == "heartbeat" || m.Lot == "" {
			continue
		}
		c.mu.Lock()
		ch := c.waiters[m.Lot]
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// Rollout issues one versioned-calibration control op and returns the
// server's post-op rollout snapshot. Ops: "status" (read-only), "shadow"
// (begin a rollout of staged version), "promote" (advance shadow→canary
// or canary→ACTIVE), "demote" (roll the candidate back with reason).
func (c *Client) Rollout(ctx context.Context, op string, version int, reason string) (*RolloutStatus, error) {
	// Replies demux over the same per-lot waiter map; "!r<n>" cannot
	// collide with a real lot ID.
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	c.rseq++
	key := fmt.Sprintf("!r%d", c.rseq)
	ch := make(chan *clientMsg, 1)
	c.waiters[key] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, key)
		c.mu.Unlock()
	}()

	if err := writeClientMsg(c.mc, &clientMsg{
		Type: "rollout", Lot: key, Op: op, Version: version, Reason: reason,
	}, c.idle); err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case m, ok := <-ch:
		if !ok {
			return nil, ErrConnectionLost
		}
		if m.Code != "" {
			return nil, &RejectionError{Code: m.Code, Msg: m.Err}
		}
		return m.Rollout, nil
	}
}

// RejectionError is a typed admission refusal from the server; Code is
// one of the Code* constants ("saturated" means backpressure: retry
// later).
type RejectionError struct {
	Lot  string
	Code string
	Msg  string
}

func (e *RejectionError) Error() string {
	if e.Lot == "" {
		return fmt.Sprintf("lotserver: rejected (%s): %s", e.Code, e.Msg)
	}
	return fmt.Sprintf("lotserver: lot %s rejected (%s): %s", e.Lot, e.Code, e.Msg)
}

// ErrConnectionLost reports the server connection dying mid-lot.
var ErrConnectionLost = errors.New("lotserver: connection to server lost")

// Run submits one lot and waits for its outcome. Cancelling ctx sends a
// cancel for the lot and returns; the server checkpoints the lot's
// journal so a resubmission resumes it.
func (c *Client) Run(ctx context.Context, spec LotSpec) (*LotSummary, error) {
	ch := make(chan *clientMsg, 4)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrConnectionLost, err)
	}
	if _, dup := c.waiters[spec.ID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("lotserver: lot %q already submitted on this connection", spec.ID)
	}
	c.waiters[spec.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, spec.ID)
		c.mu.Unlock()
	}()

	if err := writeClientMsg(c.mc, &clientMsg{
		Type: "submit", Lot: spec.ID, Seed: spec.Seed, Devices: spec.Devices,
	}, c.idle); err != nil {
		return nil, err
	}

	for {
		select {
		case <-ctx.Done():
			writeClientMsg(c.mc, &clientMsg{Type: "cancel", Lot: spec.ID}, c.hb)
			return nil, ctx.Err()
		case m, ok := <-ch:
			if !ok {
				return nil, ErrConnectionLost
			}
			switch m.Type {
			case "accepted":
				// Keep waiting for the terminal frame.
			case "rejected":
				return nil, &RejectionError{Lot: spec.ID, Code: m.Code, Msg: m.Err}
			case "aborted":
				return nil, fmt.Errorf("%w: %s", ErrAborted, m.Err)
			case "done":
				if m.Summary != nil && m.Summary.JournalDegraded {
					// The lot finished — bins are complete and correct — but
					// it lost its journal to a persistent storage fault, so a
					// crash before this frame could not have been resumed.
					// Hand back both: the summary for the bins, the typed
					// error so callers notice the degradation.
					return m.Summary, fmt.Errorf("lot %s: %w (%s)",
						spec.ID, lotrun.ErrJournalDegraded, m.Summary.JournalErr)
				}
				return m.Summary, nil
			}
		}
	}
}
