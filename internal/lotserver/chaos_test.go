package lotserver

// Chaos soak: disk faults (seeded diskfault.FaultFS under the journal
// dir), network faults (seeded netfloor.FaultConn on every site link) and
// process faults (a transient panic hook on the local worker) composed
// over a multi-lot server run. The invariants are the robustness
// contract of the whole pipeline:
//
//   1. Committed bins are bit-identical to a fault-free serial reference
//      — storage and transport faults may cost time or the journal,
//      never correctness.
//   2. Every lot terminates with either a full report or a typed error
//      (ErrAborted, carrying lotrun.ErrJournalDegraded when the journal
//      died first) — no silent partial outcomes.
//   3. A surviving journal, replayed with the plain OS filesystem,
//      reproduces exactly the reference result for every index it holds.
//
// Every schedule is a pure function of its seed. A failing run is
// replayed exactly with:
//
//	go test -race -run ChaosSoak ./internal/lotserver/ -args -chaosseed=<seed>

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/diskfault"
	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/netfloor"
	"repro/internal/parallel"
)

var chaosSeed = flag.Int64("chaosseed", -1,
	"replay a single chaos soak schedule seed (-1 runs the fixed CI set)")

// chaosDiskProfile is the storage-fault mix for the soak: every failure
// mode the injector models, at rates high enough that a three-lot run
// sees dozens of faults.
func chaosDiskProfile() diskfault.Profile {
	return diskfault.Profile{
		WriteErrP:   0.05,
		ShortWriteP: 0.05,
		ENOSPCP:     0.02,
		SyncErrP:    0.05,
		DelayP:      0.05,
		DelayMax:    time.Millisecond,
	}
}

// TestChaosSoak is the capstone: three concurrent lots screened over a
// faulty network, journaled onto faulty storage, with transient panics
// injected on the local worker — and the bins still match the serial
// reference bit for bit.
func TestChaosSoak(t *testing.T) {
	seeds := []int64{3, 17, 29}
	if *chaosSeed >= 0 {
		seeds = []int64{*chaosSeed}
	}
	f := getFixture(t)
	pool := testPool(t, f, 36)
	faults := floor.DefaultFaultModel(0.10)
	specs := []LotSpec{
		{ID: "alpha", Seed: 99, Devices: 36},
		{ID: "beta", Seed: 1234, Devices: 25},
		{ID: "gamma", Seed: 42, Devices: 12},
	}
	refs := make(map[string]*floor.LotReport, len(specs))
	for _, spec := range specs {
		refs[spec.ID] = serialReference(t, f, pool, spec, faults)
	}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fm := newFarm(t, f, pool, faults, 3)
			ffs := diskfault.NewFaultFS(diskfault.OS, seed, chaosDiskProfile())
			jdir := t.TempDir()

			opt := serverOpts(f, pool, faults)
			opt.Sites = fm.addrs
			opt.Dialer = fm.dialer(netfloor.FaultProfile{
				DropP: 0.03, DupP: 0.05, DelayP: 0.10, DelayMax: 2 * time.Millisecond,
			}, seed)
			opt.NetSeed = seed
			opt.LocalWorkers = 1
			opt.JournalDir = jdir
			opt.MaxActiveLots = 3
			opt.FS = ffs
			opt.JournalRetry = lotrun.RetryPolicy{Attempts: 3, Backoff: 100 * time.Microsecond}

			// Transient panic hook: a schedule-chosen subset of devices
			// panics on its first pass through the local worker, is
			// requeued, and screens cleanly on the retry. The panic fires
			// outside the supervised screening region, so it must never
			// turn into a fallback bin.
			var hookMu sync.Mutex
			hookSeen := make(map[string]bool)
			opt.Hook = func(lotID string, device int) {
				key := fmt.Sprintf("%s/%d", lotID, device)
				hookMu.Lock()
				first := !hookSeen[key]
				hookSeen[key] = true
				hookMu.Unlock()
				if first && parallel.SubSeed(seed, device)%5 == 0 {
					panic("chaos: injected worker panic at " + key)
				}
			}

			s, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Kill()

			handles := make([]*LotHandle, len(specs))
			for i, spec := range specs {
				h, err := s.Submit(context.Background(), spec)
				if err != nil {
					t.Fatalf("submit %s: %v", spec.ID, err)
				}
				handles[i] = h
			}
			degraded := 0
			for i, h := range handles {
				spec := specs[i]
				res, err := h.Wait(context.Background())
				if err != nil {
					// Invariant 2: the only acceptable failure is a typed
					// abort — anything else is a silent-corruption bug.
					if !errors.Is(err, ErrAborted) {
						t.Fatalf("lot %s: untyped termination: %v", spec.ID, err)
					}
					t.Logf("lot %s aborted (typed): %v", spec.ID, err)
					continue
				}
				// Invariant 1: bins bit-identical to the fault-free serial
				// reference, journal faults or not.
				reportsEqual(t, spec.ID, res.Report, refs[spec.ID])
				if res.JournalDegraded {
					degraded++
					if res.JournalErr == "" {
						t.Fatalf("lot %s: degraded without a journal error", spec.ID)
					}
					continue
				}
				// Invariant 3: the surviving journal, read back with the
				// plain OS filesystem, holds exactly the reference result
				// for every committed index.
				verifyJournalAgainstReference(t, filepath.Join(jdir, spec.ID+".journal"),
					spec, refs[spec.ID])
			}
			st := ffs.Stats()
			t.Logf("seed %d: disk faults %+v; degraded lots %d", seed, st, degraded)
			if !st.Any() {
				t.Fatalf("seed %d: fault injector never fired — the soak tested nothing", seed)
			}
		})
	}
}

// verifyJournalAgainstReference replays one journal with the real
// filesystem and checks every record against the serial reference.
func verifyJournalAgainstReference(t *testing.T, path string, spec LotSpec, ref *floor.LotReport) {
	t.Helper()
	hdr, done, _, stats, err := lotrun.ReplayJournal(path)
	if err != nil {
		t.Fatalf("lot %s: journal unreadable after faulty run: %v", spec.ID, err)
	}
	if hdr.LotSeed != spec.Seed || hdr.Devices != spec.Devices {
		t.Fatalf("lot %s: journal header (seed %d devices %d) does not match spec",
			spec.ID, hdr.LotSeed, hdr.Devices)
	}
	byIndex := make(map[int]floor.DeviceResult, len(ref.Results))
	for _, r := range ref.Results {
		byIndex[r.Index] = r
	}
	for idx, got := range done {
		want, ok := byIndex[idx]
		if !ok {
			t.Fatalf("lot %s: journal holds device %d absent from the reference", spec.ID, idx)
		}
		got.Site, want.Site = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lot %s: journaled device %d diverges from serial reference:\n%+v\nvs\n%+v",
				spec.ID, idx, got, want)
		}
	}
	t.Logf("lot %s: journal verified (%d records, %d corrupt lines skipped, %d duplicates)",
		spec.ID, stats.Records, stats.Corrupt, stats.Duplicates)
}

// TestJournalDegradedMode: a deterministic dead journal (every fsync
// fails) must not kill the lot. It completes with correct bins,
// LotResult/LotReport carry the typed degradation, and /statusz counts
// the lot.
func TestJournalDegradedMode(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 24)
	cases := []struct {
		name string
		prof diskfault.Profile
	}{
		// Every fsync fails from op zero: the journal cannot even be
		// created, so the lot is admitted directly in degraded mode.
		{"at-create", diskfault.Profile{SyncErrP: 1}},
		// Setup (mkdir, stat, create, header write+sync, dir sync, first
		// commit) is spared; a later device commit exhausts its retries
		// and the lot degrades mid-flight.
		{"mid-lot", diskfault.Profile{SyncErrP: 1, FirstFaultOp: 8}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opt := serverOpts(f, pool, nil)
			opt.LocalWorkers = 1
			opt.JournalDir = t.TempDir()
			opt.FS = diskfault.NewFaultFS(diskfault.OS, 1, tc.prof)
			opt.JournalRetry = lotrun.RetryPolicy{Attempts: 2, Backoff: 50 * time.Microsecond}
			s, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Kill()

			spec := LotSpec{ID: "deglot", Seed: 99, Devices: 24}
			h, err := s.Submit(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.Wait(context.Background())
			if err != nil {
				t.Fatalf("degraded lot must complete, got %v", err)
			}
			if !res.JournalDegraded || res.JournalErr == "" {
				t.Fatalf("LotResult not marked degraded: %+v / %q", res.JournalDegraded, res.JournalErr)
			}
			if !res.Report.JournalDegraded || res.Report.JournalErr == "" {
				t.Fatal("LotReport not marked degraded")
			}
			if !strings.Contains(res.Report.String(), "journal degraded") {
				t.Fatal("report rendering does not warn about the degraded journal")
			}
			// Bins are still the pure function of (seed, index): identical
			// to the fault-free serial reference.
			reportsEqual(t, tc.name, res.Report, serialReference(t, f, pool, spec, nil))

			// The degradation is an operator-visible state: /statusz
			// carries the counter.
			srv := httptest.NewServer(s.StatusHandler())
			defer srv.Close()
			resp, err := srv.Client().Get(srv.URL)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			if st.LotsDegraded != 1 {
				t.Fatalf("/statusz LotsDegraded = %d, want 1", st.LotsDegraded)
			}
		})
	}
}

// TestClientDegradedError: over the wire, a degraded lot answers "done"
// with both the full summary and the typed lotrun.ErrJournalDegraded —
// the client gets its bins and cannot miss that resume is gone.
func TestClientDegradedError(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 12)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.JournalDir = t.TempDir()
	opt.FS = diskfault.NewFaultFS(diskfault.OS, 1, diskfault.Profile{SyncErrP: 1})
	opt.JournalRetry = lotrun.RetryPolicy{Attempts: 2, Backoff: 50 * time.Microsecond}
	opt.HeartbeatInterval = 50 * time.Millisecond
	opt.IdleTimeout = 10 * time.Second
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go s.ServeClients(ln)

	cli, err := Dial(ln.Addr().String(), ClientOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		IdleTimeout:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	spec := LotSpec{ID: "wire-deg", Seed: 7, Devices: 12}
	sum, err := cli.Run(context.Background(), spec)
	if !errors.Is(err, lotrun.ErrJournalDegraded) {
		t.Fatalf("client error = %v, want ErrJournalDegraded", err)
	}
	if sum == nil || !sum.JournalDegraded || sum.JournalErr == "" {
		t.Fatalf("degraded summary missing or unmarked: %+v", sum)
	}
	want := serialReference(t, f, pool, spec, nil)
	if sum.Devices != want.Devices || sum.Pass != want.Pass ||
		sum.Fail != want.Fail || sum.Fallback != want.Fallback {
		t.Fatalf("degraded summary %+v does not match serial bins (pass %d fail %d fallback %d)",
			sum, want.Pass, want.Fail, want.Fallback)
	}
}

// TestDrainDegradedJournal: a staged drain catching a dead-journal lot
// mid-flight must tell the waiting client that its progress is NOT on
// disk — the abort error carries lotrun.ErrJournalDegraded, because a
// resubmit will re-screen from scratch.
func TestDrainDegradedJournal(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.JournalDir = t.TempDir()
	opt.FS = diskfault.NewFaultFS(diskfault.OS, 1, diskfault.Profile{SyncErrP: 1})
	opt.JournalRetry = lotrun.RetryPolicy{Attempts: 2, Backoff: 50 * time.Microsecond}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	spec := LotSpec{ID: "drain-deg", Seed: 99, Devices: 36}
	h, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, s, spec.ID, 1)

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()

	res, werr := h.Wait(context.Background())
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if werr == nil {
		// The lot beat the drain: it must still be marked degraded.
		if !res.JournalDegraded {
			t.Fatal("lot finished under drain without degraded marking")
		}
		reportsEqual(t, "drain-deg-complete", res.Report, serialReference(t, f, pool, spec, nil))
		return
	}
	if !errors.Is(werr, ErrAborted) {
		t.Fatalf("drained lot Wait = %v, want ErrAborted", werr)
	}
	if !errors.Is(werr, lotrun.ErrJournalDegraded) {
		t.Fatalf("drain abort does not carry ErrJournalDegraded: %v", werr)
	}
}
