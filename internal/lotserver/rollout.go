package lotserver

// The staged rollout controller: the service-level half of the versioned
// calibration lifecycle (internal/modelreg holds the durable state).
//
// A candidate moves through three gates, each reversible until the last:
//
//	staged    — in the registry, inert; no lot screens under it.
//	shadow    — every committed incumbent result is re-screened by the
//	            candidate off the hot path, accumulating divergence
//	            statistics; incumbent bins stay authoritative and
//	            bit-identical to a no-shadow run.
//	canary    — a deterministic fraction of NEW lots (by lot-ID hash) is
//	            pinned to the candidate; everything else stays on ACTIVE.
//	promoted  — the candidate becomes ACTIVE for all new lots.
//
// Rollback is automatic: shadow divergence out of bounds, or a drift
// alarm on a canary-pinned lot, demotes the candidate with the recorded
// evidence — running lots are untouched (they are pinned for life), and
// the demoted version cannot be re-promoted by accident.
//
// The rollout position lives in the registry's fsync'd ROLLOUT record, so
// a kill-restart resumes the same stage with the same canary pinning
// (the pick is a pure function of lot ID and fraction).

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/modelreg"
	"repro/internal/netfloor"
)

// ErrNoRollout reports a rollout control call with no rollout in
// progress.
var ErrNoRollout = fmt.Errorf("lotserver: no rollout in progress")

// engineFor resolves one calibration version to a runnable engine,
// building and caching it (with its wire payload) on first use. Version 0
// is the base engine the server booted with.
func (s *Server) engineFor(version int) (*floor.Engine, error) {
	if version == 0 {
		return s.opt.Engine, nil
	}
	if s.opt.Registry == nil {
		return nil, fmt.Errorf("lotserver: calibration version %d needs a registry: %w",
			version, lotrun.ErrModelMismatch)
	}
	s.romu.Lock()
	if eng := s.engines[version]; eng != nil {
		s.romu.Unlock()
		return eng, nil
	}
	s.romu.Unlock()
	art, ok := s.opt.Registry.Get(version)
	if !ok {
		return nil, fmt.Errorf("lotserver: calibration version %d not in registry: %w",
			version, lotrun.ErrModelMismatch)
	}
	eng, err := art.Engine(s.opt.Engine)
	if err != nil {
		return nil, fmt.Errorf("lotserver: %v: %w", err, lotrun.ErrModelMismatch)
	}
	payload, err := modelreg.EncodeArtifact(art)
	if err != nil {
		return nil, err
	}
	s.romu.Lock()
	s.engines[version] = eng
	s.payloads[version] = payload
	s.romu.Unlock()
	return eng, nil
}

// answerModelReq serves a site's artifact fetch from the payload cache.
// An unknown version is logged and left unanswered — the site's queued
// assignment goes overdue and retries, which self-heals if the registry
// catches up.
func (s *Server) answerModelReq(st *siteStats, mc *netfloor.MsgConn, version int) error {
	s.romu.Lock()
	payload := s.payloads[version]
	s.romu.Unlock()
	if payload == nil {
		// Not cached yet (another site's lot built it, or a stale fetch).
		if _, err := s.engineFor(version); err != nil {
			s.logf("site asked for model v%d the server cannot resolve: %v", version, err)
			return nil
		}
		s.romu.Lock()
		payload = s.payloads[version]
		s.romu.Unlock()
	}
	fp := uint64(0)
	s.romu.Lock()
	if eng := s.engines[version]; eng != nil {
		fp = eng.Fingerprint()
	}
	s.romu.Unlock()
	st.update(func(st *siteStats) { st.modelSends++ })
	return mc.Write(&netfloor.Envelope{
		Type: netfloor.MsgModel, Model: version, ModelFP: fp, Artifact: payload,
	}, s.opt.IdleTimeout)
}

// canaryPick decides deterministically whether a lot ID falls in the
// canary fraction — a pure function, so a kill-restart pins the same
// lots to the same versions.
func canaryPick(lotID string, fraction float64) bool {
	h := fnv.New64a()
	h.Write([]byte(lotID))
	return float64(h.Sum64()>>11)/float64(uint64(1)<<53) < fraction
}

// pinVersion picks the calibration version for a newly admitted lot:
// the canary candidate for the canary fraction during a canary stage,
// the ACTIVE version otherwise.
func (s *Server) pinVersion(lotID string) int {
	if s.opt.Registry == nil {
		return 0
	}
	if ro := s.opt.Registry.Rollout(); ro != nil && ro.Stage == modelreg.StageCanary &&
		canaryPick(lotID, ro.Fraction) {
		return ro.Candidate
	}
	return s.opt.Registry.Active()
}

// resumeRollout rebuilds the in-memory rollout machinery from the
// registry's durable state after a restart. The divergence statistics of
// a shadow stage restart from zero — evidence is re-earned; the stage
// position and canary pinning are what must survive.
func (s *Server) resumeRollout() error {
	reg := s.opt.Registry
	if active := reg.Active(); active != 0 {
		if _, err := s.engineFor(active); err != nil {
			return fmt.Errorf("lotserver: ACTIVE calibration v%d unusable: %w", active, err)
		}
	}
	ro := reg.Rollout()
	if ro == nil {
		return nil
	}
	eng, err := s.engineFor(ro.Candidate)
	if err != nil {
		// The rollout points at a version this registry can no longer
		// rebuild (corrupt artifact record). Clear it — degrade, don't die.
		s.logf("rollout candidate v%d unusable (%v); clearing rollout", ro.Candidate, err)
		return reg.SetRollout(nil)
	}
	s.romu.Lock()
	s.shadow = modelreg.NewShadowScorer(ro.Candidate, eng, s.opt.ShadowBounds)
	s.romu.Unlock()
	s.logf("rollout resumed: candidate v%d at stage %q", ro.Candidate, ro.Stage)
	return nil
}

func (s *Server) currentShadow() *modelreg.ShadowScorer {
	s.romu.Lock()
	defer s.romu.Unlock()
	return s.shadow
}

// feedShadow enqueues one committed incumbent result for shadow scoring.
// Lots pinned to the candidate itself are excluded (the candidate cannot
// be its own incumbent), and a full queue sheds — shadow scoring is
// advisory and must never backpressure the commit path.
func (s *Server) feedShadow(l *lot, res floor.DeviceResult) {
	sc := s.currentShadow()
	if sc == nil || l.modelVersion == sc.Version() {
		return
	}
	select {
	case s.shadowQ <- shadowItem{seed: l.spec.Seed, res: res}:
	default:
		sc.Drop()
	}
}

// shadowWorker drains the shadow queue off the hot path, re-screening
// each committed device with the candidate engine and rolling the
// candidate back the moment divergence leaves bounds.
func (s *Server) shadowWorker() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case it := <-s.shadowQ:
			sc := s.currentShadow()
			if sc == nil {
				continue
			}
			sc.Observe(s.ctx, it.seed, s.opt.Pool[it.res.Index], s.opt.Faults, it.res)
			if bad, reason := sc.Exceeded(); bad {
				s.rollback(sc, "shadow divergence: "+reason)
			}
		}
	}
}

// onDriftAlarm is the service-level drift response: an alarm on a
// canary-pinned lot is direct evidence against the candidate and rolls
// it back; any other alarm, with a Recalibrate hook configured, stages a
// fresh candidate into the registry off the hot path — the screening
// world never stops.
func (s *Server) onDriftAlarm(l *lot, a lotrun.DriftAlarm) {
	if sc := s.currentShadow(); sc != nil && l.modelVersion == sc.Version() {
		s.rollback(sc, fmt.Sprintf("drift alarm (%s) on canary lot %s at device %d",
			a.Detector, l.spec.ID, a.Device))
		return
	}
	if s.opt.Recalibrate == nil || s.opt.Registry == nil {
		return
	}
	s.romu.Lock()
	if s.staging {
		s.romu.Unlock()
		return // one retrain at a time; later alarms ride the staged result
	}
	s.staging = true
	s.romu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			s.romu.Lock()
			s.staging = false
			s.romu.Unlock()
		}()
		cal, gate, err := s.opt.Recalibrate(l.spec.ID, a)
		if err != nil {
			s.logf("lot %s: recalibration after drift alarm failed: %v", l.spec.ID, err)
			return
		}
		if gate == nil {
			gate = l.eng.Gate
		}
		note := fmt.Sprintf("drift alarm (%s) on lot %s at device %d (ewma %.3f, cusum %.3f)",
			a.Detector, l.spec.ID, a.Device, a.EWMA, a.CUSUM)
		v, err := s.StageCandidate(cal, gate, note)
		if err != nil {
			s.logf("lot %s: staging recalibrated candidate failed: %v", l.spec.ID, err)
			return
		}
		s.romu.Lock()
		s.recals++
		s.romu.Unlock()
		s.logf("lot %s: drift alarm staged candidate v%d", l.spec.ID, v)
	}()
}

// rollback demotes the candidate sc is scoring, recording its divergence
// statistics as the demotion evidence, and ends the rollout. Idempotent:
// only the first caller for a given scorer acts.
func (s *Server) rollback(sc *modelreg.ShadowScorer, reason string) {
	s.romu.Lock()
	if s.shadow != sc {
		s.romu.Unlock()
		return
	}
	s.shadow = nil
	s.rollbacks++
	s.romu.Unlock()
	stats := sc.Stats()
	if err := s.opt.Registry.Demote(sc.Version(), reason, &stats); err != nil {
		s.logf("rollback: demoting v%d: %v", sc.Version(), err)
	}
	if err := s.opt.Registry.SetRollout(nil); err != nil {
		s.logf("rollback: clearing rollout: %v", err)
	}
	s.logf("rolled back candidate v%d: %s (scored %d, disagree rate %.4f)",
		sc.Version(), reason, stats.Scored, stats.DisagreeRate)
}

// StageCandidate wraps a freshly trained calibration into an artifact on
// the server's base engine and stages it in the registry. Staging is
// inert: no lot screens under the version until a rollout begins.
func (s *Server) StageCandidate(cal *core.Calibration, gate *floor.Gate, note string) (int, error) {
	if s.opt.Registry == nil {
		return 0, fmt.Errorf("lotserver: no registry configured")
	}
	art, err := modelreg.NewArtifact(s.opt.Engine, cal, gate, note)
	if err != nil {
		return 0, err
	}
	return s.opt.Registry.Stage(art)
}

// BeginShadow starts a rollout: the staged version becomes the shadow
// candidate, scored against the incumbent on live committed devices.
func (s *Server) BeginShadow(version int) error {
	if s.opt.Registry == nil {
		return fmt.Errorf("lotserver: no registry configured")
	}
	if ro := s.opt.Registry.Rollout(); ro != nil {
		return fmt.Errorf("lotserver: rollout of v%d already in progress (stage %q)", ro.Candidate, ro.Stage)
	}
	if d, demoted := s.opt.Registry.Demoted(version); demoted {
		return fmt.Errorf("lotserver: v%d was demoted (%s) and cannot be rolled out", version, d.Reason)
	}
	eng, err := s.engineFor(version)
	if err != nil {
		return err
	}
	if err := s.opt.Registry.SetRollout(&modelreg.RolloutState{
		Candidate: version, Stage: modelreg.StageShadow,
	}); err != nil {
		return err
	}
	s.romu.Lock()
	s.shadow = modelreg.NewShadowScorer(version, eng, s.opt.ShadowBounds)
	s.romu.Unlock()
	s.logf("rollout: candidate v%d entered shadow", version)
	return nil
}

// Promote advances the rollout one stage: shadow → canary requires the
// divergence evidence to be healthy (enough samples, every bound held);
// canary → ACTIVE makes the candidate the default for all new lots and
// ends the rollout. Running lots are never touched.
func (s *Server) Promote() error {
	if s.opt.Registry == nil {
		return fmt.Errorf("lotserver: no registry configured")
	}
	ro := s.opt.Registry.Rollout()
	if ro == nil {
		return ErrNoRollout
	}
	switch ro.Stage {
	case modelreg.StageShadow:
		sc := s.currentShadow()
		if sc == nil {
			return fmt.Errorf("lotserver: rollout of v%d has no shadow scorer (rolled back?)", ro.Candidate)
		}
		if !sc.Healthy() {
			st := sc.Stats()
			if bad, reason := sc.Exceeded(); bad {
				return fmt.Errorf("lotserver: v%d cannot be promoted: %s", ro.Candidate, reason)
			}
			return fmt.Errorf("lotserver: v%d needs more shadow evidence (%d devices scored)", ro.Candidate, st.Scored)
		}
		if err := s.opt.Registry.SetRollout(&modelreg.RolloutState{
			Candidate: ro.Candidate, Stage: modelreg.StageCanary, Fraction: s.opt.CanaryFraction,
		}); err != nil {
			return err
		}
		s.logf("rollout: candidate v%d entered canary (fraction %.2f)", ro.Candidate, s.opt.CanaryFraction)
		return nil
	case modelreg.StageCanary:
		if sc := s.currentShadow(); sc != nil {
			if bad, reason := sc.Exceeded(); bad {
				return fmt.Errorf("lotserver: v%d cannot be promoted: %s", ro.Candidate, reason)
			}
		}
		if err := s.opt.Registry.SetActive(ro.Candidate); err != nil {
			return err
		}
		if err := s.opt.Registry.SetRollout(nil); err != nil {
			return err
		}
		s.romu.Lock()
		s.shadow = nil
		s.romu.Unlock()
		s.logf("rollout: candidate v%d promoted to ACTIVE", ro.Candidate)
		return nil
	default:
		return fmt.Errorf("lotserver: rollout of v%d in unknown stage %q", ro.Candidate, ro.Stage)
	}
}

// DemoteCandidate manually rolls back the rollout in progress.
func (s *Server) DemoteCandidate(reason string) error {
	if s.opt.Registry == nil {
		return fmt.Errorf("lotserver: no registry configured")
	}
	ro := s.opt.Registry.Rollout()
	if ro == nil {
		return ErrNoRollout
	}
	if reason == "" {
		reason = "operator demotion"
	}
	if sc := s.currentShadow(); sc != nil {
		s.rollback(sc, reason)
		return nil
	}
	// No scorer (e.g. lost to a restart race): demote directly.
	if err := s.opt.Registry.Demote(ro.Candidate, reason, nil); err != nil {
		return err
	}
	s.romu.Lock()
	s.rollbacks++
	s.romu.Unlock()
	return s.opt.Registry.SetRollout(nil)
}

// RolloutStatus is the operator-facing rollout snapshot (part of
// /statusz and the sigtest -server status output).
type RolloutStatus struct {
	// Enabled reports whether a registry is configured at all.
	Enabled bool `json:"enabled"`
	// Active is the version new non-canary lots pin (0 = base model).
	Active int `json:"active"`
	// Candidate and Stage describe the rollout in progress (zero/empty
	// when idle); CanaryFraction the share of new lots pinned to the
	// candidate during canary.
	Candidate      int     `json:"candidate,omitempty"`
	Stage          string  `json:"stage,omitempty"`
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	// Shadow is the live divergence evidence for the candidate.
	Shadow *modelreg.DivergenceStats `json:"shadow,omitempty"`
	// Versions lists every staged version; Demoted the versions demoted
	// with evidence.
	Versions []int `json:"versions,omitempty"`
	Demoted  []int `json:"demoted,omitempty"`
	// Recalibrations counts candidates staged from drift alarms;
	// Rollbacks the automatic (or operator) demotions since boot.
	Recalibrations int `json:"recalibrations,omitempty"`
	Rollbacks      int `json:"rollbacks,omitempty"`
}

// RolloutStatus snapshots the versioned-calibration lifecycle.
func (s *Server) RolloutStatus() RolloutStatus {
	if s.opt.Registry == nil {
		return RolloutStatus{}
	}
	rs := RolloutStatus{
		Enabled:  true,
		Active:   s.opt.Registry.Active(),
		Versions: s.opt.Registry.Versions(),
	}
	for _, d := range s.opt.Registry.Demotions() {
		rs.Demoted = append(rs.Demoted, d.Version)
	}
	sort.Ints(rs.Demoted)
	if ro := s.opt.Registry.Rollout(); ro != nil {
		rs.Candidate, rs.Stage, rs.CanaryFraction = ro.Candidate, ro.Stage, ro.Fraction
	}
	if sc := s.currentShadow(); sc != nil {
		st := sc.Stats()
		rs.Shadow = &st
	}
	s.romu.Lock()
	rs.Recalibrations, rs.Rollbacks = s.recals, s.rollbacks
	s.romu.Unlock()
	return rs
}
