package lotserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/lotrun"
	"repro/internal/netfloor"
	"repro/internal/parallel"
	"repro/internal/wave"
)

// fixture is the shared engineering phase, the same recipe as lotrun's
// and netfloor's test fixtures — bit-identity claims span all three
// orchestrators.
type fixture struct {
	cfg   *core.TestConfig
	cal   *core.Calibration
	stim  *wave.PWL
	gate  *floor.Gate
	model core.DeviceModel
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		model := core.RF2401Model{}
		cfg := core.DefaultSimConfig()
		stim := cfg.RandomStimulus(rng)
		train, err := core.GeneratePopulation(rng, model, 60, 0.9)
		if err != nil {
			fixErr = err
			return
		}
		td, err := core.AcquireTrainingSet(rng, cfg, stim, train,
			func(d *core.Device) lna.Specs { return d.Specs })
		if err != nil {
			fixErr = err
			return
		}
		cal, err := core.Calibrate(rng, stim, td, core.CalibrationOptions{})
		if err != nil {
			fixErr = err
			return
		}
		sigs := make([][]float64, len(td))
		for i := range td {
			sigs[i] = td[i].Signature
		}
		gate, err := floor.FitGate(sigs, floor.GateOptions{})
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{cfg: cfg, cal: cal, stim: stim, gate: gate, model: model}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func rf2401Pass(s lna.Specs) bool {
	return s.GainDB >= 10.0 && s.NFDB <= 4.2 && s.IIP3DBm >= -9.5
}

func (f *fixture) engine() *floor.Engine {
	return &floor.Engine{
		Cfg:      f.cfg,
		Cal:      f.cal,
		Stim:     f.stim,
		Gate:     f.gate,
		PredPass: rf2401Pass,
		TruePass: rf2401Pass,
		Policy:   floor.DefaultPolicy(),
	}
}

func testPool(t *testing.T, f *fixture, n int) []*core.Device {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	pool, err := core.GeneratePopulation(rng, f.model, n, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func quietBreaker() lotrun.BreakerConfig { return lotrun.BreakerConfig{TripConsecutive: 1 << 20} }

// stripFloorDependent zeroes report content that legitimately depends on
// floor placement: Site ordinals and the modeled economics charges
// (network, quarantine, journal) plus the derived Time comparison.
// Everything else must be bit-identical to a serial single-lot run.
func stripFloorDependent(rep *floor.LotReport) {
	for i := range rep.Results {
		rep.Results[i].Site = 0
	}
	rep.Load.NetworkS = 0
	rep.Load.QuarantineS = 0
	rep.Load.JournalS = 0
	rep.Time = ate.TimeComparison{}
	// Journal degradation is a storage-fault outcome, not a binning one:
	// bins stay bit-identical whether or not the journal survived.
	rep.JournalDegraded = false
	rep.JournalErr = ""
}

func reportsEqual(t *testing.T, label string, a, b *floor.LotReport) {
	t.Helper()
	ca, cb := *a, *b
	ca.Results = append([]floor.DeviceResult(nil), a.Results...)
	cb.Results = append([]floor.DeviceResult(nil), b.Results...)
	stripFloorDependent(&ca)
	stripFloorDependent(&cb)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("%s: lot reports diverge:\n%v\nvs\n%v", label, ca, cb)
	}
}

// serialReference screens the lot on a fresh serial engine — the ground
// truth every server run must match bit for bit.
func serialReference(t *testing.T, f *fixture, pool []*core.Device, spec LotSpec, faults *floor.FaultModel) *floor.LotReport {
	t.Helper()
	rep, err := f.engine().RunLot(spec.Seed, pool[:spec.Devices], faults)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// farm is an in-process multi-lot site floor: persistent Sites serving
// the shared pool, reachable through a net.Pipe dialer with independent
// deterministic fault streams on both ends of every connection.
type farm struct {
	t      *testing.T
	ctx    context.Context
	cancel context.CancelFunc
	sites  map[string]*netfloor.Site
	addrs  []string

	mu    sync.Mutex
	conns int
	wg    sync.WaitGroup
}

func newFarm(t *testing.T, f *fixture, pool []*core.Device, faults *floor.FaultModel, n int) *farm {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	fm := &farm{t: t, ctx: ctx, cancel: cancel, sites: make(map[string]*netfloor.Site)}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("site%d", i)
		fm.addrs = append(fm.addrs, addr)
		fm.sites[addr] = &netfloor.Site{
			Name: addr, Engine: f.engine(), Lot: pool, Faults: faults,
			HeartbeatInterval: 10 * time.Millisecond,
		}
	}
	t.Cleanup(func() {
		cancel()
		fm.wg.Wait()
	})
	return fm
}

func (fm *farm) dialer(prof netfloor.FaultProfile, seed int64) netfloor.Dialer {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		site, ok := fm.sites[addr]
		if !ok {
			return nil, fmt.Errorf("farm: no site at %q", addr)
		}
		if fm.ctx.Err() != nil {
			return nil, fmt.Errorf("farm: shut down")
		}
		fm.mu.Lock()
		k := fm.conns
		fm.conns++
		fm.mu.Unlock()
		cli, srv := net.Pipe()
		var srvConn net.Conn = srv
		var cliConn net.Conn = cli
		if !prof.Zero() {
			srvConn = netfloor.NewFaultConn(srv, parallel.SubSeed(seed, 2*k+1), prof)
			cliConn = netfloor.NewFaultConn(cli, parallel.SubSeed(seed, 2*k), prof)
		}
		fm.wg.Add(1)
		go func() {
			defer fm.wg.Done()
			site.ServeConn(fm.ctx, srvConn)
		}()
		return cliConn, nil
	}
}

// serverOpts builds fast-timing Options for tests.
func serverOpts(f *fixture, pool []*core.Device, faults *floor.FaultModel) Options {
	return Options{
		Engine: f.engine(), Pool: pool, Faults: faults,
		HeartbeatInterval: 10 * time.Millisecond,
		IdleTimeout:       80 * time.Millisecond,
		RequestTimeout:    2 * time.Second,
		RetryBase:         5 * time.Millisecond,
		RetryMax:          50 * time.Millisecond,
		Breaker:           quietBreaker(),
	}
}

// waitCommitted polls until the lot has committed at least n devices.
func waitCommitted(t *testing.T, s *Server, lotID string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Status()
		for _, ls := range st.ActiveLots {
			if ls.ID == lotID && ls.Committed >= n {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("lot %s never reached %d committed devices", lotID, n)
}

// TestMultiLotBitIdentical is the tentpole acceptance: N=3 concurrent
// lots over a fault-injected transport, each bit-identical to a serial
// single-lot run of the same (seed, devices).
func TestMultiLotBitIdentical(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	faults := floor.DefaultFaultModel(0.10)
	fm := newFarm(t, f, pool, faults, 3)

	opt := serverOpts(f, pool, faults)
	opt.Sites = fm.addrs
	opt.Dialer = fm.dialer(netfloor.FaultProfile{DropP: 0.03, DupP: 0.05, DelayP: 0.10, DelayMax: 2 * time.Millisecond}, 7)
	opt.NetSeed = 7
	opt.LocalWorkers = 1
	opt.JournalDir = t.TempDir()
	opt.MaxActiveLots = 3

	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	specs := []LotSpec{
		{ID: "alpha", Seed: 99, Devices: 36},
		{ID: "beta", Seed: 1234, Devices: 25},
		{ID: "gamma", Seed: 42, Devices: 12},
	}
	handles := make([]*LotHandle, len(specs))
	for i, spec := range specs {
		h, err := s.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %s: %v", spec.ID, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("lot %s: %v", specs[i].ID, err)
		}
		want := serialReference(t, f, pool, specs[i], faults)
		reportsEqual(t, specs[i].ID, res.Report, want)
	}
}

// TestAdmissionShed: an over-admission burst sheds with explicit
// backpressure errors — no deadlock, no lost accepted lot.
func TestAdmissionShed(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 12)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.MaxActiveLots = 1
	opt.MaxQueuedLots = 1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	specs := []LotSpec{
		{ID: "a", Seed: 1, Devices: 12},
		{ID: "b", Seed: 2, Devices: 12},
		{ID: "c", Seed: 3, Devices: 12},
		{ID: "d", Seed: 4, Devices: 12},
	}
	var accepted []*LotHandle
	var acceptedSpecs []LotSpec
	shed := 0
	for _, spec := range specs {
		h, err := s.Submit(context.Background(), spec)
		switch {
		case err == nil:
			accepted = append(accepted, h)
			acceptedSpecs = append(acceptedSpecs, spec)
		case errors.Is(err, ErrSaturated):
			shed++
		default:
			t.Fatalf("submit %s: unexpected error %v", spec.ID, err)
		}
	}
	if len(accepted) < 2 || shed < 1 {
		t.Fatalf("accepted %d, shed %d; want >=2 accepted (active+queued) and >=1 shed", len(accepted), shed)
	}
	// Every accepted lot completes with correct bins — backpressure never
	// loses admitted work.
	for i, h := range accepted {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("accepted lot %s: %v", acceptedSpecs[i].ID, err)
		}
		want := serialReference(t, f, pool, acceptedSpecs[i], nil)
		reportsEqual(t, acceptedSpecs[i].ID, res.Report, want)
	}
	if st := s.Status(); st.ShedSaturated != shed {
		t.Fatalf("status ShedSaturated = %d, want %d", st.ShedSaturated, shed)
	}
}

func TestDuplicateLotID(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 24)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	h, err := s.Submit(context.Background(), LotSpec{ID: "dup", Seed: 5, Devices: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), LotSpec{ID: "dup", Seed: 6, Devices: 10}); !errors.Is(err, ErrDuplicateLot) {
		t.Fatalf("duplicate submit error = %v, want ErrDuplicateLot", err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.RejectedDuplicate != 1 {
		t.Fatalf("status RejectedDuplicate = %d, want 1", st.RejectedDuplicate)
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 8)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	bad := []LotSpec{
		{ID: "", Seed: 1, Devices: 4},
		{ID: "../evil", Seed: 1, Devices: 4},
		{ID: "has space", Seed: 1, Devices: 4},
		{ID: "ok", Seed: 1, Devices: 0},
		{ID: "ok", Seed: 1, Devices: len(pool) + 1},
	}
	for _, spec := range bad {
		if _, err := s.Submit(context.Background(), spec); err == nil {
			t.Fatalf("spec %+v was admitted", spec)
		}
	}
}

// TestClientCancelMidLot: cancelling the submitting context mid-run
// aborts only that lot, checkpoints its journal, and a resubmission
// resumes it to bins bit-identical to serial.
func TestClientCancelMidLot(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.JournalDir = t.TempDir()
	opt.MaxActiveLots = 2
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	// A bystander lot that must be untouched by the cancel.
	bystander := LotSpec{ID: "bystander", Seed: 77, Devices: 10}
	bh, err := s.Submit(context.Background(), bystander)
	if err != nil {
		t.Fatal(err)
	}

	victim := LotSpec{ID: "victim", Seed: 99, Devices: 36}
	ctx, cancel := context.WithCancel(context.Background())
	vh, err := s.Submit(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, s, victim.ID, 1)
	cancel()
	if _, err := vh.Wait(context.Background()); !errors.Is(err, ErrAborted) {
		t.Fatalf("cancelled lot Wait = %v, want ErrAborted", err)
	}

	// The bystander completes bit-identically.
	bres, err := bh.Wait(context.Background())
	if err != nil {
		t.Fatalf("bystander: %v", err)
	}
	reportsEqual(t, "bystander", bres.Report, serialReference(t, f, pool, bystander, nil))

	// Resubmitting the victim resumes from its journal and matches serial.
	vh2, err := s.Submit(context.Background(), victim)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	vres, err := vh2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vres.Replayed == 0 {
		t.Fatal("resumed lot replayed nothing; cancel did not checkpoint")
	}
	reportsEqual(t, "victim resumed", vres.Report, serialReference(t, f, pool, victim, nil))
}

// TestKillRestartResume is the crash acceptance: kill the server
// mid-traffic, restart on the same journal dir, resubmit every accepted
// lot — each resumes from its journal to identical final bins.
func TestKillRestartResume(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	faults := floor.DefaultFaultModel(0.10)
	dir := t.TempDir()

	specs := []LotSpec{
		{ID: "alpha", Seed: 99, Devices: 36},
		{ID: "beta", Seed: 1234, Devices: 30},
		{ID: "gamma", Seed: 42, Devices: 24},
	}

	opt := serverOpts(f, pool, faults)
	opt.LocalWorkers = 2
	opt.JournalDir = dir
	opt.MaxActiveLots = 3
	s1, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if _, err := s1.Submit(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, spec := range specs {
		waitCommitted(t, s1, spec.ID, 2)
	}
	s1.Kill() // crash: no drain, no checkpoint flush

	s2, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	handles := make([]*LotHandle, len(specs))
	for i, spec := range specs {
		h, err := s2.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("resubmit %s: %v", spec.ID, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("resumed lot %s: %v", specs[i].ID, err)
		}
		if res.Replayed == 0 {
			t.Fatalf("lot %s replayed nothing after crash", specs[i].ID)
		}
		reportsEqual(t, specs[i].ID+" resumed", res.Report, serialReference(t, f, pool, specs[i], faults))
	}
}

// TestGracefulDrain: Shutdown stops admission, finishes in-flight
// devices, checkpoints journals and answers clients; a new server
// resumes the interrupted lot to identical bins.
func TestGracefulDrain(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	dir := t.TempDir()

	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.JournalDir = dir
	s1, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}

	spec := LotSpec{ID: "draintest", Seed: 99, Devices: 36}
	h, err := s1.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, s1, spec.ID, 1)

	drained := make(chan error, 1)
	go func() { drained <- s1.Shutdown(context.Background()) }()

	// Wait for the drain to take effect (the flag flips at the start of
	// Shutdown, but the goroutine may not have run yet).
	deadline := time.Now().Add(5 * time.Second)
	for !s1.Status().Draining {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	// Admission during the drain answers ErrDraining.
	if _, err := s1.Submit(context.Background(), LotSpec{ID: "late", Seed: 1, Devices: 4}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", err)
	}

	res, werr := h.Wait(context.Background())
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if werr == nil {
		// The lot beat the drain; its bins must still be right.
		reportsEqual(t, "drained-complete", res.Report, serialReference(t, f, pool, spec, nil))
		return
	}
	if !errors.Is(werr, ErrAborted) {
		t.Fatalf("drained lot Wait = %v, want ErrAborted", werr)
	}

	// Resume on a fresh server: bit-identical.
	s2, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	h2, err := s2.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Replayed == 0 {
		t.Fatal("drain did not checkpoint the journal")
	}
	reportsEqual(t, "drain-resumed", res2.Report, serialReference(t, f, pool, spec, nil))
}

// TestFairScheduling: a small lot submitted after a mega-lot still
// finishes first — round-robin interleaving, not FIFO starvation.
func TestFairScheduling(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 36)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 2
	opt.MaxActiveLots = 2
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	mega := LotSpec{ID: "mega", Seed: 1, Devices: 36}
	small := LotSpec{ID: "small", Seed: 2, Devices: 6}
	mh, err := s.Submit(context.Background(), mega)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := s.Submit(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sh.Done():
		// Small lot finished; mega must still be running (36 vs 6 devices
		// with fair interleave: mega cannot be done yet unless the
		// scheduler starved the small lot instead).
		select {
		case <-mh.Done():
			t.Fatal("mega lot finished before or with the small lot — scheduling is not fair")
		default:
		}
	case <-mh.Done():
		t.Fatal("mega lot finished first — the small lot was starved")
	}
	if _, err := mh.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWireClient: the full client protocol over TCP loopback — submit,
// accepted, done with a summary matching the serial reference; a bad
// spec is rejected with a typed code.
func TestWireClient(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 24)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	opt.MaxActiveLots = 2
	opt.JournalDir = t.TempDir()
	// Client-protocol timings: no remote sites here, so the idle window can
	// be generous — a race-detector-loaded scheduler must not read as a
	// dead peer.
	opt.HeartbeatInterval = 50 * time.Millisecond
	opt.IdleTimeout = 10 * time.Second
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go s.ServeClients(ln)

	cli, err := Dial(ln.Addr().String(), ClientOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		IdleTimeout:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	specs := []LotSpec{
		{ID: "wire-a", Seed: 99, Devices: 24},
		{ID: "wire-b", Seed: 7, Devices: 10},
	}
	var wg sync.WaitGroup
	sums := make([]*LotSummary, len(specs))
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec LotSpec) {
			defer wg.Done()
			sums[i], errs[i] = cli.Run(context.Background(), spec)
		}(i, spec)
	}
	wg.Wait()
	for i, spec := range specs {
		if errs[i] != nil {
			t.Fatalf("lot %s: %v", spec.ID, errs[i])
		}
		want := serialReference(t, f, pool, spec, nil)
		got := sums[i]
		if got.Devices != want.Devices || got.Pass != want.Pass ||
			got.Fail != want.Fail || got.Fallback != want.Fallback {
			t.Fatalf("lot %s summary %+v does not match serial report (pass %d fail %d fallback %d)",
				spec.ID, got, want.Pass, want.Fail, want.Fallback)
		}
	}

	// Typed rejection: a lot bigger than the pool.
	_, err = cli.Run(context.Background(), LotSpec{ID: "too-big", Seed: 1, Devices: len(pool) + 1})
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Code != CodeBadRequest {
		t.Fatalf("oversized lot error = %v, want RejectionError{bad_request}", err)
	}
}

// TestStatusEndpoint: /statusz decodes and reflects the serving state.
func TestStatusEndpoint(t *testing.T) {
	f := getFixture(t)
	pool := testPool(t, f, 12)
	opt := serverOpts(f, pool, nil)
	opt.LocalWorkers = 1
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	h, err := s.Submit(context.Background(), LotSpec{ID: "statlot", Seed: 3, Devices: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.StatusHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.LotsCompleted != 1 || st.DevicesCommitted != 12 {
		t.Fatalf("status = %+v, want 1 lot / 12 devices completed", st)
	}
	if st.MaxActiveLots <= 0 || st.LocalWorkers != 1 {
		t.Fatalf("status limits missing: %+v", st)
	}
	if st.LatencyP50Ms < 0 || st.LatencyP99Ms < st.LatencyP50Ms {
		t.Fatalf("latency percentiles inconsistent: %+v", st)
	}
}
