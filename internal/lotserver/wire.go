package lotserver

// The client front door: a thin submit/await protocol riding the same
// CRC-framed transport as the site protocol (netfloor.MsgConn's raw
// frame layer), with its own envelope shape. A client connection submits
// any number of lots; the server answers each with accepted/rejected,
// then done (with a bin summary) or aborted. Both sides heartbeat, and a
// client connection's death cancels every lot it submitted that is still
// running — a client that goes away takes its interest with it, while
// the journals keep all progress for a resubmit.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netfloor"
)

// clientMsg is the client-protocol envelope.
type clientMsg struct {
	Type    string `json:"type"` // submit, cancel, accepted, rejected, done, aborted, heartbeat
	Lot     string `json:"lot,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Devices int    `json:"devices,omitempty"`
	// Code classifies a rejection: "saturated" (backpressure, retry
	// later), "draining", "duplicate", "bad_request".
	Code    string      `json:"code,omitempty"`
	Err     string      `json:"err,omitempty"`
	Summary *LotSummary `json:"summary,omitempty"`
	// Rollout control (type "rollout"): Op is one of "status", "shadow",
	// "promote", "demote"; Version names the candidate for "shadow";
	// Reason is the demotion note. The reply echoes Lot (an out-of-band
	// "!r<n>" key — '!' cannot start a real lot ID) and carries either a
	// Rollout snapshot or a coded error.
	Op      string         `json:"op,omitempty"`
	Version int            `json:"version,omitempty"`
	Reason  string         `json:"reason,omitempty"`
	Rollout *RolloutStatus `json:"rollout,omitempty"`
}

// Rejection codes carried in clientMsg.Code.
const (
	CodeSaturated  = "saturated"
	CodeDraining   = "draining"
	CodeDuplicate  = "duplicate"
	CodeBadRequest = "bad_request"
	CodeAborted    = "aborted"
)

// LotSummary is the completed lot's wire-sized outcome.
type LotSummary struct {
	Devices  int `json:"devices"`
	Pass     int `json:"pass"`
	Fail     int `json:"fail"`
	Fallback int `json:"fallback"`
	Escapes  int `json:"escapes"`
	Overkill int `json:"overkill"`
	Replayed int `json:"replayed,omitempty"`
	Trips    int `json:"trips,omitempty"`
	Alarms   int `json:"alarms,omitempty"`
	// JournalDegraded marks a lot that completed in journal-less degraded
	// mode (persistent journal failure; bins intact, resume disabled).
	// Client.Run surfaces it as lotrun.ErrJournalDegraded alongside the
	// summary.
	JournalDegraded bool   `json:"journal_degraded,omitempty"`
	JournalErr      string `json:"journal_err,omitempty"`
}

func summarize(res *LotResult) *LotSummary {
	return &LotSummary{
		Devices:         res.Report.Devices,
		Pass:            res.Report.Pass,
		Fail:            res.Report.Fail,
		Fallback:        res.Report.Fallback,
		Escapes:         res.Report.Escapes,
		Overkill:        res.Report.Overkill,
		Replayed:        res.Replayed,
		Trips:           len(res.Trips),
		Alarms:          len(res.Alarms),
		JournalDegraded: res.JournalDegraded,
		JournalErr:      res.JournalErr,
	}
}

func writeClientMsg(mc *netfloor.MsgConn, m *clientMsg, timeout time.Duration) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return mc.WriteFrame(payload, timeout)
}

func readClientMsg(mc *netfloor.MsgConn, idle time.Duration) (*clientMsg, error) {
	payload, err := mc.ReadFrame(idle)
	if err != nil {
		return nil, err
	}
	var m clientMsg
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("lotserver: decode client frame: %w", err)
	}
	return &m, nil
}

// rejectionCode classifies an admission error for the wire.
func rejectionCode(err error) string {
	switch {
	case errors.Is(err, ErrSaturated):
		return CodeSaturated
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrDuplicateLot):
		return CodeDuplicate
	default:
		return CodeBadRequest
	}
}

// ServeClients accepts client connections on ln until the server stops,
// handling each on its own goroutine.
func (s *Server) ServeClients(ln net.Listener) error {
	go func() {
		<-s.ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("lotserver: accept client: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handleClient(conn)
		}()
	}
}

// handleClient runs one client connection: a read loop for submissions
// and cancels, a heartbeat beacon, and a per-lot responder goroutine for
// every accepted lot. Closing the connection cancels the client's
// still-running lots.
func (s *Server) handleClient(conn net.Conn) {
	mc := netfloor.NewMsgConn(conn)
	defer mc.Close()

	// connCtx is the client's interest: every Submit inherits it, so the
	// connection dying mid-lot aborts those lots (journals keep progress).
	connCtx, connCancel := context.WithCancel(s.ctx)
	defer connCancel()

	var wg sync.WaitGroup
	defer wg.Wait()

	hb := s.opt.HeartbeatInterval
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-connCtx.Done():
				return
			case <-t.C:
				// The write budget is the idle window, not the beacon
				// period — a loaded scheduler must not look like a dead
				// peer.
				if err := writeClientMsg(mc, &clientMsg{Type: "heartbeat"}, s.opt.IdleTimeout); err != nil {
					conn.Close()
					return
				}
			}
		}
	}()

	// cancels maps each submitted lot to its cancel func so the client can
	// withdraw one lot without dropping the connection.
	var mu sync.Mutex
	cancels := make(map[string]context.CancelFunc)

	for {
		m, err := readClientMsg(mc, s.opt.IdleTimeout)
		if err != nil {
			return // connection gone: defer connCancel aborts running lots
		}
		switch m.Type {
		case "heartbeat":
		case "rollout":
			reply := &clientMsg{Type: "rollout", Lot: m.Lot}
			var opErr error
			switch m.Op {
			case "status":
			case "shadow":
				opErr = s.BeginShadow(m.Version)
			case "promote":
				opErr = s.Promote()
			case "demote":
				opErr = s.DemoteCandidate(m.Reason)
			default:
				opErr = fmt.Errorf("lotserver: unknown rollout op %q", m.Op)
			}
			if opErr != nil {
				reply.Code, reply.Err = CodeBadRequest, opErr.Error()
			} else {
				rs := s.RolloutStatus()
				reply.Rollout = &rs
			}
			if err := writeClientMsg(mc, reply, s.opt.IdleTimeout); err != nil {
				return
			}
		case "cancel":
			mu.Lock()
			if cancel := cancels[m.Lot]; cancel != nil {
				cancel()
			}
			mu.Unlock()
		case "submit":
			spec := LotSpec{ID: m.Lot, Seed: m.Seed, Devices: m.Devices}
			lotCtx, lotCancel := context.WithCancel(connCtx)
			h, err := s.Submit(lotCtx, spec)
			if err != nil {
				lotCancel()
				writeClientMsg(mc, &clientMsg{
					Type: "rejected", Lot: spec.ID, Code: rejectionCode(err), Err: err.Error(),
				}, s.opt.IdleTimeout)
				continue
			}
			mu.Lock()
			cancels[spec.ID] = lotCancel
			mu.Unlock()
			if err := writeClientMsg(mc, &clientMsg{Type: "accepted", Lot: spec.ID}, s.opt.IdleTimeout); err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer lotCancel()
				res, err := h.Wait(connCtx)
				mu.Lock()
				delete(cancels, spec.ID)
				mu.Unlock()
				if err != nil {
					writeClientMsg(mc, &clientMsg{
						Type: "aborted", Lot: spec.ID, Code: CodeAborted, Err: err.Error(),
					}, s.opt.IdleTimeout)
					return
				}
				writeClientMsg(mc, &clientMsg{
					Type: "done", Lot: spec.ID, Summary: summarize(res),
				}, s.opt.IdleTimeout)
			}()
		}
	}
}
