// Package lotserver is the long-lived multi-lot screening service: it
// turns "screen a lot" into "serve traffic". One server owns a shared rig
// (engine, device pool, fault model) plus the tester sites, and runs many
// concurrent lots from many clients over the netfloor wire protocol.
//
// The pillars, in the order they matter:
//
//   - Determinism per lot: a lot's bins are a pure function of (lot seed,
//     device index) — the same contract lotrun and netfloor enforce — so
//     any interleaving of any number of lots produces bins bit-identical
//     to a serial single-lot run. That is what makes the service testable.
//   - Isolation per lot: own seed, own fsync'd journal, own drift
//     watchdog, own per-site circuit breakers. One lot's panic, drift
//     alarm, poisoned devices or journal failure never touches another.
//   - Admission control: a bounded active set and a bounded queue; when
//     both are full the server sheds with an explicit ErrSaturated — the
//     backpressure is a typed answer, never a silent hang.
//   - Fairness: a round-robin scheduler interleaves assignments across
//     active lots, so a mega-lot cannot starve a small one.
//   - Graceful degradation: Shutdown is a staged drain (stop admitting →
//     finish in-flight devices → checkpoint journals → answer clients),
//     and every accepted lot remains crash-safe resumable from its
//     journal — resubmitting after a crash replays committed devices and
//     screens only the rest.
package lotserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diskfault"
	"repro/internal/floor"
	"repro/internal/lotrun"
	"repro/internal/modelreg"
	"repro/internal/netfloor"
	"repro/internal/parallel"
)

// Admission and lifecycle sentinel errors — clients match on these to
// tell backpressure (retry later) from rejection (fix the request).
var (
	// ErrDraining rejects submissions while the server is shutting down.
	ErrDraining = errors.New("lotserver: draining, not admitting lots")
	// ErrSaturated sheds a submission because both the active set and the
	// admission queue are full — explicit backpressure, retry later.
	ErrSaturated = errors.New("lotserver: saturated, admission queue full")
	// ErrDuplicateLot rejects a lot ID that is already admitted.
	ErrDuplicateLot = errors.New("lotserver: lot ID already admitted")
	// ErrAborted reports a lot that was cancelled before completing (client
	// cancel, journal failure, server drain); the journal keeps its
	// progress, so resubmitting resumes it.
	ErrAborted = errors.New("lotserver: lot aborted")
)

// LotSpec names one lot: an identity, a seed, and how many devices of the
// server's shared pool it screens (pool[0:Devices]). Two lots may share a
// seed; screening is a pure function of (seed, index), so their bins
// agree device for device.
type LotSpec struct {
	ID      string
	Seed    int64
	Devices int
}

// LotResult is one completed lot's outcome.
type LotResult struct {
	Spec   LotSpec
	Report *floor.LotReport
	Trips  []lotrun.TripEvent
	Alarms []lotrun.DriftAlarm
	// Replayed counts devices restored from the journal instead of
	// screened (non-zero when the lot resumed after a crash or drain).
	Replayed int
	Replay   lotrun.ReplayStats
	// Assigns counts remote assignment round-trips (including retries and
	// hedges); Dups counts duplicate results absorbed by the
	// exactly-once gate.
	Assigns int
	Dups    int
	// JournalDegraded marks a lot whose journal failed persistently: the
	// lot finished journal-less (bins intact and deterministic) but
	// cannot be crash-resumed. JournalErr carries the final journal
	// error; Wait still returns a nil error — degradation is visible
	// state, not failure.
	JournalDegraded bool
	JournalErr      string
}

// Options configures a Server.
type Options struct {
	// Engine is the shared screening engine; Pool the shared device pool a
	// lot draws its prefix from; Faults the shared insertion fault model
	// (may be nil). Remote sites must be built from the same rig — the
	// handshake pins the engine fingerprint, fault load and pool size.
	Engine *floor.Engine
	Pool   []*core.Device
	Faults *floor.FaultModel
	// JournalDir, when non-empty, holds one fsync'd journal per lot
	// (<ID>.journal) making every lot crash-safe resumable. Empty disables
	// journaling (benchmarks).
	JournalDir string
	// Sites are remote tester addresses; Dialer opens connections to them
	// (default TCPDialer; tests inject fault-wrapped pipes).
	Sites  []string
	Dialer netfloor.Dialer
	// LocalWorkers screens devices on the server itself (default 1 when no
	// Sites are configured, else 0).
	LocalWorkers int
	// MaxActiveLots bounds concurrently screening lots (default 4);
	// MaxQueuedLots bounds admitted-but-waiting lots (default 8). Beyond
	// both, Submit sheds with ErrSaturated.
	MaxActiveLots int
	MaxQueuedLots int
	// RequestTimeout bounds one remote assignment round-trip (default 60s);
	// HeartbeatInterval the beacon period (default 1s); IdleTimeout the
	// partition detector (default 4 × HeartbeatInterval).
	RequestTimeout    time.Duration
	HeartbeatInterval time.Duration
	IdleTimeout       time.Duration
	// RetryBase/RetryMax shape reconnect backoff (defaults 100ms / 5s);
	// NetSeed seeds its jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
	NetSeed   int64
	// Breaker tunes the per-(lot, site) circuit breakers; Watchdog the
	// per-lot drift watchdog.
	Breaker  lotrun.BreakerConfig
	Watchdog lotrun.WatchdogConfig
	// ModelRTTS and JournalSyncS are the modeled per-assignment round-trip
	// and per-record fsync costs charged to lot economics (defaults 2ms /
	// 0.5ms, as in netfloor and lotrun).
	ModelRTTS    float64
	JournalSyncS float64
	// FS is the filesystem seam journals are created, replayed and
	// written through (default diskfault.OS; chaos tests substitute a
	// seeded diskfault.FaultFS).
	FS diskfault.FS
	// JournalRetry bounds the per-record retry-with-backoff before a
	// lot's journal is declared dead and the lot degrades to journal-less
	// mode (zero value: 3 attempts, 1ms initial backoff).
	JournalRetry lotrun.RetryPolicy
	// Hook, when set, runs on a local worker before each device is
	// screened — chaos-test instrumentation for injecting panics outside
	// the supervised screening region. A hook panic is recovered by the
	// worker and the device requeued untouched, so committed bins are
	// unaffected.
	Hook func(lotID string, device int)
	// DeviceTimeout bounds one device's screening wall time (0 = none).
	DeviceTimeout time.Duration
	// Batch asks workers to screen up to this many devices per kernel call
	// (local workers) or per remote assignment (only to sites that
	// advertise batch support in their handshake ack; the effective size is
	// the minimum of the two, so legacy sites transparently stay at one
	// device per Assign). 0 or 1 screens serially. Bins are bit-identical
	// at every batch size.
	Batch int
	// Registry, when set, enables the versioned calibration lifecycle:
	// every admitted lot is pinned to exactly one model version for its
	// whole life (the ACTIVE version, or — for a deterministic fraction of
	// lots during a canary rollout — the candidate), journal headers and
	// remote assignments carry the version, and candidates are
	// shadow-scored against the incumbent before promotion. Nil keeps the
	// single-model behavior (Engine is the only calibration).
	Registry *modelreg.Registry
	// ShadowBounds are the divergence tolerances that gate promotion and
	// trigger automatic rollback (zero values take modelreg defaults).
	ShadowBounds modelreg.Bounds
	// CanaryFraction is the fraction of newly admitted lots pinned to the
	// candidate during the canary stage (default 0.25). The pick is a pure
	// function of the lot ID, so a kill-restart pins the same lots.
	CanaryFraction float64
	// Recalibrate, when set with Registry, turns each drift alarm into a
	// staged candidate version instead of stopping the world: the retrain
	// runs off the hot path and the result enters the registry for an
	// operator (or policy) to roll out. Failures are logged and screening
	// continues on the pinned models.
	Recalibrate func(lotID string, a lotrun.DriftAlarm) (*core.Calibration, *floor.Gate, error)
	// OnDrift, when set, receives every drift alarm with its lot ID.
	OnDrift func(lotID string, a lotrun.DriftAlarm)
	// Logf, when set, receives server progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Dialer == nil {
		o.Dialer = netfloor.TCPDialer
	}
	if o.LocalWorkers <= 0 && len(o.Sites) == 0 {
		o.LocalWorkers = 1
	}
	if o.MaxActiveLots <= 0 {
		o.MaxActiveLots = 4
	}
	if o.MaxQueuedLots <= 0 {
		o.MaxQueuedLots = 8
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 4 * o.HeartbeatInterval
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.ModelRTTS <= 0 {
		o.ModelRTTS = 2e-3
	}
	if o.JournalSyncS <= 0 {
		o.JournalSyncS = 0.5e-3
	}
	if o.CanaryFraction <= 0 || o.CanaryFraction > 1 {
		o.CanaryFraction = 0.25
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.FS == nil {
		o.FS = diskfault.OS
	}
}

// lotState is the admission lifecycle, guarded by Server.mu.
type lotState int

const (
	lotAdmitting lotState = iota // reserved, journal not yet open
	lotQueued                    // admitted, waiting for an active slot
	lotActive                    // in the scheduler rotation
	lotDone                      // finalized (result or error set)
)

// lot is one admitted lot's full isolated state.
type lot struct {
	spec        LotSpec
	journalPath string
	// modelVersion pins the lot's calibration for life (0 = the base
	// model); eng is the engine built for that version. Bins are a pure
	// function of (lot seed, device index, model version).
	modelVersion int
	eng          *floor.Engine

	disp *netfloor.Dispatcher
	out  chan floor.DeviceResult
	// stopDrain checkpoints the lot during a graceful server drain (closed
	// only after the scheduler is quiesced); cancelCh aborts it (client
	// cancel or journal failure).
	stopDrain  chan struct{}
	cancelCh   chan struct{}
	cancelOnce sync.Once
	cancelErr  error
	// done closes when the lot is finalized; result/err are then readable.
	done   chan struct{}
	result *LotResult
	err    error

	journal  *lotrun.Journal
	wd       *lotrun.Watchdog
	results  []*floor.DeviceResult
	needed   int
	replayed int
	replay   lotrun.ReplayStats

	state lotState // guarded by Server.mu

	mu       sync.Mutex // guards everything below
	degraded bool       // journal failed persistently; lot runs journal-less
	jerr     error      // wraps lotrun.ErrJournalDegraded
	breakers map[int]*lotrun.Breaker
	started  map[int]time.Time
	commits  int
	assigns  int // remote assignment round-trips
	dups     int
	alarms   []lotrun.DriftAlarm
}

// breakerFor returns the lot's circuit breaker for one worker ordinal,
// creating it on first use. lotrun.Breaker is single-owner; all access
// goes through the lot mutex because Status() reads states cross-thread.
func (l *lot) breakerFor(ordinal int, cfg lotrun.BreakerConfig) *lotrun.Breaker {
	if l.breakers[ordinal] == nil {
		l.breakers[ordinal] = lotrun.NewBreaker(cfg)
	}
	return l.breakers[ordinal]
}

// chargeProbe runs the breaker's open → half-open transition for this
// worker if it is quarantined; the next device is the probe insertion.
func (l *lot) chargeProbe(ordinal int, cfg lotrun.BreakerConfig) {
	l.mu.Lock()
	br := l.breakerFor(ordinal, cfg)
	if br.Open() {
		br.BeginProbe()
	}
	l.mu.Unlock()
}

// recordBreaker folds one result into this worker's breaker for the lot.
func (l *lot) recordBreaker(ordinal int, cfg lotrun.BreakerConfig, res floor.DeviceResult) {
	l.mu.Lock()
	l.breakerFor(ordinal, cfg).Record(res)
	l.mu.Unlock()
}

// markAssigned stamps the device's first assignment time (the latency
// clock) and counts remote round-trips.
func (l *lot) markAssigned(idx int, remote bool) {
	l.mu.Lock()
	if _, ok := l.started[idx]; !ok {
		l.started[idx] = time.Now()
	}
	if remote {
		l.assigns++
	}
	l.mu.Unlock()
}

// markAssignedBatch stamps each device's first assignment time; a batched
// remote assignment counts as one round-trip regardless of its size, which
// is exactly the economics batching buys.
func (l *lot) markAssignedBatch(idxs []int, remote bool) {
	l.mu.Lock()
	for _, idx := range idxs {
		if _, ok := l.started[idx]; !ok {
			l.started[idx] = time.Now()
		}
	}
	if remote {
		l.assigns++
	}
	l.mu.Unlock()
}

func (l *lot) addDup() {
	l.mu.Lock()
	l.dups++
	l.mu.Unlock()
}

// setDegraded flips the lot into journal-less degraded mode; err wraps
// lotrun.ErrJournalDegraded.
func (l *lot) setDegraded(err error) {
	l.mu.Lock()
	l.degraded = true
	l.jerr = err
	l.mu.Unlock()
}

// degradedState reads the degraded flag and its error.
func (l *lot) degradedState() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded, l.jerr
}

func (l *lot) cancel(err error) {
	l.cancelOnce.Do(func() {
		l.cancelErr = err
		close(l.cancelCh)
	})
}

// LotHandle is a submitted lot's future.
type LotHandle struct{ l *lot }

// ID names the lot.
func (h *LotHandle) ID() string { return h.l.spec.ID }

// Done closes when the lot finalizes (completed or aborted).
func (h *LotHandle) Done() <-chan struct{} { return h.l.done }

// Wait blocks for the lot's outcome. On abort the returned error wraps
// ErrAborted and the journal keeps the lot's progress for a resume.
func (h *LotHandle) Wait(ctx context.Context) (*LotResult, error) {
	select {
	case <-h.l.done:
		return h.l.result, h.l.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// siteStats is one remote site's connection history.
type siteStats struct {
	addr string

	mu         sync.Mutex
	connected  bool
	assigns    int
	retries    int
	reassigns  int
	reconnects int
	dialFails  int
	drainFails int
	abandoned  string
	// models is every calibration version this site has screened under
	// (the base model, version 0, is implicit); modelSends counts artifact
	// deliveries in answer to the site's fetches.
	models     map[int]bool
	modelSends int
}

func (st *siteStats) update(f func(*siteStats)) {
	st.mu.Lock()
	f(st)
	st.mu.Unlock()
}

// Server is the multi-lot screening service.
type Server struct {
	opt   Options
	hello netfloor.Hello
	ctx   context.Context
	stop  context.CancelFunc
	start time.Time

	sched *scheduler
	lat   *latRing
	sites []*siteStats
	wg    sync.WaitGroup

	mu        sync.Mutex
	lots      map[string]*lot // admitted: admitting + queued + active
	queue     []*lot
	active    int
	draining  bool
	sheds     int // ErrSaturated rejections
	dupRejs   int // ErrDuplicateLot rejections
	drainRejs int // ErrDraining rejections
	lotsDone  int // lots finalized successfully
	lotsDeg   int // lots that degraded to journal-less mode
	devices   int // devices committed across all lots

	// Versioned-calibration state (Registry mode), guarded by romu. Lock
	// ordering: romu may be taken while holding no other server lock; the
	// registry's own mutex nests inside romu.
	romu      sync.Mutex
	engines   map[int]*floor.Engine // built versioned engines (never 0)
	payloads  map[int][]byte        // encoded artifacts for wire delivery
	shadow    *modelreg.ShadowScorer
	shadowQ   chan shadowItem
	staging   bool // a drift-alarm recalibration is in flight
	recals    int  // candidates staged from drift alarms
	rollbacks int  // automatic demotions
}

// shadowItem is one committed incumbent result queued for shadow scoring.
type shadowItem struct {
	seed int64
	res  floor.DeviceResult
}

// New validates the options, starts the site loops and local workers, and
// returns a serving Server. Pair with Shutdown (graceful) or Kill (hard).
func New(opt Options) (*Server, error) {
	if opt.Engine == nil {
		return nil, fmt.Errorf("lotserver: needs an engine")
	}
	if err := opt.Engine.Validate(); err != nil {
		return nil, err
	}
	if len(opt.Pool) == 0 {
		return nil, fmt.Errorf("lotserver: empty device pool")
	}
	if opt.Faults != nil {
		if err := opt.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	opt.defaults()
	if opt.JournalDir != "" {
		if err := opt.FS.MkdirAll(opt.JournalDir, 0o755); err != nil {
			return nil, fmt.Errorf("lotserver: journal dir: %w", err)
		}
	}
	faultP := 0.0
	if opt.Faults != nil {
		faultP = opt.Faults.TotalP()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt: opt,
		hello: netfloor.Hello{
			Version:     netfloor.ProtocolVersion,
			Devices:     len(opt.Pool),
			FaultP:      faultP,
			Fingerprint: opt.Engine.Fingerprint(),
			MultiLot:    true,
		},
		ctx:      ctx,
		stop:     cancel,
		start:    time.Now(),
		sched:    &scheduler{},
		lat:      newLatRing(4096),
		lots:     make(map[string]*lot),
		engines:  make(map[int]*floor.Engine),
		payloads: make(map[int][]byte),
	}
	if opt.Registry != nil {
		s.shadowQ = make(chan shadowItem, 256)
		if err := s.resumeRollout(); err != nil {
			cancel()
			return nil, err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.shadowWorker()
		}()
	}
	for si, addr := range opt.Sites {
		st := &siteStats{addr: addr}
		s.sites = append(s.sites, st)
		s.wg.Add(1)
		go func(si int, addr string, st *siteStats) {
			defer s.wg.Done()
			s.siteLoop(si, addr, st)
		}(si, addr, st)
	}
	for w := 0; w < opt.LocalWorkers; w++ {
		ordinal := len(opt.Sites) + w
		s.wg.Add(1)
		go func(ordinal int) {
			defer s.wg.Done()
			s.localWorker(ordinal)
		}(ordinal)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// pollInterval paces idle workers; short and fixed — an idle server
// spinning once a millisecond is cheaper than a lot waiting a heartbeat.
const pollInterval = time.Millisecond

// validSpec gates the lot identity. The ID becomes a journal filename, so
// its alphabet is restricted — no separators, no traversal.
func (s *Server) validSpec(spec LotSpec) error {
	if spec.ID == "" || len(spec.ID) > 64 {
		return fmt.Errorf("lotserver: lot ID must be 1–64 characters")
	}
	for _, r := range spec.ID {
		ok := r == '.' || r == '_' || r == '-' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return fmt.Errorf("lotserver: lot ID %q: only [A-Za-z0-9._-] allowed", spec.ID)
		}
	}
	if spec.Devices < 1 || spec.Devices > len(s.opt.Pool) {
		return fmt.Errorf("lotserver: lot of %d devices outside pool [1, %d]", spec.Devices, len(s.opt.Pool))
	}
	return nil
}

// Submit admits one lot. Admission is two-phase: reserve the ID and a
// capacity slot under the lock, then do the journal IO (create, or replay
// for a resume) unlocked, then finish admission — so a slow fsync never
// serializes the front door, and a duplicate ID is caught immediately.
// ctx is the client's interest: cancelling it aborts the lot (the journal
// keeps its progress).
func (s *Server) Submit(ctx context.Context, spec LotSpec) (*LotHandle, error) {
	if err := s.validSpec(spec); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	l := &lot{
		spec:      spec,
		out:       nil, // sized after replay
		stopDrain: make(chan struct{}),
		cancelCh:  make(chan struct{}),
		done:      make(chan struct{}),
		results:   make([]*floor.DeviceResult, spec.Devices),
		state:     lotAdmitting,
		breakers:  make(map[int]*lotrun.Breaker),
		started:   make(map[int]time.Time),
	}

	// Phase one: reserve.
	s.mu.Lock()
	if s.draining {
		s.drainRejs++
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if _, dup := s.lots[spec.ID]; dup {
		s.dupRejs++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateLot, spec.ID)
	}
	if active, queued := s.active, len(s.queue); active+queued >= s.opt.MaxActiveLots+s.opt.MaxQueuedLots {
		s.sheds++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%d active, %d queued)", ErrSaturated, active, queued)
	}
	s.lots[spec.ID] = l
	s.mu.Unlock()

	// Phase two: journal IO, unlocked.
	if err := s.openJournal(l); err != nil {
		s.mu.Lock()
		delete(s.lots, spec.ID)
		s.mu.Unlock()
		return nil, err
	}

	// Phase three: finish admission. The only thing that can have changed
	// is a drain starting mid-IO.
	s.mu.Lock()
	if s.draining {
		delete(s.lots, spec.ID)
		s.drainRejs++
		s.mu.Unlock()
		if l.journal != nil {
			l.journal.Close() // progress stays on disk for a resume
		}
		return nil, ErrDraining
	}
	if s.active < s.opt.MaxActiveLots {
		s.activateLocked(l)
	} else {
		l.state = lotQueued
		s.queue = append(s.queue, l)
	}
	s.mu.Unlock()

	// Client-cancel watcher: the submitting context's death aborts the lot.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-ctx.Done():
			s.cancelLot(l, fmt.Errorf("%w: client cancelled: %v", ErrAborted, ctx.Err()))
		case <-l.done:
		case <-s.ctx.Done():
		}
	}()

	s.logf("lot %s admitted: seed %d, %d devices (%d replayed)",
		spec.ID, spec.Seed, spec.Devices, l.replayed)
	return &LotHandle{l: l}, nil
}

// openJournal creates the lot's journal, or — when a journal for this ID
// already exists — replays it and resumes: committed devices are restored
// and only the remainder will be screened. Identity mismatches (same ID,
// different lot) are rejected rather than resumed.
func (s *Server) openJournal(l *lot) error {
	pending := make([]int, 0, l.spec.Devices)
	faultP := s.hello.FaultP
	if s.opt.JournalDir == "" {
		if err := s.pinLot(l, s.pinVersion(l.spec.ID)); err != nil {
			return err
		}
		for i := 0; i < l.spec.Devices; i++ {
			pending = append(pending, i)
		}
		l.disp = netfloor.NewDispatcher(pending, l.spec.Devices)
		l.out = make(chan floor.DeviceResult, l.spec.Devices)
		l.needed = len(pending)
		l.initWatchdog(s)
		return nil
	}
	l.journalPath = filepath.Join(s.opt.JournalDir, l.spec.ID+".journal")
	if _, err := s.opt.FS.Stat(l.journalPath); err == nil {
		hdr, done, validEnd, stats, err := lotrun.ReplayJournalFS(s.opt.FS, l.journalPath)
		if err != nil {
			return fmt.Errorf("lotserver: lot %s: %w", l.spec.ID, err)
		}
		if hdr.LotSeed != l.spec.Seed || hdr.Devices != l.spec.Devices || hdr.FaultP != faultP {
			return fmt.Errorf("lotserver: lot %s: journal is for a different lot (seed %d devices %d faultp %g; submitted seed %d devices %d faultp %g)",
				l.spec.ID, hdr.LotSeed, hdr.Devices, hdr.FaultP, l.spec.Seed, l.spec.Devices, faultP)
		}
		// The journal's model version is authoritative: the lot keeps the
		// calibration it started under, whatever rollout has happened since.
		if err := s.pinLot(l, hdr.ModelVersion); err != nil {
			return err
		}
		if hdr.Fingerprint != 0 && hdr.Fingerprint != l.eng.Fingerprint() {
			return fmt.Errorf("lotserver: lot %s: journal was written by a differently calibrated engine (fingerprint %016x, model v%d here hashes to %016x): %w",
				l.spec.ID, hdr.Fingerprint, l.modelVersion, l.eng.Fingerprint(), lotrun.ErrModelMismatch)
		}
		for i, res := range done {
			res := res
			l.results[i] = &res
		}
		l.replayed = stats.Records
		l.replay = stats
		if jr, rerr := lotrun.ResumeJournalFS(s.opt.FS, l.journalPath, validEnd); rerr != nil {
			// Replay restored every committed device; only the append
			// side is broken. Run the remainder degraded rather than
			// refuse the lot.
			s.degradeLot(l, rerr)
		} else {
			l.journal = jr
		}
	} else {
		if err := s.pinLot(l, s.pinVersion(l.spec.ID)); err != nil {
			return err
		}
		jr, err := lotrun.CreateJournalFS(s.opt.FS, l.journalPath, lotrun.JournalHeader{
			Type: "header", Version: lotrun.JournalVersion,
			LotSeed: l.spec.Seed, Devices: l.spec.Devices, FaultP: faultP,
			Fingerprint:  l.eng.Fingerprint(),
			ModelVersion: l.modelVersion,
		})
		if err != nil {
			// A journal that cannot even be created is the same storage
			// fault as one dying mid-lot: admit the lot in degraded
			// journal-less mode rather than reject it.
			s.degradeLot(l, err)
		} else {
			l.journal = jr
		}
	}
	for i := 0; i < l.spec.Devices; i++ {
		if l.results[i] == nil {
			pending = append(pending, i)
		}
	}
	l.disp = netfloor.NewDispatcher(pending, l.spec.Devices)
	l.out = make(chan floor.DeviceResult, l.spec.Devices)
	l.needed = len(pending)
	l.initWatchdog(s)
	return nil
}

// pinLot resolves and pins one calibration version for the lot's life.
func (s *Server) pinLot(l *lot, version int) error {
	eng, err := s.engineFor(version)
	if err != nil {
		return fmt.Errorf("lotserver: lot %s: %w", l.spec.ID, err)
	}
	l.modelVersion, l.eng = version, eng
	return nil
}

func (l *lot) initWatchdog(s *Server) {
	// The watchdog baselines against the pinned model's gate: drift is
	// measured relative to the calibration actually screening the lot.
	if l.eng.Gate != nil && !s.opt.Watchdog.Disabled {
		l.wd = lotrun.NewWatchdog(l.eng.Gate, s.opt.Watchdog)
	}
}

// activateLocked puts the lot into the scheduler rotation and starts its
// collector. Caller holds s.mu.
func (s *Server) activateLocked(l *lot) {
	l.state = lotActive
	s.active++
	s.sched.add(l)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runLot(l)
	}()
}

// runLot is the lot's collector: the single goroutine that commits
// results — journal, watchdog, latency — until the lot completes, is
// cancelled, or the server drains or dies. Exactly-once is already
// guaranteed upstream (Dispatcher.Complete), so everything read here
// commits.
func (s *Server) runLot(l *lot) {
	received := 0
	for received < l.needed {
		select {
		case res := <-l.out:
			// A journal failure inside commit degrades the lot to
			// journal-less mode (typed, visible in the report and wire
			// summary); the lot itself keeps going — it no longer dies.
			s.commit(l, res)
			received++
		case <-l.cancelCh:
			// Client cancel (or deliberate abort): flush what workers
			// already delivered so the journal holds maximum progress,
			// then finalize as aborted.
			s.flush(l)
			s.finishLot(l, nil, l.cancelErr)
			return
		case <-l.stopDrain:
			// Staged server drain. The scheduler is paused and quiesced, so
			// every result is already buffered: flush, checkpoint, answer.
			s.flush(l)
			if l.remainingUncommitted() == 0 {
				break // drain raced completion; fall through to finalize
			}
			err := fmt.Errorf("%w: server draining (%d of %d devices committed)",
				ErrAborted, l.committedCount(), l.spec.Devices)
			if deg, jerr := l.degradedState(); deg {
				// The journal died before the drain could checkpoint this
				// lot: its progress is NOT on disk and a resubmit will
				// re-screen from scratch. The waiting client gets the
				// typed degradation instead of a silent partial drain.
				err = fmt.Errorf("%w: server draining at %d of %d devices with dead journal (%v): %w",
					ErrAborted, l.committedCount(), l.spec.Devices, jerr, lotrun.ErrJournalDegraded)
			}
			s.finishLot(l, nil, err)
			return
		case <-s.ctx.Done():
			// Hard stop (Kill): journals are fsync'd per record, so closing
			// without a flush models a crash — the resume path recovers.
			s.finishLot(l, nil, fmt.Errorf("%w: server stopped: %v", ErrAborted, s.ctx.Err()))
			return
		}
		if l.remainingUncommitted() == 0 {
			break
		}
	}
	s.finalize(l)
}

// flush commits every result already buffered in the lot's channel. A
// journal failure mid-flush degrades the lot (typed, surfaced to the
// waiting client by the drain path) and keeps folding the remaining
// results — buffered work is never silently dropped.
func (s *Server) flush(l *lot) {
	for {
		select {
		case res := <-l.out:
			s.commit(l, res)
		default:
			return
		}
	}
}

func (l *lot) committedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commits + l.replayed
}

func (l *lot) remainingUncommitted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spec.Devices - l.replayed - l.commits
}

// degradeLot flips one lot into journal-less degraded mode: its journal
// (if any) is closed, the typed error recorded, and the server-wide
// counter bumped. The lot keeps screening — bins stay a pure function of
// (seed, index, version) — but crash-resume is disabled.
func (s *Server) degradeLot(l *lot, cause error) {
	if l.journal != nil {
		l.journal.Close()
		l.journal = nil
	}
	l.setDegraded(fmt.Errorf("%w: %v", lotrun.ErrJournalDegraded, cause))
	s.mu.Lock()
	s.lotsDeg++
	s.mu.Unlock()
	s.logf("lot %s: journal degraded, continuing journal-less: %v", l.spec.ID, cause)
}

// commit journals one result and folds it into the lot's running state.
// Runs only on the lot's collector goroutine. A persistent journal
// failure (after bounded retry) degrades the lot to journal-less mode
// instead of failing the commit — the result is always folded.
func (s *Server) commit(l *lot, res floor.DeviceResult) {
	if l.journal != nil {
		if err := l.journal.CommitRetry(res, s.opt.JournalRetry); err != nil {
			s.degradeLot(l, err)
		}
	}
	r := res
	l.results[res.Index] = &r
	l.mu.Lock()
	l.commits++
	startAt := l.started[res.Index]
	l.mu.Unlock()
	if !startAt.IsZero() {
		s.lat.add(float64(time.Since(startAt)) / float64(time.Millisecond))
	}
	s.mu.Lock()
	s.devices++
	s.mu.Unlock()
	if l.wd != nil && res.CleanD >= 0 {
		if alarm := l.wd.Observe(res.Index, res.CleanD); alarm != nil {
			l.mu.Lock()
			l.alarms = append(l.alarms, *alarm)
			l.mu.Unlock()
			s.logf("lot %s: drift alarm (%s) at device %d", l.spec.ID, alarm.Detector, alarm.Device)
			if s.opt.OnDrift != nil {
				s.opt.OnDrift(l.spec.ID, *alarm)
			}
			s.onDriftAlarm(l, *alarm)
		}
	}
	s.feedShadow(l, res)
}

// finalize builds the completed lot's report — folding results in index
// order, so bins are independent of which worker screened what, in what
// order, interleaved with whichever other lots.
func (s *Server) finalize(l *lot) {
	rep := l.eng.NewReport(l.spec.Devices)
	for i := 0; i < l.spec.Devices; i++ {
		r := l.results[i]
		if r == nil {
			s.finishLot(l, nil, fmt.Errorf("%w: device %d was never screened", ErrAborted, i))
			return
		}
		rep.Fold(*r)
	}
	deg, jerr := l.degradedState()
	if l.journal != nil || deg {
		rep.Load.JournalS = float64(l.spec.Devices) * s.opt.JournalSyncS
	}
	if deg {
		rep.JournalDegraded = true
		rep.JournalErr = jerr.Error()
	}
	l.mu.Lock()
	assigns, dups := l.assigns, l.dups
	alarms := append([]lotrun.DriftAlarm(nil), l.alarms...)
	var trips []lotrun.TripEvent
	for _, br := range l.breakers {
		rep.Load.QuarantineS += br.QuarantineTotalS()
		trips = append(trips, br.Events()...)
	}
	l.mu.Unlock()
	sort.Slice(trips, func(i, j int) bool { return trips[i].AfterDevice < trips[j].AfterDevice })
	rep.Load.NetworkS = float64(assigns) * s.opt.ModelRTTS
	if err := l.eng.Finish(rep); err != nil {
		s.finishLot(l, nil, fmt.Errorf("%w: %v", ErrAborted, err))
		return
	}
	result := &LotResult{
		Spec: l.spec, Report: rep, Trips: trips, Alarms: alarms,
		Replayed: l.replayed, Replay: l.replay, Assigns: assigns, Dups: dups,
	}
	if deg {
		result.JournalDegraded = true
		result.JournalErr = jerr.Error()
	}
	s.finishLot(l, result, nil)
}

// finishLot closes the journal, retires the lot's slot (promoting a
// queued lot if one is waiting), and wakes every waiter.
func (s *Server) finishLot(l *lot, result *LotResult, err error) {
	if l.journal != nil {
		l.journal.Close()
	}
	l.result, l.err = result, err
	s.mu.Lock()
	wasActive := l.state == lotActive
	l.state = lotDone
	delete(s.lots, l.spec.ID)
	if wasActive {
		s.active--
		s.sched.remove(l)
		if !s.draining && len(s.queue) > 0 && s.active < s.opt.MaxActiveLots {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.activateLocked(next)
		}
	}
	if err == nil {
		s.lotsDone++
	}
	s.mu.Unlock()
	close(l.done)
	if err != nil {
		s.logf("lot %s: %v", l.spec.ID, err)
	} else if result != nil && result.JournalDegraded {
		s.logf("lot %s: complete in DEGRADED journal-less mode (%d devices, %d replayed): %s",
			l.spec.ID, l.spec.Devices, l.replayed, result.JournalErr)
	} else {
		s.logf("lot %s: complete (%d devices, %d replayed)", l.spec.ID, l.spec.Devices, l.replayed)
	}
}

// cancelLot aborts one lot without touching any other: an active lot's
// collector flushes and checkpoints, a queued lot is simply withdrawn.
func (s *Server) cancelLot(l *lot, reason error) {
	s.mu.Lock()
	switch l.state {
	case lotDone:
		s.mu.Unlock()
		return
	case lotQueued:
		for i, x := range s.queue {
			if x == l {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		l.state = lotDone
		delete(s.lots, l.spec.ID)
		s.mu.Unlock()
		if l.journal != nil {
			l.journal.Close()
		}
		l.err = reason
		close(l.done)
		s.logf("lot %s: %v", l.spec.ID, reason)
		return
	default: // active (or still admitting): the collector owns the teardown
		s.mu.Unlock()
		l.cancel(reason)
	}
}

// lookupLot resolves a lot ID to its live lot (nil when unknown or
// already finalized) — the router for stray multi-lot results.
func (s *Server) lookupLot(id string) *lot {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lots[id]
	if l == nil || l.state != lotActive {
		return nil
	}
	return l
}

// deliver routes one screened result through the lot's exactly-once gate.
func (s *Server) deliver(l *lot, res floor.DeviceResult, ordinal int) bool {
	if !l.disp.Complete(res.Index) {
		l.addDup()
		return false
	}
	res.Site = ordinal
	l.out <- res // buffered to lot size: never blocks
	return true
}

// runHook runs the chaos-test hook for one (lot, device) and recovers a
// panic from it; false means the hook panicked and the device must be
// requeued rather than screened.
func (s *Server) runHook(l *lot, idx int) (ok bool) {
	if s.opt.Hook == nil {
		return true
	}
	defer func() {
		if r := recover(); r != nil {
			s.logf("lot %s: hook panic at device %d (device requeued): %v", l.spec.ID, idx, r)
			ok = false
		}
	}()
	s.opt.Hook(l.spec.ID, idx)
	return true
}

// localWorker screens devices on the server itself, pulling fairly across
// lots exactly like a remote site does.
func (s *Server) localWorker(ordinal int) {
	for {
		if s.ctx.Err() != nil {
			return
		}
		if s.opt.Batch > 1 {
			if l, idxs, ok := s.sched.nextBatch(s.opt.Batch); ok {
				if !s.screenLocalBatch(ordinal, l, idxs) {
					return
				}
				continue
			}
			// Every lot's fresh queue is dry: fall through to the serial
			// pull, which is also the only path allowed to hedge.
		}
		l, idx, _, ok := s.sched.next()
		if !ok {
			select {
			case <-s.ctx.Done():
				return
			case <-time.After(pollInterval):
			}
			continue
		}
		l.markAssigned(idx, false)
		if !s.runHook(l, idx) {
			// The chaos hook panicked before screening started: requeue
			// the device untouched. It will be re-screened from the same
			// (seed, index), so committed bins are unaffected.
			l.disp.Release(idx)
			s.sched.done()
			continue
		}
		l.chargeProbe(ordinal, s.opt.Breaker)
		res := netfloor.ScreenSupervised(s.ctx, l.eng, l.spec.Seed, idx,
			s.opt.Pool[idx], s.opt.Faults, s.opt.DeviceTimeout)
		if res.Err != "" && s.ctx.Err() != nil {
			l.disp.Release(idx) // truncated by shutdown: never commit
			s.sched.done()
			return
		}
		l.recordBreaker(ordinal, s.opt.Breaker, res)
		s.deliver(l, res, ordinal)
		l.disp.Release(idx)
		s.sched.done()
	}
}

// screenLocalBatch screens one batched scheduler pull through the batched
// kernel on the server itself; false means the server is shutting down and
// the worker should exit.
func (s *Server) screenLocalBatch(ordinal int, l *lot, idxs []int) bool {
	l.markAssignedBatch(idxs, false)
	if s.opt.Hook != nil {
		// Run the chaos hook per device before the batch forms; a panicked
		// device is requeued untouched and drops out of this batch.
		kept := idxs[:0]
		for _, idx := range idxs {
			if s.runHook(l, idx) {
				kept = append(kept, idx)
			} else {
				l.disp.Release(idx)
				s.sched.done()
			}
		}
		idxs = kept
		if len(idxs) == 0 {
			return true
		}
	}
	l.chargeProbe(ordinal, s.opt.Breaker)
	batch := make([]floor.BatchDevice, len(idxs))
	for i, idx := range idxs {
		batch[i] = floor.BatchDevice{Index: idx, Device: s.opt.Pool[idx], Seed: core.DeviceSeed(l.spec.Seed, idx)}
	}
	results := netfloor.ScreenBatchSupervised(s.ctx, l.eng, batch, s.opt.Faults, s.opt.DeviceTimeout)
	alive := true
	for _, res := range results {
		if res.Err != "" && s.ctx.Err() != nil {
			l.disp.Release(res.Index) // truncated by shutdown: never commit
			alive = false
			continue
		}
		l.recordBreaker(ordinal, s.opt.Breaker, res)
		s.deliver(l, res, ordinal)
		l.disp.Release(res.Index)
	}
	s.sched.doneN(len(idxs))
	return alive
}

var (
	errOverdue     = errors.New("lotserver: assignment overdue")
	errConnDead    = errors.New("lotserver: connection dead")
	errSiteDrained = errors.New("lotserver: site announced drain")
)

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// siteLoop owns one remote site for the server's lifetime: connect with a
// multi-lot handshake, serve assignments from the fair scheduler,
// reconnect with jittered backoff on any failure.
func (s *Server) siteLoop(si int, addr string, st *siteStats) {
	jitter := rand.New(rand.NewSource(parallel.SubSeed(s.opt.NetSeed, si)))
	attempt := 0
	connected := false
	for {
		if s.ctx.Err() != nil {
			return
		}
		mc, siteBatch, err := s.connect(addr)
		if err != nil {
			if s.ctx.Err() != nil {
				return
			}
			var perm *permanentError
			if errors.As(err, &perm) {
				st.update(func(st *siteStats) { st.abandoned = perm.msg })
				s.logf("site %d (%s): abandoned: %s", si, addr, perm.msg)
				return
			}
			st.update(func(st *siteStats) { st.dialFails++ })
			attempt++
			if !s.backoffSleep(jitter, attempt) {
				return
			}
			continue
		}
		if connected {
			st.update(func(st *siteStats) { st.reconnects++ })
		}
		connected = true
		attempt = 0
		st.update(func(st *siteStats) { st.connected = true })
		kBatch := s.opt.Batch
		if siteBatch < kBatch {
			kBatch = siteBatch
		}
		err = s.serveSite(si, st, mc, kBatch)
		st.update(func(st *siteStats) { st.connected = false })
		mc.Close()
		if s.ctx.Err() != nil {
			return
		}
		s.logf("site %d (%s): connection lost (%v), reconnecting", si, addr, err)
		attempt++
		if !s.backoffSleep(jitter, attempt) {
			return
		}
	}
}

func (s *Server) backoffSleep(jitter *rand.Rand, attempt int) bool {
	d := float64(s.opt.RetryBase)
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= float64(s.opt.RetryMax) {
			d = float64(s.opt.RetryMax)
			break
		}
	}
	d *= 1 + 0.5*jitter.Float64()
	select {
	case <-time.After(time.Duration(d)):
		return true
	case <-s.ctx.Done():
		return false
	}
}

// permanentError marks a site that must not be redialed (identity
// mismatch: its engine would bin differently).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// connect dials and handshakes one site in multi-lot mode. The second
// return is the site's advertised batch capability (1 for legacy sites).
func (s *Server) connect(addr string) (*netfloor.MsgConn, int, error) {
	dctx, cancel := context.WithTimeout(s.ctx, s.opt.RequestTimeout)
	defer cancel()
	conn, err := s.opt.Dialer(dctx, addr)
	if err != nil {
		return nil, 0, err
	}
	mc := netfloor.NewMsgConn(conn)
	hello := s.hello
	if err := mc.Write(&netfloor.Envelope{Type: netfloor.MsgHello, Hello: &hello}, s.opt.IdleTimeout); err != nil {
		mc.Close()
		return nil, 0, err
	}
	env, err := mc.Read(s.opt.IdleTimeout)
	if err != nil {
		mc.Close()
		return nil, 0, err
	}
	switch env.Type {
	case netfloor.MsgHelloAck:
		if env.Hello == nil || *env.Hello != hello {
			mc.Close()
			return nil, 0, &permanentError{msg: fmt.Sprintf("site %s acked a different identity", addr)}
		}
		siteBatch := env.Batch
		if siteBatch < 1 {
			siteBatch = 1
		}
		return mc, siteBatch, nil
	case netfloor.MsgError:
		mc.Close()
		return nil, 0, &permanentError{msg: env.Err}
	default:
		mc.Close()
		return nil, 0, fmt.Errorf("lotserver: handshake: expected hello_ack, got %s", env.Type)
	}
}

// serveSite drives one healthy connection: pull (lot, device) pairs from
// the fair scheduler, assign, await. Stray results — from overdue retries
// or other lots' earlier assignments — are routed to their lots by ID.
// kBatch is the negotiated assignment size (min of Options.Batch and the
// site's advertised capability); above 1 the loop prefers batched frames
// and drops to the single-device path only when fresh queues are dry.
func (s *Server) serveSite(si int, st *siteStats, mc *netfloor.MsgConn, kBatch int) error {
	var seq uint64
	lastHeard := time.Now()
	lastBeat := time.Now()
	for {
		if s.ctx.Err() != nil {
			s.drainConn(si, st, mc)
			return s.ctx.Err()
		}
		if kBatch > 1 {
			if l, idxs, ok := s.sched.nextBatch(kBatch); ok {
				seq++
				l.markAssignedBatch(idxs, true)
				l.chargeProbe(siteOrdinal(si), s.opt.Breaker)
				st.update(func(st *siteStats) {
					st.assigns++
					if l.modelVersion != 0 {
						if st.models == nil {
							st.models = make(map[int]bool)
						}
						st.models[l.modelVersion] = true
					}
				})
				err := s.assignAwaitBatch(si, st, mc, l, idxs, seq, &lastHeard)
				requeued := false
				for _, idx := range idxs {
					if l.disp.Release(idx) {
						requeued = true
					}
				}
				s.sched.doneN(len(idxs))
				if err == nil {
					continue
				}
				st.update(func(st *siteStats) {
					st.retries++
					if requeued {
						st.reassigns++
					}
				})
				if errors.Is(err, errOverdue) {
					continue
				}
				return err
			}
			// Fresh queues dry everywhere: fall through to the serial pull,
			// which is also the only path allowed to hedge stragglers.
		}
		l, idx, _, ok := s.sched.next()
		if !ok {
			// Idle: beacon, and keep reading (draining the site's own
			// heartbeats; with a synchronous in-memory transport an unread
			// beacon would block the site).
			if time.Since(lastBeat) >= s.opt.HeartbeatInterval {
				if err := mc.Write(&netfloor.Envelope{Type: netfloor.MsgHeartbeat}, s.opt.HeartbeatInterval); err != nil {
					return err
				}
				lastBeat = time.Now()
			}
			env, err := mc.Read(s.opt.HeartbeatInterval)
			if err != nil {
				if isTimeout(err) {
					if time.Since(lastHeard) > s.opt.IdleTimeout {
						return errConnDead
					}
					continue
				}
				return err
			}
			lastHeard = time.Now()
			if env.Type == netfloor.MsgDrain {
				return errSiteDrained
			}
			if env.Type == netfloor.MsgModelReq {
				if err := s.answerModelReq(st, mc, env.Model); err != nil {
					return err
				}
				continue
			}
			s.routeStray(si, env)
			continue
		}

		seq++
		l.markAssigned(idx, true)
		l.chargeProbe(siteOrdinal(si), s.opt.Breaker)
		st.update(func(st *siteStats) {
			st.assigns++
			if l.modelVersion != 0 {
				if st.models == nil {
					st.models = make(map[int]bool)
				}
				st.models[l.modelVersion] = true
			}
		})
		err := s.assignAwait(si, st, mc, l, idx, seq, &lastHeard)
		requeued := l.disp.Release(idx)
		s.sched.done()
		if err == nil {
			continue
		}
		st.update(func(st *siteStats) {
			st.retries++
			if requeued {
				st.reassigns++
			}
		})
		if errors.Is(err, errOverdue) {
			// Connection alive but the result never came (dropped frame):
			// retry on the same connection; the site's cache makes the
			// re-screen free.
			continue
		}
		return err
	}
}

// siteOrdinal is the worker ordinal of remote site si (locals follow).
func siteOrdinal(si int) int { return si }

// assignAwait sends one assignment and waits for its result, absorbing
// heartbeats and routing stray results meanwhile.
func (s *Server) assignAwait(si int, st *siteStats, mc *netfloor.MsgConn,
	l *lot, idx int, seq uint64, lastHeard *time.Time) error {

	assign := &netfloor.Envelope{
		Type: netfloor.MsgAssign, Seq: seq, Device: idx,
		Seed: l.spec.Seed, Lot: l.spec.ID,
	}
	if l.modelVersion != 0 {
		assign.Model = l.modelVersion
		assign.ModelFP = l.eng.Fingerprint()
	}
	if err := mc.Write(assign, s.opt.IdleTimeout); err != nil {
		return err
	}
	deadline := time.Now().Add(s.opt.RequestTimeout)
	for {
		if time.Now().After(deadline) {
			return errOverdue
		}
		if s.ctx.Err() != nil {
			return errOverdue
		}
		env, err := mc.Read(s.opt.HeartbeatInterval)
		if err != nil {
			if isTimeout(err) {
				if time.Since(*lastHeard) > s.opt.IdleTimeout {
					return errConnDead
				}
				continue
			}
			return err
		}
		*lastHeard = time.Now()
		switch env.Type {
		case netfloor.MsgHeartbeat:
		case netfloor.MsgResult:
			if env.Result == nil {
				continue
			}
			if env.Lot == l.spec.ID && env.Device == idx && env.Seq == seq {
				l.recordBreaker(siteOrdinal(si), s.opt.Breaker, *env.Result)
				s.deliver(l, *env.Result, siteOrdinal(si))
				return nil
			}
			s.routeStray(si, env)
		case netfloor.MsgModelReq:
			if err := s.answerModelReq(st, mc, env.Model); err != nil {
				return err
			}
		case netfloor.MsgError:
			if env.Seq == seq && env.Device == idx {
				if env.Code == netfloor.CodeModelMismatch {
					return fmt.Errorf("lotserver: site cannot build model v%d for lot %s: %s: %w",
						l.modelVersion, l.spec.ID, env.Err, netfloor.ErrModelMismatch)
				}
				return fmt.Errorf("lotserver: site rejected device %d of lot %s: %s", idx, l.spec.ID, env.Err)
			}
		case netfloor.MsgDrain:
			// Site-initiated graceful shutdown with our assignment in
			// flight: give it up; the caller releases and the index is
			// requeued for another worker.
			return errSiteDrained
		}
	}
}

// assignAwaitBatch sends one batched assignment — every index from the
// same lot — and waits until each device's result has arrived, absorbing
// heartbeats and routing stray results meanwhile. The site echoes the
// frame's Seq on every result of the batch, and its result cache makes a
// retried batch free for the devices that already screened.
func (s *Server) assignAwaitBatch(si int, st *siteStats, mc *netfloor.MsgConn,
	l *lot, idxs []int, seq uint64, lastHeard *time.Time) error {

	assign := &netfloor.Envelope{
		Type: netfloor.MsgAssign, Seq: seq, Device: idxs[0],
		Devices: append([]int(nil), idxs...),
		Seed:    l.spec.Seed, Lot: l.spec.ID,
	}
	if l.modelVersion != 0 {
		assign.Model = l.modelVersion
		assign.ModelFP = l.eng.Fingerprint()
	}
	if err := mc.Write(assign, s.opt.IdleTimeout); err != nil {
		return err
	}
	pending := make(map[int]bool, len(idxs))
	for _, idx := range idxs {
		pending[idx] = true
	}
	deadline := time.Now().Add(time.Duration(len(idxs)) * s.opt.RequestTimeout)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			return errOverdue
		}
		if s.ctx.Err() != nil {
			return errOverdue
		}
		env, err := mc.Read(s.opt.HeartbeatInterval)
		if err != nil {
			if isTimeout(err) {
				if time.Since(*lastHeard) > s.opt.IdleTimeout {
					return errConnDead
				}
				continue
			}
			return err
		}
		*lastHeard = time.Now()
		switch env.Type {
		case netfloor.MsgHeartbeat:
		case netfloor.MsgResult:
			if env.Result == nil {
				continue
			}
			if env.Lot == l.spec.ID && env.Seq == seq && pending[env.Device] {
				l.recordBreaker(siteOrdinal(si), s.opt.Breaker, *env.Result)
				s.deliver(l, *env.Result, siteOrdinal(si))
				delete(pending, env.Device)
				continue
			}
			s.routeStray(si, env)
		case netfloor.MsgModelReq:
			if err := s.answerModelReq(st, mc, env.Model); err != nil {
				return err
			}
		case netfloor.MsgError:
			if env.Seq == seq {
				if env.Code == netfloor.CodeModelMismatch {
					return fmt.Errorf("lotserver: site cannot build model v%d for lot %s: %s: %w",
						l.modelVersion, l.spec.ID, env.Err, netfloor.ErrModelMismatch)
				}
				return fmt.Errorf("lotserver: site rejected batch of lot %s: %s", l.spec.ID, env.Err)
			}
		case netfloor.MsgDrain:
			return errSiteDrained
		}
	}
	return nil
}

// routeStray commits a result that arrived outside its request window —
// an overdue retry's first answer, or a duplicated frame — to whichever
// lot it belongs to. A result for a finalized or cancelled lot is
// dropped; screening is pure, so nothing is lost.
func (s *Server) routeStray(si int, env *netfloor.Envelope) {
	if env.Type != netfloor.MsgResult || env.Result == nil || env.Lot == "" {
		return
	}
	l := s.lookupLot(env.Lot)
	if l == nil || l.spec.Seed != env.Seed {
		return
	}
	l.recordBreaker(siteOrdinal(si), s.opt.Breaker, *env.Result)
	s.deliver(l, *env.Result, siteOrdinal(si))
}

// drainConn sends the end-of-service courtesy drain to a site.
func (s *Server) drainConn(si int, st *siteStats, mc *netfloor.MsgConn) {
	if err := mc.Write(&netfloor.Envelope{Type: netfloor.MsgDrain}, s.opt.HeartbeatInterval); err != nil {
		st.update(func(st *siteStats) { st.drainFails++ })
		s.logf("site %d: drain send failed: %v", si, err)
	}
}

// Shutdown is the staged graceful drain:
//
//  1. stop admitting (Submit answers ErrDraining; queued lots are
//     withdrawn — their journals keep any resumed progress);
//  2. pause the scheduler and wait for every in-flight device to finish;
//  3. checkpoint: each active lot's collector flushes all buffered
//     results into its fsync'd journal;
//  4. answer clients (completed lots deliver results, interrupted ones
//     ErrAborted/draining) and stop the site loops and workers.
//
// ctx bounds the wait for in-flight devices; on expiry the drain degrades
// to a hard stop (journals are fsync'd per record, so nothing committed
// is lost either way).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.ctx.Done()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	queued := s.queue
	s.queue = nil
	s.mu.Unlock()
	s.logf("draining: admission closed, %d queued lots withdrawn", len(queued))

	for _, l := range queued {
		s.withdrawQueued(l)
	}

	s.sched.pause()
	deadlineErr := error(nil)
	for s.sched.inflightCount() > 0 {
		select {
		case <-ctx.Done():
			deadlineErr = ctx.Err()
		case <-time.After(pollInterval):
		}
		if deadlineErr != nil {
			break
		}
	}

	s.mu.Lock()
	var actives []*lot
	for _, l := range s.lots {
		if l.state == lotActive {
			actives = append(actives, l)
		}
	}
	s.mu.Unlock()
	for _, l := range actives {
		close(l.stopDrain)
	}
	for _, l := range actives {
		<-l.done
	}

	s.stop()
	s.wg.Wait()
	s.logf("drained: %d active lots checkpointed", len(actives))
	return deadlineErr
}

// withdrawQueued finalizes a queued lot as draining-rejected.
func (s *Server) withdrawQueued(l *lot) {
	s.mu.Lock()
	if l.state != lotQueued {
		s.mu.Unlock()
		return
	}
	l.state = lotDone
	delete(s.lots, l.spec.ID)
	s.mu.Unlock()
	if l.journal != nil {
		l.journal.Close()
	}
	l.err = fmt.Errorf("%w: %v", ErrAborted, ErrDraining)
	close(l.done)
}

// Kill stops the server immediately — no drain, no checkpoint flush —
// modeling a crash as closely as a clean process allows. Journals are
// fsync'd per record, so every committed device survives; Submit the same
// specs to a new server on the same JournalDir to resume.
func (s *Server) Kill() {
	s.stop()
	s.wg.Wait()
}
