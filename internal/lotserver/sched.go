package lotserver

// The fair scheduler: a round-robin cursor over the active lots, so every
// worker (remote site loop or local screener) pulls its next assignment
// from the lot that has waited longest. A mega-lot cannot starve a small
// one — each scheduling round hands the small lot exactly as many devices
// as the big one — and because each lot's Dispatcher alone decides which
// of its indices goes next, the interleaving has no effect on bins.

import "sync"

// scheduler interleaves device assignments across the active lots.
type scheduler struct {
	mu       sync.Mutex
	lots     []*lot
	cursor   int
	paused   bool
	inflight int
}

// add puts a lot into the rotation.
func (sc *scheduler) add(l *lot) {
	sc.mu.Lock()
	sc.lots = append(sc.lots, l)
	sc.mu.Unlock()
}

// remove takes a lot out of the rotation (completed, cancelled or failed).
func (sc *scheduler) remove(l *lot) {
	sc.mu.Lock()
	for i, x := range sc.lots {
		if x == l {
			sc.lots = append(sc.lots[:i], sc.lots[i+1:]...)
			if sc.cursor > i {
				sc.cursor--
			}
			break
		}
	}
	sc.mu.Unlock()
}

// pause stops handing out assignments (stage two of a graceful drain);
// in-flight assignments finish normally.
func (sc *scheduler) pause() {
	sc.mu.Lock()
	sc.paused = true
	sc.mu.Unlock()
}

// next picks the next assignment: one full round-robin pass over the
// active lots for fresh (unassigned) indices first, then a second pass
// allowing straggler hedges — a worker only races an in-flight device
// when no lot anywhere has fresh work. Each successful pull advances the
// cursor past the chosen lot, which is the fairness guarantee. The caller
// must call done() when the assignment resolves (result delivered or
// released back).
func (sc *scheduler) next() (l *lot, idx int, hedged bool, ok bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.paused || len(sc.lots) == 0 {
		return nil, 0, false, false
	}
	n := len(sc.lots)
	for pass := 0; pass < 2; pass++ {
		hedge := pass == 1
		for i := 0; i < n; i++ {
			cand := sc.lots[(sc.cursor+i)%n]
			if idx, hedged, ok := cand.disp.Next(hedge); ok {
				sc.cursor = (sc.cursor + i + 1) % n
				sc.inflight++
				return cand, idx, hedged, true
			}
		}
	}
	return nil, 0, false, false
}

// nextBatch pulls up to k fresh (never-hedged) indices from a single lot:
// a batched assignment screens one lot's devices through one kernel call,
// so the frame carries exactly one (seed, lot) pair. One round-robin pass
// over the active lots; hedging is left to next(), which batched callers
// fall back to when every lot's fresh queue is dry. The caller must call
// doneN(len(idxs)) when the batch resolves.
func (sc *scheduler) nextBatch(k int) (*lot, []int, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.paused || len(sc.lots) == 0 {
		return nil, nil, false
	}
	n := len(sc.lots)
	for i := 0; i < n; i++ {
		cand := sc.lots[(sc.cursor+i)%n]
		if idxs := cand.disp.NextBatch(k); len(idxs) > 0 {
			sc.cursor = (sc.cursor + i + 1) % n
			sc.inflight += len(idxs)
			return cand, idxs, true
		}
	}
	return nil, nil, false
}

// done releases the in-flight slot taken by next.
func (sc *scheduler) done() {
	sc.mu.Lock()
	sc.inflight--
	sc.mu.Unlock()
}

// doneN releases the n in-flight slots taken by nextBatch.
func (sc *scheduler) doneN(n int) {
	sc.mu.Lock()
	sc.inflight -= n
	sc.mu.Unlock()
}

// inflightCount reports how many assignments are currently held by
// workers; a paused scheduler with zero in flight is fully quiesced.
func (sc *scheduler) inflightCount() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.inflight
}
