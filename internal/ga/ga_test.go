package ga

import (
	"math"
	"math/rand"
	"testing"
)

func sphere(g []float64) float64 {
	s := 0.0
	for _, x := range g {
		s += x * x
	}
	return s
}

func TestMinimizeSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := Minimize(rng, 6, sphere, Options{PopSize: 40, Generations: 60, Lo: -2, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 0.05 {
		t.Fatalf("sphere minimum not found: %g", res.BestFitness)
	}
}

func TestMinimizeShiftedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := []float64{0.5, -0.7, 0.2}
	f := func(g []float64) float64 {
		s := 0.0
		for i := range g {
			d := g[i] - target[i]
			s += d * d
		}
		return s
	}
	res, err := Minimize(rng, 3, f, Options{PopSize: 40, Generations: 80, Lo: -1, Hi: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range target {
		if math.Abs(res.Best[i]-target[i]) > 0.15 {
			t.Fatalf("gene %d: %g, want %g", i, res.Best[i], target[i])
		}
	}
}

func TestTraceMonotoneNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res, err := Minimize(rng, 8, sphere, Options{Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 21 { // initial + 20 generations
		t.Fatalf("trace length %d", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-12 {
			t.Fatalf("best fitness increased at generation %d", i)
		}
	}
}

func TestSeedGenomeRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seed := []float64{0.01, -0.01}
	// One generation, elitism keeps the (near-optimal) seed.
	res, err := Minimize(rng, 2, sphere, Options{PopSize: 10, Generations: 1, Lo: -1, Hi: 1}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > sphere(seed)+1e-12 {
		t.Fatalf("seed not exploited: best %g > seed %g", res.BestFitness, sphere(seed))
	}
}

func TestBoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res, err := Minimize(rng, 5, func(g []float64) float64 {
		// Reward leaving the bounds, if it were possible.
		s := 0.0
		for _, x := range g {
			s -= x
		}
		return s
	}, Options{PopSize: 30, Generations: 40, Lo: -0.5, Hi: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Best {
		if x < -0.5-1e-12 || x > 0.5+1e-12 {
			t.Fatalf("gene %g outside bounds", x)
		}
	}
	// The optimum is all genes at the upper bound.
	for _, x := range res.Best {
		if x < 0.45 {
			t.Fatalf("optimizer failed to push genes to the bound: %v", res.Best)
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func() *Result {
		rng := rand.New(rand.NewSource(42))
		res, err := Minimize(rng, 4, sphere, Options{Generations: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestFitness != b.BestFitness {
		t.Fatal("same seed must give identical runs")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same seed must give identical genomes")
		}
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := Minimize(rng, 0, sphere, Options{}); err == nil {
		t.Fatal("zero-length genome must error")
	}
	if _, err := Minimize(rng, 3, nil, Options{}); err == nil {
		t.Fatal("nil fitness must error")
	}
	if _, err := Minimize(rng, 3, sphere, Options{}, []float64{1}); err == nil {
		t.Fatal("bad seed length must error")
	}
}

func TestEvaluationCountReported(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := Minimize(rng, 2, sphere, Options{PopSize: 10, Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 10*4 { // initial + 3 generations
		t.Fatalf("evaluations = %d, want 40", res.Evaluations)
	}
}
