package ga

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func sphere(g []float64) float64 {
	s := 0.0
	for _, x := range g {
		s += x * x
	}
	return s
}

func TestMinimizeSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	res, err := Minimize(rng, 6, sphere, Options{PopSize: 40, Generations: 60, Lo: -2, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 0.05 {
		t.Fatalf("sphere minimum not found: %g", res.BestFitness)
	}
}

func TestMinimizeShiftedOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := []float64{0.5, -0.7, 0.2}
	f := func(g []float64) float64 {
		s := 0.0
		for i := range g {
			d := g[i] - target[i]
			s += d * d
		}
		return s
	}
	res, err := Minimize(rng, 3, f, Options{PopSize: 40, Generations: 80, Lo: -1, Hi: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range target {
		if math.Abs(res.Best[i]-target[i]) > 0.15 {
			t.Fatalf("gene %d: %g, want %g", i, res.Best[i], target[i])
		}
	}
}

func TestTraceMonotoneNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res, err := Minimize(rng, 8, sphere, Options{Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 21 { // initial + 20 generations
		t.Fatalf("trace length %d", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1]+1e-12 {
			t.Fatalf("best fitness increased at generation %d", i)
		}
	}
}

func TestSeedGenomeRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seed := []float64{0.01, -0.01}
	// One generation, elitism keeps the (near-optimal) seed.
	res, err := Minimize(rng, 2, sphere, Options{PopSize: 10, Generations: 1, Lo: -1, Hi: 1}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > sphere(seed)+1e-12 {
		t.Fatalf("seed not exploited: best %g > seed %g", res.BestFitness, sphere(seed))
	}
}

func TestBoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res, err := Minimize(rng, 5, func(g []float64) float64 {
		// Reward leaving the bounds, if it were possible.
		s := 0.0
		for _, x := range g {
			s -= x
		}
		return s
	}, Options{PopSize: 30, Generations: 40, Lo: -0.5, Hi: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Best {
		if x < -0.5-1e-12 || x > 0.5+1e-12 {
			t.Fatalf("gene %g outside bounds", x)
		}
	}
	// The optimum is all genes at the upper bound.
	for _, x := range res.Best {
		if x < 0.45 {
			t.Fatalf("optimizer failed to push genes to the bound: %v", res.Best)
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func() *Result {
		rng := rand.New(rand.NewSource(42))
		res, err := Minimize(rng, 4, sphere, Options{Generations: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestFitness != b.BestFitness {
		t.Fatal("same seed must give identical runs")
	}
	for i := range a.Best {
		if a.Best[i] != b.Best[i] {
			t.Fatal("same seed must give identical genomes")
		}
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := Minimize(rng, 0, sphere, Options{}); err == nil {
		t.Fatal("zero-length genome must error")
	}
	if _, err := Minimize(rng, 3, nil, Options{}); err == nil {
		t.Fatal("nil fitness must error")
	}
	if _, err := Minimize(rng, 3, sphere, Options{}, []float64{1}); err == nil {
		t.Fatal("bad seed length must error")
	}
}

func TestEvaluationCountReported(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := Minimize(rng, 2, sphere, Options{PopSize: 10, Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 10*4 { // initial + 3 generations
		t.Fatalf("evaluations = %d, want 40", res.Evaluations)
	}
}

// Regression: an explicit zero used to be conflated with "unset" and
// silently rewritten to the default (0.9 / 0.15 / 2), making crossover-free,
// mutation-free and elitism-free configurations inexpressible.
func TestExplicitZeroOptionsHonored(t *testing.T) {
	// CrossoverP=0, MutationP=0: children are pure tournament-winner
	// copies, so after any number of generations every genome must equal
	// some member of the initial population.
	rng := rand.New(rand.NewSource(8))
	var initial [][]float64
	var mu sync.Mutex
	probe := func(g []float64) float64 {
		mu.Lock()
		initial = append(initial, append([]float64(nil), g...))
		mu.Unlock()
		return sphere(g)
	}
	res, err := Minimize(rng, 3, probe, Options{
		PopSize: 8, Generations: 4, Lo: -1, Hi: 1,
		CrossoverP: Float(0), MutationP: Float(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := initial[:8]
	found := false
	for _, g := range gen0 {
		match := true
		for j := range g {
			if g[j] != res.Best[j] {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("with CrossoverP=0 and MutationP=0 the best genome %v must be one of the initial genomes", res.Best)
	}

	// Elite=0 must run (no elitism) and still report a monotone trace,
	// since the best-so-far is tracked across generations.
	rng = rand.New(rand.NewSource(9))
	res, err = Minimize(rng, 4, sphere, Options{PopSize: 10, Generations: 10, Elite: Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1] {
			t.Fatalf("trace increased at generation %d with Elite=0", i)
		}
	}
}

func TestNilOptionPointersTakeDefaults(t *testing.T) {
	// The zero-value Options must behave like the historical defaults:
	// with crossover and mutation active, a long run on the sphere must
	// improve well past the best initial random genome.
	rng := rand.New(rand.NewSource(10))
	res, err := Minimize(rng, 5, sphere, Options{PopSize: 30, Generations: 40, Lo: -2, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness > 0.5 {
		t.Fatalf("defaults inactive? best %g", res.BestFitness)
	}
}

func TestOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if _, err := Minimize(rng, 2, sphere, Options{CrossoverP: Float(-0.1)}); err == nil {
		t.Fatal("negative CrossoverP must error")
	}
	if _, err := Minimize(rng, 2, sphere, Options{MutationP: Float(1.5)}); err == nil {
		t.Fatal("MutationP > 1 must error")
	}
	if _, err := Minimize(rng, 2, sphere, Options{Elite: Int(-1)}); err == nil {
		t.Fatal("negative Elite must error")
	}
}

// Regression: an injected seed genome outside [Lo, Hi] must be clamped
// into range, counted in Result.Evaluations, and the optimizer must not
// report a genome outside the bounds.
func TestSeedGenomeClampedAndCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	wild := []float64{5, -5, 5} // far outside [-1, 1]
	res, err := Minimize(rng, 3, sphere, Options{PopSize: 6, Generations: 2, Lo: -1, Hi: 1}, wild)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 6*3 { // initial + 2 generations, seed included
		t.Fatalf("evaluations = %d, want 18", res.Evaluations)
	}
	for _, x := range res.Best {
		if x < -1 || x > 1 {
			t.Fatalf("best genome %v escaped the bounds", res.Best)
		}
	}
}

// Regression: Elite >= PopSize must not produce a zero-selection
// population (the run would never move); at least one bred child is kept.
func TestEliteClampedBelowPopSize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	res, err := Minimize(rng, 2, sphere, Options{PopSize: 4, Generations: 30, Elite: Int(10), Lo: -1, Hi: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With selection alive, 30 generations on a 2-sphere must improve on
	// the initial best.
	if res.Trace[len(res.Trace)-1] >= res.Trace[0] {
		t.Fatalf("population never moved: trace %v", res.Trace)
	}
}

// The core determinism contract of the parallel pipeline: identical
// results (Best, Trace, Evaluations) for every worker count.
func TestParallelMinimizeBitIdentical(t *testing.T) {
	run := func(workers int) *Result {
		rng := rand.New(rand.NewSource(99))
		res, err := Minimize(rng, 6, sphere, Options{PopSize: 20, Generations: 15, Lo: -2, Hi: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{4, 8} {
		got := run(w)
		if got.BestFitness != ref.BestFitness || got.Evaluations != ref.Evaluations {
			t.Fatalf("workers=%d: fitness/evals %g/%d vs serial %g/%d",
				w, got.BestFitness, got.Evaluations, ref.BestFitness, ref.Evaluations)
		}
		for i := range ref.Best {
			if got.Best[i] != ref.Best[i] {
				t.Fatalf("workers=%d: gene %d differs: %g vs %g", w, i, got.Best[i], ref.Best[i])
			}
		}
		for i := range ref.Trace {
			if got.Trace[i] != ref.Trace[i] {
				t.Fatalf("workers=%d: trace[%d] differs: %g vs %g", w, i, got.Trace[i], ref.Trace[i])
			}
		}
	}
}
