// Package ga is a real-coded genetic algorithm, the optimizer the paper
// uses to shape the piecewise-linear baseband test stimulus ("Breakpoints
// of the PWL stimulus are encoded as a genetic string, and successive
// generations of the genetic optimization yield a waveform with decreasing
// values of the objective function", Section 3.1, citing Goldberg [8]).
package ga

import (
	"fmt"
	"math/rand"
)

// Fitness evaluates a genome; the GA minimizes it.
type Fitness func(genome []float64) float64

// Options configures a run.
type Options struct {
	PopSize     int     // population size (default 24)
	Generations int     // generations to evolve (the paper ran 5)
	Elite       int     // genomes copied unchanged (default 2)
	TournamentK int     // tournament size (default 3)
	CrossoverP  float64 // crossover probability (default 0.9)
	MutationP   float64 // per-gene mutation probability (default 0.15)
	MutationStd float64 // Gaussian mutation step as a fraction of range (default 0.1)
	Lo, Hi      float64 // gene bounds
}

func (o *Options) defaults() {
	if o.PopSize <= 0 {
		o.PopSize = 24
	}
	if o.Generations <= 0 {
		o.Generations = 5
	}
	if o.Elite <= 0 {
		o.Elite = 2
	}
	if o.Elite >= o.PopSize {
		o.Elite = o.PopSize - 1
	}
	if o.TournamentK <= 0 {
		o.TournamentK = 3
	}
	if o.CrossoverP <= 0 {
		o.CrossoverP = 0.9
	}
	if o.MutationP <= 0 {
		o.MutationP = 0.15
	}
	if o.MutationStd <= 0 {
		o.MutationStd = 0.1
	}
	if o.Hi <= o.Lo {
		o.Lo, o.Hi = -1, 1
	}
}

// Result reports the best genome and the per-generation best objective
// trace (the convergence curve shown alongside the paper's Fig. 7).
type Result struct {
	Best        []float64
	BestFitness float64
	Trace       []float64 // best fitness after each generation
	Evaluations int
}

// Minimize evolves genomes of length n against fitness f. The RNG must be
// provided for reproducibility. An optional seed genome (e.g. the previous
// best stimulus) can be injected into the initial population.
func Minimize(rng *rand.Rand, n int, f Fitness, opt Options, seeds ...[]float64) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ga: genome length must be positive, got %d", n)
	}
	if f == nil {
		return nil, fmt.Errorf("ga: nil fitness function")
	}
	opt.defaults()

	pop := make([][]float64, opt.PopSize)
	for i := range pop {
		pop[i] = make([]float64, n)
		for j := range pop[i] {
			pop[i][j] = opt.Lo + rng.Float64()*(opt.Hi-opt.Lo)
		}
	}
	for i, s := range seeds {
		if i >= len(pop) {
			break
		}
		if len(s) != n {
			return nil, fmt.Errorf("ga: seed %d has length %d, want %d", i, len(s), n)
		}
		copy(pop[i], s)
		clamp(pop[i], opt.Lo, opt.Hi)
	}

	fit := make([]float64, opt.PopSize)
	evals := 0
	evalAll := func() {
		for i := range pop {
			fit[i] = f(pop[i])
			evals++
		}
	}
	evalAll()

	res := &Result{}
	record := func() {
		best := 0
		for i := range fit {
			if fit[i] < fit[best] {
				best = i
			}
		}
		if res.Best == nil || fit[best] < res.BestFitness {
			res.Best = append([]float64(nil), pop[best]...)
			res.BestFitness = fit[best]
		}
		res.Trace = append(res.Trace, res.BestFitness)
	}
	record()

	for gen := 0; gen < opt.Generations; gen++ {
		next := make([][]float64, 0, opt.PopSize)
		// Elitism: carry the current best genomes.
		order := argsort(fit)
		for e := 0; e < opt.Elite; e++ {
			next = append(next, append([]float64(nil), pop[order[e]]...))
		}
		for len(next) < opt.PopSize {
			a := tournament(rng, fit, opt.TournamentK)
			b := tournament(rng, fit, opt.TournamentK)
			child := make([]float64, n)
			if rng.Float64() < opt.CrossoverP {
				// Blend (BLX-style) crossover.
				for j := range child {
					w := rng.Float64()
					child[j] = w*pop[a][j] + (1-w)*pop[b][j]
				}
			} else {
				copy(child, pop[a])
			}
			// Gaussian mutation.
			step := opt.MutationStd * (opt.Hi - opt.Lo)
			for j := range child {
				if rng.Float64() < opt.MutationP {
					child[j] += rng.NormFloat64() * step
				}
			}
			clamp(child, opt.Lo, opt.Hi)
			next = append(next, child)
		}
		pop = next
		evalAll()
		record()
	}
	res.Evaluations = evals
	return res, nil
}

// tournament returns the index of the best of k random competitors.
func tournament(rng *rand.Rand, fit []float64, k int) int {
	best := rng.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

func clamp(g []float64, lo, hi float64) {
	for i, v := range g {
		if v < lo {
			g[i] = lo
		} else if v > hi {
			g[i] = hi
		}
	}
}

// argsort returns indices ordering fit ascending (selection sort; tiny n).
func argsort(fit []float64) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if fit[idx[j]] < fit[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	return idx
}
