// Package ga is a real-coded genetic algorithm, the optimizer the paper
// uses to shape the piecewise-linear baseband test stimulus ("Breakpoints
// of the PWL stimulus are encoded as a genetic string, and successive
// generations of the genetic optimization yield a waveform with decreasing
// values of the objective function", Section 3.1, citing Goldberg [8]).
//
// Determinism contract: every random draw a genome slot consumes comes
// from an RNG stream derived (via parallel.SubSeed) from the caller's RNG
// and the slot index, and fitness evaluations write only into per-slot
// result cells. A run therefore depends only on the caller's seed — never
// on Options.Workers or goroutine scheduling — so serial and parallel
// minimizations of the same problem are bit-identical.
package ga

import (
	"fmt"
	"math/rand"

	"repro/internal/parallel"
)

// Fitness evaluates a genome; the GA minimizes it. With Options.Workers
// greater than one the function is called from multiple goroutines
// concurrently and must be safe for that (the core objective is a pure
// computation over immutable sensitivity state, which qualifies).
type Fitness func(genome []float64) float64

// Options configures a run. Elite, CrossoverP and MutationP are pointers
// so that an explicit zero is distinguishable from "use the default": nil
// means default (2 / 0.9 / 0.15), a pointer means exactly that value —
// ga.Int(0) disables elitism, ga.Float(0) disables crossover or mutation.
// (They were plain values once, and a configured zero was silently
// rewritten to the default, making those configurations inexpressible.)
type Options struct {
	PopSize     int      // population size (default 24)
	Generations int      // generations to evolve (the paper ran 5)
	Elite       *int     // genomes copied unchanged (nil = default 2)
	TournamentK int      // tournament size (default 3)
	CrossoverP  *float64 // crossover probability (nil = default 0.9)
	MutationP   *float64 // per-gene mutation probability (nil = default 0.15)
	MutationStd float64  // Gaussian mutation step as a fraction of range (default 0.1)
	Lo, Hi      float64  // gene bounds
	// Workers sets the fan-out for population construction and fitness
	// evaluation: 1 (or less) runs inline, 0 is treated as 1 so existing
	// zero-value configurations stay serial. The result is identical for
	// every worker count.
	Workers int
}

// Int returns a pointer to v, for explicit Options.Elite values.
func Int(v int) *int { return &v }

// Float returns a pointer to v, for explicit Options probabilities.
func Float(v float64) *float64 { return &v }

// resolved is Options with every default applied and validated.
type resolved struct {
	popSize, generations, elite, tournamentK, workers int
	crossoverP, mutationP, mutationStd, lo, hi        float64
}

func (o Options) resolve() (resolved, error) {
	r := resolved{
		popSize:     o.PopSize,
		generations: o.Generations,
		tournamentK: o.TournamentK,
		mutationStd: o.MutationStd,
		lo:          o.Lo,
		hi:          o.Hi,
		workers:     o.Workers,
	}
	if r.popSize <= 0 {
		r.popSize = 24
	}
	if r.generations <= 0 {
		r.generations = 5
	}
	if r.tournamentK <= 0 {
		r.tournamentK = 3
	}
	if r.mutationStd <= 0 {
		r.mutationStd = 0.1
	}
	if r.hi <= r.lo {
		r.lo, r.hi = -1, 1
	}
	if r.workers < 1 {
		r.workers = 1
	}
	r.elite = 2
	if o.Elite != nil {
		if *o.Elite < 0 {
			return r, fmt.Errorf("ga: Elite %d must be >= 0", *o.Elite)
		}
		r.elite = *o.Elite
	}
	// Elite >= PopSize would leave zero slots for selection and the
	// population could never move; keep at least one bred child.
	if r.elite >= r.popSize {
		r.elite = r.popSize - 1
	}
	r.crossoverP = 0.9
	if o.CrossoverP != nil {
		if *o.CrossoverP < 0 || *o.CrossoverP > 1 {
			return r, fmt.Errorf("ga: CrossoverP %g must be in [0, 1]", *o.CrossoverP)
		}
		r.crossoverP = *o.CrossoverP
	}
	r.mutationP = 0.15
	if o.MutationP != nil {
		if *o.MutationP < 0 || *o.MutationP > 1 {
			return r, fmt.Errorf("ga: MutationP %g must be in [0, 1]", *o.MutationP)
		}
		r.mutationP = *o.MutationP
	}
	return r, nil
}

// Result reports the best genome and the per-generation best objective
// trace (the convergence curve shown alongside the paper's Fig. 7).
type Result struct {
	Best        []float64
	BestFitness float64
	Trace       []float64 // best fitness after each generation
	Evaluations int
}

// Minimize evolves genomes of length n against fitness f. The RNG must be
// provided for reproducibility; it is consumed only to derive per-slot
// sub-seeds, so a run is reproducible from the caller's seed alone. An
// optional seed genome (e.g. the previous best stimulus) can be injected
// into the initial population; it is clamped to [Lo, Hi] and its
// evaluation is counted in Result.Evaluations like any other genome's.
func Minimize(rng *rand.Rand, n int, f Fitness, opt Options, seeds ...[]float64) (*Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ga: genome length must be positive, got %d", n)
	}
	if f == nil {
		return nil, fmt.Errorf("ga: nil fitness function")
	}
	r, err := opt.resolve()
	if err != nil {
		return nil, err
	}
	for i, s := range seeds {
		if len(s) != n {
			return nil, fmt.Errorf("ga: seed %d has length %d, want %d", i, len(s), n)
		}
	}

	// Initial population: slot i draws its genes from its own derived
	// stream, so initialization parallelizes without reordering draws.
	initSeed := rng.Int63()
	pop := make([][]float64, r.popSize)
	fit := make([]float64, r.popSize)
	evals := 0
	if err := parallel.ForEach(r.workers, r.popSize, func(i int) error {
		g := make([]float64, n)
		if i < len(seeds) {
			copy(g, seeds[i])
		} else {
			srng := rand.New(rand.NewSource(parallel.SubSeed(initSeed, i)))
			for j := range g {
				g[j] = r.lo + srng.Float64()*(r.hi-r.lo)
			}
		}
		clamp(g, r.lo, r.hi)
		pop[i] = g
		return nil
	}); err != nil {
		return nil, err
	}

	evalAll := func() {
		_ = parallel.ForEach(r.workers, r.popSize, func(i int) error {
			fit[i] = f(pop[i])
			return nil
		})
		evals += r.popSize
	}
	evalAll()

	res := &Result{}
	record := func() {
		best := 0
		for i := range fit {
			if fit[i] < fit[best] {
				best = i
			}
		}
		if res.Best == nil || fit[best] < res.BestFitness {
			res.Best = append([]float64(nil), pop[best]...)
			res.BestFitness = fit[best]
		}
		res.Trace = append(res.Trace, res.BestFitness)
	}
	record()

	for gen := 0; gen < r.generations; gen++ {
		next := make([][]float64, r.popSize)
		// Elitism: carry the current best genomes.
		order := argsort(fit)
		for e := 0; e < r.elite; e++ {
			next[e] = append([]float64(nil), pop[order[e]]...)
		}
		// Breed the remaining slots, each from its own derived stream so
		// the children are identical whatever the worker count. pop and
		// fit are read-only here.
		genSeed := rng.Int63()
		if err := parallel.ForEach(r.workers, r.popSize-r.elite, func(c int) error {
			slot := r.elite + c
			srng := rand.New(rand.NewSource(parallel.SubSeed(genSeed, slot)))
			a := tournament(srng, fit, r.tournamentK)
			b := tournament(srng, fit, r.tournamentK)
			child := make([]float64, n)
			if srng.Float64() < r.crossoverP {
				// Blend (BLX-style) crossover.
				for j := range child {
					w := srng.Float64()
					child[j] = w*pop[a][j] + (1-w)*pop[b][j]
				}
			} else {
				copy(child, pop[a])
			}
			// Gaussian mutation.
			step := r.mutationStd * (r.hi - r.lo)
			for j := range child {
				if srng.Float64() < r.mutationP {
					child[j] += srng.NormFloat64() * step
				}
			}
			clamp(child, r.lo, r.hi)
			next[slot] = child
			return nil
		}); err != nil {
			return nil, err
		}
		pop = next
		evalAll()
		record()
	}
	res.Evaluations = evals
	return res, nil
}

// tournament returns the index of the best of k random competitors.
func tournament(rng *rand.Rand, fit []float64, k int) int {
	best := rng.Intn(len(fit))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(fit))
		if fit[c] < fit[best] {
			best = c
		}
	}
	return best
}

func clamp(g []float64, lo, hi float64) {
	for i, v := range g {
		if v < lo {
			g[i] = lo
		} else if v > hi {
			g[i] = hi
		}
	}
}

// argsort returns indices ordering fit ascending (selection sort; tiny n).
func argsort(fit []float64) []int {
	idx := make([]int, len(fit))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if fit[idx[j]] < fit[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	return idx
}
