package lna

import (
	"math"
	"math/rand"
	"testing"
)

func TestNominalSpecsMatchPaperRanges(t *testing.T) {
	d, err := Build(Nominal())
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Specs()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's scatter axes: gain 15-17.5 dB, NF ~2-2.7 dB, IIP3 ~3 dBm.
	if s.GainDB < 14.0 || s.GainDB > 17.5 {
		t.Fatalf("nominal gain %.2f dB outside paper range", s.GainDB)
	}
	if s.NFDB < 1.5 || s.NFDB > 3.0 {
		t.Fatalf("nominal NF %.2f dB outside paper range", s.NFDB)
	}
	if math.Abs(s.IIP3DBm-2.9) > 1.0 {
		t.Fatalf("nominal IIP3 %.2f dBm, want ~2.9", s.IIP3DBm)
	}
	if ic := d.CollectorCurrent(); ic < 1e-3 || ic > 20e-3 {
		t.Fatalf("bias current %g A implausible for an LNA", ic)
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	p := Nominal()
	v := p.Vector()
	if len(v) != NumParams || len(ParamNames()) != NumParams {
		t.Fatal("parameter count mismatch")
	}
	q, err := FromVector(v)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("round trip changed params: %+v vs %+v", q, p)
	}
	if _, err := FromVector(v[:3]); err == nil {
		t.Fatal("short vector must error")
	}
}

func TestPerturbScalesRelatively(t *testing.T) {
	p := Nominal()
	rel := make([]float64, NumParams)
	rel[0] = 0.2 // RB1 +20%
	q, err := p.Perturb(rel)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.RB1-1.2*p.RB1) > 1e-9 {
		t.Fatalf("RB1 = %g, want %g", q.RB1, 1.2*p.RB1)
	}
	if q.RB2 != p.RB2 {
		t.Fatal("untouched parameter changed")
	}
	if _, err := p.Perturb(rel[:2]); err == nil {
		t.Fatal("short perturbation must error")
	}
}

func TestPopulationSpecsVaryAndBuildRobustly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var gains, nfs, ip3s []float64
	for i := 0; i < 20; i++ {
		p, err := Nominal().Perturb(RandomPerturbation(rng, 0.2))
		if err != nil {
			t.Fatal(err)
		}
		d, err := Build(p)
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
		s, err := d.Specs()
		if err != nil {
			t.Fatalf("device %d specs: %v", i, err)
		}
		gains = append(gains, s.GainDB)
		nfs = append(nfs, s.NFDB)
		ip3s = append(ip3s, s.IIP3DBm)
	}
	spread := func(v []float64) float64 {
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	// Process variation must move the specs but keep them in plausible
	// windows (the paper's scatter plots span ~1-2.5 dB of gain).
	if s := spread(gains); s < 0.3 || s > 4 {
		t.Fatalf("gain spread %.2f dB implausible", s)
	}
	if s := spread(nfs); s < 0.1 || s > 2 {
		t.Fatalf("NF spread %.2f dB implausible", s)
	}
	if s := spread(ip3s); s < 0.5 || s > 15 {
		t.Fatalf("IIP3 spread %.2f dB implausible", s)
	}
}

func TestSpecSensitivityDirections(t *testing.T) {
	// Physics checks on the sensitivity signs the signature test exploits.
	base, err := Build(Nominal())
	if err != nil {
		t.Fatal(err)
	}
	s0, err := base.Specs()
	if err != nil {
		t.Fatal(err)
	}
	perturbOne := func(name string, rel float64) Specs {
		t.Helper()
		relv := make([]float64, NumParams)
		for i, n := range ParamNames() {
			if n == name {
				relv[i] = rel
			}
		}
		p, err := Nominal().Perturb(relv)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Specs()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Bigger base resistance -> worse (higher) NF.
	if s := perturbOne("Rb", 0.2); s.NFDB <= s0.NFDB {
		t.Fatalf("NF should rise with Rb: %.3f vs %.3f", s.NFDB, s0.NFDB)
	}
	// Bigger RE -> less bias current -> lower IIP3.
	if s := perturbOne("RE", 0.2); s.IIP3DBm >= s0.IIP3DBm {
		t.Fatalf("IIP3 should drop with RE: %.3f vs %.3f", s.IIP3DBm, s0.IIP3DBm)
	}
	// Is up -> slightly more current -> gain should not fall.
	if s := perturbOne("Is", 0.2); s.GainDB < s0.GainDB-0.2 {
		t.Fatalf("gain fell unexpectedly with Is: %.3f vs %.3f", s.GainDB, s0.GainDB)
	}
}

func TestBehavioralModelConsistentWithSpecs(t *testing.T) {
	d, err := Build(Nominal())
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Specs()
	if err != nil {
		t.Fatal(err)
	}
	amp, err := d.Behavioral()
	if err != nil {
		t.Fatal(err)
	}
	// The polynomial's linear gain must equal the transducer gain.
	gotGain := 20 * math.Log10(amp.Poly.Gain())
	if math.Abs(gotGain-s.GainDB) > 0.01 {
		t.Fatalf("behavioral gain %.3f dB vs spec %.3f dB", gotGain, s.GainDB)
	}
	// The polynomial's IIP3 must match the Volterra analysis.
	if math.Abs(amp.Poly.IIP3DBm()-s.IIP3DBm) > 0.01 {
		t.Fatalf("behavioral IIP3 %.3f vs spec %.3f", amp.Poly.IIP3DBm(), s.IIP3DBm)
	}
	if amp.NFDB != s.NFDB {
		t.Fatal("behavioral NF mismatch")
	}
	if amp.CarrierSlope == 0 {
		t.Fatal("band slope should be extracted")
	}
}

func TestRF2401PopulationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop := RF2401Population(rng, 55)
	if len(pop) != 55 {
		t.Fatal("population size")
	}
	var gmin, gmax = math.Inf(1), math.Inf(-1)
	for _, d := range pop {
		s := d.Specs()
		if s.GainDB < 8 || s.GainDB > 14 {
			t.Fatalf("RF2401 gain %.2f outside plausible window", s.GainDB)
		}
		if s.IIP3DBm < -12 || s.IIP3DBm > -4 {
			t.Fatalf("RF2401 IIP3 %.2f outside plausible window", s.IIP3DBm)
		}
		if s.GainDB < gmin {
			gmin = s.GainDB
		}
		if s.GainDB > gmax {
			gmax = s.GainDB
		}
	}
	// Fig. 12's axis spans ~3 dB of gain.
	if gmax-gmin < 1 {
		t.Fatalf("population gain spread %.2f dB too small", gmax-gmin)
	}
	// Specs must be correlated through the latent space (alternate-test
	// premise): gain and IIP3 share z[0] with opposite signs.
	var sg, si, sgi, sgg, sii float64
	n := float64(len(pop))
	for _, d := range pop {
		sg += d.GainDB
		si += d.IIP3DBm
	}
	mg, mi := sg/n, si/n
	for _, d := range pop {
		sgi += (d.GainDB - mg) * (d.IIP3DBm - mi)
		sgg += (d.GainDB - mg) * (d.GainDB - mg)
		sii += (d.IIP3DBm - mi) * (d.IIP3DBm - mi)
	}
	if corr := sgi / math.Sqrt(sgg*sii); corr > -0.2 {
		t.Fatalf("gain/IIP3 correlation %.2f, want clearly negative", corr)
	}
}

func TestRF2401Validation(t *testing.T) {
	if _, err := NewRF2401([]float64{1, 2}); err == nil {
		t.Fatal("wrong latent dimension must error")
	}
	typ := RF2401Typical()
	if math.Abs(typ.GainDB-11) > 1e-9 || math.Abs(typ.IIP3DBm+8) > 1e-9 {
		t.Fatalf("typical part specs %+v", typ.Specs())
	}
}

func TestRF2401SocketPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := RF2401Typical()
	a1 := d.PerturbedBehavioral(rng, 0.05, 1e-10)
	a2 := d.PerturbedBehavioral(rng, 0.05, 1e-10)
	if a1.Poly.Gain() == a2.Poly.Gain() {
		t.Fatal("socket perturbation should vary between insertions")
	}
	g := 20 * math.Log10(a1.Poly.Gain())
	if math.Abs(g-d.GainDB) > 0.5 {
		t.Fatalf("socket gain ripple too large: %.2f vs %.2f", g, d.GainDB)
	}
}

func TestInputMatch(t *testing.T) {
	d, err := Build(Nominal())
	if err != nil {
		t.Fatal(err)
	}
	zin, err := d.InputImpedance(FCarrier)
	if err != nil {
		t.Fatal(err)
	}
	// A working LNA input: impedance with positive real part, same order
	// as the 50-ohm system.
	if real(zin) <= 0 || real(zin) > 500 {
		t.Fatalf("Zin = %v implausible", zin)
	}
	s11, err := d.InputReturnLossDB(FCarrier)
	if err != nil {
		t.Fatal(err)
	}
	if s11 >= 0 {
		t.Fatalf("S11 = %g dB, must be negative", s11)
	}
	// The input network is tuned near the carrier: in-band match must be
	// better (more negative) than far out of band.
	far, err := d.InputReturnLossDB(300e6)
	if err != nil {
		t.Fatal(err)
	}
	if s11 >= far {
		t.Fatalf("match at carrier (%.1f dB) should beat out-of-band (%.1f dB)", s11, far)
	}
}

func TestSpecsVectorAndNames(t *testing.T) {
	s := Specs{GainDB: 1, NFDB: 2, IIP3DBm: 3}
	v := s.Vector()
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Vector = %v", v)
	}
	names := SpecNames()
	if len(names) != 3 || names[0] != "Gain(dB)" {
		t.Fatalf("SpecNames = %v", names)
	}
}

func TestRF2401BehavioralReflectsSpecs(t *testing.T) {
	d := RF2401Typical()
	amp := d.Behavioral()
	if math.Abs(20*math.Log10(amp.Poly.Gain())-d.GainDB) > 1e-9 {
		t.Fatal("behavioral gain mismatch")
	}
	if math.Abs(amp.Poly.IIP3DBm()-d.IIP3DBm) > 1e-9 {
		t.Fatal("behavioral IIP3 mismatch")
	}
	if amp.NFDB != d.NFDB {
		t.Fatal("behavioral NF mismatch")
	}
}
