package lna

import (
	"fmt"
	"math/rand"

	"repro/internal/rf"
)

// RF2401Device is the behavioral stand-in for the paper's measured
// hardware: a 900 MHz monolithic receiver front-end (RF Microdevices
// RF2401) for which no simulation netlist was available. The paper
// optimized the stimulus on a behavioral LNA model and calibrated on
// measured devices; here the "measured devices" are drawn from a latent
// process space z whose components drive gain, noise figure, IIP3 and the
// band tilt jointly — reproducing the cross-correlation between specs that
// alternate test exploits.
type RF2401Device struct {
	Z       []float64 // latent process coordinates, each in [-1, 1]
	GainDB  float64
	NFDB    float64
	IIP3DBm float64
	// Slope is the normalized complex gain slope across the band (1/Hz).
	Slope complex128
}

// RF2401LatentDim is the dimension of the latent process space.
const RF2401LatentDim = 5

// NewRF2401 maps latent coordinates to a device. The maps are smooth and
// mildly nonlinear; z = 0 is the typical part (gain 11 dB, NF 3.5 dB,
// IIP3 -8 dBm, matching the RF2401-class front end the paper measured,
// whose Fig. 12 gain axis spans roughly 9.5-12.5 dB).
func NewRF2401(z []float64) (*RF2401Device, error) {
	if len(z) != RF2401LatentDim {
		return nil, fmt.Errorf("lna: RF2401 latent dimension %d, want %d", len(z), RF2401LatentDim)
	}
	zz := append([]float64(nil), z...)
	d := &RF2401Device{Z: zz}
	d.GainDB = 11 + 1.0*z[0] + 0.40*z[1] - 0.20*z[2] + 0.15*z[0]*z[0] - 0.10*z[0]*z[1]
	d.NFDB = 3.5 - 0.30*z[1] + 0.50*z[4] + 0.10*z[0]*z[4] + 0.08*z[1]*z[1]
	d.IIP3DBm = -8 - 0.80*z[0] + 0.90*z[3] + 0.25*z[0]*z[3] - 0.12*z[2]
	d.Slope = complex(2e-9*z[2], 1.2e-9*z[1]) // per Hz, band tilt
	return d, nil
}

// Specs returns the device's data-sheet performances.
func (d *RF2401Device) Specs() Specs {
	return Specs{GainDB: d.GainDB, NFDB: d.NFDB, IIP3DBm: d.IIP3DBm}
}

// Behavioral returns the signature-path model of the device.
func (d *RF2401Device) Behavioral() *rf.Amplifier {
	amp := rf.NewAmplifier(rf.PolyFromSpecs(d.GainDB, d.IIP3DBm))
	amp.CarrierSlope = d.Slope
	amp.NFDB = d.NFDB
	return amp
}

// RF2401Typical returns the z = 0 part, used (as in the paper) to optimize
// the stimulus when no device netlist is available.
func RF2401Typical() *RF2401Device {
	d, err := NewRF2401(make([]float64, RF2401LatentDim))
	if err != nil {
		panic(err) // zero vector always valid
	}
	return d
}

// RF2401Population draws n production devices with uniform latent spread.
func RF2401Population(rng *rand.Rand, n int) []*RF2401Device {
	out := make([]*RF2401Device, n)
	for i := range out {
		z := make([]float64, RF2401LatentDim)
		for j := range z {
			z[j] = 2*rng.Float64() - 1
		}
		d, err := NewRF2401(z)
		if err != nil {
			panic(err)
		}
		out[i] = d
	}
	return out
}

// RF2401Perturbed returns a Behavioral model for the latent point z after
// per-insertion socket effects: a small gain ripple (contact repeatability)
// and band-tilt jitter. The paper attributes part of its 0.16 dB hardware
// RMS error to "better socketing" being needed — this models that term.
func (d *RF2401Device) PerturbedBehavioral(rng *rand.Rand, socketGainSigmaDB, tiltSigma float64) *rf.Amplifier {
	g := d.GainDB + rng.NormFloat64()*socketGainSigmaDB
	amp := rf.NewAmplifier(rf.PolyFromSpecs(g, d.IIP3DBm))
	amp.CarrierSlope = d.Slope + complex(rng.NormFloat64()*tiltSigma, rng.NormFloat64()*tiltSigma)
	amp.NFDB = d.NFDB
	return amp
}
