// Package lna models the paper's devices under test. The simulation
// experiment uses the 900 MHz bipolar low-noise amplifier of Fig. 6,
// described here as a netlist for the internal/circuit simulator (the
// SpectreRF substitute) and parameterized by the statistical parameters the
// paper varies: resistor and capacitor values and the BJT parameters Is,
// Bf, Vaf, Rb and Ikf, each uniformly distributed within +/-20% of nominal.
// The hardware experiment (Figs. 12-13) uses a behavioral RF2401-like
// front-end population defined in rf2401.go.
package lna

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/rf"
)

// Params is the statistical process-parameter vector of the LNA.
type Params struct {
	RB1  float64 // bias divider upper resistor, ohms
	RB2  float64 // bias divider lower resistor, ohms
	RE   float64 // emitter bias resistor (RF-bypassed), ohms
	RT   float64 // collector tank de-Q resistor, ohms
	CIN  float64 // input coupling capacitor, F
	CT   float64 // collector tank capacitor, F
	COUT float64 // output coupling capacitor, F
	Is   float64 // BJT saturation current, A
	Bf   float64 // BJT forward beta
	Vaf  float64 // BJT forward Early voltage, V
	Rb   float64 // BJT base resistance, ohms
	Ikf  float64 // BJT knee current, A
}

// Nominal returns the nominal design point (tuned so the nominal specs sit
// near the paper's Figs. 8-10 axes: gain ~16 dB, NF ~2.4 dB, IIP3 ~+3 dBm).
func Nominal() Params {
	return Params{
		RB1:  3.9e3,
		RB2:  3.9e3,
		RE:   82,
		RT:   2000,
		CIN:  8e-12,
		CT:   1.8e-12,
		COUT: 8e-12,
		Is:   2e-16,
		Bf:   100,
		Vaf:  60,
		Rb:   18,
		Ikf:  0.04,
	}
}

// ParamNames lists the statistical parameters in Vector order.
func ParamNames() []string {
	return []string{"RB1", "RB2", "RE", "RT", "CIN", "CT", "COUT", "Is", "Bf", "Vaf", "Rb", "Ikf"}
}

// NumParams is the dimension of the statistical space (the paper's k).
const NumParams = 12

// Vector flattens the parameters in ParamNames order.
func (p Params) Vector() []float64 {
	return []float64{p.RB1, p.RB2, p.RE, p.RT, p.CIN, p.CT, p.COUT, p.Is, p.Bf, p.Vaf, p.Rb, p.Ikf}
}

// FromVector rebuilds Params from a Vector-ordered slice.
func FromVector(v []float64) (Params, error) {
	if len(v) != NumParams {
		return Params{}, fmt.Errorf("lna: parameter vector length %d, want %d", len(v), NumParams)
	}
	return Params{RB1: v[0], RB2: v[1], RE: v[2], RT: v[3], CIN: v[4], CT: v[5], COUT: v[6],
		Is: v[7], Bf: v[8], Vaf: v[9], Rb: v[10], Ikf: v[11]}, nil
}

// Perturb returns a copy with each parameter scaled by (1 + rel[i]); rel is
// the paper's normalized process perturbation delta-x.
func (p Params) Perturb(rel []float64) (Params, error) {
	if len(rel) != NumParams {
		return Params{}, fmt.Errorf("lna: perturbation length %d, want %d", len(rel), NumParams)
	}
	v := p.Vector()
	for i := range v {
		v[i] *= 1 + rel[i]
	}
	return FromVector(v)
}

// RandomPerturbation draws a uniform +/-spread perturbation vector (the
// paper uses spread = 0.20).
func RandomPerturbation(rng *rand.Rand, spread float64) []float64 {
	out := make([]float64, NumParams)
	for i := range out {
		out[i] = spread * (2*rng.Float64() - 1)
	}
	return out
}

// Specs are the data-sheet performances the paper predicts.
type Specs struct {
	GainDB  float64 // transducer power gain at 900 MHz
	NFDB    float64 // spot noise figure at 900 MHz
	IIP3DBm float64 // input third-order intercept (two-tone, 900/920 MHz)
}

// Vector returns [gain, NF, IIP3] — the paper's performance vector p.
func (s Specs) Vector() []float64 { return []float64{s.GainDB, s.NFDB, s.IIP3DBm} }

// SpecNames labels the spec vector entries.
func SpecNames() []string { return []string{"Gain(dB)", "NF(dB)", "IIP3(dBm)"} }

// Fixed (non-statistical) design values.
const (
	VCC      = 3.0     // supply, V
	RSource  = 50.0    // generator impedance, ohms
	RLoad    = 50.0    // load impedance, ohms
	LBase    = 9e-9    // input series matching inductor, H
	LEmitter = 2.2e-9  // emitter degeneration inductor, H
	LTank    = 10e-9   // collector tank inductor, H
	CBypass  = 220e-12 // RE bypass capacitor, F
	FCarrier = 900e6   // specification frequency, Hz
)

// Device is an instantiated LNA: a solved circuit plus cached analyses.
type Device struct {
	Params Params
	circ   *circuit.Circuit
	op     *circuit.OperatingPoint
	bjt    *circuit.BJT
}

// Build constructs the netlist for the given parameters and solves the DC
// operating point.
func Build(p Params) (*Device, error) {
	c := circuit.New()
	c.AddVSource("VCC", "vcc", "0", VCC, 0)
	c.AddVSource("VIN", "in", "0", 0, 1) // 1 V AC so node voltages are transfer functions
	c.AddResistor("RS", "in", "n1", RSource)
	c.AddCapacitor("CIN", "n1", "n2", p.CIN)
	c.AddInductor("LB", "n2", "b", LBase)
	c.AddResistor("RB1", "vcc", "b", p.RB1)
	c.AddResistor("RB2", "b", "0", p.RB2)
	bp := circuit.BJTParams{Is: p.Is, Bf: p.Bf, Vaf: p.Vaf, Rb: p.Rb, Ikf: p.Ikf,
		Br: 2, Cje: 1.1e-12, Cjc: 0.22e-12}
	q := c.AddBJT("Q1", "c", "b", "e", bp)
	c.AddInductor("LE", "e", "ve", LEmitter)
	c.AddResistor("RE", "ve", "0", p.RE)
	c.AddCapacitor("CE", "ve", "0", CBypass)
	c.AddInductor("LC", "vcc", "c", LTank)
	c.AddResistor("RT", "c", "0", p.RT)
	c.AddCapacitor("CT", "c", "0", p.CT)
	c.AddCapacitor("COUT", "c", "out", p.COUT)
	c.AddResistor("RL", "out", "0", RLoad)

	op, err := c.SolveDC(circuit.DCOptions{})
	if err != nil {
		return nil, fmt.Errorf("lna: %w", err)
	}
	d := &Device{Params: p, circ: c, op: op, bjt: q}
	if bop := q.OperatingPoint(); bop.Ic < 1e-5 || bop.Ic > 0.1 {
		return nil, fmt.Errorf("lna: implausible bias Ic = %g A", bop.Ic)
	}
	return d, nil
}

// CollectorCurrent exposes the bias point (diagnostics, tests).
func (d *Device) CollectorCurrent() float64 { return d.bjt.OperatingPoint().Ic }

// GainAt returns the complex source-EMF -> output transfer at freq.
func (d *Device) GainAt(freq float64) (complex128, error) {
	r, err := d.circ.SolveAC(d.op, freq)
	if err != nil {
		return 0, err
	}
	return r.Voltage("out"), nil
}

// InputImpedance returns the impedance looking into the LNA input port at
// freq (the DUT side of the source resistor), computed from the AC solve:
// Zin = V(n1) / I(RS) with I(RS) = (V(in) - V(n1)) / RS.
func (d *Device) InputImpedance(freq float64) (complex128, error) {
	r, err := d.circ.SolveAC(d.op, freq)
	if err != nil {
		return 0, err
	}
	vin := r.Voltage("in")
	vn1 := r.Voltage("n1")
	i := (vin - vn1) / complex(RSource, 0)
	if i == 0 {
		return 0, fmt.Errorf("lna: no input current at %g Hz", freq)
	}
	return vn1 / i, nil
}

// InputReturnLossDB returns |S11| in dB at freq re 50 ohms (more negative
// is better matched).
func (d *Device) InputReturnLossDB(freq float64) (float64, error) {
	zin, err := d.InputImpedance(freq)
	if err != nil {
		return 0, err
	}
	z0 := complex(RSource, 0)
	gamma := (zin - z0) / (zin + z0)
	mag := cmplx.Abs(gamma)
	if mag == 0 {
		return math.Inf(-1), nil
	}
	return 20 * math.Log10(mag), nil
}

// Specs runs the three specification analyses — the conventional tests the
// paper replaces: AC gain, spot noise figure, and Volterra IIP3.
func (d *Device) Specs() (Specs, error) {
	h, err := d.GainAt(FCarrier)
	if err != nil {
		return Specs{}, err
	}
	// Transducer power gain with equal source/load impedance: the
	// available source power is |vs|^2/(8 Rs), the delivered load power is
	// |vout|^2/(2 RL), so G_T = |2*vout/vs|^2.
	gainDB := 20 * math.Log10(2*cmplx.Abs(h))

	noise, err := d.circ.NoiseAnalysis(d.op, FCarrier, "out", "RS")
	if err != nil {
		return Specs{}, err
	}

	dist, err := d.volterra()
	if err != nil {
		return Specs{}, err
	}
	return Specs{GainDB: gainDB, NFDB: noise.NoiseFigureDB, IIP3DBm: dist.IIP3DBm}, nil
}

// volterra performs the weakly-nonlinear analysis with the full emitter
// degeneration impedance at the carrier: the inductor in series with the
// bypassed bias resistor.
func (d *Device) volterra() (*circuit.DistortionReport, error) {
	w := 2 * math.Pi * FCarrier
	zc := complex(0, -1/(w*CBypass))
	zre := complex(d.Params.RE, 0)
	zf := complex(0, w*LEmitter) + zre*zc/(zre+zc)
	return d.circ.VolterraIIP3(d.op, d.bjt, "in", FCarrier, zf)
}

// Behavioral extracts the signature-path model: a cubic polynomial
// (magnitude gain referred to the input port, compressive cubic matching
// the analyzed IIP3) plus the complex gain slope across the +/-10 MHz
// signature band, realized by the envelope simulator's carrier-zone filter.
func (d *Device) Behavioral() (*rf.Amplifier, error) {
	h0, err := d.GainAt(FCarrier)
	if err != nil {
		return nil, err
	}
	dist, err := d.volterra()
	if err != nil {
		return nil, err
	}
	c1, c2, c3 := dist.BehavioralPoly(2 * h0) // matched-voltage convention
	amp := rf.NewAmplifier(rf.Poly{C: []float64{c1, c2, c3}})

	// Gain slope across the band from a three-point AC fit.
	const df = 5e6
	hm, err := d.GainAt(FCarrier - df)
	if err != nil {
		return nil, err
	}
	hp, err := d.GainAt(FCarrier + df)
	if err != nil {
		return nil, err
	}
	amp.CarrierSlope = (hp - hm) / complex(2*df, 0) / h0

	spec, err := d.Specs()
	if err != nil {
		return nil, err
	}
	amp.NFDB = spec.NFDB
	return amp, nil
}
