package ate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rf"
)

func TestConventionalSuiteTimes(t *testing.T) {
	suite := ConventionalSuite()
	if len(suite) != 4 {
		t.Fatalf("suite size %d", len(suite))
	}
	total := SuiteDuration(suite)
	if total < 0.3 || total > 2 {
		t.Fatalf("conventional suite %g s implausible", total)
	}
	// NF test should dominate.
	var nf SpecTest
	for _, s := range suite {
		if s.Name == "Noise figure" {
			nf = s
		}
	}
	if nf.Duration() < total/4 {
		t.Fatal("NF test should be the largest single contributor")
	}
}

func TestSignatureTesterTimes(t *testing.T) {
	// The paper's hardware experiment: 5 ms capture at 1 MHz = 5000 samples.
	sig, err := NewSignatureTester(5000, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if got := sig.CaptureS(); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("capture time %g, want 5 ms", got)
	}
	if sig.InsertionS() > 0.03 {
		t.Fatalf("signature insertion %g s should be tens of ms at most", sig.InsertionS())
	}
	// Low-cost tester should be far cheaper than the high-end ATE.
	if sig.CapitalUSD() > HighEndRFATE.CapitalUSD/5 {
		t.Fatalf("signature tester capital %g not low-cost", sig.CapitalUSD())
	}
	if _, err := NewSignatureTester(0, 1e6); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestCompareTestTimeSpeedup(t *testing.T) {
	sig, _ := NewSignatureTester(5000, 1e6)
	cmp := CompareTestTime(ConventionalSuite(), sig, 0.2)
	if cmp.Speedup < 2 {
		t.Fatalf("expected a clear speedup, got %.2f", cmp.Speedup)
	}
	// Without handler overhead the speedup is much larger.
	raw := CompareTestTime(ConventionalSuite(), sig, 0)
	if raw.Speedup < 10 {
		t.Fatalf("raw test-time speedup %.1f, want > 10x", raw.Speedup)
	}
	if raw.ThroughputSignature <= raw.ThroughputConventional {
		t.Fatal("throughput must improve")
	}
}

func TestEconomics(t *testing.T) {
	conv := Economics{CapitalUSD: 1.2e6, DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	sig := Economics{CapitalUSD: 90e3, DepreciationYrs: 5, UtilizationPct: 0.8, OverheadPerHr: 50}
	c1, err := conv.CostPerDevice(0.77)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sig.CostPerDevice(0.022)
	if err != nil {
		t.Fatal(err)
	}
	if c2 >= c1 {
		t.Fatalf("signature test should be cheaper: %g vs %g", c2, c1)
	}
	f, err := CostReductionFactor(conv, sig, 0.77, 0.022)
	if err != nil {
		t.Fatal(err)
	}
	if f < 10 {
		t.Fatalf("cost reduction factor %.1f, want order-of-magnitude", f)
	}
	bad := Economics{}
	if _, err := bad.CostPerDevice(1); err == nil {
		t.Fatal("invalid economics must error")
	}
}

func TestRFATEGainMeasurement(t *testing.T) {
	ate := NewRFATE(nil) // no noise: exact measurement
	dut := rf.NewAmplifier(rf.PolyFromSpecs(16, 3))
	// At low drive the measured gain equals the small-signal gain.
	if got := ate.MeasureGainDB(dut, -30); math.Abs(got-16) > 0.05 {
		t.Fatalf("measured gain %g, want 16", got)
	}
	// Near P1dB the measured gain compresses below small-signal.
	if got := ate.MeasureGainDB(dut, -7); got > 15.5 {
		t.Fatalf("gain should compress at high drive: %g", got)
	}
}

func TestRFATEIIP3Measurement(t *testing.T) {
	ate := NewRFATE(nil)
	for _, want := range []float64{-8, 0, 3} {
		dut := rf.NewAmplifier(rf.PolyFromSpecs(12, want))
		got, err := ate.MeasureIIP3DBm(dut, want-25)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.3 {
			t.Fatalf("measured IIP3 %g, want %g", got, want)
		}
	}
	// Linear DUT: no IM3 -> measurement must error, not lie.
	lin := rf.NewAmplifier(rf.Poly{C: []float64{5}})
	if _, err := ate.MeasureIIP3DBm(lin, -20); err == nil {
		t.Fatal("expected error for unmeasurable IM3")
	}
}

func TestRFATERepeatabilityNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ate := NewRFATE(rng)
	dut := rf.NewAmplifier(rf.PolyFromSpecs(16, 3))
	dut.NFDB = 2.3
	m1, err := ate.Characterize(dut, -22)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ate.Characterize(dut, -22)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("repeated measurements should differ by repeatability noise")
	}
	if math.Abs(m1.GainDB-16) > 0.2 || math.Abs(m1.NFDB-2.3) > 0.5 {
		t.Fatalf("measurement far from truth: %+v", m1)
	}
}
