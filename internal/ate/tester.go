// Package ate models the test equipment side of the paper's cost argument:
// a conventional high-end RF ATE running one specification test per
// insertion state (each with instrument setup overhead), and the proposed
// low-cost signature tester (RF signal generator + arbitrary waveform
// generator + baseband digitizer on a load board) that captures one short
// signature and post-processes it. It also provides the test-time and
// test-economics accounting behind the paper's Section 4.2 throughput
// claim.
package ate

import (
	"fmt"
	"math"
)

// Instrument is a piece of test equipment with a capital cost and a
// per-configuration settling/setup time.
type Instrument struct {
	Name       string
	CapitalUSD float64
	SetupS     float64 // time to (re)configure and settle, seconds
}

// Standard instrument models. Costs reflect the paper's era (2002):
// "Today's RF measurement systems are extremely complex million-dollar
// ATEs" vs the proposed RF source + AWG + digitizer.
var (
	HighEndRFATE = Instrument{Name: "high-end RF ATE", CapitalUSD: 1.2e6, SetupS: 0.030}
	RFSource     = Instrument{Name: "RF signal generator", CapitalUSD: 45e3, SetupS: 0.008}
	BasebandAWG  = Instrument{Name: "arbitrary waveform generator", CapitalUSD: 20e3, SetupS: 0.004}
	Digitizer    = Instrument{Name: "baseband digitizer", CapitalUSD: 25e3, SetupS: 0.004}
)

// SpecTest is one conventional specification test with its time budget.
type SpecTest struct {
	Name     string
	SetupS   float64 // instrument reconfiguration before the measurement
	MeasureS float64 // acquisition/averaging time
}

// Duration returns the test's total insertion time.
func (t SpecTest) Duration() float64 { return t.SetupS + t.MeasureS }

// ConventionalSuite returns the paper's Fig. 1 test list — gain, noise
// figure, IIP3 and 1 dB compression — with representative production time
// budgets. The NF test dominates: Y-factor measurements need a noise
// source, narrow IF bandwidth and heavy averaging; the compression test
// needs a stepped power sweep.
func ConventionalSuite() []SpecTest {
	return []SpecTest{
		{Name: "Gain", SetupS: 0.050, MeasureS: 0.020},
		{Name: "Noise figure", SetupS: 0.080, MeasureS: 0.300},
		{Name: "IIP3", SetupS: 0.080, MeasureS: 0.040},
		{Name: "P1dB", SetupS: 0.050, MeasureS: 0.150},
	}
}

// SuiteDuration sums the per-test durations.
func SuiteDuration(suite []SpecTest) float64 {
	s := 0.0
	for _, t := range suite {
		s += t.Duration()
	}
	return s
}

// SignatureTester models the proposed low-cost configuration.
type SignatureTester struct {
	Instruments []Instrument
	CaptureN    int     // digitized samples
	DigitizerFs float64 // Hz
	TransferS   float64 // data upload time
	ComputeS    float64 // FFT + normalization time
}

// NewSignatureTester returns the paper's configuration: one setup, a
// CaptureN/Fs second capture, "negligible time for data transfer and
// computation of the FFT".
func NewSignatureTester(captureN int, fs float64) (*SignatureTester, error) {
	if captureN <= 0 || fs <= 0 {
		return nil, fmt.Errorf("ate: invalid signature tester config (n=%d fs=%g)", captureN, fs)
	}
	return &SignatureTester{
		Instruments: []Instrument{RFSource, BasebandAWG, Digitizer},
		CaptureN:    captureN,
		DigitizerFs: fs,
		TransferS:   0.0005,
		ComputeS:    0.0005,
	}, nil
}

// CaptureS returns the signature acquisition time.
func (s *SignatureTester) CaptureS() float64 {
	return float64(s.CaptureN) / s.DigitizerFs
}

// SetupS returns the single-configuration setup time (the signature test
// uses "a single test configuration and a single test stimulus").
func (s *SignatureTester) SetupS() float64 {
	total := 0.0
	for _, in := range s.Instruments {
		total += in.SetupS
	}
	return total
}

// InsertionS returns the total per-device test time.
func (s *SignatureTester) InsertionS() float64 {
	return s.SetupS() + s.CaptureS() + s.TransferS + s.ComputeS
}

// CapitalUSD sums the tester's instrument costs.
func (s *SignatureTester) CapitalUSD() float64 {
	total := 0.0
	for _, in := range s.Instruments {
		total += in.CapitalUSD
	}
	return total
}

// TimeComparison is a row of the test-time table (the Section 4.2 claim
// regenerated as data).
type TimeComparison struct {
	ConventionalS          float64
	SignatureS             float64
	Speedup                float64
	ThroughputConventional float64 // devices/hour
	ThroughputSignature    float64
}

// CompareTestTime computes the throughput comparison for a handler with
// the given index (part placement) time.
func CompareTestTime(suite []SpecTest, sig *SignatureTester, handlerS float64) TimeComparison {
	conv := SuiteDuration(suite) + handlerS
	sigT := sig.InsertionS() + handlerS
	return TimeComparison{
		ConventionalS:          conv,
		SignatureS:             sigT,
		Speedup:                conv / sigT,
		ThroughputConventional: 3600 / conv,
		ThroughputSignature:    3600 / sigT,
	}
}

// Economics models cost-per-device for a tester.
type Economics struct {
	CapitalUSD      float64
	DepreciationYrs float64 // straight-line depreciation period
	UtilizationPct  float64 // fraction of wall-clock the tester runs (0..1)
	OverheadPerHr   float64 // floor space, operator, maintenance USD/hour
}

// CostPerDevice returns the all-in test cost for the given per-device
// insertion time (seconds).
func (e Economics) CostPerDevice(insertionS float64) (float64, error) {
	if e.DepreciationYrs <= 0 || e.UtilizationPct <= 0 || e.UtilizationPct > 1 {
		return 0, fmt.Errorf("ate: invalid economics %+v", e)
	}
	hours := e.DepreciationYrs * 365 * 24 * e.UtilizationPct
	ratePerHr := e.CapitalUSD/hours + e.OverheadPerHr
	return ratePerHr * insertionS / 3600, nil
}

// CostReductionFactor compares conventional vs signature economics at the
// given insertion times.
func CostReductionFactor(conv, sig Economics, convS, sigS float64) (float64, error) {
	c1, err := conv.CostPerDevice(convS)
	if err != nil {
		return 0, err
	}
	c2, err := sig.CostPerDevice(sigS)
	if err != nil {
		return 0, err
	}
	if c2 == 0 {
		return math.Inf(1), nil
	}
	return c1 / c2, nil
}
