package ate

import (
	"math"
	"testing"
)

func TestEconomicsInvalidConfigs(t *testing.T) {
	bad := []Economics{
		{CapitalUSD: 1e6, DepreciationYrs: 0, UtilizationPct: 0.8},
		{CapitalUSD: 1e6, DepreciationYrs: -2, UtilizationPct: 0.8},
		{CapitalUSD: 1e6, DepreciationYrs: 5, UtilizationPct: 0},
		{CapitalUSD: 1e6, DepreciationYrs: 5, UtilizationPct: -0.1},
		{CapitalUSD: 1e6, DepreciationYrs: 5, UtilizationPct: 1.2},
	}
	for i, e := range bad {
		if _, err := e.CostPerDevice(1.0); err == nil {
			t.Errorf("config %d (%+v) must be rejected", i, e)
		}
	}
	// CostReductionFactor propagates the same errors from either side.
	good := Economics{CapitalUSD: 1e6, DepreciationYrs: 5, UtilizationPct: 0.8}
	if _, err := CostReductionFactor(bad[0], good, 1, 1); err == nil {
		t.Error("invalid conventional economics must propagate")
	}
	if _, err := CostReductionFactor(good, bad[2], 1, 1); err == nil {
		t.Error("invalid signature economics must propagate")
	}
}

func TestRetestLoadValidation(t *testing.T) {
	bad := []RetestLoad{
		{Devices: 0, Insertions: 0},
		{Devices: 10, Insertions: 9},
		{Devices: 10, Insertions: 10, ExtraSettleS: -1},
		{Devices: 10, Insertions: 10, FallbackDevices: 11},
		{Devices: 10, Insertions: 10, FallbackDevices: -1},
		{Devices: 10, Insertions: 10, QuarantineS: -0.1},
		{Devices: 10, Insertions: 10, JournalS: -1e-9},
		{Devices: 10, Insertions: 10, NetworkS: -1e-9},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("load %d (%+v) must be rejected", i, l)
		}
	}
	if err := (RetestLoad{Devices: 10, Insertions: 13, FallbackDevices: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveSignatureTimeUnderLoad(t *testing.T) {
	sig, err := NewSignatureTester(100, 20e6)
	if err != nil {
		t.Fatal(err)
	}
	suite := ConventionalSuite()
	handler := 0.2

	clean := RetestLoad{Devices: 100, Insertions: 100}
	cleanS, err := EffectiveSignatureS(sig, suite, handler, clean)
	if err != nil {
		t.Fatal(err)
	}
	if want := sig.InsertionS() + handler; math.Abs(cleanS-want) > 1e-12 {
		t.Fatalf("clean load per-device time %g, want %g", cleanS, want)
	}

	// 20 retests, 3 fallbacks and some settle time must all be charged.
	loaded := RetestLoad{Devices: 100, Insertions: 120, ExtraSettleS: 0.5, FallbackDevices: 3}
	loadedS, err := EffectiveSignatureS(sig, suite, handler, loaded)
	if err != nil {
		t.Fatal(err)
	}
	want := (120*(sig.InsertionS()+handler) + 0.5 + 3*(SuiteDuration(suite)+handler)) / 100
	if math.Abs(loadedS-want) > 1e-12 {
		t.Fatalf("loaded per-device time %g, want %g", loadedS, want)
	}
	if loadedS <= cleanS {
		t.Fatal("fault load must cost wall time")
	}

	// Orchestrator overheads — breaker quarantine and journal fsyncs — are
	// amortized over the lot on top of the retest/fallback load.
	orch := loaded
	orch.QuarantineS = 2.0
	orch.JournalS = 100 * 0.5e-3
	orchS, err := EffectiveSignatureS(sig, suite, handler, orch)
	if err != nil {
		t.Fatal(err)
	}
	if want := loadedS + (2.0+0.05)/100; math.Abs(orchS-want) > 1e-12 {
		t.Fatalf("orchestrated per-device time %g, want %g", orchS, want)
	}

	// The distributed floor's wire time amortizes the same way: one RPC per
	// assignment (here 130 requests at 2 ms) on top of everything else.
	dist := orch
	dist.NetworkS = 130 * 2e-3
	distS, err := EffectiveSignatureS(sig, suite, handler, dist)
	if err != nil {
		t.Fatal(err)
	}
	if want := orchS + 0.26/100; math.Abs(distS-want) > 1e-12 {
		t.Fatalf("distributed per-device time %g, want %g", distS, want)
	}

	cmp, err := CompareTestTimeUnderLoad(suite, sig, handler, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SignatureS != loadedS {
		t.Fatalf("comparison signature time %g, want %g", cmp.SignatureS, loadedS)
	}
	if cmp.Speedup <= 1 {
		t.Fatalf("signature flow should still win under this load, speedup %g", cmp.Speedup)
	}
	cleanCmp := CompareTestTime(suite, sig, handler)
	if cmp.ThroughputSignature >= cleanCmp.ThroughputSignature {
		t.Fatal("loaded throughput must drop below the clean figure")
	}
	if _, err := CompareTestTimeUnderLoad(suite, sig, handler, RetestLoad{}); err == nil {
		t.Fatal("invalid load must be rejected")
	}
}
