package ate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/rf"
)

// RFATE performs conventional specification measurements on a behavioral
// DUT — the "direct measurement" axis of the paper's Figs. 12-13. Gain and
// IIP3 are measured by actually driving the DUT polynomial with tones and
// reading tone powers; every result carries the instrument's repeatability
// noise.
type RFATE struct {
	rng *rand.Rand
	// 1-sigma repeatability of each measurement, dB.
	GainSigmaDB float64
	NFSigmaDB   float64
	IIP3SigmaDB float64
}

// NewRFATE builds an ATE model with typical bench repeatability.
func NewRFATE(rng *rand.Rand) *RFATE {
	return &RFATE{rng: rng, GainSigmaDB: 0.02, NFSigmaDB: 0.08, IIP3SigmaDB: 0.05}
}

// MeasureGainDB drives the DUT with a single tone of the given input power
// and returns the measured power gain in dB.
func (a *RFATE) MeasureGainDB(dut *rf.Amplifier, pinDBm float64) float64 {
	amp := dsp.DBmToVolts(pinDBm)
	const fs, n = 64.0, 256 // normalized tone at fs/8
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Sin(2*math.Pi*8*float64(i)/fs)
	}
	y := dut.ProcessPassband(x)
	out := dsp.ToneAmplitude(y, 8, fs)
	return dsp.DB(out/amp) + a.noise(a.GainSigmaDB)
}

// MeasureIIP3DBm applies two equal tones at the given per-tone power and
// extrapolates the input-referred third-order intercept from the measured
// IM3 products: IIP3 = Pin + (Pfund - Pim3)/2.
func (a *RFATE) MeasureIIP3DBm(dut *rf.Amplifier, pinDBm float64) (float64, error) {
	amp := dsp.DBmToVolts(pinDBm)
	const fs = 1024.0
	const n = 4096
	f1, f2 := 64.0, 80.0 // bins 256 and 320: IM3 at 48 and 96
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = amp * (math.Sin(2*math.Pi*f1*ts) + math.Sin(2*math.Pi*f2*ts))
	}
	y := dut.ProcessPassband(x)
	fund := dsp.ToneAmplitude(y, f1, fs)
	im3 := dsp.ToneAmplitude(y, 2*f1-f2, fs)
	if fund <= 0 || im3 <= 1e-12*fund {
		return 0, fmt.Errorf("ate: IM3 below the measurement floor (fund=%g, im3=%g); raise drive power", fund, im3)
	}
	iip3 := pinDBm + (dsp.DB(fund)-dsp.DB(im3))/2
	return iip3 + a.noise(a.IIP3SigmaDB), nil
}

// MeasureNFDB reads the DUT noise figure (behavioral models carry NF as a
// parameter; the ATE adds Y-factor repeatability noise).
func (a *RFATE) MeasureNFDB(dut *rf.Amplifier) float64 {
	return dut.NFDB + a.noise(a.NFSigmaDB)
}

func (a *RFATE) noise(sigma float64) float64 {
	if a.rng == nil || sigma <= 0 {
		return 0
	}
	return sigma * a.rng.NormFloat64()
}

// MeasuredSpecs bundles one full conventional characterization at the
// given two-tone drive level.
type MeasuredSpecs struct {
	GainDB  float64
	NFDB    float64
	IIP3DBm float64
}

// Characterize measures all three specs the paper predicts.
func (a *RFATE) Characterize(dut *rf.Amplifier, pinDBm float64) (MeasuredSpecs, error) {
	iip3, err := a.MeasureIIP3DBm(dut, pinDBm)
	if err != nil {
		return MeasuredSpecs{}, err
	}
	return MeasuredSpecs{
		GainDB:  a.MeasureGainDB(dut, pinDBm),
		NFDB:    a.MeasureNFDB(dut),
		IIP3DBm: iip3,
	}, nil
}
