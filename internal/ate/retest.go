package ate

import "fmt"

// RetestLoad summarizes what a fault-tolerant lot actually cost the floor:
// how many signature insertions were spent across all devices (first
// attempts plus retests), how much extra settle time the retest backoff
// added, and how many devices fell back to the conventional spec-test
// suite. It is the bridge between the floor engine's accounting and the
// Section 4.2 throughput/cost tables, keeping the economics honest when
// insertions are not all clean.
type RetestLoad struct {
	Devices         int     // devices in the lot
	Insertions      int     // total signature insertions (>= Devices)
	ExtraSettleS    float64 // total backoff settle time added before retests
	FallbackDevices int     // devices routed to the conventional suite
	// QuarantineS is tester-site time lost to circuit-breaker quarantine
	// (backoff before half-open re-probe insertions) on the concurrent
	// lot orchestrator; 0 on the serial floor.
	QuarantineS float64
	// JournalS is the time spent fsyncing the crash-recovery lot journal
	// (modeled per record, so serial, concurrent and resumed lots charge
	// identically); 0 when journaling is off.
	JournalS float64
	// NetworkS is the modeled wire time of a distributed floor: one RPC
	// round-trip per device assignment plus every retry forced by a
	// timeout, reconnect or reassignment. Modeled (per-request constant ×
	// request count) rather than measured, like JournalS, so the economics
	// stay comparable across runs; 0 on a single-process floor.
	NetworkS float64
}

// Validate checks the load for internal consistency.
func (l RetestLoad) Validate() error {
	if l.Devices <= 0 {
		return fmt.Errorf("ate: retest load needs devices > 0, got %d", l.Devices)
	}
	if l.Insertions < l.Devices {
		return fmt.Errorf("ate: %d insertions for %d devices (every device needs at least one)", l.Insertions, l.Devices)
	}
	if l.ExtraSettleS < 0 {
		return fmt.Errorf("ate: negative backoff settle time %g", l.ExtraSettleS)
	}
	if l.FallbackDevices < 0 || l.FallbackDevices > l.Devices {
		return fmt.Errorf("ate: %d fallback devices outside [0, %d]", l.FallbackDevices, l.Devices)
	}
	if l.QuarantineS < 0 {
		return fmt.Errorf("ate: negative quarantine time %g", l.QuarantineS)
	}
	if l.JournalS < 0 {
		return fmt.Errorf("ate: negative journal time %g", l.JournalS)
	}
	if l.NetworkS < 0 {
		return fmt.Errorf("ate: negative network time %g", l.NetworkS)
	}
	return nil
}

// EffectiveSignatureS returns the average per-device wall time of the
// signature flow under the given retest/fallback load: every insertion
// pays the full signature insertion plus handler index time, backoff
// settle is added on top, fallback devices additionally pay the whole
// conventional suite (they were already inserted on the signature tester),
// and the orchestrator overheads — site quarantine, journal fsyncs and
// distributed-floor wire time — are amortized over the lot so the cost
// comparison stays honest about what crash recovery, circuit breaking and
// networking actually cost.
func EffectiveSignatureS(sig *SignatureTester, conv []SpecTest, handlerS float64, l RetestLoad) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	total := float64(l.Insertions)*(sig.InsertionS()+handlerS) +
		l.ExtraSettleS +
		float64(l.FallbackDevices)*(SuiteDuration(conv)+handlerS) +
		l.QuarantineS + l.JournalS + l.NetworkS
	return total / float64(l.Devices), nil
}

// CompareTestTimeUnderLoad is CompareTestTime with the signature flow
// charged for its retests and fallbacks — the throughput comparison a
// faulty production floor would actually see.
func CompareTestTimeUnderLoad(suite []SpecTest, sig *SignatureTester, handlerS float64, l RetestLoad) (TimeComparison, error) {
	sigS, err := EffectiveSignatureS(sig, suite, handlerS, l)
	if err != nil {
		return TimeComparison{}, err
	}
	conv := SuiteDuration(suite) + handlerS
	return TimeComparison{
		ConventionalS:          conv,
		SignatureS:             sigS,
		Speedup:                conv / sigS,
		ThroughputConventional: 3600 / conv,
		ThroughputSignature:    3600 / sigS,
	}, nil
}
