package regress

// Model serialization for the calibration registry: every trained model
// kind round-trips through a type-tagged JSON envelope so a calibration
// artifact can be persisted, shipped to a remote site, and rebuilt into a
// model whose Predict is bit-identical to the original (same float64
// state, same evaluation order).

import (
	"encoding/json"
	"fmt"

	"repro/internal/linalg"
)

// modelEnvelope tags a serialized model with its concrete kind.
type modelEnvelope struct {
	Kind  string          `json:"kind"`
	State json.RawMessage `json:"state"`
}

type linearState struct {
	Nz *Normalizer `json:"nz"`
	W  []float64   `json:"w"`
	B  float64     `json:"b"`
}

type polyPCAState struct {
	Nz    *Normalizer     `json:"nz"`
	PCA   *linalg.PCA     `json:"pca"`
	Inner json.RawMessage `json:"inner"`
}

type marsState struct {
	Nz    *Normalizer `json:"nz"`
	Bases [][]hinge   `json:"bases"`
	Coef  []float64   `json:"coef"`
}

// EncodeModel serializes a trained model into a type-tagged JSON envelope.
// Only models produced by this package's trainers are supported.
func EncodeModel(m Model) ([]byte, error) {
	var env modelEnvelope
	switch t := m.(type) {
	case *linearModel:
		st, err := json.Marshal(linearState{Nz: t.nz, W: t.w, B: t.b})
		if err != nil {
			return nil, err
		}
		env = modelEnvelope{Kind: "linear", State: st}
	case *polyPCAModel:
		inner, err := EncodeModel(t.inner)
		if err != nil {
			return nil, err
		}
		st, err := json.Marshal(polyPCAState{Nz: t.nz, PCA: t.pca, Inner: inner})
		if err != nil {
			return nil, err
		}
		env = modelEnvelope{Kind: "poly-pca", State: st}
	case *marsModel:
		bases := make([][]hinge, len(t.bases))
		for i, b := range t.bases {
			bases[i] = []hinge(b)
		}
		st, err := json.Marshal(marsState{Nz: t.nz, Bases: bases, Coef: t.coef})
		if err != nil {
			return nil, err
		}
		env = modelEnvelope{Kind: "mars", State: st}
	default:
		return nil, fmt.Errorf("regress: cannot encode model of type %T", m)
	}
	return json.Marshal(env)
}

// DecodeModel rebuilds a model from an EncodeModel envelope.
func DecodeModel(data []byte) (Model, error) {
	var env modelEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("regress: decode model envelope: %w", err)
	}
	switch env.Kind {
	case "linear":
		var st linearState
		if err := json.Unmarshal(env.State, &st); err != nil {
			return nil, fmt.Errorf("regress: decode linear model: %w", err)
		}
		if st.Nz == nil {
			return nil, fmt.Errorf("regress: linear model missing normalizer")
		}
		return &linearModel{nz: st.Nz, w: st.W, b: st.B}, nil
	case "poly-pca":
		var st polyPCAState
		if err := json.Unmarshal(env.State, &st); err != nil {
			return nil, fmt.Errorf("regress: decode poly-pca model: %w", err)
		}
		if st.Nz == nil || st.PCA == nil || st.PCA.Components == nil {
			return nil, fmt.Errorf("regress: poly-pca model missing state")
		}
		inner, err := DecodeModel(st.Inner)
		if err != nil {
			return nil, err
		}
		return &polyPCAModel{nz: st.Nz, pca: st.PCA, inner: inner}, nil
	case "mars":
		var st marsState
		if err := json.Unmarshal(env.State, &st); err != nil {
			return nil, fmt.Errorf("regress: decode mars model: %w", err)
		}
		if st.Nz == nil {
			return nil, fmt.Errorf("regress: mars model missing normalizer")
		}
		bases := make([]basis, len(st.Bases))
		for i, b := range st.Bases {
			bases[i] = basis(b)
		}
		return &marsModel{nz: st.Nz, bases: bases, coef: st.Coef}, nil
	default:
		return nil, fmt.Errorf("regress: unknown model kind %q", env.Kind)
	}
}
