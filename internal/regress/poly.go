package regress

import (
	"fmt"

	"repro/internal/linalg"
)

// PolyPCA reduces features to nComp principal components, expands them with
// quadratic terms (squares and pairwise products), and fits ridge
// regression on the expansion. This is the workhorse "nonlinear regression"
// for high-dimensional FFT-bin signatures: PCA tames the collinear bins,
// the quadratic terms capture the mild curvature of the spec maps.
type PolyPCA struct {
	Components int     // principal components kept (default 8)
	Lambda     float64 // ridge strength on the expanded features (default 1e-6)
}

// Name implements Trainer.
func (p PolyPCA) Name() string { return fmt.Sprintf("poly-pca(%d)", p.components()) }

func (p PolyPCA) components() int {
	if p.Components <= 0 {
		return 8
	}
	return p.Components
}

func (p PolyPCA) lambda() float64 {
	if p.Lambda <= 0 {
		return 1e-6
	}
	return p.Lambda
}

type polyPCAModel struct {
	nz    *Normalizer
	pca   *linalg.PCA
	inner Model
}

func (m *polyPCAModel) Predict(x []float64) float64 {
	z := m.pca.Transform(m.nz.Apply(x))
	return m.inner.Predict(quadExpand(z))
}

// quadExpand appends squares and pairwise products to z.
func quadExpand(z []float64) []float64 {
	k := len(z)
	out := make([]float64, 0, k+k*(k+1)/2)
	out = append(out, z...)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			out = append(out, z[i]*z[j])
		}
	}
	return out
}

// Fit implements Trainer.
func (p PolyPCA) Fit(X *linalg.Matrix, y []float64) (Model, error) {
	if X.Rows != len(y) {
		return nil, fmt.Errorf("regress: %d rows vs %d targets", X.Rows, len(y))
	}
	nz := FitNormalizer(X)
	Z := nz.ApplyAll(X)
	ncomp := p.components()
	if ncomp > Z.Rows-2 {
		ncomp = max(Z.Rows-2, 1)
	}
	pca := linalg.ComputePCA(Z, ncomp)
	scores := pca.TransformAll(Z)
	// Quadratic expansion.
	first := quadExpand(scores.Row(0))
	E := linalg.NewMatrix(scores.Rows, len(first))
	for i := 0; i < scores.Rows; i++ {
		E.SetRow(i, quadExpand(scores.Row(i)))
	}
	inner, err := Ridge{Lambda: p.lambda()}.Fit(E, y)
	if err != nil {
		return nil, err
	}
	return &polyPCAModel{nz: nz, pca: pca, inner: inner}, nil
}
