package regress

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// foldEval fits tr on every row outside fold f of the permuted assignment
// and returns the squared-error sum and count over the held-out rows. It
// touches only its arguments, so folds evaluate concurrently.
func foldEval(tr Trainer, X *linalg.Matrix, y []float64, perm []int, k, f int) (float64, int, error) {
	var trainIdx, testIdx []int
	for i, p := range perm {
		if i%k == f {
			testIdx = append(testIdx, p)
		} else {
			trainIdx = append(trainIdx, p)
		}
	}
	Xt := linalg.NewMatrix(len(trainIdx), X.Cols)
	yt := make([]float64, len(trainIdx))
	for i, p := range trainIdx {
		Xt.SetRow(i, X.Row(p))
		yt[i] = y[p]
	}
	model, err := tr.Fit(Xt, yt)
	if err != nil {
		return 0, 0, fmt.Errorf("regress: fold %d: %w", f, err)
	}
	var sse float64
	for _, p := range testIdx {
		r := model.Predict(X.Row(p)) - y[p]
		sse += r * r
	}
	return sse, len(testIdx), nil
}

func validateCV(X *linalg.Matrix, y []float64, k int) error {
	if X.Rows != len(y) {
		return fmt.Errorf("regress: %d rows vs %d targets", X.Rows, len(y))
	}
	if k < 2 || k > X.Rows {
		return fmt.Errorf("regress: fold count %d invalid for %d rows", k, X.Rows)
	}
	return nil
}

// CrossValidateSeeded estimates a trainer's out-of-sample RMS error with
// k-fold cross-validation. The fold assignment is a shuffle drawn from
// seed alone and the folds evaluate concurrently on workers goroutines
// (1 = inline), accumulating per-fold partial sums that are reduced in
// fold order — so the estimate is bit-identical for every worker count.
func CrossValidateSeeded(tr Trainer, X *linalg.Matrix, y []float64, k int, seed int64, workers int) (float64, error) {
	if err := validateCV(X, y, k); err != nil {
		return 0, err
	}
	perm := rand.New(rand.NewSource(seed)).Perm(X.Rows)
	sse := make([]float64, k)
	count := make([]int, k)
	if err := parallel.ForEach(workers, k, func(f int) error {
		s, c, err := foldEval(tr, X, y, perm, k, f)
		if err != nil {
			return err
		}
		sse[f], count[f] = s, c
		return nil
	}); err != nil {
		return 0, err
	}
	var totSSE float64
	var tot int
	for f := 0; f < k; f++ {
		totSSE += sse[f]
		tot += count[f]
	}
	return math.Sqrt(totSSE / float64(tot)), nil
}

// CrossValidate is CrossValidateSeeded with the fold-assignment seed drawn
// from rng, evaluated serially (kept for callers that thread one RNG
// through a larger experiment).
func CrossValidate(tr Trainer, X *linalg.Matrix, y []float64, k int, rng *rand.Rand) (float64, error) {
	return CrossValidateSeeded(tr, X, y, k, rng.Int63(), 1)
}

// SelectBestSeeded cross-validates every trainer and returns the one with
// the lowest CV RMS error, fitted on the full data. Trainer i's fold
// assignment derives from parallel.SubSeed(seed, i) — its own stream, so
// a trainer's score does not depend on how many trainers ran before it
// (one shared *rand.Rand used to make every later trainer's folds shift
// whenever a trainer was added). All (trainer, fold) pairs evaluate
// concurrently on workers goroutines; scores reduce in index order and
// ties break toward the earlier trainer, so selection is deterministic
// and worker-count-independent.
func SelectBestSeeded(trainers []Trainer, X *linalg.Matrix, y []float64, k int, seed int64, workers int) (Model, Trainer, float64, error) {
	if len(trainers) == 0 {
		return nil, nil, 0, fmt.Errorf("regress: no trainers given")
	}
	if err := validateCV(X, y, k); err != nil {
		return nil, nil, 0, err
	}
	nt := len(trainers)
	perms := make([][]int, nt)
	for i := range trainers {
		perms[i] = rand.New(rand.NewSource(parallel.SubSeed(seed, i))).Perm(X.Rows)
	}
	sse := make([]float64, nt*k)
	count := make([]int, nt*k)
	errf := func(i int, err error) error {
		return fmt.Errorf("regress: %s: %w", trainers[i].Name(), err)
	}
	if err := parallel.ForEach(workers, nt*k, func(t int) error {
		i, f := t/k, t%k
		s, c, err := foldEval(trainers[i], X, y, perms[i], k, f)
		if err != nil {
			return errf(i, err)
		}
		sse[t], count[t] = s, c
		return nil
	}); err != nil {
		return nil, nil, 0, err
	}
	bestRMS := math.Inf(1)
	best := -1
	for i := 0; i < nt; i++ {
		var s float64
		var c int
		for f := 0; f < k; f++ {
			s += sse[i*k+f]
			c += count[i*k+f]
		}
		if rms := math.Sqrt(s / float64(c)); rms < bestRMS {
			bestRMS, best = rms, i
		}
	}
	model, err := trainers[best].Fit(X, y)
	if err != nil {
		return nil, nil, 0, err
	}
	return model, trainers[best], bestRMS, nil
}

// SelectBest is SelectBestSeeded with the base seed drawn from rng and
// serial evaluation (compatibility entry point; per-trainer sub-seeding
// applies either way, so scores are order-independent here too).
func SelectBest(trainers []Trainer, X *linalg.Matrix, y []float64, k int, rng *rand.Rand) (Model, Trainer, float64, error) {
	return SelectBestSeeded(trainers, X, y, k, rng.Int63(), 1)
}
