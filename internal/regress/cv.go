package regress

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// CrossValidate estimates a trainer's out-of-sample RMS error with k-fold
// cross-validation (folds assigned by a seeded shuffle for repeatability).
func CrossValidate(tr Trainer, X *linalg.Matrix, y []float64, k int, rng *rand.Rand) (float64, error) {
	n := X.Rows
	if n != len(y) {
		return 0, fmt.Errorf("regress: %d rows vs %d targets", n, len(y))
	}
	if k < 2 || k > n {
		return 0, fmt.Errorf("regress: fold count %d invalid for %d rows", k, n)
	}
	perm := rng.Perm(n)
	var sse float64
	var count int
	for f := 0; f < k; f++ {
		var trainIdx, testIdx []int
		for i, p := range perm {
			if i%k == f {
				testIdx = append(testIdx, p)
			} else {
				trainIdx = append(trainIdx, p)
			}
		}
		Xt := linalg.NewMatrix(len(trainIdx), X.Cols)
		yt := make([]float64, len(trainIdx))
		for i, p := range trainIdx {
			Xt.SetRow(i, X.Row(p))
			yt[i] = y[p]
		}
		model, err := tr.Fit(Xt, yt)
		if err != nil {
			return 0, fmt.Errorf("regress: fold %d: %w", f, err)
		}
		for _, p := range testIdx {
			r := model.Predict(X.Row(p)) - y[p]
			sse += r * r
			count++
		}
	}
	return math.Sqrt(sse / float64(count)), nil
}

// SelectBest cross-validates every trainer and returns the one with the
// lowest CV RMS error, fitted on the full data.
func SelectBest(trainers []Trainer, X *linalg.Matrix, y []float64, k int, rng *rand.Rand) (Model, Trainer, float64, error) {
	if len(trainers) == 0 {
		return nil, nil, 0, fmt.Errorf("regress: no trainers given")
	}
	bestRMS := math.Inf(1)
	var bestTr Trainer
	for _, tr := range trainers {
		rms, err := CrossValidate(tr, X, y, k, rng)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("regress: %s: %w", tr.Name(), err)
		}
		if rms < bestRMS {
			bestRMS, bestTr = rms, tr
		}
	}
	model, err := bestTr.Fit(X, y)
	if err != nil {
		return nil, nil, 0, err
	}
	return model, bestTr, bestRMS, nil
}
