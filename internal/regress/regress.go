// Package regress implements the nonlinear regression used to map measured
// signatures into data-sheet specifications (the paper's Section 3.2:
// "Using nonlinear regression techniques on the measured data, normalized
// calibration relationships between the specifications and signatures are
// extracted", citing [4] and [9]). It provides z-score normalization,
// linear and ridge least squares, polynomial feature expansion, a
// MARS-style hinge regression with GCV pruning, and k-fold cross-validation
// for model selection.
package regress

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Model predicts a scalar specification from a feature vector.
type Model interface {
	Predict(x []float64) float64
}

// Trainer fits a Model to rows of X (n x d) against targets y (n).
type Trainer interface {
	Fit(X *linalg.Matrix, y []float64) (Model, error)
	Name() string
}

// Normalizer performs the paper's "process of normalization": features are
// shifted and scaled to zero mean, unit variance using training statistics.
type Normalizer struct {
	Mean, Std []float64
}

// FitNormalizer computes column statistics of X. Constant columns get
// Std = 1 so they pass through harmlessly.
func FitNormalizer(X *linalg.Matrix) *Normalizer {
	n, d := X.Rows, X.Cols
	nz := &Normalizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += X.At(i, j)
		}
		m := s / float64(n)
		v := 0.0
		for i := 0; i < n; i++ {
			dv := X.At(i, j) - m
			v += dv * dv
		}
		sd := math.Sqrt(v / float64(max(n-1, 1)))
		if sd == 0 {
			sd = 1
		}
		nz.Mean[j], nz.Std[j] = m, sd
	}
	return nz
}

// Apply normalizes one feature vector.
func (nz *Normalizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - nz.Mean[j]) / nz.Std[j]
	}
	return out
}

// ApplyAll normalizes every row.
func (nz *Normalizer) ApplyAll(X *linalg.Matrix) *linalg.Matrix {
	out := linalg.NewMatrix(X.Rows, X.Cols)
	for i := 0; i < X.Rows; i++ {
		out.SetRow(i, nz.Apply(X.Row(i)))
	}
	return out
}

// linearModel is w^T x + b on normalized features.
type linearModel struct {
	nz *Normalizer
	w  []float64
	b  float64
}

func (m *linearModel) Predict(x []float64) float64 {
	z := m.nz.Apply(x)
	return linalg.Dot(m.w, z) + m.b
}

// Ridge is linear least squares with L2 penalty lambda (0 = plain least
// squares via pseudoinverse, safe for collinear FFT-bin features).
type Ridge struct {
	Lambda float64
}

// Name implements Trainer.
func (r Ridge) Name() string {
	if r.Lambda == 0 {
		return "linear"
	}
	return fmt.Sprintf("ridge(%.3g)", r.Lambda)
}

// Fit solves (Z^T Z + lambda I) w = Z^T y on normalized, centered data.
func (r Ridge) Fit(X *linalg.Matrix, y []float64) (Model, error) {
	if X.Rows != len(y) {
		return nil, fmt.Errorf("regress: %d rows vs %d targets", X.Rows, len(y))
	}
	if X.Rows < 2 {
		return nil, fmt.Errorf("regress: need at least 2 training rows, got %d", X.Rows)
	}
	nz := FitNormalizer(X)
	Z := nz.ApplyAll(X)
	n, d := Z.Rows, Z.Cols
	ymean := 0.0
	for _, v := range y {
		ymean += v
	}
	ymean /= float64(n)
	yc := make([]float64, n)
	for i := range y {
		yc[i] = y[i] - ymean
	}
	var w []float64
	if r.Lambda <= 0 {
		w = linalg.SolveLeastSquares(Z, yc)
	} else {
		// Normal equations with Tikhonov term.
		g := Z.T().Mul(Z)
		for i := 0; i < d; i++ {
			g.Set(i, i, g.At(i, i)+r.Lambda)
		}
		rhs := Z.T().MulVec(yc)
		var err error
		w, err = linalg.SolveLinear(g, rhs)
		if err != nil {
			return nil, fmt.Errorf("regress: ridge solve: %w", err)
		}
	}
	return &linearModel{nz: nz, w: w, b: ymean}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
