package regress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// MARS is a simplified Multivariate Adaptive Regression Splines trainer —
// the regression family of the papers the calibration flow cites ([4],
// [9]). The forward pass greedily adds reflected-pair hinge bases
// max(0, x_j - t) / max(0, t - x_j) (optionally in two-way products with an
// existing basis); the backward pass prunes terms by generalized
// cross-validation (GCV).
type MARS struct {
	MaxTerms     int  // maximum basis functions incl. intercept (default 13)
	Knots        int  // candidate knots per variable (default 5, at quantiles)
	Interactions bool // allow two-way hinge products
}

// Name implements Trainer.
func (m MARS) Name() string { return "mars" }

func (m MARS) maxTerms() int {
	if m.MaxTerms <= 1 {
		return 13
	}
	return m.MaxTerms
}

func (m MARS) knots() int {
	if m.Knots <= 0 {
		return 5
	}
	return m.Knots
}

// hinge is one factor of a basis function.
type hinge struct {
	Var  int
	Knot float64
	Sign int // +1: max(0, x-t); -1: max(0, t-x)
}

func (h hinge) eval(x []float64) float64 {
	v := float64(h.Sign) * (x[h.Var] - h.Knot)
	if v < 0 {
		return 0
	}
	return v
}

// basis is a product of hinges (empty = intercept).
type basis []hinge

func (b basis) eval(x []float64) float64 {
	v := 1.0
	for _, h := range b {
		v *= h.eval(x)
		if v == 0 {
			return 0
		}
	}
	return v
}

type marsModel struct {
	nz    *Normalizer
	bases []basis
	coef  []float64
}

func (m *marsModel) Predict(x []float64) float64 {
	z := m.nz.Apply(x)
	s := 0.0
	for i, b := range m.bases {
		s += m.coef[i] * b.eval(z)
	}
	return s
}

// Fit implements Trainer.
func (m MARS) Fit(X *linalg.Matrix, y []float64) (Model, error) {
	if X.Rows != len(y) {
		return nil, fmt.Errorf("regress: %d rows vs %d targets", X.Rows, len(y))
	}
	if X.Rows < 4 {
		return nil, fmt.Errorf("regress: MARS needs at least 4 rows, got %d", X.Rows)
	}
	nz := FitNormalizer(X)
	Z := nz.ApplyAll(X)
	n, d := Z.Rows, Z.Cols
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = Z.Row(i)
	}

	// Candidate knots per variable at quantiles of the training data.
	knots := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := Z.Col(j)
		sort.Float64s(col)
		ks := make([]float64, 0, m.knots())
		for q := 1; q <= m.knots(); q++ {
			ks = append(ks, col[(q*(n-1))/(m.knots()+1)])
		}
		knots[j] = dedupFloats(ks)
	}

	bases := []basis{{}} // intercept
	cols := [][]float64{ones(n)}
	coef, sse := solveLS(cols, y)

	// Forward pass.
	for len(bases) < m.maxTerms() {
		type cand struct {
			b1, b2 basis
			sse    float64
			coef   []float64
		}
		var best *cand
		parents := []basis{{}}
		if m.Interactions {
			parents = bases
		}
		for _, parent := range parents {
			if len(parent) >= 2 {
				continue // limit interaction order to 2
			}
			for j := 0; j < d; j++ {
				if usesVar(parent, j) {
					continue
				}
				for _, t := range knots[j] {
					b1 := append(append(basis{}, parent...), hinge{Var: j, Knot: t, Sign: +1})
					b2 := append(append(basis{}, parent...), hinge{Var: j, Knot: t, Sign: -1})
					c1 := evalColumn(b1, rows)
					c2 := evalColumn(b2, rows)
					trial := append(append([][]float64{}, cols...), c1, c2)
					co, s := solveLS(trial, y)
					if best == nil || s < best.sse {
						best = &cand{b1: b1, b2: b2, sse: s, coef: co}
					}
				}
			}
		}
		if best == nil || best.sse > sse*(1-1e-6) {
			break // no meaningful improvement
		}
		bases = append(bases, best.b1, best.b2)
		cols = append(cols, evalColumn(best.b1, rows), evalColumn(best.b2, rows))
		coef, sse = best.coef, best.sse
	}

	// Backward pruning by GCV.
	gcv := func(sse float64, nterms int) float64 {
		c := float64(nterms) + 2*float64(nterms-1) // effective parameters
		den := 1 - c/float64(n)
		if den <= 0 {
			return math.Inf(1)
		}
		return sse / float64(n) / (den * den)
	}
	bestGCV := gcv(sse, len(bases))
	improved := true
	for improved && len(bases) > 1 {
		improved = false
		for drop := 1; drop < len(bases); drop++ {
			tb := make([][]float64, 0, len(cols)-1)
			bb := make([]basis, 0, len(bases)-1)
			for i := range bases {
				if i == drop {
					continue
				}
				tb = append(tb, cols[i])
				bb = append(bb, bases[i])
			}
			co, s := solveLS(tb, y)
			if g := gcv(s, len(bb)); g < bestGCV {
				bestGCV = g
				bases, cols, coef, sse = bb, tb, co, s
				improved = true
				break
			}
		}
	}
	return &marsModel{nz: nz, bases: bases, coef: coef}, nil
}

// solveLS fits y against the given columns (least squares via
// pseudoinverse) and returns coefficients and SSE.
func solveLS(cols [][]float64, y []float64) ([]float64, float64) {
	n := len(y)
	A := linalg.NewMatrix(n, len(cols))
	for j, c := range cols {
		for i := 0; i < n; i++ {
			A.Set(i, j, c[i])
		}
	}
	w := linalg.SolveLeastSquares(A, y)
	pred := A.MulVec(w)
	sse := 0.0
	for i := range y {
		r := y[i] - pred[i]
		sse += r * r
	}
	return w, sse
}

func evalColumn(b basis, rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = b.eval(r)
	}
	return out
}

func usesVar(b basis, j int) bool {
	for _, h := range b {
		if h.Var == j {
			return true
		}
	}
	return false
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func dedupFloats(v []float64) []float64 {
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != v[i-1] {
			out = append(out, x)
		}
	}
	return out
}
