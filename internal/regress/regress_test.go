package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// makeData generates n samples of a known function of d features.
func makeData(rng *rand.Rand, n, d int, f func([]float64) float64, noise float64) (*linalg.Matrix, []float64) {
	X := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X.SetRow(i, row)
		y[i] = f(row) + noise*rng.NormFloat64()
	}
	return X, y
}

func linearFn(x []float64) float64 {
	return 3 + 2*x[0] - 1.5*x[1] + 0.5*x[2]
}

func TestLinearRecoversExactModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := makeData(rng, 80, 4, linearFn, 0)
	m, err := Ridge{}.Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(rng, 30, 4, linearFn, 0)
	for i := 0; i < Xt.Rows; i++ {
		if p := m.Predict(Xt.Row(i)); math.Abs(p-yt[i]) > 1e-9 {
			t.Fatalf("prediction %g vs %g", p, yt[i])
		}
	}
}

func TestRidgeShrinksAndStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Perfectly collinear features: plain normal equations would be
	// singular; pinv and ridge must both survive.
	n := 40
	X := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		X.SetRow(i, []float64{v, 2 * v})
		y[i] = 3 * v
	}
	for _, tr := range []Trainer{Ridge{}, Ridge{Lambda: 1e-3}} {
		m, err := tr.Fit(X, y)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if p := m.Predict([]float64{1, 2}); math.Abs(p-3) > 0.05 {
			t.Fatalf("%s: collinear prediction %g, want 3", tr.Name(), p)
		}
	}
}

func TestNormalizerStats(t *testing.T) {
	X := linalg.FromRows([][]float64{{1, 10}, {3, 10}, {5, 10}})
	nz := FitNormalizer(X)
	if nz.Mean[0] != 3 {
		t.Fatalf("mean %v", nz.Mean)
	}
	if nz.Std[1] != 1 {
		t.Fatal("constant column must get unit std")
	}
	z := nz.Apply([]float64{5, 10})
	if math.Abs(z[0]-1) > 1e-12 || z[1] != 0 {
		t.Fatalf("normalized %v", z)
	}
}

func TestPolyPCARecoversQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(x []float64) float64 { return 1 + x[0] + 0.8*x[1]*x[1] - 0.5*x[0]*x[2] }
	X, y := makeData(rng, 150, 5, f, 0.01)
	m, err := PolyPCA{Components: 5}.Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(rng, 50, 5, f, 0)
	pred := make([]float64, Xt.Rows)
	for i := range pred {
		pred[i] = m.Predict(Xt.Row(i))
	}
	rms := 0.0
	for i := range pred {
		r := pred[i] - yt[i]
		rms += r * r
	}
	rms = math.Sqrt(rms / float64(len(pred)))
	if rms > 0.1 {
		t.Fatalf("PolyPCA RMS %g on quadratic target", rms)
	}
}

func TestMARSFitsPiecewiseLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(x []float64) float64 {
		// A genuinely hinge-shaped target.
		return 2 + 3*math.Max(0, x[0]-0.2) - 2*math.Max(0, -x[1])
	}
	X, y := makeData(rng, 200, 4, f, 0.02)
	m, err := MARS{MaxTerms: 13, Knots: 7}.Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(rng, 60, 4, f, 0)
	var sse, ssy, my float64
	for i := range yt {
		my += yt[i]
	}
	my /= float64(len(yt))
	for i := 0; i < Xt.Rows; i++ {
		r := m.Predict(Xt.Row(i)) - yt[i]
		sse += r * r
		d := yt[i] - my
		ssy += d * d
	}
	if r2 := 1 - sse/ssy; r2 < 0.95 {
		t.Fatalf("MARS R^2 = %g on hinge target", r2)
	}
}

func TestMARSInteractions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(x []float64) float64 {
		return math.Max(0, x[0]) * math.Max(0, x[1])
	}
	X, y := makeData(rng, 250, 3, f, 0.01)
	additive, err := MARS{MaxTerms: 13}.Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := MARS{MaxTerms: 13, Interactions: true}.Fit(X, y)
	if err != nil {
		t.Fatal(err)
	}
	Xt, yt := makeData(rng, 80, 3, f, 0)
	rms := func(m Model) float64 {
		s := 0.0
		for i := 0; i < Xt.Rows; i++ {
			r := m.Predict(Xt.Row(i)) - yt[i]
			s += r * r
		}
		return math.Sqrt(s / float64(Xt.Rows))
	}
	if rms(inter) > rms(additive)*1.05 {
		t.Fatalf("interactions should help on a product target: %g vs %g", rms(inter), rms(additive))
	}
}

func TestCrossValidatePrefersTrueModelClass(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := makeData(rng, 60, 4, linearFn, 0.05)
	cvLin, err := CrossValidate(Ridge{}, X, y, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if cvLin > 0.12 {
		t.Fatalf("linear CV RMS %g on linear target", cvLin)
	}
	model, tr, rms, err := SelectBest([]Trainer{Ridge{}, PolyPCA{Components: 4}}, X, y, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || tr == nil || rms > 0.2 {
		t.Fatalf("SelectBest failed: %v %v %g", model, tr, rms)
	}
}

func TestValidationErrors(t *testing.T) {
	X := linalg.NewMatrix(3, 2)
	ridge := Ridge{}
	mars := MARS{}
	if _, err := ridge.Fit(X, []float64{1}); err == nil {
		t.Fatal("row mismatch must error")
	}
	if _, err := mars.Fit(X, []float64{1, 2, 3}); err == nil {
		t.Fatal("too few rows for MARS must error")
	}
	if _, err := CrossValidate(ridge, X, []float64{1, 2, 3}, 9, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bad fold count must error")
	}
	if _, _, _, err := SelectBest(nil, X, []float64{1, 2, 3}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("no trainers must error")
	}
}

// Property: predictions of a fitted linear model are invariant to feature
// scaling (normalization must absorb units).
func TestPropertyScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		X, y := makeData(rng, 40, 3, linearFn, 0)
		m1, err := Ridge{}.Fit(X, y)
		if err != nil {
			return false
		}
		// Scale feature 0 by 1000.
		X2 := X.Clone()
		for i := 0; i < X2.Rows; i++ {
			X2.Set(i, 0, X2.At(i, 0)*1000)
		}
		m2, err := Ridge{}.Fit(X2, y)
		if err != nil {
			return false
		}
		probe := []float64{0.3, -0.2, 0.7}
		probe2 := []float64{300, -0.2, 0.7}
		return math.Abs(m1.Predict(probe)-m2.Predict(probe2)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
