package regress

import (
	"repro/internal/linalg"
)

// This file provides the allocation-free variants of the predict path. The
// production screen calls Predict once per device per spec, and the original
// implementations allocate fresh slices at every stage (normalize, PCA
// projection, quadratic expansion); at floor throughput that is pure churn.
// Every variant below performs exactly the same floating-point operations in
// exactly the same order as its allocating counterpart, so predictions are
// bit-identical — the batched screening kernel's determinism contract rests
// on that.

// ApplyInto normalizes one feature vector into a caller-provided slice,
// bit-identical to Apply.
func (nz *Normalizer) ApplyInto(x, out []float64) {
	if len(out) != len(x) {
		panic("regress: ApplyInto length mismatch")
	}
	for j := range x {
		out[j] = (x[j] - nz.Mean[j]) / nz.Std[j]
	}
}

// quadExpandInto writes the quadratic expansion of z into out, which must
// have length len(z) + len(z)*(len(z)+1)/2. Values match quadExpand exactly.
func quadExpandInto(z, out []float64) {
	k := len(z)
	if len(out) != k+k*(k+1)/2 {
		panic("regress: quadExpandInto length mismatch")
	}
	copy(out, z)
	idx := k
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			out[idx] = z[i] * z[j]
			idx++
		}
	}
}

// Scratch holds the reusable buffers of one scalar predict call. A zero
// Scratch is ready to use; buffers grow on demand and are reused across
// calls. Not safe for concurrent use.
type Scratch struct {
	nb  []float64 // normalized input
	pc  []float64 // PCA scores
	ex  []float64 // quadratic expansion
	lin []float64 // inner/linear-model normalized features
}

func growSlice(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// ScratchPredictor is implemented by models whose Predict has an
// allocation-free variant. Predictions are bit-identical to Predict.
type ScratchPredictor interface {
	Model
	PredictScratch(x []float64, s *Scratch) float64
}

// BatchPredictor is implemented by models that can predict a whole stacked
// batch of feature rows at once, pushing the K x d matrix through each model
// stage as one matrix-matrix product instead of K matrix-vector calls.
// out[i] is bit-identical to Predict(X.Row(i)).
type BatchPredictor interface {
	Model
	PredictBatch(X *linalg.Matrix, out []float64, s *BatchScratch)
}

// BatchScratch holds the reusable matrices of one batched predict call. A
// zero BatchScratch is ready to use. Not safe for concurrent use.
type BatchScratch struct {
	z   *linalg.Matrix // normalized rows
	c   *linalg.Matrix // centered rows (PCA input)
	s   *linalg.Matrix // PCA scores
	e   *linalg.Matrix // quadratic expansion
	w   *linalg.Matrix // weight column
	o   *linalg.Matrix // output column
	row Scratch        // row-at-a-time fallback (MARS)
}

// mat resizes (reusing backing storage) and returns one scratch matrix.
func mat(m **linalg.Matrix, r, c int) *linalg.Matrix {
	if *m == nil || cap((*m).Data) < r*c {
		*m = linalg.NewMatrix(r, c)
		return *m
	}
	(*m).Rows, (*m).Cols = r, c
	(*m).Data = (*m).Data[:r*c]
	return *m
}

// ---- linearModel ----

// PredictScratch is Predict without the per-call normalize allocation.
func (m *linearModel) PredictScratch(x []float64, s *Scratch) float64 {
	z := growSlice(&s.lin, len(x))
	m.nz.ApplyInto(x, z)
	return linalg.Dot(m.w, z) + m.b
}

// PredictBatch normalizes the stacked rows and multiplies them through the
// weight vector as one K x d * d x 1 product. MatMulInto accumulates each
// row's terms in the same increasing-index order as Dot, so out[i] carries
// the same bits as Predict(X.Row(i)).
func (m *linearModel) PredictBatch(X *linalg.Matrix, out []float64, s *BatchScratch) {
	n, d := X.Rows, X.Cols
	z := mat(&s.z, n, d)
	for i := 0; i < n; i++ {
		m.nz.ApplyInto(X.Data[i*d:(i+1)*d], z.Data[i*d:(i+1)*d])
	}
	w := mat(&s.w, d, 1)
	copy(w.Data, m.w)
	o := mat(&s.o, n, 1)
	linalg.MatMulInto(o, z, w)
	for i := 0; i < n; i++ {
		out[i] = o.Data[i] + m.b
	}
}

// ---- polyPCAModel ----

// PredictScratch is Predict with every stage writing into reused buffers.
func (m *polyPCAModel) PredictScratch(x []float64, s *Scratch) float64 {
	z := growSlice(&s.nb, len(x))
	m.nz.ApplyInto(x, z)
	k := m.pca.Components.Cols
	pc := growSlice(&s.pc, k)
	m.pca.TransformInto(z, pc)
	ex := growSlice(&s.ex, k+k*(k+1)/2)
	quadExpandInto(pc, ex)
	if sp, ok := m.inner.(ScratchPredictor); ok {
		return sp.PredictScratch(ex, s)
	}
	return m.inner.Predict(ex)
}

// PredictBatch pushes the stacked rows through normalize, PCA projection,
// quadratic expansion and the inner model, each stage operating on the whole
// K-row matrix at once.
func (m *polyPCAModel) PredictBatch(X *linalg.Matrix, out []float64, s *BatchScratch) {
	n, d := X.Rows, X.Cols
	z := mat(&s.z, n, d)
	for i := 0; i < n; i++ {
		m.nz.ApplyInto(X.Data[i*d:(i+1)*d], z.Data[i*d:(i+1)*d])
	}
	k := m.pca.Components.Cols
	sc := mat(&s.s, n, k)
	ce := mat(&s.c, n, d)
	m.pca.TransformBatchInto(sc, ce, z)
	de := k + k*(k+1)/2
	e := mat(&s.e, n, de)
	for i := 0; i < n; i++ {
		quadExpandInto(sc.Data[i*k:(i+1)*k], e.Data[i*de:(i+1)*de])
	}
	if bp, ok := m.inner.(BatchPredictor); ok {
		bp.PredictBatch(e, out, s)
		return
	}
	for i := 0; i < n; i++ {
		out[i] = m.inner.Predict(e.Data[i*de : (i+1)*de])
	}
}

// ---- marsModel ----

// PredictScratch is Predict without the per-call normalize allocation.
func (m *marsModel) PredictScratch(x []float64, s *Scratch) float64 {
	z := growSlice(&s.nb, len(x))
	m.nz.ApplyInto(x, z)
	sum := 0.0
	for i, b := range m.bases {
		sum += m.coef[i] * b.eval(z)
	}
	return sum
}

// PredictBatch evaluates the hinge bases row by row (hinge products do not
// decompose into a matrix product) but reuses one normalize buffer across
// the batch.
func (m *marsModel) PredictBatch(X *linalg.Matrix, out []float64, s *BatchScratch) {
	d := X.Cols
	for i := 0; i < X.Rows; i++ {
		out[i] = m.PredictScratch(X.Data[i*d:(i+1)*d], &s.row)
	}
}
