package regress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func fitAllFamilies(t *testing.T, rng *rand.Rand) (X *linalg.Matrix, models []Model) {
	t.Helper()
	n, d := 40, 12
	X = linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			X.Set(i, j, rng.NormFloat64())
		}
		r := X.Row(i)
		y[i] = 2*r[0] - 0.5*r[3]*r[3] + 0.1*rng.NormFloat64()
	}
	for _, tr := range []Trainer{Ridge{Lambda: 1e-6}, PolyPCA{Components: 5}, MARS{MaxTerms: 9, Knots: 4}} {
		m, err := tr.Fit(X, y)
		if err != nil {
			t.Fatalf("%s fit: %v", tr.Name(), err)
		}
		models = append(models, m)
	}
	return X, models
}

// TestScratchAndBatchBitIdentity verifies PredictScratch and PredictBatch
// against Predict bit for bit for every model family, across batch sizes.
func TestScratchAndBatchBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	_, models := fitAllFamilies(t, rng)
	for _, kBatch := range []int{1, 3, 16, 64} {
		P := linalg.NewMatrix(kBatch, 12)
		for i := range P.Data {
			P.Data[i] = rng.NormFloat64() * 2
		}
		for mi, m := range models {
			want := make([]float64, kBatch)
			for i := 0; i < kBatch; i++ {
				want[i] = m.Predict(P.Row(i))
			}
			sp, ok := m.(ScratchPredictor)
			if !ok {
				t.Fatalf("model %d does not implement ScratchPredictor", mi)
			}
			var s Scratch
			for i := 0; i < kBatch; i++ {
				got := sp.PredictScratch(P.Row(i), &s)
				if math.Float64bits(got) != math.Float64bits(want[i]) {
					t.Fatalf("model %d K=%d row %d: PredictScratch %v vs %v", mi, kBatch, i, got, want[i])
				}
			}
			bp, ok := m.(BatchPredictor)
			if !ok {
				t.Fatalf("model %d does not implement BatchPredictor", mi)
			}
			var bs BatchScratch
			got := make([]float64, kBatch)
			bp.PredictBatch(P, got, &bs)
			// Run twice through the same scratch to catch stale-state bugs.
			bp.PredictBatch(P, got, &bs)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("model %d K=%d row %d: PredictBatch %v vs %v", mi, kBatch, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDecodedModelsKeepFastPaths ensures models that round-trip through the
// artifact encoding still expose the scratch/batch predictors (they decode
// to the same concrete types).
func TestDecodedModelsKeepFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	_, models := fitAllFamilies(t, rng)
	probe := make([]float64, 12)
	for j := range probe {
		probe[j] = rng.NormFloat64()
	}
	for mi, m := range models {
		blob, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("model %d encode: %v", mi, err)
		}
		back, err := DecodeModel(blob)
		if err != nil {
			t.Fatalf("model %d decode: %v", mi, err)
		}
		sp, ok := back.(ScratchPredictor)
		if !ok {
			t.Fatalf("decoded model %d lost ScratchPredictor", mi)
		}
		if _, ok := back.(BatchPredictor); !ok {
			t.Fatalf("decoded model %d lost BatchPredictor", mi)
		}
		var s Scratch
		if got, want := sp.PredictScratch(probe, &s), back.Predict(probe); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("decoded model %d scratch mismatch", mi)
		}
	}
}

// TestPredictScratchAllocFree pins the allocation count of the steady-state
// scratch predict path at zero for every model family.
func TestPredictScratchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, models := fitAllFamilies(t, rng)
	probe := make([]float64, 12)
	for j := range probe {
		probe[j] = rng.NormFloat64()
	}
	for mi, m := range models {
		sp := m.(ScratchPredictor)
		var s Scratch
		sp.PredictScratch(probe, &s) // warm the buffers
		allocs := testing.AllocsPerRun(100, func() {
			sp.PredictScratch(probe, &s)
		})
		if allocs != 0 {
			t.Fatalf("model %d: PredictScratch allocates %.1f per call, want 0", mi, allocs)
		}
	}
}
