package regress

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// synthData builds a small nonlinear regression problem.
func synthData(n, d int, seed int64) (*linalg.Matrix, []float64, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	X := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X.SetRow(i, row)
		y[i] = 2*row[0] - 0.7*row[1] + 0.3*row[0]*row[1] + 0.1*rng.NormFloat64()
	}
	probes := make([][]float64, 16)
	for i := range probes {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64() * 2
		}
		probes[i] = p
	}
	return X, y, probes
}

// TestModelRoundTrip: every trainer family must round-trip through
// EncodeModel/DecodeModel with bit-identical predictions — the registry's
// contract that a persisted calibration screens exactly like the
// original.
func TestModelRoundTrip(t *testing.T) {
	X, y, probes := synthData(40, 4, 7)
	trainers := []Trainer{
		Ridge{},
		Ridge{Lambda: 1e-4},
		PolyPCA{Components: 3},
		MARS{Interactions: true},
	}
	for _, tr := range trainers {
		m, err := tr.Fit(X, y)
		if err != nil {
			t.Fatalf("%s: fit: %v", tr.Name(), err)
		}
		enc, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", tr.Name(), err)
		}
		back, err := DecodeModel(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", tr.Name(), err)
		}
		for i, p := range probes {
			want, got := m.Predict(p), back.Predict(p)
			if want != got {
				t.Fatalf("%s: probe %d: decoded model predicts %v, original %v", tr.Name(), i, got, want)
			}
		}
	}
}

// TestDecodeModelRejectsGarbage: malformed envelopes must error, never
// panic or yield a half-built model.
func TestDecodeModelRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		``,
		`not json`,
		`{"kind":"alien","state":{}}`,
		`{"kind":"linear","state":{"w":[1,2]}}`,
		`{"kind":"poly-pca","state":{}}`,
		`{"kind":"mars","state":{"coef":[1]}}`,
	} {
		if _, err := DecodeModel([]byte(bad)); err == nil {
			t.Fatalf("DecodeModel(%q) succeeded, want error", bad)
		}
	}
}
