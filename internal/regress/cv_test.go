package regress

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// cvFixture builds a small noisy linear problem.
func cvFixture(seed int64, n, d int) (*linalg.Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		s := 0.0
		for j := range row {
			row[j] = rng.NormFloat64()
			s += float64(j+1) * row[j]
		}
		X.SetRow(i, row)
		y[i] = s + 0.05*rng.NormFloat64()
	}
	return X, y
}

// Regression for the shared-RNG bug: a trainer's CV score must not depend
// on how many trainers were evaluated before it.
func TestSelectBestScoresOrderIndependent(t *testing.T) {
	X, y := cvFixture(1, 40, 3)
	score := func(trainers []Trainer, want Trainer) float64 {
		_, tr, rms, err := SelectBestSeeded(trainers, X, y, 5, 123, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Name() != want.Name() {
			t.Fatalf("expected %s to win, got %s", want.Name(), tr.Name())
		}
		return rms
	}
	// Plain ridge wins on a linear problem against an absurdly
	// over-regularized competitor; appending more losing trainers must not
	// move its winning score — under the old shared-RNG scheme every
	// trainer evaluated earlier shifted the fold assignment of the ones
	// after it.
	awful := Ridge{Lambda: 1e9} // shrinks to the mean, always loses
	a := score([]Trainer{Ridge{}}, Ridge{})
	b := score([]Trainer{Ridge{}, awful}, Ridge{})
	c := score([]Trainer{Ridge{}, awful, awful}, Ridge{})
	if a != b || b != c {
		t.Fatalf("ridge CV score depends on the trainer line-up: %g / %g / %g", a, b, c)
	}
}

func TestSelectBestSeededWorkerBitIdentity(t *testing.T) {
	X, y := cvFixture(2, 36, 4)
	trainers := []Trainer{Ridge{}, Ridge{Lambda: 0.5}, PolyPCA{Components: 3}}
	run := func(workers int) (string, float64) {
		_, tr, rms, err := SelectBestSeeded(trainers, X, y, 6, 77, workers)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Name(), rms
	}
	refName, refRMS := run(1)
	for _, w := range []int{4, 8} {
		name, rms := run(w)
		if name != refName || rms != refRMS {
			t.Fatalf("workers=%d: %s/%v vs serial %s/%v", w, name, rms, refName, refRMS)
		}
	}
}

func TestCrossValidateSeededWorkerBitIdentity(t *testing.T) {
	X, y := cvFixture(3, 30, 3)
	ref, err := CrossValidateSeeded(Ridge{}, X, y, 5, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		got, err := CrossValidateSeeded(Ridge{}, X, y, 5, 7, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: RMS %v vs serial %v", w, got, ref)
		}
	}
}

func TestCrossValidateSeededStableAcrossCalls(t *testing.T) {
	X, y := cvFixture(4, 24, 2)
	a, err := CrossValidateSeeded(Ridge{}, X, y, 4, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateSeeded(Ridge{}, X, y, 4, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || math.IsNaN(a) {
		t.Fatalf("same seed must give one score: %v vs %v", a, b)
	}
}
