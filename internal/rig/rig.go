// Package rig builds the full signature-test engineering rig — optimized
// stimulus, calibration, gate, floor engine and production lot — from a
// handful of scalar parameters. It exists so that every process on a
// distributed test floor derives a bit-identical rig from the same flags:
// the coordinator (cmd/sigtest -remote) and each remote site
// (cmd/sitetester) run Build with the same Params and end up with the
// same engine fingerprint, the same lot, and therefore the same bins —
// the wire only ever needs to carry device indices.
//
// The RNG discipline is the contract: Build consumes the seeded stream in
// exactly the order the original sigtest pipeline did (stimulus GA,
// training population, training-lot seed, calibration, validation
// population, validation, production population), so a rig built here is
// bit-identical to one built by the historical inline code.
package rig

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/floor"
	"repro/internal/lna"
	"repro/internal/wave"
)

// SpecLimits is the pass/fail window applied at production time.
type SpecLimits struct {
	MinGainDB  float64
	MaxNFDB    float64
	MinIIP3DBm float64
}

// LimitsFor returns the data-sheet window for a device family.
func LimitsFor(dut string) SpecLimits {
	if dut == "rf2401" {
		return SpecLimits{MinGainDB: 10.0, MaxNFDB: 4.2, MinIIP3DBm: -9.5}
	}
	return SpecLimits{MinGainDB: 14.5, MaxNFDB: 2.7, MinIIP3DBm: 0.0}
}

// Pass applies the window.
func (l SpecLimits) Pass(s lna.Specs) bool {
	return s.GainDB >= l.MinGainDB && s.NFDB <= l.MaxNFDB && s.IIP3DBm >= l.MinIIP3DBm
}

// Params selects what to build. Two processes with equal Params build
// bit-identical rigs.
type Params struct {
	// DUT is the device family: "lna" (circuit-level) or "rf2401"
	// (behavioral).
	DUT string
	// Seed is the master seed for the whole engineering phase and the lot.
	Seed int64
	// Train is the training lot size (0 = family default: 100 lna,
	// 28 rf2401).
	Train int
	// Produce is the production lot size.
	Produce int
	// Quick shrinks the GA budget.
	Quick bool
	// FaultP is the total per-insertion fault probability for the
	// fault-tolerant floor.
	FaultP float64
	// Workers sizes the off-line worker pools (GA fitness, training
	// acquisition, cross-validation); results are identical for any
	// value >= 1 (0 = 1).
	Workers int
}

// Rig is the built engineering state.
type Rig struct {
	Params Params
	Model  core.DeviceModel
	Cfg    *core.TestConfig
	Spread float64
	// Stim is the GA-optimized stimulus; Trace its per-generation
	// objective.
	Stim  *wave.PWL
	Trace []float64
	// Train is the acquired training set, Cal the regression map fit on
	// it.
	Train []core.TrainingDevice
	Cal   *core.Calibration
	// Validation is the held-out-lot report.
	Validation *core.ValidationReport
	// Lot is the production lot.
	Lot []*core.Device
	// Limits is the data-sheet window; Gate the signature sanity gate fit
	// on the training signatures; Engine the fault-tolerant floor engine;
	// Faults the insertion fault model.
	Limits SpecLimits
	Gate   *floor.Gate
	Engine *floor.Engine
	Faults *floor.FaultModel
	// Rng is the master stream, positioned exactly where the engineering
	// phase left it — callers that keep drawing from it (the plain
	// production path) stay bit-identical to the historical inline code.
	Rng *rand.Rand
}

// Logf receives progress lines during Build (nil = silent).
type Logf func(format string, args ...any)

// Build runs the engineering phase: stimulus optimization, calibration,
// validation, production-lot generation, gate fit and engine assembly.
func Build(p Params, logf Logf) (*Rig, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
	if p.FaultP < 0 || p.FaultP > 1 {
		return nil, fmt.Errorf("rig: fault probability %g outside [0, 1]", p.FaultP)
	}
	if p.Produce < 1 {
		return nil, fmt.Errorf("rig: production lot of %d devices; need >= 1", p.Produce)
	}

	r := &Rig{Params: p}
	defer func() { r.Params.Train = p.Train }()
	switch p.DUT {
	case "lna":
		r.Model = core.NewLNAModel()
		r.Cfg = core.DefaultSimConfig()
		r.Spread = 0.20
		if p.Train == 0 {
			p.Train = 100
		}
	case "rf2401":
		r.Model = core.RF2401Model{}
		r.Cfg = core.DefaultHardwareConfig()
		r.Spread = 0.9
		if p.Train == 0 {
			p.Train = 28
		}
	default:
		return nil, fmt.Errorf("rig: unknown device family %q", p.DUT)
	}
	r.Limits = LimitsFor(p.DUT)

	rng := rand.New(rand.NewSource(p.Seed))
	r.Rng = rng

	opt := core.OptimizerOptions{PopSize: 20, Generations: 5, Workers: p.Workers}
	if p.Quick {
		opt = core.OptimizerOptions{PopSize: 8, Generations: 2, Workers: p.Workers}
	}
	logf("[1/4] optimizing stimulus (GA %dx%d, Eq. 10 objective, %d workers)...", opt.PopSize, opt.Generations, p.Workers)
	res, err := core.OptimizeStimulus(rng, r.Model, r.Cfg, opt)
	if err != nil {
		return nil, err
	}
	r.Stim, r.Trace = res.Stimulus, res.Trace
	logf("      objective trace: %v", res.Trace)

	logf("[2/4] calibrating on %d training devices...", p.Train)
	trainPop, err := core.GeneratePopulation(rng, r.Model, p.Train, r.Spread)
	if err != nil {
		return nil, err
	}
	r.Train, err = core.AcquireTrainingSetSeeded(rng.Int63(), r.Cfg, r.Stim, trainPop,
		func(d *core.Device) lna.Specs { return d.Specs }, p.Workers)
	if err != nil {
		return nil, err
	}
	r.Cal, err = core.Calibrate(rng, r.Stim, r.Train, core.CalibrationOptions{Workers: p.Workers})
	if err != nil {
		return nil, err
	}
	logf("      regression per spec: %v", r.Cal.Trainers)

	logf("[3/4] validating on a held-out lot...")
	valPop, err := core.GeneratePopulation(rng, r.Model, 25, r.Spread)
	if err != nil {
		return nil, err
	}
	r.Validation, err = core.Validate(rng, r.Cfg, r.Cal, r.Stim, valPop)
	if err != nil {
		return nil, err
	}

	r.Lot, err = core.GeneratePopulation(rng, r.Model, p.Produce, r.Spread)
	if err != nil {
		return nil, err
	}

	sigs := make([][]float64, len(r.Train))
	for i := range r.Train {
		sigs[i] = r.Train[i].Signature
	}
	r.Gate, err = floor.FitGate(sigs, floor.GateOptions{})
	if err != nil {
		return nil, err
	}
	r.Engine = &floor.Engine{
		Cfg:      r.Cfg,
		Cal:      r.Cal,
		Stim:     r.Stim,
		Gate:     r.Gate,
		PredPass: r.Limits.Pass,
		TruePass: r.Limits.Pass,
		Policy:   floor.DefaultPolicy(),
	}
	r.Faults = floor.DefaultFaultModel(p.FaultP)
	return r, nil
}
