package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownTone(t *testing.T) {
	// 64-sample record with one cycle of a unit cosine: bin 1 should carry
	// amplitude N/2, everything else ~0.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(i) / float64(n))
	}
	spec := FFTReal(x)
	if got := cmplx.Abs(spec[1]); math.Abs(got-float64(n)/2) > 1e-9 {
		t.Fatalf("bin 1 magnitude %g, want %g", got, float64(n)/2)
	}
	for k := 0; k < n; k++ {
		if k == 1 || k == n-1 {
			continue
		}
		if cmplx.Abs(spec[k]) > 1e-9 {
			t.Fatalf("bin %d should be empty, got %g", k, cmplx.Abs(spec[k]))
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 128
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		sum[i] = a[i] + 2*b[i]
	}
	fa, fb, fs := FFT(a), FFT(b), FFT(sum)
	for i := range fs {
		want := fa[i] + 2*fb[i]
		if cmplx.Abs(fs[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTNonPowerOfTwo(t *testing.T) {
	// Bluestein path: 100-sample record, tone at bin 5.
	n := 100
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*5*float64(i)/float64(n)), 0)
	}
	spec := FFT(x)
	if got := cmplx.Abs(spec[5]); math.Abs(got-float64(n)/2) > 1e-6 {
		t.Fatalf("bin 5 magnitude %g, want %g", got, float64(n)/2)
	}
	if got := cmplx.Abs(spec[7]); got > 1e-6 {
		t.Fatalf("bin 7 should be empty, got %g", got)
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 33, 100, 128, 255} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip failed at %d: %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

// Property: Parseval's theorem sum|x|^2 == sum|X|^2 / N.
func TestPropertyParseval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		x := make([]complex128, n)
		var tp float64
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			tp += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		spec := FFT(x)
		var fp float64
		for _, c := range spec {
			fp += real(c)*real(c) + imag(c)*imag(c)
		}
		return math.Abs(tp-fp/float64(n)) < 1e-7*(1+tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMagnitudeSpectrumLength(t *testing.T) {
	x := make([]float64, 128)
	s := MagnitudeSpectrum(x)
	if len(s) != 65 {
		t.Fatalf("one-sided length %d, want 65", len(s))
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	n := 256
	fs := 1000.0
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = 0.7*math.Sin(2*math.Pi*125*ts) + 0.1*math.Sin(2*math.Pi*250*ts)
	}
	// Tone amplitude at 125 Hz (bin-centered: 125/1000*256 = 32).
	if got := ToneAmplitude(x, 125, fs); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("ToneAmplitude(125) = %g, want 0.7", got)
	}
	if got := ToneAmplitude(x, 250, fs); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("ToneAmplitude(250) = %g, want 0.1", got)
	}
}

func TestGoertzelNonBinFrequency(t *testing.T) {
	// Non-bin-centered tone with an integer number of samples still close.
	n := 2000
	fs := 20e6
	f0 := 123456.0
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 * math.Cos(2*math.Pi*f0*float64(i)/fs)
	}
	got := ToneAmplitude(x, f0, fs)
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("non-bin tone amplitude %g, want ~0.5", got)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 63: 64, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestZeroPad(t *testing.T) {
	out := ZeroPad([]float64{1, 2}, 4)
	if len(out) != 4 || out[0] != 1 || out[3] != 0 {
		t.Fatalf("ZeroPad = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shrink")
		}
	}()
	ZeroPad([]float64{1, 2, 3}, 2)
}
