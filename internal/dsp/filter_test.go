package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func tonePassThrough(t *testing.T, filt func([]float64) []float64, freq, fs float64, wantGainDB, tolDB float64) {
	t.Helper()
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / fs)
	}
	y := filt(x)
	// Measure steady-state amplitude over the second half of the record.
	amp := ToneAmplitude(y[n/2:], freq, fs)
	gotDB := DB(amp / 1.0)
	if math.Abs(gotDB-wantGainDB) > tolDB && gotDB > wantGainDB+tolDB {
		t.Fatalf("gain at %g Hz = %.2f dB, want <= %.2f +- %.2f", freq, gotDB, wantGainDB, tolDB)
	}
	if wantGainDB == 0 && math.Abs(gotDB) > tolDB {
		t.Fatalf("passband gain at %g Hz = %.2f dB, want ~0", freq, gotDB)
	}
}

func TestFIRLowpassPassAndStop(t *testing.T) {
	fs := 200e6
	fir, err := DesignLowpassFIR(10e6, fs, 101, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	// Passband tone (2 MHz) passes at ~0 dB.
	tonePassThrough(t, fir.FilterCompensated, 2e6, fs, 0, 0.1)
	// Stopband tone (40 MHz) heavily attenuated.
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 40e6 * float64(i) / fs)
	}
	y := fir.Filter(x)
	amp := ToneAmplitude(y[n/2:], 40e6, fs)
	if DB(amp) > -60 {
		t.Fatalf("stopband attenuation only %.1f dB", DB(amp))
	}
}

func TestFIRDCGainUnity(t *testing.T) {
	fir, err := DesignLowpassFIR(1e6, 100e6, 63, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, tap := range fir.Taps {
		s += tap
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("DC gain %g, want 1", s)
	}
	if got := cmplx.Abs(fir.Response(0, 100e6)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Response(0) = %g", got)
	}
}

func TestFIRRejectsBadParams(t *testing.T) {
	if _, err := DesignLowpassFIR(60e6, 100e6, 63, Hann); err == nil {
		t.Fatal("cutoff above Nyquist must error")
	}
	if _, err := DesignLowpassFIR(1e6, 100e6, 1, Hann); err == nil {
		t.Fatal("too-short filter must error")
	}
}

func TestFIRComplexMatchesRealOnRealInput(t *testing.T) {
	fir, _ := DesignLowpassFIR(5e6, 100e6, 31, Hann)
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 200)
	xc := make([]complex128, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
		xc[i] = complex(x[i], 0)
	}
	yr := fir.Filter(x)
	yc := fir.FilterComplex(xc)
	for i := range yr {
		if math.Abs(yr[i]-real(yc[i])) > 1e-12 || math.Abs(imag(yc[i])) > 1e-12 {
			t.Fatalf("complex/real mismatch at %d", i)
		}
	}
}

func TestButterworthPassbandAndRolloff(t *testing.T) {
	fs := 200e6
	bw, err := NewButterworthLowpass(4, 10e6, fs)
	if err != nil {
		t.Fatal(err)
	}
	// -3 dB at cutoff.
	if got := DB(cmplx.Abs(bw.Response(10e6))); math.Abs(got+3.01) > 0.2 {
		t.Fatalf("cutoff response %.2f dB, want about -3", got)
	}
	// ~ -24 dB/octave: at 2x cutoff expect about -24 dB.
	if got := DB(cmplx.Abs(bw.Response(20e6))); got > -22 {
		t.Fatalf("one octave above cutoff %.2f dB, want < -22", got)
	}
	// Deep passband flat.
	if got := DB(cmplx.Abs(bw.Response(1e6))); math.Abs(got) > 0.1 {
		t.Fatalf("passband %.3f dB, want ~0", got)
	}
}

func TestButterworthFilterTimeDomain(t *testing.T) {
	fs := 200e6
	bw, _ := NewButterworthLowpass(4, 10e6, fs)
	n := 8192
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = math.Sin(2*math.Pi*1e6*ts) + math.Sin(2*math.Pi*80e6*ts)
	}
	y := bw.Filter(x)
	inBand := ToneAmplitude(y[n/2:], 1e6, fs)
	outBand := ToneAmplitude(y[n/2:], 80e6, fs)
	if math.Abs(inBand-1) > 0.02 {
		t.Fatalf("in-band amplitude %g", inBand)
	}
	if DB(outBand) > -60 {
		t.Fatalf("out-of-band leak %.1f dB", DB(outBand))
	}
}

func TestButterworthRejectsBadParams(t *testing.T) {
	if _, err := NewButterworthLowpass(3, 1e6, 100e6); err == nil {
		t.Fatal("odd order must error")
	}
	if _, err := NewButterworthLowpass(4, 60e6, 100e6); err == nil {
		t.Fatal("cutoff above Nyquist must error")
	}
}

func TestDecimatorAveragesBlocks(t *testing.T) {
	d := Decimator{Factor: 4}
	y := d.Decimate([]float64{1, 1, 1, 1, 2, 2, 2, 2, 5})
	if len(y) != 2 || y[0] != 1 || y[1] != 2 {
		t.Fatalf("Decimate = %v", y)
	}
	one := Decimator{Factor: 1}
	x := []float64{3, 4}
	y = one.Decimate(x)
	y[0] = 99
	if x[0] != 3 {
		t.Fatal("factor-1 decimation must copy")
	}
}

func TestDecimationChainFactorAndTone(t *testing.T) {
	inFs := 7.2e9
	outFs := 20e6
	ch, err := NewDecimationChain(inFs, outFs, 9e6)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.TotalFactor(); got != 360 {
		t.Fatalf("total factor %d, want 360", got)
	}
	// A 1 MHz tone should survive the chain at close to unit amplitude.
	n := 72000 // 10 us
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1e6 * float64(i) / inFs)
	}
	y := ch.Process(x)
	amp := ToneAmplitude(y[len(y)/4:], 1e6, outFs)
	if math.Abs(amp-1) > 0.03 {
		t.Fatalf("1 MHz tone through chain amplitude %g, want ~1", amp)
	}
	// A 900 MHz tone must be crushed.
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 900e6 * float64(i) / inFs)
	}
	y = ch.Process(x)
	if p := SignalPower(y[len(y)/4:]); PowerDB(p/0.5) > -40 {
		t.Fatalf("RF leak through decimation chain: %.1f dB", PowerDB(p/0.5))
	}
}

func TestDecimationChainRejectsNonInteger(t *testing.T) {
	if _, err := NewDecimationChain(100e6, 33e6, 0); err == nil {
		t.Fatal("non-integer ratio must error")
	}
}

func TestWindowProperties(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: wrong length", w)
		}
		// Symmetry.
		for i := range c {
			if math.Abs(c[i]-c[len(c)-1-i]) > 1e-12 {
				t.Fatalf("%v: asymmetric at %d", w, i)
			}
		}
		// Bounded in [0, 1] (tiny negative from rounding tolerated).
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v: coefficient %d out of range: %g", w, i, v)
			}
		}
		if g := w.CoherentGain(64); g <= 0 || g > 1 {
			t.Fatalf("%v: coherent gain %g", w, g)
		}
	}
	if Rectangular.CoherentGain(10) != 1 {
		t.Fatal("rectangular coherent gain must be 1")
	}
	if got := Window(99).String(); got != "unknown" {
		t.Fatalf("unknown window name %q", got)
	}
}

func TestDBmConversions(t *testing.T) {
	// 0 dBm into 50 ohm is 0.3162 Vpeak... check round trip instead.
	for _, dbm := range []float64{-30, -10, 0, 10, 17} {
		v := DBmToVolts(dbm)
		if got := VoltsToDBm(v); math.Abs(got-dbm) > 1e-12 {
			t.Fatalf("round trip %g -> %g", dbm, got)
		}
	}
	// 10 dBm = 10 mW: vpeak = sqrt(2*0.01*50) = 1 V.
	if got := DBmToVolts(10); math.Abs(got-1) > 1e-12 {
		t.Fatalf("10 dBm = %g Vpeak, want 1", got)
	}
	if !math.IsInf(VoltsToDBm(0), -1) {
		t.Fatal("0 V should be -inf dBm")
	}
}

// Property: boxcar decimation preserves the mean of the signal.
func TestPropertyDecimationPreservesMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		factor := 1 + r.Intn(8)
		blocks := 1 + r.Intn(50)
		x := make([]float64, factor*blocks)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y := Decimator{Factor: factor}.Decimate(x)
		var mx, my float64
		for _, v := range x {
			mx += v
		}
		for _, v := range y {
			my += v
		}
		mx /= float64(len(x))
		my /= float64(len(y))
		return math.Abs(mx-my) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
