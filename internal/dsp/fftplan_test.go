package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// naiveDFT is the O(n^2) reference the planned transform is checked
// against.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestPlannedFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestPlanReuseIsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// First call builds the plan, subsequent calls reuse it; all must
	// agree to the last bit, and the round trip must recover the input.
	a := FFT(x)
	b := FFT(x)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("plan reuse changed bin %d: %v vs %v", k, a[k], b[k])
		}
	}
	back := IFFT(a)
	for k := range back {
		if cmplx.Abs(back[k]-x[k]) > 1e-10 {
			t.Fatalf("round trip bin %d: %v vs %v", k, back[k], x[k])
		}
	}
}

func TestPlanCacheConcurrentUse(t *testing.T) {
	// Many goroutines hammer the same plan sizes (and the scratch pool via
	// MagnitudeSpectrum); run under -race in CI. Every goroutine must see
	// identical output for identical input.
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := MagnitudeSpectrum(x)
	var wg sync.WaitGroup
	errs := make([]bool, 16)
	for g := 0; g < len(errs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := MagnitudeSpectrum(x)
				for k := range got {
					if got[k] != ref[k] {
						errs[g] = true
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, bad := range errs {
		if bad {
			t.Fatalf("goroutine %d saw a non-deterministic spectrum", g)
		}
	}
}

func TestMagnitudeSpectrumNonPow2StillWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 100) // Bluestein path
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MagnitudeSpectrum(x)
	spec := naiveDFT(FFTRealInput(x))
	for k := range got {
		if math.Abs(got[k]-cmplx.Abs(spec[k])) > 1e-8 {
			t.Fatalf("bin %d: %g vs %g", k, got[k], cmplx.Abs(spec[k]))
		}
	}
}

// FFTRealInput converts a real signal for the naive reference.
func FFTRealInput(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return c
}

func BenchmarkMagnitudeSpectrum(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MagnitudeSpectrum(x)
	}
}
