package dsp

import (
	"fmt"
	"math"
)

// Decimator reduces sample rate by an integer factor after boxcar
// (moving-average) pre-filtering, the standard CIC-style first stage for
// very large rate changes such as the 7.2 GHz passband simulation rate down
// to the paper's 20 MHz digitizing rate.
type Decimator struct {
	Factor int
}

// Decimate averages consecutive blocks of Factor samples. Averaging (rather
// than picking) suppresses wideband content that would otherwise alias.
func (d Decimator) Decimate(x []float64) []float64 {
	if d.Factor <= 0 {
		panic(fmt.Sprintf("dsp: decimation factor %d", d.Factor))
	}
	if d.Factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	n := len(x) / d.Factor
	out := make([]float64, n)
	inv := 1 / float64(d.Factor)
	for i := 0; i < n; i++ {
		s := 0.0
		base := i * d.Factor
		for k := 0; k < d.Factor; k++ {
			s += x[base+k]
		}
		out[i] = s * inv
	}
	return out
}

// Droop returns the boxcar's amplitude response at freqHz for input rate
// fsHz — the passband droop a downstream compensation FIR must correct.
func (d Decimator) Droop(freqHz, fsHz float64) float64 {
	if d.Factor <= 1 || freqHz == 0 {
		return 1
	}
	x := math.Pi * freqHz / fsHz
	num := math.Sin(float64(d.Factor) * x)
	den := float64(d.Factor) * math.Sin(x)
	if den == 0 {
		return 1
	}
	return math.Abs(num / den)
}

// DecimationChain is a cascade of boxcar decimators followed by an optional
// cleanup FIR at the output rate. It converts the multi-GHz passband
// simulation rate to the ATE digitizer rate in numerically safe stages.
type DecimationChain struct {
	Stages  []Decimator
	Cleanup *FIR // applied at the final rate; may be nil
	InFs    float64
	OutFs   float64
}

// NewDecimationChain builds a chain for total factor inFs/outFs, which must
// be an integer. The factor is split into stages no larger than 32 so each
// boxcar keeps a flat response across the final passband. cutoffHz sets the
// cleanup FIR corner at the output rate (0 disables the cleanup filter).
func NewDecimationChain(inFs, outFs, cutoffHz float64) (*DecimationChain, error) {
	ratio := inFs / outFs
	total := int(math.Round(ratio))
	if total < 1 || math.Abs(ratio-float64(total)) > 1e-9 {
		return nil, fmt.Errorf("dsp: non-integer decimation %g/%g", inFs, outFs)
	}
	c := &DecimationChain{InFs: inFs, OutFs: outFs}
	rem := total
	for rem > 1 {
		f := rem
		if f > 32 {
			// Pick the largest factor <= 32 dividing rem.
			f = 1
			for cand := 32; cand >= 2; cand-- {
				if rem%cand == 0 {
					f = cand
					break
				}
			}
			if f == 1 {
				// Prime remainder > 32; take it whole.
				f = rem
			}
		}
		c.Stages = append(c.Stages, Decimator{Factor: f})
		rem /= f
	}
	if cutoffHz > 0 {
		fir, err := DesignLowpassFIR(cutoffHz, outFs, 63, Blackman)
		if err != nil {
			return nil, err
		}
		c.Cleanup = fir
	}
	return c, nil
}

// Process runs x (at InFs) through the chain, returning samples at OutFs.
func (c *DecimationChain) Process(x []float64) []float64 {
	y := x
	for _, st := range c.Stages {
		y = st.Decimate(y)
	}
	if c.Cleanup != nil {
		y = c.Cleanup.FilterCompensated(y)
	}
	return y
}

// TotalFactor returns the overall decimation factor.
func (c *DecimationChain) TotalFactor() int {
	f := 1
	for _, st := range c.Stages {
		f *= st.Factor
	}
	return f
}
