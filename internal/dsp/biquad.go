package dsp

import (
	"fmt"
	"math"
)

// Biquad is a single second-order IIR section in direct form II transposed.
type Biquad struct {
	B0, B1, B2 float64 // numerator
	A1, A2     float64 // denominator (a0 normalized to 1)
	z1, z2     float64 // state
}

// Process filters one sample.
func (s *Biquad) Process(x float64) float64 {
	y := s.B0*x + s.z1
	s.z1 = s.B1*x - s.A1*y + s.z2
	s.z2 = s.B2*x - s.A2*y
	return y
}

// Reset clears the filter state.
func (s *Biquad) Reset() { s.z1, s.z2 = 0, 0 }

// Response returns the section's complex response at normalized angular
// frequency w (radians/sample).
func (s *Biquad) Response(w float64) complex128 {
	z1 := complex(math.Cos(-w), math.Sin(-w))
	z2 := z1 * z1
	num := complex(s.B0, 0) + complex(s.B1, 0)*z1 + complex(s.B2, 0)*z2
	den := complex(1, 0) + complex(s.A1, 0)*z1 + complex(s.A2, 0)*z2
	return num / den
}

// ButterworthLowpass designs an order-n Butterworth lowpass as a cascade of
// biquads via the bilinear transform. order must be even (each biquad
// realizes one conjugate pole pair). It models the load board's analog
// reconstruction/anti-alias filters.
type ButterworthLowpass struct {
	Sections []Biquad
	CutoffHz float64
	FsHz     float64
}

// NewButterworthLowpass constructs the cascade.
func NewButterworthLowpass(order int, cutoffHz, sampleRateHz float64) (*ButterworthLowpass, error) {
	if order < 2 || order%2 != 0 {
		return nil, fmt.Errorf("dsp: Butterworth order must be even and >= 2, got %d", order)
	}
	if cutoffHz <= 0 || cutoffHz >= sampleRateHz/2 {
		return nil, fmt.Errorf("dsp: cutoff %g Hz outside (0, fs/2) for fs %g Hz", cutoffHz, sampleRateHz)
	}
	// Pre-warped analog cutoff.
	wc := 2 * sampleRateHz * math.Tan(math.Pi*cutoffHz/sampleRateHz)
	fl := &ButterworthLowpass{CutoffHz: cutoffHz, FsHz: sampleRateHz}
	for k := 0; k < order/2; k++ {
		// Analog prototype pole pair angle.
		theta := math.Pi * float64(2*k+1) / float64(2*order)
		// Analog section: wc^2 / (s^2 + 2 sin(theta) wc s + wc^2);
		// bilinear transform with K = 2 fs.
		q := 2 * math.Sin(theta)
		K := 2 * sampleRateHz
		a0 := K*K + q*wc*K/2*2 + wc*wc // K^2 + q*wc*K + wc^2
		b := wc * wc
		sec := Biquad{
			B0: b / a0,
			B1: 2 * b / a0,
			B2: b / a0,
			A1: (2*wc*wc - 2*K*K) / a0,
			A2: (K*K - q*wc*K + wc*wc) / a0,
		}
		fl.Sections = append(fl.Sections, sec)
	}
	return fl, nil
}

// Filter runs x through the cascade (state is reset first).
func (f *ButterworthLowpass) Filter(x []float64) []float64 {
	for i := range f.Sections {
		f.Sections[i].Reset()
	}
	out := make([]float64, len(x))
	copy(out, x)
	for i := range f.Sections {
		sec := &f.Sections[i]
		for j := range out {
			out[j] = sec.Process(out[j])
		}
	}
	return out
}

// Response returns the cascade's complex response at freqHz.
func (f *ButterworthLowpass) Response(freqHz float64) complex128 {
	w := 2 * math.Pi * freqHz / f.FsHz
	h := complex(1, 0)
	for i := range f.Sections {
		h *= f.Sections[i].Response(w)
	}
	return h
}
