package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestPeakBinEdges pins the clamping contract: out-of-range and empty
// search windows return -1 instead of an index that panics the caller.
func TestPeakBinEdges(t *testing.T) {
	spec := []float64{1, 5, 2, 9, 3}
	cases := []struct {
		name   string
		spec   []float64
		lo, hi int
		want   int
	}{
		{"full range", spec, 0, len(spec), 3},
		{"interior window", spec, 0, 3, 1},
		{"clamped both ends", spec, -5, 99, 3},
		{"empty spectrum", nil, 0, 1, -1},
		{"empty spectrum full ints", []float64{}, -3, 7, -1},
		{"lo past end", spec, len(spec), len(spec) + 4, -1},
		{"lo far past end", spec, 100, 200, -1},
		{"lo > hi", spec, 4, 2, -1},
		{"lo == hi", spec, 2, 2, -1},
		{"single bin", spec, 3, 4, 3},
		{"negative hi", spec, 0, -1, -1},
	}
	for _, tc := range cases {
		if got := PeakBin(tc.spec, tc.lo, tc.hi); got != tc.want {
			t.Errorf("%s: PeakBin(len=%d, %d, %d) = %d, want %d",
				tc.name, len(tc.spec), tc.lo, tc.hi, got, tc.want)
		}
	}
}

// TestMagnitudeSpectrumBatchBitIdentity checks the batched transform against
// the serial path bit for bit, across batch sizes and both power-of-two and
// Bluestein lengths.
func TestMagnitudeSpectrumBatchBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 128, 100} {
		for _, k := range []int{1, 3, 16} {
			xs := make([][]float64, k)
			for i := range xs {
				xs[i] = make([]float64, n)
				for j := range xs[i] {
					xs[i][j] = rng.NormFloat64()
				}
			}
			got := MagnitudeSpectrumBatch(xs)
			if len(got) != k {
				t.Fatalf("n=%d k=%d: %d outputs", n, k, len(got))
			}
			for i, x := range xs {
				want := MagnitudeSpectrum(x)
				if len(got[i]) != len(want) {
					t.Fatalf("n=%d k=%d rec %d: len %d vs %d", n, k, i, len(got[i]), len(want))
				}
				for j := range want {
					if math.Float64bits(got[i][j]) != math.Float64bits(want[j]) {
						t.Fatalf("n=%d k=%d rec %d bin %d: %x vs %x",
							n, k, i, j, math.Float64bits(got[i][j]), math.Float64bits(want[j]))
					}
				}
			}
		}
	}
	if out := MagnitudeSpectrumBatch(nil); out != nil {
		t.Fatal("nil batch should return nil")
	}
}
