package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter described by its taps.
type FIR struct {
	Taps []float64
}

// DesignLowpassFIR designs a linear-phase lowpass FIR with the windowed-sinc
// method. cutoffHz is the -6 dB corner, sampleRateHz the sample rate, taps
// the filter length (made odd so the filter has integer group delay), and
// win the design window. This is the load board's anti-alias / channel
// filter in front of the digitizer.
func DesignLowpassFIR(cutoffHz, sampleRateHz float64, taps int, win Window) (*FIR, error) {
	if cutoffHz <= 0 || cutoffHz >= sampleRateHz/2 {
		return nil, fmt.Errorf("dsp: cutoff %g Hz outside (0, fs/2) for fs %g Hz", cutoffHz, sampleRateHz)
	}
	if taps < 3 {
		return nil, fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoffHz / sampleRateHz // normalized cutoff, cycles/sample
	mid := (taps - 1) / 2
	h := make([]float64, taps)
	for i := 0; i < taps; i++ {
		m := float64(i - mid)
		if m == 0 {
			h[i] = 2 * fc
		} else {
			h[i] = math.Sin(2*math.Pi*fc*m) / (math.Pi * m)
		}
	}
	w := win.Coefficients(taps)
	sum := 0.0
	for i := range h {
		h[i] *= w[i]
		sum += h[i]
	}
	// Normalize to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return &FIR{Taps: h}, nil
}

// Filter convolves x with the filter taps, returning a signal of the same
// length (zero initial state, group delay not compensated).
func (f *FIR) Filter(x []float64) []float64 {
	out := make([]float64, len(x))
	n := len(f.Taps)
	for i := range x {
		s := 0.0
		for k := 0; k < n; k++ {
			j := i - k
			if j < 0 {
				break
			}
			s += f.Taps[k] * x[j]
		}
		out[i] = s
	}
	return out
}

// FilterCompensated filters x and removes the filter's group delay, so the
// output aligns in time with the input. Samples beyond the input are
// zero-padded.
func (f *FIR) FilterCompensated(x []float64) []float64 {
	delay := (len(f.Taps) - 1) / 2
	padded := make([]float64, len(x)+delay)
	copy(padded, x)
	y := f.Filter(padded)
	return y[delay:]
}

// FilterComplex convolves a complex signal with the real taps; used by the
// envelope-domain simulator where channels are complex baseband envelopes.
func (f *FIR) FilterComplex(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	n := len(f.Taps)
	for i := range x {
		var s complex128
		for k := 0; k < n; k++ {
			j := i - k
			if j < 0 {
				break
			}
			s += complex(f.Taps[k], 0) * x[j]
		}
		out[i] = s
	}
	return out
}

// Response returns the filter's complex frequency response at freqHz for
// the given sample rate.
func (f *FIR) Response(freqHz, sampleRateHz float64) complex128 {
	w := 2 * math.Pi * freqHz / sampleRateHz
	var re, im float64
	for k, t := range f.Taps {
		re += t * math.Cos(w*float64(k))
		im -= t * math.Sin(w*float64(k))
	}
	return complex(re, im)
}

// GroupDelaySamples returns the (integer) group delay of the linear-phase
// filter in samples.
func (f *FIR) GroupDelaySamples() int { return (len(f.Taps) - 1) / 2 }
