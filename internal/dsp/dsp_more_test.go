package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBiquadProcessAndReset(t *testing.T) {
	bw, err := NewButterworthLowpass(2, 1e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	sec := bw.Sections[0]
	// Impulse response energy must be finite and state must matter.
	y1 := sec.Process(1)
	y2 := sec.Process(0)
	if y1 == 0 {
		t.Fatal("impulse response empty")
	}
	if y2 == 0 {
		t.Fatal("filter has memory; second output should be nonzero")
	}
	sec.Reset()
	if got := sec.Process(1); got != y1 {
		t.Fatalf("Reset should restore initial state: %g vs %g", got, y1)
	}
}

func TestBiquadResponseMatchesTimeDomain(t *testing.T) {
	fs := 50e6
	bw, _ := NewButterworthLowpass(2, 2e6, fs)
	// Measure amplitude at 1 MHz through time simulation and compare to
	// the analytic response.
	n := 4096
	f := 1e6
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	y := bw.Filter(x)
	amp := ToneAmplitude(y[n/2:], f, fs)
	want := cmplx.Abs(bw.Response(f))
	if math.Abs(amp-want) > 0.01 {
		t.Fatalf("time-domain %g vs analytic %g", amp, want)
	}
}

func TestDecimatorDroop(t *testing.T) {
	d := Decimator{Factor: 8}
	// DC: no droop.
	if got := d.Droop(0, 100e6); got != 1 {
		t.Fatalf("DC droop %g", got)
	}
	// Droop decreases with frequency in the first lobe.
	d1 := d.Droop(1e6, 100e6)
	d2 := d.Droop(5e6, 100e6)
	if !(d2 < d1 && d1 < 1) {
		t.Fatalf("droop not monotone: %g, %g", d1, d2)
	}
	// Factor 1 is transparent.
	if got := (Decimator{Factor: 1}).Droop(3e6, 100e6); got != 1 {
		t.Fatalf("unit decimator droop %g", got)
	}
}

func TestFIRGroupDelay(t *testing.T) {
	fir, _ := DesignLowpassFIR(5e6, 100e6, 41, Hamming)
	if got := fir.GroupDelaySamples(); got != 20 {
		t.Fatalf("group delay %d, want 20", got)
	}
	// FilterCompensated aligns a step: output at index i tracks input.
	x := make([]float64, 400)
	for i := 100; i < len(x); i++ {
		x[i] = 1
	}
	y := fir.FilterCompensated(x)
	// Mid-transition should be near 0.5 at the step location.
	if math.Abs(y[100]-0.5) > 0.2 {
		t.Fatalf("step not aligned: y[100]=%g", y[100])
	}
	if math.Abs(y[200]-1) > 0.01 {
		t.Fatalf("steady state %g", y[200])
	}
}

// Property: FFT of a circularly shifted sequence has the same magnitude
// spectrum (the property that makes the signature phase-immune).
func TestPropertyFFTShiftInvariantMagnitude(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		shift := 1 + r.Intn(n-1)
		y := make([]float64, n)
		for i := range y {
			y[i] = x[(i+shift)%n]
		}
		sx := MagnitudeSpectrum(x)
		sy := MagnitudeSpectrum(y)
		for i := range sx {
			if math.Abs(sx[i]-sy[i]) > 1e-9*(1+sx[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Goertzel at bin-centered frequencies equals the FFT bin.
func TestPropertyGoertzelMatchesFFTBin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		fs := 1e6
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		k := 1 + r.Intn(n/2-1)
		freq := float64(k) * fs / float64(n)
		g := Goertzel(x, freq, fs)
		spec := FFTReal(x)
		return cmplx.Abs(g-spec[k]) < 1e-6*(1+cmplx.Abs(spec[k]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSpectralLeakagePower(t *testing.T) {
	spec := []float64{3, 0.1, 0.2, 4}
	got := SpectralLeakagePower(spec, map[int]bool{0: true, 3: true})
	want := 0.1*0.1 + 0.2*0.2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("leakage %g, want %g", got, want)
	}
}

func TestBinFrequencyAndPeak(t *testing.T) {
	if got := BinFrequency(4, 128, 20e6); got != 625e3 {
		t.Fatalf("BinFrequency = %g", got)
	}
	spec := []float64{0, 5, 1, 9, 2}
	if got := PeakBin(spec, 0, len(spec)); got != 3 {
		t.Fatalf("PeakBin = %d", got)
	}
	if got := PeakBin(spec, 0, 3); got != 1 {
		t.Fatalf("bounded PeakBin = %d", got)
	}
	if got := PeakBin(spec, -5, 99); got != 3 {
		t.Fatalf("clamped PeakBin = %d", got)
	}
}

func TestFromDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-40, -3, 0, 6, 20} {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-12 {
			t.Fatalf("dB round trip %g -> %g", db, got)
		}
	}
	if !math.IsInf(DB(0), -1) {
		t.Fatal("DB(0) should be -inf")
	}
	if got := PowerDB(100); got != 20 {
		t.Fatalf("PowerDB(100) = %g", got)
	}
}
