package dsp

import (
	"math"
	"testing"
)

// TestWindowCoefCacheBitIdentity pins the cached window path to the direct
// computation: Apply and CoherentGain through the cache must match fresh
// Coefficients bit for bit for every window kind and several lengths, and
// repeated applications must not perturb the shared table.
func TestWindowCoefCacheBitIdentity(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		for _, n := range []int{1, 2, 33, 100, 128} {
			x := make([]float64, n)
			for i := range x {
				x[i] = math.Sin(0.37*float64(i)) + 0.25
			}
			fresh := w.Coefficients(n)
			want := make([]float64, n)
			for i := range x {
				want[i] = x[i] * fresh[i]
			}
			for rep := 0; rep < 3; rep++ {
				got := w.Apply(x)
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%v n=%d rep %d: sample %d: %x vs %x",
							w, n, rep, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
				// Mutating the returned slice must never reach the cache.
				for i := range got {
					got[i] = -1
				}
			}
			s := 0.0
			for _, v := range fresh {
				s += v
			}
			if math.Float64bits(w.CoherentGain(n)) != math.Float64bits(s/float64(n)) {
				t.Fatalf("%v n=%d: CoherentGain diverged from direct computation", w, n)
			}
		}
	}
}
