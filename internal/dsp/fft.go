// Package dsp implements the digital signal processing substrate of the
// signature tester: FFTs, window functions, FIR and IIR filters, multirate
// decimation, the Goertzel algorithm, and spectrum utilities. The paper's
// signature is the magnitude of the FFT of the demodulated baseband
// response (Fig. 3), and its spec measurements (gain, IIP3) are tone-power
// measurements, so this package is the measurement backbone of the repo.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. Power-of-two lengths use
// an iterative radix-2 Cooley-Tukey transform; other lengths fall back to
// Bluestein's chirp-z algorithm, so any N is supported. The input is not
// modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse DFT of x (normalized by 1/N).
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real signal, returning the full complex spectrum.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// fftRadix2 computes an in-place iterative radix-2 transform. inverse
// selects the conjugate (un-normalized inverse) transform.
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wBase
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform,
// expressing it as a convolution evaluated with a power-of-two FFT.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp w[k] = exp(sign*i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
		if k > 0 {
			b[m-k] = cmplx.Conj(w[k])
		}
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invm := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invm * w[k]
	}
	return out
}

// MagnitudeSpectrum returns |FFT(x)| for the one-sided spectrum
// (bins 0..N/2 inclusive for even N). This is exactly the paper's
// phase-immune signature: "the magnitude of the resulting FFT spectrum".
func MagnitudeSpectrum(x []float64) []float64 {
	spec := FFTReal(x)
	n := len(spec)
	if n == 0 {
		return nil
	}
	half := n/2 + 1
	out := make([]float64, half)
	for i := 0; i < half; i++ {
		out[i] = cmplx.Abs(spec[i])
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 0).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// ZeroPad returns x extended with zeros to length n.
func ZeroPad(x []float64, n int) []float64 {
	if n < len(x) {
		panic(fmt.Sprintf("dsp: ZeroPad target %d shorter than input %d", n, len(x)))
	}
	out := make([]float64, n)
	copy(out, x)
	return out
}

// Goertzel computes the DFT coefficient of x at normalized frequency
// f = freqHz/sampleRateHz (cycles per sample) using the generalized
// Goertzel recurrence; it is the cheap way to read a single tone's complex
// amplitude, used by the conventional gain and IIP3 measurements.
func Goertzel(x []float64, freqHz, sampleRateHz float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	k := freqHz / sampleRateHz * float64(n)
	w := 2 * math.Pi * k / float64(n)
	cw := math.Cos(w)
	coeff := 2 * cw
	var s0, s1, s2 float64
	for i := 0; i < n; i++ {
		s0 = x[i] + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// X[k] = s1*e^{jw} - s2 evaluated at the final state: this equals the
	// DFT coefficient exactly for bin-centered frequencies and
	// approximates the spectrum between bins.
	re := s1*cw - s2
	im := s1 * math.Sin(w)
	return complex(re, im)
}

// ToneAmplitude returns the amplitude (volts peak) of the tone at freqHz in
// x sampled at sampleRateHz, assuming the tone is coherent within the
// record or dominant in its bin.
func ToneAmplitude(x []float64, freqHz, sampleRateHz float64) float64 {
	c := Goertzel(x, freqHz, sampleRateHz)
	return 2 * cmplx.Abs(c) / float64(len(x))
}
