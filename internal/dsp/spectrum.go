package dsp

import (
	"math"
)

// Reference impedance for all dBm conversions in this repository.
const ReferenceImpedance = 50.0 // ohms

// VoltsToDBm converts a sinusoid's peak amplitude (volts) to power in dBm
// re 50 ohms.
func VoltsToDBm(vpeak float64) float64 {
	if vpeak <= 0 {
		return math.Inf(-1)
	}
	p := vpeak * vpeak / 2 / ReferenceImpedance // watts
	return 10 * math.Log10(p*1000)
}

// DBmToVolts converts power in dBm re 50 ohms to sinusoid peak amplitude.
func DBmToVolts(dbm float64) float64 {
	p := math.Pow(10, dbm/10) / 1000 // watts
	return math.Sqrt(2 * p * ReferenceImpedance)
}

// DB returns 20*log10(|ratio|) for an amplitude ratio.
func DB(ratio float64) float64 {
	if ratio == 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(math.Abs(ratio))
}

// FromDB converts an amplitude-dB value back to a linear ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/20) }

// PowerDB returns 10*log10(ratio) for a power ratio.
func PowerDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// SignalPower returns the mean square of x (power into 1 ohm).
func SignalPower(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s / float64(len(x))
}

// BinFrequency returns the center frequency of FFT bin k for an N-point
// record at sampleRateHz.
func BinFrequency(k, n int, sampleRateHz float64) float64 {
	return float64(k) * sampleRateHz / float64(n)
}

// PeakBin returns the index of the largest magnitude in spectrum, searching
// bins [lo, hi). Both bounds are clamped to the spectrum; if the clamped
// range is empty (empty spectrum, lo >= hi, or lo beyond the last bin) it
// returns -1 instead of an out-of-range index.
func PeakBin(spectrum []float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(spectrum) {
		hi = len(spectrum)
	}
	if lo >= hi {
		return -1
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if spectrum[i] > spectrum[best] {
			best = i
		}
	}
	return best
}

// SpectralLeakagePower sums |spectrum|^2 outside the given protected bins —
// a diagnostic used in tests to confirm window choice keeps signature
// energy where the regression expects it.
func SpectralLeakagePower(spectrum []float64, protected map[int]bool) float64 {
	s := 0.0
	for i, m := range spectrum {
		if protected[i] {
			continue
		}
		s += m * m
	}
	return s
}
