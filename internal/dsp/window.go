package dsp

import (
	"math"
	"sync"
)

// Window identifies a tapering window used before spectral analysis or in
// windowed-sinc FIR design.
type Window int

const (
	// Rectangular applies no taper.
	Rectangular Window = iota
	// Hann is the raised-cosine window; good general-purpose leakage control.
	Hann
	// Hamming minimizes the nearest sidelobe.
	Hamming
	// Blackman trades main-lobe width for very low sidelobes; the default
	// for the signature FFT, where leakage between bins would couple
	// measurement noise into the spec regression.
	Blackman
)

// String names the window.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	}
	return "unknown"
}

// Coefficients returns the n window coefficients (symmetric form).
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		switch w {
		case Rectangular:
			out[i] = 1
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// The acquisition hot path applies the same window to every capture, and
// the coefficients are a pure function of (window, length) — recomputing the
// cosines per device was ~12% of a batched screen. Tables are cached like
// the FFT plans: computed once per (window, n), stored immutably, shared
// across goroutines. Only the cache's internal read paths use the shared
// slice; Coefficients keeps returning a fresh slice callers may mutate.
type windowKey struct {
	w Window
	n int
}

var windowCoefCache sync.Map // windowKey -> []float64 (read-only once stored)

// coefCached returns the shared, immutable coefficient table for (w, n).
func (w Window) coefCached(n int) []float64 {
	key := windowKey{w: w, n: n}
	if v, ok := windowCoefCache.Load(key); ok {
		return v.([]float64)
	}
	c := w.Coefficients(n)
	if v, loaded := windowCoefCache.LoadOrStore(key, c); loaded {
		return v.([]float64)
	}
	return c
}

// Apply returns x multiplied pointwise by the window.
func (w Window) Apply(x []float64) []float64 {
	c := w.coefCached(len(x))
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * c[i]
	}
	return out
}

// CoherentGain returns the mean of the window coefficients, the factor by
// which a coherent tone's FFT amplitude is reduced by the taper.
func (w Window) CoherentGain(n int) float64 {
	c := w.coefCached(n)
	s := 0.0
	for _, v := range c {
		s += v
	}
	return s / float64(n)
}
