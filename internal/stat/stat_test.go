package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %g, want 5", Mean(v))
	}
	if got := Variance(v); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestRMSAndErrors(t *testing.T) {
	if RMS([]float64{3, 4}) != 5/math.Sqrt2 {
		t.Fatalf("RMS = %g", RMS([]float64{3, 4}))
	}
	pred := []float64{1, 2, 3}
	act := []float64{1, 2, 4}
	if got := RMSError(pred, act); math.Abs(got-1/math.Sqrt(3)) > 1e-12 {
		t.Fatalf("RMSError = %g", got)
	}
	if got := MaxAbsError(pred, act); got != 1 {
		t.Fatalf("MaxAbsError = %g", got)
	}
	// Constant bias: std of error should be ~0, RMS equals the bias.
	bias := []float64{2, 3, 4}
	if got := StdError(bias, []float64{1, 2, 3}); math.Abs(got) > 1e-12 {
		t.Fatalf("StdError of constant bias = %g, want 0", got)
	}
	if got := RMSError(bias, []float64{1, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RMSError of constant bias = %g, want 1", got)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Correlation(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Correlation(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %g", got)
	}
	if Correlation(x, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series correlation should be 0")
	}
}

func TestRSquared(t *testing.T) {
	act := []float64{1, 2, 3, 4}
	if got := RSquared(act, act); got != 1 {
		t.Fatalf("perfect fit R2 = %g", got)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := RSquared(meanPred, act); math.Abs(got) > 1e-12 {
		t.Fatalf("mean prediction R2 = %g, want 0", got)
	}
}

func TestMinMaxPercentile(t *testing.T) {
	v := []float64{5, 1, 9, 3}
	lo, hi := MinMax(v)
	if lo != 1 || hi != 9 {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
	if Percentile(v, 0) != 1 || Percentile(v, 1) != 9 {
		t.Fatal("percentile extremes wrong")
	}
	if got := Percentile(v, 0.5); math.Abs(got-4) > 1e-12 {
		t.Fatalf("median = %g, want 4", got)
	}
}

func TestUniformSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lo := []float64{-1, 10}
	hi := []float64{1, 20}
	for i := 0; i < 100; i++ {
		s := UniformSample(rng, lo, hi)
		for d := range s {
			if s[d] < lo[d] || s[d] > hi[d] {
				t.Fatalf("sample %v outside bounds", s)
			}
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20
	lo := []float64{0, -5}
	hi := []float64{1, 5}
	samples := LatinHypercube(rng, n, lo, hi)
	if len(samples) != n {
		t.Fatalf("got %d samples", len(samples))
	}
	// Each dimension: exactly one sample per stratum.
	for d := 0; d < 2; d++ {
		seen := make([]bool, n)
		for _, s := range samples {
			u := (s[d] - lo[d]) / (hi[d] - lo[d])
			b := int(u * float64(n))
			if b == n {
				b = n - 1
			}
			if seen[b] {
				t.Fatalf("dimension %d stratum %d sampled twice", d, b)
			}
			seen[b] = true
		}
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.1, 0.2, 0.9, -5, 99}, 0, 1, 2)
	if counts[0] != 3 || counts[1] != 2 {
		t.Fatalf("Histogram = %v", counts)
	}
}

// Property: RMSError is invariant under common shifts of both series, and
// zero iff the series are identical.
func TestPropertyRMSErrorShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		e1 := RMSError(a, b)
		shift := r.NormFloat64() * 10
		as := make([]float64, n)
		bs := make([]float64, n)
		for i := range a {
			as[i] = a[i] + shift
			bs[i] = b[i] + shift
		}
		e2 := RMSError(as, bs)
		if math.Abs(e1-e2) > 1e-9 {
			return false
		}
		return RMSError(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: correlation is bounded in [-1, 1] and symmetric.
func TestPropertyCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		c := Correlation(x, y)
		if c < -1-1e-12 || c > 1+1e-12 {
			return false
		}
		return math.Abs(c-Correlation(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
