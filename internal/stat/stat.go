// Package stat provides the statistics utilities shared across the
// signature-test framework: metrics (RMS error, correlation, R²),
// descriptive statistics, and sampling plans (uniform Monte Carlo and
// Latin hypercube) used to generate process-variation populations.
package stat

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(v []float64) float64 {
	n := len(v)
	if n < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// RMS returns sqrt(mean(v_i^2)).
func RMS(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s / float64(len(v)))
}

// RMSError returns the RMS of pointwise differences between predicted and
// actual. It panics on length mismatch.
func RMSError(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("stat: RMSError length mismatch %d vs %d", len(pred), len(actual)))
	}
	d := make([]float64, len(pred))
	for i := range pred {
		d[i] = pred[i] - actual[i]
	}
	return RMS(d)
}

// StdError returns the standard deviation of the prediction error — the
// "std(err)" annotation on the paper's scatter plots (Figs. 8-10).
func StdError(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stat: StdError length mismatch")
	}
	d := make([]float64, len(pred))
	for i := range pred {
		d[i] = pred[i] - actual[i]
	}
	return StdDev(d)
}

// MaxAbsError returns the worst-case |pred-actual|.
func MaxAbsError(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stat: MaxAbsError length mismatch")
	}
	mx := 0.0
	for i := range pred {
		if a := math.Abs(pred[i] - actual[i]); a > mx {
			mx = a
		}
	}
	return mx
}

// Correlation returns the Pearson correlation coefficient of x and y
// (0 if either input is constant).
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stat: Correlation length mismatch")
	}
	if len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RSquared returns the coefficient of determination of predictions against
// actual values: 1 - SS_res/SS_tot.
func RSquared(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stat: RSquared length mismatch")
	}
	m := Mean(actual)
	var ssRes, ssTot float64
	for i := range actual {
		r := actual[i] - pred[i]
		d := actual[i] - m
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// MinMax returns the extrema of v.
func MinMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Percentile returns the p-quantile (0..1) of v using linear interpolation.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	f := p * float64(len(s)-1)
	i := int(f)
	frac := f - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// UniformSample fills a k-dimensional sample with independent uniform draws
// in [lo_i, hi_i].
func UniformSample(rng *rand.Rand, lo, hi []float64) []float64 {
	if len(lo) != len(hi) {
		panic("stat: UniformSample bounds length mismatch")
	}
	out := make([]float64, len(lo))
	for i := range out {
		out[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
	}
	return out
}

// LatinHypercube returns n samples in k dimensions with bounds lo/hi using
// a Latin hypercube plan: each dimension is divided into n equal strata and
// each stratum is sampled exactly once, giving better space coverage than
// plain Monte Carlo for the same n. Used for training-device populations.
func LatinHypercube(rng *rand.Rand, n int, lo, hi []float64) [][]float64 {
	if len(lo) != len(hi) {
		panic("stat: LatinHypercube bounds length mismatch")
	}
	k := len(lo)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, k)
	}
	perm := make([]int, n)
	for d := 0; d < k; d++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			out[i][d] = lo[d] + u*(hi[d]-lo[d])
		}
	}
	return out
}

// Histogram bins v into nbins equal-width bins over [lo, hi] and returns
// the counts. Values outside the range are clamped into the edge bins.
func Histogram(v []float64, lo, hi float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range v {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
